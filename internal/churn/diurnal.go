package churn

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"p2pbackup/internal/rng"
)

// TimeAware is an optional extension of AvailabilityModel for models
// whose session lengths depend on the absolute round at which the
// session starts (diurnal day/night cycles). The engine consults it
// through SessionLengthAt; plain models are called through
// SessionLength exactly as before, so adding this interface changed no
// existing trajectory.
//
// The event-driven engine still draws at flip time: a session length
// is sampled in the round the session actually starts (the slot's
// toggle wakes it through the calendar queue), never precomputed when
// the previous session began. The round passed here is therefore
// always the session's true starting round, and the draw order across
// peers is the ascending-slot order of the round's due toggles — the
// same order the historical scan engine produced.
type TimeAware interface {
	// SessionLengthAt draws the next session length for a session
	// starting at the given round.
	SessionLengthAt(r *rng.Rand, availability float64, online bool, round int64) int64
}

// SessionLengthAt dispatches to the model's time-aware sampler when it
// has one and to the stateless SessionLength otherwise. The simulation
// engine calls this instead of SessionLength directly.
func SessionLengthAt(m AvailabilityModel, r *rng.Rand, availability float64, online bool, round int64) int64 {
	if ta, ok := m.(TimeAware); ok {
		return ta.SessionLengthAt(r, availability, online, round)
	}
	return m.SessionLength(r, availability, online)
}

// DiurnalModel modulates a base availability model with a day/night
// cycle: the availability a session sees is the peer's profile
// availability scaled by a cosine of the time of day,
//
//	a(t) = clamp(avail * (1 + Amplitude*cos(2*pi*(t-Peak)/Period)), 0, 1)
//
// so sessions starting near the daily peak are long online / short
// offline and sessions starting at night the reverse. The modulation is
// multiplicative per profile: an erratic peer (33% base availability)
// swings through a wide absolute range while a durable peer (95%) is
// clamped near 1 for most of the day — each profile follows the cycle
// relative to its own baseline, as the heterogeneity literature
// (Skowron & Rzadca) observes for home machines.
//
// The phase is global: every peer shares one timezone. That is the
// adversarial case for correlated unavailability — nightly the whole
// population dips at once — and exactly the regime the paper's flat
// i.i.d. availability model cannot express.
type DiurnalModel struct {
	// Base draws session lengths given the modulated availability; nil
	// means DefaultSessionModel.
	Base AvailabilityModel
	// Amplitude in [0, 1] is the relative swing around the base
	// availability; 0 reduces to the base model.
	Amplitude float64
	// Period is the cycle length in rounds; 0 means one day.
	Period int64
	// Peak is the round offset (mod Period) of maximum availability.
	Peak int64
}

// DefaultDiurnalModel returns a one-day cycle with the given amplitude
// over the default session model, peaking at 18:00 (evening, when home
// machines are on).
func DefaultDiurnalModel(amplitude float64) DiurnalModel {
	return DiurnalModel{Amplitude: amplitude, Period: Day, Peak: 18 * Hour}
}

// base returns the wrapped model, defaulting to the session model.
func (m DiurnalModel) base() AvailabilityModel {
	if m.Base != nil {
		return m.Base
	}
	return DefaultSessionModel()
}

// period returns the cycle length, defaulting to one day.
func (m DiurnalModel) period() int64 {
	if m.Period > 0 {
		return m.Period
	}
	return Day
}

// Name implements AvailabilityModel.
func (m DiurnalModel) Name() string {
	return fmt.Sprintf("diurnal(amp=%g,period=%d)/%s", m.Amplitude, m.period(), m.base().Name())
}

// AvailabilityAt returns the modulated availability for a session
// starting at the given round, clamped to [0, 1].
func (m DiurnalModel) AvailabilityAt(availability float64, round int64) float64 {
	period := m.period()
	phase := 2 * math.Pi * float64((round-m.Peak)%period) / float64(period)
	a := availability * (1 + m.Amplitude*math.Cos(phase))
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}

// SessionLength implements AvailabilityModel with the unmodulated base
// availability, so a DiurnalModel degrades gracefully when called
// through the stateless interface.
func (m DiurnalModel) SessionLength(r *rng.Rand, availability float64, online bool) int64 {
	return m.base().SessionLength(r, availability, online)
}

// SessionLengthAt implements TimeAware: the base model samples with the
// availability the cycle assigns to the session's starting round.
func (m DiurnalModel) SessionLengthAt(r *rng.Rand, availability float64, online bool, round int64) int64 {
	return m.base().SessionLength(r, m.AvailabilityAt(availability, round), online)
}

// Validate checks the model parameters.
func (m DiurnalModel) Validate() error {
	if m.Amplitude < 0 || m.Amplitude > 1 {
		return fmt.Errorf("churn: diurnal amplitude %v outside [0,1]", m.Amplitude)
	}
	if m.Period < 0 {
		return fmt.Errorf("churn: diurnal period %d negative", m.Period)
	}
	return nil
}

// parseDiurnalName parses the CLI forms "diurnal" and "diurnal:AMP"
// (e.g. "diurnal:0.8") into a default diurnal model.
func parseDiurnalName(name string) (AvailabilityModel, error) {
	amp := 0.6 // a visible but not total day/night swing
	if rest, ok := strings.CutPrefix(name, "diurnal:"); ok {
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("churn: bad diurnal amplitude %q: %v", rest, err)
		}
		amp = v
	}
	m := DefaultDiurnalModel(amp)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
