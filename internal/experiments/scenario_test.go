package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
)

// runAblationTwice executes the campaign twice and fails unless both
// executions produce identical typed results — the determinism
// contract every scenario campaign must honour (same seed, same
// Result, at any parallelism).
func runAblationTwice(t *testing.T, name string, build func() Campaign) *AblationResult {
	t.Helper()
	run := func(parallelism int) *AblationResult {
		rows, err := Runner{Parallelism: parallelism}.Run(context.Background(), build())
		if err != nil {
			t.Fatal(err)
		}
		return AblationFromRows(name, rows)
	}
	a, b := run(2), run(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s campaign not deterministic:\n%+v\n%+v", name, a, b)
	}
	return a
}

func TestDiurnalCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	amps := []float64{0, 0.5, 0.9}
	res := runAblationTwice(t, "diurnal", func() Campaign { return DiurnalCampaign(cfg, amps) })
	if len(res.Points) != len(amps) {
		t.Fatalf("%d points, want %d", len(res.Points), len(amps))
	}
	if res.Points[0].Label != "amp=0.00" || res.Points[2].Label != "amp=0.90" {
		t.Fatalf("labels = %v %v", res.Points[0].Label, res.Points[2].Label)
	}
	// The amplitude must matter: a full-swing day/night cycle cannot
	// produce the identical trajectory as flat availability.
	if res.Points[0] == res.Points[2] {
		t.Fatal("amp=0 and amp=0.9 produced identical outcomes")
	}
}

func TestBlackoutCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	res := runAblationTwice(t, "blackout", func() Campaign { return BlackoutCampaign(cfg) })
	if len(res.Points) != 5 {
		t.Fatalf("%d points, want 5", len(res.Points))
	}
	if res.Points[0].Label != "baseline" || res.Points[0].Shocks != 0 {
		t.Fatalf("baseline point = %+v", res.Points[0])
	}
	for _, p := range res.Points[1:4] {
		if p.Shocks != 1 {
			t.Fatalf("%s fired %d shocks, want 1 (scheduled mid-run)", p.Label, p.Shocks)
		}
	}
}

func TestReplayCampaignDeterminism(t *testing.T) {
	trace := recordMicroTrace(t)
	cfg := microConfig()
	res := runAblationTwice(t, "replay", func() Campaign { return ReplayCampaign(cfg, trace) })
	if len(res.Points) == 0 {
		t.Fatal("no replay points")
	}
	// Identical churn per variant: every strategy must see the same
	// death sequence.
	for _, p := range res.Points[1:] {
		if p.Deaths != res.Points[0].Deaths {
			t.Fatalf("strategy %q saw %d deaths, %q saw %d — replay churn not shared",
				p.Label, p.Deaths, res.Points[0].Label, res.Points[0].Deaths)
		}
	}
}

// recordMicroTrace captures the churn of a short micro-scale run.
func recordMicroTrace(t *testing.T) *churn.Trace {
	return recordTrace(t, microConfig().NumPeers)
}

// recordTrace captures the churn of a short run with the given
// population (the archive shape does not matter for trace content).
func recordTrace(t *testing.T, peers int) *churn.Trace {
	t.Helper()
	cfg := microConfig()
	cfg.NumPeers = peers
	cfg.Rounds = 200
	cfg.RecordTrace = true
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	return res.Trace
}

func TestRegistryReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	// The registry replays at the base scale's paper-shaped archive
	// (n=256), so the trace population must exceed n.
	if err := churn.WriteTraceFile(path, recordTrace(t, 300)); err != nil {
		t.Fatal(err)
	}
	sums, err := Run("replay", Options{OutDir: dir, TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || len(sums[0].Files) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if filepath.Base(sums[0].Files[0]) != "scenario_replay.tsv" {
		t.Fatalf("file = %s", sums[0].Files[0])
	}
	if !strings.Contains(sums[0].Text, "lifetime-oracle") {
		t.Fatalf("text = %q", sums[0].Text)
	}
}

func TestRegistryReplayNeedsTrace(t *testing.T) {
	if _, err := Run("replay", Options{}); err == nil {
		t.Fatal("replay without -trace accepted")
	}
	if _, err := Run("replay", Options{TracePath: "/does/not/exist.csv"}); err == nil {
		t.Fatal("replay with missing trace accepted")
	}
}

func TestRegistryScenarioNames(t *testing.T) {
	names := strings.Join(Names(), " ")
	for _, want := range []string{"diurnal", "blackout", "replay"} {
		if !strings.Contains(names, want) {
			t.Fatalf("Names() = %v missing %q", Names(), want)
		}
	}
}

// ---------------------------------------------------------------------------
// Deprecated wrapper coverage (kept from PR 1): the thin compatibility
// shims must return exactly what the campaign path returns.

func TestWrapperThresholdSweepAgrees(t *testing.T) {
	cfg := microConfig()
	old, err := RunThresholdSweep(cfg, []int{9, 13}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := ThresholdCampaign(cfg, []int{9, 13})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	neu := ThresholdSweepFromRows(rows)
	if !reflect.DeepEqual(old.Points, neu.Points) {
		t.Fatalf("wrapper sweep differs:\n%+v\n%+v", old.Points, neu.Points)
	}
}

func TestWrapperFocalAgrees(t *testing.T) {
	// The focal campaign pins threshold 148, which needs the paper's
	// archive shape.
	cfg := microConfig()
	cfg.TotalBlocks = 256
	cfg.DataBlocks = 128
	cfg.Quota = 384
	cfg.NumPeers = 600
	cfg.Rounds = 150
	old, err := RunFocal(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Runner{Parallelism: 1}.Run(context.Background(), FocalCampaign(cfg))
	if err != nil {
		t.Fatal(err)
	}
	neu := FocalFromRow(rows[0])
	if old.Repairs != neu.Repairs || old.Losses != neu.Losses || old.Deaths != neu.Deaths ||
		!reflect.DeepEqual(old.ObserverCounts, neu.ObserverCounts) {
		t.Fatalf("wrapper focal differs:\n%+v\n%+v", old, neu)
	}
}

func TestWrapperRegistryRunAgrees(t *testing.T) {
	// Run is a background-context shim over RunCtx; both must produce
	// the same summary text for a deterministic experiment.
	a, err := Run("costmodel", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), "costmodel", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Run != RunCtx:\n%+v\n%+v", a, b)
	}
}

func TestEstimatorCampaignDeterminism(t *testing.T) {
	trace := recordMicroTrace(t)
	cfg := microConfig()
	cfg.Rounds = 200
	res := runAblationTwice(t, "estimator", func() Campaign { return EstimatorCampaign(cfg, trace) })
	// Three churn blocks (iid, diurnal, replay) x four strategies.
	if len(res.Points) != 12 {
		t.Fatalf("%d points, want 12", len(res.Points))
	}
	wantLabels := []string{"iid/age", "iid/estimator:pareto", "iid/estimator:empirical", "iid/monitored-availability"}
	for i, w := range wantLabels {
		if res.Points[i].Label != w {
			t.Fatalf("label[%d] = %q, want %q", i, res.Points[i].Label, w)
		}
	}
	// The replay block shares its churn: identical deaths per strategy.
	var replay []AblationPoint
	for _, p := range res.Points {
		if strings.HasPrefix(p.Label, "replay/") {
			replay = append(replay, p)
		}
	}
	if len(replay) != 4 {
		t.Fatalf("replay block has %d points", len(replay))
	}
	for _, p := range replay[1:] {
		if p.Deaths != replay[0].Deaths {
			t.Fatalf("replay churn not shared: %q saw %d deaths, %q saw %d",
				p.Label, p.Deaths, replay[0].Label, replay[0].Deaths)
		}
	}
	// Without a trace the campaign degrades to the two synthetic blocks.
	noTrace := EstimatorCampaign(cfg, nil)
	if len(noTrace.Variants) != 8 {
		t.Fatalf("trace-less campaign has %d variants, want 8", len(noTrace.Variants))
	}
}

func TestRegistryHasEstimatorExperiment(t *testing.T) {
	names := strings.Join(Names(), " ")
	if !strings.Contains(names, "ablation-estimator") {
		t.Fatalf("Names() = %v missing ablation-estimator", Names())
	}
}

// basePolicyLeakProbe is a always-accept constant-score policy used to
// prove base-config strategy fields cannot leak into strategy sweeps.
type basePolicyLeakProbe struct{}

func (basePolicyLeakProbe) Name() string { return "leak-probe" }
func (basePolicyLeakProbe) AcceptProb(selection.Context, selection.View, selection.View) float64 {
	return 1
}
func (basePolicyLeakProbe) Score(selection.Context, selection.View) float64 { return 0 }

func TestStrategySweepsIgnoreBaseStrategyFields(t *testing.T) {
	// A base config carrying a Policy (or legacy Strategy) must not
	// override the per-variant specs of strategy-sweeping campaigns:
	// Validate resolves Policy first, so a leak would silently run one
	// strategy under every label.
	cfg := microConfig()
	cfg.Rounds = 150
	builds := map[string]func(c sim.Config) Campaign{
		"strategy": StrategyCampaign,
		"horizon": func(c sim.Config) Campaign {
			return HorizonCampaign(c, []int64{24, 96})
		},
		"estimator": func(c sim.Config) Campaign {
			return EstimatorCampaign(c, nil)
		},
	}
	for name, build := range builds {
		clean := build(cfg)
		dirty := cfg
		dirty.Policy = basePolicyLeakProbe{}
		leaked := build(dirty)
		for i, v := range clean.Variants {
			want := clean.Base
			v.Mutate(&want)
			got := leaked.Base
			leaked.Variants[i].Mutate(&got)
			if got.Policy != nil || got.StrategySpec != want.StrategySpec {
				t.Fatalf("%s[%s]: base Policy leaked into variant (spec %q, policy %v)",
					name, v.Name, got.StrategySpec, got.Policy)
			}
		}
	}
}
