package erasure

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func allKinds(t *testing.T, f func(t *testing.T, kind MatrixKind)) {
	t.Helper()
	for _, kind := range []MatrixKind{Vandermonde, Cauchy} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) { f(t, kind) })
	}
}

func randomShards(rng *rand.Rand, k, m, size int) [][]byte {
	shards := make([][]byte, k+m)
	for i := range shards {
		shards[i] = make([]byte, size)
	}
	for i := 0; i < k; i++ {
		rng.Read(shards[i])
	}
	return shards
}

func TestNewValidation(t *testing.T) {
	cases := []struct{ k, m int }{{0, 1}, {-1, 2}, {3, -1}, {200, 57}, {257, 0}}
	for _, c := range cases {
		if _, err := New(c.k, c.m); !errors.Is(err, ErrInvalidParams) {
			t.Errorf("New(%d, %d) err = %v, want ErrInvalidParams", c.k, c.m, err)
		}
	}
	for _, c := range []struct{ k, m int }{{1, 0}, {1, 255}, {128, 128}, {255, 1}, {256, 0}} {
		if _, err := New(c.k, c.m); err != nil {
			t.Errorf("New(%d, %d) unexpected err %v", c.k, c.m, err)
		}
	}
}

func TestSystematicEncoding(t *testing.T) {
	allKinds(t, func(t *testing.T, kind MatrixKind) {
		e, err := NewKind(4, 2, kind)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		shards := randomShards(rng, 4, 2, 64)
		want := make([][]byte, 4)
		for i := range want {
			want[i] = append([]byte(nil), shards[i]...)
		}
		if err := e.Encode(shards); err != nil {
			t.Fatal(err)
		}
		// Systematic: data shards unchanged by encoding.
		for i := 0; i < 4; i++ {
			if !bytes.Equal(shards[i], want[i]) {
				t.Fatalf("%v: data shard %d modified by Encode", kind, i)
			}
		}
	})
}

func TestEncodeVerify(t *testing.T) {
	allKinds(t, func(t *testing.T, kind MatrixKind) {
		e, _ := NewKind(6, 3, kind)
		rng := rand.New(rand.NewSource(2))
		shards := randomShards(rng, 6, 3, 128)
		if err := e.Encode(shards); err != nil {
			t.Fatal(err)
		}
		ok, err := e.Verify(shards)
		if err != nil || !ok {
			t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
		}
		// Corrupt one byte of one parity shard.
		shards[7][13] ^= 0x40
		ok, err = e.Verify(shards)
		if err != nil || ok {
			t.Fatalf("Verify after corruption = %v, %v; want false, nil", ok, err)
		}
		shards[7][13] ^= 0x40
		// Corrupt a data byte.
		shards[2][0] ^= 1
		ok, _ = e.Verify(shards)
		if ok {
			t.Fatal("Verify must detect corrupted data shard")
		}
	})
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// For a small code, exhaustively erase every subset of size <= m and
	// verify exact reconstruction.
	allKinds(t, func(t *testing.T, kind MatrixKind) {
		const k, m, size = 4, 3, 32
		e, _ := NewKind(k, m, kind)
		rng := rand.New(rand.NewSource(3))
		orig := randomShards(rng, k, m, size)
		if err := e.Encode(orig); err != nil {
			t.Fatal(err)
		}
		n := k + m
		for mask := 0; mask < 1<<n; mask++ {
			erased := 0
			for i := 0; i < n; i++ {
				if mask>>i&1 == 1 {
					erased++
				}
			}
			if erased == 0 || erased > m {
				continue
			}
			shards := make([][]byte, n)
			for i := range shards {
				if mask>>i&1 == 1 {
					shards[i] = nil
				} else {
					shards[i] = append([]byte(nil), orig[i]...)
				}
			}
			if err := e.Reconstruct(shards); err != nil {
				t.Fatalf("%v mask %#b: %v", kind, mask, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], orig[i]) {
					t.Fatalf("%v mask %#b: shard %d wrong after reconstruct", kind, mask, i)
				}
			}
		}
	})
}

func TestReconstructTooFewShards(t *testing.T) {
	e, _ := New(4, 2)
	rng := rand.New(rand.NewSource(4))
	shards := randomShards(rng, 4, 2, 16)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := e.Reconstruct(shards); !errors.Is(err, ErrTooFewShards) {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructData(t *testing.T) {
	e, _ := New(5, 3)
	rng := rand.New(rand.NewSource(5))
	orig := randomShards(rng, 5, 3, 48)
	if err := e.Encode(orig); err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, len(orig))
	for i := range shards {
		shards[i] = append([]byte(nil), orig[i]...)
	}
	shards[1] = nil // data
	shards[6] = nil // parity
	if err := e.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], orig[1]) {
		t.Fatal("data shard not reconstructed")
	}
	if shards[6] != nil {
		t.Fatal("ReconstructData must not recompute parity")
	}
	// Full Reconstruct now restores parity too.
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[6], orig[6]) {
		t.Fatal("parity shard not reconstructed")
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	e, _ := New(3, 2)
	rng := rand.New(rand.NewSource(6))
	shards := randomShards(rng, 3, 2, 8)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	before := make([][]byte, len(shards))
	for i := range shards {
		before[i] = append([]byte(nil), shards[i]...)
	}
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], before[i]) {
			t.Fatal("Reconstruct modified a complete shard set")
		}
	}
}

func TestShardValidation(t *testing.T) {
	e, _ := New(3, 2)
	if err := e.Encode(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Errorf("wrong count: err = %v, want ErrShardCount", err)
	}
	shards := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 5), make([]byte, 4), make([]byte, 4)}
	if err := e.Encode(shards); !errors.Is(err, ErrShardSize) {
		t.Errorf("uneven sizes: err = %v, want ErrShardSize", err)
	}
	all := make([][]byte, 5)
	if err := e.Reconstruct(all); !errors.Is(err, ErrShardSize) {
		t.Errorf("all missing: err = %v, want ErrShardSize", err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	e, _ := New(4, 2)
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 3, 4, 5, 16, 17, 1000} {
		data := make([]byte, size)
		rng.Read(data)
		shards, err := e.Split(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(shards) != 6 {
			t.Fatalf("Split returned %d shards, want 6", len(shards))
		}
		if err := e.Encode(shards); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Join(&buf, shards, size); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("size %d: Join != original", size)
		}
	}
}

func TestSplitEmpty(t *testing.T) {
	e, _ := New(4, 2)
	if _, err := e.Split(nil); !errors.Is(err, ErrShortData) {
		t.Fatalf("err = %v, want ErrShortData", err)
	}
}

func TestJoinErrors(t *testing.T) {
	e, _ := New(3, 1)
	data := []byte("hello world!")
	shards, _ := e.Split(data)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Join(&buf, shards[:2], len(data)); !errors.Is(err, ErrShardCount) {
		t.Errorf("short shard list: err = %v, want ErrShardCount", err)
	}
	if err := e.Join(&buf, shards, len(data)*100); !errors.Is(err, ErrShortData) {
		t.Errorf("oversized length: err = %v, want ErrShortData", err)
	}
	shards[1] = nil
	if err := e.Join(&buf, shards, len(data)); err == nil {
		t.Error("Join with missing data shard must fail")
	}
}

func TestPaperParameters(t *testing.T) {
	// The paper's configuration: k = m = 128, n = 256 blocks.
	e, err := New(128, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	shards := randomShards(rng, 128, 128, 256)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	orig := make([][]byte, len(shards))
	for i := range shards {
		orig[i] = append([]byte(nil), shards[i]...)
	}
	// Erase 128 random shards - the paper's worst tolerated case.
	for _, i := range rng.Perm(256)[:128] {
		shards[i] = nil
	}
	if err := e.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("shard %d wrong after 128-erasure reconstruct", i)
		}
	}
}

func TestReconstructRandomErasuresProperty(t *testing.T) {
	e, _ := New(8, 5)
	prop := func(seed int64, sizeHint uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + int(sizeHint)%100
		orig := randomShards(rng, 8, 5, size)
		if err := e.Encode(orig); err != nil {
			return false
		}
		shards := make([][]byte, len(orig))
		for i := range shards {
			shards[i] = append([]byte(nil), orig[i]...)
		}
		erase := rng.Intn(6) // 0..5 erasures, all within tolerance
		for _, i := range rng.Perm(13)[:erase] {
			shards[i] = nil
		}
		if err := e.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecodeMatrixCacheConcurrency(t *testing.T) {
	e, _ := New(10, 4)
	rng := rand.New(rand.NewSource(9))
	orig := randomShards(rng, 10, 4, 64)
	if err := e.Encode(orig); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				shards := make([][]byte, len(orig))
				for j := range shards {
					shards[j] = append([]byte(nil), orig[j]...)
				}
				for _, j := range r.Perm(14)[:4] {
					shards[j] = nil
				}
				if err := e.Reconstruct(shards); err != nil {
					done <- err
					return
				}
				for j := range shards {
					if !bytes.Equal(shards[j], orig[j]) {
						done <- errors.New("bad reconstruction under concurrency")
						return
					}
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestZeroParity(t *testing.T) {
	// m = 0 is a degenerate but legal configuration (no redundancy).
	e, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	shards := randomShards(rng, 4, 0, 16)
	if err := e.Encode(shards); err != nil {
		t.Fatal(err)
	}
	ok, err := e.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v", ok, err)
	}
}

func TestAccessors(t *testing.T) {
	e, _ := NewKind(12, 7, Cauchy)
	if e.DataShards() != 12 || e.ParityShards() != 7 || e.TotalShards() != 19 {
		t.Fatal("accessor mismatch")
	}
	if e.Kind() != Cauchy {
		t.Fatal("Kind mismatch")
	}
	if Vandermonde.String() != "vandermonde" || Cauchy.String() != "cauchy" {
		t.Fatal("MatrixKind.String mismatch")
	}
	if MatrixKind(9).String() == "" {
		t.Fatal("unknown kind must still format")
	}
}
