package churn

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"p2pbackup/internal/rng"
)

// AvailabilityModel generates alternating online/offline session lengths
// (in whole rounds, always >= 1) whose long-run online fraction matches
// a target availability. Implementations must be stateless; all
// randomness comes from the caller's generator.
type AvailabilityModel interface {
	// SessionLength draws the length of the next session. online says
	// whether the session being entered is an online one.
	SessionLength(r *rng.Rand, availability float64, online bool) int64
	// Name identifies the model in reports.
	Name() string
}

// SessionModel draws exponential session lengths with a configurable
// mean on+off cycle: mean online session = availability x MeanCycle,
// mean offline session = (1-availability) x MeanCycle. This matches the
// diurnal reality of home machines better than per-round coin flips and
// keeps state transitions (the expensive events in the simulator) rare.
type SessionModel struct {
	// MeanCycle is the expected length of one on+off cycle in rounds.
	// The default used by the simulator is one day (24 rounds).
	MeanCycle float64
}

// DefaultSessionModel returns a SessionModel with a one-day mean cycle.
func DefaultSessionModel() SessionModel { return SessionModel{MeanCycle: Day} }

// Name implements AvailabilityModel.
func (m SessionModel) Name() string { return fmt.Sprintf("session(cycle=%g)", m.MeanCycle) }

// SessionLength draws ceil(Exp(mean)) with the per-state mean.
func (m SessionModel) SessionLength(r *rng.Rand, availability float64, online bool) int64 {
	mean := m.MeanCycle * availability
	if !online {
		mean = m.MeanCycle * (1 - availability)
	}
	if mean <= 0 {
		// Degenerate states (availability 0 or 1): one-round stub; the
		// scheduler immediately re-enters the other state.
		return 1
	}
	u := 1 - r.Float64()
	v := -math.Log(u) * mean
	if v < 1 {
		return 1
	}
	if v >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(v + 0.5)
}

// BernoulliModel reproduces independent per-round coin flips: run
// lengths of a Bernoulli(a) sequence are geometric, so online sessions
// are Geometric(1-a) and offline sessions Geometric(a). Provided for
// the availability-model ablation (A2 in DESIGN.md).
type BernoulliModel struct{}

// Name implements AvailabilityModel.
func (BernoulliModel) Name() string { return "bernoulli" }

// SessionLength draws a geometric run length.
func (BernoulliModel) SessionLength(r *rng.Rand, availability float64, online bool) int64 {
	p := 1 - availability // probability the online run ends each round
	if !online {
		p = availability
	}
	if p <= 0 {
		return math.MaxInt64 // the state never exits
	}
	if p >= 1 {
		return 1
	}
	u := 1 - r.Float64()
	v := math.Ceil(math.Log(u) / math.Log(1-p))
	if v < 1 {
		return 1
	}
	return int64(v)
}

// AlwaysOnline never leaves the online state; used for observers and
// availability-oracle baselines.
type AlwaysOnline struct{}

// Name implements AvailabilityModel.
func (AlwaysOnline) Name() string { return "always-online" }

// SessionLength pins the peer online forever.
func (AlwaysOnline) SessionLength(_ *rng.Rand, _ float64, online bool) int64 {
	if online {
		return math.MaxInt64
	}
	return 1
}

// ErrUnknownModel reports an unrecognised model name.
var ErrUnknownModel = errors.New("churn: unknown availability model")

// ModelByName resolves a model from its CLI name: "session",
// "bernoulli", "always-online", or "diurnal"/"diurnal:AMP" (a day/night
// cycle of the given amplitude over the session model).
func ModelByName(name string) (AvailabilityModel, error) {
	switch name {
	case "session", "":
		return DefaultSessionModel(), nil
	case "bernoulli":
		return BernoulliModel{}, nil
	case "always-online":
		return AlwaysOnline{}, nil
	}
	if name == "diurnal" || strings.HasPrefix(name, "diurnal:") {
		return parseDiurnalName(name)
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// StationaryOnlineFraction estimates the long-run online fraction the
// model produces for a given availability by simulating sessions. Used
// in tests and calibration, not on the simulator hot path.
func StationaryOnlineFraction(m AvailabilityModel, availability float64, r *rng.Rand, cycles int) float64 {
	var on, total int64
	online := true
	for i := 0; i < cycles*2; i++ {
		l := m.SessionLength(r, availability, online)
		// Cap absurd lengths so immortal states do not overflow.
		if l > 1<<40 {
			l = 1 << 40
		}
		if online {
			on += l
		}
		total += l
		online = !online
	}
	return float64(on) / float64(total)
}
