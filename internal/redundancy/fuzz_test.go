package redundancy

import "testing"

// FuzzParse throws arbitrary policy-spec strings at the redundancy
// parser (the CLI's -redundancy flag). Every input must either produce
// a Policy or an error — never panic — and whatever Parse accepts must
// Bind cleanly against the paper's code shape or fail with a wrapped
// ErrBadSpec, since sim.Config.Validate relies on exactly that split.
func FuzzParse(f *testing.F) {
	for _, s := range Names() {
		f.Add(s)
	}
	for _, s := range []string{
		"",
		"adaptive:0.95",
		"adaptive:min=160,max=256,target=0.95",
		"adaptive:target=0.9,hysteresis=4,eval=48,sample=8",
		"adaptive:min=9,max=4",
		"adaptive:target=2",
		"adaptive:bogus=1",
		"adaptive:min=1,min=2",
		"adaptive:0.9,target=0.8",
		"fixed:1",
		"nope",
		":",
		";;;",
		"adaptive:min=",
		"adaptive:,",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := Parse(spec)
		if err != nil {
			if pol != nil {
				t.Fatalf("Parse(%q) returned both policy and error %v", spec, err)
			}
			return
		}
		if pol == nil {
			t.Fatalf("Parse(%q) returned nil policy without error", spec)
		}
		if pol.Name() == "" {
			t.Fatalf("Parse(%q) returned unnamed policy", spec)
		}
		// Bind against the paper shape: either a usable bound policy or
		// a shape-mismatch error, never a panic.
		bound, err := pol.Bind(128, 148, 256)
		if err != nil {
			return
		}
		if init := bound.Initial(128, 256); init < 128 || init > 256 {
			t.Fatalf("Parse(%q).Initial out of [k, n]: %d", spec, init)
		}
		if bound.EvalEvery() < 1 {
			t.Fatalf("Parse(%q).EvalEvery < 1", spec)
		}
		// Reparsing must be stable.
		if _, err := Parse(spec); err != nil {
			t.Fatalf("Parse(%q) succeeded then failed: %v", spec, err)
		}
	})
}
