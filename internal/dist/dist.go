// Package dist provides the random distributions the churn model draws
// lifetimes from: constants (tests), uniform ranges (the paper's
// profile table gives lifetime ranges), and Pareto (the heavy-tailed
// lifetime family under which age-based selection is provably aligned
// with expected remaining lifetime).
package dist

import (
	"fmt"
	"math"

	"p2pbackup/internal/rng"
)

// Sampler draws one value from a distribution.
type Sampler interface {
	Sample(r *rng.Rand) float64
}

// Constant always returns its own value.
type Constant float64

// Sample implements Sampler.
func (c Constant) Sample(*rng.Rand) float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates the range and returns the distribution.
func NewUniform(lo, hi float64) (Uniform, error) {
	if math.IsNaN(lo) || math.IsNaN(hi) || lo >= hi {
		return Uniform{}, fmt.Errorf("dist: invalid uniform range [%v, %v)", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample implements Sampler.
func (u Uniform) Sample(r *rng.Rand) float64 {
	return u.Lo + r.Float64()*(u.Hi-u.Lo)
}

// Pareto is the Pareto distribution with scale Xm (minimum value) and
// shape Alpha: P(X > x) = (Xm/x)^Alpha for x >= Xm.
type Pareto struct {
	Xm, Alpha float64
}

// NewPareto validates the parameters and returns the distribution.
func NewPareto(xm, alpha float64) (Pareto, error) {
	if !(xm > 0) || !(alpha > 0) {
		return Pareto{}, fmt.Errorf("dist: invalid pareto parameters xm=%v alpha=%v", xm, alpha)
	}
	return Pareto{Xm: xm, Alpha: alpha}, nil
}

// Sample implements Sampler by inverse-transform sampling.
func (p Pareto) Sample(r *rng.Rand) float64 {
	// 1 - Float64() is in (0, 1], avoiding a division by zero.
	return p.Xm * math.Pow(1-r.Float64(), -1/p.Alpha)
}
