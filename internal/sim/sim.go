// Package sim is the event-driven simulation engine, the PeerSim
// equivalent the paper's evaluation runs on.
//
// Semantics follow the paper's section 3.1: time advances in rounds of
// one hour; within a round every peer may execute protocol code,
// sequentially, in an order chosen randomly per round; departures are
// replaced immediately and the departed peer's blocks disappear at
// once.
//
// # The event-driven core
//
// The engine never scans the population. Each slot carries one
// authoritative wake time — the earliest of its death, category-change
// and session-toggle timers — held in a calendar bucket queue; a
// round's walk visits, in ascending slot id, only the union of the
// slots with due timers, the maintenance active set, and the slots
// flagged for an archive-loss check. The active set is maintained
// incrementally: the overlay ledger's Watcher notifications
// (visible-below-threshold, alive-below-k crossings, emitted from its
// existing incremental counters) arm slots in the Maintainer the
// moment a crossing happens, and the engine disarms a slot when a
// visit finds its work drained. Per-round cost is therefore
// proportional to the number of events — session flips, deaths,
// promotions, peers with active maintenance work — not to NumPeers: a
// quiescent round costs tens of nanoseconds at any population size.
//
// # The rng-order invariant
//
// Reproducibility pins the engine to the draw order of the historical
// full-population scan, and every engine change must preserve it: due
// events drain in ascending slot id within a round; each visit runs
// the per-slot body in scan order (death, else category promotion,
// then toggle, then the loss check, then actor collection); a state
// change caused at walk position j is observed by slot i's checks this
// round iff i > j; and spurious wakes, stale loss flags and
// armed-but-idle visits consume no randomness and emit no events. The
// golden digests in determinism_test.go hold the engine to the scan
// engine's event stream bit for bit under iid, diurnal, shock and
// replay churn. This invariant governs the default (v1) walk; the v3
// engine (Config.Walk = WalkV3, see walk3.go) instead derives one rng
// stream per slot and merges cross-shard effects deterministically at
// the round barrier, trading v1 draw compatibility for a parallel walk
// under its own versioned digest set.
//
// # Measurement
//
// Measurement is decoupled from the engine through the Probe interface:
// the engine emits every protocol event (churn, repairs, outages,
// losses, round boundaries) to an ordered list of probes, and the
// metrics collector, observer tracker and churn-trace recorder that
// populate Result are themselves probes attached by New. Custom
// instrumentation attaches through Config.Probes and observes the exact
// same event stream; probes consume no randomness, so attaching them
// never perturbs a run. Runs are cancellable mid-flight through
// RunContext.
//
// Dispatch is compiled at New: probes declare the events they observe
// through the optional EventDeclarer interface, and each event kind
// gets its own dispatch slice — emitting an event touches only the
// probes subscribed to it, and an event nobody observes costs zero
// interface calls. Probes without a declaration observe everything.
// Attachment order is preserved within every kind, so each probe sees
// its subscribed events in exactly the order the engine emits them.
//
// The engine also keeps per-round caches off the measurement path: a
// slot's selection.View (and, in the Maintainer, its pure policy
// score) is materialised at most once per round regardless of how many
// repairing peers probe it, invalidated on occupant replacement and
// session flips. Caches hold no randomness and change no results —
// ARCHITECTURE.md's "Hot path & caching" section has the full
// inventory.
package sim

import (
	"context"
	"math"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/maintenance"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/monitor"
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/transfer"
)

// never is a round sentinel beyond any simulation horizon.
const never = math.MaxInt64 / 4

// peer is the engine-side state of one population slot.
type peer struct {
	profile   int32
	cat       metrics.Category
	online    bool
	avail     float64
	join      int64 // round the current occupant joined
	death     int64 // round the occupant departs (never for immortals)
	toggle    int64 // next session flip
	catChange int64 // next category promotion
}

// Result aggregates a finished run.
type Result struct {
	Config    Config
	Collector *metrics.Collector
	Observers *metrics.ObserverTracker
	Trace     *churn.Trace
	// Deaths is the number of departures (and replacements).
	Deaths int64
	// Cancels counts repairs aborted after visibility recovered.
	Cancels int64
	// FinalPlacements is the block count in the system at the end.
	FinalPlacements int
	// FinalIncluded is how many peers had a complete archive at the end.
	FinalIncluded int
	// Phases is the per-phase wall-time breakdown, non-nil only when
	// Config.PhaseTimes asked for it.
	Phases *PhaseTimes
}

// Simulation is a configured run. Create with New, execute with Run.
type Simulation struct {
	cfg   Config
	r     *rng.Rand
	led   *overlay.Ledger
	tab   *overlay.Table
	maint *maintenance.Maintainer
	col   *metrics.Collector
	obs   *metrics.ObserverTracker

	peers    []peer
	obsSpecs []ObserverSpec
	round    int64
	catPop   [metrics.NumCategories]int64
	deaths   int64
	cancels  int64
	trace    *churn.Trace
	probes   []Probe
	replay   *replayScript // non-nil: churn comes from Config.Replay
	xfer     *xferState    // non-nil: bandwidth scheduling or restore demand enabled
	redun    *redunState   // non-nil: adaptive redundancy policy enabled

	// dispatch holds the probe list compiled per event kind from the
	// probes' EventDeclarer declarations: emitting an event iterates
	// only the probes that observe it, and an event nobody observes is
	// a loop over an empty slice — zero interface calls. Attachment
	// order is preserved within each kind, so every probe still sees
	// its subscribed events in exactly the order the engine emits them.
	dispatch [numProbeEvents][]Probe

	// View/score epoch cache: each population slot's selection.View is
	// materialised at most once per round (viewKey holds round+1, 0 =
	// invalid) no matter how many repairing peers probe it; the policy
	// score memo lives next to the policy in the Maintainer. Both are
	// invalidated when a slot's occupant is replaced; score additionally
	// on session flips (a flip mutates the monitored history a pure
	// score may read).
	viewVal []selection.View
	viewKey []int64

	// hist is the monitoring substrate: one availability history per
	// population slot over the last AcceptHorizon rounds (the paper's
	// "any peer can query the availability of any other peer ... for
	// example the last 90 days"). Maintained by the engine on every
	// session transition; consumes no randomness. Reset when the slot's
	// occupant is replaced — observations belong to identities, not
	// slots.
	hist []*monitor.IntervalHistory

	// Event-driven core: each population slot has one authoritative
	// wake time (sched, the earliest of its death/category/toggle
	// timers) tracked in the calendar bucket queue, and each round's
	// walk visits — in ascending slot order — the union of the slots
	// with due timers, the maintenance active set, and the slots
	// flagged for an archive-loss check. walkPos is the slot currently
	// being visited: a visit request at or before it lands in nextQ
	// (the next round's walk), one beyond it in curQ, reproducing
	// exactly what the historical full-population scan saw at each loop
	// position.
	cal     *calendar
	sched   []int64 // per slot: next wake round (never = no timer)
	curQ    *visitQueue
	nextQ   *visitQueue
	walkPos int32
	due     []int32 // scratch: calendar drain output

	actors []overlay.PeerID // scratch: peers acting this round

	// shards is the sharded-engine state (Config.Shards >= 2): the
	// draw-free phases fan out across slot-partitioned workers under
	// the v2 rng-order invariant (see shard.go). nil runs the
	// historical sequential path.
	shards *shardState

	// v3 is the shard-parallel walk/maintenance engine state
	// (Config.Walk = WalkV3, see walk3.go). nil runs the v1 walk.
	v3 *v3State

	// phases accumulates the per-phase wall-time breakdown; recording
	// is active only when Config.PhaseTimes is set (see phasetime.go).
	phases *PhaseTimes
}

// New validates the config and builds a ready-to-run simulation.
func New(cfg Config) (*Simulation, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	slots := cfg.NumPeers + len(cfg.Observers)
	s := &Simulation{
		cfg:      cfg,
		r:        rng.New(cfg.Seed),
		led:      overlay.NewLedger(slots, cfg.Quota),
		tab:      overlay.NewTable(slots),
		col:      metrics.NewCollector(cfg.Profiles.Len(), cfg.SampleEvery, cfg.Warmup),
		peers:    make([]peer, cfg.NumPeers),
		obsSpecs: cfg.Observers,
		hist:     make([]*monitor.IntervalHistory, cfg.NumPeers),
		cal:      newCalendar(),
		sched:    make([]int64, cfg.NumPeers),
		curQ:     newVisitQueue(cfg.NumPeers),
		nextQ:    newVisitQueue(cfg.NumPeers),
		walkPos:  math.MaxInt32,
		viewVal:  make([]selection.View, cfg.NumPeers),
		viewKey:  make([]int64, cfg.NumPeers),
	}
	// Preallocate the adjacency at its steady-state high-water mark so
	// the placement hot path never grows a slice: n blocks per owner,
	// quota per host plus one unmetered block per observer.
	s.led.Reserve(cfg.TotalBlocks, int(cfg.Quota)+len(cfg.Observers))
	for i := range s.sched {
		s.sched[i] = never
	}
	for i := range s.hist {
		s.hist[i] = monitor.NewIntervalHistory(cfg.AcceptHorizon)
	}
	names := make([]string, len(cfg.Observers))
	for i, o := range cfg.Observers {
		names[i] = o.Name
	}
	s.obs = metrics.NewObserverTracker(names)
	// The built-in measurement layer attaches as probes, first in
	// dispatch order so Result sees events before custom probes do.
	s.probes = append(s.probes, collectorProbe{col: s.col}, observerProbe{obs: s.obs})
	if cfg.RecordTrace {
		s.trace = &churn.Trace{}
		s.probes = append(s.probes, traceProbe{trace: s.trace})
	}
	s.probes = append(s.probes, cfg.Probes...)
	// Compile the probe list into per-event dispatch slices (see
	// EventDeclarer): probes without a declaration observe everything.
	for _, p := range s.probes {
		set := probeEvents(p)
		for k := 0; k < numProbeEvents; k++ {
			if set&(1<<k) != 0 {
				s.dispatch[k] = append(s.dispatch[k], p)
			}
		}
	}
	s.maint = maintenance.New(maintenance.Params{
		TotalBlocks:          cfg.TotalBlocks,
		DataBlocks:           cfg.DataBlocks,
		RepairThreshold:      cfg.RepairThreshold,
		PoolSamplePerRound:   cfg.PoolSamplePerRound,
		UploadBudgetPerRound: cfg.UploadBudgetPerRound,
		DropOffline:          cfg.DropOffline,
		CancelOnRecover:      cfg.CancelOnRecover,
		RepairDelay:          cfg.RepairDelay,
	}, s.led, s.tab, cfg.Policy, (*simEnv)(s))
	s.maint.SetWake(s.requestVisit)
	s.maint.EnableScoreCache() // no-op unless the policy's Score is pure
	if cfg.Redundancy != nil && !cfg.Redundancy.Static() {
		// A static policy allocates nothing: the engine stays literally
		// the pre-adaptive engine, draw for draw (TestFixedModeGoldenDigests
		// pins this).
		s.redun = newRedunState(cfg)
		s.maint.SetRedundancy((*simRedun)(s))
	}
	if cfg.Shards >= 2 {
		s.shards = newShardState(cfg)
	}
	if cfg.Walk == WalkV3 {
		if s.shards == nil {
			// v3 runs the sharded code path (warm, inclusion scan, range
			// partitioning) even at a single shard, so S=1 and S=k execute
			// identical code.
			one := cfg
			one.Shards = 1
			s.shards = newShardState(one)
		}
		s.v3 = newV3State(s)
	}
	s.phases = &PhaseTimes{}

	if cfg.Bandwidth != nil || len(cfg.Restores) > 0 {
		// The transfer machinery exists only when asked for; without it
		// the engine is literally the pre-transfer engine. Restore-only
		// configs schedule downloads against the degenerate instant mix.
		params := cfg.Bandwidth
		if params == nil {
			params, err = transfer.InstantParams().Validate()
			if err != nil {
				panic(err) // static input; cannot fail
			}
		}
		s.xfer = &xferState{
			// Scheduler slots cover the population only: observers are
			// unmetered instrumentation and never reach the scheduler.
			sched:     transfer.NewScheduler(params, cfg.NumPeers),
			restore:   make([]int64, cfg.NumPeers),
			bandwidth: !params.Instant(),
		}
		for i := range s.xfer.restore {
			s.xfer.restore[i] = -1
		}
		if s.xfer.bandwidth {
			s.maint.SetTransfers((*simXfer)(s))
		}
	}

	if cfg.Replay != nil {
		// Replayed churn consumes no randomness: slots start dormant and
		// the trace's round-0 joins populate them at the top of Run.
		script, err := compileReplay(cfg.Replay, cfg.NumPeers)
		if err != nil {
			return nil, err
		}
		s.replay = script
		for id := range s.peers {
			p := &s.peers[id]
			p.cat = metrics.Newcomer
			p.death = never
			p.toggle = never
			p.catChange = never
		}
	} else {
		for id := range s.peers {
			s.initPeer(overlay.PeerID(id), 0, -1)
			s.catPop[metrics.Newcomer]++
			s.scheduleEarlier(overlay.PeerID(id), s.nextWake(&s.peers[id]))
		}
	}
	// Every slot starts armed (initial upload pending), so the first
	// round's walk visits the whole population once; walkPos is past
	// the end, so the requests land in the queue round 0 drains.
	for id := 0; id < cfg.NumPeers; id++ {
		s.requestVisit(overlay.PeerID(id))
	}
	for i := range s.obsSpecs {
		s.maint.SetUnmetered(s.observerSlot(i), true)
	}
	return s, nil
}

// requestVisit asks the walk to visit a population slot: this round if
// the walk has not yet passed it, next round otherwise. Observer slots
// are ignored — they are polled in their own phase. This is also the
// Maintainer's wake hook, so arming a slot (a ledger threshold
// crossing, a death reset) schedules its visit automatically.
func (s *Simulation) requestVisit(id overlay.PeerID) {
	if int(id) >= s.cfg.NumPeers {
		return
	}
	if int32(id) > s.walkPos {
		s.curQ.push(int32(id))
	} else {
		s.nextQ.push(int32(id))
	}
}

// scheduleEarlier tightens a slot's wake time: a no-op when the slot
// already wakes at or before round. Timers that move later instead
// leave a spurious early wake behind, which the visit resolves by
// rescheduling — never by consuming randomness.
func (s *Simulation) scheduleEarlier(id overlay.PeerID, round int64) {
	if round >= s.sched[id] {
		return
	}
	s.sched[id] = round
	if round < s.cfg.Rounds {
		s.cal.push(int32(id), round)
	}
}

// nextWake returns the earliest of a slot's timers. In replay mode
// deaths and sessions come from the trace, so only the category timer
// counts. Any new per-slot timer must be folded in here — New and the
// post-visit reschedule both derive wake times from this single place.
func (s *Simulation) nextWake(p *peer) int64 {
	if s.replay != nil {
		return p.catChange
	}
	next := p.death
	if p.catChange < next {
		next = p.catChange
	}
	if p.toggle < next {
		next = p.toggle
	}
	return next
}

// rescheduleAfterVisit recomputes a slot's wake time from its timers
// after its due events were processed. Anything still (or again) due
// is deferred to the next round, exactly as the scan engine's one
// check per slot per round did.
func (s *Simulation) rescheduleAfterVisit(id overlay.PeerID, round int64) {
	next := s.nextWake(&s.peers[id])
	if next <= round {
		next = round + 1
	}
	s.sched[id] = next
	if next < s.cfg.Rounds {
		s.cal.push(int32(id), next)
	}
}

// observerSlot maps observer index to its ledger slot.
func (s *Simulation) observerSlot(i int) overlay.PeerID {
	return overlay.PeerID(s.cfg.NumPeers + i)
}

// initPeer (re)initialises a population slot at the given join round
// with the given profile (pass -1 to sample one): fresh lifetime and
// availability session.
func (s *Simulation) initPeer(id overlay.PeerID, round int64, profile int) {
	p := &s.peers[id]
	prof := profile
	if prof < 0 {
		prof = s.cfg.Profiles.SampleIndex(s.r)
	}
	p.profile = int32(prof)
	p.avail = s.cfg.Profiles.Profile(prof).Availability
	if s.xfer != nil {
		// Bandwidth class is an identity property like the profile; with
		// a single class SampleIndex consumes no randomness, so instant
		// and restore-only configs keep the historical draw order.
		s.xfer.sched.AssignClass(id, s.xfer.sched.Params().SampleIndex(s.r))
	}
	p.join = round
	p.cat = metrics.Newcomer
	p.catChange = addClamped(round, metrics.CategoryBound(metrics.Newcomer))
	life := s.cfg.Profiles.SampleLifetime(s.r, prof)
	p.death = addClamped(round, life)
	p.online = s.r.Bool(p.avail)
	s.led.SetOnline(id, p.online)
	s.resetHistory(id) // fresh identity: observations start over
	s.invalidateSlot(id)
	s.recordSession(round, id, p.online)
	p.toggle = addClamped(round, churn.SessionLengthAt(s.cfg.Avail, s.r, p.avail, p.online, round))
	s.emitChurn(round, id, churn.EvJoin, prof)
	if p.online {
		s.emitChurn(round, id, churn.EvOnline, prof)
	} else {
		s.emitChurn(round, id, churn.EvOffline, prof)
	}
}

// emitChurn dispatches a churn event to every subscribed probe.
func (s *Simulation) emitChurn(round int64, id overlay.PeerID, kind churn.EventKind, profile int) {
	for _, p := range s.dispatch[evChurn] {
		p.OnChurn(ChurnEvent{Round: round, Peer: int(id), Kind: kind, Profile: profile})
	}
}

// setOnline flips a population peer's session state, updating the
// ledger and the monitoring history and emitting the churn event.
func (s *Simulation) setOnline(round int64, id overlay.PeerID, p *peer, online bool) {
	p.online = online
	s.led.SetOnline(id, online)
	s.recordSession(round, id, online)
	s.maint.InvalidateScore(id) // the flip mutated the monitored history
	kind := churn.EvOffline
	if online {
		kind = churn.EvOnline
	}
	s.emitChurn(round, id, kind, int(p.profile))
	if s.xfer != nil {
		// Session flips interrupt the flows they carry: offline suspends
		// every transfer touching the peer, online resumes those whose
		// other endpoint is up. Consumes no randomness.
		if online {
			s.xferResume(round, id)
		} else {
			s.xferSuspend(round, id)
		}
	}
}

// invalidateSlot drops a population slot's cached view and score when
// its occupant is replaced: the cached values described the departed
// peer.
func (s *Simulation) invalidateSlot(id overlay.PeerID) {
	s.viewKey[id] = 0
	s.maint.InvalidateScore(id)
}

// recordSession feeds a session transition into the slot's availability
// history. Rounds advance monotonically under engine control, so a
// record failure is a bug. While the sharded engine's churn phases run,
// the mutation is logged instead and applied — per-slot order intact —
// at the post-walk barrier; nothing reads a population history between
// here and there, so the deferral is invisible.
func (s *Simulation) recordSession(round int64, id overlay.PeerID, online bool) {
	if s.shards != nil && s.shards.logging {
		s.logHistOp(histOp{round: round, slot: int32(id), kind: histOpRecord, online: online})
		return
	}
	if err := s.hist[id].RecordTransition(round, online); err != nil {
		panic(err)
	}
}

// resetHistory clears the slot's availability history when its
// occupant is replaced (observations belong to identities, not slots),
// deferring through the sharded engine's op log like recordSession.
func (s *Simulation) resetHistory(id overlay.PeerID) {
	if s.shards != nil && s.shards.logging {
		s.logHistOp(histOp{slot: int32(id), kind: histOpReset})
		return
	}
	s.hist[id].Reset()
}

// peerEvent builds the probe payload for a population peer.
func (s *Simulation) peerEvent(round int64, id overlay.PeerID) PeerEvent {
	p := &s.peers[id]
	return PeerEvent{Round: round, Peer: int(id), Category: p.cat, Profile: int(p.profile)}
}

func addClamped(round, delta int64) int64 {
	if delta >= never || round+delta >= never || delta < 0 {
		return never
	}
	return round + delta
}

// simEnv adapts the simulation to maintenance.Env without an extra
// allocation per call.
type simEnv Simulation

// steadyHistory is the monitoring view of an observer peer: always
// online for as long as anyone has looked.
type steadyHistory struct{}

func (steadyHistory) Uptime(now int64, n int64) float64     { return 1 }
func (steadyHistory) ObservedSince() (round int64, ok bool) { return 0, true }

// View implements maintenance.Env: observable knowledge (age, monitored
// availability history) split from the oracle ground truth only the
// oracle baselines read. Population views are memoised per (slot,
// round): the view of a candidate probed by many repairing peers in one
// round is built once. The memo needs no flip invalidation — the view
// holds the history by reference — and occupant replacement drops it
// via invalidateSlot.
func (e *simEnv) View(id overlay.PeerID) selection.View {
	s := (*Simulation)(e)
	if int(id) >= s.cfg.NumPeers {
		// Observer: fixed age, immortal, always online.
		spec := s.obsSpecs[int(id)-s.cfg.NumPeers]
		return selection.View{
			Observed: selection.Observed{Age: spec.Age, History: steadyHistory{}},
			Oracle:   selection.Oracle{Availability: 1, Remaining: never},
		}
	}
	return s.materializeView(id)
}

// materializeView fills (or returns) the per-round view memo entry of
// a population slot. Besides the lazy miss path of simEnv.View it is
// the unit of the sharded engine's parallel warm phase, which calls it
// for disjoint slot ranges — safe because it writes only the slot's
// own memo entry and reads state that is frozen between the churn walk
// and the maintenance phase.
func (s *Simulation) materializeView(id overlay.PeerID) selection.View {
	key := s.round + 1
	if s.viewKey[id] == key {
		return s.viewVal[id]
	}
	p := &s.peers[id]
	remaining := int64(never)
	if p.death != never {
		remaining = p.death - s.round
	}
	v := selection.View{
		Observed: selection.Observed{Age: s.round - p.join, History: s.hist[id]},
		Oracle:   selection.Oracle{Availability: p.avail, Remaining: remaining},
	}
	s.viewKey[id] = key
	s.viewVal[id] = v
	return v
}

// Round implements maintenance.Env.
func (e *simEnv) Round() int64 { return (*Simulation)(e).round }

// SampleCandidate implements maintenance.Env: uniform over the regular
// population (observers are invisible as candidates, per the paper).
func (e *simEnv) SampleCandidate(r *rng.Rand) overlay.PeerID {
	s := (*Simulation)(e)
	return overlay.PeerID(r.Intn(s.cfg.NumPeers))
}

// Run executes the configured number of rounds and returns the result.
func (s *Simulation) Run() *Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// cancelCheckMask controls how often RunContext polls the context: every
// 64 rounds, cheap enough to be invisible and responsive enough that a
// cancelled multi-year run stops within milliseconds.
const cancelCheckMask = 63

// RunContext executes the run, polling ctx every few rounds; on
// cancellation it stops immediately and returns ctx's error with a nil
// result. A completed run is identical to Run's.
//
// RunContext is also the engine's panic recovery boundary: a panic in
// the engine or in an attached probe is recovered into a *PanicError
// that attributes the failing variant's Config, so a campaign runner
// can contain the failure instead of losing sibling variants (see
// internal/experiments).
func (s *Simulation) RunContext(ctx context.Context) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, newPanicError(s.cfg, r)
		}
	}()
	return s.runContext(ctx)
}

// runContext is RunContext without the recovery boundary.
func (s *Simulation) runContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	for ; s.round < s.cfg.Rounds; s.round++ {
		if done != nil && s.round&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		s.stepRound()
		if s.cfg.Progress != nil && (s.round+1)%s.cfg.ProgressEvery == 0 {
			s.cfg.Progress(s.round + 1)
		}
	}
	included := s.countIncluded()
	res := &Result{
		Config:          s.cfg,
		Collector:       s.col,
		Observers:       s.obs,
		Trace:           s.trace,
		Deaths:          s.deaths,
		Cancels:         s.cancels,
		FinalPlacements: s.led.TotalPlacements(),
		FinalIncluded:   included,
	}
	if s.cfg.PhaseTimes {
		res.Phases = s.phases
	}
	return res, nil
}

// stepRound advances one round: shocks first, then churn events (from
// the calendar queue or the replay script) interleaved with active-set
// checks in ascending slot order, then maintenance actions in random
// order, then accounting.
//
// The walk replaces the historical full-population scan. Invariant
// (load-bearing for reproducibility): the rng draw order of the scan
// is preserved exactly. Due timed events drain in ascending slot id
// within a round; each visited slot runs the same per-slot body the
// scan ran (death, else category change, then toggle, then the
// archive-loss check, then actor collection); and a state change
// caused by slot j is observed by slot i's checks this round iff
// i > j — requestVisit's walkPos routing — exactly as the scan's
// single left-to-right pass saw it. Slots with no due timer, no
// pending loss check and no active maintenance work are never touched,
// which is what makes a quiescent round O(events) instead of
// O(NumPeers).
func (s *Simulation) stepRound() {
	if s.v3 != nil {
		s.stepRoundV3()
		return
	}
	round := s.round
	pt := s.phaseStart()
	s.actors = s.actors[:0]
	s.curQ, s.nextQ = s.nextQ, s.curQ
	s.walkPos = -1
	if s.shards != nil {
		// The churn phases log availability-history mutations instead of
		// applying them; the log drains at the post-walk barrier below.
		s.shards.logging = true
	}

	// Phase 0: correlated-failure shocks, so this round's churn and
	// maintenance already see the damage; then restore demand (a flash
	// crowd typically follows a shock by a few rounds).
	if len(s.cfg.Shocks) > 0 {
		s.stepShocks(round)
	}
	if s.xfer != nil && len(s.cfg.Restores) > 0 {
		s.stepRestores(round)
	}

	// Phase 1: churn events and actor collection. In replay mode the
	// trace is the sole source of membership and session transitions;
	// the walk below then only promotes categories and collects actors.
	if s.replay != nil {
		s.applyReplay(round)
	}
	s.due = s.cal.drain(round, s.sched, s.due[:0])
	for _, slot := range s.due {
		s.curQ.push(slot)
	}
	for !s.curQ.empty() {
		id := s.curQ.pop()
		s.walkPos = id
		s.visitSlot(round, overlay.PeerID(id))
	}
	s.walkPos = math.MaxInt32
	s.phaseLap(&s.phases.Walk, &pt)

	// Sharded barrier: apply the walk's deferred history mutations, one
	// worker per shard. Must complete before anything reads a history —
	// the earliest readers are the warm phase and the maintenance
	// phase's candidate views.
	if s.shards != nil {
		s.applyHistOps()
	}
	s.phaseLap(&s.phases.Merge, &pt)

	// Phase 1.5: due transfer completions, after the churn walk so a
	// same-round death or offline event wins over the completion (the
	// transfer aborted or suspended before it could land), before the
	// maintenance phase so delivered blocks count toward this round's
	// deficits. Consumes no randomness.
	if s.xfer != nil {
		s.stepTransfers(round)
	}
	s.phaseLap(&s.phases.TransferDrain, &pt)

	// Phase 1.6: adaptive redundancy evaluation, after the history
	// barrier (it reads monitored uptimes) and before the maintenance
	// shuffle (a grow decision arms its slot for next round's walk).
	// Draws only from the derived scratch stream, never from s.r.
	if s.redun != nil {
		s.stepRedundancy(round)
	}
	s.phaseLap(&s.phases.Evaluation, &pt)

	// Sharded warm phase: when the actor set will probe a large
	// fraction of the population, materialise every slot's view (and
	// pure-policy score) in parallel before maintenance reads them
	// through the per-round memos. Consumes no randomness and computes
	// exactly the values the lazy miss paths would, so it is invisible
	// to trajectories at any shard count.
	if s.shards != nil && s.warmWorthwhile() {
		s.warmCaches()
	}

	// Phase 2: maintenance in random order (the paper randomises peer
	// execution order each round).
	s.r.Shuffle(len(s.actors), func(i, j int) {
		s.actors[i], s.actors[j] = s.actors[j], s.actors[i]
	})
	for _, id := range s.actors {
		res := s.maint.Step(s.r, id)
		s.emitMaintOutcome(round, id, res)
	}

	// Observers act after the population (they contend with nobody).
	for i := range s.obsSpecs {
		id := s.observerSlot(i)
		if s.maint.LostArchive(id) {
			s.maint.ResetArchive(id)
		}
		if s.maint.WantsStep(id) {
			res := s.maint.Step(s.r, id)
			switch res.Outcome {
			case maintenance.OutcomeRepaired, maintenance.OutcomeInitialDone:
				ev := ObserverRepairEvent{Round: round, Observer: i, Name: s.obsSpecs[i].Name}
				for _, pr := range s.dispatch[evObserverRepair] {
					pr.OnObserverRepair(ev)
				}
			}
		}
	}

	// Phase 3: accounting.
	end := RoundEndEvent{Round: round, Population: s.catPop}
	if s.redun != nil {
		end.MeanRedundancy = float64(s.redun.sum) / float64(s.cfg.NumPeers)
	}
	for _, pr := range s.dispatch[evRoundEnd] {
		pr.OnRoundEnd(end)
	}
	s.phaseLap(&s.phases.Maintenance, &pt)
}

// visitSlot runs the per-slot round body for one walked slot: due
// timed events first (mirroring the scan engine's body statement for
// statement, so the rng stream is bit-identical), then the pending
// archive-loss check, then active-set maintenance bookkeeping. A slot
// woken spuriously (its timer moved later after scheduling) finds
// nothing due, consumes no randomness, and is simply rescheduled.
func (s *Simulation) visitSlot(round int64, id overlay.PeerID) {
	p := &s.peers[id]
	if s.sched[id] == round {
		if s.replay != nil {
			if round >= p.catChange {
				s.promote(p)
			}
		} else {
			if round >= p.death {
				s.replacePeer(id, p, round)
			} else if round >= p.catChange {
				s.promote(p)
			}
			if round >= p.toggle {
				// The session draw must stay ahead of the churn emit so
				// the rng stream matches the historical inline flip.
				next := addClamped(round, churn.SessionLengthAt(s.cfg.Avail, s.r, p.avail, !p.online, round))
				s.setOnline(round, id, p, !p.online)
				p.toggle = next
			}
		}
		s.rescheduleAfterVisit(id, round)
	}

	// Permanent-loss detection is objective (the data is gone) and
	// does not require the owner to be online. The outage that
	// preceded it has been counted when the owner observed it. The
	// flag is only a candidate marker set at the alive<k crossing;
	// LostArchive is the verdict.
	if s.maint.TakeLossCheck(id) && s.maint.LostArchive(id) {
		if s.xfer != nil {
			// The in-flight blocks (and any restore) belong to the
			// abandoned archive; transfers the slot merely hosts live on.
			s.xferAbortOwner(round, id)
		}
		s.maint.ResetArchive(id)
		// The re-encoded archive is a fresh object: its redundancy target
		// restarts at the policy's initial value.
		s.redunReset(id)
		ev := s.peerEvent(round, id)
		for _, pr := range s.dispatch[evHardLoss] {
			pr.OnHardLoss(ev)
		}
	}

	if s.maint.Armed(id) {
		if !s.maint.WantsStep(id) {
			s.maint.Disarm(id)
		} else {
			if p.online {
				s.actors = append(s.actors, id)
			}
			// Armed slots are re-visited every round until their work
			// drains, like the scan engine's per-round WantsStep poll —
			// but only for the active set.
			s.nextQ.push(int32(id))
		}
	}
}

// promote moves a peer up one age category.
func (s *Simulation) promote(p *peer) {
	s.catPop[p.cat]--
	p.cat++
	s.catPop[p.cat]++
	p.catChange = addClamped(p.join, metrics.CategoryBound(p.cat))
}

// replacePeer handles a departure: blocks vanish, the slot is reused by
// a fresh age-0 peer (the paper replaces departures immediately). The
// replacement inherits the departed peer's profile so the population
// proportions stay exactly stationary, unless the config asks for
// resampling.
func (s *Simulation) replacePeer(id overlay.PeerID, p *peer, round int64) {
	dead := s.peerEvent(round, id)
	for _, pr := range s.dispatch[evDeath] {
		pr.OnDeath(dead)
	}
	s.emitChurn(round, id, churn.EvLeave, int(p.profile))
	s.deaths++
	s.catPop[p.cat]--
	s.catPop[metrics.Newcomer]++
	s.led.RemovePeer(id)
	s.tab.Bump(id)
	if s.xfer != nil {
		// Death kills every transfer the peer touched, before the slot's
		// maintenance state resets and a fresh identity takes it over.
		s.xferAbortAll(round, id)
	}
	s.maint.Reset(id)
	s.redunReset(id)
	profile := int(p.profile)
	if s.cfg.ResampleProfileOnReplace {
		profile = -1
	}
	s.initPeer(id, round, profile)
}

// StepRound advances the simulation by a single round, up to the
// configured horizon (benchmarks and tests; Run/RunContext drive full
// runs). It reports whether a round was executed.
func (s *Simulation) StepRound() bool {
	if s.round >= s.cfg.Rounds {
		return false
	}
	s.stepRound()
	s.round++
	return true
}

// Round returns the current round (for tests).
func (s *Simulation) Round() int64 { return s.round }

// Ledger exposes the overlay ledger (for tests and diagnostics).
func (s *Simulation) Ledger() *overlay.Ledger { return s.led }

// Maintainer exposes the protocol state (for tests and diagnostics).
func (s *Simulation) Maintainer() *maintenance.Maintainer { return s.maint }

// CategoryPopulation returns the current population of a category.
func (s *Simulation) CategoryPopulation(c metrics.Category) int64 { return s.catPop[c] }
