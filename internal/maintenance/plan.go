package maintenance

// Plan/apply maintenance: the v3 engine's parallel counterpart of Step.
//
// Step mutates the ledger as it goes, which is exactly what a
// shard-parallel maintenance phase cannot do: owners in different
// shards would race on host quota and on the shared partner-mark
// scratch. PlanStep therefore runs the *same* decision procedure
// against a frozen snapshot of the round (the ledger, table, transfer
// scheduler and score memo as they stand after the walk merge), records
// every intended side effect as a PlannedOp in a per-worker Workspace,
// and defers all mutation. ApplyPlan then executes the recorded ops
// sequentially, in canonical (shard, log) order, validating only the
// genuinely contended resource — host quota net of transfer
// reservations — at apply time.
//
// Why frozen reads are sound: during the plan phase nothing mutates the
// ledger, the table or the scheduler at all, so every read is
// race-free. During the apply phase an owner's own placement rows are
// mutated only by its own ops, no session flips or deaths occur, and
// candidate liveness/generation is stable; the only way one owner's
// apply can invalidate another's plan is by consuming host quota —
// which is why OpPlace/OpBeginUpload re-check freeQuota and skip on a
// lost race (the owner stays in stateUploading and retries next round,
// deterministically).
//
// Concurrency contract: PlanStep may run concurrently from one
// goroutine per disjoint owner set, each with its own Workspace and its
// own rng stream. It writes only owner-local state (the owner's
// peerState and pool) and Workspace-local scratch; it never touches the
// Maintainer's shared markEpoch/partnerMark/hostBuf, and it reads the
// score memo without storing misses. ApplyPlan must run on a single
// goroutine.

import (
	"fmt"

	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
)

// OpKind discriminates a PlannedOp.
type OpKind uint8

// Planned-op kinds, in the order a single step can emit them.
const (
	// OpDropOffline replays the decode point's offline write-off: the
	// apply phase re-runs the descending offline scan over the owner's
	// live placements (provably the same set the plan counted).
	OpDropOffline OpKind = iota
	// OpPlace places one block on Host (instant mode).
	OpPlace
	// OpBeginUpload enqueues one block transfer to Host (bandwidth mode).
	OpBeginUpload
)

// PlannedOp is one deferred ledger/scheduler mutation.
type PlannedOp struct {
	Kind OpKind
	Host overlay.PeerID
}

// PlanResult is one owner's planned step: the tentative outcome plus
// the half-open op range [OpStart, OpEnd) in the Workspace op log.
type PlanResult struct {
	Owner overlay.PeerID
	// Res is the step outcome as far as the plan could decide it
	// (cancellations, stalls and mid-upload rounds are final at plan
	// time; completions are not — see Completed).
	Res StepResult
	// Completed marks an instant-mode step whose planned placements
	// would finish the episode; ApplyPlan re-checks against the live
	// ledger and only then reports Repaired/InitialDone.
	Completed bool
	OpStart   int32
	OpEnd     int32
}

// Workspace is one plan-phase worker's scratch: its own partner-mark
// epochs (the shared Maintainer arrays would race across workers), its
// op log and results, and the read-only view accessor the engine
// supplies.
type Workspace struct {
	// View describes a peer for the selection policy without mutating
	// any shared memo (the engine's v3 accessor reads its view cache but
	// never stores misses from the plan phase).
	View func(id overlay.PeerID) selection.View

	// Ops and Results accumulate this worker's planned steps in owner
	// order; ApplyPlan consumes them in the same order.
	Ops     []PlannedOp
	Results []PlanResult

	markEpoch   uint64
	partnerMark []uint64
	hostBuf     []overlay.PeerID
}

// NewWorkspace returns a Workspace for a population of n slots using
// the given read-only view accessor.
func NewWorkspace(n int, view func(id overlay.PeerID) selection.View) *Workspace {
	return &Workspace{
		View:        view,
		partnerMark: make([]uint64, n),
	}
}

// Reset clears the op log and results for a new round. Mark epochs
// persist (a fresh epoch per pool refresh invalidates old marks).
func (ws *Workspace) Reset() {
	ws.Ops = ws.Ops[:0]
	ws.Results = ws.Results[:0]
}

// scoreOfRO is scoreOf without the memo store: concurrent planners may
// read a warmed entry but must not race on writing misses.
func (m *Maintainer) scoreOfRO(ctx selection.Context, c overlay.PeerID, v selection.View) float64 {
	if m.scoreKey != nil && m.scoreKey[c] == ctx.Round+1 {
		return m.scoreVal[c]
	}
	return m.pol.Score(ctx, v)
}

// PlanStep plans one round of maintenance for an online owner against
// the frozen round state, appending one PlanResult (and any deferred
// ops) to the Workspace. It is the plan-phase mirror of Step: the
// decision structure, the pool sampling and the rng draw order are
// identical; only the mutations are deferred.
func (m *Maintainer) PlanStep(r *rng.Rand, id overlay.PeerID, ws *Workspace) {
	p := &m.peers[id]
	pr := PlanResult{Owner: id, OpStart: int32(len(ws.Ops))}
	if !p.included {
		// Initial (or post-loss) upload: straight to Uploading.
		if p.st == stateIdle {
			p.epStart = m.env.Round()
		}
		p.st = stateUploading
		m.planUpload(r, id, p, ws, &pr, m.led.Alive(id))
	} else {
		switch p.st {
		case stateIdle:
			if m.led.Visible(id) >= m.threshold(id) {
				// Spurious visit: nothing to do.
			} else {
				p.st = stateTriggered
				p.epStart = m.env.Round()
				m.planTriggered(r, id, p, ws, &pr)
			}
		case stateTriggered:
			m.planTriggered(r, id, p, ws, &pr)
		case stateUploading:
			m.planUpload(r, id, p, ws, &pr, m.led.Alive(id))
		default:
			panic(fmt.Sprintf("maintenance: bad state %d", p.st))
		}
	}
	pr.OpEnd = int32(len(ws.Ops))
	ws.Results = append(ws.Results, pr)
}

// planTriggered mirrors stepTriggered: cancellations, stalls and the
// RepairDelay hold commit at plan time (they touch only owner-local
// state); the decode point's offline write-off is counted now and
// deferred as OpDropOffline.
func (m *Maintainer) planTriggered(r *rng.Rand, id overlay.PeerID, p *peerState, ws *Workspace, pr *PlanResult) {
	visible := m.led.Visible(id)
	if m.params.CancelOnRecover && visible >= m.threshold(id) {
		m.finishEpisode(p)
		pr.Res = StepResult{Outcome: OutcomeCanceled}
		return
	}
	m.planRefreshPool(r, id, p, ws)
	if visible < m.params.DataBlocks {
		pr.Res = StepResult{Outcome: OutcomeStalled}
		if !p.outage {
			p.outage = true
			pr.Res.OutageStarted = true
		}
		return
	}
	p.outage = false // decodable again; any new outage is a fresh event
	if p.waited < m.params.RepairDelay {
		p.waited++
		return // OutcomeNone
	}
	// Decode point: count the offline write-off against the frozen
	// placements; the drops themselves are deferred. No session flips or
	// deaths happen between plan and apply, and an owner's rows are
	// mutated only by its own (later) ops, so the apply-time re-scan
	// drops exactly the placements counted here.
	alive := m.led.Alive(id)
	if m.params.DropOffline {
		dropped := 0
		for i := alive - 1; i >= 0; i-- {
			host, err := m.led.HostAt(id, i)
			if err != nil {
				panic(err) // ledger indexes are engine-controlled
			}
			if !m.led.Online(host) {
				dropped++
			}
		}
		if dropped > 0 {
			ws.Ops = append(ws.Ops, PlannedOp{Kind: OpDropOffline})
			p.dropped += dropped
			alive -= dropped
		}
	}
	if alive >= m.targetBlocks(id) {
		m.finishEpisode(p)
		pr.Res = StepResult{Outcome: OutcomeCanceled}
		return
	}
	p.st = stateUploading
	m.planUpload(r, id, p, ws, pr, alive)
}

// planUpload mirrors stepUpload against the frozen round state. alive
// is the owner's live block count net of drops planned this step.
func (m *Maintainer) planUpload(r *rng.Rand, id overlay.PeerID, p *peerState, ws *Workspace, pr *PlanResult, alive int) {
	m.planRefreshPool(r, id, p, ws)
	if m.xfer != nil && !p.unmetered {
		m.planUploadTransfers(id, p, ws, alive)
		return // OutcomeNone; transfer completions finish episodes
	}
	for i := range p.pool {
		e := &p.pool[i]
		e.placeable = m.tab.Current(e.ref) &&
			m.led.Online(e.ref.ID) &&
			(p.unmetered || m.freeQuota(e.ref.ID) >= 1) &&
			ws.partnerMark[e.ref.ID] != ws.markEpoch
	}
	deficit := m.targetBlocks(id) - alive
	budget := m.params.UploadBudgetPerRound
	if budget <= 0 {
		budget = deficit // unlimited
	}
	for deficit > 0 && budget > 0 {
		best := m.takeBestPlaceable(id, p)
		if best == overlay.NoPeer {
			break
		}
		ws.Ops = append(ws.Ops, PlannedOp{Kind: OpPlace, Host: best})
		ws.partnerMark[best] = ws.markEpoch
		p.uploaded++
		deficit--
		budget--
	}
	if deficit > 0 {
		return // OutcomeNone: keep going next round
	}
	// The planned placements would complete the episode; whether they
	// all land is decided at apply time (quota races skip placements).
	pr.Completed = true
}

// planUploadTransfers mirrors stepUploadTransfers: transfer begins are
// deferred as OpBeginUpload; the step outcome is always OutcomeNone.
func (m *Maintainer) planUploadTransfers(id overlay.PeerID, p *peerState, ws *Workspace, alive int) {
	for i := range p.pool {
		e := &p.pool[i]
		e.placeable = m.tab.Current(e.ref) &&
			m.led.Online(e.ref.ID) &&
			m.freeQuota(e.ref.ID) >= 1 &&
			ws.partnerMark[e.ref.ID] != ws.markEpoch
	}
	deficit := m.targetBlocks(id) - alive - m.xfer.Inflight(id)
	slots := m.xfer.UploadSlots(id)
	for deficit > 0 && slots > 0 {
		best := m.takeBestPlaceable(id, p)
		if best == overlay.NoPeer {
			break
		}
		ws.Ops = append(ws.Ops, PlannedOp{Kind: OpBeginUpload, Host: best})
		ws.partnerMark[best] = ws.markEpoch
		deficit--
		slots--
	}
}

// planRefreshPool mirrors refreshPool using the Workspace's own
// partner-mark epochs, the frozen ledger/scheduler state and the
// read-only view accessor. Sampling and acceptance draw from r exactly
// as refreshPool does, so the per-slot draw sequence is reproducible.
func (m *Maintainer) planRefreshPool(r *rng.Rand, id overlay.PeerID, p *peerState, ws *Workspace) {
	ws.markEpoch++
	epoch := ws.markEpoch
	ws.hostBuf = m.led.Hosts(id, ws.hostBuf[:0])
	for _, h := range ws.hostBuf {
		ws.partnerMark[h] = epoch
	}
	if m.xfer != nil && !p.unmetered {
		ws.hostBuf = m.xfer.PendingHosts(id, ws.hostBuf[:0])
		for _, h := range ws.hostBuf {
			ws.partnerMark[h] = epoch
		}
	}

	// Prune entries that can never be used again.
	valid := p.pool[:0]
	for _, e := range p.pool {
		if !m.tab.Current(e.ref) || ws.partnerMark[e.ref.ID] == epoch {
			delete(p.inPool, e.ref.ID)
			continue
		}
		valid = append(valid, e)
	}
	p.pool = valid

	if len(p.pool) >= m.params.TotalBlocks {
		return // pool is as large as any conceivable deficit
	}
	if cap(p.pool) < m.params.TotalBlocks {
		np := make([]poolEntry, len(p.pool), m.params.TotalBlocks)
		copy(np, p.pool)
		p.pool = np
	}
	if p.inPool == nil {
		p.inPool = make(map[overlay.PeerID]uint32, m.params.TotalBlocks)
	}
	ctx := selection.Context{Round: m.env.Round()}
	ownerView := ws.View(id)
	for tries := 0; tries < m.params.PoolSamplePerRound && len(p.pool) < m.params.TotalBlocks; tries++ {
		c := m.env.SampleCandidate(r)
		if c == overlay.NoPeer || c == id {
			continue
		}
		if !m.led.Online(c) {
			continue // cannot negotiate with an offline peer
		}
		if gen, ok := p.inPool[c]; ok && gen == m.tab.Gen(c) {
			continue // already pooled
		}
		if !p.unmetered && m.freeQuota(c) < 1 {
			continue
		}
		if ws.partnerMark[c] == epoch {
			continue // one block per partner per archive
		}
		candView := ws.View(c)
		if !selection.AgreeCtx(r, m.pol, ctx, ownerView, candView) {
			continue
		}
		p.inPool[c] = m.tab.Gen(c)
		p.pool = append(p.pool, poolEntry{ref: m.tab.Ref(c), score: m.scoreOfRO(ctx, c, candView)})
	}
}

// ApplyPlan executes one owner's planned ops against the live ledger
// and scheduler, returning the step's final outcome. Must be called on
// a single goroutine, in the canonical (shard, log) order the plans
// were produced in.
func (m *Maintainer) ApplyPlan(ws *Workspace, pr *PlanResult) StepResult {
	id := pr.Owner
	p := &m.peers[id]
	for _, op := range ws.Ops[pr.OpStart:pr.OpEnd] {
		switch op.Kind {
		case OpDropOffline:
			for i := m.led.Alive(id) - 1; i >= 0; i-- {
				host, err := m.led.HostAt(id, i)
				if err != nil {
					panic(err)
				}
				if !m.led.Online(host) {
					if err := m.led.DropPlacementAt(id, i); err != nil {
						panic(err)
					}
				}
			}
		case OpPlace:
			if m.freeQuota(op.Host) < 1 {
				// Another owner's apply consumed the quota the plan saw.
				// Un-count the placement and retry next round: the pool
				// entry is already consumed, which is fine — the slot is
				// still uploading, armed and queued.
				p.uploaded--
				continue
			}
			m.place(id, p, op.Host)
		case OpBeginUpload:
			if m.freeQuota(op.Host) < 1 {
				continue // lost the reservation race; retry next round
			}
			m.xfer.BeginUpload(id, m.tab.Ref(op.Host))
		default:
			panic(fmt.Sprintf("maintenance: bad planned op %d", op.Kind))
		}
	}
	if pr.Completed {
		if m.led.Alive(id) >= m.targetBlocks(id) {
			res := StepResult{Uploaded: p.uploaded, Dropped: p.dropped}
			if p.included {
				res.Outcome = OutcomeRepaired
			} else {
				res.Outcome = OutcomeInitialDone
				p.included = true
			}
			m.finishEpisode(p)
			return res
		}
		return StepResult{Outcome: OutcomeNone} // quota races; stay uploading
	}
	return pr.Res
}

// ResetArchiveLocal is ResetArchive minus the ledger release: the v3
// walk runs the slot-local half during its parallel phase (peerState is
// owned by the slot's shard) and defers led.DropOwner — a shared-ledger
// mutation that fires watchers — to the engine's merge. The two halves
// together are exactly ResetArchive.
func (m *Maintainer) ResetArchiveLocal(id overlay.PeerID) {
	p := &m.peers[id]
	p.included = false
	p.outage = false
	p.lossCheck = false
	p.st = stateIdle
	p.waited = 0
	p.uploaded = 0
	p.dropped = 0
	p.pool = p.pool[:0]
	clear(p.inPool)
	p.armed = true // the re-encoded archive needs a full upload
}
