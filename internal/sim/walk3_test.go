package sim

import (
	"strings"
	"sync"
	"testing"

	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/transfer"
)

// The v3 engine's correctness claim mirrors the v2 one (shard_test.go)
// with a versioned twist: v3 digests are pinned separately from the v1
// goldens (draw order differs by construction), and every shard count
// S ∈ {1, 2, 4, 8} must reproduce the pinned v3 digest bit for bit —
// the v3 invariant of walk3.go. The pins below were captured by running
// the v3 engine at S=1 on the scenario configs of shard_test.go.

// walkV3Golden holds the pinned v3 digest per scenario name.
var walkV3Golden = map[string]uint64{
	"iid":                0x0cd3b098d706981b,
	"diurnal":            0xa828f56dfb5f10c6,
	"shock":              0x0a89b71e660cd441,
	"bandwidth":          0x81538f462da41cd2,
	"adaptive":           0xd04a5b0e4306a059,
	"adaptive-bandwidth": 0x533495d926d49707,
}

// TestWalkV3ShardEquivalence: for every scenario of the determinism
// matrix, the v3 digest must equal the pinned v3 golden at S=1 and be
// identical for S ∈ {2, 4, 8}.
func TestWalkV3ShardEquivalence(t *testing.T) {
	for _, sc := range shardScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref := sc.cfg
			ref.Walk = WalkV3
			ref.Shards = 1
			want := digestRun(t, ref)
			if golden := walkV3Golden[sc.name]; golden != 0 && want != golden {
				t.Errorf("v3 S=1 digest = %#x, want pinned %#x (v3 trajectory drifted)", want, golden)
			}
			for _, shards := range []int{2, 4, 8} {
				cfg := sc.cfg
				cfg.Walk = WalkV3
				cfg.Shards = shards
				if got := digestRun(t, cfg); got != want {
					t.Errorf("v3 S=%d digest = %#x, want %#x (v3 merge diverged from S=1)", shards, got, want)
				}
			}
		})
	}
}

// TestWalkV3ReplayEquivalence: the replay engine under v3 — a trace
// recorded on the v1 path replays to the same digest at every v3 shard
// count.
func TestWalkV3ReplayEquivalence(t *testing.T) {
	rec := digestConfig()
	rec.RecordTrace = true
	rec.Observers = nil
	s, err := New(rec)
	if err != nil {
		t.Fatal(err)
	}
	trace := s.Run().Trace

	var want uint64
	const pinned uint64 = 0xea97e4142bb49fd3
	for i, shards := range []int{1, 2, 4, 8} {
		rep := digestConfig()
		rep.Observers = nil
		rep.Replay = trace
		rep.StrategySpec = "monitored-availability"
		rep.Walk = WalkV3
		rep.Shards = shards
		got := digestRun(t, rep)
		if i == 0 {
			want = got
			if pinned != 0 && want != pinned {
				t.Errorf("v3 replay S=1 digest = %#x, want pinned %#x", want, pinned)
			}
			continue
		}
		if got != want {
			t.Errorf("v3 replay S=%d digest = %#x, want %#x", shards, got, want)
		}
	}
}

// TestWalkV3EdgeCases targets the merge's corner geometry: more shards
// than slots, a two-shard split whose boundary repair traffic must
// straddle constantly (tight quota forces cross-boundary placements),
// and kill shocks under bandwidth mode so same-round cross-shard
// death-vs-delivery collisions occur. Each case is held to its own
// S=1 reference.
func TestWalkV3EdgeCases(t *testing.T) {
	bw, err := transfer.Parse("skewed")
	if err != nil {
		t.Fatal(err)
	}

	shardsOverSlots := digestConfig()
	shardsOverSlots.NumPeers = 40
	shardsOverSlots.Rounds = 300

	straddle := digestConfig()
	straddle.NumPeers = 64
	straddle.Quota = 48 // tight: owners must place across the S=2 boundary
	straddle.Rounds = 400

	deathVsDelivery := digestConfig()
	deathVsDelivery.Bandwidth = bw
	deathVsDelivery.Shocks = []ShockSpec{
		{Name: "regional-kill", Rate: 0.02, Fraction: 0.3, Regions: 4, Kill: true},
	}

	cases := []struct {
		name   string
		cfg    Config
		shards []int
	}{
		{"shards-over-slots", shardsOverSlots, []int{64, 256}},
		{"boundary-straddle", straddle, []int{2, 4}},
		{"death-vs-delivery", deathVsDelivery, []int{2, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.cfg
			ref.Walk = WalkV3
			ref.Shards = 1
			want := digestRun(t, ref)
			for _, shards := range tc.shards {
				cfg := tc.cfg
				cfg.Walk = WalkV3
				cfg.Shards = shards
				if got := digestRun(t, cfg); got != want {
					t.Errorf("S=%d digest = %#x, want %#x", shards, got, want)
				}
			}
		})
	}
}

// TestWalkV3SlotStreams pins the v3 randomness seam: one stream per
// population slot, derived from (seed, v3SlotStreamBase + slot),
// disjoint from the shard scratch streams and the redundancy stream.
func TestWalkV3SlotStreams(t *testing.T) {
	cfg := digestConfig()
	cfg.Walk = WalkV3
	cfg.Shards = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.v3 == nil || len(s.v3.streams) != cfg.NumPeers {
		t.Fatalf("v3 state = %+v, want %d slot streams", s.v3, cfg.NumPeers)
	}
	for _, slot := range []int{0, 1, cfg.NumPeers / 2, cfg.NumPeers - 1} {
		want := rng.New(rng.Derive(cfg.Seed, v3SlotStreamBase+uint64(slot))).Uint64()
		if got := s.v3.streams[slot].Uint64(); got != want {
			t.Errorf("slot %d stream not derived from (seed, base+%d)", slot, slot)
		}
	}
	for i := 0; i < 64; i++ {
		if v3SlotStreamBase+uint64(i) == redunStreamIndex {
			t.Fatalf("slot stream index %d collides with the redundancy stream", i)
		}
	}
}

// TestWalkV3S1RunsShardedPath: v3 at S<=1 must still construct the
// sharded scaffolding (warm phase, inclusion scan) so S=1 executes the
// same code path as S=k — that is what makes the S=1 digest a valid
// reference.
func TestWalkV3S1RunsShardedPath(t *testing.T) {
	cfg := digestConfig()
	cfg.Walk = WalkV3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.v3 == nil || s.v3.n != 1 {
		t.Fatalf("v3 worker count = %v, want 1", s.v3)
	}
	if s.shards == nil || s.shards.n != 1 {
		t.Fatalf("shard state = %+v, want n=1 scaffolding", s.shards)
	}
}

// impurePolicy is a Policy without the PureScore marker: the v3 config
// guard must reject it (the shard-local planner evaluates scores
// concurrently and relies on purity).
type impurePolicy struct{}

func (impurePolicy) Name() string                                                         { return "impure" }
func (impurePolicy) AcceptProb(selection.Context, selection.View, selection.View) float64 { return 1 }
func (impurePolicy) Score(selection.Context, selection.View) float64                      { return 0 }

// TestWalkConfigGuards: unknown walk modes and v3-unsupported options
// fail validation with errors naming the offender; the default
// normalises to v1.
func TestWalkConfigGuards(t *testing.T) {
	base := digestConfig()

	def, err := base.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if def.Walk != WalkV1 {
		t.Errorf("default Walk normalised to %q, want %q", def.Walk, WalkV1)
	}

	bad := base
	bad.Walk = "v2"
	if _, err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "v2") {
		t.Errorf("Walk=v2 error = %v, want unknown-mode error naming it", err)
	}

	legacy := base
	legacy.Walk = WalkV3
	legacy.Strategy = selection.AgeBased{L: 100}
	if _, err := legacy.Validate(); err == nil || !strings.Contains(err.Error(), "Strategy") {
		t.Errorf("v3+Strategy error = %v, want rejection naming Strategy", err)
	}

	impure := base
	impure.Walk = WalkV3
	impure.Policy = impurePolicy{}
	if _, err := impure.Validate(); err == nil || !strings.Contains(err.Error(), "pure") {
		t.Errorf("v3+impure-policy error = %v, want rejection naming purity", err)
	}

	// The same impure policy is fine under v1.
	v1 := base
	v1.Policy = impurePolicy{}
	if _, err := v1.Validate(); err != nil {
		t.Errorf("v1+impure-policy unexpectedly rejected: %v", err)
	}
}

// TestWalkV3ConcurrentRuns is the race-detector stress for the v3 walk,
// merge and plan/apply: several v3 simulations at different shard
// counts run concurrently in one process; every run must produce the
// S=1 v3 digest.
func TestWalkV3ConcurrentRuns(t *testing.T) {
	cfg := digestConfig()
	cfg.NumPeers = 600
	cfg.Rounds = 200
	cfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 60, Fraction: 1.0, Outage: 24},
	}
	ref := cfg
	ref.Walk = WalkV3
	ref.Shards = 1
	want := digestRun(t, ref)

	const runs = 8
	digests := make([]uint64, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := cfg
			run.Walk = WalkV3
			run.Shards = 2 + i%7 // S in [2, 8]
			d := newDigestProbe()
			run.Probes = append(run.Probes, d)
			s, err := New(run)
			if err != nil {
				errs[i] = err
				return
			}
			res := s.Run()
			d.mix(res.Deaths, res.Cancels, int64(res.FinalPlacements), int64(res.FinalIncluded))
			digests[i] = d.h.Sum64()
		}(i)
	}
	wg.Wait()
	for i, got := range digests {
		if errs[i] != nil {
			t.Errorf("concurrent v3 run %d: %v", i, errs[i])
			continue
		}
		if got != want {
			t.Errorf("concurrent v3 run %d (S=%d) digest = %#x, want %#x", i, 2+i%7, got, want)
		}
	}
}

// TestWalkV3PhaseTimes: phase accounting fills Result.Phases under both
// engines without perturbing the digest.
func TestWalkV3PhaseTimes(t *testing.T) {
	for _, walk := range []string{WalkV1, WalkV3} {
		cfg := digestConfig()
		cfg.NumPeers = 64
		cfg.Rounds = 100
		cfg.Walk = walk
		plain := digestRun(t, cfg)

		timed := cfg
		timed.PhaseTimes = true
		if got := digestRun(t, timed); got != plain {
			t.Errorf("walk=%s: PhaseTimes changed the digest: %#x vs %#x", walk, got, plain)
		}

		s, err := New(timed)
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if res.Phases == nil {
			t.Fatalf("walk=%s: Result.Phases nil with PhaseTimes set", walk)
		}
		total := res.Phases.Walk + res.Phases.Merge + res.Phases.Maintenance +
			res.Phases.TransferDrain + res.Phases.Evaluation
		if total <= 0 {
			t.Errorf("walk=%s: phase breakdown sums to %v, want > 0", walk, total)
		}

		s2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res2 := s2.Run(); res2.Phases != nil {
			t.Errorf("walk=%s: Result.Phases non-nil without PhaseTimes", walk)
		}
	}
}
