package transfer

import (
	"math"
	"testing"

	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
)

func TestValidateNormalisesProportions(t *testing.T) {
	in := Params{Classes: []Class{
		{Name: "a", Proportion: 3},
		{Name: "b", Proportion: 1},
	}}
	out, err := in.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Classes[0].Proportion; got != 0.75 {
		t.Errorf("class a proportion = %v, want 0.75", got)
	}
	if in.Classes[0].Proportion != 3 {
		t.Errorf("Validate mutated its receiver (proportion %v)", in.Classes[0].Proportion)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		{},
		{Classes: []Class{{Name: "z", Proportion: 0}}},
		{Classes: []Class{{Name: "n", Proportion: 1, Up: -1}}},
		{Classes: []Class{{Name: "i", Proportion: 1, MaxInflight: -2}}},
		{Classes: []Class{{Name: "p", Proportion: 1}}, Policy: ResumePolicy(9)},
	}
	for i, p := range bad {
		if _, err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid params", i)
		}
	}
}

// TestSampleIndexSingleClassDrawsNothing pins the property the
// instant-mode golden digests rest on: attaching a one-class Params
// must not perturb the run's rng stream.
func TestSampleIndexSingleClassDrawsNothing(t *testing.T) {
	p, err := InstantParams().Validate()
	if err != nil {
		t.Fatal(err)
	}
	a, b := rng.New(7), rng.New(7)
	if got := p.SampleIndex(a); got != 0 {
		t.Fatalf("single-class SampleIndex = %d, want 0", got)
	}
	if a.Float64() != b.Float64() {
		t.Error("single-class SampleIndex consumed randomness")
	}
}

func TestSampleIndexProportions(t *testing.T) {
	p, err := (&Params{Classes: []Class{
		{Name: "slow", Proportion: 0.7},
		{Name: "fast", Proportion: 0.3},
	}}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	counts := [2]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.SampleIndex(r)]++
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.7) > 0.02 {
		t.Errorf("slow class frequency = %v, want ~0.7", frac)
	}
}

func TestParseSpecs(t *testing.T) {
	for _, preset := range Presets() {
		p, err := Parse(preset)
		if err != nil {
			t.Fatalf("preset %q: %v", preset, err)
		}
		if (preset == "instant") != p.Instant() {
			t.Errorf("preset %q: Instant() = %v", preset, p.Instant())
		}
	}
	p, err := Parse("restart;slow:0.6:28/225:16;fast:0.4:0/0")
	if err != nil {
		t.Fatal(err)
	}
	if p.Policy != Restart {
		t.Errorf("policy = %v, want restart", p.Policy)
	}
	if len(p.Classes) != 2 || p.Classes[0].MaxInflight != 16 || p.Classes[0].Up != 28 {
		t.Errorf("parsed classes = %+v", p.Classes)
	}
	for _, bad := range []string{"", "nope", "a:1", "a:x:1/2", "a:1:12", "a:1:1/2:many"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted invalid spec", bad)
		}
	}
}

// newTestSched builds a scheduler over n slots, all in class 0 of the
// given params (validated here).
func newTestSched(t *testing.T, p *Params, n int) (*Scheduler, *overlay.Table) {
	t.Helper()
	vp, err := p.Validate()
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(vp, n)
	return s, overlay.NewTable(n)
}

// TestAgreementWithCostModel is the satellite wiring check: a repair's
// upload phase scheduled block by block over a FromLink class must
// complete in exactly the rounds costmodel.EstimateRepair predicts for
// the same link and code shape (ceiling to whole rounds — the engine's
// event granularity).
func TestAgreementWithCostModel(t *testing.T) {
	link, code := costmodel.DSL2009(), costmodel.PaperCode()
	const d = 128 // the paper's worst-case repair
	cls, err := FromLink("dsl", 1, link, code, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched, tab := newTestSched(t, &Params{Classes: []Class{cls}}, 2)
	var last *Transfer
	for i := 0; i < d; i++ {
		last = sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	}
	cost, err := costmodel.EstimateRepair(link, code, d)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := int64(math.Ceil(cost.Upload.Seconds() / RoundSeconds))
	if last.CompleteAt != wantRounds {
		t.Errorf("last of %d blocks lands at round %d, cost model says %d (%v upload)",
			d, last.CompleteAt, wantRounds, cost.Upload)
	}
}

func TestInstantLandsNextRound(t *testing.T) {
	sched, tab := newTestSched(t, InstantParams(), 2)
	tr := sched.EnqueueUpload(5, tab.Ref(0), tab.Ref(1))
	if tr.CompleteAt != 6 {
		t.Errorf("instant transfer completes at %d, want 6", tr.CompleteAt)
	}
}

// TestUplinkSerialises: two 1-block transfers on a 0.5 blocks/round
// uplink queue FIFO — the second waits for the first.
func TestUplinkSerialises(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "slow", Proportion: 1, Up: 0.5, Down: 0}}}
	sched, tab := newTestSched(t, p, 3)
	a := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	b := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(2))
	if a.CompleteAt != 2 || b.CompleteAt != 4 {
		t.Errorf("completions = %d, %d; want 2, 4 (FIFO uplink)", a.CompleteAt, b.CompleteAt)
	}
	if got := sched.Inflight(0); got != 2 {
		t.Errorf("inflight = %d, want 2", got)
	}
	if got := sched.Reserved(1); got != 1 {
		t.Errorf("reserved = %d, want 1", got)
	}
}

func TestUploadSlotsCap(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "c", Proportion: 1, Up: 1, MaxInflight: 2}}}
	sched, tab := newTestSched(t, p, 4)
	if got := sched.UploadSlots(0); got != 2 {
		t.Fatalf("slots = %d, want 2", got)
	}
	sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(2))
	if got := sched.UploadSlots(0); got != 0 {
		t.Errorf("slots after filling = %d, want 0", got)
	}
}

// TestSuspendResumeKeepsProgress: under the Resume policy a transfer
// interrupted halfway re-books only its remainder.
func TestSuspendResumeKeepsProgress(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "slow", Proportion: 1, Up: 0.25, Down: 0}}}
	sched, tab := newTestSched(t, p, 2)
	online := func(overlay.PeerID) bool { return true }
	tr := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1)) // 4 rounds of flow
	if tr.CompleteAt != 4 {
		t.Fatalf("completes at %d, want 4", tr.CompleteAt)
	}
	sched.SuspendPeer(0, 2) // half flowed
	if !tr.Suspended || tr.Remaining != 0.5 {
		t.Fatalf("after suspend: suspended=%v remaining=%v, want true, 0.5", tr.Suspended, tr.Remaining)
	}
	resumed := sched.ResumePeer(0, 10, online)
	if len(resumed) != 1 || resumed[0] != tr {
		t.Fatalf("resumed %d transfers, want the suspended one", len(resumed))
	}
	if tr.CompleteAt != 12 {
		t.Errorf("resumed completion = %d, want 12 (2 rounds of remainder)", tr.CompleteAt)
	}
}

// TestSuspendRestartDiscardsProgress: the Restart policy re-sends from
// scratch.
func TestSuspendRestartDiscardsProgress(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "slow", Proportion: 1, Up: 0.25, Down: 0}}, Policy: Restart}
	sched, tab := newTestSched(t, p, 2)
	tr := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	sched.SuspendPeer(0, 2)
	if tr.Remaining != 1 {
		t.Fatalf("after restart-suspend: remaining = %v, want 1", tr.Remaining)
	}
	sched.ResumePeer(0, 10, func(overlay.PeerID) bool { return true })
	if tr.CompleteAt != 14 {
		t.Errorf("restarted completion = %d, want 14 (full 4 rounds again)", tr.CompleteAt)
	}
}

// TestResumeWaitsForOtherEndpoint: a transfer whose far end is still
// offline stays suspended.
func TestResumeWaitsForOtherEndpoint(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "c", Proportion: 1, Up: 1, Down: 0}}}
	sched, tab := newTestSched(t, p, 2)
	tr := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	sched.SuspendPeer(1, 0) // the host went offline
	hostOnline := false
	online := func(id overlay.PeerID) bool {
		if id == 1 {
			return hostOnline
		}
		return true
	}
	if got := sched.ResumePeer(0, 3, online); len(got) != 0 {
		t.Fatalf("resumed %d transfers while the host is offline", len(got))
	}
	hostOnline = true
	if got := sched.ResumePeer(1, 5, online); len(got) != 1 || tr.Suspended {
		t.Errorf("host coming back resumed %d transfers (suspended=%v), want 1", len(got), tr.Suspended)
	}
}

// TestAbortAtCompletionBoundary is the "source dies at the completion
// round" edge case at the scheduler level: the abort wins, accounting
// is released, and the transfer is gone before any delivery could read
// it.
func TestAbortAtCompletionBoundary(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "c", Proportion: 1, Up: 0.5, Down: 0}}}
	sched, tab := newTestSched(t, p, 2)
	tr := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1)) // completes at round 2
	aborted := sched.AbortPeer(0)                        // owner dies in round 2's churn phase
	if len(aborted) != 1 || aborted[0].ID != tr.ID {
		t.Fatalf("aborted %d transfers, want the in-flight one", len(aborted))
	}
	if _, ok := sched.Get(tr.ID); ok {
		t.Error("aborted transfer still registered")
	}
	if sched.Inflight(0) != 0 || sched.Reserved(1) != 0 {
		t.Errorf("abort leaked accounting: inflight=%d reserved=%d", sched.Inflight(0), sched.Reserved(1))
	}
}

// TestAbortOwnerLeavesHostedTransfers: resetting an archive kills its
// own uploads and restore but not the blocks flowing toward the slot
// from other owners.
func TestAbortOwnerLeavesHostedTransfers(t *testing.T) {
	p := &Params{Classes: []Class{{Name: "c", Proportion: 1, Up: 1, Down: 1}}}
	sched, tab := newTestSched(t, p, 3)
	own := sched.EnqueueUpload(0, tab.Ref(0), tab.Ref(1))
	res := sched.EnqueueRestore(0, tab.Ref(0), 4)
	hosted := sched.EnqueueUpload(0, tab.Ref(2), tab.Ref(0))
	aborted := sched.AbortOwner(0)
	if len(aborted) != 2 {
		t.Fatalf("aborted %d transfers, want 2 (upload + restore)", len(aborted))
	}
	for _, tr := range aborted {
		if tr.ID != own.ID && tr.ID != res.ID {
			t.Errorf("aborted transfer %d is not owned by slot 0", tr.ID)
		}
	}
	if _, ok := sched.Get(hosted.ID); !ok {
		t.Error("hosted transfer was killed by AbortOwner")
	}
}
