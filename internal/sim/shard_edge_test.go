package sim

import (
	"testing"

	"p2pbackup/internal/overlay"
	"p2pbackup/internal/transfer"
)

// Shard boundary conditions. The sharded engine's phases partition the
// slot space, so the interesting cases are the ones the partition can
// get wrong: more shards than slots, protocol edges that couple slots
// on opposite sides of a shard boundary, and same-round orderings
// between a death in one shard and a transfer delivery into another.

// abortProbe counts transfer aborts, the signature of a death (or
// session drop) racing a delivery within one round.
type abortProbe struct {
	BaseProbe
	aborts, completes int
}

func (p *abortProbe) ProbeEvents() EventSet {
	return EventTransferAbort | EventTransferComplete
}
func (p *abortProbe) OnTransferAbort(TransferEvent)    { p.aborts++ }
func (p *abortProbe) OnTransferComplete(TransferEvent) { p.completes++ }

// TestShardEdgeCases is the table: each case builds a scenario
// exercising one boundary condition, asserts the scenario actually hit
// the condition, and requires digest equality between S=1 and a
// boundary-hostile shard count.
func TestShardEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		shards []int
		cfg    func(t *testing.T) Config
		// verify runs a fresh sharded simulation (the digest runs are
		// opaque) and asserts the scenario exercised its edge.
		verify func(t *testing.T, cfg Config)
	}{
		{
			// Shard count far above the slot count: most shards own
			// empty ranges and every phase must still cover [0, N).
			name:   "shards-exceed-slots",
			shards: []int{64, 1000},
			cfg: func(t *testing.T) Config {
				cfg := digestConfig()
				cfg.NumPeers = 40
				cfg.TotalBlocks = 16
				cfg.DataBlocks = 8
				cfg.RepairThreshold = 10
				cfg.Rounds = 200
				return cfg
			},
			verify: nil,
		},
		{
			// A repairing owner in the first shard placing blocks on
			// hosts in the last shard (and vice versa): placements and
			// quota accounting must not care about the boundary.
			name:   "cross-shard-repair-endpoints",
			shards: []int{2},
			cfg:    func(t *testing.T) Config { return digestConfig() },
			verify: func(t *testing.T, cfg Config) {
				cfg.Shards = 2
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Run()
				boundary := overlay.PeerID(cfg.NumPeers / 2)
				led := s.Ledger()
				var buf []overlay.PeerID
				lowHigh, highLow := 0, 0
				for id := 0; id < cfg.NumPeers; id++ {
					owner := overlay.PeerID(id)
					buf = led.Hosts(owner, buf[:0])
					for _, h := range buf {
						switch {
						case owner < boundary && h >= boundary:
							lowHigh++
						case owner >= boundary && h < boundary:
							highLow++
						}
					}
				}
				if lowHigh == 0 || highLow == 0 {
					t.Fatalf("no cross-shard placements (low->high %d, high->low %d); scenario does not exercise the boundary", lowHigh, highLow)
				}
			},
		},
		{
			// Same-round death-vs-delivery ordering across shards: under
			// bandwidth scheduling with kill shocks, a peer dying in the
			// churn walk must abort in-flight transfers before the
			// completion phase can land them, whichever shard either
			// endpoint lives in.
			name:   "cross-shard-death-vs-delivery",
			shards: []int{2, 8},
			cfg: func(t *testing.T) Config {
				cfg := digestConfig()
				bw, err := transfer.Parse("dsl")
				if err != nil {
					t.Fatal(err)
				}
				cfg.Bandwidth = bw
				cfg.Shocks = []ShockSpec{
					{Name: "attrition", Rate: 0.05, Fraction: 0.3, Regions: 2, Kill: true},
				}
				return cfg
			},
			verify: func(t *testing.T, cfg Config) {
				cfg.Shards = 2
				probe := &abortProbe{}
				cfg.Probes = append(cfg.Probes, probe)
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.Run()
				if probe.aborts == 0 || probe.completes == 0 {
					t.Fatalf("aborts=%d completes=%d; scenario does not race deaths against deliveries", probe.aborts, probe.completes)
				}
			},
		},
		{
			// A mass same-round flip wave large enough to cross the
			// hist-op fan-out threshold, so the parallel application
			// path (not the small-log inline path) is what must match.
			name:   "hist-op-fanout",
			shards: []int{2, 5},
			cfg: func(t *testing.T) Config {
				cfg := digestConfig()
				cfg.NumPeers = 1200
				cfg.Rounds = 200
				cfg.Shocks = []ShockSpec{
					{Name: "blackout", Round: 60, Fraction: 1.0, Outage: 24},
					{Name: "second-wave", Round: 130, Fraction: 0.9, Outage: 12},
				}
				return cfg
			},
			verify: func(t *testing.T, cfg Config) {
				// The full-population blackout alone logs ~online-count
				// ops in round 60, far above histOpFanoutMin.
				if int(float64(cfg.NumPeers)*0.5) < histOpFanoutMin {
					t.Fatalf("scenario too small to cross the fan-out threshold (%d)", histOpFanoutMin)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg(t)
			ref := cfg
			ref.Shards = 1
			want := digestRun(t, ref)
			for _, shards := range tc.shards {
				run := cfg
				run.Shards = shards
				if got := digestRun(t, run); got != want {
					t.Errorf("S=%d digest = %#x, want %#x", shards, got, want)
				}
			}
			if tc.verify != nil {
				tc.verify(t, cfg)
			}
		})
	}
}
