package experiments

import (
	"context"
	"fmt"
	"io"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/transfer"
)

// This file declares the transfer-scheduling campaigns: bandwidth-class
// comparisons, the restore flash crowd, and the uplink sweep. They
// follow the ablation pattern (labelled variants with index-derived
// seeds) but convert rows through TransferFromRows, which carries the
// time-to-backup and time-to-restore distributions the aggregate
// repair/loss counters cannot express.

// mustBandwidth parses a bandwidth class spec. The campaign
// constructors only pass vetted preset names, so a parse failure is a
// programming error.
func mustBandwidth(spec string) *transfer.Params {
	p, err := transfer.Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// setBandwidth points a variant config at a bandwidth class spec,
// overriding whatever the base config (or Options.Bandwidth) carried:
// a campaign that sweeps the bandwidth mix must own the knob.
func setBandwidth(c *sim.Config, spec string) {
	c.Bandwidth = mustBandwidth(spec)
}

// TransferBaselineCampaign compares the bandwidth presets on identical
// populations: the degenerate instant mode (the engine's historical
// immediate placement), a uniform DSL population, the 50/50 DSL/FTTH
// mix, and the slow-uplink skewed population. Repair and loss counts
// show what metered uplinks cost; the time-to-backup distribution shows
// where the cost comes from.
func TransferBaselineCampaign(cfg sim.Config) Campaign {
	specs := transfer.Presets()
	return ablationCampaign(cfg, "transfer-baseline", specs, func(c *sim.Config, i int) {
		setBandwidth(c, specs[i])
	})
}

// FlashCrowdCampaign is the restore flash crowd: a mid-run blackout
// knocks out part of the population, and shortly after, half the peers
// demand their archives back at once. Under instant links the crowd is
// absorbed in a round; under metered links the demanders' downlinks and
// the hosts' uplinks shape a time-to-restore distribution with a heavy
// tail. Variants compare instant, uniform-DSL and skewed populations on
// an identical shock-and-demand schedule.
func FlashCrowdCampaign(cfg sim.Config) Campaign {
	mid := cfg.Rounds / 2
	specs := []string{"instant", "dsl", "skewed"}
	return ablationCampaign(cfg, "flashcrowd", specs, func(c *sim.Config, i int) {
		setBandwidth(c, specs[i])
		c.Shocks = []sim.ShockSpec{
			{Name: "flash-blackout", Round: mid, Fraction: 0.4, Outage: 2 * churn.Day},
		}
		c.Restores = []sim.RestoreSpec{
			{Name: "flash-crowd", Round: mid + 12, Fraction: 0.5},
		}
	})
}

// uplinkFactors is the uplink sweep: multipliers on the paper's DSL
// uplink (32 kB/s), downlink held fixed.
var uplinkFactors = []float64{0.25, 0.5, 1, 2, 4}

// UplinkSweepCampaign sweeps the population's uplink rate across a
// uniform DSL-class population, with the legacy budget-mode engine
// (instant placement, per-round upload budget) as the baseline: the
// paper's section 2.2.4 collapses bandwidth to that budget, and this
// sweep measures what the collapse hides as uplinks slow down.
func UplinkSweepCampaign(cfg sim.Config) Campaign {
	labels := []string{"budget"}
	for _, f := range uplinkFactors {
		labels = append(labels, fmt.Sprintf("up=%.3gx", f))
	}
	return ablationCampaign(cfg, "uplink-sweep", labels, func(c *sim.Config, i int) {
		if i == 0 {
			setBandwidth(c, "instant")
			return
		}
		d := transfer.DSLClass("dsl", 1)
		d.Up *= uplinkFactors[i-1]
		c.Bandwidth = &transfer.Params{Classes: []transfer.Class{d}}
	})
}

// ---------------------------------------------------------------------------
// Row conversion.

// DurationSummary condenses a metrics.Durations distribution into the
// plot-ready moments: count, mean, median, p95, max (all in rounds).
// The zero value means no samples.
type DurationSummary struct {
	Count int64
	Mean  float64
	P50   float64
	P95   float64
	Max   float64
}

func summariseDurations(d *metrics.Durations) DurationSummary {
	if d.N() == 0 {
		return DurationSummary{}
	}
	return DurationSummary{
		Count: d.N(),
		Mean:  d.Mean(),
		P50:   d.Quantile(0.5),
		P95:   d.Quantile(0.95),
		Max:   d.Max(),
	}
}

// TransferPoint is one transfer-campaign variant's outcome: the
// aggregate counters plus the time-to-backup and time-to-restore
// distributions.
type TransferPoint struct {
	Label          string
	Repairs        int64
	Losses         int64
	Deaths         int64
	TTB            DurationSummary
	TTR            DurationSummary
	RestoresFailed int64
}

// TransferResult is a labelled comparison of transfer variants.
type TransferResult struct {
	Name   string
	Points []TransferPoint
}

// TransferFromRows converts a transfer campaign's rows, in variant
// order.
func TransferFromRows(name string, rows []Row) *TransferResult {
	points := make([]TransferPoint, 0, len(rows))
	for _, row := range rows {
		col := row.Result.Collector
		points = append(points, TransferPoint{
			Label:          row.Name,
			Repairs:        col.TotalRepairs(),
			Losses:         col.TotalLosses(),
			Deaths:         row.Result.Deaths,
			TTB:            summariseDurations(col.TimeToBackup()),
			TTR:            summariseDurations(col.TimeToRestore()),
			RestoresFailed: col.RestoresFailed(),
		})
	}
	return &TransferResult{Name: name, Points: points}
}

// WriteTSV emits the transfer comparison.
func (r *TransferResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# transfer campaign: %s (durations in rounds)\n"+
		"#variant\trepairs\tlosses\tdeaths\t"+
		"ttb_n\tttb_mean\tttb_p50\tttb_p95\tttb_max\t"+
		"ttr_n\tttr_mean\tttr_p50\tttr_p95\tttr_max\trestores_failed\n", r.Name); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.6g\t%.6g\t%.6g\t%.6g\t%d\t%.6g\t%.6g\t%.6g\t%.6g\t%d\n",
			p.Label, p.Repairs, p.Losses, p.Deaths,
			p.TTB.Count, p.TTB.Mean, p.TTB.P50, p.TTB.P95, p.TTB.Max,
			p.TTR.Count, p.TTR.Mean, p.TTR.P50, p.TTR.P95, p.TTR.Max,
			p.RestoresFailed); err != nil {
			return err
		}
	}
	return nil
}

// runTransfer executes a transfer campaign through the registry: like
// runAblation, but the summary carries TTB/TTR columns.
func runTransfer(ctx context.Context, opts Options, filename string, spec CampaignSpec, build func(sim.Config) Campaign) ([]Summary, error) {
	cfg, err := baseFor(opts)
	if err != nil {
		return nil, err
	}
	camp := build(cfg)
	rows, err := opts.collect(ctx, opts.runner(), camp, spec, opts.sink(doneMessage(camp.Name)))
	if err != nil {
		return nil, err
	}
	res := TransferFromRows(camp.Name, rows)
	var files []string
	if p, err := writeFile(opts, filename, res.WriteTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := fmt.Sprintf("%-16s %8s %7s  %-24s %-24s %6s\n",
		"variant", "repairs", "losses", "ttb mean/p95 (n)", "ttr mean/p95 (n)", "failed")
	for _, p := range res.Points {
		text += fmt.Sprintf("%-16s %8d %7d  %-24s %-24s %6d\n",
			p.Label, p.Repairs, p.Losses,
			formatDurations(p.TTB), formatDurations(p.TTR), p.RestoresFailed)
	}
	return []Summary{{Name: res.Name, Files: files, Text: text}}, nil
}

// formatDurations renders a DurationSummary for the text summary.
func formatDurations(d DurationSummary) string {
	if d.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f/%.1f (%d)", d.Mean, d.P95, d.Count)
}
