module p2pbackup

go 1.24
