package maintenance

import (
	"testing"

	"p2pbackup/internal/overlay"
)

// TestRepairDelayHoldsDecode: with RepairDelay set, a triggered repair
// waits before decoding, and a recovery during the wait cancels the
// whole episode - the paper's future-work rationale.
func TestRepairDelayHoldsDecode(t *testing.T) {
	p := testParams()
	p.RepairDelay = 3
	m, led, _, r := harness(t, 30, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	// 4 partners offline: visible = 4 < 5 triggers, but alive = 8.
	for _, h := range hosts[:4] {
		led.SetOnline(h, false)
	}
	// Three steps: waiting (None), no decode yet.
	for i := 0; i < 3; i++ {
		res := m.Step(r, id)
		if res.Outcome != OutcomeNone {
			t.Fatalf("step %d during delay: %v, want none", i, res.Outcome)
		}
		if led.Alive(id) != 8 {
			t.Fatal("decode point reached during the delay (partners dropped)")
		}
	}
	// Partners return before the delay elapses entirely: cancel.
	for _, h := range hosts[:4] {
		led.SetOnline(h, true)
	}
	res := m.Step(r, id)
	if res.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v, want canceled (recovery during delay)", res.Outcome)
	}
	if led.Alive(id) != 8 || led.Visible(id) != 8 {
		t.Fatal("cancelled repair must leave the archive untouched")
	}
}

// TestRepairDelayElapsesThenRepairs: if partners stay gone, the repair
// proceeds after the delay.
func TestRepairDelayElapsesThenRepairs(t *testing.T) {
	p := testParams()
	p.RepairDelay = 2
	m, led, _, r := harness(t, 30, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	led.RemoveHost(hosts[0])
	led.RemoveHost(hosts[1])
	led.RemoveHost(hosts[2])
	led.RemoveHost(hosts[3])
	// Two waiting steps, then the repair executes.
	for i := 0; i < 2; i++ {
		if res := m.Step(r, id); res.Outcome != OutcomeNone {
			t.Fatalf("step %d: %v, want none (waiting)", i, res.Outcome)
		}
	}
	var res StepResult
	for i := 0; i < 10 && res.Outcome != OutcomeRepaired; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("repair never completed after delay: %v", res.Outcome)
	}
	if res.Uploaded != 4 {
		t.Fatalf("uploaded = %d, want 4", res.Uploaded)
	}
	if led.Visible(id) != 8 {
		t.Fatal("archive not restored to full")
	}
}

// TestRepairDelayDoesNotBlockStallAccounting: decode outages are still
// detected while waiting.
func TestRepairDelayDoesNotBlockStallAccounting(t *testing.T) {
	p := testParams()
	p.RepairDelay = 5
	m, led, _, r := harness(t, 30, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	for _, h := range hosts[:5] { // visible = 3 < k = 4
		led.SetOnline(h, false)
	}
	res := m.Step(r, id)
	if res.Outcome != OutcomeStalled || !res.OutageStarted {
		t.Fatalf("outcome = %+v, want stalled with outage start", res)
	}
}

// TestRepairDelayValidation rejects negative delays.
func TestRepairDelayValidation(t *testing.T) {
	p := testParams()
	p.RepairDelay = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative delay accepted")
	}
}

// TestRepairDelayResetBetweenEpisodes: the wait counter restarts for
// each episode.
func TestRepairDelayResetBetweenEpisodes(t *testing.T) {
	p := testParams()
	p.RepairDelay = 2
	m, led, _, r := harness(t, 40, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)

	breakAndRepair := func() {
		t.Helper()
		hosts := led.Hosts(id, nil)
		led.RemoveHost(hosts[0])
		led.RemoveHost(hosts[1])
		led.RemoveHost(hosts[2])
		led.RemoveHost(hosts[3])
		waits := 0
		var res StepResult
		for i := 0; i < 20 && res.Outcome != OutcomeRepaired; i++ {
			res = m.Step(r, id)
			if res.Outcome == OutcomeNone && led.Alive(id) == 4 {
				waits++
			}
		}
		if res.Outcome != OutcomeRepaired {
			t.Fatalf("episode did not complete: %v", res.Outcome)
		}
		if waits < 2 {
			t.Fatalf("delay not honoured: only %d waiting steps", waits)
		}
	}
	breakAndRepair()
	breakAndRepair() // second episode must wait again
}
