package selection

// This file is the redesigned selection API: an explicit split between
// what an implementable protocol can OBSERVE about a peer and what only
// the simulator's ORACLE knows, plus the Policy interface strategies
// implement against that split.
//
// Paper mapping:
//
//	§2.1 "peers cannot know lifetimes"   View.Observed vs View.Oracle
//	§2.1 monitoring substrate [17],[14]  Observed.History (availability
//	                                     queries "for a given period of
//	                                     time, for example the last 90
//	                                     days"), fed from
//	                                     monitor.IntervalHistory by the
//	                                     sim engine
//	§3.2 acceptance + ranking            Policy.AcceptProb, Policy.Score
//	§4.1 oracle baselines                Oracle.Availability/Remaining
//
// The legacy PeerInfo/Strategy surface in selection.go remains as
// deprecated adapters (Adapt, AsStrategy) so existing callers keep
// working bit-identically.

import "p2pbackup/internal/rng"

// AvailabilityHistory answers windowed availability queries about one
// peer: the monitoring substrate the paper assumes (AVMON, Pacemaker).
// *monitor.IntervalHistory satisfies it.
type AvailabilityHistory interface {
	// Uptime returns the online fraction over [now-n, now), clamped to
	// the observed span; zero when nothing is recorded.
	Uptime(now int64, n int64) float64
	// ObservedSince returns the first observed round; ok is false if the
	// peer was never observed.
	ObservedSince() (round int64, ok bool)
}

// Observed is the knowledge an implementable protocol has about a peer:
// its age (public join time) and its monitored availability history.
type Observed struct {
	// Age is the number of rounds since the peer joined the system.
	Age int64
	// History answers availability window queries for this peer; nil
	// when no monitoring substrate is attached (e.g. views built from
	// the deprecated PeerInfo adapter).
	History AvailabilityHistory
}

// Uptime returns the monitored online fraction over the last window
// rounds before now; ok is false when no history is attached.
func (o Observed) Uptime(now, window int64) (uptime float64, ok bool) {
	if o.History == nil {
		return 0, false
	}
	return o.History.Uptime(now, window), true
}

// Oracle is ground truth only the simulator knows: the peer's true
// long-run availability and its true remaining lifetime. Implementable
// strategies must not read it; the oracle baselines exist precisely to
// bound what perfect knowledge would buy (DESIGN.md A1).
type Oracle struct {
	// Availability is the peer's true long-run online fraction.
	Availability float64
	// Remaining is the peer's true remaining lifetime in rounds.
	Remaining int64
}

// View is everything a strategy may be told about a candidate or
// acceptor, split by epistemic status.
type View struct {
	// Observed is the implementable knowledge (age, monitored history).
	Observed Observed
	// Oracle is simulator ground truth, for oracle baselines only.
	Oracle Oracle
}

// Context carries run-wide information for one AcceptProb/Score call.
type Context struct {
	// Round is the current simulation round; windowed history queries
	// use it as "now".
	Round int64
}

// Policy is the redesigned strategy interface: it decides partnerships
// and ranks candidates from a View, with the Context supplying the
// current round for window queries.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// AcceptProb returns the probability that acceptor agrees to a
	// partnership requested by requester.
	AcceptProb(ctx Context, acceptor, requester View) float64
	// Score ranks a candidate for selection by an owner; higher is
	// preferred.
	Score(ctx Context, candidate View) float64
}

// alwaysAccepter is the optional marker a Policy or Strategy implements
// to declare AcceptProb constantly one, letting Agree/AgreeCtx skip the
// acceptance evaluation entirely.
type alwaysAccepter interface{ AlwaysAccepts() bool }

// AcceptsAll reports whether a policy or strategy declares (via an
// `AlwaysAccepts() bool` method) that it accepts every partnership.
func AcceptsAll(v any) bool {
	aa, ok := v.(alwaysAccepter)
	return ok && aa.AlwaysAccepts()
}

// pureScorer is the optional marker a Policy or Strategy implements to
// declare its Score a pure function of its arguments: no internal
// state, no randomness, no reads beyond the Context and View. Pure
// scores may be memoised per (peer, round) by the caller; every policy
// shipped by this package is pure and declares it.
type pureScorer interface{ PureScore() bool }

// HasPureScore reports whether a policy or strategy declares (via a
// `PureScore() bool` method) that Score is a pure function of
// (Context, View). Callers use it to gate score caching; policies
// without the marker are conservatively treated as stateful and
// re-evaluated on every call.
func HasPureScore(v any) bool {
	ps, ok := v.(pureScorer)
	return ok && ps.PureScore()
}

// AgreeCtx draws both directions of a partnership under a Policy: the
// owner must accept the candidate and the candidate must accept the
// owner. Acceptance probabilities of exactly one are short-circuited
// without consuming randomness (rng.Bool already guarantees that), and
// always-accept policies (AcceptsAll) skip the evaluation entirely.
func AgreeCtx(r *rng.Rand, p Policy, ctx Context, owner, candidate View) bool {
	if AcceptsAll(p) {
		return true
	}
	if pr := p.AcceptProb(ctx, owner, candidate); pr < 1 && !r.Bool(pr) {
		return false
	}
	pr := p.AcceptProb(ctx, candidate, owner)
	return pr >= 1 || r.Bool(pr)
}

// ---------------------------------------------------------------------------
// Adapters between the legacy Strategy surface and Policy.

// legacyPolicy lifts a deprecated Strategy into a Policy by collapsing
// the View back into the flat PeerInfo it expects.
type legacyPolicy struct{ s Strategy }

// Adapt lifts a legacy Strategy into a Policy. The strategy sees a
// PeerInfo carrying both knowledge classes, exactly as before the
// observable/oracle split, so adapted strategies behave bit-identically
// to the pre-redesign engine.
func Adapt(s Strategy) Policy {
	if ap, ok := s.(policyStrategy); ok {
		return ap.p // unwrap a round-tripped policy
	}
	return legacyPolicy{s: s}
}

// Name implements Policy.
func (l legacyPolicy) Name() string { return l.s.Name() }

// AcceptProb implements Policy via the wrapped strategy.
func (l legacyPolicy) AcceptProb(_ Context, acceptor, requester View) float64 {
	return l.s.AcceptProb(flatten(acceptor), flatten(requester))
}

// Score implements Policy via the wrapped strategy.
func (l legacyPolicy) Score(_ Context, candidate View) float64 {
	return l.s.Score(flatten(candidate))
}

// AlwaysAccepts forwards the wrapped strategy's marker.
func (l legacyPolicy) AlwaysAccepts() bool { return AcceptsAll(l.s) }

// PureScore forwards the wrapped strategy's marker.
func (l legacyPolicy) PureScore() bool { return HasPureScore(l.s) }

// flatten collapses a View into the legacy PeerInfo.
func flatten(v View) PeerInfo {
	return PeerInfo{
		Age:          v.Observed.Age,
		Availability: v.Oracle.Availability,
		Remaining:    v.Oracle.Remaining,
	}
}

// policyStrategy projects a Policy onto the deprecated Strategy
// interface for legacy call sites. The View it synthesises has no
// monitoring history and a zero Context, so window-query strategies
// degrade to their no-history fallback there.
type policyStrategy struct{ p Policy }

// AsStrategy projects a Policy onto the deprecated Strategy interface.
func AsStrategy(p Policy) Strategy {
	if lp, ok := p.(legacyPolicy); ok {
		return lp.s // unwrap a round-tripped strategy
	}
	return policyStrategy{p: p}
}

// Name implements Strategy.
func (a policyStrategy) Name() string { return a.p.Name() }

// AcceptProb implements Strategy via the wrapped policy.
func (a policyStrategy) AcceptProb(acceptor, requester PeerInfo) float64 {
	return a.p.AcceptProb(Context{}, inflate(acceptor), inflate(requester))
}

// Score implements Strategy via the wrapped policy.
func (a policyStrategy) Score(candidate PeerInfo) float64 {
	return a.p.Score(Context{}, inflate(candidate))
}

// AlwaysAccepts forwards the wrapped policy's marker.
func (a policyStrategy) AlwaysAccepts() bool { return AcceptsAll(a.p) }

// PureScore forwards the wrapped policy's marker.
func (a policyStrategy) PureScore() bool { return HasPureScore(a.p) }

// inflate spreads a legacy PeerInfo over the View knowledge split.
func inflate(i PeerInfo) View {
	return View{
		Observed: Observed{Age: i.Age},
		Oracle:   Oracle{Availability: i.Availability, Remaining: i.Remaining},
	}
}
