// Command tracegen generates synthetic churn traces from the paper's
// behaviour profiles and analyses existing traces (Pareto lifetime
// fits, availability summaries).
//
// Usage:
//
//	tracegen gen -peers 500 -rounds 20000 -seed 1 -out trace.csv
//	tracegen gen -peers 500 -rounds 20000 -avail diurnal:0.8 -out trace.jsonl
//	tracegen fit -in trace.csv
//
// The output format follows the -out extension (.jsonl/.ndjson for
// JSONL, CSV otherwise) and carries each peer's behaviour profile, so
// a generated trace round-trips into the simulator:
//
//	p2psim -exp replay -trace trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/lifetime"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "fit":
		err = cmdFit(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracegen gen -peers N -rounds R [-seed S] [-avail MODEL] -out FILE
  tracegen fit -in FILE`)
	os.Exit(2)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	peers := fs.Int("peers", 500, "population size")
	rounds := fs.Int64("rounds", 20000, "rounds to simulate (1 round = 1 hour)")
	seed := fs.Uint64("seed", 1, "random seed")
	avail := fs.String("avail", "session", "availability model: session, bernoulli, diurnal[:AMP]")
	out := fs.String("out", "trace.csv", "output file (.jsonl/.ndjson for JSONL, else CSV)")
	_ = fs.Parse(args)

	model, err := churn.ModelByName(*avail)
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	cfg.NumPeers = *peers
	cfg.Rounds = *rounds
	cfg.Seed = *seed
	cfg.Avail = model
	cfg.RecordTrace = true
	// Keep the run cheap: a tiny archive shape still drives the same
	// churn process, and churn is all a trace captures.
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	s, err := sim.New(cfg)
	if err != nil {
		return err
	}
	res := s.Run()
	res.Trace.Sort()
	if err := churn.WriteTraceFile(*out, res.Trace); err != nil {
		return err
	}
	fmt.Printf("wrote %d events for %d peers over %d rounds to %s (%d departures)\n",
		len(res.Trace.Events), *peers, *rounds, *out, res.Deaths)
	return nil
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	in := fs.String("in", "", "trace CSV to analyse")
	_ = fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("fit needs -in")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := churn.ReadCSV(f)
	if err != nil {
		return err
	}
	lifetimes := trace.Lifetimes()
	if len(lifetimes) < 10 {
		return fmt.Errorf("only %d completed lifetimes in trace; need >= 10", len(lifetimes))
	}
	var st stats.Stream
	for _, l := range lifetimes {
		st.Add(l)
	}
	fmt.Printf("completed lifetimes: %s (hours)\n", st.String())

	model, ks, err := lifetime.ParetoGoodnessOfFit(lifetimes)
	if err != nil {
		return err
	}
	fmt.Printf("Pareto MLE: xm=%.1f alpha=%.3f (KS distance %.4f)\n", model.Xm, model.Alpha, ks)
	if alpha, err := lifetime.TailExponent(lifetimes); err == nil {
		fmt.Printf("log-log tail fit: alpha=%.3f\n", alpha)
	}
	for _, age := range []float64{24, 7 * 24, 30 * 24, 90 * 24} {
		fmt.Printf("expected remaining lifetime at age %5.0fh: %8.0fh\n",
			age, model.ExpectedRemaining(age))
	}
	return nil
}
