package redundancy

// Spec-string registry, mirroring selection.Register/Parse: every
// redundancy policy the campaigns and the CLI can name resolves through
// Parse. A spec is NAME[:PARAMS]; PARAMS is a comma-separated list of
// key=value pairs, or one bare value for the policy's primary parameter
// (adaptive's target durability). Unknown names wrap ErrUnknownPolicy;
// unknown or malformed parameters wrap ErrBadSpec.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ErrUnknownPolicy reports a spec whose name is not registered.
var ErrUnknownPolicy = errors.New("redundancy: unknown policy")

// ErrBadSpec reports a recognised policy given malformed, unknown or
// misplaced parameters.
var ErrBadSpec = errors.New("redundancy: bad policy spec")

// SpecParams gives a Builder typed access to a spec's parameters. Every
// accessor consumes its key; Parse rejects the spec if any parameter is
// left unconsumed, so policies cannot silently ignore arguments.
type SpecParams struct {
	name string
	kv   map[string]string
	used map[string]bool
	err  error
}

// fail records the first parameter error.
func (p *SpecParams) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// lookup consumes key (or, when primary, the bare positional value).
func (p *SpecParams) lookup(key string, primary bool) (string, bool) {
	if v, ok := p.kv[key]; ok {
		p.used[key] = true
		return v, ok
	}
	if primary {
		if v, ok := p.kv[""]; ok {
			p.used[""] = true
			return v, ok
		}
	}
	return "", false
}

// Int returns the named integer parameter, or def when absent.
func (p *SpecParams) Int(key string, def int) int {
	s, ok := p.lookup(key, false)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		p.fail(fmt.Errorf("%w: %s: parameter %s=%q is not an integer", ErrBadSpec, p.name, key, s))
		return def
	}
	return v
}

// Int64 returns the named 64-bit integer parameter, or def when absent.
func (p *SpecParams) Int64(key string, def int64) int64 {
	s, ok := p.lookup(key, false)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		p.fail(fmt.Errorf("%w: %s: parameter %s=%q is not an integer", ErrBadSpec, p.name, key, s))
		return def
	}
	return v
}

// FloatPrimary returns the named float parameter, also accepting the
// spec's bare positional value ("adaptive:0.95"), or def when absent.
func (p *SpecParams) FloatPrimary(key string, def float64) float64 {
	s, ok := p.lookup(key, true)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.fail(fmt.Errorf("%w: %s: parameter %s=%q is not a number", ErrBadSpec, p.name, key, s))
		return def
	}
	return v
}

// Builder constructs a Policy from a parsed spec.
type Builder func(p *SpecParams) (Policy, error)

// registry preserves registration order: Names feeds campaign variant
// lists, whose seeds are index-derived, so order is part of the
// reproducibility contract (same discipline as selection's registry).
var (
	registryNames []string
	registry      = map[string]Builder{}
)

// Register adds a policy spec name to the registry. Names may not
// contain parameter syntax. Register panics on duplicates or empty
// names; it is meant for init-time use and is not safe to call
// concurrently with Parse.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("redundancy: Register with empty name or nil builder")
	}
	if strings.ContainsAny(name, "=, ") {
		panic(fmt.Sprintf("redundancy: Register name %q contains parameter syntax", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("redundancy: duplicate policy %q", name))
	}
	registryNames = append(registryNames, name)
	registry[name] = b
}

// Names lists the registered spec names in registration order (the
// built-ins first).
func Names() []string {
	return append([]string(nil), registryNames...)
}

// Parse resolves a redundancy policy spec. The empty spec is "fixed",
// the paper's behaviour. The returned policy still needs Bind against
// the concrete code shape (sim.Config.Validate does this).
func Parse(spec string) (Policy, error) {
	if spec == "" {
		spec = "fixed"
	}
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	kv, err := parseParams(name, params)
	if err != nil {
		return nil, err
	}
	sp := &SpecParams{name: name, kv: kv, used: make(map[string]bool, len(kv))}
	pol, err := registry[name](sp)
	if err != nil {
		return nil, err
	}
	if sp.err != nil {
		return nil, sp.err
	}
	var unused []string
	for k := range kv {
		if !sp.used[k] {
			if k == "" {
				k = "(positional value)"
			}
			unused = append(unused, k)
		}
	}
	if len(unused) > 0 {
		sort.Strings(unused)
		return nil, fmt.Errorf("%w: %s does not take parameter(s) %s",
			ErrBadSpec, name, strings.Join(unused, ", "))
	}
	return pol, nil
}

// splitSpec finds the longest registered name that is the whole spec or
// a prefix of it followed by ':'; the remainder is the parameter list.
func splitSpec(spec string) (name, params string, err error) {
	if _, ok := registry[spec]; ok {
		return spec, "", nil
	}
	best := -1
	for i := len(spec) - 1; i > 0; i-- {
		if spec[i] != ':' {
			continue
		}
		if _, ok := registry[spec[:i]]; ok {
			best = i
			break
		}
	}
	if best < 0 {
		return "", "", fmt.Errorf("%w: %q (want one of %v)", ErrUnknownPolicy, spec, Names())
	}
	return spec[:best], spec[best+1:], nil
}

// parseParams splits "k1=v1,k2=v2" (or one bare value) into a map; the
// bare value is stored under the empty key.
func parseParams(name, params string) (map[string]string, error) {
	kv := map[string]string{}
	if params == "" {
		return kv, nil
	}
	for _, part := range strings.Split(params, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: %s: empty parameter", ErrBadSpec, name)
		}
		k, v, found := strings.Cut(part, "=")
		if !found {
			k, v = "", part
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("%w: %s: duplicate parameter %q", ErrBadSpec, name, part)
		}
		if found && (k == "" || v == "") {
			return nil, fmt.Errorf("%w: %s: malformed parameter %q", ErrBadSpec, name, part)
		}
		kv[k] = v
	}
	if _, bare := kv[""]; bare && len(kv) > 1 {
		return nil, fmt.Errorf("%w: %s: positional value mixed with keyed parameters", ErrBadSpec, name)
	}
	return kv, nil
}

func init() {
	Register("fixed", func(p *SpecParams) (Policy, error) { return Fixed{}, nil })
	Register("adaptive", func(p *SpecParams) (Policy, error) {
		a := Adaptive{
			Min:              p.Int("min", 0),
			Max:              p.Int("max", 0),
			TargetDurability: p.FloatPrimary("target", DefaultTargetDurability),
			Hysteresis:       p.Int("hysteresis", DefaultHysteresis),
			Eval:             p.Int64("eval", DefaultEvalEvery),
			Sample:           p.Int("sample", DefaultSamplePeers),
		}
		// Shape-independent sanity; the shape-relative checks happen at
		// Bind, once k, k' and n are known.
		if a.Min < 0 || a.Max < 0 {
			return nil, fmt.Errorf("%w: adaptive: min=%d, max=%d must be >= 0", ErrBadSpec, a.Min, a.Max)
		}
		if a.Min > 0 && a.Max > 0 && a.Min > a.Max {
			return nil, fmt.Errorf("%w: adaptive: min=%d exceeds max=%d", ErrBadSpec, a.Min, a.Max)
		}
		if !(a.TargetDurability > 0 && a.TargetDurability < 1) {
			return nil, fmt.Errorf("%w: adaptive: target=%v outside (0, 1)", ErrBadSpec, a.TargetDurability)
		}
		if a.Hysteresis < 0 {
			return nil, fmt.Errorf("%w: adaptive: hysteresis=%d must be >= 0", ErrBadSpec, a.Hysteresis)
		}
		if a.Eval < 1 {
			return nil, fmt.Errorf("%w: adaptive: eval=%d must be >= 1", ErrBadSpec, a.Eval)
		}
		if a.Sample < 1 {
			return nil, fmt.Errorf("%w: adaptive: sample=%d must be >= 1", ErrBadSpec, a.Sample)
		}
		return a, nil
	})
}
