// adaptive_redundancy: the fixed-vs-adaptive question on one
// population - what does retuning each archive's parity count online
// from monitored availability buy over the paper's constant n = 256?
//
// Two simulations run on the identical i.i.d. churn seed: one under
// the inert fixed policy, one under the adaptive default (grow when
// the measured availability no longer supports five-nines retention of
// the repair threshold k', shrink when the surplus outgrows the
// hysteresis band). The comparison prints the storage bill, the
// durability counters, and the parity traffic the adaptive policy
// spent - priced in upload hours on the paper's 2009 DSL uplink.
package main

import (
	"fmt"
	"log"
	"os"

	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/redundancy"
	"p2pbackup/internal/sim"
)

func main() {
	// The horizon matters: adaptive archives are born at the full n and
	// earn their dividend over time, while fixed archives decay between
	// rare repairs — short runs can even show the adaptive bill ahead.
	// ~2.3 simulated years is enough for the steady state to dominate.
	base := sim.DefaultConfig()
	base.NumPeers = 600
	base.Rounds = 20000

	type arm struct {
		spec string
		res  *sim.Result
	}
	arms := []arm{{spec: "fixed"}, {spec: "adaptive"}}
	for i := range arms {
		cfg := base
		cfg.RedundancySpec = arms[i].spec
		fmt.Fprintf(os.Stderr, "running %s (%d peers, %d rounds)...\n",
			arms[i].spec, cfg.NumPeers, cfg.Rounds)
		s, err := sim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		arms[i].res = s.Run()
	}

	fmt.Printf("\n%-10s %12s %9s %7s %8s %8s %8s %13s\n",
		"policy", "placements", "mean n(t)", "hard", "outages", "grows", "shrinks", "parity cost")
	code := costmodel.Code{
		ArchiveBytes: 128 * costmodel.MB,
		K:            base.DataBlocks,
		M:            base.TotalBlocks - base.DataBlocks,
	}
	perBlock, err := costmodel.ParityUploadCost(code, 1, costmodel.DSL2009())
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range arms {
		col := a.res.Collector
		meanN := float64(base.TotalBlocks)
		if s := col.RedundancySeries(); s.Len() > 0 {
			_, meanN = s.At(s.Len() - 1)
		}
		fmt.Printf("%-10s %12d %9.1f %7d %8d %8d %8d %12.0fh\n",
			a.spec, a.res.FinalPlacements, meanN,
			col.TotalHardLosses(), col.TotalLosses(),
			col.RedundancyGrows(), col.RedundancyShrinks(),
			perBlock.Hours()*float64(col.ParityBlocksAdded()))
	}

	// The binomial estimate behind every adaptive decision, at the
	// paper's shape: how many blocks must an archive hold so that at
	// least k' = 148 stay visible with five-nines probability?
	fmt.Println("\nthe sizing curve (n holding >= k'=148 visible at five nines):")
	for _, p := range []float64{0.95, 0.9, 0.86, 0.8, 0.7} {
		n := 148
		for n < 256 && redundancy.Durability(n, 148, p) < 0.99999 {
			n++
		}
		fmt.Printf("  availability %.2f -> n(t) = %d\n", p, n)
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - adaptive archives are born at the full n = 256 and shrink")
	fmt.Println("    once their partners' availability has been measured, so the")
	fmt.Println("    steady-state footprint sits below the fixed bill at the same")
	fmt.Println("    hard-loss count;")
	fmt.Println("  - the dividend is bounded by the sizing curve above: at the")
	fmt.Println("    monitored ~0.86 the five-nines target needs ~190 of 256")
	fmt.Println("    blocks, and every grow decision is paid in DSL upload hours.")
}
