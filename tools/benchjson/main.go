// Command benchjson runs the engine benchmarks and writes a JSON
// performance snapshot, so the repository's perf trajectory is a
// sequence of comparable machine-readable artifacts instead of ad-hoc
// log excerpts.
//
// Usage:
//
//	go run ./tools/benchjson                       # BENCH_10.json, engine benches
//	go run ./tools/benchjson -out snap.json -benchtime 500x
//	go run ./tools/benchjson -bench 'BenchmarkSimRound|BenchmarkQuiescentRound'
//	go run ./tools/benchjson -out new.json -compare BENCH_5.json
//
// It shells out to `go test -bench` (with -benchmem) in the module
// root and parses the standard benchmark output lines, so whatever the
// benchmarks measure is exactly what lands in the snapshot.
//
// With -compare OLD.json the run additionally diffs the fresh results
// against the baseline snapshot: it prints a per-benchmark delta table
// and exits nonzero when any shared benchmark regressed by more than
// -max-regress (fraction of the baseline ns/op, default 0.25), or when
// a baseline benchmark disappeared from the run — the bit-rot the CI
// gate exists to catch. Benchmarks new in this run are listed but not
// gated.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the emitted perf artifact.
type Snapshot struct {
	Bench      string      `json:"bench"`
	BenchTime  string      `json:"benchtime"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	GOMAXPROCS int         `json:"gomaxprocs,omitempty"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output JSON file")
	bench := flag.String("bench", "BenchmarkQuiescentRound|BenchmarkChurnRound|BenchmarkAdaptiveChurnRound|BenchmarkShardedChurnRound|BenchmarkWalkV3ChurnRound|BenchmarkSimRound|BenchmarkTransferRound|BenchmarkFlashCrowdRound|BenchmarkLedgerSessionFlip|BenchmarkMaintainerStep|BenchmarkUptime|BenchmarkViewScore|BenchmarkSupervisedVariant|BenchmarkInProcessVariant",
		"benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "200x", "go test -benchtime value (fixed counts keep snapshots comparable)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	compare := flag.String("compare", "", "baseline snapshot JSON to diff against (exit nonzero on regression)")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs the -compare baseline")
	short := flag.Bool("short", false, "pass -short to go test (skips the benchmarks' largest populations)")
	timeout := flag.String("timeout", "60m", "go test -timeout value (the full bench set outgrew the 10m default)")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, "-benchmem", "-timeout", *timeout}
	if *short {
		args = append(args, "-short")
	}
	cmd := exec.Command("go", append(args, *pkg)...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: go test -bench failed:", err)
		os.Exit(1)
	}

	snap := Snapshot{
		Bench:      *bench,
		BenchTime:  *benchtime,
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))

	if *compare != "" && !compareSnapshots(*compare, snap, *maxRegress, *bench) {
		os.Exit(1)
	}
}

// compareSnapshots diffs the fresh snapshot against the baseline file,
// printing a per-benchmark delta table. It returns false when a shared
// benchmark regressed beyond maxRegress or a baseline benchmark the
// run's -bench selection should have produced is missing. Baseline
// entries outside the selection are ignored, so a gate may compare a
// fast subset against a full baseline.
func compareSnapshots(path string, snap Snapshot, maxRegress float64, benchRegex string) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -compare:", err)
		return false
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -compare %s: %v\n", path, err)
		return false
	}
	selected, err := regexp.Compile(benchRegex)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -bench %q: %v\n", benchRegex, err)
		return false
	}
	// Parallel-phase benchmarks scale with cores, so ns/op deltas across
	// differing core counts mix machine shape into the perf signal. Warn
	// — don't gate — so a single-core CI baseline is still usable and the
	// caveat is on the record. Old snapshots predate the gomaxprocs
	// field; fall back to num_cpu for them.
	baseProcs, nowProcs := base.GOMAXPROCS, snap.GOMAXPROCS
	if baseProcs == 0 {
		baseProcs = base.NumCPU
	}
	if nowProcs == 0 {
		nowProcs = snap.NumCPU
	}
	if baseProcs != nowProcs || base.NumCPU != snap.NumCPU {
		fmt.Fprintf(os.Stderr,
			"benchjson: warning: comparing across core counts (baseline %d cpu / %d procs, this run %d cpu / %d procs); parallel-phase deltas reflect the machine as much as the code\n",
			base.NumCPU, baseProcs, snap.NumCPU, nowProcs)
	}
	fresh := make(map[string]Benchmark, len(snap.Benchmarks))
	for _, b := range snap.Benchmarks {
		fresh[b.Name] = b
	}

	fmt.Printf("compare vs %s (limit +%.0f%% ns/op):\n", path, maxRegress*100)
	ok := true
	for _, old := range base.Benchmarks {
		if !selected.MatchString(old.Name) {
			continue // baseline benchmark outside this run's selection
		}
		now, found := fresh[old.Name]
		if !found {
			fmt.Printf("  %-44s MISSING (was %s)\n", old.Name, fmtNs(old.NsPerOp))
			ok = false
			continue
		}
		delta := 0.0
		if old.NsPerOp > 0 {
			delta = now.NsPerOp/old.NsPerOp - 1
		}
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("  %-44s %12s -> %12s  %+7.1f%%  %s\n",
			old.Name, fmtNs(old.NsPerOp), fmtNs(now.NsPerOp), delta*100, verdict)
		delete(fresh, old.Name)
	}
	for _, b := range snap.Benchmarks {
		if _, isNew := fresh[b.Name]; isNew {
			fmt.Printf("  %-44s %12s -> %12s  (new)\n", b.Name, "-", fmtNs(b.NsPerOp))
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: regression against baseline", path)
	}
	return ok
}

// fmtNs renders a ns/op figure compactly.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.3gms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3gµs", ns/1e3)
	default:
		return fmt.Sprintf("%.3gns", ns)
	}
}

// gomaxprocsSuffix is the "-N" tail the testing package appends to
// benchmark names when GOMAXPROCS != 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one standard result line:
//
//	BenchmarkQuiescentRound/peers=25000-8   2000   5267 ns/op   12.3 MB/s   8 B/op   1 allocs/op
//
// The GOMAXPROCS suffix ("-8") is stripped from the name so snapshots
// taken on machines with different core counts compare by stable names
// (none of the engine benchmarks end in "-<digits>" themselves).
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
	b := Benchmark{Name: name, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "MB/s":
			b.MBPerSec = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b, true
}
