// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus microbenchmarks of the substrates. The figure
// benches run the smoke-scale preset (600 peers, shortened horizons)
// so `go test -bench=.` finishes in minutes; use cmd/p2psim with
// -scale default|paper for full-fidelity data.
package p2pbackup

import (
	"context"
	"fmt"
	"os"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/erasure"
	"p2pbackup/internal/experiments"
	"p2pbackup/internal/gf256"
	"p2pbackup/internal/lifetime"
	"p2pbackup/internal/maintenance"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/monitor"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/transfer"
)

// TestMain doubles this binary as a campaign worker: the supervised
// benchmarks re-exec os.Args[0] with P2PSIM_TEST_WORKER set, exactly as
// the experiments package's own supervisor tests do.
func TestMain(m *testing.M) {
	if os.Getenv("P2PSIM_TEST_WORKER") == "1" {
		os.Exit(experiments.WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// benchConfig is the smoke preset shortened further for benchmarking.
func benchConfig(b *testing.B) sim.Config {
	b.Helper()
	cfg, err := experiments.BaseConfig(experiments.ScaleSmoke)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Rounds = 6000
	return cfg
}

// BenchmarkTableRepairCost regenerates the section 2.2.4 cost table
// (T2 in DESIGN.md): the 77-minute worst-case repair and its
// feasibility bounds.
func BenchmarkTableRepairCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := costmodel.PaperTable()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-26s total %.1f min, %.1f repairs/day", r.Label, r.Cost.Total().Minutes(), r.RepairsPerDay)
			}
		}
	}
}

// BenchmarkFig1RepairsByThreshold regenerates figure 1 (and the repair
// half of the sweep): average repairs per 1000 peer-rounds by repair
// threshold and age category.
func BenchmarkFig1RepairsByThreshold(b *testing.B) {
	cfg := benchConfig(b)
	thresholds := []int{132, 148, 164, 180} // the sweep's corners
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunThresholdSweep(cfg, thresholds, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range sweep.Points {
				b.Logf("threshold %d: repairs/1k = %.3g %.3g %.3g %.3g",
					p.Threshold, p.RepairRate[0], p.RepairRate[1], p.RepairRate[2], p.RepairRate[3])
			}
		}
	}
}

// BenchmarkFig2LossesByThreshold regenerates figure 2: lost archives
// per 1000 peer-rounds by threshold and category (same runs as
// figure 1; benchmarked separately so the loss path is visible in
// profiles).
func BenchmarkFig2LossesByThreshold(b *testing.B) {
	cfg := benchConfig(b)
	thresholds := []int{132, 156, 180}
	for i := 0; i < b.N; i++ {
		sweep, err := experiments.RunThresholdSweep(cfg, thresholds, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range sweep.Points {
				b.Logf("threshold %d: losses/1k = %.4g %.4g %.4g %.4g",
					p.Threshold, p.LossRate[0], p.LossRate[1], p.LossRate[2], p.LossRate[3])
			}
		}
	}
}

// BenchmarkFig3ObserverRepairs regenerates figure 3: cumulative repairs
// of the five fixed-age observers at threshold 148.
func BenchmarkFig3ObserverRepairs(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		focal, err := experiments.RunFocal(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for j, name := range focal.ObserverNames {
				b.Logf("observer %-9s cumulative repairs = %d", name, focal.ObserverCounts[j])
			}
		}
	}
}

// BenchmarkFig4CumulativeLosses regenerates figure 4: cumulative lost
// archives per peer by age category over the run.
func BenchmarkFig4CumulativeLosses(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		focal, err := experiments.RunFocal(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for c := metrics.Category(0); c < metrics.NumCategories; c++ {
				_, last := focal.LossSeries[c].Last()
				b.Logf("cumulative losses/peer [%s] = %.3f", c, last)
			}
		}
	}
}

// BenchmarkAblationStrategies compares the selection strategies (A1).
func BenchmarkAblationStrategies(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 4000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStrategyAblation(cfg, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%-20s repairs=%d losses=%d", p.Label, p.Repairs, p.Losses)
			}
		}
	}
}

// BenchmarkAblationAvailabilityModel compares session churn against
// per-round Bernoulli churn (A2).
func BenchmarkAblationAvailabilityModel(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 4000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAvailabilityAblation(cfg, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%-10s repairs=%d losses=%d", p.Label, p.Repairs, p.Losses)
			}
		}
	}
}

// BenchmarkAblationRepairDelay sweeps the repair-delay knob (A4, the
// paper's future-work item).
func BenchmarkAblationRepairDelay(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 4000
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRepairDelayAblation(cfg, []int{0, 24}, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%-10s repairs=%d losses=%d", p.Label, p.Repairs, p.Losses)
			}
		}
	}
}

// BenchmarkAblationHorizon sweeps the acceptance horizon L (A3).
func BenchmarkAblationHorizon(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 4000
	horizons := []int64{30 * churn.Day, 90 * churn.Day, 180 * churn.Day}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizonAblation(cfg, horizons, 2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%-8s repairs=%d losses=%d", p.Label, p.Repairs, p.Losses)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks

// BenchmarkSimRound measures the engine's per-round cost at smoke scale
// in steady state.
func BenchmarkSimRound(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = int64(b.N) + 2000
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s.Run()
}

// quiescentConfig builds a population of immortal, always-online peers
// at the paper's code shape: after the initial backups complete there
// are no churn events and no maintenance work, so the per-round cost of
// the engine itself — not the protocol — is what gets measured.
func quiescentConfig(numPeers int) sim.Config {
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "immortal", Proportion: 1, Availability: 1},
	})
	if err != nil {
		panic(err)
	}
	cfg := sim.DefaultConfig()
	cfg.NumPeers = numPeers
	cfg.Profiles = profiles
	cfg.Avail = churn.AlwaysOnline{}
	return cfg
}

// BenchmarkQuiescentRound measures the per-round engine cost on a
// quiescent paper-scale population across population sizes, after the
// initial uploads have drained. An event-driven core must show
// per-round cost scaling with the number of due events (here ~zero),
// not with NumPeers; the historical scan engine measured 60µs / 405µs
// / 3.3ms per quiescent round at 5k / 25k / 100k peers on the same
// harness — linear in population — where the calendar-queue engine is
// flat at tens of nanoseconds.
func BenchmarkQuiescentRound(b *testing.B) {
	for _, n := range []int{5000, 25000, 100000} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			cfg := quiescentConfig(n)
			const warmup = 16 // initial uploads complete in ~3 rounds
			cfg.Rounds = int64(b.N) + warmup
			s, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < warmup; i++ {
				s.StepRound()
			}
			b.ResetTimer()
			for s.StepRound() {
			}
		})
	}
}

// BenchmarkChurnRound measures the per-round engine cost under the
// paper's real churn mix at paper scale: the cost is dominated by
// genuine events (session flips, deaths, repairs), which is the floor
// an event-driven engine cannot go below.
//
// The warmup runs past the monitoring window (AcceptHorizon, 2160
// rounds): by then the availability histories, calendar buckets and
// candidate pools have reached their high-water marks and repair
// traffic has ramped to its stationary rate, so the timed section
// measures the true steady state — including its zero-allocation
// property (b.ReportAllocs), which shorter warmups mask with one-time
// capacity growth. (The pre-PR-5 500-round warmup sat in the cheaper
// ramp-up regime; BENCH_4 and BENCH_5 churn-round numbers are not
// directly comparable for that reason on top of the engine changes.)
func BenchmarkChurnRound(b *testing.B) {
	cfg := sim.DefaultConfig() // the paper's 25,000 peers
	const warmup = 2600
	cfg.Rounds = int64(b.N) + warmup
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warmup; i++ {
		s.StepRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s.StepRound() {
	}
}

// BenchmarkAdaptiveChurnRound measures what the adaptive redundancy
// layer adds to the steady-state churn round at paper scale: the same
// population and warmup as BenchmarkChurnRound, run under the fixed
// policy (the engine's historical fast path — the redundancy phase is
// never entered) and under the adaptive default (one policy evaluation
// per archive per day plus the grow/shrink traffic it decides). The
// fixed arm must match BenchmarkChurnRound within noise; the adaptive
// arm's delta is the whole subsystem's runtime bill.
func BenchmarkAdaptiveChurnRound(b *testing.B) {
	for _, policy := range []string{"fixed", "adaptive"} {
		b.Run("policy="+policy, func(b *testing.B) {
			cfg := sim.DefaultConfig() // the paper's 25,000 peers
			cfg.RedundancySpec = policy
			const warmup = 2600
			cfg.Rounds = int64(b.N) + warmup
			s, err := sim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < warmup; i++ {
				s.StepRound()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for s.StepRound() {
			}
		})
	}
}

// BenchmarkShardedChurnRound measures the sharded engine's scaling
// curve: steady-state rounds under the paper's churn mix at large
// populations, across shard counts. The code shape is thin (32/16,
// short horizon) so the 1M-peer population fits in CI memory; the
// short warmup still clears the shortened monitoring window. S=1 is
// the sequential baseline — the sharded engine guarantees bit-equal
// results at every S, so the deltas here are pure speedup. The 1M
// populations are skipped under -short (bench smoke runs them at 1x
// only on full runs).
func BenchmarkShardedChurnRound(b *testing.B) {
	for _, peers := range []int{100000, 1000000} {
		for _, shards := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("peers=%d/shards=%d", peers, shards), func(b *testing.B) {
				if testing.Short() && peers > 100000 {
					b.Skip("1M-peer population skipped with -short")
				}
				cfg := sim.DefaultConfig()
				cfg.NumPeers = peers
				cfg.TotalBlocks = 32
				cfg.DataBlocks = 16
				cfg.RepairThreshold = 20
				cfg.Quota = 96
				cfg.PoolSamplePerRound = 32
				cfg.AcceptHorizon = 72
				cfg.Shards = shards
				const warmup = 120 // past the shortened monitoring window
				cfg.Rounds = int64(b.N) + warmup
				s, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < warmup; i++ {
					s.StepRound()
				}
				b.ReportAllocs()
				b.ResetTimer()
				for s.StepRound() {
				}
			})
		}
	}
}

// BenchmarkWalkV3ChurnRound measures the v3 engine (shard-local walk +
// deterministic merge, -walk=v3) against the v1 walk on the same thin
// large-population shapes as BenchmarkShardedChurnRound. Under v1 the
// walk and maintenance phases are sequential whatever the shard count;
// v3 shards both, so walk=v3 at S>1 is where the 100k/1M curves bend
// on multi-core machines (on a single-core runner the S>1 rows mostly
// measure merge overhead — snapshots record gomaxprocs for exactly
// this reason). v1 and v3 trajectories are intentionally not
// draw-compatible, so this compares engine generations, not bit-equal
// runs. The 1M populations are skipped under -short.
func BenchmarkWalkV3ChurnRound(b *testing.B) {
	for _, peers := range []int{100000, 1000000} {
		for _, walk := range []string{sim.WalkV1, sim.WalkV3} {
			for _, shards := range []int{1, 2, 4, 8} {
				if walk == sim.WalkV1 && shards > 1 {
					continue // v1's walk is sequential; S>1 is covered by BenchmarkShardedChurnRound
				}
				b.Run(fmt.Sprintf("peers=%d/walk=%s/shards=%d", peers, walk, shards), func(b *testing.B) {
					if testing.Short() && peers > 100000 {
						b.Skip("1M-peer population skipped with -short")
					}
					cfg := sim.DefaultConfig()
					cfg.NumPeers = peers
					cfg.TotalBlocks = 32
					cfg.DataBlocks = 16
					cfg.RepairThreshold = 20
					cfg.Quota = 96
					cfg.PoolSamplePerRound = 32
					cfg.AcceptHorizon = 72
					cfg.Walk = walk
					cfg.Shards = shards
					const warmup = 120 // past the shortened monitoring window
					cfg.Rounds = int64(b.N) + warmup
					s, err := sim.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					for i := 0; i < warmup; i++ {
						s.StepRound()
					}
					b.ReportAllocs()
					b.ResetTimer()
					for s.StepRound() {
					}
				})
			}
		}
	}
}

// BenchmarkTransferRound measures the per-round engine cost with the
// transfer scheduler engaged: the paper's churn mix at paper scale over
// the skewed bandwidth population, so every repair is an in-flight
// metered upload (enqueue, uplink booking, completion events,
// suspend/resume on churn). The warmup mirrors BenchmarkChurnRound so
// the timed section is the same steady state plus the transfer load.
func BenchmarkTransferRound(b *testing.B) {
	cfg := sim.DefaultConfig() // the paper's 25,000 peers
	bw, err := transfer.Parse("skewed")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Bandwidth = bw
	const warmup = 2600
	cfg.Rounds = int64(b.N) + warmup
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warmup; i++ {
		s.StepRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s.StepRound() {
	}
}

// BenchmarkFlashCrowdRound measures the per-round cost under sustained
// restore pressure: recurring regional kill shocks with a restore crowd
// demanding archives back every week, over DSL-class links. This is the
// engine's worst realistic regime — the completion heap, the restore
// table and the suspend/resume paths all stay hot.
func BenchmarkFlashCrowdRound(b *testing.B) {
	cfg := sim.DefaultConfig()
	bw, err := transfer.Parse("dsl")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Bandwidth = bw
	cfg.Shocks = []sim.ShockSpec{
		{Name: "attrition", Rate: 1.0 / float64(churn.Week), Fraction: 0.2, Regions: 8, Kill: true},
	}
	const warmup = 2600
	cfg.Rounds = int64(b.N) + warmup
	for round := int64(warmup) / 2; round < cfg.Rounds; round += churn.Week {
		cfg.Restores = append(cfg.Restores, sim.RestoreSpec{
			Name: "crowd", Round: round, Fraction: 0.3,
		})
	}
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < warmup; i++ {
		s.StepRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for s.StepRound() {
	}
}

// supervisedBenchSpec is a one-variant micro campaign for the process
// supervision benchmarks: small enough that the worker process's spawn,
// JSON handshake and result snapshot are a visible share of the cost.
func supervisedBenchSpec() experiments.CampaignSpec {
	return experiments.CampaignSpec{
		Kind:   "repair-delay",
		Scale:  experiments.ScaleSmoke,
		Seed:   3,
		Delays: []int{0},
		Overrides: &experiments.ConfigOverrides{
			NumPeers: 100, Rounds: 300, TotalBlocks: 16, DataBlocks: 8,
			RepairThreshold: 10, Quota: 48, PoolSamplePerRound: 32, AcceptHorizon: 48,
		},
	}
}

// BenchmarkSupervisedVariant measures one campaign variant executed
// through the fault-tolerant process supervisor: worker spawn, spec
// handshake, the simulation itself, and the JSON result snapshot
// crossing the pipe. Against BenchmarkInProcessVariant the delta is the
// full isolation overhead a supervised campaign pays per variant.
func BenchmarkSupervisedVariant(b *testing.B) {
	spec := supervisedBenchSpec()
	camp, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	sup := &experiments.Supervisor{
		Procs:     1,
		WorkerCmd: []string{os.Args[0]},
		WorkerEnv: []string{"P2PSIM_TEST_WORKER=1"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := sup.Run(context.Background(), spec, camp, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatalf("got %d rows, want 1", len(rows))
		}
	}
}

// BenchmarkInProcessVariant runs the identical variant on the in-process
// Runner: the baseline the supervisor's isolation overhead is measured
// against.
func BenchmarkInProcessVariant(b *testing.B) {
	spec := supervisedBenchSpec()
	camp, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	r := experiments.Runner{Parallelism: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := r.Run(context.Background(), camp)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatalf("got %d rows, want 1", len(rows))
		}
	}
}

// BenchmarkRSEncode measures Reed-Solomon encoding throughput at the
// paper's 128+128 shape with 4 KiB blocks.
func BenchmarkRSEncode(b *testing.B) {
	enc, err := erasure.New(128, 128)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	const blockSize = 4096
	shards := make([][]byte, 256)
	for i := range shards {
		shards[i] = make([]byte, blockSize)
		if i < 128 {
			for j := range shards[i] {
				shards[i][j] = byte(r.Uint64())
			}
		}
	}
	b.SetBytes(128 * blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSReconstruct measures worst-case reconstruction (128 of 256
// shards lost).
func BenchmarkRSReconstruct(b *testing.B) {
	enc, err := erasure.New(128, 128)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	const blockSize = 4096
	orig := make([][]byte, 256)
	for i := range orig {
		orig[i] = make([]byte, blockSize)
		if i < 128 {
			for j := range orig[i] {
				orig[i][j] = byte(r.Uint64())
			}
		}
	}
	if err := enc.Encode(orig); err != nil {
		b.Fatal(err)
	}
	lost := r.Perm(256)[:128]
	b.SetBytes(128 * blockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		shards := make([][]byte, 256)
		copy(shards, orig)
		for _, j := range lost {
			shards[j] = nil
		}
		b.StartTimer()
		if err := enc.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGF256MulAddSlice measures the GF(2^8) fused multiply-add
// kernel, the inner loop of all coding.
func BenchmarkGF256MulAddSlice(b *testing.B) {
	src := make([]byte, 4096)
	dst := make([]byte, 4096)
	r := rng.New(3)
	for i := range src {
		src[i] = byte(r.Uint64())
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf256.MulAddSlice(byte(i)|1, src, dst)
	}
}

// BenchmarkAcceptanceFunction measures the paper's f(p1, p2).
func BenchmarkAcceptanceFunction(b *testing.B) {
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += selection.AcceptanceFunction(int64(i%3000), int64((i*7)%3000), 2160)
	}
	_ = acc
}

// benchViews builds a deterministic candidate set with monitored
// histories, the input shape of the Score/AcceptProb hot path.
func benchViews(b *testing.B, n int) []selection.View {
	b.Helper()
	views := make([]selection.View, n)
	for i := range views {
		h := monitor.NewIntervalHistory(2160)
		online := true
		for round := int64(0); round < 2160; round += int64(20 + i%80) {
			if err := h.RecordTransition(round, online); err != nil {
				b.Fatal(err)
			}
			online = !online
		}
		views[i] = selection.View{
			Observed: selection.Observed{Age: int64(i * 37 % 5000), History: h},
			Oracle:   selection.Oracle{Availability: float64(i%100) / 100, Remaining: int64(i * 13 % 9000)},
		}
	}
	return views
}

// BenchmarkPolicyScore measures the ranking hot path of every
// registered strategy spec: one Score call per pooled candidate.
func BenchmarkPolicyScore(b *testing.B) {
	views := benchViews(b, 256)
	for _, spec := range selection.Names() {
		pol, err := selection.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				acc += pol.Score(selection.Context{Round: 2160}, views[i%len(views)])
			}
			_ = acc
		})
	}
}

// BenchmarkPolicyAgree measures the mutual-acceptance hot path
// (AcceptProb both directions plus the rng draws) for the
// probabilistic age strategy and one always-accept baseline, whose
// guarded path must be near-free.
func BenchmarkPolicyAgree(b *testing.B) {
	views := benchViews(b, 256)
	for _, spec := range []string{"age", "random"} {
		pol, err := selection.Parse(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec, func(b *testing.B) {
			r := rng.New(11)
			agreed := 0
			for i := 0; i < b.N; i++ {
				if selection.AgreeCtx(r, pol, selection.Context{Round: 2160},
					views[i%len(views)], views[(i*7+3)%len(views)]) {
					agreed++
				}
			}
			_ = agreed
		})
	}
}

// BenchmarkEstimatorExpectedRemaining measures the estimators behind
// the estimator:* specs at a mix of ages.
func BenchmarkEstimatorExpectedRemaining(b *testing.B) {
	empirical, err := lifetime.NewEmpiricalModel(func() []float64 {
		r := rng.New(5)
		s := make([]float64, 512)
		for i := range s {
			s[i] = 720 + 30000*r.Float64()
		}
		return s
	}())
	if err != nil {
		b.Fatal(err)
	}
	ests := []struct {
		name string
		est  lifetime.Estimator
	}{
		{"age-rank", lifetime.AgeRank{Horizon: 2160}},
		{"pareto", lifetime.ParetoModel{Xm: 1, Alpha: 1.5}},
		{"empirical", empirical},
	}
	for _, e := range ests {
		b.Run(e.name, func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				acc += e.est.ExpectedRemaining(float64(i * 31 % 40000))
			}
			_ = acc
		})
	}
}

// uptimeHistory builds an IntervalHistory with the given number of
// in-window transitions (alternating sessions ending at round 2160).
func uptimeHistory(b *testing.B, transitions int) *monitor.IntervalHistory {
	b.Helper()
	const window = 2160
	h := monitor.NewIntervalHistory(window)
	step := int64(window / (transitions + 1))
	if step < 1 {
		step = 1
	}
	online := true
	for round := int64(0); round < window; round += step {
		if err := h.RecordTransition(round, online); err != nil {
			b.Fatal(err)
		}
		online = !online
	}
	return h
}

// BenchmarkUptime measures the windowed availability query on both
// history representations: the interval history across transition
// densities (the prefix-summed binary search must stay flat where the
// old segment walk grew linearly) and the bit history's word-masked
// popcount. Reported with -benchmem: queries are read-only and must
// not allocate.
func BenchmarkUptime(b *testing.B) {
	for _, transitions := range []int{4, 32, 256, 2048} {
		h := uptimeHistory(b, transitions)
		b.Run(fmt.Sprintf("interval/transitions=%d", transitions), func(b *testing.B) {
			b.ReportAllocs()
			acc := 0.0
			for i := 0; i < b.N; i++ {
				acc += h.Uptime(2160, int64(1+i%2160))
			}
			_ = acc
		})
	}
	bit := monitor.NewBitHistory(2160)
	for round := int64(0); round < 4000; round++ {
		if err := bit.Record(round, round%3 != 0); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("bit/window=2160", func(b *testing.B) {
		b.ReportAllocs()
		acc := 0.0
		for i := 0; i < b.N; i++ {
			acc += bit.Uptime(1 + i%2160)
		}
		_ = acc
	})
}

// BenchmarkViewScore measures the view-construction + Score hot path
// of the candidate-probing loop: a monitored-availability policy
// scoring candidates whose histories carry realistic transition
// counts. With the prefix-summed Uptime this is O(log transitions)
// per call and allocation-free.
func BenchmarkViewScore(b *testing.B) {
	pol, err := selection.Parse("monitored-availability:720")
	if err != nil {
		b.Fatal(err)
	}
	for _, transitions := range []int{32, 256} {
		hists := make([]*monitor.IntervalHistory, 64)
		for i := range hists {
			hists[i] = uptimeHistory(b, transitions)
		}
		b.Run(fmt.Sprintf("transitions=%d", transitions), func(b *testing.B) {
			b.ReportAllocs()
			ctx := selection.Context{Round: 2160}
			acc := 0.0
			for i := 0; i < b.N; i++ {
				v := selection.View{
					Observed: selection.Observed{Age: int64(i % 5000), History: hists[i%len(hists)]},
					Oracle:   selection.Oracle{Availability: 0.7, Remaining: 9000},
				}
				acc += pol.Score(ctx, v)
			}
			_ = acc
		})
	}
}

// BenchmarkMaintainerStep measures one maintenance step for a peer in
// repair (pool building plus placement).
func BenchmarkMaintainerStep(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 500
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Run()
	m := s.Maintainer()
	r := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Steps on a healthy peer measure the trigger check; the mix of
		// peers includes repairing ones.
		m.Step(r, 0)
		_ = maintenance.OutcomeNone
	}
}

// BenchmarkLedgerSessionFlip measures the cost of one session
// transition with a realistic reverse-index size.
func BenchmarkLedgerSessionFlip(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 500
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	s.Run()
	led := s.Ledger()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led.SetOnline(5, i%2 == 0)
	}
}

// BenchmarkChurnSessionSampling measures availability session draws.
func BenchmarkChurnSessionSampling(b *testing.B) {
	m := churn.DefaultSessionModel()
	r := rng.New(4)
	var acc int64
	for i := 0; i < b.N; i++ {
		acc += m.SessionLength(r, 0.75, i%2 == 0)
	}
	_ = acc
}

var sinkRates [metrics.NumCategories]float64

// BenchmarkFullSmokeRun measures one complete smoke-scale focal run
// end to end (the unit of all figure benches).
func BenchmarkFullSmokeRun(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Rounds = 3000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := p2prun(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			sinkRates[c] = res.Collector.RepairRatePer1000(c, true)
		}
	}
}

func p2prun(cfg sim.Config) (*sim.Result, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

func ExampleAcceptanceFunction() {
	// An elder (90 days) accepting a newborn: the floor 1/L.
	fmt.Printf("%.6f\n", AcceptanceFunction(90*24, 0, 90*24))
	// A newborn always accepts an elder.
	fmt.Printf("%.0f\n", AcceptanceFunction(0, 90*24, 90*24))
	// Output:
	// 0.000463
	// 1
}
