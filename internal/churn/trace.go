package churn

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// EventKind enumerates churn trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvJoin    EventKind = iota // peer enters the system
	EvLeave                    // peer departs definitively
	EvOnline                   // peer session starts
	EvOffline                  // peer session ends
)

var kindNames = [...]string{"join", "leave", "online", "offline"}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// ParseEventKind parses the textual kind.
func ParseEventKind(s string) (EventKind, error) {
	for i, n := range kindNames {
		if n == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("churn: unknown event kind %q", s)
}

// Event is one churn event for one peer.
type Event struct {
	Round int64
	Peer  int32
	Kind  EventKind
}

// Trace is an ordered log of churn events, recordable from a simulation
// run and replayable into another.
type Trace struct {
	Events []Event
}

// Append adds an event.
func (t *Trace) Append(round int64, peer int32, kind EventKind) {
	t.Events = append(t.Events, Event{Round: round, Peer: peer, Kind: kind})
}

// kindSortPriority orders same-round events of one peer slot so that a
// departure precedes the replacement's join (slots are reused in the
// same round); otherwise Lifetimes would pair the new join with the old
// leave and report zero-length lives.
var kindSortPriority = [...]int{EvJoin: 1, EvLeave: 0, EvOnline: 2, EvOffline: 2}

// Sort orders events by round, then peer, then kind (leave before
// join), making traces comparable across runs.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return kindSortPriority[a.Kind] < kindSortPriority[b.Kind]
	})
}

// Lifetimes extracts completed lifetimes (leave round - join round) per
// peer, the input to lifetime-model fitting. Peers that never leave are
// excluded.
func (t *Trace) Lifetimes() []float64 {
	joins := make(map[int32]int64)
	var out []float64
	for _, e := range t.Events {
		switch e.Kind {
		case EvJoin:
			joins[e.Peer] = e.Round
		case EvLeave:
			if j, ok := joins[e.Peer]; ok {
				if d := e.Round - j; d > 0 {
					out = append(out, float64(d))
				}
				delete(joins, e.Peer)
			}
		}
	}
	return out
}

// WriteCSV emits the trace as "round,peer,kind" lines with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "round,peer,kind"); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s\n", e.Round, e.Peer, e.Kind); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if first {
			first = false
			if text == "round,peer,kind" {
				continue
			}
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("churn: line %d: want 3 fields, got %d", line, len(parts))
		}
		round, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: bad round: %w", line, err)
		}
		peer, err := strconv.ParseInt(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: bad peer: %w", line, err)
		}
		kind, err := ParseEventKind(parts[2])
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		t.Append(round, int32(peer), kind)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, errors.New("churn: empty trace file")
	}
	return t, nil
}
