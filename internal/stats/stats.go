// Package stats provides the measurement primitives behind the
// experiment harness: streaming moments, histograms, time series,
// quantiles, two-sample Kolmogorov-Smirnov distance and least-squares
// fits. Everything is allocation-light and deterministic so results can
// be compared bit-for-bit across runs.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty reports an operation on an empty data set.
var ErrEmpty = errors.New("stats: empty data set")

// ---------------------------------------------------------------------------
// Streaming moments

// Stream accumulates count, mean and variance in one pass using
// Welford's algorithm, which stays numerically stable over the billions
// of updates a long simulation performs. The zero value is ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN incorporates the same observation n times (O(1)).
func (s *Stream) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	// Chan et al. parallel-merge update of (n, mean, m2) with a
	// zero-variance batch.
	nb := float64(n)
	na := float64(s.n)
	delta := x - s.mean
	tot := na + nb
	s.mean += delta * nb / tot
	s.m2 += delta * delta * na * nb / tot
	s.n += n
}

// Merge folds other into s (parallel Welford combination).
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	na, nb := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := na + nb
	s.mean += delta * nb / tot
	s.m2 += other.m2 + delta*delta*na*nb/tot
	s.n += other.n
}

// N returns the observation count.
func (s *Stream) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation (0 when empty).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Stream) Max() float64 { return s.max }

// Sum returns n * mean.
func (s *Stream) Sum() float64 { return float64(s.n) * s.mean }

// StdErr returns the standard error of the mean.
func (s *Stream) StdErr() float64 {
	if s.n < 2 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (s *Stream) CI95() float64 { return 1.96 * s.StdErr() }

// String summarises the stream.
func (s *Stream) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g", s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// ---------------------------------------------------------------------------
// Quantiles over stored samples

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the 0.5 quantile.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// ---------------------------------------------------------------------------
// Histogram

// Histogram counts observations in fixed-width buckets over [Lo, Hi),
// with overflow/underflow buckets. Use NewLogHistogram for data spanning
// orders of magnitude (repair counts do).
type Histogram struct {
	lo, hi  float64
	log     bool
	buckets []int64
	under   int64
	over    int64
	total   int64
}

// NewHistogram returns a linear histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(hi > lo) || n <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v)/%d", lo, hi, n)
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, n)}, nil
}

// NewLogHistogram returns a histogram with n log-spaced buckets over
// [lo, hi); lo must be > 0.
func NewLogHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) || n <= 0 {
		return nil, fmt.Errorf("stats: invalid log histogram [%v,%v)/%d", lo, hi, n)
	}
	return &Histogram{lo: lo, hi: hi, log: true, buckets: make([]int64, n)}, nil
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	idx := h.bucketOf(x)
	switch {
	case idx < 0:
		h.under++
	case idx >= len(h.buckets):
		h.over++
	default:
		h.buckets[idx]++
	}
}

func (h *Histogram) bucketOf(x float64) int {
	if h.log {
		if x < h.lo {
			return -1
		}
		ratio := math.Log(x/h.lo) / math.Log(h.hi/h.lo)
		return int(ratio * float64(len(h.buckets)))
	}
	if x < h.lo {
		return -1
	}
	return int((x - h.lo) / (h.hi - h.lo) * float64(len(h.buckets)))
}

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	n := float64(len(h.buckets))
	if h.log {
		f := math.Log(h.hi / h.lo)
		return h.lo * math.Exp(f*float64(i)/n), h.lo * math.Exp(f*float64(i+1)/n)
	}
	w := (h.hi - h.lo) / n
	return h.lo + w*float64(i), h.lo + w*float64(i+1)
}

// Counts returns the per-bucket counts (a copy), plus underflow and
// overflow counts.
func (h *Histogram) Counts() (buckets []int64, under, over int64) {
	return append([]int64(nil), h.buckets...), h.under, h.over
}

// Total returns the number of observations added.
func (h *Histogram) Total() int64 { return h.total }

// NumBuckets returns the bucket count.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// ---------------------------------------------------------------------------
// Time series

// Series is an append-only (x, y) series with helpers for the cumulative
// plots in the paper (Figures 3 and 4).
type Series struct {
	name string
	xs   []float64
	ys   []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append adds a point; x values should be non-decreasing.
func (s *Series) Append(x, y float64) {
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.xs) }

// At returns point i.
func (s *Series) At(i int) (x, y float64) { return s.xs[i], s.ys[i] }

// X returns the x values (no copy).
func (s *Series) X() []float64 { return s.xs }

// Y returns the y values (no copy).
func (s *Series) Y() []float64 { return s.ys }

// Last returns the final point, or (0, 0) for an empty series.
func (s *Series) Last() (x, y float64) {
	if len(s.xs) == 0 {
		return 0, 0
	}
	return s.xs[len(s.xs)-1], s.ys[len(s.ys)-1]
}

// Cumulative returns a new series whose y values are running sums.
func (s *Series) Cumulative() *Series {
	out := NewSeries(s.name + " (cumulative)")
	acc := 0.0
	for i := range s.xs {
		acc += s.ys[i]
		out.Append(s.xs[i], acc)
	}
	return out
}

// Downsample returns a series keeping every step-th point (and always
// the last), for plotting long runs compactly.
func (s *Series) Downsample(step int) *Series {
	if step <= 1 || s.Len() == 0 {
		return s
	}
	out := NewSeries(s.name)
	for i := 0; i < s.Len(); i += step {
		out.Append(s.xs[i], s.ys[i])
	}
	if (s.Len()-1)%step != 0 {
		out.Append(s.Last())
	}
	return out
}

// ---------------------------------------------------------------------------
// Kolmogorov-Smirnov

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic
// sup |F1 - F2| between the empirical CDFs of a and b.
func KSDistance(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, ErrEmpty
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Step both CDFs past the smallest pending value (and any ties)
		// before comparing, so tied observations do not inflate the gap.
		m := sa[i]
		if sb[j] < m {
			m = sb[j]
		}
		for i < len(sa) && sa[i] == m {
			i++
		}
		for j < len(sb) && sb[j] == m {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Least squares

// LinearFit holds a least-squares line y = Slope*x + Intercept and its
// coefficient of determination.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLine computes an ordinary least squares fit. xs and ys must have
// equal, non-zero length and xs must not be constant.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: FitLine needs equal non-empty slices, got %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: FitLine with constant x")
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys identical and on the fitted (horizontal) line
	}
	return fit, nil
}

// FitParetoLogLog estimates the Pareto tail exponent alpha by fitting
// log(survival) against log(x): for a Pareto, log P(X>x) =
// alpha*log(xm) - alpha*log(x), so the slope of the log-log complementary
// CDF is -alpha. Returns the estimated alpha and the fit.
func FitParetoLogLog(samples []float64) (alpha float64, fit LinearFit, err error) {
	if len(samples) < 10 {
		return 0, LinearFit{}, fmt.Errorf("stats: need >= 10 samples for a tail fit, got %d", len(samples))
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if s[0] <= 0 {
		return 0, LinearFit{}, errors.New("stats: Pareto tail fit needs positive samples")
	}
	var lx, ly []float64
	n := len(s)
	for i, v := range s {
		surv := float64(n-i) / float64(n)
		if i+1 < n && s[i+1] == v {
			continue // keep one point per distinct value
		}
		if surv <= 0 {
			continue
		}
		lx = append(lx, math.Log(v))
		ly = append(ly, math.Log(surv))
	}
	fit, err = FitLine(lx, ly)
	if err != nil {
		return 0, LinearFit{}, err
	}
	return -fit.Slope, fit, nil
}
