package maintenance

import (
	"testing"

	"p2pbackup/internal/overlay"
)

func TestDirtySetLifecycle(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())

	// Every slot starts armed: all peers owe an initial upload.
	for id := overlay.PeerID(0); id < 30; id++ {
		if !m.Armed(id) {
			t.Fatalf("fresh slot %d not armed", id)
		}
	}

	// Complete peer 0's initial upload, then disarm it the way the
	// engine does (visit finds WantsStep false).
	id := overlay.PeerID(0)
	for i := 0; i < 100 && !m.Included(id); i++ {
		m.Step(r, id)
	}
	if !m.Included(id) {
		t.Fatal("initial upload did not complete")
	}
	if !m.WantsStep(id) {
		m.Disarm(id)
	}
	if m.Armed(id) {
		t.Fatal("healthy included peer should disarm")
	}

	// Knock hosts offline until the visible count crosses the repair
	// threshold: the ledger watcher must re-arm the owner with no poll.
	wakes := 0
	m.SetWake(func(overlay.PeerID) { wakes++ })
	hosts := led.Hosts(id, nil)
	for _, h := range hosts {
		if led.Visible(id) < m.Params().RepairThreshold {
			break
		}
		led.SetOnline(h, false)
	}
	if !m.Armed(id) {
		t.Fatal("threshold crossing did not arm the owner")
	}
	if wakes == 0 {
		t.Fatal("arming did not fire the wake hook")
	}
	if !m.WantsStep(id) {
		t.Fatal("armed peer below threshold must want a step")
	}
}

func TestAliveCrossingFlagsLossCheck(t *testing.T) {
	m, led, tab, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	for i := 0; i < 100 && !m.Included(id); i++ {
		m.Step(r, id)
	}
	if !m.Included(id) {
		t.Fatal("initial upload did not complete")
	}
	if m.TakeLossCheck(id) {
		t.Fatal("no loss check should be pending on a full archive")
	}

	// Kill hosts until fewer than k blocks survive: the alive crossing
	// must flag exactly one pending loss check.
	hosts := led.Hosts(id, nil)
	for _, h := range hosts[:len(hosts)-m.Params().DataBlocks+1] {
		led.RemoveHost(h)
		tab.Bump(h)
	}
	if !m.LostArchive(id) {
		t.Fatalf("archive should be lost: alive=%d k=%d", led.Alive(id), m.Params().DataBlocks)
	}
	if !m.TakeLossCheck(id) {
		t.Fatal("alive crossing did not flag a loss check")
	}
	if m.TakeLossCheck(id) {
		t.Fatal("TakeLossCheck must consume the flag")
	}

	// ResetArchive clears the episode and re-arms for the re-upload.
	m.Disarm(id)
	m.ResetArchive(id)
	if !m.Armed(id) {
		t.Fatal("ResetArchive must arm the slot")
	}
	if m.Included(id) || m.TakeLossCheck(id) {
		t.Fatal("ResetArchive must clear inclusion and any pending loss check")
	}
}

func TestResetArmsReplacementOccupant(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(3)
	for i := 0; i < 100 && !m.Included(id); i++ {
		m.Step(r, id)
	}
	m.Disarm(id)
	// Death: ledger cleanup then slot reset, as the engine does it.
	led.RemovePeer(id)
	m.Reset(id)
	if !m.Armed(id) {
		t.Fatal("Reset must arm the fresh occupant")
	}
	if m.Included(id) {
		t.Fatal("Reset must clear inclusion")
	}
}
