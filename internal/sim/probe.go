package sim

import (
	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/transfer"
)

// PeerEvent identifies a peer-scoped simulation event: which peer, in
// which round, with the peer's current age category and behaviour
// profile.
type PeerEvent struct {
	Round    int64
	Peer     int // population slot
	Category metrics.Category
	Profile  int
}

// RepairEvent reports a completed upload burst: a maintenance repair,
// or the initial d = n backup when Initial is set.
type RepairEvent struct {
	PeerEvent
	Initial  bool
	Uploaded int // blocks uploaded
	Dropped  int // placements abandoned (offline partners)
	// Elapsed is the episode's duration in rounds, from the round the
	// repair triggered (or the initial upload first acted) to this
	// completion: the run's time-to-backup observable. In instant mode
	// most episodes complete in the round they start (Elapsed 0); with
	// bandwidth classes the upload phase stretches it.
	Elapsed int64
}

// TransferEvent reports a block transfer's lifecycle under bandwidth
// scheduling (Config.Bandwidth): enqueued (start), delivered
// (complete), or killed by an endpoint dying (abort). Host is -1 for
// restores, which have a single endpoint.
type TransferEvent struct {
	Round   int64
	ID      int64 // scheduler transfer id, ascending in enqueue order
	Kind    transfer.Kind
	Owner   int
	Host    int     // receiving partner; -1 for a restore
	Blocks  float64 // transfer size (1 for uploads, k for restores)
	Elapsed int64   // rounds since enqueue (0 on start events)
}

// ChurnEvent reports a membership or session transition (join, leave,
// online, offline) in the same vocabulary churn traces use. Profile is
// the behaviour profile of the peer the event concerns (for a join, the
// new occupant), so recorded traces replay with profile attribution
// intact.
type ChurnEvent struct {
	Round   int64
	Peer    int
	Kind    churn.EventKind
	Profile int
}

// ShockEvent reports a correlated-failure shock firing: which spec
// (Index into Config.Shocks), how many peers it actually took down, and
// whether the victims departed permanently (Killed) or only went
// offline. Metrics use it to attribute subsequent losses to the shock.
type ShockEvent struct {
	Round   int64
	Index   int
	Name    string
	Victims int
	Killed  bool
}

// ObserverRepairEvent reports a repair completed by a fixed-age
// observer (the paper's Figure 3 instrumentation).
type ObserverRepairEvent struct {
	Round    int64
	Observer int // index into Config.Observers
	Name     string
}

// RedundancyEvent reports an adaptive redundancy decision: the policy
// retuned one archive's target block count (Config.Redundancy; never
// fires under the fixed policy). From > To is a shrink — the surplus
// placements were retired immediately, releasing host storage; To >
// From is a grow — a maintenance upload episode for the extra parity
// blocks starts this round and completes through the ordinary repair
// machinery (OnRepair).
type RedundancyEvent struct {
	Round int64
	Peer  int // population slot
	From  int // previous target block count n(t)
	To    int // new target block count
	// Availability is the monitored partner-availability estimate the
	// decision was based on.
	Availability float64
}

// RoundEndEvent closes a round with the per-category population, the
// denominator every rate metric normalises by.
type RoundEndEvent struct {
	Round      int64
	Population [metrics.NumCategories]int64
	// MeanRedundancy is the population's mean target block count n(t)
	// under an adaptive redundancy policy; 0 in fixed mode.
	MeanRedundancy float64
}

// probe event kind indices; each kind's EventSet bit is 1 << index.
const (
	evChurn = iota
	evDeath
	evRepair
	evOutage
	evHardLoss
	evStall
	evCancel
	evShock
	evObserverRepair
	evRoundEnd
	// Transfer events append after the historical kinds so the existing
	// EventSet bit values stay stable.
	evTransferStart
	evTransferComplete
	evTransferAbort
	// Redundancy events append after the transfer kinds, same stability
	// rule.
	evRedundancyChange
	numProbeEvents
)

// EventSet is a bitmask of probe event kinds, used by probes to
// declare which events they observe (see EventDeclarer).
type EventSet uint16

// Event kind bits for EventSet, one per Probe hook.
const (
	// EventChurn selects OnChurn.
	EventChurn EventSet = 1 << evChurn
	// EventDeath selects OnDeath.
	EventDeath EventSet = 1 << evDeath
	// EventRepair selects OnRepair.
	EventRepair EventSet = 1 << evRepair
	// EventOutage selects OnOutage.
	EventOutage EventSet = 1 << evOutage
	// EventHardLoss selects OnHardLoss.
	EventHardLoss EventSet = 1 << evHardLoss
	// EventStall selects OnStall.
	EventStall EventSet = 1 << evStall
	// EventCancel selects OnCancel.
	EventCancel EventSet = 1 << evCancel
	// EventShock selects OnShock.
	EventShock EventSet = 1 << evShock
	// EventObserverRepair selects OnObserverRepair.
	EventObserverRepair EventSet = 1 << evObserverRepair
	// EventRoundEnd selects OnRoundEnd.
	EventRoundEnd EventSet = 1 << evRoundEnd
	// EventTransferStart selects OnTransferStart.
	EventTransferStart EventSet = 1 << evTransferStart
	// EventTransferComplete selects OnTransferComplete.
	EventTransferComplete EventSet = 1 << evTransferComplete
	// EventTransferAbort selects OnTransferAbort.
	EventTransferAbort EventSet = 1 << evTransferAbort
	// EventRedundancyChange selects OnRedundancyChange.
	EventRedundancyChange EventSet = 1 << evRedundancyChange
)

// AllEvents selects every event kind: the implied declaration of a
// probe without an EventDeclarer.
const AllEvents EventSet = 1<<numProbeEvents - 1

// EventDeclarer is the optional capability interface a Probe implements
// to declare which events it observes. New compiles the probe list into
// per-event dispatch slices from these declarations, so each emitted
// event touches only the probes that asked for it — an event nobody
// observes is a loop over an empty slice, with zero interface calls.
// A probe that does not implement EventDeclarer is dispatched every
// event kind. Declaring too few events means silently missed callbacks;
// declaring extra ones is merely a few wasted no-op calls.
type EventDeclarer interface {
	// ProbeEvents returns the set of events the probe observes.
	ProbeEvents() EventSet
}

// probeEvents returns a probe's declared event set, or AllEvents for
// probes without a declaration.
func probeEvents(p Probe) EventSet {
	if d, ok := p.(EventDeclarer); ok {
		return d.ProbeEvents()
	}
	return AllEvents
}

// Probe observes a simulation run. The engine emits every protocol
// event to each attached probe, in attachment order, at the moment the
// event happens; the built-in metrics collector, observer tracker and
// churn-trace recorder are themselves probes, so custom measurement
// (loss CDFs, bandwidth histograms, live dashboards) attaches the same
// way via Config.Probes without touching the engine.
//
// Probes run synchronously on the simulation goroutine: they must not
// block, and a probe instance must not be shared between concurrently
// running simulations (experiments.Variant.Probes is a factory for
// exactly this reason). Probes must not mutate simulation state; they
// may consume no randomness, so attaching or removing probes never
// changes a run's trajectory.
//
// Embed BaseProbe to implement only the events of interest.
type Probe interface {
	// OnChurn reports joins, departures and session flips.
	OnChurn(ChurnEvent)
	// OnDeath reports a departure about to be replaced; Category and
	// Profile describe the departing occupant.
	OnDeath(PeerEvent)
	// OnRepair reports a completed repair or initial backup.
	OnRepair(RepairEvent)
	// OnOutage reports an archive becoming unrecoverable from online
	// peers (the paper's "data lost" event).
	OnOutage(PeerEvent)
	// OnHardLoss reports a permanently lost archive (alive blocks < k).
	OnHardLoss(PeerEvent)
	// OnStall reports a round in which a peer needed repair but could
	// not proceed.
	OnStall(PeerEvent)
	// OnCancel reports a pending repair aborted after visibility
	// recovered.
	OnCancel(PeerEvent)
	// OnShock reports a correlated-failure shock firing.
	OnShock(ShockEvent)
	// OnObserverRepair reports a fixed-age observer completing a repair.
	OnObserverRepair(ObserverRepairEvent)
	// OnRoundEnd closes each round with the category populations.
	OnRoundEnd(RoundEndEvent)
	// OnTransferStart reports a transfer enqueued on a peer's link
	// (bandwidth scheduling only; never fires in instant mode).
	OnTransferStart(TransferEvent)
	// OnTransferComplete reports a transfer delivered.
	OnTransferComplete(TransferEvent)
	// OnTransferAbort reports a transfer killed by an endpoint dying.
	OnTransferAbort(TransferEvent)
	// OnRedundancyChange reports an adaptive redundancy policy retuning
	// one archive's target block count (never fires in fixed mode).
	OnRedundancyChange(RedundancyEvent)
}

// BaseProbe is a no-op Probe for embedding: override only the hooks a
// probe cares about.
type BaseProbe struct{}

// OnChurn implements Probe.
func (BaseProbe) OnChurn(ChurnEvent) {}

// OnDeath implements Probe.
func (BaseProbe) OnDeath(PeerEvent) {}

// OnRepair implements Probe.
func (BaseProbe) OnRepair(RepairEvent) {}

// OnOutage implements Probe.
func (BaseProbe) OnOutage(PeerEvent) {}

// OnHardLoss implements Probe.
func (BaseProbe) OnHardLoss(PeerEvent) {}

// OnStall implements Probe.
func (BaseProbe) OnStall(PeerEvent) {}

// OnCancel implements Probe.
func (BaseProbe) OnCancel(PeerEvent) {}

// OnShock implements Probe.
func (BaseProbe) OnShock(ShockEvent) {}

// OnObserverRepair implements Probe.
func (BaseProbe) OnObserverRepair(ObserverRepairEvent) {}

// OnRoundEnd implements Probe.
func (BaseProbe) OnRoundEnd(RoundEndEvent) {}

// OnTransferStart implements Probe.
func (BaseProbe) OnTransferStart(TransferEvent) {}

// OnTransferComplete implements Probe.
func (BaseProbe) OnTransferComplete(TransferEvent) {}

// OnTransferAbort implements Probe.
func (BaseProbe) OnTransferAbort(TransferEvent) {}

// OnRedundancyChange implements Probe.
func (BaseProbe) OnRedundancyChange(RedundancyEvent) {}

// ---------------------------------------------------------------------------
// Built-in probes: the metrics layer, expressed as probes.

// collectorProbe feeds a metrics.Collector (Figures 1, 2 and 4).
type collectorProbe struct {
	BaseProbe
	col *metrics.Collector
}

// ProbeEvents declares the events the collector consumes, so churn and
// death traffic — the bulk of a round's events — skips it entirely.
func (collectorProbe) ProbeEvents() EventSet {
	return EventRepair | EventOutage | EventHardLoss | EventStall | EventShock |
		EventRoundEnd | EventTransferComplete | EventTransferAbort |
		EventRedundancyChange
}

func (p collectorProbe) OnRedundancyChange(e RedundancyEvent) {
	p.col.RecordRedundancyChange(e.Round, e.From, e.To)
}

func (p collectorProbe) OnRepair(e RepairEvent) {
	p.col.RecordRepair(e.Round, e.Category, e.Profile, e.Initial, e.Uploaded, e.Dropped)
	p.col.RecordBackupTime(e.Round, float64(e.Elapsed))
}

func (p collectorProbe) OnTransferComplete(e TransferEvent) {
	if e.Kind == transfer.Restore {
		p.col.RecordRestoreTime(e.Round, float64(e.Elapsed))
	}
}

func (p collectorProbe) OnTransferAbort(e TransferEvent) {
	if e.Kind == transfer.Restore {
		p.col.RecordRestoreFailed(e.Round)
	}
}

func (p collectorProbe) OnOutage(e PeerEvent) {
	p.col.RecordOutage(e.Round, e.Category, e.Profile)
}

func (p collectorProbe) OnHardLoss(e PeerEvent) {
	p.col.RecordHardLoss(e.Round, e.Category, e.Profile)
}

func (p collectorProbe) OnStall(e PeerEvent) {
	p.col.RecordStall(e.Round, e.Category)
}

func (p collectorProbe) OnShock(e ShockEvent) {
	p.col.RecordShock(e.Round, e.Victims)
}

func (p collectorProbe) OnRoundEnd(e RoundEndEvent) {
	for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
		p.col.AddPeerRounds(e.Round, cat, e.Population[cat])
	}
	if e.MeanRedundancy > 0 {
		p.col.RecordRedundancyLevel(e.Round, e.MeanRedundancy)
	}
	p.col.EndRound(e.Round, e.Population)
}

// observerProbe feeds a metrics.ObserverTracker (Figure 3).
type observerProbe struct {
	BaseProbe
	obs *metrics.ObserverTracker
}

// ProbeEvents declares the single event the tracker consumes.
func (observerProbe) ProbeEvents() EventSet { return EventObserverRepair }

func (p observerProbe) OnObserverRepair(e ObserverRepairEvent) {
	p.obs.RecordRepair(e.Round, e.Observer)
}

// traceProbe records churn events into a replayable churn.Trace.
type traceProbe struct {
	BaseProbe
	trace *churn.Trace
}

// ProbeEvents declares the single event the recorder consumes.
func (traceProbe) ProbeEvents() EventSet { return EventChurn }

func (p traceProbe) OnChurn(e ChurnEvent) {
	p.trace.AppendProfile(e.Round, int32(e.Peer), e.Kind, int16(e.Profile))
}
