package churn

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EventKind enumerates churn trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvJoin    EventKind = iota // peer enters the system
	EvLeave                    // peer departs definitively
	EvOnline                   // peer session starts
	EvOffline                  // peer session ends
)

var kindNames = [...]string{"join", "leave", "online", "offline"}

// String returns the kind's wire name ("join", "leave", ...).
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// ParseEventKind parses the textual kind.
func ParseEventKind(s string) (EventKind, error) {
	for i, n := range kindNames {
		if n == s {
			return EventKind(i), nil
		}
	}
	return 0, fmt.Errorf("churn: unknown event kind %q", s)
}

// NoProfile marks an event whose peer's behaviour profile is unknown
// (legacy three-column traces, externally measured data).
const NoProfile int16 = -1

// Event is one churn event for one peer. Profile is the peer's
// behaviour-profile index at the time of the event (NoProfile when
// unknown); replay uses it to restore per-profile attribution.
type Event struct {
	Round   int64
	Peer    int32
	Kind    EventKind
	Profile int16
}

// Trace is an ordered log of churn events, recordable from a simulation
// run and replayable into another: sim.Config.RecordTrace captures one,
// sim.Config.Replay consumes one.
type Trace struct {
	Events []Event
}

// Append adds an event with an unknown profile.
func (t *Trace) Append(round int64, peer int32, kind EventKind) {
	t.AppendProfile(round, peer, kind, NoProfile)
}

// AppendProfile adds an event carrying the peer's profile index.
func (t *Trace) AppendProfile(round int64, peer int32, kind EventKind, profile int16) {
	t.Events = append(t.Events, Event{Round: round, Peer: peer, Kind: kind, Profile: profile})
}

// MaxPeer returns the largest peer id in the trace, or -1 for an empty
// trace. Replay sizes its population as MaxPeer()+1.
func (t *Trace) MaxPeer() int32 {
	max := int32(-1)
	for _, e := range t.Events {
		if e.Peer > max {
			max = e.Peer
		}
	}
	return max
}

// LastRound returns the round of the latest event, or -1 for an empty
// trace. A replayed run is naturally bounded by it: beyond that round
// the trace specifies no churn at all.
func (t *Trace) LastRound() int64 {
	last := int64(-1)
	for _, e := range t.Events {
		if e.Round > last {
			last = e.Round
		}
	}
	return last
}

// kindSortPriority orders same-round events of one peer slot so that a
// departure precedes the replacement's join (slots are reused in the
// same round); otherwise Lifetimes would pair the new join with the old
// leave and report zero-length lives. Session events follow the join.
var kindSortPriority = [...]int{EvJoin: 1, EvLeave: 0, EvOnline: 2, EvOffline: 2}

// eventLess is the engine order: round, then peer, then kind priority
// (leave before the replacement's join, session events last).
func eventLess(a, b Event) bool {
	if a.Round != b.Round {
		return a.Round < b.Round
	}
	if a.Peer != b.Peer {
		return a.Peer < b.Peer
	}
	return kindSortPriority[a.Kind] < kindSortPriority[b.Kind]
}

// Sort orders events by round, then peer, then kind (leave before
// join), making traces comparable across runs.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return eventLess(t.Events[i], t.Events[j])
	})
}

// IsSorted reports whether the events are already in engine order.
// Traces written by Sort, tracegen and the engine's recorder are;
// replay uses this to skip a per-run copy and re-sort.
func (t *Trace) IsSorted() bool {
	for i := 1; i < len(t.Events); i++ {
		if eventLess(t.Events[i], t.Events[i-1]) {
			return false
		}
	}
	return true
}

// Lifetimes extracts completed lifetimes (leave round - join round) per
// peer, the input to lifetime-model fitting. Peers that never leave are
// excluded.
func (t *Trace) Lifetimes() []float64 {
	joins := make(map[int32]int64)
	var out []float64
	for _, e := range t.Events {
		switch e.Kind {
		case EvJoin:
			joins[e.Peer] = e.Round
		case EvLeave:
			if j, ok := joins[e.Peer]; ok {
				if d := e.Round - j; d > 0 {
					out = append(out, float64(d))
				}
				delete(joins, e.Peer)
			}
		}
	}
	return out
}

// csvHeader is the four-column header WriteCSV emits; ReadCSV also
// accepts the legacy three-column "round,peer,kind".
const csvHeader = "round,peer,kind,profile"

// WriteCSV emits the trace as "round,peer,kind,profile" lines with a
// header. Unknown profiles are written as -1.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d\n", e.Round, e.Peer, e.Kind, e.Profile); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Legacy three-column
// traces (no profile) are accepted; their events carry NoProfile.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if first {
			first = false
			if text == csvHeader || text == "round,peer,kind" {
				continue
			}
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 && len(parts) != 4 {
			return nil, fmt.Errorf("churn: line %d: want 3 or 4 fields, got %d", line, len(parts))
		}
		round, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: bad round: %w", line, err)
		}
		peer, err := strconv.ParseInt(parts[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: bad peer: %w", line, err)
		}
		kind, err := ParseEventKind(parts[2])
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		profile := NoProfile
		if len(parts) == 4 {
			p, err := strconv.ParseInt(parts[3], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("churn: line %d: bad profile: %w", line, err)
			}
			profile = int16(p)
		}
		t.AppendProfile(round, int32(peer), kind, profile)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, errors.New("churn: empty trace file")
	}
	return t, nil
}

// jsonEvent is the JSONL wire form of one event.
type jsonEvent struct {
	Round   int64  `json:"round"`
	Peer    int32  `json:"peer"`
	Kind    string `json:"kind"`
	Profile int16  `json:"profile"`
}

// WriteJSONL emits the trace as one JSON object per line:
//
//	{"round":0,"peer":3,"kind":"join","profile":1}
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		if err := enc.Encode(jsonEvent{Round: e.Round, Peer: e.Peer, Kind: e.Kind.String(), Profile: e.Profile}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL. A missing profile
// field decodes as 0, so externally supplied JSONL should set profile
// explicitly (use -1 for unknown).
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		kind, err := ParseEventKind(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("churn: line %d: %w", line, err)
		}
		t.AppendProfile(je.Round, je.Peer, kind, je.Profile)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Events) == 0 {
		return nil, errors.New("churn: empty trace file")
	}
	return t, nil
}

// jsonlExt reports whether a path names a JSONL trace.
func jsonlExt(path string) bool {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		return true
	}
	return false
}

// WriteTraceFile writes the trace to path, choosing the format by
// extension: .jsonl/.ndjson for JSONL, anything else CSV.
func WriteTraceFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if jsonlExt(path) {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteCSV(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a trace from path, choosing the format by
// extension like WriteTraceFile.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if jsonlExt(path) {
		return ReadJSONL(f)
	}
	return ReadCSV(f)
}
