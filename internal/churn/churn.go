// Package churn models peer behaviour over time: how long peers stay in
// the system (lifetime), and when they are online while they are members
// (availability).
//
// The paper drives its simulation with four behaviour profiles derived
// from file-sharing measurement studies (its Table in section 4.1.1),
// made deliberately "a little more optimistic" because backup users have
// an incentive to stay connected:
//
//	Profile   Proportion  Life expectancy  Availability
//	Durable   10%         unlimited        95%
//	Stable    25%         1.5 - 3.5 years  87%
//	Unstable  30%         3 - 18 months    75%
//	Erratic   35%         1 - 3 months     33%
//
// Since no real backup-system trace exists (none did in 2009 either),
// this package synthesises churn from these profiles; it can also record
// and replay traces so measured data can be substituted without touching
// the simulator.
package churn

import (
	"errors"
	"fmt"
	"math"

	"p2pbackup/internal/dist"
	"p2pbackup/internal/rng"
)

// Time unit conversions. The simulator's base unit is one round = one
// hour (the paper's choice: long enough to cover one full repair).
const (
	Hour  = 1
	Day   = 24 * Hour
	Week  = 7 * Day
	Month = 30 * Day // the paper speaks in calendar-free months
	Year  = 365 * Day
)

// Unlimited marks a profile whose members never leave voluntarily.
const Unlimited = math.MaxInt64

// Profile describes one behaviour class.
type Profile struct {
	// Name identifies the profile in reports.
	Name string
	// Proportion is the fraction of the population in this profile;
	// a ProfileSet's proportions must sum to 1.
	Proportion float64
	// Lifetime samples the total number of rounds a member stays in the
	// system. A nil sampler means unlimited lifetime.
	Lifetime dist.Sampler
	// Availability is the long-run fraction of membership time spent
	// online, in (0, 1].
	Availability float64
}

// ProfileSet is a population mixture of profiles.
type ProfileSet struct {
	profiles []Profile
	cum      []float64 // cumulative proportions for sampling
}

// NewProfileSet validates the profiles (non-empty, proportions sum to 1,
// availabilities in (0, 1]) and returns the mixture.
func NewProfileSet(profiles []Profile) (*ProfileSet, error) {
	if len(profiles) == 0 {
		return nil, errors.New("churn: empty profile set")
	}
	cum := make([]float64, len(profiles))
	sum := 0.0
	for i, p := range profiles {
		if p.Proportion < 0 {
			return nil, fmt.Errorf("churn: profile %q has negative proportion", p.Name)
		}
		if p.Availability <= 0 || p.Availability > 1 {
			return nil, fmt.Errorf("churn: profile %q availability %v outside (0,1]", p.Name, p.Availability)
		}
		sum += p.Proportion
		cum[i] = sum
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("churn: proportions sum to %v, want 1", sum)
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return &ProfileSet{profiles: append([]Profile(nil), profiles...), cum: cum}, nil
}

// PaperProfiles returns the paper's four-profile population, lifetimes
// drawn uniformly within each range, in rounds.
func PaperProfiles() *ProfileSet {
	uniform := func(lo, hi float64) dist.Sampler {
		u, err := dist.NewUniform(lo, hi)
		if err != nil {
			panic(err) // static ranges; cannot fail
		}
		return u
	}
	ps, err := NewProfileSet([]Profile{
		{Name: "durable", Proportion: 0.10, Lifetime: nil, Availability: 0.95},
		{Name: "stable", Proportion: 0.25, Lifetime: uniform(1.5*Year, 3.5*Year), Availability: 0.87},
		{Name: "unstable", Proportion: 0.30, Lifetime: uniform(3*Month, 18*Month), Availability: 0.75},
		{Name: "erratic", Proportion: 0.35, Lifetime: uniform(1*Month, 3*Month), Availability: 0.33},
	})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return ps
}

// ParetoProfiles returns a single-profile population with
// Pareto(xm, alpha) lifetimes and the given availability - the
// population under which the age heuristic is provably aligned with
// expected remaining lifetime. Used by validation experiments.
func ParetoProfiles(xm, alpha, availability float64) (*ProfileSet, error) {
	p, err := dist.NewPareto(xm, alpha)
	if err != nil {
		return nil, err
	}
	return NewProfileSet([]Profile{
		{Name: fmt.Sprintf("pareto(%.3g,%.3g)", xm, alpha), Proportion: 1, Lifetime: p, Availability: availability},
	})
}

// Len returns the number of profiles.
func (ps *ProfileSet) Len() int { return len(ps.profiles) }

// Profile returns profile i.
func (ps *ProfileSet) Profile(i int) Profile { return ps.profiles[i] }

// Names returns the profile names in order.
func (ps *ProfileSet) Names() []string {
	names := make([]string, len(ps.profiles))
	for i, p := range ps.profiles {
		names[i] = p.Name
	}
	return names
}

// SampleIndex draws a profile index according to the proportions.
func (ps *ProfileSet) SampleIndex(r *rng.Rand) int {
	u := r.Float64()
	for i, c := range ps.cum {
		if u < c {
			return i
		}
	}
	return len(ps.cum) - 1
}

// SampleLifetime draws a lifetime in rounds for profile i; Unlimited for
// immortal profiles. Lifetimes are clamped to at least one round.
func (ps *ProfileSet) SampleLifetime(r *rng.Rand, i int) int64 {
	p := ps.profiles[i]
	if p.Lifetime == nil {
		return Unlimited
	}
	v := p.Lifetime.Sample(r)
	if v < 1 {
		return 1
	}
	if v >= float64(math.MaxInt64) {
		return Unlimited
	}
	return int64(v)
}

// MeanAvailability returns the population-weighted mean availability.
func (ps *ProfileSet) MeanAvailability() float64 {
	m := 0.0
	for _, p := range ps.profiles {
		m += p.Proportion * p.Availability
	}
	return m
}
