// backup_restore: the full live pipeline on real bytes. Builds an
// in-process cluster of 14 peers, backs up generated files from one of
// them (encrypt -> Reed-Solomon 6+6 -> one block per partner), kills
// partners, repairs, kills more, and finally restores - including the
// total-local-loss path that starts from just the private key.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	p2pbackup "p2pbackup"
)

func main() {
	transport := p2pbackup.NewInMemTransport(2026)
	dir := p2pbackup.NewDirectory()
	params := p2pbackup.ArchiveParams{DataBlocks: 6, ParityBlocks: 6}

	// Ages descend with the index so peer-00, our backup owner, is the
	// oldest (13 weeks, past the 90-day horizon): every candidate
	// accepts an elder requester (f = 1), exactly the regime the paper
	// rewards long-term users with. A fresh peer would be declined by
	// elders most of the time and have to settle for young partners.
	var nodes []*p2pbackup.Node
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("peer-%02d", i)
		age := int64(20-i) * 7 * 24
		nd, err := p2pbackup.NewNode(p2pbackup.NodeConfig{
			Name:            name,
			Age:             age,
			Transport:       transport,
			Store:           p2pbackup.NewMemStore(0),
			Directory:       dir,
			Params:          params,
			RepairThreshold: 9, // repair when fewer than 9 of 12 blocks respond
			Seed:            uint64(i),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer nd.Close()
		dir.Register(name, p2pbackup.PeerInfo{Age: age})
		nodes = append(nodes, nd)
	}
	owner := nodes[0]

	files := []p2pbackup.FileEntry{
		{Path: "documents/thesis.tex", Mode: 0o644, ModTime: time.Now(), Data: bytes.Repeat([]byte("important work "), 2000)},
		{Path: "photos/family.raw", Mode: 0o600, ModTime: time.Now(), Data: bytes.Repeat([]byte{0xCA, 0xFE}, 15000)},
	}
	idx, err := owner.Backup(files, "home backup")
	if err != nil {
		log.Fatal(err)
	}
	vis, _ := owner.VisibleBlocks(idx)
	fmt.Printf("backed up 2 files into 12 blocks on 12 partners (visible: %d)\n", vis)

	audit, err := owner.Audit(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proof-of-storage audit: %d challenged, %d passed\n", audit.Challenged, audit.Passed)

	// Disaster 1: five partners vanish.
	for _, nd := range nodes[5:10] {
		transport.SetPartitioned(nd.Name(), true)
	}
	vis, _ = owner.VisibleBlocks(idx)
	fmt.Printf("\nfive peers vanish -> visible blocks: %d (threshold 9)\n", vis)
	rep, err := owner.MaintainTick(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("maintenance tick: triggered=%v replaced=%d blocks on new partners\n", rep.Triggered, rep.Replaced)

	// Disaster 2: three of the remaining originals die too.
	for _, nd := range nodes[2:5] {
		transport.SetPartitioned(nd.Name(), true)
	}
	got, err := owner.Restore(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrestore after 8 peer losses: %d files recovered, %d bytes\n",
		len(got), len(got[0].Data)+len(got[1].Data))

	// Disaster 3: the owner's machine burns down. All that's left is
	// the private key; the master block and blocks live on partners.
	archives, err := p2pbackup.RecoverFromNetwork(owner.Name(), owner.Identity(), transport, dir.Names())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total-loss recovery from the network: %d archive(s), first file %q intact: %v\n",
		len(archives), archives[0][0].Path, bytes.Equal(archives[0][1].Data, files[1].Data))
}
