package sim

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// panicProbe blows up on the first round-end it sees.
type panicProbe struct {
	BaseProbe
}

func (p *panicProbe) OnRoundEnd(RoundEndEvent) {
	panic("probe exploded")
}

func TestRunContextRecoversProbePanic(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 77
	cfg.Probes = []Probe{&panicProbe{}}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.RunContext(context.Background())
	if res != nil {
		t.Fatalf("expected nil result after panic, got %+v", res)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T: %v", err, err)
	}
	if pe.Value != "probe exploded" {
		t.Errorf("panic value: got %v", pe.Value)
	}
	if pe.Config.Seed != 77 {
		t.Errorf("panic config not attributed: seed %d", pe.Config.Seed)
	}
	if !bytes.Contains(pe.Stack, []byte("OnRoundEnd")) {
		t.Errorf("stack does not name the panic site:\n%s", pe.Stack)
	}
}
