// observers: the paper's figure 3 experiment in miniature. Five
// fixed-age observers (3 months down to 1 hour) maintain an archive in
// the same churning population; their cumulative repair counts separate
// by orders of magnitude because age gates who will partner with them.
//
// The run executes as a one-variant campaign on experiments.Runner with
// per-round progress heartbeats streaming from the event channel.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/sim"
)

func main() {
	cfg, err := experiments.BaseConfig(experiments.ScaleSmoke)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Rounds = 12000 // 500 days

	fmt.Fprintln(os.Stderr, "running focal simulation (threshold 148, five observers)...")
	runner := experiments.Runner{Parallelism: 1, RoundEvents: true}
	var row *experiments.Row
	for ev := range runner.Stream(context.Background(), experiments.FocalCampaign(cfg)) {
		switch ev.Kind {
		case experiments.EventProgress:
			fmt.Fprintln(os.Stderr, "  "+ev.Message)
		case experiments.EventRow:
			row = ev.Row
		case experiments.EventDone:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
		}
	}
	focal := experiments.FocalFromRow(*row)

	fmt.Printf("\ncumulative repairs after %.0f days (paper's figure 3 ordering):\n",
		float64(cfg.Rounds)/24)
	for i, name := range focal.ObserverNames {
		age := sim.PaperObservers()[i].Age
		fmt.Printf("  %-9s (age %6d h): %5d repairs\n", name, age, focal.ObserverCounts[i])
	}
	fmt.Println("\nthe baby (1 hour) can only recruit young - mostly erratic -")
	fmt.Println("partners, so it repairs constantly; the elder (3 months) is")
	fmt.Println("accepted by everyone and keeps stable partners for months.")

	// Show the first few points of the baby's cumulative curve.
	baby := focal.ObserverSeries[len(focal.ObserverSeries)-1]
	fmt.Println("\nbaby observer cumulative-repair curve (day, count):")
	for i := 0; i < baby.Len() && i < 10; i++ {
		x, y := baby.At(i)
		fmt.Printf("  day %7.2f: %3.0f\n", x, y)
	}
}
