package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"p2pbackup/internal/sim"
)

// Variant is one named point of a Campaign: a label, an optional
// explicit seed, and a mutation of the campaign's base configuration.
type Variant struct {
	// Name labels the variant in events, rows and reports.
	Name string
	// Seed, when non-zero, is the exact seed for this variant's run;
	// zero keeps the base config's seed. Campaign constructors set a
	// seed derived from the base seed and the variant's identity so
	// every point is independently reproducible.
	Seed uint64
	// Mutate adjusts the already-seeded base config for this variant.
	// It runs on a copy; it may also override the seed.
	Mutate func(*sim.Config)
	// Probes, when non-nil, builds fresh probes to attach to this
	// variant's run. It is a factory rather than a slice because probes
	// are stateful and variants run concurrently.
	Probes func() []sim.Probe
}

// Campaign is a declarative batch of simulation runs: one base config
// and the list of variants to execute over it. Campaigns are data; the
// Runner supplies the execution policy (parallelism, cancellation,
// event delivery).
type Campaign struct {
	Name     string
	Base     sim.Config
	Variants []Variant
}

// EventKind tags a Runner event.
type EventKind int

const (
	// EventProgress is a textual progress report from a running variant
	// (per-round heartbeats when Runner.RoundEvents is set).
	EventProgress EventKind = iota
	// EventRow reports one completed variant together with its result.
	EventRow
	// EventDone is the final event of a campaign stream; Err carries
	// the campaign error, if any.
	EventDone
	// EventFailed reports a variant that crashed (panic in-process, or
	// exhausted its retries under the supervisor) and was contained:
	// Err carries the typed failure — *sim.PanicError for an in-process
	// panic — and the campaign continues with its remaining variants.
	EventFailed
)

var eventKindNames = [...]string{"progress", "row", "done", "failed"}

// String names the kind for logs and progress messages.
func (k EventKind) String() string {
	if k >= 0 && int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one element of a campaign's typed event stream.
type Event struct {
	Kind     EventKind
	Campaign string
	Variant  int    // variant index, -1 for campaign-scoped events
	Name     string // variant name, "" for campaign-scoped events
	Message  string // progress text (EventProgress, EventFailed)
	Row      *Row   // completed run (EventRow)
	Err      error  // terminal error (EventDone) or contained failure (EventFailed)
}

// Row is one completed variant run.
type Row struct {
	Index  int
	Name   string
	Config sim.Config // the exact config the run used (seeded and mutated)
	Result *sim.Result
}

// Runner executes campaigns over a bounded worker pool. The zero value
// is ready to use: NumCPU workers, no per-round events.
type Runner struct {
	// Parallelism bounds concurrent simulations; values below 1 mean
	// runtime.NumCPU().
	Parallelism int
	// RoundEvents emits an EventProgress heartbeat every ProgressEvery
	// rounds of each variant whose config has no Progress hook of its
	// own.
	RoundEvents bool
}

// Run executes the campaign and returns its rows ordered by variant
// index. It blocks until every variant finished or ctx is cancelled;
// on error or cancellation the partial rows are discarded and the
// first error (lowest variant index, or ctx.Err()) is returned. A
// variant that panics is contained, not fatal: its EventFailed is
// visible on Stream, and Run returns the surviving variants' rows —
// callers that need the failure detail should consume Stream.
func (r Runner) Run(ctx context.Context, c Campaign) ([]Row, error) {
	return collectRows(ctx, r, c, nil)
}

// Stream executes the campaign in the background and returns its typed
// event stream: zero or more EventProgress/EventRow events (rows arrive
// in completion order, not index order) terminated by exactly one
// EventDone, after which the channel closes. The caller must drain the
// channel; cancel ctx to stop early — in-flight simulations abort
// within a few rounds and EventDone reports ctx.Err().
func (r Runner) Stream(ctx context.Context, c Campaign) <-chan Event {
	events := make(chan Event)
	go r.execute(ctx, c, events)
	return events
}

func (r Runner) execute(ctx context.Context, c Campaign, events chan<- Event) {
	defer close(events)
	if ctx == nil {
		ctx = context.Background()
	}
	done := func(err error) {
		events <- Event{Kind: EventDone, Campaign: c.Name, Variant: -1, Err: err}
	}
	if len(c.Variants) == 0 {
		done(fmt.Errorf("experiments: campaign %q has no variants", c.Name))
		return
	}
	// Probes are stateful and must not be shared between runs: a probe
	// in the base config would receive events from every variant,
	// concurrently. Refuse rather than race; Variant.Probes is the
	// per-run factory for this.
	if len(c.Base.Probes) > 0 && len(c.Variants) > 1 {
		done(fmt.Errorf("experiments: campaign %q: Base.Probes would be shared across %d runs; use Variant.Probes factories",
			c.Name, len(c.Variants)))
		return
	}
	workers := r.Parallelism
	if workers < 1 {
		workers = runtime.NumCPU()
	}
	if workers > len(c.Variants) {
		workers = len(c.Variants)
	}

	// A variant failure stops the campaign: cancel the feed, let
	// in-flight runs abort, and report the lowest-index error.
	// Cancellation errors are a consequence, not a cause — they never
	// displace a real failure.
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		errIndex int
	)
	fail := func(i int, err error) {
		defer cancel()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return
		}
		mu.Lock()
		if firstErr == nil || i < errIndex {
			firstErr, errIndex = err, i
		}
		mu.Unlock()
	}

	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range c.Variants {
			select {
			case feed <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				row, err := r.runVariant(ctx, c, i, events)
				var pe *sim.PanicError
				switch {
				case err == nil:
					events <- Event{Kind: EventRow, Campaign: c.Name, Variant: i, Name: row.Name, Row: row}
				case errors.As(err, &pe):
					// A panicking variant is contained: siblings keep
					// running and the campaign completes with the rows
					// that survived. Configuration errors still abort —
					// they mean the whole sweep is built wrong.
					events <- Event{
						Kind:     EventFailed,
						Campaign: c.Name,
						Variant:  i,
						Name:     c.Variants[i].Name,
						Message:  fmt.Sprintf("%s: panic contained: %v", c.Variants[i].Name, pe.Value),
						Err:      err,
					}
				default:
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err == nil {
		err = parent.Err()
	}
	done(err)
}

// materializeVariant builds the exact config variant i of c runs: the
// base copied, the variant seed applied, then the variant's mutation.
// Probes are not attached — the in-process path adds them from the
// Variant.Probes factory, and the supervised path rejects campaigns
// with probes (they cannot cross a process boundary). Both execution
// paths derive a variant's config through this same sequence, which is
// what makes supervised output bit-identical to in-process output.
func materializeVariant(c Campaign, i int) sim.Config {
	v := c.Variants[i]
	cfg := c.Base
	if v.Seed != 0 {
		cfg.Seed = v.Seed
	}
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	return cfg
}

// runVariant materialises variant i's config and executes it. Panics
// anywhere in the variant's lifecycle — probe construction, config
// mutation, engine setup, the run itself — surface as *sim.PanicError
// attributing whatever portion of the config had been materialised.
func (r Runner) runVariant(ctx context.Context, c Campaign, i int, events chan<- Event) (row *Row, err error) {
	v := c.Variants[i]
	cfg := c.Base
	defer func() {
		if rec := recover(); rec != nil {
			var pe *sim.PanicError
			if e, ok := rec.(error); ok && errors.As(e, &pe) {
				row, err = nil, pe // already attributed (should not happen; RunContext returns, not panics)
				return
			}
			row, err = nil, &sim.PanicError{Config: cfg, Value: rec, Stack: debug.Stack()}
		}
	}()
	if v.Seed != 0 {
		cfg.Seed = v.Seed
	}
	if v.Probes != nil {
		cfg.Probes = append(append([]sim.Probe(nil), cfg.Probes...), v.Probes()...)
	}
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	if r.RoundEvents && cfg.Progress == nil {
		rounds := cfg.Rounds
		cfg.Progress = func(round int64) {
			events <- Event{
				Kind:     EventProgress,
				Campaign: c.Name,
				Variant:  i,
				Name:     v.Name,
				Message:  fmt.Sprintf("%s: round %d/%d", v.Name, round, rounds),
			}
		}
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%s %q: %w", c.Name, v.Name, err)
	}
	res, err := s.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Row{Index: i, Name: v.Name, Config: cfg, Result: res}, nil
}
