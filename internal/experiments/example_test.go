package experiments_test

import (
	"context"
	"fmt"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/sim"
)

// Example runs a small declarative campaign through the Runner: a
// Campaign is data (one base config, named variant mutations with
// deterministic seeds), the Runner supplies execution — a bounded
// worker pool, cancellation, and a typed event stream. Results are
// identical at any parallelism.
func Example() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 100
	cfg.Rounds = 200
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48
	cfg.Seed = 3

	camp := experiments.DiurnalCampaign(cfg, []float64{0, 0.8})
	rows, err := experiments.Runner{Parallelism: 2}.Run(context.Background(), camp)
	if err != nil {
		panic(err)
	}
	for _, row := range rows {
		fmt.Printf("%s: repairs > baseline: %v\n", row.Name,
			row.Result.Collector.TotalRepairs() > rows[0].Result.Collector.TotalRepairs())
	}
	// A strong day/night cycle forces extra repairs: nights are a
	// correlated availability trough.
	// Output:
	// amp=0.00: repairs > baseline: false
	// amp=0.80: repairs > baseline: true
}
