package sim

// Event scheduling for the engine's event-driven core.
//
// Two structures drive a round:
//
//   - calendar: a bucket queue over future rounds holding each slot's
//     next timed event (death, category change, session toggle, all
//     folded into one wake time per slot). Pushing is O(1); draining a
//     round costs O(entries in the round's bucket). Entries are lazily
//     invalidated: the per-slot sched[] array is the source of truth
//     for when a slot really wakes, and entries that no longer match
//     it are dropped on drain. A slot woken early (its timer moved
//     later after the entry was pushed) simply finds nothing due and
//     reschedules — spurious wakes consume no randomness and emit no
//     events, so they can never perturb a trajectory.
//
//   - visitQueue: a binary min-heap of slot ids with O(1) membership
//     dedupe, ordering the round's walk. The engine keeps two (current
//     round and next round) and swaps them each round. Popping in
//     ascending slot order is what preserves the historical scan
//     engine's rng draw order: due events drain in ascending slot id
//     within a round, exactly as the full-population loop visited
//     them.

// calBuckets is the calendar width in rounds: events within this
// horizon land directly in their round's bucket; events further out
// stay in the bucket (their round modulo the width) and are skipped on
// intermediate drains, costing one touch per cycle. 8192 rounds (~11
// months) covers typical session and category timers; only long
// lifetimes ever wrap.
const calBuckets = 1 << 13

// calEntry is one scheduled wake: a slot and the round it is due.
type calEntry struct {
	slot  int32
	round int64
}

// calendar is the bucket queue. The zero value is unusable; use
// newCalendar.
type calendar struct {
	buckets [][]calEntry
}

func newCalendar() *calendar {
	return &calendar{buckets: make([][]calEntry, calBuckets)}
}

// push schedules a wake for slot at round. Stale entries for the same
// slot are tolerated (drain drops them via the sched check).
func (c *calendar) push(slot int32, round int64) {
	b := round & (calBuckets - 1)
	c.buckets[b] = append(c.buckets[b], calEntry{slot: slot, round: round})
}

// drain appends to out the slots genuinely due at round (entry round
// matches and the slot's authoritative wake time sched[slot] agrees),
// keeps future entries that share the bucket, and drops stale ones.
func (c *calendar) drain(round int64, sched []int64, out []int32) []int32 {
	b := round & (calBuckets - 1)
	bucket := c.buckets[b]
	keep := bucket[:0]
	for _, e := range bucket {
		if e.round != round {
			if e.round > round {
				keep = append(keep, e)
			}
			continue // past-round entries are stale leftovers
		}
		if sched[e.slot] == round {
			out = append(out, e.slot)
		}
	}
	c.buckets[b] = keep
	return out
}

// visitQueue is a binary min-heap of slot ids with a membership bitmap
// so each slot is queued at most once per round.
type visitQueue struct {
	q  []int32
	in []bool
}

func newVisitQueue(n int) *visitQueue {
	return &visitQueue{in: make([]bool, n)}
}

// push enqueues a slot; re-pushing a queued slot is a no-op.
func (v *visitQueue) push(id int32) {
	if v.in[id] {
		return
	}
	v.in[id] = true
	v.q = append(v.q, id)
	i := len(v.q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if v.q[p] <= v.q[i] {
			break
		}
		v.q[p], v.q[i] = v.q[i], v.q[p]
		i = p
	}
}

// pop removes and returns the smallest queued slot id. The caller must
// check empty first.
func (v *visitQueue) pop() int32 {
	id := v.q[0]
	last := len(v.q) - 1
	v.q[0] = v.q[last]
	v.q = v.q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && v.q[l] < v.q[small] {
			small = l
		}
		if r < last && v.q[r] < v.q[small] {
			small = r
		}
		if small == i {
			break
		}
		v.q[i], v.q[small] = v.q[small], v.q[i]
		i = small
	}
	v.in[id] = false
	return id
}

// empty reports whether the queue has no pending visits.
func (v *visitQueue) empty() bool { return len(v.q) == 0 }
