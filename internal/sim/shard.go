package sim

// Sharded execution (Config.Shards >= 2): the slot space is cut into
// Shards contiguous ranges and the engine's draw-free work fans out
// across one worker goroutine per shard, with a barrier before the
// next canonical phase. Three phases shard:
//
//   - availability-history application: the churn walk logs every
//     history mutation (session transitions, identity resets) instead
//     of applying it inline, and the log is applied per shard right
//     after the walk — each worker owns its slots' histories
//     exclusively, and per-slot ops keep their log order;
//   - view/score cache warming: when the round's actor set will probe
//     a large fraction of the population, every slot's selection view
//     (and, for pure policies, its score) is materialised in parallel
//     before the maintenance phase reads them through the per-round
//     memos;
//   - the end-of-run inclusion scan.
//
// The v2 rng-order invariant (the sharded extension of the package
// comment's v1 invariant): sharded work must be draw-free, and must
// either be partitioned by slot or merged in ascending slot order.
// Every rng draw that can reach canonical state stays on the single
// canonical stream, in the v1 order — which is what makes S=1
// reproduce the pre-shard goldens bit for bit and S=k reproduce S=1
// for every k. The per-shard streams below (rng.Derive of the run seed
// and the shard index) are scratch: shard-local randomness for work
// whose outcome is discarded or order-insensitive. No scratch draw may
// influence canonical state; the shard-equivalence digests in
// shard_test.go hold the engine to that.
//
// Why the walk and the maintenance phase stay canonical: the v1 walk
// interleaves draws with order-dependent shared reads (a session flip
// at slot j changes what slot i > j observes, watcher crossings grow
// the same round's walk membership), and maintenance contends for host
// quota in shuffled order. Parallelising either would change
// trajectories, which the goldens forbid. The v3 engine (Config.Walk =
// WalkV3, walk3.go) removes that blocker by changing the invariant
// itself — per-slot rng streams and an effect-log merge — and
// therefore carries its own versioned digest set instead of the v1
// goldens.

import (
	"sync"

	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
)

// histOpKind distinguishes the deferred availability-history mutations.
type histOpKind uint8

const (
	// histOpRecord is IntervalHistory.RecordTransition(round, online).
	histOpRecord histOpKind = iota
	// histOpReset is IntervalHistory.Reset (occupant replaced).
	histOpReset
)

// histOp is one logged history mutation. Ops for one slot are applied
// in log order, which is exactly the order the sequential engine would
// have applied them in.
type histOp struct {
	round  int64
	slot   int32
	kind   histOpKind
	online bool
}

// histOpFanoutMin is the log size below which the fan-out is not worth
// the goroutine round trip and the ops are applied inline. The final
// history state is identical either way — per-slot op order is what
// matters, and the log preserves it under any split.
const histOpFanoutMin = 192

// shardState is the sharded engine's per-run state.
type shardState struct {
	n       int  // shard count (>= 2)
	logging bool // true while the churn phases log history mutations
	ops     []histOp

	// scratch holds one derived rng stream per shard, seeded from
	// (Config.Seed, shard index) via rng.Derive. These are the sharded
	// engine's randomness seam: shard-local draws that must never reach
	// canonical state (see the v2 invariant above). The current phases
	// are all draw-free, so the streams are reserved for shard-local
	// heuristics and for the test layer, which uses them to drive
	// adversarial interleavings without touching the canonical stream.
	scratch []*rng.Rand
}

// newShardState builds the fan-out state for cfg.Shards workers.
func newShardState(cfg Config) *shardState {
	sh := &shardState{n: cfg.Shards}
	sh.scratch = make([]*rng.Rand, sh.n)
	for i := range sh.scratch {
		sh.scratch[i] = rng.New(rng.Derive(cfg.Seed, uint64(i)))
	}
	return sh
}

// shardRange returns shard i's slot range [lo, hi) over the population.
// Ranges are contiguous, cover [0, NumPeers) exactly, and are empty for
// excess shards when Shards > NumPeers.
func (s *Simulation) shardRange(i int) (lo, hi int) {
	n := s.cfg.NumPeers
	return n * i / s.shards.n, n * (i + 1) / s.shards.n
}

// logHistOp appends one deferred history mutation while the churn
// phases run under the sharded engine.
func (s *Simulation) logHistOp(op histOp) {
	s.shards.ops = append(s.shards.ops, op)
}

// applyHistOp performs one logged mutation. RecordTransition can only
// fail on out-of-order rounds; the log preserves per-slot order, so a
// failure is an engine bug exactly as on the sequential path.
func (s *Simulation) applyHistOp(op histOp) {
	switch op.kind {
	case histOpReset:
		s.hist[op.slot].Reset()
	default:
		if err := s.hist[op.slot].RecordTransition(op.round, op.online); err != nil {
			panic(err)
		}
	}
}

// applyHistOps closes the logging window and applies the round's
// history mutations, fanning out across shards when the log is large
// enough to pay for the goroutines. Each worker walks the whole log
// and applies only the ops of its own slot range, so per-slot op order
// is preserved and no two workers touch the same history.
func (s *Simulation) applyHistOps() {
	sh := s.shards
	sh.logging = false
	if len(sh.ops) == 0 {
		return
	}
	if len(sh.ops) < histOpFanoutMin {
		for _, op := range sh.ops {
			s.applyHistOp(op)
		}
		sh.ops = sh.ops[:0]
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < sh.n; i++ {
		lo, hi := s.shardRange(i)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			for _, op := range sh.ops {
				if op.slot >= lo && op.slot < hi {
					s.applyHistOp(op)
				}
			}
		}(int32(lo), int32(hi))
	}
	wg.Wait()
	sh.ops = sh.ops[:0]
}

// warmWorthwhile reports whether this round's maintenance phase is
// expected to probe enough distinct candidates that materialising
// every population slot's view (and pure-policy score) up front beats
// lazy per-probe misses. The trigger reads only canonical state that
// is identical at every shard count (the actor set is collected by the
// sequential walk), so the warm decision itself cannot make S=k
// diverge from S=1 — and warming is invisible anyway: it consumes no
// randomness and writes only memo entries the lazy path would compute
// to the same values.
func (s *Simulation) warmWorthwhile() bool {
	return s.warmWorthwhileN(len(s.actors))
}

// warmWorthwhileN is warmWorthwhile for an externally tallied actor
// count (the v3 engine counts actors per shard worker).
func (s *Simulation) warmWorthwhileN(actors int) bool {
	return actors*s.cfg.PoolSamplePerRound >= s.cfg.NumPeers/2
}

// warmCaches materialises the per-round view memo (and, when the score
// cache is enabled, the score memo) for every population slot, one
// shard per worker. Safe because the peer, history and oracle state a
// view reads is frozen between the churn walk and the maintenance
// phase, and each worker writes only its own shard's memo entries.
func (s *Simulation) warmCaches() {
	sh := s.shards
	ctx := selection.Context{Round: s.round}
	var wg sync.WaitGroup
	for i := 0; i < sh.n; i++ {
		lo, hi := s.shardRange(i)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				s.materializeView(overlay.PeerID(id))
			}
			// The views for [lo, hi) were materialised by this same
			// worker just above, so the accessor is a pure memo read.
			s.maint.WarmScoreRange(ctx, overlay.PeerID(lo), overlay.PeerID(hi),
				func(id overlay.PeerID) selection.View { return s.viewVal[id] })
		}(lo, hi)
	}
	wg.Wait()
}

// countIncluded tallies the peers holding a complete archive at the
// end of a run, fanning the read-only scan out across shards when the
// sharded engine is on.
func (s *Simulation) countIncluded() int {
	if s.shards == nil {
		included := 0
		for id := range s.peers {
			if s.maint.Included(overlay.PeerID(id)) {
				included++
			}
		}
		return included
	}
	counts := make([]int, s.shards.n)
	var wg sync.WaitGroup
	for i := 0; i < s.shards.n; i++ {
		lo, hi := s.shardRange(i)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				if s.maint.Included(overlay.PeerID(id)) {
					counts[i]++
				}
			}
		}(i, lo, hi)
	}
	wg.Wait()
	included := 0
	for _, c := range counts {
		included += c
	}
	return included
}
