package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"p2pbackup/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero value must be empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic data set is 4; sample variance
	// is 32/7.
	if !almostEq(s.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !almostEq(s.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v", s.Sum())
	}
	if s.String() == "" {
		t.Fatal("String must render")
	}
}

func TestStreamAddN(t *testing.T) {
	var a, b Stream
	for i := 0; i < 5; i++ {
		a.Add(3)
	}
	a.Add(10)
	b.AddN(3, 5)
	b.AddN(10, 1)
	b.AddN(99, 0)  // no-op
	b.AddN(99, -3) // no-op
	if a.N() != b.N() || !almostEq(a.Mean(), b.Mean(), 1e-12) || !almostEq(a.Variance(), b.Variance(), 1e-9) {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestStreamMerge(t *testing.T) {
	r := rng.New(1)
	var whole, left, right Stream
	for i := 0; i < 1000; i++ {
		x := r.Float64()*10 - 5
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almostEq(left.Mean(), whole.Mean(), 1e-9) || !almostEq(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merge mismatch: %v vs %v", left.String(), whole.String())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merge min/max mismatch")
	}
	var empty Stream
	before := left
	left.Merge(&empty)
	if left != before {
		t.Fatal("merging empty must be a no-op")
	}
	empty.Merge(&left)
	if empty.N() != left.N() {
		t.Fatal("merging into empty must copy")
	}
}

func TestStreamMergeEqualsSequentialProperty(t *testing.T) {
	if err := quick.Check(func(seed int64, split uint8) bool {
		r := rng.New(uint64(seed))
		n := 10 + int(split)%90
		cut := int(split) % n
		var whole, a, b Stream
		for i := 0; i < n; i++ {
			x := r.Float64() * 100
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			almostEq(a.Mean(), whole.Mean(), 1e-9) &&
			almostEq(a.Variance(), whole.Variance(), 1e-7)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamCI(t *testing.T) {
	var s Stream
	s.Add(1)
	if s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("single sample must have zero stderr")
	}
	for i := 0; i < 9999; i++ {
		s.Add(float64(i % 2))
	}
	if s.StdErr() <= 0 || s.CI95() <= s.StdErr() {
		t.Fatal("CI95 must exceed stderr")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if m, err := Median(xs); err != nil || m != 2 {
		t.Fatalf("Median = %v, %v", m, err)
	}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q, _ := Quantile(xs, 1); q != 3 {
		t.Fatalf("q1 = %v", q)
	}
	if q, _ := Quantile(xs, 0.25); !almostEq(q, 1.5, 1e-12) {
		t.Fatalf("q0.25 = %v, want 1.5", q)
	}
	if q, _ := Quantile([]float64{7}, 0.9); q != 7 {
		t.Fatalf("single-element quantile = %v", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty quantile must fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("out-of-range q must fail")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestHistogramLinear(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	buckets, under, over := h.Counts()
	if under != 1 || over != 2 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	want := []int64{2, 1, 1, 0, 1}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], want[i], buckets)
		}
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BucketBounds(1) = [%v, %v)", lo, hi)
	}
	if h.NumBuckets() != 5 {
		t.Fatal("NumBuckets wrong")
	}
}

func TestHistogramLog(t *testing.T) {
	h, err := NewLogHistogram(1, 1000, 3) // decades
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1, 5, 10, 99, 100, 999, 1000} {
		h.Add(x)
	}
	buckets, under, over := h.Counts()
	if under != 1 || over != 1 {
		t.Fatalf("under/over = %d/%d", under, over)
	}
	want := []int64{2, 2, 2}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], want[i], buckets)
		}
	}
	lo, hi := h.BucketBounds(1)
	if !almostEq(lo, 10, 1e-9) || !almostEq(hi, 100, 1e-9) {
		t.Fatalf("BucketBounds(1) = [%v, %v), want [10, 100)", lo, hi)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
	if _, err := NewLogHistogram(0, 10, 3); err == nil {
		t.Fatal("log histogram with lo=0 accepted")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("repairs")
	if s.Name() != "repairs" || s.Len() != 0 {
		t.Fatal("fresh series wrong")
	}
	if x, y := s.Last(); x != 0 || y != 0 {
		t.Fatal("empty Last must be zero")
	}
	s.Append(1, 2)
	s.Append(2, 3)
	s.Append(3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if x, y := s.At(1); x != 2 || y != 3 {
		t.Fatalf("At(1) = %v,%v", x, y)
	}
	if x, y := s.Last(); x != 3 || y != 5 {
		t.Fatalf("Last = %v,%v", x, y)
	}
	c := s.Cumulative()
	wantY := []float64{2, 5, 10}
	for i, w := range wantY {
		if c.Y()[i] != w {
			t.Fatalf("Cumulative[%d] = %v, want %v", i, c.Y()[i], w)
		}
	}
	if len(s.X()) != 3 || len(s.Y()) != 3 {
		t.Fatal("X/Y accessors wrong")
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	d := s.Downsample(4)
	// Points 0, 4, 8 plus the final point 9.
	if d.Len() != 4 {
		t.Fatalf("Downsample len = %d, want 4", d.Len())
	}
	if x, _ := d.Last(); x != 9 {
		t.Fatalf("Downsample must keep last point, got %v", x)
	}
	if s.Downsample(1) != s {
		t.Fatal("step 1 must return the same series")
	}
	empty := NewSeries("e")
	if empty.Downsample(5).Len() != 0 {
		t.Fatal("downsampling empty series must stay empty")
	}
}

func TestKSDistance(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d, err := KSDistance(a, a); err != nil || d != 0 {
		t.Fatalf("KS(a,a) = %v, %v", d, err)
	}
	b := []float64{101, 102, 103}
	if d, _ := KSDistance(a, b); d != 1 {
		t.Fatalf("disjoint KS = %v, want 1", d)
	}
	if _, err := KSDistance(nil, a); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty KS must fail")
	}
	// Same distribution, different samples: KS should be small.
	r := rng.New(5)
	x := make([]float64, 5000)
	y := make([]float64, 5000)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	d, _ := KSDistance(x, y)
	if d > 0.05 {
		t.Fatalf("KS between same-dist samples = %v", d)
	}
}

func TestFitLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 1, 1e-12) || !almostEq(fit.R2, 1, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if _, err := FitLine(nil, nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := FitLine(xs, ys[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	flat, err := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil || flat.Slope != 0 || flat.R2 != 1 {
		t.Fatalf("flat fit = %+v, %v", flat, err)
	}
}

func TestFitParetoLogLog(t *testing.T) {
	// Draw from a known Pareto and recover alpha.
	r := rng.New(6)
	const alpha, xm = 1.5, 2.0
	samples := make([]float64, 20000)
	for i := range samples {
		u := 1 - r.Float64()
		samples[i] = xm * math.Pow(u, -1/alpha)
	}
	got, fit, err := FitParetoLogLog(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 0.1 {
		t.Fatalf("estimated alpha = %v, want ~%v (R2=%v)", got, alpha, fit.R2)
	}
	if fit.R2 < 0.98 {
		t.Fatalf("log-log fit R2 = %v, want near 1 for true Pareto", fit.R2)
	}
	if _, _, err := FitParetoLogLog(samples[:5]); err == nil {
		t.Fatal("tiny sample accepted")
	}
	if _, _, err := FitParetoLogLog([]float64{-1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err == nil {
		t.Fatal("non-positive samples accepted")
	}
}
