package selection

// Spec-string registry: every strategy point the campaigns and the CLI
// can name resolves through Parse, mirroring churn.ModelByName's
// "name[:params]" grammar ("diurnal:0.25") but with an extensible
// registry and keyed parameters:
//
//	age                     paper strategy, L = default horizon
//	age:L=2160              paper strategy, explicit horizon in rounds
//	estimator:pareto        rank by a Pareto lifetime model
//	estimator:pareto:alpha=1.5,xm=24
//	estimator:empirical:n=256
//	monitored-availability:720   rank by monitored uptime, 720-round window
//
// A spec is NAME[:PARAMS]; registered names may themselves contain
// colons (Parse matches the longest registered name first), and PARAMS
// is a comma-separated list of key=value pairs, or one bare value for
// the strategy's primary parameter. Unknown names wrap
// ErrUnknownStrategy; unknown or malformed parameters wrap ErrBadSpec.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/lifetime"
	"p2pbackup/internal/rng"
)

// ErrBadSpec reports a recognised strategy given malformed, unknown or
// misplaced parameters.
var ErrBadSpec = errors.New("selection: bad strategy spec")

// DefaultHorizon is the age horizon used when a spec omits one: the
// paper's 90 days in rounds.
const DefaultHorizon int64 = 90 * 24

// Defaults supplies context-dependent fallbacks for parameters a spec
// omits.
type Defaults struct {
	// Horizon is the age horizon L (and the default
	// monitored-availability window), in rounds. <= 0 means
	// DefaultHorizon.
	Horizon int64
}

func (d Defaults) horizon() int64 {
	if d.Horizon > 0 {
		return d.Horizon
	}
	return DefaultHorizon
}

// SpecParams gives a Builder typed access to a spec's parameters. Every
// accessor consumes its key; Parse rejects the spec if any parameter is
// left unconsumed, so strategies cannot silently ignore arguments.
type SpecParams struct {
	// Defaults carries the caller's fallbacks (ParseWith).
	Defaults Defaults
	name     string
	kv       map[string]string
	used     map[string]bool
	err      error
}

// fail records the first parameter error.
func (p *SpecParams) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// lookup consumes key (or, when primary, the bare positional value).
func (p *SpecParams) lookup(key string, primary bool) (string, bool) {
	if v, ok := p.kv[key]; ok {
		p.used[key] = true
		return v, ok
	}
	if primary {
		if v, ok := p.kv[""]; ok {
			p.used[""] = true
			return v, ok
		}
	}
	return "", false
}

// Int64 returns the named integer parameter, or def when absent.
func (p *SpecParams) Int64(key string, def int64) int64 {
	return p.int64(key, def, false)
}

// Int64Primary is Int64 that also accepts the spec's bare positional
// value ("monitored-availability:720").
func (p *SpecParams) Int64Primary(key string, def int64) int64 {
	return p.int64(key, def, true)
}

func (p *SpecParams) int64(key string, def int64, primary bool) int64 {
	s, ok := p.lookup(key, primary)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		p.fail(fmt.Errorf("%w: %s: parameter %s=%q is not an integer", ErrBadSpec, p.name, key, s))
		return def
	}
	return v
}

// Float returns the named float parameter, or def when absent.
func (p *SpecParams) Float(key string, def float64) float64 {
	s, ok := p.lookup(key, false)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		p.fail(fmt.Errorf("%w: %s: parameter %s=%q is not a number", ErrBadSpec, p.name, key, s))
		return def
	}
	return v
}

// Builder constructs a Policy from a parsed spec.
type Builder func(p *SpecParams) (Policy, error)

// registry preserves registration order: Names feeds the strategy
// campaigns, whose variant seeds are index-derived, so order is part of
// the reproducibility contract.
var (
	registryNames []string
	registry      = map[string]Builder{}
)

// Register adds a strategy spec name to the registry. Names may contain
// colons ("estimator:pareto") but not parameter syntax. Register panics
// on duplicates or empty names; it is meant for init-time use and is
// not safe to call concurrently with Parse.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("selection: Register with empty name or nil builder")
	}
	if strings.ContainsAny(name, "=, ") {
		panic(fmt.Sprintf("selection: Register name %q contains parameter syntax", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("selection: duplicate strategy %q", name))
	}
	registryNames = append(registryNames, name)
	registry[name] = b
}

// Names lists the registered spec names in registration order (the
// built-ins first, in their historical order).
func Names() []string {
	return append([]string(nil), registryNames...)
}

// Parse resolves a strategy spec with paper defaults (90-day horizon).
func Parse(spec string) (Policy, error) {
	return ParseWith(spec, Defaults{})
}

// ParseWith resolves a strategy spec, using d for parameters the spec
// omits. The empty spec is the paper's age strategy.
func ParseWith(spec string, d Defaults) (Policy, error) {
	if spec == "" {
		spec = "age"
	}
	name, params, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	kv, err := parseParams(name, params)
	if err != nil {
		return nil, err
	}
	sp := &SpecParams{Defaults: d, name: name, kv: kv, used: make(map[string]bool, len(kv))}
	pol, err := registry[name](sp)
	if err != nil {
		return nil, err
	}
	if sp.err != nil {
		return nil, sp.err
	}
	var unused []string
	for k := range kv {
		if !sp.used[k] {
			if k == "" {
				k = "(positional value)"
			}
			unused = append(unused, k)
		}
	}
	if len(unused) > 0 {
		sort.Strings(unused)
		return nil, fmt.Errorf("%w: %s does not take parameter(s) %s",
			ErrBadSpec, name, strings.Join(unused, ", "))
	}
	return pol, nil
}

// splitSpec finds the longest registered name that is the whole spec or
// a prefix of it followed by ':'; the remainder is the parameter list.
func splitSpec(spec string) (name, params string, err error) {
	if _, ok := registry[spec]; ok {
		return spec, "", nil
	}
	best := -1
	for i := len(spec) - 1; i > 0; i-- {
		if spec[i] != ':' {
			continue
		}
		if _, ok := registry[spec[:i]]; ok {
			best = i
			break
		}
	}
	if best < 0 {
		return "", "", fmt.Errorf("%w: %q (want one of %v)", ErrUnknownStrategy, spec, Names())
	}
	return spec[:best], spec[best+1:], nil
}

// parseParams splits "k1=v1,k2=v2" (or one bare value) into a map; the
// bare value is stored under the empty key.
func parseParams(name, params string) (map[string]string, error) {
	kv := map[string]string{}
	if params == "" {
		return kv, nil
	}
	for _, part := range strings.Split(params, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: %s: empty parameter", ErrBadSpec, name)
		}
		k, v, found := strings.Cut(part, "=")
		if !found {
			k, v = "", part
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("%w: %s: duplicate parameter %q", ErrBadSpec, name, part)
		}
		if found && (k == "" || v == "") {
			return nil, fmt.Errorf("%w: %s: malformed parameter %q", ErrBadSpec, name, part)
		}
		kv[k] = v
	}
	if _, bare := kv[""]; bare && len(kv) > 1 {
		return nil, fmt.Errorf("%w: %s: positional value mixed with keyed parameters", ErrBadSpec, name)
	}
	return kv, nil
}

// ---------------------------------------------------------------------------
// Built-in specs

// Default parameters of the estimator-backed specs.
const (
	// DefaultParetoAlpha is the default tail exponent of
	// estimator:pareto — heavy-tailed (the regime the paper assumes)
	// with a finite conditional mean.
	DefaultParetoAlpha = 1.5
	// DefaultParetoXm is the default Pareto scale floor in rounds.
	DefaultParetoXm = 1.0
	// DefaultEmpiricalSamples is the default sample count backing
	// estimator:empirical.
	DefaultEmpiricalSamples = 512
)

// empiricalSampleSeed fixes the synthetic observation draw backing
// estimator:empirical, keeping the spec deterministic.
const empiricalSampleSeed = 0x9a0e57ab11d3f24d

// defaultEmpiricalSamples draws n complete lifetimes from the paper's
// profile population (skipping the immortal durable profile, which
// never yields an observed lifetime) with a fixed seed, so
// estimator:empirical is a deterministic function of its spec. Note
// that those lifetimes are bounded uniform mixtures, not heavy-tailed:
// the resulting plug-in estimate is monotone in age only across the
// erratic band, so estimator:empirical deliberately diverges from age
// ranking for older peers — the divergence the ablation-estimator
// experiment measures.
func defaultEmpiricalSamples(n int) []float64 {
	ps := churn.PaperProfiles()
	r := rng.New(empiricalSampleSeed)
	out := make([]float64, 0, n)
	for tries := 0; len(out) < n && tries < 100*n; tries++ {
		life := ps.SampleLifetime(r, ps.SampleIndex(r))
		if life <= 0 || life >= 20*churn.Year {
			continue // immortal profile: no complete lifetime observable
		}
		out = append(out, float64(life))
	}
	return out
}

func init() {
	Register("age", func(p *SpecParams) (Policy, error) {
		l := p.Int64Primary("L", p.Defaults.horizon())
		if l <= 0 {
			return nil, fmt.Errorf("%w: age: horizon L=%d must be positive", ErrBadSpec, l)
		}
		return agePolicy{L: l}, nil
	})
	Register("random", func(p *SpecParams) (Policy, error) { return randomPolicy{}, nil })
	Register("availability-oracle", func(p *SpecParams) (Policy, error) { return availOraclePolicy{}, nil })
	Register("lifetime-oracle", func(p *SpecParams) (Policy, error) { return lifetimeOraclePolicy{}, nil })
	Register("youngest-first", func(p *SpecParams) (Policy, error) { return youngestPolicy{}, nil })
	Register("estimator:age", func(p *SpecParams) (Policy, error) {
		l := p.Int64Primary("L", p.Defaults.horizon())
		if l <= 0 {
			return nil, fmt.Errorf("%w: estimator:age: horizon L=%d must be positive", ErrBadSpec, l)
		}
		return EstimatorRanked{Est: lifetime.AgeRank{Horizon: float64(l)}, Label: "estimator:age"}, nil
	})
	Register("estimator:pareto", func(p *SpecParams) (Policy, error) {
		alpha := p.Float("alpha", DefaultParetoAlpha)
		xm := p.Float("xm", DefaultParetoXm)
		// Negated comparisons so NaN parameters fail too.
		if !(alpha > 1) || !(xm > 0) || math.IsInf(alpha, 1) || math.IsInf(xm, 1) {
			return nil, fmt.Errorf("%w: estimator:pareto: need finite alpha > 1 and xm > 0 (got alpha=%v, xm=%v)",
				ErrBadSpec, alpha, xm)
		}
		return EstimatorRanked{Est: lifetime.ParetoModel{Xm: xm, Alpha: alpha}, Label: "estimator:pareto"}, nil
	})
	Register("estimator:empirical", func(p *SpecParams) (Policy, error) {
		const maxSamples = 1 << 16 // bounds parse-time sampling work and memory
		n := p.Int64Primary("n", DefaultEmpiricalSamples)
		if n < 2 || n > maxSamples {
			return nil, fmt.Errorf("%w: estimator:empirical: need 2 <= n <= %d samples (got %d)",
				ErrBadSpec, maxSamples, n)
		}
		model, err := lifetime.NewEmpiricalModel(defaultEmpiricalSamples(int(n)))
		if err != nil {
			return nil, fmt.Errorf("selection: estimator:empirical: %w", err)
		}
		return EstimatorRanked{Est: model, Label: "estimator:empirical"}, nil
	})
	Register("monitored-availability", func(p *SpecParams) (Policy, error) {
		w := p.Int64Primary("W", p.Defaults.horizon())
		if w <= 0 {
			return nil, fmt.Errorf("%w: monitored-availability: window W=%d must be positive", ErrBadSpec, w)
		}
		return MonitoredAvailability{Window: w}, nil
	})
}
