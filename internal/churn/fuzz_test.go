package churn

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV trace reader. Accepted
// traces must survive a WriteCSV -> ReadCSV round trip event-for-event:
// the readers feed replay campaigns, where a silent mutation would
// corrupt a paired comparison, so acceptance implies fidelity.
func FuzzReadCSV(f *testing.F) {
	f.Add("round,peer,kind,profile\n0,0,join,0\n0,1,join,-1\n5,0,offline,0\n")
	f.Add("round,peer,kind\n0,0,join\n3,0,leave\n3,0,join\n")
	f.Add("0,0,join,2\n")
	f.Add("round,peer,kind,profile\n")
	f.Add("")
	f.Add("0,0,nosuchkind,0\n")
	f.Add("x,0,join,0\n")
	f.Add("0,0,join,0,extra\n")
	f.Add("\n\n0,99,online,1\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, tr, true)
	})
}

// FuzzReadJSONL is FuzzReadCSV for the JSONL wire form.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"round":0,"peer":3,"kind":"join","profile":1}` + "\n")
	f.Add(`{"round":0,"peer":0,"kind":"join","profile":-1}` + "\n" +
		`{"round":7,"peer":0,"kind":"offline","profile":-1}` + "\n")
	f.Add(`{"round":0,"peer":0,"kind":"bogus"}` + "\n")
	f.Add(`{"round":"0"}` + "\n")
	f.Add("not json\n")
	f.Add("")
	f.Add("\n\n" + `{"round":2,"peer":1,"kind":"online","profile":0}` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSONL(strings.NewReader(data))
		if err != nil {
			return
		}
		roundTrip(t, tr, false)
	})
}

// roundTrip writes tr back out in the given format and re-reads it,
// requiring the events to match exactly.
func roundTrip(t *testing.T, tr *Trace, csv bool) {
	t.Helper()
	var buf bytes.Buffer
	var got *Trace
	var err error
	if csv {
		if err = tr.WriteCSV(&buf); err == nil {
			got, err = ReadCSV(&buf)
		}
	} else {
		if err = tr.WriteJSONL(&buf); err == nil {
			got, err = ReadJSONL(&buf)
		}
	}
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("round trip changed event %d: %+v -> %+v", i, tr.Events[i], got.Events[i])
		}
	}
}
