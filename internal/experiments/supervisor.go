package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"p2pbackup/internal/rng"
)

// FailureKind classifies why a worker attempt died, driving both the
// retry decision and the typed failure surfaced when retries run out.
type FailureKind int

const (
	// FailTransient is an unclassified process failure (e.g. wait error
	// with no exit status); retried.
	FailTransient FailureKind = iota
	// FailPanic is a contained Go panic in the worker (exit code 2 with
	// "panic:" on stderr).
	FailPanic
	// FailOOMKill is a SIGKILL the supervisor did not send — on Linux,
	// almost always the kernel OOM killer.
	FailOOMKill
	// FailHang is a variant that overran its timeout or stopped
	// heartbeating and was killed.
	FailHang
	// FailExit is a nonzero worker exit that wasn't a panic.
	FailExit
	// FailProtocol is a worker that exited 0 without delivering a
	// result line.
	FailProtocol
)

var failureKindNames = [...]string{"transient", "panic", "oom-kill", "hang", "exit", "protocol"}

// String names the classification for journals and failure messages.
func (k FailureKind) String() string {
	if k >= 0 && int(k) < len(failureKindNames) {
		return failureKindNames[k]
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// RetryPolicy bounds how a supervisor retries a failed variant:
// MaxAttempts total tries, exponential backoff from BaseBackoff capped
// at MaxBackoff, with deterministic jitter derived from the campaign
// seed and the (variant, attempt) pair — reproducible runs, but no two
// variants thundering back in lockstep.
type RetryPolicy struct {
	MaxAttempts int           // total attempts per variant (0 = 3)
	BaseBackoff time.Duration // first retry delay (0 = 500ms)
	MaxBackoff  time.Duration // backoff ceiling (0 = 10s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 500 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 10 * time.Second
	}
	return p
}

// backoff returns the pause before the retry after the given failed
// attempt (1-based): Base·2^(attempt−1), capped, then scaled by a
// jitter factor in [1, 1.5) drawn from a stream keyed on (seed,
// variant, attempt).
func (p RetryPolicy) backoff(seed uint64, variant, attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	r := rng.New(rng.Derive(seed^0x5355_5045_5256, uint64(variant)<<16|uint64(attempt)))
	return d + time.Duration(r.Float64()*0.5*float64(d))
}

// Supervisor executes a campaign with each variant isolated in its own
// worker process, speaking the `p2psim -worker` protocol: the spec and
// variant index go in as JSON on stdin, heartbeats and a bit-exact
// result snapshot come back as JSON lines on stdout. Failed attempts
// are classified (panic / OOM-kill / hang / exit / transient) and
// retried per policy with exponential backoff; a variant that exhausts
// its retries becomes a typed EventFailed and the campaign continues.
// With a JournalPath every completed variant is appended (fsynced) to a
// checkpoint journal, and Resume replays journaled rows instead of
// re-running them. Because both sides materialise variants through the
// same constructors and the snapshot round-trips float bits exactly, a
// supervised campaign — even one suffering injected crashes — produces
// output byte-identical to the fault-free in-process run.
type Supervisor struct {
	// Procs bounds concurrent worker processes; values below 1 mean
	// runtime.NumCPU().
	Procs int
	// VariantTimeout kills an attempt that runs longer (0 = no limit).
	VariantTimeout time.Duration
	// HeartbeatGrace kills an attempt whose worker stops heartbeating
	// for this long (0 = no stall watchdog). The worker heartbeats once
	// a second, so a few seconds of grace tolerates scheduler hiccups.
	HeartbeatGrace time.Duration
	// Retry is the per-variant retry policy (zero fields mean 3
	// attempts, 500ms base, 10s cap).
	Retry RetryPolicy
	// WorkerCmd is the worker argv; empty means the current executable
	// with -worker appended (the p2psim arrangement). Tests point it at
	// the test binary re-exec'd through a TestMain hook.
	WorkerCmd []string
	// WorkerEnv entries are appended to the inherited environment of
	// every worker (e.g. the FaultEnv injector used by tests).
	WorkerEnv []string
	// JournalPath, when non-empty, is the checkpoint journal: one
	// fsynced JSON line per finished variant (status "ok" or "failed").
	JournalPath string
	// Resume loads JournalPath instead of truncating it, and re-runs
	// only variants without an "ok" entry for this spec's fingerprint.
	Resume bool
}

// VariantFailure describes a variant that exhausted its retries.
type VariantFailure struct {
	Variant  int
	Name     string
	Class    FailureKind
	Attempts int
	Err      error
}

// Run executes the campaign described by spec under process
// supervision, streaming events to sink (which may be nil) exactly
// like Runner.Stream does, and returns the completed rows ordered by
// variant index. camp must be the campaign spec.Build() produces — the
// registry passes both so the parent does not rebuild traces the spec
// already materialised to disk.
//
// Failed-variant handling is graceful degradation: each exhausted
// variant is journaled, surfaced as EventFailed and summarised in a
// final EventProgress; Run errors only when the context is cancelled,
// the journal cannot be written, workers cannot be spawned at all, or
// every variant failed.
func (s *Supervisor) Run(ctx context.Context, spec CampaignSpec, camp Campaign, sink func(Event)) ([]Row, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(camp.Variants) == 0 {
		return nil, fmt.Errorf("experiments: campaign %q has no variants", camp.Name)
	}
	if len(camp.Base.Probes) > 0 {
		return nil, fmt.Errorf("experiments: campaign %q: probes cannot cross the worker process boundary; run in-process", camp.Name)
	}
	for _, v := range camp.Variants {
		if v.Probes != nil {
			return nil, fmt.Errorf("experiments: campaign %q variant %q: probes cannot cross the worker process boundary; run in-process", camp.Name, v.Name)
		}
	}
	workerCmd := s.WorkerCmd
	if len(workerCmd) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("experiments: supervisor: locating worker executable: %w", err)
		}
		workerCmd = []string{exe, "-worker"}
	}
	retry := s.Retry.withDefaults()
	procs := s.Procs
	if procs < 1 {
		procs = runtime.NumCPU()
	}
	if procs > len(camp.Variants) {
		procs = len(camp.Variants)
	}

	var emitMu sync.Mutex
	emit := func(ev Event) {
		if sink == nil {
			return
		}
		emitMu.Lock()
		defer emitMu.Unlock()
		sink(ev)
	}

	fp := spec.Fingerprint()
	completed := map[int]*journalEntry{}
	var journal *journalWriter
	if s.JournalPath != "" {
		if s.Resume {
			entries, skipped, err := readJournal(s.JournalPath)
			if err != nil {
				return nil, err
			}
			if skipped > 0 {
				emit(Event{Kind: EventProgress, Campaign: camp.Name, Variant: -1,
					Message: fmt.Sprintf("journal: skipped %d unparsable line(s) (interrupted write)", skipped)})
			}
			for _, e := range entries {
				if e.Fingerprint == fp && e.Status == "ok" && e.Variant >= 0 && e.Variant < len(camp.Variants) && e.Result != nil {
					completed[e.Variant] = e
				}
			}
		}
		var err error
		journal, err = openJournal(s.JournalPath, s.Resume)
		if err != nil {
			return nil, err
		}
		defer journal.Close()
	}

	rows := make([]*Row, len(camp.Variants))
	for i, e := range completed {
		cfg := materializeVariant(camp, i)
		row := &Row{Index: i, Name: camp.Variants[i].Name, Config: cfg, Result: e.Result.restore(cfg)}
		rows[i] = row
		emit(Event{Kind: EventProgress, Campaign: camp.Name, Variant: i, Name: row.Name,
			Message: fmt.Sprintf("%s: resumed from journal", row.Name)})
		emit(Event{Kind: EventRow, Campaign: camp.Name, Variant: i, Name: row.Name, Row: row})
	}

	// Workers pull pending variant indices; a fatal error (spawn
	// failure, journal write failure) cancels the whole campaign.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var (
		mu       sync.Mutex
		fatalErr error
		failures []VariantFailure
	)
	fatal := func(err error) {
		mu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		mu.Unlock()
		cancelRun()
	}

	feed := make(chan int)
	go func() {
		defer close(feed)
		for i := range camp.Variants {
			if rows[i] != nil {
				continue
			}
			select {
			case feed <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				s.superviseVariant(runCtx, spec, camp, i, workerCmd, retry, journal, fp, emit,
					func(row *Row) {
						mu.Lock()
						rows[i] = row
						mu.Unlock()
					},
					func(f VariantFailure) {
						mu.Lock()
						failures = append(failures, f)
						mu.Unlock()
					},
					fatal)
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mu.Lock()
	err := fatalErr
	fails := failures
	mu.Unlock()
	if err != nil {
		return nil, err
	}

	var out []Row
	for _, r := range rows {
		if r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: campaign %q: every variant failed permanently (first: %v)", camp.Name, fails[0].Err)
	}
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].Variant < fails[j].Variant })
		var b strings.Builder
		fmt.Fprintf(&b, "%s: %d/%d variant(s) failed permanently:", camp.Name, len(fails), len(camp.Variants))
		for _, f := range fails {
			fmt.Fprintf(&b, " [%s: %s after %d attempts]", f.Name, f.Class, f.Attempts)
		}
		emit(Event{Kind: EventProgress, Campaign: camp.Name, Variant: -1, Message: b.String()})
	}
	return out, nil
}

// superviseVariant drives one variant through the retry state machine:
// attempt → classify → (success | backoff and retry | exhaust). The
// terminal states call exactly one of onRow, onFail or fatal.
func (s *Supervisor) superviseVariant(ctx context.Context, spec CampaignSpec, camp Campaign, i int,
	workerCmd []string, retry RetryPolicy, journal *journalWriter, fp string, emit func(Event),
	onRow func(*Row), onFail func(VariantFailure), fatal func(error)) {

	name := camp.Variants[i].Name
	var lastErr error
	lastClass := FailTransient
	for attempt := 1; attempt <= retry.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			return
		}
		snap, class, err := s.runAttempt(ctx, spec, i, attempt, workerCmd)
		if err == nil {
			cfg := materializeVariant(camp, i)
			row := &Row{Index: i, Name: name, Config: cfg, Result: snap.restore(cfg)}
			if journal != nil {
				entry := journalEntry{V: 1, Campaign: camp.Name, Fingerprint: fp, Variant: i,
					Name: name, Status: "ok", Attempts: attempt, Result: snap}
				if jerr := journal.append(entry); jerr != nil {
					fatal(fmt.Errorf("experiments: checkpoint journal: %w", jerr))
					return
				}
			}
			onRow(row)
			emit(Event{Kind: EventRow, Campaign: camp.Name, Variant: i, Name: name, Row: row})
			return
		}
		if ctx.Err() != nil {
			return // cancelled mid-attempt; the kill is ours, not a failure
		}
		if errors.Is(err, errSpawn) {
			fatal(err)
			return
		}
		lastErr, lastClass = err, class
		if attempt < retry.MaxAttempts {
			pause := retry.backoff(spec.Seed, i, attempt)
			emit(Event{Kind: EventProgress, Campaign: camp.Name, Variant: i, Name: name,
				Message: fmt.Sprintf("%s: attempt %d/%d failed (%s): %v; retrying in %s",
					name, attempt, retry.MaxAttempts, class, err, pause.Round(time.Millisecond))})
			select {
			case <-time.After(pause):
			case <-ctx.Done():
				return
			}
		}
	}

	// Retries exhausted: graceful degradation. Journal the typed
	// failure, surface it, and let the campaign continue.
	if journal != nil {
		entry := journalEntry{V: 1, Campaign: camp.Name, Fingerprint: fp, Variant: i, Name: name,
			Status: "failed", Class: lastClass.String(), Attempts: retry.MaxAttempts, Error: lastErr.Error()}
		if jerr := journal.append(entry); jerr != nil {
			fatal(fmt.Errorf("experiments: checkpoint journal: %w", jerr))
			return
		}
	}
	onFail(VariantFailure{Variant: i, Name: name, Class: lastClass, Attempts: retry.MaxAttempts, Err: lastErr})
	emit(Event{Kind: EventFailed, Campaign: camp.Name, Variant: i, Name: name,
		Message: fmt.Sprintf("%s: failed permanently (%s) after %d attempts: %v", name, lastClass, retry.MaxAttempts, lastErr),
		Err:     fmt.Errorf("experiments: %s %q: %s after %d attempts: %w", camp.Name, name, lastClass, retry.MaxAttempts, lastErr)})
}

// errSpawn marks a worker that could not even be started — an
// environment problem, not a variant problem, so it aborts the campaign
// instead of burning retries on every variant.
var errSpawn = errors.New("experiments: worker spawn failed")

// stderrTail keeps failure messages readable: panics print whole
// stacks, but classification only needs the head.
func stderrTail(buf *bytes.Buffer) string {
	s := strings.TrimSpace(buf.String())
	if len(s) > 800 {
		s = s[:800] + " ..."
	}
	if s == "" {
		return "(no stderr)"
	}
	return s
}

// runAttempt runs one worker process for (variant, attempt) and
// classifies the outcome. A nil error means snap is the variant's
// result; otherwise the FailureKind says what killed the attempt.
func (s *Supervisor) runAttempt(ctx context.Context, spec CampaignSpec, variant, attempt int, workerCmd []string) (*resultSnapshot, FailureKind, error) {
	attemptCtx := ctx
	if s.VariantTimeout > 0 {
		var cancel context.CancelFunc
		attemptCtx, cancel = context.WithTimeout(ctx, s.VariantTimeout)
		defer cancel()
	}
	cmd := exec.CommandContext(attemptCtx, workerCmd[0], workerCmd[1:]...)
	if len(s.WorkerEnv) > 0 {
		cmd.Env = append(os.Environ(), s.WorkerEnv...)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, FailTransient, fmt.Errorf("%w: %v", errSpawn, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, FailTransient, fmt.Errorf("%w: %v", errSpawn, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, FailTransient, fmt.Errorf("%w: %v", errSpawn, err)
	}
	// A worker must heartbeat several times per grace window, or a
	// healthy-but-busy worker would be indistinguishable from a hung
	// one. Sub-second graces (tests) shrink the requested period to
	// match.
	period := heartbeatPeriod
	if s.HeartbeatGrace > 0 && s.HeartbeatGrace < 4*heartbeatPeriod {
		period = s.HeartbeatGrace / 4
		if period < 5*time.Millisecond {
			period = 5 * time.Millisecond
		}
	}
	go func() {
		enc := json.NewEncoder(stdin)
		_ = enc.Encode(workerRequest{Spec: spec, Variant: variant, Attempt: attempt,
			HeartbeatMillis: int(period / time.Millisecond)})
		stdin.Close()
	}()

	// Stall watchdog: any stdout line (heartbeat or result) counts as
	// liveness; silence beyond HeartbeatGrace kills the worker.
	var lastBeat atomic.Int64
	lastBeat.Store(time.Now().UnixNano())
	var stalled atomic.Bool
	watchdogDone := make(chan struct{})
	if s.HeartbeatGrace > 0 {
		grace := s.HeartbeatGrace
		go func() {
			poll := grace / 4
			if poll < time.Millisecond {
				poll = time.Millisecond
			}
			t := time.NewTicker(poll)
			defer t.Stop()
			for {
				select {
				case <-watchdogDone:
					return
				case <-t.C:
					if time.Since(time.Unix(0, lastBeat.Load())) > grace {
						stalled.Store(true)
						_ = cmd.Process.Kill()
						return
					}
				}
			}
		}()
	}

	var snap *resultSnapshot
	var protoErr error
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20) // focal-run snapshots carry long series
	for sc.Scan() {
		lastBeat.Store(time.Now().UnixNano())
		var m workerMessage
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			protoErr = fmt.Errorf("undecodable worker line: %v", err)
			continue
		}
		if m.Type == "result" && m.Result != nil {
			snap = m.Result
		}
	}
	if err := sc.Err(); err != nil && protoErr == nil {
		protoErr = err
	}
	waitErr := cmd.Wait()
	close(watchdogDone)

	switch {
	case waitErr == nil && snap != nil:
		return snap, 0, nil
	case attemptCtx.Err() == context.DeadlineExceeded:
		return nil, FailHang, fmt.Errorf("variant overran its %s timeout", s.VariantTimeout)
	case ctx.Err() != nil:
		return nil, FailTransient, ctx.Err()
	case stalled.Load():
		return nil, FailHang, fmt.Errorf("worker stopped heartbeating for %s", s.HeartbeatGrace)
	case waitErr != nil:
		var ee *exec.ExitError
		if errors.As(waitErr, &ee) {
			if st, ok := ee.Sys().(syscall.WaitStatus); ok && st.Signaled() && st.Signal() == syscall.SIGKILL {
				return nil, FailOOMKill, fmt.Errorf("worker killed by SIGKILL (OOM killer?): %s", stderrTail(&stderr))
			}
			if ee.ExitCode() == 2 && strings.Contains(stderr.String(), "panic:") {
				return nil, FailPanic, fmt.Errorf("worker panicked: %s", stderrTail(&stderr))
			}
			return nil, FailExit, fmt.Errorf("worker exited %d: %s", ee.ExitCode(), stderrTail(&stderr))
		}
		return nil, FailTransient, waitErr
	default:
		return nil, FailProtocol, fmt.Errorf("worker exited 0 without a result (%v)", protoErr)
	}
}

// heartbeatPeriod is how often workers are asked to heartbeat.
const heartbeatPeriod = time.Second

// ---------------------------------------------------------------------------
// Checkpoint journal

// journalEntry is one line of the checkpoint journal: a finished
// variant (status "ok", with its result snapshot) or a permanent
// failure (status "failed", with its classification). The fingerprint
// ties the entry to the exact campaign spec, so resuming never replays
// rows across campaign shapes.
type journalEntry struct {
	V           int             `json:"v"`
	Campaign    string          `json:"campaign"`
	Fingerprint string          `json:"fingerprint"`
	Variant     int             `json:"variant"`
	Name        string          `json:"name"`
	Status      string          `json:"status"`
	Class       string          `json:"class,omitempty"`
	Attempts    int             `json:"attempts"`
	Error       string          `json:"error,omitempty"`
	Result      *resultSnapshot `json:"result,omitempty"`
}

// journalWriter appends fsynced JSON lines. Append-only + per-line
// fsync means a crash loses at most the line being written, and
// readJournal tolerates that torn tail.
type journalWriter struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// openJournal opens (resume) or truncates (fresh run) the journal.
func openJournal(path string, resume bool) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &journalWriter{f: f, enc: json.NewEncoder(f)}, nil
}

func (j *journalWriter) append(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.enc.Encode(e); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the underlying file.
func (j *journalWriter) Close() error { return j.f.Close() }

// readJournal loads every parsable entry; a missing file is an empty
// journal. skipped counts unparsable lines (a SIGKILLed campaign can
// leave a torn final line — that variant simply re-runs).
func readJournal(path string) (entries []*journalEntry, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 256<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if json.Unmarshal(line, &e) != nil || e.V != 1 {
			skipped++
			continue
		}
		entries = append(entries, &e)
	}
	return entries, skipped, sc.Err()
}

// ReadJournalStatus summarises a checkpoint journal for CLI reporting:
// per-status variant counts keyed by campaign name.
func ReadJournalStatus(path string) (ok, failed int, err error) {
	entries, _, err := readJournal(path)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		switch e.Status {
		case "ok":
			ok++
		case "failed":
			failed++
		}
	}
	return ok, failed, nil
}
