package maintenance

import (
	"testing"

	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
)

// fakeEnv is a minimal maintenance.Env: static ages, uniform sampling
// over the first n slots, a fixed round.
type fakeEnv struct {
	ages  []int64
	n     int
	round int64
}

func (f *fakeEnv) View(id overlay.PeerID) selection.View {
	return selection.View{Observed: selection.Observed{Age: f.ages[id]}}
}

func (f *fakeEnv) SampleCandidate(r *rng.Rand) overlay.PeerID {
	return overlay.PeerID(r.Intn(f.n))
}

func (f *fakeEnv) Round() int64 { return f.round }

// testParams: tiny archive so pools fill fast.
func testParams() Params {
	return Params{
		TotalBlocks:        8,
		DataBlocks:         4,
		RepairThreshold:    5,
		PoolSamplePerRound: 32,
		DropOffline:        true,
		CancelOnRecover:    true,
	}
}

// harness builds a maintainer over peers slots with equal ages.
func harness(t *testing.T, peers int, params Params) (*Maintainer, *overlay.Ledger, *overlay.Table, *rng.Rand) {
	t.Helper()
	led := overlay.NewLedger(peers, 64)
	led.SetStrict(true)
	tab := overlay.NewTable(peers)
	env := &fakeEnv{ages: make([]int64, peers), n: peers}
	m := New(params, led, tab, selection.Adapt(selection.AgeBased{L: 100}), env)
	return m, led, tab, rng.New(7)
}

func TestParamsValidate(t *testing.T) {
	good := testParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.DataBlocks = 0 },
		func(p *Params) { p.TotalBlocks = p.DataBlocks },
		func(p *Params) { p.RepairThreshold = p.DataBlocks - 1 },
		func(p *Params) { p.RepairThreshold = p.TotalBlocks + 1 },
		func(p *Params) { p.PoolSamplePerRound = 0 },
	}
	for i, mod := range cases {
		p := testParams()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestInitialBackupFlow(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	if m.Included(id) {
		t.Fatal("fresh peer must not be included")
	}
	if !m.WantsStep(id) {
		t.Fatal("fresh peer must want a step")
	}
	// One step should fill the pool (32 samples for 8 slots among 30
	// online peers) and complete the upload.
	var res StepResult
	for i := 0; i < 10 && res.Outcome != OutcomeInitialDone; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeInitialDone {
		t.Fatalf("initial backup did not complete: %v", res.Outcome)
	}
	if res.Uploaded != 8 {
		t.Fatalf("uploaded %d blocks, want 8", res.Uploaded)
	}
	if !m.Included(id) {
		t.Fatal("peer must be included after initial upload")
	}
	if led.Alive(id) != 8 || led.Visible(id) != 8 {
		t.Fatalf("alive/visible = %d/%d, want 8/8", led.Alive(id), led.Visible(id))
	}
	if m.WantsStep(id) {
		t.Fatal("healthy included peer must not want steps")
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func completeInitial(t *testing.T, m *Maintainer, r *rng.Rand, id overlay.PeerID) {
	t.Helper()
	for i := 0; i < 20; i++ {
		if m.Step(r, id).Outcome == OutcomeInitialDone {
			return
		}
	}
	t.Fatalf("peer %d never completed initial backup", id)
}

func TestRepairTriggerAndExecution(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	// Kill hosts until visible drops below threshold (5).
	hosts := led.Hosts(id, nil)
	led.RemoveHost(hosts[0])
	led.RemoveHost(hosts[1])
	led.RemoveHost(hosts[2])
	led.RemoveHost(hosts[3])
	if led.Visible(id) != 4 {
		t.Fatalf("visible = %d, want 4", led.Visible(id))
	}
	if !m.WantsStep(id) {
		t.Fatal("peer below threshold must want a step")
	}
	var res StepResult
	for i := 0; i < 10 && res.Outcome != OutcomeRepaired; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("repair did not complete: %v", res.Outcome)
	}
	if res.Uploaded != 4 {
		t.Fatalf("uploaded %d, want 4", res.Uploaded)
	}
	if led.Visible(id) != 8 {
		t.Fatalf("visible after repair = %d, want 8", led.Visible(id))
	}
	if m.Repairing(id) {
		t.Fatal("repair state must clear")
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRepairStallsBelowK(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	// Take 5 hosts offline: visible = 3 < k = 4, but alive = 8 >= k.
	hosts := led.Hosts(id, nil)
	for _, h := range hosts[:5] {
		led.SetOnline(h, false)
	}
	if led.Visible(id) != 3 {
		t.Fatalf("visible = %d, want 3", led.Visible(id))
	}
	res := m.Step(r, id)
	if res.Outcome != OutcomeStalled {
		t.Fatalf("outcome = %v, want stalled", res.Outcome)
	}
	if m.LostArchive(id) {
		t.Fatal("stall is not loss: blocks are alive")
	}
	// Partners return: repair can proceed.
	for _, h := range hosts[:5] {
		led.SetOnline(h, true)
	}
	// Now visible = 8 >= threshold: with CancelOnRecover the pending
	// repair aborts.
	res = m.Step(r, id)
	if res.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v, want canceled", res.Outcome)
	}
}

func TestCancelOnRecoverDisabled(t *testing.T) {
	// A repair stalled before its decode point sees visibility recover.
	// With CancelOnRecover=false it must proceed (decode and finish);
	// the matching cancellation path is covered in
	// TestRepairStallsBelowK.
	p := testParams()
	p.CancelOnRecover = false
	m, led, _, r := harness(t, 30, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	// 5 partners offline: visible = 3 < k = 4 -> triggered + stalled.
	for _, h := range hosts[:5] {
		led.SetOnline(h, false)
	}
	if res := m.Step(r, id); res.Outcome != OutcomeStalled {
		t.Fatalf("outcome = %v, want stalled", res.Outcome)
	}
	if !m.Repairing(id) {
		t.Fatal("repair not in flight")
	}
	// Everyone returns: visible = 8 >= threshold, but without cancel
	// the repair decodes; nothing is dead or offline anymore, so the
	// archive is already full and the episode ends as a no-op cancel.
	for _, h := range hosts[:5] {
		led.SetOnline(h, true)
	}
	res := m.Step(r, id)
	if res.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v, want canceled (archive already full)", res.Outcome)
	}
	if m.Repairing(id) {
		t.Fatal("episode must end")
	}
	// Variant: partners return but two of them died instead - the
	// repair must then complete with uploads.
	hosts = led.Hosts(id, nil)
	for _, h := range hosts[:5] {
		led.SetOnline(h, false)
	}
	if res := m.Step(r, id); res.Outcome != OutcomeStalled {
		t.Fatalf("outcome = %v, want stalled", res.Outcome)
	}
	led.RemoveHost(hosts[0])
	led.RemoveHost(hosts[1])
	for _, h := range hosts[2:5] {
		led.SetOnline(h, true)
	}
	// visible = 6 >= k' = 5, but CancelOnRecover is off: decode point
	// reached, deficit = 2, pool places immediately.
	var res2 StepResult
	for i := 0; i < 10 && res2.Outcome != OutcomeRepaired; i++ {
		res2 = m.Step(r, id)
	}
	if res2.Outcome != OutcomeRepaired {
		t.Fatalf("repair did not complete: %v", res2.Outcome)
	}
	if res2.Uploaded != 2 {
		t.Fatalf("uploaded = %d, want 2", res2.Uploaded)
	}
}

func TestRepairDropsOfflinePartners(t *testing.T) {
	m, led, _, r := harness(t, 40, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	// 3 partners die, 1 goes offline: visible = 4 < 5 triggers; at
	// execution the offline partner is dropped and 4 blocks uploaded.
	led.RemoveHost(hosts[0])
	led.RemoveHost(hosts[1])
	led.RemoveHost(hosts[2])
	led.SetOnline(hosts[3], false)
	var res StepResult
	for i := 0; i < 10 && res.Outcome != OutcomeRepaired; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("repair did not complete: %v", res.Outcome)
	}
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the offline partner)", res.Dropped)
	}
	if res.Uploaded != 4 {
		t.Fatalf("uploaded = %d, want 4", res.Uploaded)
	}
	if led.HasPlacement(id, hosts[3]) {
		t.Fatal("offline partner must be dropped")
	}
	if led.Alive(id) != 8 || led.Visible(id) != 8 {
		t.Fatalf("alive/visible = %d/%d, want 8/8", led.Alive(id), led.Visible(id))
	}
}

func TestDropOfflineDisabledReplacesOnlyDead(t *testing.T) {
	p := testParams()
	p.DropOffline = false
	m, led, _, r := harness(t, 40, p)
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	led.RemoveHost(hosts[0])
	led.RemoveHost(hosts[1])
	led.SetOnline(hosts[2], false)
	led.SetOnline(hosts[3], false)
	// visible = 4 < 5; deficit = n - alive = 8 - 6 = 2.
	var res StepResult
	for i := 0; i < 10 && res.Outcome != OutcomeRepaired; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeRepaired {
		t.Fatalf("repair did not complete: %v", res.Outcome)
	}
	if res.Uploaded != 2 || res.Dropped != 0 {
		t.Fatalf("uploaded/dropped = %d/%d, want 2/0", res.Uploaded, res.Dropped)
	}
	if !led.HasPlacement(id, hosts[2]) {
		t.Fatal("offline partner must be kept with DropOffline=false")
	}
	if led.Alive(id) != 8 {
		t.Fatalf("alive = %d, want 8", led.Alive(id))
	}
}

func TestLossAndArchiveReset(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	hosts := led.Hosts(id, nil)
	// Kill 5 of 8: alive = 3 < k = 4 -> lost.
	for _, h := range hosts[:5] {
		led.RemoveHost(h)
	}
	if !m.LostArchive(id) {
		t.Fatal("archive must be lost")
	}
	m.ResetArchive(id)
	if m.Included(id) {
		t.Fatal("reset peer must not be included")
	}
	if led.Alive(id) != 0 {
		t.Fatal("surviving useless blocks must be released")
	}
	if m.LostArchive(id) {
		t.Fatal("not-included peer cannot lose an archive")
	}
	// Re-injection works.
	completeInitial(t, m, r, id)
	if led.Alive(id) != 8 {
		t.Fatal("re-injection failed")
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOldestFirstSelection(t *testing.T) {
	// With the age strategy, the repair must pick the oldest available
	// candidates. Give half the population age 100, half age 0, and a
	// deficit small enough that only elders should be chosen.
	led := overlay.NewLedger(40, 64)
	led.SetStrict(true)
	tab := overlay.NewTable(40)
	ages := make([]int64, 40)
	for i := 20; i < 40; i++ {
		ages[i] = 100
	}
	env := &fakeEnv{ages: ages, n: 40}
	p := testParams()
	m := New(p, led, tab, selection.Adapt(selection.AgeBased{L: 100}), env)
	r := rng.New(3)
	// Owner is peer 0 (age 0). Elders accept newcomers with probability
	// 1/L = 1/100, so sampling needs patience; pool building handles it.
	id := overlay.PeerID(0)
	var res StepResult
	for i := 0; i < 2000 && res.Outcome != OutcomeInitialDone; i++ {
		res = m.Step(r, id)
	}
	if res.Outcome != OutcomeInitialDone {
		t.Fatal("initial backup never completed")
	}
	// The pool mixes young (always agree) and old (rarely agree)
	// candidates; selection must still prefer whatever elders made it
	// into the pool. We check the chosen set is not all-young.
	hosts := led.Hosts(id, nil)
	elders := 0
	for _, h := range hosts {
		if ages[h] == 100 {
			elders++
		}
	}
	// The pool saturates with young peers quickly (they always agree);
	// elders trickle in at 1/100 per contact. The ranking must place
	// every pooled elder ahead of young candidates; over the pool
	// build-up at least one elder virtually always lands.
	if elders == 0 {
		t.Log("warning: no elders chosen; acceptable only if none entered the pool")
	}
	// Stronger check: rank a synthetic pool directly.
	if (selection.AgeBased{L: 100}).Score(selection.PeerInfo{Age: 100}) <=
		(selection.AgeBased{L: 100}).Score(selection.PeerInfo{Age: 0}) {
		t.Fatal("age strategy must rank elders above newcomers")
	}
}

func TestQuotaRespected(t *testing.T) {
	// Tiny quota: two hosts can absorb only part of the demand.
	led := overlay.NewLedger(10, 2) // quota 2 per host
	tab := overlay.NewTable(10)
	env := &fakeEnv{ages: make([]int64, 10), n: 10}
	p := Params{TotalBlocks: 4, DataBlocks: 2, RepairThreshold: 3, PoolSamplePerRound: 64,
		DropOffline: true, CancelOnRecover: true}
	m := New(p, led, tab, selection.Adapt(selection.Random{}), env)
	r := rng.New(5)
	// 4 owners each place 4 blocks: demand 16 <= capacity 9*2=18 per
	// owner's view; complete all.
	for id := overlay.PeerID(0); id < 4; id++ {
		var res StepResult
		for i := 0; i < 200 && res.Outcome != OutcomeInitialDone; i++ {
			res = m.Step(r, id)
		}
		if res.Outcome != OutcomeInitialDone {
			t.Fatalf("peer %d: initial backup stuck (quota deadlock?)", id)
		}
	}
	for h := overlay.PeerID(0); h < 10; h++ {
		if led.MeteredHosted(h) > 2 {
			t.Fatalf("host %d exceeds quota: %d", h, led.MeteredHosted(h))
		}
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestUnmeteredObserverBypassesQuota(t *testing.T) {
	led := overlay.NewLedger(10, 1)
	tab := overlay.NewTable(10)
	env := &fakeEnv{ages: make([]int64, 10), n: 9} // observers sample only peers 0..8
	p := Params{TotalBlocks: 4, DataBlocks: 2, RepairThreshold: 3, PoolSamplePerRound: 64,
		DropOffline: true, CancelOnRecover: true}
	m := New(p, led, tab, selection.Adapt(selection.Random{}), env)
	m.SetUnmetered(9, true)
	r := rng.New(6)
	// Saturate every host's quota with peer 0's backup... quota 1 means
	// 4 hosts get one block each.
	var res StepResult
	for i := 0; i < 100 && res.Outcome != OutcomeInitialDone; i++ {
		res = m.Step(r, 0)
	}
	if res.Outcome != OutcomeInitialDone {
		t.Fatal("metered peer stuck")
	}
	// The observer (slot 9) can still place everywhere.
	res = StepResult{}
	for i := 0; i < 100 && res.Outcome != OutcomeInitialDone; i++ {
		res = m.Step(r, 9)
	}
	if res.Outcome != OutcomeInitialDone {
		t.Fatal("unmetered observer blocked by quota")
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolPrunesStaleCandidates(t *testing.T) {
	m, led, tab, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	// Force a repair need.
	hosts := led.Hosts(id, nil)
	for _, h := range hosts[:4] {
		led.RemoveHost(h)
	}
	// Build the pool but prevent execution by pushing everything
	// offline right after the first step... simpler: step once to build
	// pool, then invalidate pooled candidates by bumping all other
	// slots' generations and killing them.
	_ = m.Step(r, id) // may complete; if so, re-force
	if led.Visible(id) == 8 {
		for _, h := range led.Hosts(id, nil)[:4] {
			led.RemoveHost(h)
		}
		// Build pool fresh with everyone else offline so execution
		// cannot happen.
	}
	// Take all non-partners offline so the pool cannot act, then bring
	// them back dead (bumped): entries must be pruned, not used.
	for c := overlay.PeerID(1); c < 30; c++ {
		if !led.HasPlacement(id, c) {
			led.SetOnline(c, false)
		}
	}
	res := m.Step(r, id)
	if res.Outcome == OutcomeRepaired {
		t.Fatal("repair should be blocked with candidates offline")
	}
	for c := overlay.PeerID(1); c < 30; c++ {
		if !led.HasPlacement(id, c) {
			led.RemovePeer(c)
			tab.Bump(c)
			led.SetOnline(c, true)
		}
	}
	// Stale refs (old generation) must not be selected; the repair
	// completes only with freshly pooled candidates.
	var ok bool
	for i := 0; i < 50; i++ {
		if m.Step(r, id).Outcome == OutcomeRepaired {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("repair never completed after candidate churn")
	}
	if err := led.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsState(t *testing.T) {
	m, led, _, r := harness(t, 30, testParams())
	id := overlay.PeerID(0)
	completeInitial(t, m, r, id)
	led.RemovePeer(id)
	m.Reset(id)
	if m.Included(id) || m.Repairing(id) || m.PoolSize(id) != 0 {
		t.Fatal("Reset left state behind")
	}
}

func TestOutcomeString(t *testing.T) {
	for _, o := range []Outcome{OutcomeNone, OutcomeRepaired, OutcomeInitialDone, OutcomeStalled, OutcomeCanceled} {
		if o.String() == "" {
			t.Fatal("outcome must format")
		}
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome must format")
	}
}

func TestNewPanicsOnBadParams(t *testing.T) {
	led := overlay.NewLedger(4, 4)
	tab := overlay.NewTable(4)
	env := &fakeEnv{ages: make([]int64, 4), n: 4}
	bad := testParams()
	bad.DataBlocks = 0
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid params must panic")
		}
	}()
	New(bad, led, tab, selection.Adapt(selection.Random{}), env)
}

func TestNewPanicsOnSizeMismatch(t *testing.T) {
	led := overlay.NewLedger(4, 4)
	tab := overlay.NewTable(5)
	env := &fakeEnv{ages: make([]int64, 5), n: 4}
	defer func() {
		if recover() == nil {
			t.Fatal("New with mismatched sizes must panic")
		}
	}()
	New(testParams(), led, tab, selection.Adapt(selection.Random{}), env)
}
