package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/sim"
)

// CampaignSpec is the JSON-able recipe for a built-in campaign: enough
// to rebuild the exact same Campaign — same constructors, same derived
// variant seeds — in another process. It exists because sim.Config
// itself cannot cross a process boundary (Policy, Avail and Redundancy
// are interfaces; Probes and Progress are live objects), so the worker
// protocol ships the recipe and both sides materialise variants through
// the same constructors. That shared derivation, plus the bit-exact
// JSON result snapshot (internal/metrics), is what makes a supervised
// campaign's output byte-identical to the in-process run.
type CampaignSpec struct {
	// Kind names the campaign constructor: "threshold", "focal",
	// "strategy", "availability", "repair-delay", "horizon", "diurnal",
	// "blackout", "replay", "estimator", "transfer-baseline",
	// "flashcrowd", "uplink-sweep" or "fixed-vs-adaptive".
	Kind string `json:"kind"`
	// Scale is the population/duration preset (see BaseConfig).
	Scale Scale `json:"scale,omitempty"`
	// Seed is the base seed; zero means 1, matching RunCtx.
	Seed uint64 `json:"seed,omitempty"`
	// StrategySpec, Bandwidth, Redundancy, Shards, Walk and PhaseTimes
	// mirror the Options fields of the same names.
	StrategySpec string `json:"strategy,omitempty"`
	Bandwidth    string `json:"bandwidth,omitempty"`
	Redundancy   string `json:"redundancy,omitempty"`
	Shards       int    `json:"shards,omitempty"`
	Walk         string `json:"walk,omitempty"`
	PhaseTimes   bool   `json:"phase_times,omitempty"`
	// TracePath names the churn trace file for the replay, estimator and
	// fixed-vs-adaptive kinds. The supervisor materialises internally
	// recorded traces to a temp file so workers replay the same churn.
	TracePath string `json:"trace_path,omitempty"`
	// Per-kind sweep parameters; empty slices select each campaign's
	// registry defaults.
	Thresholds []int     `json:"thresholds,omitempty"`
	Delays     []int     `json:"delays,omitempty"`
	Horizons   []int64   `json:"horizons,omitempty"`
	Amplitudes []float64 `json:"amplitudes,omitempty"`
	// Overrides optionally shrinks the base config after the scale
	// preset, so tests and smoke jobs can supervise micro campaigns.
	Overrides *ConfigOverrides `json:"overrides,omitempty"`
}

// ConfigOverrides is the serializable subset of sim.Config knobs a spec
// may override on the scaled base config. Zero fields keep the preset's
// value.
type ConfigOverrides struct {
	NumPeers           int   `json:"num_peers,omitempty"`
	Rounds             int64 `json:"rounds,omitempty"`
	TotalBlocks        int   `json:"total_blocks,omitempty"`
	DataBlocks         int   `json:"data_blocks,omitempty"`
	RepairThreshold    int   `json:"repair_threshold,omitempty"`
	Quota              int32 `json:"quota,omitempty"`
	PoolSamplePerRound int   `json:"pool_sample,omitempty"`
	AcceptHorizon      int64 `json:"accept_horizon,omitempty"`
	Warmup             int64 `json:"warmup,omitempty"`
}

func (o *ConfigOverrides) apply(cfg *sim.Config) {
	if o == nil {
		return
	}
	if o.NumPeers != 0 {
		cfg.NumPeers = o.NumPeers
	}
	if o.Rounds != 0 {
		cfg.Rounds = o.Rounds
	}
	if o.TotalBlocks != 0 {
		cfg.TotalBlocks = o.TotalBlocks
	}
	if o.DataBlocks != 0 {
		cfg.DataBlocks = o.DataBlocks
	}
	if o.RepairThreshold != 0 {
		cfg.RepairThreshold = o.RepairThreshold
	}
	if o.Quota != 0 {
		cfg.Quota = o.Quota
	}
	if o.PoolSamplePerRound != 0 {
		cfg.PoolSamplePerRound = o.PoolSamplePerRound
	}
	if o.AcceptHorizon != 0 {
		cfg.AcceptHorizon = o.AcceptHorizon
	}
	if o.Warmup != 0 {
		cfg.Warmup = o.Warmup
	}
}

// options projects the spec back onto the Options fields baseFor reads.
func (s CampaignSpec) options() Options {
	return Options{
		Scale:        s.Scale,
		Seed:         s.Seed,
		StrategySpec: s.StrategySpec,
		Bandwidth:    s.Bandwidth,
		Redundancy:   s.Redundancy,
		Shards:       s.Shards,
		Walk:         s.Walk,
		PhaseTimes:   s.PhaseTimes,
	}
}

// Build materialises the campaign the spec describes, exactly as the
// registry would: scale preset, option overrides, then the kind's
// constructor with the spec's sweep parameters (or the registry
// defaults when absent).
func (s CampaignSpec) Build() (Campaign, error) {
	opts := s.options()
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	cfg, err := baseFor(opts)
	if err != nil {
		return Campaign{}, err
	}
	s.Overrides.apply(&cfg)

	readTrace := func() (*churn.Trace, error) {
		if s.TracePath == "" {
			return nil, fmt.Errorf("experiments: spec kind %q needs a trace_path", s.Kind)
		}
		return churn.ReadTraceFile(s.TracePath)
	}

	switch s.Kind {
	case "threshold":
		th := s.Thresholds
		if len(th) == 0 {
			th = PaperThresholds()
		}
		return ThresholdCampaign(cfg, th)
	case "focal":
		return FocalCampaign(cfg), nil
	case "strategy":
		return StrategyCampaign(cfg), nil
	case "availability":
		return AvailabilityCampaign(cfg), nil
	case "repair-delay":
		d := s.Delays
		if len(d) == 0 {
			d = []int{0, 6, 24, 72}
		}
		return RepairDelayCampaign(cfg, d), nil
	case "horizon":
		h := s.Horizons
		if len(h) == 0 {
			h = []int64{30 * churn.Day, 90 * churn.Day, 180 * churn.Day}
		}
		return HorizonCampaign(cfg, h), nil
	case "diurnal":
		a := s.Amplitudes
		if len(a) == 0 {
			a = []float64{0, 0.3, 0.6, 0.9}
		}
		return DiurnalCampaign(cfg, a), nil
	case "blackout":
		return BlackoutCampaign(cfg), nil
	case "replay":
		trace, err := readTrace()
		if err != nil {
			return Campaign{}, err
		}
		return ReplayCampaign(cfg, trace), nil
	case "estimator":
		trace, err := readTrace()
		if err != nil {
			return Campaign{}, err
		}
		return EstimatorCampaign(cfg, trace), nil
	case "transfer-baseline":
		return TransferBaselineCampaign(cfg), nil
	case "flashcrowd":
		return FlashCrowdCampaign(cfg), nil
	case "uplink-sweep":
		return UplinkSweepCampaign(cfg), nil
	case "fixed-vs-adaptive":
		trace, err := readTrace()
		if err != nil {
			return Campaign{}, err
		}
		return RedundancyCampaign(cfg, trace, redundancyAdaptiveSpec(opts)), nil
	default:
		return Campaign{}, fmt.Errorf("experiments: unknown campaign spec kind %q", s.Kind)
	}
}

// Fingerprint identifies the spec for checkpoint journaling: resuming
// matches journal entries by fingerprint so rows recorded for one
// campaign shape are never replayed into another. It hashes the
// canonical JSON encoding (fixed field order, no indent).
func (s CampaignSpec) Fingerprint() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail.
		panic(fmt.Sprintf("experiments: spec fingerprint: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}
