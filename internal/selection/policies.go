package selection

// Native Policy implementations. The five ports of the legacy
// strategies read only the knowledge class they are entitled to —
// age-based, random and youngest-first touch View.Observed exclusively,
// the two oracles read View.Oracle — making the epistemic status of
// every baseline explicit in code rather than in comments. The
// estimator-backed and monitored-availability policies are the new
// implementable strategies the redesign exists for: they rank by a
// lifetime.Estimator applied to observed age (Dell'Amico et al.;
// Skowron & Rzadca rank peers the same way) or by the monitored
// availability window the paper's secure-monitoring substrate provides.

import (
	"fmt"

	"p2pbackup/internal/lifetime"
)

// ---------------------------------------------------------------------------
// Observable baselines (ports of the legacy strategies)

// agePolicy is the paper's strategy on the new surface: probabilistic
// acceptance via the acceptance function with horizon L, ranking by
// observed age capped at L.
type agePolicy struct{ L int64 }

func (a agePolicy) Name() string { return fmt.Sprintf("age(L=%d)", a.L) }

func (a agePolicy) AcceptProb(_ Context, acceptor, requester View) float64 {
	return AcceptanceFunction(acceptor.Observed.Age, requester.Observed.Age, a.L)
}

// PureScore declares Score a pure function of (Context, View).
func (a agePolicy) PureScore() bool { return true }

func (a agePolicy) Score(_ Context, candidate View) float64 {
	age := candidate.Observed.Age
	if age > a.L {
		age = a.L
	}
	if age < 0 {
		age = 0
	}
	return float64(age)
}

// randomPolicy accepts everyone and ranks uniformly.
type randomPolicy struct{}

func (randomPolicy) Name() string                           { return "random" }
func (randomPolicy) AcceptProb(Context, View, View) float64 { return 1 }
func (randomPolicy) Score(Context, View) float64            { return 0 }
func (randomPolicy) AlwaysAccepts() bool                    { return true }
func (randomPolicy) PureScore() bool                        { return true }

// youngestPolicy ranks youngest first: the adversarial baseline.
type youngestPolicy struct{}

func (youngestPolicy) Name() string                           { return "youngest-first" }
func (youngestPolicy) AcceptProb(Context, View, View) float64 { return 1 }
func (youngestPolicy) Score(_ Context, c View) float64        { return -float64(c.Observed.Age) }
func (youngestPolicy) AlwaysAccepts() bool                    { return true }
func (youngestPolicy) PureScore() bool                        { return true }

// ---------------------------------------------------------------------------
// Oracle baselines (the only policies that may read View.Oracle)

// availOraclePolicy ranks by true availability: unimplementable.
type availOraclePolicy struct{}

func (availOraclePolicy) Name() string                           { return "availability-oracle" }
func (availOraclePolicy) AcceptProb(Context, View, View) float64 { return 1 }
func (availOraclePolicy) Score(_ Context, c View) float64        { return c.Oracle.Availability }
func (availOraclePolicy) AlwaysAccepts() bool                    { return true }
func (availOraclePolicy) PureScore() bool                        { return true }

// lifetimeOraclePolicy ranks by true remaining lifetime, the quantity
// every observable strategy merely estimates.
type lifetimeOraclePolicy struct{}

func (lifetimeOraclePolicy) Name() string                           { return "lifetime-oracle" }
func (lifetimeOraclePolicy) AcceptProb(Context, View, View) float64 { return 1 }
func (lifetimeOraclePolicy) Score(_ Context, c View) float64        { return float64(c.Oracle.Remaining) }
func (lifetimeOraclePolicy) AlwaysAccepts() bool                    { return true }
func (lifetimeOraclePolicy) PureScore() bool                        { return true }

// ---------------------------------------------------------------------------
// Estimator-backed ranking

// EstimatorRanked ranks candidates by a lifetime estimator applied to
// their observed age: Score is Est.ExpectedRemaining(age). It accepts
// every partnership (like the oracle baselines, so the comparison
// isolates the ranking). Because every heavy-tailed estimator is
// monotone non-decreasing in age, any EstimatorRanked policy induces
// the same ordering as ranking by raw age — the paper's central claim,
// which the ablation-estimator experiment tests under churn the claim's
// assumptions do and do not hold for.
type EstimatorRanked struct {
	// Est predicts expected remaining lifetime from age.
	Est lifetime.Estimator
	// Label names the policy in reports (e.g. "estimator:pareto").
	Label string
}

// Name implements Policy.
func (e EstimatorRanked) Name() string { return e.Label }

// AcceptProb implements Policy: always accept.
func (e EstimatorRanked) AcceptProb(Context, View, View) float64 { return 1 }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (e EstimatorRanked) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of (Context, View): every
// lifetime.Estimator is a stateless curve.
func (e EstimatorRanked) PureScore() bool { return true }

// Score ranks by estimated remaining lifetime at the observed age.
func (e EstimatorRanked) Score(_ Context, candidate View) float64 {
	age := candidate.Observed.Age
	if age < 0 {
		age = 0
	}
	return e.Est.ExpectedRemaining(float64(age))
}

// ---------------------------------------------------------------------------
// Monitored availability

// MonitoredAvailability ranks candidates by their observed online
// fraction over the last Window rounds, queried from the monitoring
// substrate (the paper's "any peer can query the availability of any
// other peer for a given period of time, for example the last 90
// days"). It is the implementable counterpart of the availability
// oracle: the adaptive-redundancy literature (Dell'Amico et al.) ranks
// peers exactly this way. Candidates without history (or outside the
// simulator) score zero.
type MonitoredAvailability struct {
	// Window is the availability query window in rounds; the engine
	// records at most the acceptance horizon, so larger windows clamp.
	Window int64
}

// Name implements Policy.
func (m MonitoredAvailability) Name() string {
	return fmt.Sprintf("monitored-availability(W=%d)", m.Window)
}

// AcceptProb implements Policy: always accept.
func (m MonitoredAvailability) AcceptProb(Context, View, View) float64 { return 1 }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (m MonitoredAvailability) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of (Context, View). The
// monitored history behind the view is mutable engine state, so a
// caller memoising this score must invalidate on session flips — the
// simulation engine does (see maintenance.Maintainer.InvalidateScore).
func (m MonitoredAvailability) PureScore() bool { return true }

// Score ranks by the monitored uptime over the window ending at the
// current round.
func (m MonitoredAvailability) Score(ctx Context, candidate View) float64 {
	up, ok := candidate.Observed.Uptime(ctx.Round, m.Window)
	if !ok {
		return 0
	}
	return up
}
