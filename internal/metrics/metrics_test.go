package metrics

import (
	"testing"

	"p2pbackup/internal/churn"
)

func TestCategoryBounds(t *testing.T) {
	// Pins the paper's age-category table (T4 in DESIGN.md).
	cases := []struct {
		age  int64
		want Category
	}{
		{0, Newcomer},
		{3*churn.Month - 1, Newcomer},
		{3 * churn.Month, Young},
		{6*churn.Month - 1, Young},
		{6 * churn.Month, Old},
		{18*churn.Month - 1, Old},
		{18 * churn.Month, Elder},
		{10 * churn.Year, Elder},
	}
	for _, c := range cases {
		if got := CategoryOf(c.age); got != c.want {
			t.Errorf("CategoryOf(%d) = %v, want %v", c.age, got, c.want)
		}
	}
	if CategoryBound(Newcomer) != 3*churn.Month ||
		CategoryBound(Young) != 6*churn.Month ||
		CategoryBound(Old) != 18*churn.Month {
		t.Fatal("category bounds wrong")
	}
	if CategoryBound(Elder) != -1 {
		t.Fatal("Elder must be unbounded")
	}
	if NumCategories != 4 {
		t.Fatal("the paper has four categories")
	}
}

func TestCategoryNames(t *testing.T) {
	want := []string{"newcomer", "young", "old", "elder"}
	got := CategoryNames()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v", got)
		}
	}
	if Newcomer.String() != "newcomer" || Elder.String() != "elder" {
		t.Fatal("String() wrong")
	}
	if Category(9).String() == "" {
		t.Fatal("unknown category must format")
	}
}

func TestCollectorRates(t *testing.T) {
	c := NewCollector(4, churn.Day, 0)
	// 2000 peer-rounds as newcomer, 4 repairs -> 2 per 1000.
	for r := int64(0); r < 20; r++ {
		c.AddPeerRounds(r, Newcomer, 100)
	}
	for i := 0; i < 4; i++ {
		c.RecordRepair(5, Newcomer, 0, false, 10, 2)
	}
	c.RecordRepair(6, Newcomer, 1, true, 256, 0) // initial
	if got := c.RepairRatePer1000(Newcomer, false); got != 2 {
		t.Fatalf("repair rate = %v, want 2", got)
	}
	if got := c.RepairRatePer1000(Newcomer, true); got != 2.5 {
		t.Fatalf("repair rate with initial = %v, want 2.5", got)
	}
	c.RecordOutage(7, Newcomer, 0)
	if got := c.LossRatePer1000(Newcomer); got != 0.5 {
		t.Fatalf("loss rate = %v, want 0.5", got)
	}
	// Empty categories divide safely.
	if c.RepairRatePer1000(Elder, true) != 0 || c.LossRatePer1000(Elder) != 0 {
		t.Fatal("empty category rates must be 0")
	}
	cc := c.Counts(Newcomer)
	if cc.Repairs != 4 || cc.InitialBackups != 1 || cc.Outages != 1 ||
		cc.BlocksUploaded != 4*10+256 || cc.BlocksDropped != 8 {
		t.Fatalf("counts = %+v", cc)
	}
	if c.TotalRepairs() != 4 || c.TotalLosses() != 1 {
		t.Fatal("totals wrong")
	}
}

func TestCollectorWarmupExcluded(t *testing.T) {
	c := NewCollector(1, churn.Day, 100)
	if c.Warmup() != 100 {
		t.Fatal("warmup accessor wrong")
	}
	c.AddPeerRounds(50, Young, 10)  // during warmup: ignored
	c.AddPeerRounds(150, Young, 10) // measured
	c.RecordRepair(50, Young, 0, false, 1, 0)
	c.RecordRepair(150, Young, 0, false, 1, 0)
	c.RecordOutage(99, Young, 0)
	c.RecordHardLoss(99, Young, 0)
	c.RecordStall(10, Young)
	cc := c.Counts(Young)
	if cc.PeerRounds != 10 || cc.Repairs != 1 || cc.Outages != 0 || cc.HardLosses != 0 || cc.StalledRounds != 0 {
		t.Fatalf("warmup leaked into counts: %+v", cc)
	}
}

func TestCollectorProfileTotals(t *testing.T) {
	c := NewCollector(3, churn.Day, 0)
	c.RecordRepair(0, Old, 2, false, 1, 0)
	c.RecordRepair(0, Old, 2, false, 1, 0)
	c.RecordOutage(0, Old, 1)
	if got := c.ProfileRepairs(); got[2] != 2 || got[0] != 0 {
		t.Fatalf("profile repairs = %v", got)
	}
	if got := c.ProfileLosses(); got[1] != 1 {
		t.Fatalf("profile losses = %v", got)
	}
}

func TestCollectorSeries(t *testing.T) {
	c := NewCollector(1, churn.Day, 0)
	var pop [NumCategories]int64
	pop[Newcomer] = 10
	// Day 1: 5 losses over 10 peers -> 0.5 cumulative.
	for r := int64(0); r < churn.Day; r++ {
		if r == 3 {
			for i := 0; i < 5; i++ {
				c.RecordOutage(r, Newcomer, 0)
			}
		}
		c.EndRound(r, pop)
	}
	// Day 2: 10 more losses -> 1.5 cumulative.
	for r := int64(churn.Day); r < 2*churn.Day; r++ {
		if r == churn.Day+1 {
			for i := 0; i < 10; i++ {
				c.RecordOutage(r, Newcomer, 0)
			}
		}
		c.EndRound(r, pop)
	}
	s := c.LossSeries(Newcomer)
	if s.Len() != 2 {
		t.Fatalf("series has %d points, want 2", s.Len())
	}
	if x, y := s.At(0); x != 1 || y != 0.5 {
		t.Fatalf("day 1 = (%v, %v), want (1, 0.5)", x, y)
	}
	if x, y := s.At(1); x != 2 || y != 1.5 {
		t.Fatalf("day 2 = (%v, %v), want (2, 1.5)", x, y)
	}
	// Repair series exists and has matching cadence.
	if c.RepairSeries(Newcomer).Len() != 2 {
		t.Fatal("repair series cadence wrong")
	}
	// Zero-population categories do not accumulate.
	if _, y := c.LossSeries(Elder).At(1); y != 0 {
		t.Fatal("empty category accumulated losses")
	}
}

func TestCollectorPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewCollector(0, 1, 0) },
		func() { NewCollector(1, 0, 0) },
		func() { NewCollector(1, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid collector params must panic")
				}
			}()
			f()
		}()
	}
}

func TestObserverTracker(t *testing.T) {
	// Pins the paper's observer table (T5 in DESIGN.md).
	names := []string{"elder", "senior", "adult", "teenager", "baby"}
	tr := NewObserverTracker(names)
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	tr.RecordRepair(24, 4)
	tr.RecordRepair(48, 4)
	tr.RecordRepair(24, 0)
	if tr.Count(4) != 2 || tr.Count(0) != 1 || tr.Count(1) != 0 {
		t.Fatal("counts wrong")
	}
	s := tr.Series(4)
	if s.Len() != 2 {
		t.Fatalf("series len = %d", s.Len())
	}
	if x, y := s.At(1); x != 2 || y != 2 {
		t.Fatalf("series point = (%v, %v), want (2, 2)", x, y)
	}
	got := tr.Names()
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("names = %v", got)
		}
	}
}

func TestCollectorShockAttribution(t *testing.T) {
	c := NewCollector(1, 24, 0)
	// Losses before any shock are background churn.
	c.RecordOutage(10, Newcomer, 0)
	if c.ShockAttributedLosses() != 0 {
		t.Fatal("pre-shock loss attributed")
	}
	// A zero-victim firing is counted but must not open the window.
	c.RecordShock(20, 0)
	c.RecordOutage(21, Newcomer, 0)
	if c.TotalShocks() != 1 || c.ShockAttributedLosses() != 0 {
		t.Fatalf("zero-victim shock attributed losses: shocks=%d attributed=%d",
			c.TotalShocks(), c.ShockAttributedLosses())
	}
	// A real shock attributes losses inside the window only.
	c.RecordShock(100, 42)
	c.RecordOutage(100+ShockAttributionWindow, Newcomer, 0)
	c.RecordOutage(101+ShockAttributionWindow, Newcomer, 0)
	if c.ShockVictims() != 42 || c.ShockAttributedLosses() != 1 {
		t.Fatalf("victims=%d attributed=%d, want 42 and 1",
			c.ShockVictims(), c.ShockAttributedLosses())
	}
}

func TestCollectorMerge(t *testing.T) {
	a := NewCollector(2, 24, 0)
	a.AddPeerRounds(0, Newcomer, 100)
	a.RecordRepair(1, Newcomer, 0, false, 5, 1)
	a.RecordRepair(2, Young, 1, true, 32, 0)
	a.RecordOutage(3, Newcomer, 0)
	a.RecordHardLoss(4, Newcomer, 0)
	a.RecordStall(5, Old)
	a.RecordBackupTime(6, 3)
	a.RecordRestoreFailed(7)

	b := NewCollector(2, 24, 0)
	b.AddPeerRounds(0, Newcomer, 50)
	b.RecordRepair(1, Newcomer, 1, false, 7, 2)
	b.RecordOutage(2, Young, 1)
	b.RecordShock(10, 9)
	b.RecordOutage(11, Young, 1) // inside b's shock window
	b.RecordBackupTime(12, 5)
	b.RecordRestoreTime(13, 4)

	// Redundancy counters merge like every other counter.
	a.RecordRedundancyChange(5, 20, 26) // grow +6
	b.RecordRedundancyChange(6, 26, 21) // shrink -5
	b.RecordRedundancyChange(7, 21, 23) // grow +2
	a.RecordRedundancyLevel(23, 21.5)   // series stays per-run (not merged)

	a.Merge(b)
	nc := a.Counts(Newcomer)
	if nc.PeerRounds != 150 || nc.Repairs != 2 || nc.Outages != 1 || nc.HardLosses != 1 ||
		nc.BlocksUploaded != 12 || nc.BlocksDropped != 3 {
		t.Fatalf("merged newcomer counts = %+v", nc)
	}
	yc := a.Counts(Young)
	if yc.InitialBackups != 1 || yc.Outages != 2 || yc.BlocksUploaded != 32 {
		t.Fatalf("merged young counts = %+v", yc)
	}
	if a.Counts(Old).StalledRounds != 1 {
		t.Fatal("stalled rounds lost in merge")
	}
	if r := a.ProfileRepairs(); r[0] != 1 || r[1] != 2 {
		t.Fatalf("merged profile repairs = %v", r)
	}
	if l := a.ProfileLosses(); l[0] != 1 || l[1] != 2 {
		t.Fatalf("merged profile losses = %v", l)
	}
	if a.TotalShocks() != 1 || a.ShockVictims() != 9 || a.ShockAttributedLosses() != 1 {
		t.Fatalf("merged shocks=%d victims=%d attributed=%d",
			a.TotalShocks(), a.ShockVictims(), a.ShockAttributedLosses())
	}
	// The merged lastShock must keep attributing losses near b's shock.
	a.RecordOutage(12, Elder, 0)
	if a.ShockAttributedLosses() != 2 {
		t.Fatal("merge did not adopt the later shock round")
	}
	if a.TimeToBackup().N() != 2 || a.TimeToBackup().Mean() != 4 {
		t.Fatalf("merged ttb n=%d mean=%v", a.TimeToBackup().N(), a.TimeToBackup().Mean())
	}
	if a.TimeToRestore().N() != 1 || a.RestoresFailed() != 1 {
		t.Fatalf("merged ttr n=%d restoresFailed=%d", a.TimeToRestore().N(), a.RestoresFailed())
	}
	if a.RedundancyGrows() != 2 || a.RedundancyShrinks() != 1 ||
		a.ParityBlocksAdded() != 8 || a.ParityBlocksReclaimed() != 5 {
		t.Fatalf("merged redundancy counters grows=%d shrinks=%d added=%d reclaimed=%d",
			a.RedundancyGrows(), a.RedundancyShrinks(), a.ParityBlocksAdded(), a.ParityBlocksReclaimed())
	}
	// Like LossSeries, the redundancy series is a single-run trajectory:
	// merge must leave a's own samples untouched.
	if a.RedundancySeries().Len() != 1 {
		t.Fatalf("merge disturbed the redundancy series: len=%d", a.RedundancySeries().Len())
	}
	// Pooled rates: numerators and denominators both pooled.
	if got := a.RepairRatePer1000(Newcomer, false); got != 2.0/150*1000 {
		t.Fatalf("pooled repair rate = %v", got)
	}
}

func TestRecordRedundancyChange(t *testing.T) {
	c := NewCollector(1, 24, 10)
	c.RecordRedundancyChange(5, 20, 30)  // pre-warmup: ignored
	c.RecordRedundancyChange(15, 20, 20) // no-op delta: ignored
	c.RecordRedundancyChange(15, 20, 24)
	c.RecordRedundancyChange(16, 24, 21)
	if c.RedundancyGrows() != 1 || c.ParityBlocksAdded() != 4 {
		t.Fatalf("grows=%d added=%d, want 1/4", c.RedundancyGrows(), c.ParityBlocksAdded())
	}
	if c.RedundancyShrinks() != 1 || c.ParityBlocksReclaimed() != 3 {
		t.Fatalf("shrinks=%d reclaimed=%d, want 1/3", c.RedundancyShrinks(), c.ParityBlocksReclaimed())
	}
	// The level series samples on the same cadence as the loss series.
	c.RecordRedundancyLevel(10, 22) // (10+1)%24 != 0: skipped
	c.RecordRedundancyLevel(23, 22)
	if c.RedundancySeries().Len() != 1 {
		t.Fatalf("series len = %d, want 1", c.RedundancySeries().Len())
	}
}

func TestCollectorMergeProfileMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched profile counts did not panic")
		}
	}()
	NewCollector(2, 24, 0).Merge(NewCollector(3, 24, 0))
}
