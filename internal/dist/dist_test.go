package dist

import (
	"math"
	"testing"

	"p2pbackup/internal/rng"
)

func TestConstant(t *testing.T) {
	if got := Constant(3.5).Sample(rng.New(1)); got != 3.5 {
		t.Fatalf("Constant.Sample = %v", got)
	}
}

func TestUniformRangeAndValidation(t *testing.T) {
	u, err := NewUniform(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := u.Sample(r)
		if v < 2 || v >= 5 {
			t.Fatalf("sample %v outside [2, 5)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3.5) > 0.05 {
		t.Fatalf("mean = %v, want ~3.5", mean)
	}
	for _, bad := range [][2]float64{{5, 2}, {1, 1}, {math.NaN(), 2}} {
		if _, err := NewUniform(bad[0], bad[1]); err == nil {
			t.Fatalf("NewUniform(%v, %v) accepted", bad[0], bad[1])
		}
	}
}

func TestParetoTailAndValidation(t *testing.T) {
	p, err := NewPareto(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	const n = 50000
	above4 := 0
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < 2 {
			t.Fatalf("sample %v below xm", v)
		}
		if v > 4 {
			above4++
		}
	}
	// P(X > 4) = (2/4)^1.5 ~ 0.3536.
	if frac := float64(above4) / n; math.Abs(frac-0.3536) > 0.01 {
		t.Fatalf("P(X>4) = %v, want ~0.354", frac)
	}
	for _, bad := range [][2]float64{{0, 1}, {1, 0}, {-1, 2}} {
		if _, err := NewPareto(bad[0], bad[1]); err == nil {
			t.Fatalf("NewPareto(%v, %v) accepted", bad[0], bad[1])
		}
	}
}
