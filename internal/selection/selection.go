// Package selection implements partner-selection strategies: the
// paper's age-based acceptance rule plus the baselines the ablation
// experiments compare it against.
//
// The paper's acceptance function (section 3.2), evaluated by peer p1
// when peer p2 asks for a partnership, with s1, s2 their ages and L the
// stability horizon (90 days):
//
//	f(p1, p2) = min((L - (min(s1, L) - min(s2, L)) + 1) / L, 1)
//
// Its stated properties, all tested in this package:
//   - the result is never zero (minimum 1/L, so newcomers are never
//     locked out entirely);
//   - it is exactly one whenever p2 is at least as old as p1 (older
//     peers are always accepted);
//   - it is asymmetric: f(p1, p2) != f(p2, p1) unless both ages exceed L.
//
// Once a pool of mutually accepting candidates exists, the owner ranks
// it and takes the top candidates; the paper ranks by age (oldest
// first). Baselines substitute the ranking and/or acceptance rule.
package selection

import (
	"errors"
	"fmt"

	"p2pbackup/internal/rng"
)

// PeerInfo carries what a strategy may know about a peer. Age is the
// only field an implementable protocol can observe (via the monitoring
// substrate); Availability and Remaining are ground truth that only the
// oracle baselines read.
type PeerInfo struct {
	// Age is the number of rounds since the peer joined the system.
	Age int64
	// Availability is the peer's true long-run online fraction.
	Availability float64
	// Remaining is the peer's true remaining lifetime in rounds.
	Remaining int64
}

// Strategy decides partnerships and ranks candidates.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// AcceptProb returns the probability that acceptor agrees to a
	// partnership requested by requester.
	AcceptProb(acceptor, requester PeerInfo) float64
	// Score ranks a candidate for selection by an owner; higher is
	// preferred.
	Score(candidate PeerInfo) float64
}

// Agree draws both directions of a partnership: the owner must accept
// the candidate and the candidate must accept the owner.
func Agree(r *rng.Rand, s Strategy, owner, candidate PeerInfo) bool {
	return r.Bool(s.AcceptProb(owner, candidate)) && r.Bool(s.AcceptProb(candidate, owner))
}

// ---------------------------------------------------------------------------
// Age-based (the paper)

// AgeBased is the paper's strategy: probabilistic acceptance via the
// acceptance function with horizon L, ranking by age capped at L.
type AgeBased struct {
	// L is the stability horizon in rounds (the paper uses 90 days).
	L int64
}

// Name implements Strategy.
func (a AgeBased) Name() string { return fmt.Sprintf("age(L=%d)", a.L) }

// AcceptProb evaluates the paper's acceptance function.
func (a AgeBased) AcceptProb(acceptor, requester PeerInfo) float64 {
	return AcceptanceFunction(acceptor.Age, requester.Age, a.L)
}

// Score ranks candidates by capped age, oldest first.
func (a AgeBased) Score(candidate PeerInfo) float64 {
	age := candidate.Age
	if age > a.L {
		age = a.L
	}
	if age < 0 {
		age = 0
	}
	return float64(age)
}

// AcceptanceFunction is the paper's f(p1, p2) for acceptor age s1,
// requester age s2 and horizon L. It panics if L <= 0.
func AcceptanceFunction(s1, s2, L int64) float64 {
	if L <= 0 {
		panic("selection: acceptance horizon must be positive")
	}
	if s1 < 0 {
		s1 = 0
	}
	if s2 < 0 {
		s2 = 0
	}
	if s1 > L {
		s1 = L
	}
	if s2 > L {
		s2 = L
	}
	v := float64(L-(s1-s2)+1) / float64(L)
	if v > 1 {
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Baselines

// Random accepts everyone and ranks uniformly: the placement a system
// with no lifetime information would do.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// AcceptProb always accepts.
func (Random) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is constant; pool order (already random) decides.
func (Random) Score(PeerInfo) float64 { return 0 }

// AvailabilityOracle accepts everyone and ranks by true availability -
// an unimplementable upper bound that ignores lifetimes.
type AvailabilityOracle struct{}

// Name implements Strategy.
func (AvailabilityOracle) Name() string { return "availability-oracle" }

// AcceptProb always accepts.
func (AvailabilityOracle) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the true availability.
func (AvailabilityOracle) Score(c PeerInfo) float64 { return c.Availability }

// LifetimeOracle accepts everyone and ranks by true remaining lifetime,
// the quantity age merely estimates. The gap between LifetimeOracle and
// AgeBased measures how much the estimate loses; the gap between
// LifetimeOracle and Random measures how much lifetime-aware placement
// can possibly win.
type LifetimeOracle struct{}

// Name implements Strategy.
func (LifetimeOracle) Name() string { return "lifetime-oracle" }

// AcceptProb always accepts.
func (LifetimeOracle) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the true remaining lifetime.
func (LifetimeOracle) Score(c PeerInfo) float64 { return float64(c.Remaining) }

// YoungestFirst is the adversarial baseline: rank youngest first. If
// the age signal carries information, this must perform WORSE than
// Random.
type YoungestFirst struct{}

// Name implements Strategy.
func (YoungestFirst) Name() string { return "youngest-first" }

// AcceptProb always accepts.
func (YoungestFirst) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the negated age.
func (YoungestFirst) Score(c PeerInfo) float64 { return -float64(c.Age) }

// ---------------------------------------------------------------------------
// Registry

// ErrUnknownStrategy reports an unrecognised strategy name.
var ErrUnknownStrategy = errors.New("selection: unknown strategy")

// ByName resolves a strategy from its CLI name. The age strategy takes
// its horizon from the l parameter; the others ignore it.
func ByName(name string, l int64) (Strategy, error) {
	switch name {
	case "age", "":
		return AgeBased{L: l}, nil
	case "random":
		return Random{}, nil
	case "availability-oracle":
		return AvailabilityOracle{}, nil
	case "lifetime-oracle":
		return LifetimeOracle{}, nil
	case "youngest-first":
		return YoungestFirst{}, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownStrategy, name)
	}
}

// Names lists the registered strategy names.
func Names() []string {
	return []string{"age", "random", "availability-oracle", "lifetime-oracle", "youngest-first"}
}
