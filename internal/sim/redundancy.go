package sim

// Adaptive redundancy: the engine-side state and round phase behind
// Config.Redundancy. A static policy (fixed, the default) allocates
// nothing here and the engine is literally the pre-adaptive engine; an
// adaptive policy gets a per-archive target array, a derived scratch
// rng stream, and one evaluation phase per round.
//
// The rng rule: every draw an evaluation makes (partner subsampling)
// comes from a stream derived via rng.Derive(seed, redunStreamIndex),
// never from the engine's canonical stream s.r. The phase runs after
// the churn walk's history barrier and before the maintenance shuffle,
// touches the ledger only through deterministic drops, and iterates
// slots in ascending order — so adaptive runs are bit-identical at
// every shard count, and fixed runs never see the stream at all.

import (
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/redundancy"
	"p2pbackup/internal/rng"
)

// redunStreamIndex is the rng.Derive index of the redundancy scratch
// stream ("REDUNDAN" in ASCII). Shard scratch streams derive from small
// integer indexes (0..Shards-1), so any value >= 2^32 cannot collide.
const redunStreamIndex uint64 = 0x5245_4455_4e44_414e

// redunEstGain is the per-evaluation EWMA gain of the availability
// estimate. One evaluation's probe is a 16-sample with-replacement
// draw whose noise swings the durability-minimal n(t) by tens of
// blocks; acting on it raw made the policy flap (grow/shrink cycles on
// sampling jitter) and, on a high-side spike, shrink archives toward
// n(t) ~ k' — where the expected visible count sits at or below k, so
// repairs stall undecodable and host deaths turn the dip into a hard
// loss. Smoothing over ~1/gain evaluations keeps a single probe from
// moving the target while still tracking real availability shifts
// within a few days of simulated time.
const redunEstGain = 0.25

// redunState is the adaptive-policy engine state (nil under a static
// policy).
type redunState struct {
	pol redundancy.Policy
	r   *rng.Rand // derived scratch stream; see the package rule above
	// target and thr hold each population slot's current n(t) and the
	// effective repair threshold it implies (cached because the
	// maintenance hook reads it on every Step).
	target []int32
	thr    []int32
	// est holds each slot's smoothed availability estimate (the EWMA of
	// per-evaluation probes; 0 = no evaluation yet). See redunEstGain.
	est    []float64
	sum    int64 // sum of target, for the mean-n(t) series
	eval   int64 // per-archive evaluation cadence (rounds)
	window int64 // monitored-uptime window (AcceptHorizon)
	sample int   // partners probed per evaluation
	buf    []overlay.PeerID
}

// newRedunState builds the per-archive arrays at the policy's initial
// target.
func newRedunState(cfg Config) *redunState {
	rs := &redunState{
		pol:    cfg.Redundancy,
		r:      rng.New(rng.Derive(cfg.Seed, redunStreamIndex)),
		target: make([]int32, cfg.NumPeers),
		thr:    make([]int32, cfg.NumPeers),
		est:    make([]float64, cfg.NumPeers),
		eval:   cfg.Redundancy.EvalEvery(),
		window: cfg.AcceptHorizon,
		sample: cfg.Redundancy.SamplePeers(),
		buf:    make([]overlay.PeerID, 0, cfg.TotalBlocks),
	}
	initial := cfg.Redundancy.Initial(cfg.DataBlocks, cfg.TotalBlocks)
	thr := redundancy.EffectiveThreshold(cfg.DataBlocks, cfg.RepairThreshold, cfg.TotalBlocks, initial)
	for i := range rs.target {
		rs.target[i] = int32(initial)
		rs.thr[i] = int32(thr)
	}
	rs.sum = int64(initial) * int64(cfg.NumPeers)
	return rs
}

// setTarget moves one slot's target, keeping the cached threshold and
// the population sum in step.
func (s *Simulation) setTarget(id overlay.PeerID, nt int) {
	rs := s.redun
	rs.sum += int64(nt) - int64(rs.target[id])
	rs.target[id] = int32(nt)
	rs.thr[id] = int32(redundancy.EffectiveThreshold(
		s.cfg.DataBlocks, s.cfg.RepairThreshold, s.cfg.TotalBlocks, nt))
}

// redunReset restores a slot's target to the policy's initial value
// when its archive identity changes (occupant replaced, archive lost
// and re-encoded). Not a policy decision: no event is emitted.
func (s *Simulation) redunReset(id overlay.PeerID) {
	if s.redun == nil || int(id) >= s.cfg.NumPeers {
		return
	}
	s.redun.est[id] = 0 // a new archive identity starts its estimate over
	s.setTarget(id, s.redun.pol.Initial(s.cfg.DataBlocks, s.cfg.TotalBlocks))
}

// stepRedundancy is the adaptive evaluation phase: each round it walks
// the round's cohort — the slots with id ≡ -round (mod eval), so every
// archive is evaluated exactly once per eval rounds and the per-round
// cost is NumPeers/eval — estimates each archive's availability from
// its partners' monitored histories, and applies the policy's verdict:
// grow starts an ordinary upload episode for the missing parity blocks
// (real transfers when bandwidth scheduling is on), shrink retires
// surplus placements immediately, offline hosts first.
func (s *Simulation) stepRedundancy(round int64) {
	rs := s.redun
	start := int((rs.eval - round%rs.eval) % rs.eval)
	for id := start; id < s.cfg.NumPeers; id += int(rs.eval) {
		s.evalRedundancy(round, overlay.PeerID(id))
	}
}

// evalRedundancy runs one archive's policy evaluation.
func (s *Simulation) evalRedundancy(round int64, id overlay.PeerID) {
	rs := s.redun
	// Only healthy, complete archives are retuned: an archive mid-repair
	// (or mid-grow) already converges to its target, and one awaiting
	// its initial upload has no partners to measure.
	if !s.maint.Included(id) || s.maint.Repairing(id) {
		return
	}
	hosts := s.led.Hosts(id, rs.buf[:0])
	nh := len(hosts)
	if nh == 0 {
		return
	}
	// Availability estimate, probe one: mean monitored uptime of the
	// partners over the acceptance window. Bounded monitoring cost: past
	// Sample partners, probe a with-replacement sample drawn on the
	// scratch stream (the draw count depends only on ledger state, which
	// is shard-count invariant).
	var p float64
	if nh <= rs.sample {
		for _, h := range hosts {
			p += s.hist[h].Uptime(round, rs.window)
		}
		p /= float64(nh)
	} else {
		for i := 0; i < rs.sample; i++ {
			p += s.hist[hosts[rs.r.Intn(nh)]].Uptime(round, rs.window)
		}
		p /= float64(rs.sample)
	}
	// Probe two: the archive's own visible fraction right now — a direct,
	// unbiased measurement of what the actual placement set delivers
	// (monitored partner uptime overestimates it: partners still in the
	// set are survivors, and a small sample can land on always-on hosts
	// and report p ~ 1). The pessimistic min of the two probes feeds the
	// per-archive EWMA the policy actually sees; sizing on anything less
	// conservative shrank archives into repair-stall territory.
	if v := float64(s.led.Visible(id)) / float64(nh); v < p {
		p = v
	}
	if e := rs.est[id]; e > 0 {
		p = e + redunEstGain*(p-e)
	}
	rs.est[id] = p
	cur := int(rs.target[id])
	nt := rs.pol.Target(redundancy.Observation{
		Round:        round,
		Current:      cur,
		DataBlocks:   s.cfg.DataBlocks,
		Availability: p,
	})
	if nt == cur {
		return
	}
	s.setTarget(id, nt)
	if nt > cur {
		// Grow: the maintenance upload machinery places the extra parity
		// blocks; the episode completes through the usual repair path.
		if !s.maint.GrowArchive(id) {
			// Included and idle was checked above; a refusal here is an
			// engine bug, not a policy condition.
			panic("sim: GrowArchive refused an idle included archive")
		}
	} else {
		s.shrinkArchive(id, nt)
	}
	ev := RedundancyEvent{Round: round, Peer: int(id), From: cur, To: nt, Availability: p}
	for _, pr := range s.dispatch[evRedundancyChange] {
		pr.OnRedundancyChange(ev)
	}
}

// shrinkArchive retires surplus placements until the archive holds at
// most nt blocks: offline hosts first (their blocks are the least
// useful), then from the placement list's end. Dropping frees host
// quota immediately; a visibility crossing fires the ledger watcher
// exactly as a partner death would, so the armed-set machinery stays
// coherent.
func (s *Simulation) shrinkArchive(id overlay.PeerID, nt int) {
	for i := s.led.Alive(id) - 1; i >= 0 && s.led.Alive(id) > nt; i-- {
		host, err := s.led.HostAt(id, i)
		if err != nil {
			panic(err) // ledger indexes are engine-controlled
		}
		if !s.led.Online(host) {
			if err := s.led.DropPlacementAt(id, i); err != nil {
				panic(err)
			}
		}
	}
	for s.led.Alive(id) > nt {
		if err := s.led.DropPlacementAt(id, s.led.Alive(id)-1); err != nil {
			panic(err)
		}
	}
}

// simRedun adapts the engine's redundancy state to the maintenance
// hook. Observer slots sit past the population and keep the global
// shape — they are instrumentation, pinned at the paper's parameters.
type simRedun Simulation

// TargetBlocks implements maintenance.Redundancy.
func (sr *simRedun) TargetBlocks(owner overlay.PeerID) int {
	s := (*Simulation)(sr)
	if int(owner) >= s.cfg.NumPeers {
		return s.cfg.TotalBlocks
	}
	return int(s.redun.target[owner])
}

// RepairThreshold implements maintenance.Redundancy.
func (sr *simRedun) RepairThreshold(owner overlay.PeerID) int {
	s := (*Simulation)(sr)
	if int(owner) >= s.cfg.NumPeers {
		return s.cfg.RepairThreshold
	}
	return int(s.redun.thr[owner])
}
