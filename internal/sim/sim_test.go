package sim

import (
	"fmt"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/dist"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/selection"
)

// smallConfig is a fast-running configuration preserving the paper's
// structure (erasure-coded archives, profiles, acceptance rule).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 120
	cfg.Rounds = 400
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48 // short horizon so ages matter quickly
	return cfg
}

func TestConfigValidation(t *testing.T) {
	if _, err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("paper defaults must validate: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumPeers = 1 },
		func(c *Config) { c.Rounds = 0 },
		func(c *Config) { c.DataBlocks = 0 },
		func(c *Config) { c.TotalBlocks = c.DataBlocks },
		func(c *Config) { c.NumPeers = c.TotalBlocks },
		func(c *Config) { c.RepairThreshold = c.DataBlocks - 1 },
		func(c *Config) { c.RepairThreshold = c.TotalBlocks + 1 },
		func(c *Config) { c.Quota = 0 },
		func(c *Config) { c.AcceptHorizon = 0 },
		func(c *Config) { c.PoolSamplePerRound = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Warmup = c.Rounds },
		func(c *Config) { c.Observers = []ObserverSpec{{Name: "x", Age: -1}} },
		func(c *Config) { c.Quota = 10 }, // demand 256 > capacity 10
	}
	for i, mod := range cases {
		cfg := smallConfig()
		mod(&cfg)
		if _, err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	// Pins the paper's parameter tables (T1 in DESIGN.md).
	cfg := DefaultConfig()
	if cfg.NumPeers != 25000 {
		t.Errorf("NumPeers = %d, want 25000", cfg.NumPeers)
	}
	if cfg.Rounds != 50000 {
		t.Errorf("Rounds = %d, want 50000", cfg.Rounds)
	}
	if cfg.DataBlocks != 128 || cfg.TotalBlocks != 256 {
		t.Errorf("code shape %d/%d, want 128/256", cfg.DataBlocks, cfg.TotalBlocks)
	}
	if cfg.RepairThreshold != 148 {
		t.Errorf("threshold = %d, want 148", cfg.RepairThreshold)
	}
	if cfg.Quota != 384 {
		t.Errorf("quota = %d, want 384", cfg.Quota)
	}
	if cfg.AcceptHorizon != 90*churn.Day {
		t.Errorf("horizon = %d, want 90 days", cfg.AcceptHorizon)
	}
}

func TestPaperObservers(t *testing.T) {
	// Pins the observer table (T5 in DESIGN.md).
	obs := PaperObservers()
	want := []struct {
		name string
		age  int64
	}{
		{"elder", 3 * churn.Month},
		{"senior", 1 * churn.Month},
		{"adult", 1 * churn.Week},
		{"teenager", 1 * churn.Day},
		{"baby", 1 * churn.Hour},
	}
	if len(obs) != len(want) {
		t.Fatalf("%d observers, want %d", len(obs), len(want))
	}
	for i, w := range want {
		if obs[i].Name != w.name || obs[i].Age != w.age {
			t.Errorf("observer %d = %+v, want %+v", i, obs[i], w)
		}
	}
}

func TestScale(t *testing.T) {
	cfg := DefaultConfig()
	s := cfg.Scale(0.1)
	if s.NumPeers != 2500 || s.Rounds != 5000 {
		t.Fatalf("scaled = %d peers / %d rounds", s.NumPeers, s.Rounds)
	}
	if s.TotalBlocks != cfg.TotalBlocks || s.Quota != cfg.Quota {
		t.Fatal("intensive parameters must not scale")
	}
	tiny := cfg.Scale(0.000001)
	if tiny.NumPeers <= cfg.TotalBlocks {
		t.Fatal("scale must clamp population above n")
	}
	if tiny.Rounds < 1 {
		t.Fatal("scale must clamp rounds")
	}
}

func TestRunCompletesAndIsConsistent(t *testing.T) {
	s, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res == nil {
		t.Fatal("nil result")
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Fatalf("ledger inconsistent after run: %v", err)
	}
	// With moderate churn most peers should be included by the end.
	if res.FinalIncluded < s.cfg.NumPeers/2 {
		t.Fatalf("only %d of %d peers included", res.FinalIncluded, s.cfg.NumPeers)
	}
	// Peer-round accounting: total peer rounds == peers x rounds.
	var total int64
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		total += res.Collector.Counts(c).PeerRounds
	}
	want := int64(s.cfg.NumPeers) * s.cfg.Rounds
	if total != want {
		t.Fatalf("peer rounds = %d, want %d", total, want)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	cfg.Observers = PaperObservers()
	run := func() *Result {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if a.Deaths != b.Deaths {
		t.Fatalf("deaths differ: %d vs %d", a.Deaths, b.Deaths)
	}
	if a.FinalPlacements != b.FinalPlacements {
		t.Fatalf("placements differ: %d vs %d", a.FinalPlacements, b.FinalPlacements)
	}
	if a.Collector.TotalRepairs() != b.Collector.TotalRepairs() {
		t.Fatalf("repairs differ: %d vs %d", a.Collector.TotalRepairs(), b.Collector.TotalRepairs())
	}
	if a.Collector.TotalLosses() != b.Collector.TotalLosses() {
		t.Fatalf("losses differ: %d vs %d", a.Collector.TotalLosses(), b.Collector.TotalLosses())
	}
	for i := 0; i < a.Observers.Len(); i++ {
		if a.Observers.Count(i) != b.Observers.Count(i) {
			t.Fatalf("observer %d differs: %d vs %d", i, a.Observers.Count(i), b.Observers.Count(i))
		}
	}
	// Different seeds diverge.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	s2, _ := New(cfg2)
	c := s2.Run()
	if c.Deaths == a.Deaths && c.Collector.TotalRepairs() == a.Collector.TotalRepairs() &&
		c.FinalPlacements == a.FinalPlacements {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestCategoryPopulationTracksAges(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 5 * churn.Month // long enough for promotions
	cfg.NumPeers = 60
	cfg.TotalBlocks = 8
	cfg.DataBlocks = 4
	cfg.RepairThreshold = 5
	cfg.Quota = 24
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	_ = res
	// After the run, recount categories from engine state.
	var want [metrics.NumCategories]int64
	for i := range s.peers {
		age := s.round - s.peers[i].join
		want[metrics.CategoryOf(age)]++
	}
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		if got := s.CategoryPopulation(c); got != want[c] {
			t.Fatalf("category %v population = %d, recount %d", c, got, want[c])
		}
	}
	var sum int64
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		sum += s.CategoryPopulation(c)
	}
	if sum != int64(cfg.NumPeers) {
		t.Fatalf("category populations sum to %d, want %d", sum, cfg.NumPeers)
	}
}

func TestImmortalHighAvailabilityNeverLoses(t *testing.T) {
	// A population of always-online immortals must complete initial
	// backups and then never repair or lose anything.
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "immortal", Proportion: 1, Availability: 1, Lifetime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Profiles = profiles
	cfg.Avail = churn.AlwaysOnline{}
	cfg.Rounds = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deaths != 0 {
		t.Fatalf("immortals died: %d", res.Deaths)
	}
	if res.Collector.TotalLosses() != 0 {
		t.Fatalf("losses in a perfect system: %d", res.Collector.TotalLosses())
	}
	if res.Collector.TotalRepairs() != 0 {
		t.Fatalf("maintenance repairs in a perfect system: %d", res.Collector.TotalRepairs())
	}
	if res.FinalIncluded != cfg.NumPeers {
		t.Fatalf("included %d of %d", res.FinalIncluded, cfg.NumPeers)
	}
	// Every archive is full and visible.
	for id := 0; id < cfg.NumPeers; id++ {
		if s.Ledger().Visible(overlay.PeerID(id)) != cfg.TotalBlocks {
			t.Fatalf("peer %d visible = %d, want %d", id, s.Ledger().Visible(overlay.PeerID(id)), cfg.TotalBlocks)
		}
	}
}

func TestChurnCausesRepairsAndDeaths(t *testing.T) {
	// Short-lived, poorly available peers force maintenance activity.
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "fragile", Proportion: 0.5, Availability: 0.6,
			Lifetime: mustUniform(t, 2*churn.Week, 6*churn.Week)},
		{Name: "solid", Proportion: 0.5, Availability: 0.95, Lifetime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Profiles = profiles
	cfg.Rounds = 8 * churn.Week
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deaths == 0 {
		t.Fatal("fragile peers never died")
	}
	if res.Collector.TotalRepairs() == 0 {
		t.Fatal("churn produced no repairs")
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func mustUniform(t *testing.T, lo, hi float64) dist.Sampler {
	t.Helper()
	u, err := dist.NewUniform(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestObserversRepairAndAgeOrdering(t *testing.T) {
	// Observers with very different ages: the baby must repair at least
	// as often as the elder (the paper's Figure 3 ordering), because
	// the elder recruits stable elders while the baby cannot.
	cfg := smallConfig()
	cfg.Rounds = 10 * churn.Week
	cfg.AcceptHorizon = 2 * churn.Week
	cfg.Observers = []ObserverSpec{
		{Name: "elder", Age: 2 * churn.Week},
		{Name: "baby", Age: 1},
	}
	// Churny population in which age is a strong signal: fragile peers
	// never survive past the horizon, so peers older than L are all
	// durable - exactly the regime the paper's heuristic exploits.
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "fast", Proportion: 0.7, Availability: 0.35,
			Lifetime: mustUniform(t, 3*churn.Day, 2*churn.Week)},
		{Name: "slow", Proportion: 0.3, Availability: 0.9, Lifetime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profiles = profiles
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	elder, baby := res.Observers.Count(0), res.Observers.Count(1)
	if baby == 0 {
		t.Fatal("baby observer never repaired (including initial)")
	}
	if elder > baby {
		t.Fatalf("elder repaired more than baby: %d vs %d", elder, baby)
	}
	// Observer series exist.
	if res.Observers.Series(1).Len() == 0 {
		t.Fatal("observer series empty")
	}
	// Observers did not eat host quota.
	led := s.Ledger()
	for id := 0; id < cfg.NumPeers; id++ {
		if led.MeteredHosted(overlay.PeerID(id)) > led.Hosted(overlay.PeerID(id)) {
			t.Fatal("metered exceeds hosted")
		}
	}
}

func TestTraceRecording(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 300
	cfg.RecordTrace = true
	// Short-lived profile to force joins/leaves.
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "brief", Proportion: 1, Availability: 0.7,
			Lifetime: mustUniform(t, 50, 150)},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profiles = profiles
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("trace not recorded")
	}
	// Every peer joined at round 0; deaths are recorded as leave+join.
	joins, leaves := 0, 0
	for _, e := range res.Trace.Events {
		switch e.Kind {
		case churn.EvJoin:
			joins++
		case churn.EvLeave:
			leaves++
		}
	}
	if int64(leaves) != res.Deaths {
		t.Fatalf("trace leaves = %d, deaths = %d", leaves, res.Deaths)
	}
	if joins != cfg.NumPeers+leaves {
		t.Fatalf("trace joins = %d, want %d", joins, cfg.NumPeers+leaves)
	}
	// Lifetimes extracted from the trace are within the profile range.
	for _, l := range res.Trace.Lifetimes() {
		if l < 50 || l > 151 {
			t.Fatalf("trace lifetime %v outside profile range", l)
		}
	}
}

func TestStrategySwap(t *testing.T) {
	// The engine must run with every registered strategy spec, resolved
	// through Config.StrategySpec so window-query strategies see the
	// monitoring substrate.
	for _, name := range selection.Names() {
		cfg := smallConfig()
		cfg.Rounds = 100
		cfg.NumPeers = 60
		cfg.TotalBlocks = 8
		cfg.DataBlocks = 4
		cfg.RepairThreshold = 5
		cfg.Quota = 24
		cfg.StrategySpec = name
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res := s.Run()
		if res.FinalIncluded == 0 {
			t.Fatalf("%s: nobody included", name)
		}
		if err := s.Ledger().CheckConsistency(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestStrategySwapLegacyByName(t *testing.T) {
	// The deprecated ByName adapters must still drive the engine
	// through Config.Strategy. Note that Adapt unwraps ByName's
	// round-tripped policies, so monitored-availability here still
	// reaches the engine's monitoring substrate — the no-history
	// fallback only applies to Strategy implementations consuming
	// PeerInfo directly (e.g. the live node's directory).
	for _, name := range []string{"age", "random", "monitored-availability"} {
		strat, err := selection.ByName(name, 48)
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig()
		cfg.Rounds = 60
		cfg.NumPeers = 60
		cfg.TotalBlocks = 8
		cfg.DataBlocks = 4
		cfg.RepairThreshold = 5
		cfg.Quota = 24
		cfg.Strategy = strat
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res := s.Run(); res.FinalIncluded == 0 {
			t.Fatalf("%s: nobody included", name)
		}
	}
}

func TestConfigStrategyResolution(t *testing.T) {
	cfg := smallConfig()
	// Default: the paper's age policy at the config's horizon.
	v, err := cfg.Validate()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("age(L=%d)", cfg.AcceptHorizon)
	if v.Policy == nil || v.Policy.Name() != want {
		t.Fatalf("default policy = %v, want %s", v.Policy, want)
	}
	// Spec path: explicit parameters win over the config horizon.
	cfg.StrategySpec = "age:L=7"
	if v, err = cfg.Validate(); err != nil || v.Policy.Name() != "age(L=7)" {
		t.Fatalf("spec policy = %v (%v)", v.Policy, err)
	}
	// Bad specs are rejected at validation time.
	cfg.StrategySpec = "age:bogus=1"
	if _, err = cfg.Validate(); err == nil {
		t.Fatal("bad spec accepted")
	}
	// Strategy and StrategySpec are mutually exclusive.
	cfg.StrategySpec = "age"
	cfg.Strategy = selection.AgeBased{L: 9}
	if _, err = cfg.Validate(); err == nil {
		t.Fatal("Strategy+StrategySpec accepted")
	}
	// Legacy Strategy alone is lifted.
	cfg.StrategySpec = ""
	if v, err = cfg.Validate(); err != nil || v.Policy.Name() != "age(L=9)" {
		t.Fatalf("adapted policy = %v (%v)", v.Policy, err)
	}
}

func TestMonitoredHistoriesTrackSessions(t *testing.T) {
	// The engine's per-slot availability histories must agree with the
	// oracle availability in expectation: a (nearly) always-online
	// profile must show ~1 uptime, and the simEnv view must expose the
	// history to strategies.
	cfg := smallConfig()
	cfg.Rounds = 400
	cfg.AcceptHorizon = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	env := (*simEnv)(s)
	if env.Round() != cfg.Rounds {
		t.Fatalf("env round = %d, want %d", env.Round(), cfg.Rounds)
	}
	seen := 0
	for id := range s.peers {
		v := env.View(overlay.PeerID(id))
		if v.Observed.History == nil {
			t.Fatalf("peer %d has no monitoring history", id)
		}
		up, ok := v.Observed.Uptime(s.round, cfg.AcceptHorizon)
		if !ok {
			t.Fatalf("peer %d: no uptime", id)
		}
		if up < 0 || up > 1 {
			t.Fatalf("peer %d: uptime %v outside [0,1]", id, up)
		}
		// Peers that joined at round 0 and never died have a full
		// window; their observed uptime must roughly match their true
		// availability.
		p := &s.peers[id]
		if p.join == 0 && p.avail >= 0.9 {
			seen++
			if up < 0.5 {
				t.Errorf("peer %d: avail %.2f but monitored uptime %.2f", id, p.avail, up)
			}
		}
	}
	if seen == 0 {
		t.Skip("no surviving high-availability peer from round 0")
	}
	// Observer views are steady full-uptime histories.
	cfg.Observers = []ObserverSpec{{Name: "elder", Age: 100}}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ov := (*simEnv)(s2).View(overlay.PeerID(cfg.NumPeers))
	if up, ok := ov.Observed.Uptime(50, 10); !ok || up != 1 {
		t.Fatalf("observer uptime = %v/%v, want 1", up, ok)
	}
}

func TestProgressCallback(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 100
	cfg.ProgressEvery = 25
	var calls []int64
	cfg.Progress = func(round int64) { calls = append(calls, round) }
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(calls) != 4 || calls[0] != 25 || calls[3] != 100 {
		t.Fatalf("progress calls = %v", calls)
	}
}

func TestWarmupExcludesEarlyEvents(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 300
	cfg.Warmup = 200
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	var total int64
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		total += res.Collector.Counts(c).PeerRounds
	}
	want := int64(cfg.NumPeers) * (cfg.Rounds - cfg.Warmup)
	if total != want {
		t.Fatalf("measured peer rounds = %d, want %d", total, want)
	}
}
