// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(2^8), the redundancy scheme the backup system stores archives with.
//
// An archive is split into k data shards; m parity shards are computed so
// that ANY k of the n = k+m shards reconstruct the original data. This is
// the property the paper relies on: storing n blocks on n distinct peers
// tolerates m peer failures (compare replication, where doubling storage
// only tolerates one failure per copy).
//
// The encoding matrix is systematic (the first k rows are the identity,
// so data shards are stored verbatim). Two constructions are offered:
// a systematised Vandermonde matrix (the classic Reed-Solomon form) and
// a Cauchy matrix (every square submatrix invertible by construction).
// Both guarantee that any k rows form an invertible matrix, which is
// exactly the any-k-of-n recovery property.
package erasure

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"p2pbackup/internal/gf256"
)

// Common errors.
var (
	ErrInvalidParams    = errors.New("erasure: k must be >= 1, m >= 0, and k+m <= 256")
	ErrTooFewShards     = errors.New("erasure: too few shards to reconstruct")
	ErrShardCount       = errors.New("erasure: wrong number of shards")
	ErrShardSize        = errors.New("erasure: shards must be non-empty and all the same size")
	ErrShortData        = errors.New("erasure: data too short")
	ErrVerifyFailed     = errors.New("erasure: parity verification failed")
	ErrReconstructSpace = errors.New("erasure: missing shard slot has wrong capacity")
)

// MatrixKind selects the parity construction.
type MatrixKind int

const (
	// Vandermonde uses the classic Reed-Solomon generator matrix,
	// systematised by multiplying with the inverse of its top k x k block.
	Vandermonde MatrixKind = iota
	// Cauchy uses an identity block on top of a Cauchy parity block.
	Cauchy
)

func (k MatrixKind) String() string {
	switch k {
	case Vandermonde:
		return "vandermonde"
	case Cauchy:
		return "cauchy"
	default:
		return fmt.Sprintf("MatrixKind(%d)", int(k))
	}
}

// Encoder encodes and reconstructs Reed-Solomon shard sets. It is safe
// for concurrent use: all mutable state is behind a mutex-protected
// decode-matrix cache.
type Encoder struct {
	k, m   int
	kind   MatrixKind
	matrix *gf256.Matrix // n x k encoding matrix, top k x k identity
	parity *gf256.Matrix // m x k view of the parity rows

	mu    sync.Mutex
	cache map[string]*gf256.Matrix // decode matrices keyed by survivor row set
}

// New returns an Encoder for k data shards and m parity shards using the
// Vandermonde construction.
func New(k, m int) (*Encoder, error) { return NewKind(k, m, Vandermonde) }

// NewKind returns an Encoder with an explicit matrix construction.
func NewKind(k, m int, kind MatrixKind) (*Encoder, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, ErrInvalidParams
	}
	var enc *gf256.Matrix
	switch kind {
	case Vandermonde:
		v := gf256.Vandermonde(k+m, k)
		top := v.SubMatrix(0, k, 0, k)
		topInv, err := top.Invert()
		if err != nil {
			return nil, fmt.Errorf("erasure: vandermonde top block singular: %w", err)
		}
		enc = v.Mul(topInv)
	case Cauchy:
		enc = gf256.NewMatrix(k+m, k)
		for i := 0; i < k; i++ {
			enc.Set(i, i, 1)
		}
		if m > 0 {
			c := gf256.Cauchy(m, k)
			for r := 0; r < m; r++ {
				copy(enc.Row(k+r), c.Row(r))
			}
		}
	default:
		return nil, fmt.Errorf("erasure: unknown matrix kind %v", kind)
	}
	e := &Encoder{
		k:      k,
		m:      m,
		kind:   kind,
		matrix: enc,
		cache:  make(map[string]*gf256.Matrix),
	}
	if m > 0 {
		e.parity = enc.SubMatrix(k, k+m, 0, k)
	}
	return e, nil
}

// DataShards returns k.
func (e *Encoder) DataShards() int { return e.k }

// ParityShards returns m.
func (e *Encoder) ParityShards() int { return e.m }

// TotalShards returns n = k + m.
func (e *Encoder) TotalShards() int { return e.k + e.m }

// Kind returns the matrix construction in use.
func (e *Encoder) Kind() MatrixKind { return e.kind }

// checkShards validates shard count and sizes. If allowNil, missing
// (nil or empty) shards are permitted and the size of present shards is
// returned.
func (e *Encoder) checkShards(shards [][]byte, allowNil bool) (size int, err error) {
	if len(shards) != e.k+e.m {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrShardCount, len(shards), e.k+e.m)
	}
	for _, s := range shards {
		if len(s) == 0 {
			if !allowNil {
				return 0, ErrShardSize
			}
			continue
		}
		if size == 0 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	if size == 0 {
		return 0, ErrShardSize
	}
	return size, nil
}

// Encode computes the m parity shards from the first k data shards,
// writing them into shards[k:]. All n slots must be allocated with equal
// sizes.
func (e *Encoder) Encode(shards [][]byte) error {
	if _, err := e.checkShards(shards, false); err != nil {
		return err
	}
	if e.m == 0 {
		return nil
	}
	for r := 0; r < e.m; r++ {
		out := shards[e.k+r]
		row := e.parity.Row(r)
		gf256.MulSlice(row[0], shards[0], out)
		for c := 1; c < e.k; c++ {
			gf256.MulAddSlice(row[c], shards[c], out)
		}
	}
	return nil
}

// Verify recomputes parity from the data shards and reports whether the
// stored parity shards match.
func (e *Encoder) Verify(shards [][]byte) (bool, error) {
	size, err := e.checkShards(shards, false)
	if err != nil {
		return false, err
	}
	if e.m == 0 {
		return true, nil
	}
	buf := make([]byte, size)
	for r := 0; r < e.m; r++ {
		row := e.parity.Row(r)
		gf256.MulSlice(row[0], shards[0], buf)
		for c := 1; c < e.k; c++ {
			gf256.MulAddSlice(row[c], shards[c], buf)
		}
		stored := shards[e.k+r]
		for i := range buf {
			if buf[i] != stored[i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct fills in all missing shards (nil or zero-length entries)
// in place, both data and parity. At least k shards must be present.
func (e *Encoder) Reconstruct(shards [][]byte) error {
	return e.reconstruct(shards, false)
}

// ReconstructData fills in only the missing data shards, skipping the
// (cheaper) recomputation of missing parity. Use when the caller only
// needs to read the archive back.
func (e *Encoder) ReconstructData(shards [][]byte) error {
	return e.reconstruct(shards, true)
}

func (e *Encoder) reconstruct(shards [][]byte, dataOnly bool) error {
	size, err := e.checkShards(shards, true)
	if err != nil {
		return err
	}
	present := 0
	for _, s := range shards {
		if len(s) > 0 {
			present++
		}
	}
	if present == len(shards) {
		return nil
	}
	if present < e.k {
		return fmt.Errorf("%w: %d of %d present, need %d", ErrTooFewShards, present, e.k+e.m, e.k)
	}

	// Choose k surviving rows, preferring data shards (identity rows make
	// the decode matrix sparser and the common no-data-loss case free).
	rows := make([]int, 0, e.k)
	for i := 0; i < len(shards) && len(rows) < e.k; i++ {
		if len(shards[i]) > 0 {
			rows = append(rows, i)
		}
	}

	dataMissing := false
	for i := 0; i < e.k; i++ {
		if len(shards[i]) == 0 {
			dataMissing = true
			break
		}
	}

	if dataMissing {
		dec, err := e.decodeMatrix(rows)
		if err != nil {
			return err
		}
		// Recover each missing data shard d: shard[d] = dec.Row(d) . survivors
		in := make([][]byte, e.k)
		for i, r := range rows {
			in[i] = shards[r]
		}
		for d := 0; d < e.k; d++ {
			if len(shards[d]) > 0 {
				continue
			}
			out := ensureShard(&shards[d], size)
			row := dec.Row(d)
			gf256.MulSlice(row[0], in[0], out)
			for c := 1; c < e.k; c++ {
				gf256.MulAddSlice(row[c], in[c], out)
			}
		}
	}

	if dataOnly {
		return nil
	}
	// All data shards now present; recompute any missing parity.
	for p := e.k; p < e.k+e.m; p++ {
		if len(shards[p]) > 0 {
			continue
		}
		out := ensureShard(&shards[p], size)
		row := e.parity.Row(p - e.k)
		gf256.MulSlice(row[0], shards[0], out)
		for c := 1; c < e.k; c++ {
			gf256.MulAddSlice(row[c], shards[c], out)
		}
	}
	return nil
}

func ensureShard(s *[]byte, size int) []byte {
	if cap(*s) >= size {
		*s = (*s)[:size]
	} else {
		*s = make([]byte, size)
	}
	return *s
}

// decodeMatrix returns the inverse of the submatrix formed by the given
// surviving rows of the encoding matrix, memoised per row set.
func (e *Encoder) decodeMatrix(rows []int) (*gf256.Matrix, error) {
	key := make([]byte, len(rows))
	for i, r := range rows {
		key[i] = byte(r)
	}
	e.mu.Lock()
	if m, ok := e.cache[string(key)]; ok {
		e.mu.Unlock()
		return m, nil
	}
	e.mu.Unlock()

	sub := e.matrix.SelectRows(rows)
	inv, err := sub.Invert()
	if err != nil {
		// Cannot happen for a valid construction; report loudly if it does.
		return nil, fmt.Errorf("erasure: survivor set %v not decodable: %w", rows, err)
	}

	e.mu.Lock()
	// Bound the cache; archive repair touches few distinct survivor sets,
	// but a long-lived encoder should not grow without limit.
	if len(e.cache) >= 1024 {
		for k := range e.cache {
			delete(e.cache, k)
			break
		}
	}
	e.cache[string(key)] = inv
	e.mu.Unlock()
	return inv, nil
}

// Split partitions data into k equally sized shards, padding the tail
// with zeros. The returned shards reference newly allocated memory.
// Use Join with the original length to undo.
func (e *Encoder) Split(data []byte) ([][]byte, error) {
	if len(data) == 0 {
		return nil, ErrShortData
	}
	shardSize := (len(data) + e.k - 1) / e.k
	shards := make([][]byte, e.k+e.m)
	backing := make([]byte, shardSize*(e.k+e.m))
	for i := range shards {
		shards[i] = backing[i*shardSize : (i+1)*shardSize]
	}
	for i := 0; i < e.k; i++ {
		lo := i * shardSize
		if lo >= len(data) {
			break
		}
		hi := lo + shardSize
		if hi > len(data) {
			hi = len(data)
		}
		copy(shards[i], data[lo:hi])
	}
	return shards, nil
}

// Join writes the original data of the given total size by concatenating
// the k data shards, dropping padding.
func (e *Encoder) Join(dst io.Writer, shards [][]byte, size int) error {
	if len(shards) < e.k {
		return ErrShardCount
	}
	remaining := size
	for i := 0; i < e.k && remaining > 0; i++ {
		s := shards[i]
		if len(s) == 0 {
			return fmt.Errorf("erasure: data shard %d missing in Join", i)
		}
		n := len(s)
		if n > remaining {
			n = remaining
		}
		if _, err := dst.Write(s[:n]); err != nil {
			return err
		}
		remaining -= n
	}
	if remaining > 0 {
		return ErrShortData
	}
	return nil
}
