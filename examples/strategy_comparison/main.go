// strategy_comparison: the ablation the paper motivates but does not
// plot - how much does age-based selection actually buy? Compares the
// paper's rule against random placement, an unimplementable oracle that
// knows true remaining lifetimes, an availability oracle, and an
// adversarial youngest-first rule, all on identical populations.
package main

import (
	"fmt"
	"log"
	"os"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 600
	cfg.Rounds = 8000

	fmt.Fprintln(os.Stderr, "running five strategies on identical populations...")
	res, err := experiments.RunStrategyAblation(cfg, 0, func(msg string) {
		fmt.Fprintln(os.Stderr, "  "+msg)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %9s %8s %10s %12s %12s\n",
		"strategy", "repairs", "losses", "uploads", "newcomer/1k", "old/1k")
	for _, p := range res.Points {
		fmt.Printf("%-22s %9d %8d %10d %12.3f %12.3f\n",
			p.Label, p.Repairs, p.Losses, p.Uploaded,
			p.RepairRate[metrics.Newcomer], p.RepairRate[metrics.Old])
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - the age rule does not minimise TOTAL cost: it concentrates")
	fmt.Println("    cost on newcomers (high newcomer rate) while veterans ride")
	fmt.Println("    almost free - the paper's tit-for-tat reward for loyalty;")
	fmt.Println("  - random spreads cost evenly: newcomers are cheap but nobody")
	fmt.Println("    earns cheap maintenance by staying;")
	fmt.Println("  - the oracles bound what any lifetime estimate could achieve.")
}
