// Command p2pbackup backs a directory up into a local cluster of block
// stores using the full pipeline (encrypt, Reed-Solomon encode,
// distribute one block per peer) and restores it even after peers are
// deleted.
//
// Usage:
//
//	p2pbackup backup  -src ./mydata  -repo ./repo [-peers 12] [-k 4] [-m 4]
//	p2pbackup restore -repo ./repo   -dst ./recovered
//	p2pbackup verify  -repo ./repo
//
// The repo directory holds one block-store subdirectory per simulated
// peer, the owner's private key (identity.pem) and the master block
// (master.json). Deleting up to m whole peer directories must not
// prevent a restore; deleting more must fail loudly rather than return
// corrupt data.
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"p2pbackup/internal/backup"
	"p2pbackup/internal/storage"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "backup":
		err = cmdBackup(os.Args[2:])
	case "restore":
		err = cmdRestore(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "p2pbackup:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  p2pbackup backup  -src DIR -repo DIR [-peers N] [-k K] [-m M]
  p2pbackup restore -repo DIR -dst DIR
  p2pbackup verify  -repo DIR`)
	os.Exit(2)
}

func cmdBackup(args []string) error {
	fs := flag.NewFlagSet("backup", flag.ExitOnError)
	src := fs.String("src", "", "directory to back up")
	repo := fs.String("repo", "", "repository directory")
	peers := fs.Int("peers", 12, "number of simulated peers")
	k := fs.Int("k", 4, "data blocks per archive")
	m := fs.Int("m", 4, "parity blocks per archive")
	_ = fs.Parse(args)
	if *src == "" || *repo == "" {
		return fmt.Errorf("backup needs -src and -repo")
	}
	params := backup.Params{DataBlocks: *k, ParityBlocks: *m}
	if err := params.Validate(); err != nil {
		return err
	}
	if *peers < params.Total() {
		return fmt.Errorf("need at least n=%d peers for one block per peer, got %d", params.Total(), *peers)
	}
	entries, err := backup.CollectDir(*src)
	if err != nil {
		return err
	}
	plaintext, err := backup.PackFiles(entries)
	if err != nil {
		return err
	}
	identity, err := backup.NewIdentity()
	if err != nil {
		return err
	}
	blocks, manifest, err := backup.EncodeArchive(params, identity, plaintext, *src)
	if err != nil {
		return err
	}
	// Distribute: block i goes to peer i (one block per partner).
	partners := map[int][]string{}
	for i, block := range blocks {
		peerDir := filepath.Join(*repo, fmt.Sprintf("peer-%03d", i%*peers))
		st, err := storage.OpenDiskStore(peerDir, 0)
		if err != nil {
			return err
		}
		if _, err := st.Put(block); err != nil {
			return err
		}
		partners[0] = append(partners[0], filepath.Base(peerDir))
	}
	mb := &backup.MasterBlock{Manifests: []*backup.Manifest{manifest}, Partners: partners}
	raw, err := backup.MarshalMasterBlock(mb)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(*repo, "master.json"), raw, 0o644); err != nil {
		return err
	}
	if err := writeIdentity(filepath.Join(*repo, "identity.pem"), identity); err != nil {
		return err
	}
	fmt.Printf("backed up %d files (%d bytes) as %d blocks over %d peers; tolerate %d peer losses\n",
		len(entries), len(plaintext), len(blocks), *peers, params.ParityBlocks)
	return nil
}

func cmdRestore(args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	repo := fs.String("repo", "", "repository directory")
	dst := fs.String("dst", "", "directory to restore into")
	_ = fs.Parse(args)
	if *repo == "" || *dst == "" {
		return fmt.Errorf("restore needs -repo and -dst")
	}
	identity, mb, err := loadRepo(*repo)
	if err != nil {
		return err
	}
	for idx, manifest := range mb.Manifests {
		blocks, found := gatherBlocks(*repo, manifest)
		plaintext, err := backup.DecodeArchive(manifest, identity, blocks)
		if err != nil {
			return fmt.Errorf("archive %d (%d/%d blocks found): %w", idx, found, manifest.Params.Total(), err)
		}
		entries, err := backup.UnpackFiles(plaintext)
		if err != nil {
			return err
		}
		if err := backup.WriteDir(*dst, entries); err != nil {
			return err
		}
		fmt.Printf("archive %d: restored %d files from %d/%d blocks\n",
			idx, len(entries), found, manifest.Params.Total())
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	repo := fs.String("repo", "", "repository directory")
	_ = fs.Parse(args)
	if *repo == "" {
		return fmt.Errorf("verify needs -repo")
	}
	_, mb, err := loadRepo(*repo)
	if err != nil {
		return err
	}
	exit := error(nil)
	for idx, manifest := range mb.Manifests {
		_, found := gatherBlocks(*repo, manifest)
		need := manifest.Params.DataBlocks
		status := "OK"
		if found < need {
			status = "UNRECOVERABLE"
			exit = fmt.Errorf("archive %d unrecoverable", idx)
		} else if found < manifest.Params.Total() {
			status = "DEGRADED"
		}
		fmt.Printf("archive %d: %d/%d blocks present (need %d): %s\n",
			idx, found, manifest.Params.Total(), need, status)
	}
	return exit
}

func loadRepo(repo string) (*backup.Identity, *backup.MasterBlock, error) {
	identity, err := readIdentity(filepath.Join(repo, "identity.pem"))
	if err != nil {
		return nil, nil, err
	}
	raw, err := os.ReadFile(filepath.Join(repo, "master.json"))
	if err != nil {
		return nil, nil, err
	}
	mb, err := backup.UnmarshalMasterBlock(raw)
	if err != nil {
		return nil, nil, err
	}
	return identity, mb, nil
}

// gatherBlocks scans every peer store for the manifest's blocks.
func gatherBlocks(repo string, manifest *backup.Manifest) ([][]byte, int) {
	blocks := make([][]byte, manifest.Params.Total())
	found := 0
	peerDirs, _ := filepath.Glob(filepath.Join(repo, "peer-*"))
	var stores []storage.Store
	for _, dir := range peerDirs {
		if st, err := storage.OpenDiskStore(dir, 0); err == nil {
			stores = append(stores, st)
		}
	}
	for i, id := range manifest.BlockIDs {
		for _, st := range stores {
			if data, err := st.Get(id); err == nil {
				blocks[i] = data
				found++
				break
			}
		}
	}
	return blocks, found
}

func writeIdentity(path string, id *backup.Identity) error {
	der := x509.MarshalPKCS1PrivateKey(id.Private)
	block := &pem.Block{Type: "RSA PRIVATE KEY", Bytes: der}
	return os.WriteFile(path, pem.EncodeToMemory(block), 0o600)
}

func readIdentity(path string) (*backup.Identity, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(raw)
	if block == nil || block.Type != "RSA PRIVATE KEY" {
		return nil, fmt.Errorf("bad identity file %s", path)
	}
	key, err := x509.ParsePKCS1PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	var _ *rsa.PrivateKey = key
	return &backup.Identity{Private: key}, nil
}
