package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53, 0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulKnownValues(t *testing.T) {
	// Reference products for polynomial 0x11D.
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 7, 0},
		{1, 1, 1},
		{1, 0xFF, 0xFF},
		{2, 2, 4},
		{2, 0x80, 0x1D},    // x*x^7 = x^8 = x^4+x^3+x^2+1 under 0x11D
		{0x80, 0x80, 0x13}, // x^14 reduced by hand: 0x13
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

// mulSlow multiplies via carry-less multiplication with polynomial
// reduction, independent of the table construction.
func mulSlow(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		carry := a&0x80 != 0
		a <<= 1
		if carry {
			a ^= Poly
		}
		b >>= 1
	}
	return p
}

func TestMulMatchesSlowReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x, %#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Commutativity and associativity of multiplication.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, b) == Mul(b, a) && Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Distributivity.
	if err := quick.Check(func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Error(err)
	}
	// Multiplicative identity and zero.
	if err := quick.Check(func(a byte) bool {
		return Mul(a, 1) == a && Mul(a, 0) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%#x) = %#x is not an inverse", a, inv)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1, %#x) != Inv(%#x)", a, a)
		}
	}
}

func TestDivIsMulByInverse(t *testing.T) {
	if err := quick.Check(func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(a, b) == Mul(a, Inv(b))
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero must panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) must panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%#x)) != %#x", a, a)
		}
	}
	seen := make(map[byte]bool)
	for i := 0; i < Order; i++ {
		v := Exp(i)
		if seen[v] {
			t.Fatalf("Exp(%d) = %#x repeats; generator is not primitive", i, v)
		}
		seen[v] = true
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 {
		t.Error("0^0 must be 1 by convention")
	}
	if Pow(0, 5) != 0 {
		t.Error("0^5 must be 0")
	}
	for _, a := range []byte{1, 2, 3, 0x1D, 0xFF} {
		acc := byte(1)
		for n := 0; n < 10; n++ {
			if got := Pow(a, n); got != acc {
				t.Fatalf("Pow(%#x, %d) = %#x, want %#x", a, n, got, acc)
			}
			acc = Mul(acc, a)
		}
	}
}

func TestMulSlice(t *testing.T) {
	src := []byte{0, 1, 2, 0x80, 0xFF, 0x53}
	dst := make([]byte, len(src))
	for _, c := range []byte{0, 1, 2, 0xCA} {
		MulSlice(c, src, dst)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice(c=%#x)[%d] = %#x, want %#x", c, i, dst[i], Mul(c, src[i]))
			}
		}
	}
}

func TestMulSliceAliasing(t *testing.T) {
	buf := []byte{1, 2, 3, 4, 5}
	want := make([]byte, len(buf))
	MulSlice(7, buf, want)
	MulSlice(7, buf, buf) // in-place
	for i := range buf {
		if buf[i] != want[i] {
			t.Fatalf("in-place MulSlice differs at %d", i)
		}
	}
}

func TestMulAddSlice(t *testing.T) {
	src := []byte{9, 8, 7, 6}
	for _, c := range []byte{0, 1, 5} {
		dst := []byte{1, 2, 3, 4}
		want := make([]byte, 4)
		for i := range want {
			want[i] = Add(dst[i], Mul(c, src[i]))
		}
		MulAddSlice(c, src, dst)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("MulAddSlice(c=%#x)[%d] = %#x, want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

func TestAddSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	AddSlice(a, b)
	for i := range b {
		if b[i] != a[i]^[]byte{4, 5, 6}[i] {
			t.Fatalf("AddSlice wrong at %d", i)
		}
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MulSlice":    func() { MulSlice(1, make([]byte, 2), make([]byte, 3)) },
		"MulAddSlice": func() { MulAddSlice(1, make([]byte, 2), make([]byte, 3)) },
		"AddSlice":    func() { AddSlice(make([]byte, 2), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths must panic", name)
				}
			}()
			f()
		}()
	}
}
