// Package selection implements partner-selection strategies: the
// paper's age-based acceptance rule plus the baselines the ablation
// experiments compare it against.
//
// The paper's acceptance function (section 3.2), evaluated by peer p1
// when peer p2 asks for a partnership, with s1, s2 their ages and L the
// stability horizon (90 days):
//
//	f(p1, p2) = min((L - (min(s1, L) - min(s2, L)) + 1) / L, 1)
//
// Its stated properties, all tested in this package:
//   - the result is never zero (minimum 1/L, so newcomers are never
//     locked out entirely);
//   - it is exactly one whenever p2 is at least as old as p1 (older
//     peers are always accepted);
//   - it is asymmetric: f(p1, p2) != f(p2, p1) unless both ages exceed L.
//
// Once a pool of mutually accepting candidates exists, the owner ranks
// it and takes the top candidates; the paper ranks by age (oldest
// first). Baselines substitute the ranking and/or acceptance rule.
//
// The package's primary surface is the observable/oracle knowledge
// split in view.go (View, Context, Policy) and the spec-string registry
// in spec.go (Register, Parse); the PeerInfo/Strategy/ByName surface
// below predates the split and is kept as deprecated adapters.
//
// Paper mapping:
//
//	§3.2 acceptance function f(p1,p2)   AcceptanceFunction
//	§3.2 rank by age, capped at L       the "age" spec (agePolicy)
//	§4.1 baseline comparisons           "random", the oracles,
//	                                    "youngest-first" specs
//	§2.1 lifetime estimation            "estimator:*" specs ranking by
//	                                    a lifetime.Estimator
//	§2.1 availability monitoring        "monitored-availability" spec
//	                                    over Observed.History
package selection

import (
	"errors"
	"fmt"

	"p2pbackup/internal/rng"
)

// PeerInfo carries what a strategy may know about a peer, flattened
// into one struct. Age is the only field an implementable protocol can
// observe; Availability and Remaining are ground truth that only the
// oracle baselines read.
//
// Deprecated: the View type makes that epistemic split explicit
// (Observed vs Oracle) and adds monitored-availability queries; new
// code should consume View.
type PeerInfo struct {
	// Age is the number of rounds since the peer joined the system.
	Age int64
	// Availability is the peer's true long-run online fraction.
	Availability float64
	// Remaining is the peer's true remaining lifetime in rounds.
	Remaining int64
}

// Strategy decides partnerships and ranks candidates from a flat
// PeerInfo.
//
// Deprecated: implement Policy, which separates observable from oracle
// knowledge and receives the round context for window queries; lift
// legacy implementations with Adapt.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// AcceptProb returns the probability that acceptor agrees to a
	// partnership requested by requester.
	AcceptProb(acceptor, requester PeerInfo) float64
	// Score ranks a candidate for selection by an owner; higher is
	// preferred.
	Score(candidate PeerInfo) float64
}

// Agree draws both directions of a partnership: the owner must accept
// the candidate and the candidate must accept the owner. Acceptance
// probabilities of exactly one consume no randomness, and strategies
// declaring AcceptsAll skip the evaluation entirely.
//
// Deprecated: use AgreeCtx with a Policy.
func Agree(r *rng.Rand, s Strategy, owner, candidate PeerInfo) bool {
	if AcceptsAll(s) {
		return true
	}
	if p := s.AcceptProb(owner, candidate); p < 1 && !r.Bool(p) {
		return false
	}
	p := s.AcceptProb(candidate, owner)
	return p >= 1 || r.Bool(p)
}

// ---------------------------------------------------------------------------
// Age-based (the paper)

// AgeBased is the paper's strategy: probabilistic acceptance via the
// acceptance function with horizon L, ranking by age capped at L.
type AgeBased struct {
	// L is the stability horizon in rounds (the paper uses 90 days).
	L int64
}

// Name implements Strategy.
func (a AgeBased) Name() string { return fmt.Sprintf("age(L=%d)", a.L) }

// AcceptProb evaluates the paper's acceptance function.
func (a AgeBased) AcceptProb(acceptor, requester PeerInfo) float64 {
	return AcceptanceFunction(acceptor.Age, requester.Age, a.L)
}

// PureScore declares Score a pure function of its arguments.
func (a AgeBased) PureScore() bool { return true }

// Score ranks candidates by capped age, oldest first.
func (a AgeBased) Score(candidate PeerInfo) float64 {
	age := candidate.Age
	if age > a.L {
		age = a.L
	}
	if age < 0 {
		age = 0
	}
	return float64(age)
}

// AcceptanceFunction is the paper's f(p1, p2) for acceptor age s1,
// requester age s2 and horizon L. It panics if L <= 0.
func AcceptanceFunction(s1, s2, L int64) float64 {
	if L <= 0 {
		panic("selection: acceptance horizon must be positive")
	}
	if s1 < 0 {
		s1 = 0
	}
	if s2 < 0 {
		s2 = 0
	}
	if s1 > L {
		s1 = L
	}
	if s2 > L {
		s2 = L
	}
	v := float64(L-(s1-s2)+1) / float64(L)
	if v > 1 {
		return 1
	}
	return v
}

// ---------------------------------------------------------------------------
// Baselines

// Random accepts everyone and ranks uniformly: the placement a system
// with no lifetime information would do.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "random" }

// AcceptProb always accepts.
func (Random) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is constant; pool order (already random) decides.
func (Random) Score(PeerInfo) float64 { return 0 }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (Random) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of its arguments.
func (Random) PureScore() bool { return true }

// AvailabilityOracle accepts everyone and ranks by true availability -
// an unimplementable upper bound that ignores lifetimes.
type AvailabilityOracle struct{}

// Name implements Strategy.
func (AvailabilityOracle) Name() string { return "availability-oracle" }

// AcceptProb always accepts.
func (AvailabilityOracle) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the true availability.
func (AvailabilityOracle) Score(c PeerInfo) float64 { return c.Availability }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (AvailabilityOracle) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of its arguments.
func (AvailabilityOracle) PureScore() bool { return true }

// LifetimeOracle accepts everyone and ranks by true remaining lifetime,
// the quantity age merely estimates. The gap between LifetimeOracle and
// AgeBased measures how much the estimate loses; the gap between
// LifetimeOracle and Random measures how much lifetime-aware placement
// can possibly win.
type LifetimeOracle struct{}

// Name implements Strategy.
func (LifetimeOracle) Name() string { return "lifetime-oracle" }

// AcceptProb always accepts.
func (LifetimeOracle) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the true remaining lifetime.
func (LifetimeOracle) Score(c PeerInfo) float64 { return float64(c.Remaining) }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (LifetimeOracle) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of its arguments.
func (LifetimeOracle) PureScore() bool { return true }

// YoungestFirst is the adversarial baseline: rank youngest first. If
// the age signal carries information, this must perform WORSE than
// Random.
type YoungestFirst struct{}

// Name implements Strategy.
func (YoungestFirst) Name() string { return "youngest-first" }

// AcceptProb always accepts.
func (YoungestFirst) AcceptProb(_, _ PeerInfo) float64 { return 1 }

// Score is the negated age.
func (YoungestFirst) Score(c PeerInfo) float64 { return -float64(c.Age) }

// AlwaysAccepts declares the constant acceptance for Agree's fast path.
func (YoungestFirst) AlwaysAccepts() bool { return true }

// PureScore declares Score a pure function of its arguments.
func (YoungestFirst) PureScore() bool { return true }

// ---------------------------------------------------------------------------
// Legacy name resolution

// ErrUnknownStrategy reports an unrecognised strategy name.
var ErrUnknownStrategy = errors.New("selection: unknown strategy")

// ByName resolves a strategy from its spec name, projecting the result
// onto the legacy Strategy interface. The l argument is the default
// horizon for every spec that takes one (age's L, estimator:age's L,
// monitored-availability's window) — it is no longer silently dropped
// for non-age strategies — and explicit spec parameters override it.
// Unknown names wrap ErrUnknownStrategy; unknown or misplaced
// parameters wrap ErrBadSpec.
//
// Deprecated: use Parse or ParseWith, which return the Policy surface.
func ByName(name string, l int64) (Strategy, error) {
	pol, err := ParseWith(name, Defaults{Horizon: l})
	if err != nil {
		return nil, err
	}
	// Preserve the historical concrete types for the original names so
	// long-standing callers can still type-assert.
	switch p := pol.(type) {
	case agePolicy:
		return AgeBased{L: p.L}, nil
	case randomPolicy:
		return Random{}, nil
	case availOraclePolicy:
		return AvailabilityOracle{}, nil
	case lifetimeOraclePolicy:
		return LifetimeOracle{}, nil
	case youngestPolicy:
		return YoungestFirst{}, nil
	}
	return AsStrategy(pol), nil
}
