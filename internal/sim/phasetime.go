package sim

import "time"

// PhaseTimes is a run's cumulative per-phase wall-time breakdown,
// collected when Config.PhaseTimes is set (the p2psim -phasetimes
// flag). The buckets cover a round end to end in engine order; their
// sum is the time spent inside stepRound. Collection never changes a
// trajectory — it only reads the clock at phase boundaries.
type PhaseTimes struct {
	// Walk covers the churn phases: shocks, restore demand, replay
	// application and the walk itself (parallel under -walk=v3).
	Walk time.Duration
	// Merge covers the round barrier: the deferred history-op
	// application under v1 sharding, the cross-shard effect merge under
	// v3.
	Merge time.Duration
	// TransferDrain covers due transfer completions (bandwidth mode).
	TransferDrain time.Duration
	// Evaluation covers the adaptive-redundancy evaluation phase.
	Evaluation time.Duration
	// Maintenance covers cache warming, the maintenance phase (plan and
	// apply under v3), observer actions and round-end accounting.
	Maintenance time.Duration
}

// phaseStart opens a phase-timing lap; the zero time when accounting is
// off.
func (s *Simulation) phaseStart() time.Time {
	if !s.cfg.PhaseTimes {
		return time.Time{}
	}
	return time.Now()
}

// phaseLap adds the time since *t to *d and restarts the lap. A no-op
// (two branch instructions on the hot path) when accounting is off.
func (s *Simulation) phaseLap(d *time.Duration, t *time.Time) {
	if !s.cfg.PhaseTimes {
		return
	}
	now := time.Now()
	*d += now.Sub(*t)
	*t = now
}
