package selection

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"p2pbackup/internal/rng"
)

const testL = 2160 // 90 days in rounds, the paper's horizon

func TestAcceptanceFunctionPaperProperties(t *testing.T) {
	// Property 1: never zero; minimum is exactly 1/L (elder vs newborn).
	if got := AcceptanceFunction(testL, 0, testL); math.Abs(got-1.0/testL) > 1e-15 {
		t.Fatalf("elder accepting newborn = %v, want 1/L = %v", got, 1.0/testL)
	}
	// Property 2: always one when the requester is at least as old.
	for _, ages := range [][2]int64{{0, 0}, {0, 100}, {100, 100}, {100, testL}, {testL, testL}, {testL, 999999}} {
		if got := AcceptanceFunction(ages[0], ages[1], testL); got != 1 {
			t.Errorf("f(%d, %d) = %v, want 1 (older requester)", ages[0], ages[1], got)
		}
	}
	// Property 3: asymmetric below the horizon.
	if AcceptanceFunction(1000, 10, testL) == AcceptanceFunction(10, 1000, testL) {
		t.Fatal("acceptance must be asymmetric for young/old pairs")
	}
	// ... but symmetric (both 1) once both exceed L.
	if AcceptanceFunction(testL+5, testL+9999, testL) != AcceptanceFunction(testL+9999, testL+5, testL) {
		t.Fatal("beyond the horizon both directions must be 1")
	}
}

func TestAcceptanceFunctionPropertyBased(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		s1, s2 := int64(a%10000), int64(b%10000)
		v := AcceptanceFunction(s1, s2, testL)
		if v < 1.0/testL-1e-15 || v > 1 {
			return false
		}
		if s2 >= s1 && v != 1 {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Monotone: for a fixed acceptor, older requesters are never less
	// welcome.
	if err := quick.Check(func(a, b, c uint32) bool {
		s1 := int64(a % 10000)
		r1, r2 := int64(b%10000), int64(c%10000)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return AcceptanceFunction(s1, r1, testL) <= AcceptanceFunction(s1, r2, testL)
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAcceptanceFunctionClampsNegativeAges(t *testing.T) {
	if AcceptanceFunction(-5, -7, testL) != 1 {
		t.Fatal("negative ages must clamp to 0 (equal -> accept)")
	}
}

func TestAcceptanceFunctionPanicsOnBadHorizon(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("L = 0 must panic")
		}
	}()
	AcceptanceFunction(1, 2, 0)
}

func TestAgeBasedStrategy(t *testing.T) {
	s := AgeBased{L: testL}
	if s.Name() == "" {
		t.Fatal("Name empty")
	}
	// Score is capped age.
	if s.Score(PeerInfo{Age: 100}) != 100 {
		t.Fatal("score below cap must equal age")
	}
	if s.Score(PeerInfo{Age: testL * 10}) != testL {
		t.Fatal("score must cap at L")
	}
	if s.Score(PeerInfo{Age: -3}) != 0 {
		t.Fatal("negative age must score 0")
	}
	// AcceptProb wires through the acceptance function.
	got := s.AcceptProb(PeerInfo{Age: testL}, PeerInfo{Age: 0})
	if math.Abs(got-1.0/testL) > 1e-15 {
		t.Fatalf("AcceptProb = %v, want 1/L", got)
	}
}

func TestAgreeMutual(t *testing.T) {
	r := rng.New(1)
	s := AgeBased{L: testL}
	elder := PeerInfo{Age: testL}
	newborn := PeerInfo{Age: 0}
	// A newborn owner asking an elder candidate: the elder rarely
	// agrees (probability 1/L each trial).
	agreed := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		if Agree(r, s, newborn, elder) {
			agreed++
		}
	}
	got := float64(agreed) / trials
	want := 1.0 / testL
	if got > want*3 || got < want/3 {
		t.Fatalf("newborn-elder agreement rate = %v, want ~%v", got, want)
	}
	// Two elders always agree.
	for i := 0; i < 100; i++ {
		if !Agree(r, s, elder, elder) {
			t.Fatal("elders must always agree")
		}
	}
}

func TestRandomStrategy(t *testing.T) {
	s := Random{}
	if s.AcceptProb(PeerInfo{}, PeerInfo{}) != 1 {
		t.Fatal("random must accept everyone")
	}
	if s.Score(PeerInfo{Age: 5}) != s.Score(PeerInfo{Age: 50000}) {
		t.Fatal("random score must be constant")
	}
}

func TestOracleStrategies(t *testing.T) {
	a := AvailabilityOracle{}
	if a.Score(PeerInfo{Availability: 0.9}) <= a.Score(PeerInfo{Availability: 0.3}) {
		t.Fatal("availability oracle must prefer higher availability")
	}
	l := LifetimeOracle{}
	if l.Score(PeerInfo{Remaining: 5000}) <= l.Score(PeerInfo{Remaining: 10}) {
		t.Fatal("lifetime oracle must prefer longer remaining lifetime")
	}
	y := YoungestFirst{}
	if y.Score(PeerInfo{Age: 10}) <= y.Score(PeerInfo{Age: 1000}) {
		t.Fatal("youngest-first must prefer younger")
	}
	for _, s := range []Strategy{a, l, y} {
		if s.AcceptProb(PeerInfo{}, PeerInfo{}) != 1 {
			t.Fatalf("%s must accept everyone", s.Name())
		}
		if s.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name, testL)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if s == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if s, err := ByName("", testL); err != nil || s.Name() != (AgeBased{L: testL}).Name() {
		t.Fatalf("default strategy = %v, %v", s, err)
	}
	if _, err := ByName("bogus", testL); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatal("bogus strategy accepted")
	}
}
