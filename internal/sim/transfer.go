package sim

// Transfer integration: the bandwidth-aware scheduling layer
// (internal/transfer) wired into the calendar engine. With
// Config.Bandwidth set (and not instant), maintenance enqueues block
// transfers instead of placing instantly; completions are processed as
// calendar events at the top of each round's maintenance phase, and
// session flips / deaths suspend, resume or abort the flows they
// interrupt. Without Bandwidth (and with no Restores) none of this
// state exists and the engine byte-matches its pre-transfer behaviour.

import (
	"fmt"

	"p2pbackup/internal/maintenance"
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/transfer"
)

// RestoreSpec schedules a restore-demand event: at Round, each included
// population peer independently demands its archive back with
// probability Fraction (local disk crash, or the mass "give me my data"
// wave after a correlated failure — the flash crowd). A restoring peer
// downloads k blocks over its downlink; demand on a peer already
// restoring, or not yet backed up, is dropped.
type RestoreSpec struct {
	// Name labels the event in reports.
	Name string
	// Round is the demand round.
	Round int64
	// Fraction in (0, 1] is the per-peer demand probability.
	Fraction float64
}

// Validate checks one restore spec.
func (sp RestoreSpec) Validate() error {
	if sp.Fraction <= 0 || sp.Fraction > 1 {
		return fmt.Errorf("sim: restore %q fraction %v outside (0,1]", sp.Name, sp.Fraction)
	}
	if sp.Round < 0 {
		return fmt.Errorf("sim: restore %q scheduled at negative round %d", sp.Name, sp.Round)
	}
	return nil
}

// xferEntry is one scheduled completion in the engine's min-heap,
// ordered by (round, tid). Entries are lazily invalidated: a transfer
// suspended or rescheduled after its entry was pushed leaves the stale
// entry behind, and the drain loop discards entries whose transfer no
// longer completes at the recorded round.
type xferEntry struct {
	round int64
	tid   int64
}

// xferState is the engine-side transfer machinery, allocated only when
// the config enables bandwidth scheduling or restore demand.
type xferState struct {
	sched *transfer.Scheduler
	heap  []xferEntry
	// restore maps population slot -> in-flight restore transfer id
	// (-1 = none): at most one restore per peer.
	restore []int64
	// bandwidth is set when the class mix is non-instant: maintenance
	// routes uploads through the scheduler. Restore-only configs keep
	// instant placement but still schedule restore downloads.
	bandwidth bool
}

// xferLess orders heap entries by (round, tid): tid is the tiebreak
// that makes same-round completions process in enqueue order.
func xferLess(a, b xferEntry) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	return a.tid < b.tid
}

// xferPush adds a completion entry to the heap.
func (x *xferState) xferPush(e xferEntry) {
	x.heap = append(x.heap, e)
	i := len(x.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !xferLess(x.heap[i], x.heap[parent]) {
			break
		}
		x.heap[i], x.heap[parent] = x.heap[parent], x.heap[i]
		i = parent
	}
}

// xferPop removes and returns the earliest entry.
func (x *xferState) xferPop() xferEntry {
	top := x.heap[0]
	last := len(x.heap) - 1
	x.heap[0] = x.heap[last]
	x.heap = x.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(x.heap) && xferLess(x.heap[l], x.heap[small]) {
			small = l
		}
		if r < len(x.heap) && xferLess(x.heap[r], x.heap[small]) {
			small = r
		}
		if small == i {
			return top
		}
		x.heap[i], x.heap[small] = x.heap[small], x.heap[i]
		i = small
	}
}

// scheduleXfer records a transfer's (possibly new) completion round.
func (x *xferState) scheduleXfer(t *transfer.Transfer) {
	x.xferPush(xferEntry{round: t.CompleteAt, tid: t.ID})
}

// transferEvent builds the probe payload for a transfer at the given
// round.
func transferEvent(round int64, t *transfer.Transfer) TransferEvent {
	host := -1
	if t.Kind == transfer.Upload {
		host = int(t.Host.ID)
	}
	return TransferEvent{
		Round:   round,
		ID:      t.ID,
		Kind:    t.Kind,
		Owner:   int(t.Owner.ID),
		Host:    host,
		Blocks:  t.Blocks,
		Elapsed: round - t.Enqueued,
	}
}

// emitTransfer dispatches one transfer lifecycle event.
func (s *Simulation) emitTransfer(kind int, ev TransferEvent) {
	for _, pr := range s.dispatch[kind] {
		switch kind {
		case evTransferStart:
			pr.OnTransferStart(ev)
		case evTransferComplete:
			pr.OnTransferComplete(ev)
		case evTransferAbort:
			pr.OnTransferAbort(ev)
		}
	}
}

// stepRestores fires this round's restore-demand events, before churn
// so the demand draw order is a pure function of the round. The demand
// coin is flipped for every population slot in ascending order
// regardless of eligibility, keeping the rng stream independent of
// protocol state.
func (s *Simulation) stepRestores(round int64) {
	for i := range s.cfg.Restores {
		sp := &s.cfg.Restores[i]
		if sp.Round != round {
			continue
		}
		for id := 0; id < s.cfg.NumPeers; id++ {
			if sp.Fraction < 1 && !s.r.Bool(sp.Fraction) {
				continue
			}
			s.startRestore(round, overlay.PeerID(id))
		}
	}
}

// startRestore enqueues an archive restore for a peer, if it has a
// complete archive and is not already restoring. An offline demander's
// download starts suspended and resumes with its session.
func (s *Simulation) startRestore(round int64, id overlay.PeerID) {
	x := s.xfer
	if x.restore[id] >= 0 || !s.maint.Included(id) {
		return
	}
	t := x.sched.EnqueueRestore(round, s.tab.Ref(id), s.cfg.DataBlocks)
	x.restore[id] = t.ID
	x.scheduleXfer(t)
	s.emitTransfer(evTransferStart, transferEvent(round, t))
	if !s.peers[id].online {
		x.sched.SuspendPeer(id, round)
	}
}

// stepTransfers drains this round's due completions, after the churn
// walk: a death or offline event in the same round wins over the
// completion (the transfer aborted or suspended before it could land).
// Entries are processed in (round, tid) order; stale entries — their
// transfer suspended, rescheduled or gone — are discarded.
func (s *Simulation) stepTransfers(round int64) {
	x := s.xfer
	for len(x.heap) > 0 && x.heap[0].round <= round {
		e := x.xferPop()
		t, ok := x.sched.Get(e.tid)
		if !ok || t.Suspended || t.CompleteAt != e.round {
			continue
		}
		if t.Kind == transfer.Upload {
			s.completeUpload(round, t)
		} else {
			s.completeRestore(round, t)
		}
	}
}

// completeUpload lands one block: the scheduler releases its
// reservation, the maintainer places the block, and if it was the
// episode's last the repair is reported from here (bandwidth mode's
// equivalent of the instant path's step-time emission).
func (s *Simulation) completeUpload(round int64, t *transfer.Transfer) {
	owner, host := t.Owner, t.Host
	if !s.tab.Current(owner) || !s.tab.Current(host) {
		// Deaths abort transfers before completions run; a stale
		// endpoint here means an abort hook was missed.
		panic(fmt.Sprintf("sim: transfer %d completing with stale endpoint (%d->%d)", t.ID, owner.ID, host.ID))
	}
	s.xfer.sched.Complete(t)
	res, done := s.maint.DeliverUpload(owner.ID, host.ID)
	s.emitTransfer(evTransferComplete, transferEvent(round, t))
	if !done {
		return
	}
	re := RepairEvent{
		PeerEvent: s.peerEvent(round, owner.ID),
		Initial:   res.Outcome == maintenance.OutcomeInitialDone,
		Uploaded:  res.Uploaded,
		Dropped:   res.Dropped,
		Elapsed:   round - s.maint.EpisodeStart(owner.ID),
	}
	for _, pr := range s.dispatch[evRepair] {
		pr.OnRepair(re)
	}
}

// completeRestore finishes an archive download — if enough blocks are
// visible to decode. A restore that finds fewer than k blocks visible
// keeps polling: the bits flowed, but the archive cannot be rebuilt
// until enough partners are back.
func (s *Simulation) completeRestore(round int64, t *transfer.Transfer) {
	x := s.xfer
	id := t.Owner.ID
	if !s.tab.Current(t.Owner) {
		panic(fmt.Sprintf("sim: restore %d completing for stale owner %d", t.ID, id))
	}
	if s.led.Visible(id) < s.cfg.DataBlocks {
		x.sched.Retry(t, round)
		x.scheduleXfer(t)
		return
	}
	x.sched.Complete(t)
	x.restore[id] = -1
	s.emitTransfer(evTransferComplete, transferEvent(round, t))
}

// xferSuspend interrupts the in-flight transfers touching a peer that
// went offline.
func (s *Simulation) xferSuspend(round int64, id overlay.PeerID) {
	s.xfer.sched.SuspendPeer(id, round)
}

// xferResume re-books the suspended transfers touching a peer that came
// back online and schedules their new completions.
func (s *Simulation) xferResume(round int64, id overlay.PeerID) {
	resumed := s.xfer.sched.ResumePeer(id, round, s.peerOnline)
	for _, t := range resumed {
		s.xfer.scheduleXfer(t)
	}
}

// peerOnline reports a population slot's session state (the scheduler's
// resume predicate).
func (s *Simulation) peerOnline(id overlay.PeerID) bool { return s.peers[id].online }

// xferAbortAll kills every transfer touching a departing peer and
// reports the aborts. A restore the departed peer owned is gone with
// it.
func (s *Simulation) xferAbortAll(round int64, id overlay.PeerID) {
	x := s.xfer
	for _, t := range x.sched.AbortPeer(id) {
		if t.Kind == transfer.Restore {
			x.restore[t.Owner.ID] = -1
		}
		s.emitTransfer(evTransferAbort, transferEvent(round, t))
	}
}

// xferAbortOwner kills the transfers a slot owns (hard loss: the
// in-flight blocks belong to the abandoned archive), leaving transfers
// it merely hosts intact.
func (s *Simulation) xferAbortOwner(round int64, id overlay.PeerID) {
	x := s.xfer
	for _, t := range x.sched.AbortOwner(id) {
		if t.Kind == transfer.Restore {
			x.restore[t.Owner.ID] = -1
		}
		s.emitTransfer(evTransferAbort, transferEvent(round, t))
	}
}

// simXfer adapts the simulation to maintenance.Transfers without an
// extra allocation per call. Only installed when the class mix is
// non-instant.
type simXfer Simulation

// BeginUpload implements maintenance.Transfers: enqueue one block on
// the owner's uplink and schedule its completion.
func (e *simXfer) BeginUpload(owner overlay.PeerID, host overlay.Ref) {
	s := (*Simulation)(e)
	t := s.xfer.sched.EnqueueUpload(s.round, s.tab.Ref(owner), host)
	s.xfer.scheduleXfer(t)
	s.emitTransfer(evTransferStart, transferEvent(s.round, t))
}

// Inflight implements maintenance.Transfers.
func (e *simXfer) Inflight(owner overlay.PeerID) int {
	return (*Simulation)(e).xfer.sched.Inflight(owner)
}

// UploadSlots implements maintenance.Transfers.
func (e *simXfer) UploadSlots(owner overlay.PeerID) int {
	return (*Simulation)(e).xfer.sched.UploadSlots(owner)
}

// Reserved implements maintenance.Transfers.
func (e *simXfer) Reserved(host overlay.PeerID) int {
	return (*Simulation)(e).xfer.sched.Reserved(host)
}

// PendingHosts implements maintenance.Transfers.
func (e *simXfer) PendingHosts(owner overlay.PeerID, buf []overlay.PeerID) []overlay.PeerID {
	return (*Simulation)(e).xfer.sched.PendingHosts(owner, buf)
}
