package sim

// Scenario support: correlated-failure shocks and trace replay. The
// paper evaluates against i.i.d. profile churn only; the heterogeneity
// literature (Skowron & Rzadca; Dell'Amico et al.) shows that diurnal
// cycles and correlated failures materially change redundancy and
// repair outcomes, so the engine accepts them as first-class workload
// modifiers:
//
//   - diurnal availability rides on Config.Avail (churn.DiurnalModel,
//     dispatched through churn.SessionLengthAt);
//   - shocks are Config.Shocks, applied at the top of each round before
//     churn and maintenance, and reported to probes via OnShock;
//   - trace replay is Config.Replay: the recorded churn stream drives
//     membership and sessions deterministically instead of the profile
//     sampler, which is what makes paired comparisons (same churn,
//     different strategy) possible.

import (
	"fmt"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/overlay"
)

// ShockSpec schedules one correlated-failure event class: a power or
// ISP outage that takes down many peers in the same round. A spec
// fires either deterministically (at Round) or stochastically (each
// round with probability Rate; Rate > 0 takes precedence over Round).
//
// When it fires, the shock selects a victim pool — the whole population
// or one of Regions contiguous slots ranges, modelling geographic
// correlation — and hits each pool member independently with
// probability Fraction.
type ShockSpec struct {
	// Name labels the shock in events and reports.
	Name string
	// Round is the scheduled firing round; used when Rate is zero.
	Round int64
	// Rate, when positive, fires the shock stochastically with this
	// per-round probability instead of the schedule.
	Rate float64
	// Fraction in (0, 1] is the per-peer hit probability within the
	// victim pool.
	Fraction float64
	// Regions > 1 partitions the population into that many contiguous
	// slot ranges and each firing hits one uniformly chosen region;
	// 0 or 1 means the pool is the whole population.
	Regions int
	// Kill makes victims depart permanently (their blocks are lost and
	// the slot is re-filled, the paper's departure model); otherwise
	// victims only go offline for Outage rounds.
	Kill bool
	// Outage is how many rounds offline victims stay down; 0 defaults
	// to one day. Ignored when Kill is set.
	Outage int64
}

// Validate checks one shock spec.
func (sp ShockSpec) Validate() error {
	if sp.Fraction <= 0 || sp.Fraction > 1 {
		return fmt.Errorf("sim: shock %q fraction %v outside (0,1]", sp.Name, sp.Fraction)
	}
	if sp.Rate < 0 || sp.Rate >= 1 {
		return fmt.Errorf("sim: shock %q rate %v outside [0,1)", sp.Name, sp.Rate)
	}
	if sp.Rate == 0 && sp.Round < 0 {
		return fmt.Errorf("sim: shock %q scheduled at negative round %d", sp.Name, sp.Round)
	}
	if sp.Regions < 0 {
		return fmt.Errorf("sim: shock %q has negative region count %d", sp.Name, sp.Regions)
	}
	if sp.Outage < 0 {
		return fmt.Errorf("sim: shock %q has negative outage %d", sp.Name, sp.Outage)
	}
	return nil
}

// stepShocks fires every due shock at the top of a round, before churn
// and maintenance, so the same round's repairs already see the damage.
// Shocks consume randomness from the run's generator (unlike probes),
// so configuring them changes the trajectory — but identically for
// identical seeds.
func (s *Simulation) stepShocks(round int64) {
	for i := range s.cfg.Shocks {
		sp := &s.cfg.Shocks[i]
		var fire bool
		if sp.Rate > 0 {
			fire = s.r.Bool(sp.Rate)
		} else {
			fire = round == sp.Round
		}
		if !fire {
			continue
		}
		lo, hi := 0, s.cfg.NumPeers
		if sp.Regions > 1 {
			reg := s.r.Intn(sp.Regions)
			lo = s.cfg.NumPeers * reg / sp.Regions
			hi = s.cfg.NumPeers * (reg + 1) / sp.Regions
		}
		victims := 0
		for id := lo; id < hi; id++ {
			if sp.Fraction < 1 && !s.r.Bool(sp.Fraction) {
				continue
			}
			p := &s.peers[id]
			if sp.Kill {
				if p.death <= round {
					continue // already departing this round
				}
				p.death = round // replaced by the churn phase below
				s.scheduleEarlier(overlay.PeerID(id), round)
				victims++
				continue
			}
			if !p.online {
				continue // a power cut cannot take down an offline peer
			}
			s.setOnline(round, overlay.PeerID(id), p, false)
			p.toggle = addClamped(round, sp.Outage)
			// The outage usually pushes the toggle later than the wake
			// already scheduled; the stale wake resolves as a spurious
			// visit. Only an earlier toggle needs a new calendar entry.
			s.scheduleEarlier(overlay.PeerID(id), p.toggle)
			victims++
		}
		ev := ShockEvent{Round: round, Index: i, Name: sp.Name, Victims: victims, Killed: sp.Kill}
		for _, pr := range s.dispatch[evShock] {
			pr.OnShock(ev)
		}
	}
}

// ---------------------------------------------------------------------------
// Trace replay

// replayScript is a compiled churn trace: events sorted into engine
// order with, for every join event, the occupant's departure round
// precomputed so selection oracles see ground-truth remaining lifetime.
type replayScript struct {
	events []churn.Event
	death  []int64 // per event index, meaningful for EvJoin events
	next   int     // cursor into events
}

// compileReplay validates a trace against the engine's fixed-population
// model and compiles it into a replayScript. The rules mirror what
// RecordTrace emits:
//
//   - every slot in [0, numPeers) joins at round 0 (the population is
//     always full);
//   - a leave is immediately followed by a join of the same slot in the
//     same round (departures are replaced at once);
//   - session events only occur for occupied slots.
func compileReplay(t *churn.Trace, numPeers int) (*replayScript, error) {
	if t == nil || len(t.Events) == 0 {
		return nil, fmt.Errorf("sim: replay trace is empty")
	}
	// Traces from tracegen, WriteCSV round-trips and the engine's own
	// recorder are already in engine order; skip the copy + O(E log E)
	// sort then, so a campaign replaying one large trace across many
	// variants shares the caller's slice read-only instead of cloning
	// it per run.
	events := t.Events
	if !t.IsSorted() {
		sorted := &churn.Trace{Events: append([]churn.Event(nil), events...)}
		sorted.Sort()
		events = sorted.Events
	}
	death := make([]int64, len(events))
	openJoin := make([]int, numPeers) // event index of the occupying join, -1 when vacant
	for i := range openJoin {
		openJoin[i] = -1
	}
	everJoined := make([]bool, numPeers)
	for i, e := range events {
		if e.Peer < 0 || int(e.Peer) >= numPeers {
			return nil, fmt.Errorf("sim: replay event %d: peer %d outside population [0,%d)", i, e.Peer, numPeers)
		}
		id := int(e.Peer)
		switch e.Kind {
		case churn.EvJoin:
			if openJoin[id] >= 0 {
				return nil, fmt.Errorf("sim: replay round %d: peer %d joins while already a member", e.Round, e.Peer)
			}
			if !everJoined[id] && e.Round != 0 {
				return nil, fmt.Errorf("sim: replay peer %d first joins at round %d; the fixed-population model needs every slot occupied from round 0", e.Peer, e.Round)
			}
			everJoined[id] = true
			openJoin[id] = i
			death[i] = never
		case churn.EvLeave:
			if openJoin[id] < 0 {
				return nil, fmt.Errorf("sim: replay round %d: peer %d leaves without having joined", e.Round, e.Peer)
			}
			death[openJoin[id]] = e.Round
			openJoin[id] = -1
			// Departures are replaced immediately: the sort order puts
			// the replacement join right after this leave.
			if i+1 >= len(events) || events[i+1].Peer != e.Peer || events[i+1].Round != e.Round || events[i+1].Kind != churn.EvJoin {
				return nil, fmt.Errorf("sim: replay round %d: peer %d leaves without a same-round replacement join (departures are replaced immediately)", e.Round, e.Peer)
			}
		case churn.EvOnline, churn.EvOffline:
			if openJoin[id] < 0 {
				return nil, fmt.Errorf("sim: replay round %d: session event for vacant slot %d", e.Round, e.Peer)
			}
		default:
			return nil, fmt.Errorf("sim: replay event %d: unknown kind %v", i, e.Kind)
		}
	}
	for id, ok := range everJoined {
		if !ok {
			return nil, fmt.Errorf("sim: replay trace never populates slot %d of %d (set NumPeers from Trace.MaxPeer()+1)", id, numPeers)
		}
	}
	return &replayScript{events: events, death: death}, nil
}

// applyReplay consumes this round's trace events, mutating peer slots
// exactly as the generative churn phase would but without consuming any
// randomness: membership and sessions come verbatim from the trace.
func (s *Simulation) applyReplay(round int64) {
	rp := s.replay
	for rp.next < len(rp.events) && rp.events[rp.next].Round == round {
		e := rp.events[rp.next]
		idx := rp.next
		rp.next++
		id := overlay.PeerID(e.Peer)
		p := &s.peers[id]
		switch e.Kind {
		case churn.EvLeave:
			dead := s.peerEvent(round, id)
			for _, pr := range s.dispatch[evDeath] {
				pr.OnDeath(dead)
			}
			s.emitChurn(round, id, churn.EvLeave, int(p.profile))
			s.deaths++
			s.catPop[p.cat]--
			s.led.RemovePeer(id)
			s.tab.Bump(id)
			if s.xfer != nil {
				s.xferAbortAll(round, id)
			}
			s.maint.Reset(id)
		case churn.EvJoin:
			prof := int(e.Profile)
			if prof < 0 || prof >= s.cfg.Profiles.Len() {
				prof = 0 // legacy/external traces without profile attribution
			}
			p.profile = int32(prof)
			p.avail = s.cfg.Profiles.Profile(prof).Availability
			if s.xfer != nil {
				// Like initPeer: a single-class mix consumes no
				// randomness, keeping replayed runs deterministic.
				s.xfer.sched.AssignClass(id, s.xfer.sched.Params().SampleIndex(s.r))
			}
			p.join = round
			p.cat = metrics.Newcomer
			s.catPop[metrics.Newcomer]++
			p.catChange = addClamped(round, metrics.CategoryBound(metrics.Newcomer))
			s.scheduleEarlier(id, p.catChange)
			p.death = rp.death[idx]
			p.toggle = never // sessions come from the trace
			p.online = false
			s.led.SetOnline(id, false)
			s.resetHistory(id) // fresh identity: observations start over
			s.invalidateSlot(id)
			s.recordSession(round, id, false)
			s.emitChurn(round, id, churn.EvJoin, prof)
		case churn.EvOnline:
			if !p.online {
				s.setOnline(round, id, p, true)
			} else {
				s.emitChurn(round, id, churn.EvOnline, int(p.profile))
			}
		case churn.EvOffline:
			if p.online {
				s.setOnline(round, id, p, false)
			} else {
				s.emitChurn(round, id, churn.EvOffline, int(p.profile))
			}
		}
	}
}
