// Package redundancy implements the adaptive per-archive redundancy
// policy layer: an online controller that retunes each archive's target
// block count n(t) from monitored partner availability, after
// Dell'Amico et al., "Adaptive Redundancy Management for Durable P2P
// Backup" (arXiv 1201.2360).
//
// The paper this repository reproduces fixes the erasure shape (n, k)
// and the repair threshold k' for a whole run. This package relaxes
// that: a Policy observes an archive's monitored availability estimate
// (the mean uptime of its partners over the monitoring window, exactly
// the substrate monitor.IntervalHistory maintains) and decides whether
// the archive should grow — encode and place extra parity blocks — or
// shrink — retire surplus placements, releasing peer storage. The
// estimate behind the decision is the binomial tail Durability(n, k',
// p): the probability the archive holds at least k' available blocks,
// so the configured repair cushion k'-k stays intact at every n(t); the
// upload cost of a grow decision is priced by
// costmodel.ParityUploadCost.
//
// Policies resolve through a spec-string registry mirroring
// selection.Register/Parse:
//
//	fixed                                       the inert paper behaviour
//	adaptive                                    defaults: min=k', max=n, target=0.99999
//	adaptive:min=160,max=256,target=0.95
//	adaptive:target=0.9999,hysteresis=4,eval=48
//
// The simulation engine consults the bound policy on a fixed
// per-archive cadence (EvalEvery), drawing any randomness the
// evaluation needs — partner subsampling — from a scratch stream
// derived via rng.Derive, never from the engine's canonical stream, so
// fixed-mode runs are bit-identical to pre-adaptive runs and adaptive
// runs are bit-identical at every shard count.
package redundancy

import (
	"fmt"
	"math"
)

// Observation is what a Policy sees when it evaluates one archive.
type Observation struct {
	// Round is the evaluation round.
	Round int64
	// Current is the archive's current target block count n(t).
	Current int
	// DataBlocks is k, the blocks needed to decode.
	DataBlocks int
	// Availability is the monitored availability estimate for the
	// archive's blocks: the mean uptime of (a sample of) its partners
	// over the monitoring window.
	Availability float64
}

// Policy decides per-archive redundancy targets. Implementations are
// immutable values, safe to share between concurrently running
// simulations; Bind resolves a parsed policy against a concrete code
// shape before use.
type Policy interface {
	// Name returns the registry spec name.
	Name() string
	// Static reports that the policy never deviates from the configured
	// code shape; the engine keeps its zero-cost fixed path and draws no
	// extra randomness when it is set.
	Static() bool
	// Bind resolves the policy against a code shape (k data blocks,
	// repair threshold k', n total blocks), filling shape-relative
	// defaults and validating the result. It returns the bound policy.
	Bind(k, kprime, n int) (Policy, error)
	// Initial returns the target block count of a freshly encoded
	// archive (the initial upload's d).
	Initial(k, n int) int
	// Target returns the desired target block count for one archive.
	// Growing is any return above obs.Current; shrinking below it.
	Target(obs Observation) int
	// EvalEvery returns the per-archive evaluation cadence in rounds.
	EvalEvery() int64
	// SamplePeers returns how many partners an evaluation probes for
	// the availability estimate (the monitoring cost bound).
	SamplePeers() int
}

// Durability returns the probability that an archive of n blocks, each
// independently available with probability p, has at least k blocks
// available — the binomial decode probability behind every adaptive
// decision. Computed in log space (math.Lgamma), stable for any n the
// simulator uses.
func Durability(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if n < k || p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lp := math.Log(p)
	lq := math.Log1p(-p)
	lgn, _ := math.Lgamma(float64(n + 1))
	sum := 0.0
	for i := k; i <= n; i++ {
		lgi, _ := math.Lgamma(float64(i + 1))
		lgni, _ := math.Lgamma(float64(n - i + 1))
		sum += math.Exp(lgn - lgi - lgni + float64(i)*lp + float64(n-i)*lq)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// EffectiveThreshold maps an archive's target block count to its repair
// threshold. The configured slack k'-k is kept as an ABSOLUTE cushion,
// never scaled down with n(t): that slack is the number of simultaneous
// host failures a triggered repair can ride out before the archive
// drops below k and is lost, and a shrunk archive needs every one of
// those blocks more than a full-size one does. (An early draft scaled
// the slack proportionally with n(t)-k; at n(t) around 1.3k that left
// single-digit cushions and measurably worse object durability than the
// fixed policy.) The result is clamped to [k, target]: an archive
// deliberately sized below k' repairs as soon as any block is missing.
func EffectiveThreshold(k, kprime, n, target int) int {
	if target >= n || n <= k {
		return kprime
	}
	thr := kprime
	if thr > target {
		thr = target
	}
	if thr < k {
		thr = k
	}
	return thr
}

// Default knobs of the adaptive built-in.
const (
	// DefaultTargetDurability is the probability of holding >= k'
	// available blocks the adaptive policy sizes archives for when the
	// spec omits target=. Five nines keeps cumulative object losses at
	// the fixed policy's level while still undercutting its storage
	// bill: a lax target (say 0.9) would halve the footprint but bleed
	// archives.
	DefaultTargetDurability = 0.99999
	// DefaultHysteresis is how many surplus blocks an archive may carry
	// before the policy bothers shrinking it (flap damping: sampled
	// availability estimates jitter, and every shrink a later grow
	// regrets is paid for in uplink time).
	DefaultHysteresis = 6
	// DefaultEvalEvery is the per-archive evaluation cadence in rounds
	// (one day: availability estimates move on session time scales).
	DefaultEvalEvery int64 = 24
	// DefaultSamplePeers is how many partners an evaluation probes.
	DefaultSamplePeers = 16
	// MaxShrinkPerEval caps how many blocks one evaluation may retire.
	// Shrinking is the only move that can be wrong in the dangerous
	// direction, and it acts on an estimate; descending stepwise means a
	// mis-measured archive is at most one step below where the next
	// evaluation can halt it, instead of arbitrarily deep. Growing is
	// never capped — a deficit is repaired in full immediately.
	MaxShrinkPerEval = 8
)

// Fixed is the inert built-in policy: the paper's behaviour, byte
// identical to a run without any redundancy layer. The engine treats a
// Static policy as "no policy" and keeps its historical fast path.
type Fixed struct{}

// Name implements Policy.
func (Fixed) Name() string { return "fixed" }

// Static implements Policy: Fixed never deviates.
func (Fixed) Static() bool { return true }

// Bind implements Policy; Fixed binds to any valid shape.
func (Fixed) Bind(k, kprime, n int) (Policy, error) { return Fixed{}, nil }

// Initial implements Policy: archives start at the full n.
func (Fixed) Initial(k, n int) int { return n }

// Target implements Policy: the target never moves.
func (Fixed) Target(obs Observation) int { return obs.Current }

// EvalEvery implements Policy (unused: the engine never evaluates a
// static policy).
func (Fixed) EvalEvery() int64 { return 1 }

// SamplePeers implements Policy (unused for a static policy).
func (Fixed) SamplePeers() int { return 0 }

// Adaptive sizes each archive to the smallest n(t) in [Min, Max] that
// keeps at least k' blocks available with probability TargetDurability
// at the monitored partner availability, shrinking only when the
// surplus exceeds Hysteresis blocks. Sizing against the repair
// threshold k' rather than against k is deliberate: holding >= k'
// preserves the full configured cushion of k'-k block failures between
// "repair triggers" and "archive lost", so the hard-loss probability
// sits orders of magnitude below 1-TargetDurability. The zero value of
// a bound field means "resolve from the code shape at Bind": Min
// becomes k' (below it the archive would trigger a repair on arrival),
// Max becomes the configured n (the ledger's preallocated ceiling).
type Adaptive struct {
	// Min and Max bound the target block count. 0 resolves at Bind to
	// k' and n respectively.
	Min, Max int
	// TargetDurability is the probability, in (0, 1), that an archive
	// holds at least k' available blocks at the monitored availability.
	TargetDurability float64
	// Hysteresis is the surplus (in blocks) tolerated before shrinking.
	Hysteresis int
	// Eval is the per-archive evaluation cadence in rounds.
	Eval int64
	// Sample is how many partners an evaluation probes.
	Sample int

	// kprime is the code shape's repair threshold, recorded at Bind; it
	// is what Target sizes archives against.
	kprime int
}

// Name implements Policy.
func (a Adaptive) Name() string { return "adaptive" }

// Static implements Policy: Adaptive retunes archives online.
func (a Adaptive) Static() bool { return false }

// Bind implements Policy: zero bounds resolve to [k', n] and the result
// is checked against the shape (k < Min <= Max <= n).
func (a Adaptive) Bind(k, kprime, n int) (Policy, error) {
	b := a
	if b.Min == 0 {
		b.Min = kprime
	}
	if b.Max == 0 {
		b.Max = n
	}
	if b.TargetDurability == 0 {
		b.TargetDurability = DefaultTargetDurability
	}
	if b.Eval == 0 {
		b.Eval = DefaultEvalEvery
	}
	if b.Sample == 0 {
		b.Sample = DefaultSamplePeers
	}
	if b.Min <= k {
		return nil, fmt.Errorf("%w: adaptive: min=%d must exceed k=%d", ErrBadSpec, b.Min, k)
	}
	if b.Min > b.Max {
		return nil, fmt.Errorf("%w: adaptive: min=%d exceeds max=%d", ErrBadSpec, b.Min, b.Max)
	}
	if b.Max > n {
		return nil, fmt.Errorf("%w: adaptive: max=%d exceeds the configured n=%d (the ledger's preallocated ceiling)", ErrBadSpec, b.Max, n)
	}
	if !(b.TargetDurability > 0 && b.TargetDurability < 1) {
		return nil, fmt.Errorf("%w: adaptive: target=%v outside (0, 1)", ErrBadSpec, b.TargetDurability)
	}
	if b.Hysteresis < 0 {
		return nil, fmt.Errorf("%w: adaptive: hysteresis=%d must be >= 0", ErrBadSpec, b.Hysteresis)
	}
	if b.Eval < 1 {
		return nil, fmt.Errorf("%w: adaptive: eval=%d must be >= 1", ErrBadSpec, b.Eval)
	}
	if b.Sample < 1 {
		return nil, fmt.Errorf("%w: adaptive: sample=%d must be >= 1", ErrBadSpec, b.Sample)
	}
	b.kprime = kprime
	return b, nil
}

// Initial implements Policy: adaptive archives start at the FULL
// provision (Max) and shrink only once evidence accumulates. A fresh
// archive has zero availability measurements, and at the paper's shape
// an archive born at Min = k' expects fewer than k blocks visible —
// undecodable more often than not, and one unlucky week from permanent
// loss. Starting minimal-and-growing (the classic adaptive-redundancy
// framing) re-enters that fragile state on every occupant replacement;
// starting full costs at most one eval cadence of extra storage before
// the first measured shrink.
func (a Adaptive) Initial(k, n int) int {
	if a.Max > 0 {
		return a.Max
	}
	return n
}

// Target implements Policy: the smallest n(t) in [Min, Max] holding at
// least k' available blocks with probability TargetDurability at the
// observed availability, with shrink hysteresis. On an unbound policy
// (no recorded k') the sizing falls back to the decode bound k.
func (a Adaptive) Target(obs Observation) int {
	thr := a.kprime
	if thr < obs.DataBlocks {
		thr = obs.DataBlocks
	}
	need := a.Min
	for need < a.Max && Durability(need, thr, obs.Availability) < a.TargetDurability {
		need++
	}
	if need > obs.Current {
		return need // grow immediately: durability is at stake
	}
	if obs.Current-need > a.Hysteresis {
		// Shrink only past the flap-damping band, and stepwise: see
		// MaxShrinkPerEval.
		if obs.Current-need > MaxShrinkPerEval {
			return obs.Current - MaxShrinkPerEval
		}
		return need
	}
	return obs.Current
}

// EvalEvery implements Policy.
func (a Adaptive) EvalEvery() int64 {
	if a.Eval > 0 {
		return a.Eval
	}
	return DefaultEvalEvery
}

// SamplePeers implements Policy.
func (a Adaptive) SamplePeers() int {
	if a.Sample > 0 {
		return a.Sample
	}
	return DefaultSamplePeers
}
