// Package monitor tracks peer availability history, standing in for the
// secure monitoring protocols the paper assumes (its refs [17] AVMON and
// [14] Pacemaker): "any peer can query the availability of any other
// peer for a given period of time, for example the last 90 days".
//
// Two representations are provided:
//
//   - BitHistory: one bit per round in a ring buffer - exact, O(1)
//     per-round recording, fixed memory. Used by the live node, which
//     probes partners every round. Window queries use word-masked
//     popcounts: O(window/64).
//   - IntervalHistory: stores only state transitions - O(1) amortised
//     per session change, ideal for the simulator where transitions are
//     the rare events. An incrementally maintained online-time prefix
//     sum makes window queries O(log transitions in window).
//
// Queries (Uptime, OnlineAt, Transitions) are strictly read-only on
// both representations: recording prunes eagerly, queries never
// mutate. Both answer the same queries; tests verify they agree on
// random schedules.
package monitor

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfOrder reports a record at a round earlier than already seen.
var ErrOutOfOrder = errors.New("monitor: record out of order")

// ---------------------------------------------------------------------------
// BitHistory

// BitHistory stores one online/offline bit per round over a sliding
// window.
type BitHistory struct {
	window int
	words  []uint64
	// next is the round the next Record call must carry.
	next int64
	// recorded is min(total records, window).
	recorded int
	// start is the first round ever recorded.
	start int64
	began bool
}

// NewBitHistory returns a history covering the last window rounds.
func NewBitHistory(window int) *BitHistory {
	if window <= 0 {
		panic(fmt.Sprintf("monitor: invalid window %d", window))
	}
	return &BitHistory{window: window, words: make([]uint64, (window+63)/64)}
}

// Window returns the configured window length.
func (h *BitHistory) Window() int { return h.window }

// Record appends the peer's state for the given round. Rounds must be
// recorded consecutively starting from the first call.
func (h *BitHistory) Record(round int64, online bool) error {
	if !h.began {
		h.began = true
		h.start = round
		h.next = round
	}
	if round != h.next {
		return fmt.Errorf("%w: got round %d, want %d", ErrOutOfOrder, round, h.next)
	}
	idx := int(round % int64(h.window))
	word, bit := idx/64, uint(idx%64)
	if online {
		h.words[word] |= 1 << bit
	} else {
		h.words[word] &^= 1 << bit
	}
	h.next++
	if h.recorded < h.window {
		h.recorded++
	}
	return nil
}

// Recorded returns how many rounds currently back the window (at most
// Window).
func (h *BitHistory) Recorded() int { return h.recorded }

// ObservedSince returns the first recorded round; ok is false if
// nothing was recorded yet.
func (h *BitHistory) ObservedSince() (round int64, ok bool) {
	return h.start, h.began
}

// OnlineAt reports the recorded state for a round inside the window.
func (h *BitHistory) OnlineAt(round int64) (online, known bool) {
	if !h.began || round >= h.next || round < h.next-int64(h.recorded) {
		return false, false
	}
	idx := int(round % int64(h.window))
	return h.words[idx/64]>>(uint(idx%64))&1 == 1, true
}

// Uptime returns the fraction of recorded rounds spent online over the
// last n rounds (n clamped to the recorded span). Zero when nothing is
// recorded. Cost: O(n/64) via word-masked popcounts.
func (h *BitHistory) Uptime(n int) float64 {
	if n <= 0 || h.recorded == 0 {
		return 0
	}
	if n > h.recorded {
		n = h.recorded
	}
	idx := int((h.next - int64(n)) % int64(h.window))
	return float64(h.countRange(idx, n)) / float64(n)
}

// countRange counts set bits in the circular bit-index range
// [idx, idx+n) of the window ring.
func (h *BitHistory) countRange(idx, n int) int {
	if idx+n <= h.window {
		return h.countSpan(idx, n)
	}
	first := h.window - idx
	return h.countSpan(idx, first) + h.countSpan(0, n-first)
}

// countSpan counts set bits in the non-wrapping bit range [lo, lo+n)
// with word-level popcounts.
func (h *BitHistory) countSpan(lo, n int) int {
	hi := lo + n // exclusive
	w0, w1 := lo/64, (hi-1)/64
	b0 := uint(lo % 64)
	if w0 == w1 {
		mask := (^uint64(0) >> (64 - uint(n))) << b0
		return bits.OnesCount64(h.words[w0] & mask)
	}
	count := bits.OnesCount64(h.words[w0] >> b0)
	for w := w0 + 1; w < w1; w++ {
		count += bits.OnesCount64(h.words[w])
	}
	tail := uint(hi - w1*64) // bits used in the last word, 1..64
	count += bits.OnesCount64(h.words[w1] << (64 - tail) >> (64 - tail))
	return count
}

// FullWindowUptime returns the online fraction over the whole recorded
// window (kept for callers that want the intent spelled out; Uptime
// uses the same popcount fast path).
func (h *BitHistory) FullWindowUptime() float64 {
	return h.Uptime(h.recorded)
}

// ---------------------------------------------------------------------------
// IntervalHistory

// transition is a state change at a round, carrying the online-time
// prefix sum: onBefore is the cumulative number of online rounds from
// the first stored transition up to (not including) round. Queries
// answer any window as a difference of two prefix lookups.
type transition struct {
	round    int64
	onBefore int64
	online   bool
}

// IntervalHistory stores availability as state transitions in a ring
// buffer, pruned to a window as recording advances. Recording is O(1)
// amortised and allocation-free once the ring has grown to the window's
// transition count; Uptime and OnlineAt are read-only binary searches,
// O(log transitions).
type IntervalHistory struct {
	window int64
	buf    []transition
	mask   int // len(buf)-1; len(buf) is a power of two
	head   int // ring index of the oldest stored transition
	n      int // stored transitions
	began  bool
	start  int64
}

// NewIntervalHistory returns a history answering queries over the last
// window rounds.
func NewIntervalHistory(window int64) *IntervalHistory {
	if window <= 0 {
		panic(fmt.Sprintf("monitor: invalid window %d", window))
	}
	return &IntervalHistory{window: window}
}

// at returns the i-th stored transition in logical (oldest-first) order.
func (h *IntervalHistory) at(i int) *transition {
	return &h.buf[(h.head+i)&h.mask]
}

// push appends a transition, growing the ring when full.
func (h *IntervalHistory) push(t transition) {
	if h.n == len(h.buf) {
		h.grow()
	}
	h.buf[(h.head+h.n)&h.mask] = t
	h.n++
}

// grow enlarges the ring, relinearising the stored transitions. Small
// rings double; past 64 entries growth switches to 4x: a history with
// that many in-window transitions belongs to a genuinely churning peer
// whose stationary count is window-scale (a one-day session cycle over
// a 90-day window stores ~180 transitions), so jumping to that scale in
// one step spares the slow drip of high-water reallocations that
// per-boundary doubling spreads across the whole run. Always-online
// peers never grow past the initial 8.
func (h *IntervalHistory) grow() {
	newCap := 2 * len(h.buf)
	if newCap == 0 {
		newCap = 8
	} else if newCap > 64 {
		newCap = 4 * len(h.buf)
	}
	nb := make([]transition, newCap)
	for i := 0; i < h.n; i++ {
		nb[i] = *h.at(i)
	}
	h.buf = nb
	h.head = 0
	h.mask = newCap - 1
}

// RecordTransition notes that the peer's state changed to online at the
// given round (i.e. it is online from this round onward until the next
// transition). The first call establishes the initial state.
//
// Recording prunes eagerly: transitions that ended before the window
// preceding the recorded round are discarded as they expire, so memory
// stays bounded by the window even for histories that are written every
// session but rarely (or never) queried — the regime of a 50k-round
// simulation where most peers are never candidates. Recording is the
// ONLY mutating operation; queries never prune.
func (h *IntervalHistory) RecordTransition(round int64, online bool) error {
	if h.began {
		last := h.at(h.n - 1)
		if round < last.round {
			return fmt.Errorf("%w: transition at %d after %d", ErrOutOfOrder, round, last.round)
		}
		if last.online == online {
			return nil // redundant transition; ignore
		}
		if round == last.round {
			// Replace same-round flip. onBefore accumulates strictly
			// before last.round, so it is unaffected.
			last.online = online
			return nil
		}
		on := last.onBefore
		if last.online {
			on += round - last.round
		}
		h.push(transition{round: round, onBefore: on, online: online})
	} else {
		h.began = true
		h.start = round
		h.push(transition{round: round, online: online})
	}
	h.prune(round)
	return nil
}

// prune discards transitions that end before now-window, keeping the
// one that defines the state at the window start. Pruning only ever
// drops information that no in-window query can see. Prefix sums are
// absolute (anchored at the first transition ever stored since the
// last Reset), so dropping the head never requires rebasing.
func (h *IntervalHistory) prune(now int64) {
	cutoff := now - h.window
	for h.n >= 2 && h.at(1).round <= cutoff {
		h.head = (h.head + 1) & h.mask
		h.n--
	}
}

// ObservedSince returns the first transition round.
func (h *IntervalHistory) ObservedSince() (round int64, ok bool) {
	return h.start, h.began
}

// Reset clears the history, keeping the configured window and the ring
// capacity (a slot's replacement occupant reuses it allocation-free).
// Used when a monitored identity is replaced: the observations belong
// to the departed peer, not to the slot.
func (h *IntervalHistory) Reset() {
	h.head = 0
	h.n = 0
	h.began = false
	h.start = 0
}

// countAtOrBefore returns how many stored transitions have round <= x
// (binary search over the ring).
func (h *IntervalHistory) countAtOrBefore(x int64) int {
	lo, hi := 0, h.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.at(mid).round <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// onlineBefore returns the cumulative online rounds in
// [first stored transition, x), from the prefix sums.
func (h *IntervalHistory) onlineBefore(x int64) int64 {
	idx := h.countAtOrBefore(x)
	if idx == 0 {
		return 0
	}
	t := h.at(idx - 1)
	on := t.onBefore
	if t.online {
		on += x - t.round
	}
	return on
}

// Uptime returns the online fraction over [now-n, now), clamped to the
// observed span. now is exclusive. Read-only; cost O(log transitions).
func (h *IntervalHistory) Uptime(now int64, n int64) float64 {
	if !h.began || n <= 0 {
		return 0
	}
	if n > h.window {
		n = h.window
	}
	from := now - n
	if from < h.start {
		from = h.start
	}
	if from >= now {
		return 0
	}
	online := h.onlineBefore(now) - h.onlineBefore(from)
	return float64(online) / float64(now-from)
}

// OnlineAt reports the state at a given round, if observed. Rounds
// older than the pruning window of the latest recorded transition are
// unknown. Read-only; cost O(log transitions).
func (h *IntervalHistory) OnlineAt(round int64) (online, known bool) {
	if !h.began || round < h.start {
		return false, false
	}
	idx := h.countAtOrBefore(round)
	if idx == 0 {
		return false, false // all stored transitions are later (or pruned)
	}
	return h.at(idx - 1).online, true
}

// Transitions returns the number of stored transitions. The count is
// bounded by recording's eager pruning alone — queries are read-only
// and never change it.
func (h *IntervalHistory) Transitions() int { return h.n }
