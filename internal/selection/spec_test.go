package selection

import (
	"errors"
	"strings"
	"testing"

	"p2pbackup/internal/lifetime"
)

func TestParseBuiltins(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"", "age(L=2160)"}, // empty spec = the paper's default
		{"age", "age(L=2160)"},
		{"age:L=48", "age(L=48)"},
		{"age:48", "age(L=48)"}, // positional primary parameter
		{"random", "random"},
		{"availability-oracle", "availability-oracle"},
		{"lifetime-oracle", "lifetime-oracle"},
		{"youngest-first", "youngest-first"},
		{"estimator:age", "estimator:age"},
		{"estimator:pareto", "estimator:pareto"},
		{"estimator:pareto:alpha=2.5,xm=24", "estimator:pareto"},
		{"estimator:empirical", "estimator:empirical"},
		{"estimator:empirical:n=64", "estimator:empirical"},
		{"monitored-availability", "monitored-availability(W=2160)"},
		{"monitored-availability:720", "monitored-availability(W=720)"},
		{"monitored-availability:W=720", "monitored-availability(W=720)"},
	}
	for _, c := range cases {
		pol, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if pol.Name() != c.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, pol.Name(), c.name)
		}
	}
}

func TestParseWithDefaults(t *testing.T) {
	for spec, want := range map[string]string{
		"age":                    "age(L=48)",
		"estimator:age":          "estimator:age",
		"monitored-availability": "monitored-availability(W=48)",
		"age:L=7":                "age(L=7)", // explicit parameter wins
	} {
		pol, err := ParseWith(spec, Defaults{Horizon: 48})
		if err != nil {
			t.Fatalf("ParseWith(%q): %v", spec, err)
		}
		if pol.Name() != want {
			t.Errorf("ParseWith(%q) = %q, want %q", spec, pol.Name(), want)
		}
	}
}

func TestParseRejectsUnknownNames(t *testing.T) {
	for _, spec := range []string{"nope", "estimator:nope", "agee", "estimator"} {
		_, err := Parse(spec)
		if !errors.Is(err, ErrUnknownStrategy) {
			t.Errorf("Parse(%q) = %v, want ErrUnknownStrategy", spec, err)
		}
	}
}

func TestParseRejectsBadParameters(t *testing.T) {
	cases := []string{
		"age:K=5",                  // unknown key
		"age:L=xyz",                // non-integer
		"age:L=0",                  // out of range
		"age:L=-4",                 // out of range
		"random:L=5",               // parameterless strategy given a key
		"random:5",                 // ... or a positional value
		"lifetime-oracle:L=5",      // misplaced horizon
		"age:L=5,L=6",              // duplicate
		"age:5,L=6",                // positional mixed with keyed
		"age:L=",                   // malformed
		"age:,",                    // empty parameter
		"estimator:pareto:alpha=1", // alpha must exceed 1
		"estimator:pareto:xm=0",    // xm must be positive
		"estimator:pareto:beta=2",  // unknown key
		"estimator:empirical:n=1",  // too few samples
		"estimator:empirical:n=4611686018427387904", // absurd sample count
		"estimator:empirical:n=1000000000",          // over the sampling-work bound
		"estimator:pareto:alpha=NaN",                // NaN must not bypass validation
		"estimator:pareto:xm=NaN",                   // NaN must not bypass validation
		"estimator:pareto:alpha=+Inf",               // infinite tail exponent
		"monitored-availability:W=0",                // empty window
		"monitored-availability:L=10",               // wrong key for the window
		"estimator:age:W=5",                         // wrong key for the horizon
	}
	for _, spec := range cases {
		_, err := Parse(spec)
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestByNameRoutesThroughParser(t *testing.T) {
	// Historical names resolve to their historical concrete types, with
	// the horizon applied to the age strategy.
	s, err := ByName("age", 99)
	if err != nil {
		t.Fatal(err)
	}
	if ab, ok := s.(AgeBased); !ok || ab.L != 99 {
		t.Fatalf("ByName(age, 99) = %#v", s)
	}
	if s, err = ByName("", 99); err != nil {
		t.Fatal(err)
	} else if ab, ok := s.(AgeBased); !ok || ab.L != 99 {
		t.Fatalf("ByName(\"\", 99) = %#v", s)
	}
	for name, want := range map[string]any{
		"random":              Random{},
		"availability-oracle": AvailabilityOracle{},
		"lifetime-oracle":     LifetimeOracle{},
		"youngest-first":      YoungestFirst{},
	} {
		s, err := ByName(name, 99)
		if err != nil {
			t.Fatal(err)
		}
		if s != want {
			t.Fatalf("ByName(%q) = %#v, want %#v", name, s, want)
		}
	}
	// The horizon argument now reaches every parameterisable spec, not
	// just age.
	if s, err = ByName("monitored-availability", 77); err != nil {
		t.Fatal(err)
	} else if s.Name() != "monitored-availability(W=77)" {
		t.Fatalf("ByName(monitored-availability, 77) = %q", s.Name())
	}
	// Full specs and their parameter validation flow through too.
	if _, err = ByName("age:L=7", 99); err != nil {
		t.Fatal(err)
	}
	if _, err = ByName("random:L=7", 99); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("ByName(random:L=7) = %v, want ErrBadSpec", err)
	}
	if _, err = ByName("nope", 99); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("ByName(nope) = %v, want ErrUnknownStrategy", err)
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	names := Names()
	// The historical five stay first, in their historical order: the
	// strategy campaigns derive variant seeds from these indexes.
	historical := []string{"age", "random", "availability-oracle", "lifetime-oracle", "youngest-first"}
	for i, want := range historical {
		if names[i] != want {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], want)
		}
	}
	for _, want := range []string{"estimator:age", "estimator:pareto", "estimator:empirical", "monitored-availability"} {
		if !strings.Contains(strings.Join(names, " "), want) {
			t.Fatalf("Names() = %v missing %q", names, want)
		}
	}
	for _, n := range names {
		if _, err := Parse(n); err != nil {
			t.Errorf("registered name %q does not parse bare: %v", n, err)
		}
	}
}

func TestRegisterCustomSpec(t *testing.T) {
	// Registering and parsing a custom strategy, with parameters.
	Register("test:constant", func(p *SpecParams) (Policy, error) {
		c := p.Float("c", 1)
		return EstimatorRanked{Est: lifetime.AgeRank{Horizon: c}, Label: "test:constant"}, nil
	})
	pol, err := Parse("test:constant:c=5")
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "test:constant" {
		t.Fatalf("custom policy name = %q", pol.Name())
	}
	if _, err := Parse("test:constant:d=5"); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("unknown custom parameter accepted: %v", err)
	}
	// Duplicate registration panics.
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("test:constant", func(p *SpecParams) (Policy, error) { return nil, nil })
}

func TestEstimatorSpecsAreDeterministic(t *testing.T) {
	// estimator:empirical draws its backing samples with a fixed seed:
	// two parses must score identically.
	a, err := Parse("estimator:empirical")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("estimator:empirical")
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Round: 1000}
	for age := int64(0); age < 5000; age += 97 {
		v := View{Observed: Observed{Age: age}}
		if a.Score(ctx, v) != b.Score(ctx, v) {
			t.Fatalf("estimator:empirical not deterministic at age %d", age)
		}
	}
}
