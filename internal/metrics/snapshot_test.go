package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// populatedCollector builds a collector with every counter class
// touched, including awkward float values that expose lossy encodings.
func populatedCollector() *Collector {
	c := NewCollector(3, 24, 48)
	for round := int64(0); round < 24*10; round++ {
		var pop [NumCategories]int64
		pop[Newcomer] = 7
		pop[Young] = 3
		c.AddPeerRounds(round, Newcomer, 7)
		c.AddPeerRounds(round, Young, 3)
		if round%5 == 0 {
			c.RecordRepair(round, Newcomer, int(round)%3, round%10 == 0, 3, 1)
		}
		if round%17 == 0 {
			c.RecordOutage(round, Young, int(round)%3)
		}
		if round%31 == 0 {
			c.RecordHardLoss(round, Young, int(round)%3)
		}
		if round == 100 {
			c.RecordShock(round, 5)
		}
		if round%7 == 0 {
			c.RecordBackupTime(round, float64(round)/3.0)
		}
		if round%11 == 0 {
			c.RecordRestoreTime(round, math.Sqrt(float64(round+2)))
		}
		if round == 120 {
			c.RecordRestoreFailed(round)
		}
		if round%13 == 0 {
			c.RecordRedundancyChange(round, 128, 128+int(round%5)-2)
		}
		c.RecordRedundancyLevel(round, 128.0+1.0/3.0)
		if round%29 == 0 {
			c.RecordStall(round, Newcomer)
		}
		c.EndRound(round, pop)
	}
	return c
}

func TestCollectorJSONRoundTrip(t *testing.T) {
	c := populatedCollector()
	raw, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Collector
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", raw, raw2)
	}

	// Spot-check derived accessors for bit-equality, not just encoding
	// stability: rates divide int64 counters, quantiles sort replayed
	// samples, series carry float points.
	for cat := Category(0); cat < NumCategories; cat++ {
		if got, want := back.RepairRatePer1000(cat, true), c.RepairRatePer1000(cat, true); got != want {
			t.Errorf("%v repair rate: got %v want %v", cat, got, want)
		}
		if got, want := back.LossRatePer1000(cat), c.LossRatePer1000(cat); got != want {
			t.Errorf("%v loss rate: got %v want %v", cat, got, want)
		}
		a, b := c.LossSeries(cat), back.LossSeries(cat)
		if a.Len() != b.Len() {
			t.Fatalf("%v loss series len: got %d want %d", cat, b.Len(), a.Len())
		}
		for i := 0; i < a.Len(); i++ {
			ax, ay := a.At(i)
			bx, by := b.At(i)
			if ax != bx || ay != by {
				t.Errorf("%v loss series point %d: got (%v,%v) want (%v,%v)", cat, i, bx, by, ax, ay)
			}
		}
	}
	for _, q := range []float64{0.5, 0.95} {
		if got, want := back.TimeToBackup().Quantile(q), c.TimeToBackup().Quantile(q); got != want {
			t.Errorf("ttb q%v: got %v want %v", q, got, want)
		}
	}
	if got, want := back.TimeToRestore().Mean(), c.TimeToRestore().Mean(); got != want {
		t.Errorf("ttr mean: got %v want %v", got, want)
	}
	if back.RestoresFailed() != c.RestoresFailed() {
		t.Errorf("restores failed: got %d want %d", back.RestoresFailed(), c.RestoresFailed())
	}
	if back.ShockAttributedLosses() != c.ShockAttributedLosses() {
		t.Errorf("shock losses: got %d want %d", back.ShockAttributedLosses(), c.ShockAttributedLosses())
	}
	if back.ParityBlocksAdded() != c.ParityBlocksAdded() || back.ParityBlocksReclaimed() != c.ParityBlocksReclaimed() {
		t.Errorf("parity counters diverged after round trip")
	}

	// The decoded collector must keep behaving like the original:
	// transient per-day accumulators travel too.
	var pop [NumCategories]int64
	pop[Newcomer] = 7
	cNext, backNext := c, &back
	for round := int64(24 * 10); round < 24*12; round++ {
		cNext.AddPeerRounds(round, Newcomer, 7)
		backNext.AddPeerRounds(round, Newcomer, 7)
		if round%5 == 0 {
			cNext.RecordRepair(round, Newcomer, 0, false, 2, 0)
			backNext.RecordRepair(round, Newcomer, 0, false, 2, 0)
		}
		cNext.EndRound(round, pop)
		backNext.EndRound(round, pop)
	}
	if got, want := backNext.LossSeries(Newcomer).Len(), cNext.LossSeries(Newcomer).Len(); got != want {
		t.Fatalf("post-decode recording diverged: %d vs %d points", got, want)
	}
}

func TestObserverTrackerJSONRoundTrip(t *testing.T) {
	tr := NewObserverTracker([]string{"young", "old"})
	tr.RecordRepair(10, 0)
	tr.RecordRepair(20, 1)
	tr.RecordRepair(30, 0)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ObserverTracker
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	raw2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("round trip not byte-identical")
	}
	if back.Count(0) != 2 || back.Count(1) != 1 || back.Len() != 2 {
		t.Fatalf("counts diverged: %d %d", back.Count(0), back.Count(1))
	}
}

func TestDurationsJSONRoundTrip(t *testing.T) {
	var d Durations
	for i := 0; i < 100; i++ {
		d.Record(math.Exp(float64(i) / 17.0))
	}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Durations
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.N() != d.N() || back.Mean() != d.Mean() || back.Min() != d.Min() || back.Max() != d.Max() {
		t.Fatalf("moments diverged: n=%d mean=%v", back.N(), back.Mean())
	}
	if back.Quantile(0.9) != d.Quantile(0.9) {
		t.Fatalf("quantile diverged")
	}
}
