package sim

import (
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/transfer"
)

// TestInstantModeGoldenDigests is the degenerate-mode equivalence
// satellite: attaching the transfer subsystem in instant mode (one
// class, infinite rates) must reproduce the pre-transfer engine's
// probe streams bit for bit — same digests as
// TestGoldenScenarioDigests, rng draw order untouched.
func TestInstantModeGoldenDigests(t *testing.T) {
	instant := func() *transfer.Params {
		p, err := transfer.Parse("instant")
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	shockCfg := digestConfig()
	shockCfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 120, Fraction: 0.5, Outage: 24},
		{Name: "regional-kill", Rate: 0.01, Fraction: 0.3, Regions: 4, Kill: true},
	}
	diurnalCfg := digestConfig()
	diurnalCfg.Avail = churn.DefaultDiurnalModel(0.6)

	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"iid", digestConfig(), 0xb0298adf8abb6acd},
		{"diurnal", diurnalCfg, 0xc1c1ef64a949edb6},
		{"shock", shockCfg, 0x27e7bdc89614a401},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Bandwidth = instant()
			got := digestRun(t, tc.cfg)
			if got != tc.want {
				t.Errorf("instant-mode digest = %#x, want %#x (transfer gate leaked into the legacy path)", got, tc.want)
			}
		})
	}
}

// bandwidthConfig is digestConfig with a slow, mixed-class link
// population: uploads span rounds, so repairs are routinely in flight
// across churn events.
func bandwidthConfig(t *testing.T, spec string) Config {
	t.Helper()
	cfg := digestConfig()
	bw, err := transfer.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Bandwidth = bw
	return cfg
}

// TestBandwidthRunDeterminism: bandwidth-mode trajectories (including
// the transfer event stream) are a pure function of the seed.
func TestBandwidthRunDeterminism(t *testing.T) {
	a := digestRun(t, bandwidthConfig(t, "skewed"))
	b := digestRun(t, bandwidthConfig(t, "skewed"))
	if a != b {
		t.Errorf("same-seed bandwidth digests differ: %#x vs %#x", a, b)
	}
	if c := digestRun(t, bandwidthConfig(t, "instant")); c == a {
		t.Error("skewed-class digest equals instant digest: bandwidth scheduling had no effect")
	}
}

// TestBandwidthRepairsComplete: with DSL-class links the population
// still reaches full inclusion and time-to-backup is observable.
func TestBandwidthRepairsComplete(t *testing.T) {
	cfg := bandwidthConfig(t, "dsl")
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.FinalIncluded < cfg.NumPeers*9/10 {
		t.Errorf("only %d/%d peers included under DSL scheduling", res.FinalIncluded, cfg.NumPeers)
	}
	ttb := res.Collector.TimeToBackup()
	if ttb.N() == 0 {
		t.Fatal("no time-to-backup samples recorded")
	}
	if ttb.Max() <= 0 {
		t.Error("every episode completed instantly under DSL rates; transfers are not stretching uploads")
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Errorf("ledger inconsistent after bandwidth run: %v", err)
	}
}

// TestFlashCrowdRestores: a kill shock followed by mass restore demand
// produces a time-to-restore distribution; demand from peers whose
// archive the shock destroyed either completes late or fails, never
// hangs the run.
func TestFlashCrowdRestores(t *testing.T) {
	cfg := bandwidthConfig(t, "dsl")
	cfg.Shocks = []ShockSpec{{Name: "blackout", Round: 200, Fraction: 0.4, Outage: 48}}
	cfg.Restores = []RestoreSpec{{Name: "crowd", Round: 210, Fraction: 0.5}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	ttr := res.Collector.TimeToRestore()
	if ttr.N() == 0 {
		t.Fatal("flash crowd produced no completed restores")
	}
	if ttr.Quantile(0.5) < 0 || ttr.Max() < ttr.Quantile(0.5) {
		t.Errorf("degenerate TTR distribution: median %v max %v", ttr.Quantile(0.5), ttr.Max())
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Errorf("ledger inconsistent after flash crowd: %v", err)
	}
}

// TestShockWipesBothEndpoints is the interruption stress satellite: a
// full-population kill shock lands while many multi-round transfers
// are in flight, destroying sources and sinks alike. Every transfer
// must abort (stale heap entries discarded, no stale delivery — the
// engine panics on one), the replacement population must rebuild, and
// the trajectory stays deterministic.
func TestShockWipesBothEndpoints(t *testing.T) {
	build := func() Config {
		cfg := bandwidthConfig(t, "skewed")
		cfg.Shocks = []ShockSpec{{Name: "wipeout", Round: 150, Fraction: 1, Kill: true}}
		cfg.Restores = []RestoreSpec{{Name: "crowd", Round: 160, Fraction: 0.5}}
		return cfg
	}
	a := digestRun(t, build())
	if b := digestRun(t, build()); a != b {
		t.Errorf("wipeout digests differ: %#x vs %#x", a, b)
	}
	s, err := New(build())
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deaths < int64(build().NumPeers) {
		t.Errorf("wipeout killed %d peers, want >= %d", res.Deaths, build().NumPeers)
	}
	if res.FinalIncluded == 0 {
		t.Error("population never rebuilt after the wipeout")
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Errorf("ledger inconsistent after wipeout: %v", err)
	}
}

// TestSinkReplacedMidFlight targets slot reuse: with kill churn and
// slow links, hosts routinely die (and their slots refill) while
// blocks are flowing toward them. The abort-on-death hook plus the
// generation-stamped endpoint check in completeUpload guarantee no
// block is ever delivered to a slot's new occupant; the run completing
// without the engine's stale-endpoint panic, with a consistent ledger,
// is the assertion.
func TestSinkReplacedMidFlight(t *testing.T) {
	cfg := bandwidthConfig(t, "skewed")
	cfg.Shocks = []ShockSpec{{Name: "attrition", Rate: 0.2, Fraction: 0.05, Kill: true}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deaths == 0 {
		t.Fatal("attrition scenario produced no deaths; the test exercises nothing")
	}
	if err := s.Ledger().CheckConsistency(); err != nil {
		t.Errorf("ledger inconsistent after slot-reuse churn: %v", err)
	}
}

// TestRestoreOnlyConfigKeepsInstantPlacement: scheduling restores
// without a bandwidth mix must not reroute uploads — placement stays
// on the legacy path (same digest as the plain run until the restore
// round, and restores land next round on infinite links).
func TestRestoreOnlyConfigKeepsInstantPlacement(t *testing.T) {
	cfg := digestConfig()
	cfg.Restores = []RestoreSpec{{Name: "crash", Round: 490, Fraction: 0.2}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	ttr := res.Collector.TimeToRestore()
	if ttr.N() == 0 {
		t.Fatal("restore-only config completed no restores")
	}
	// An offline demander waits for its session and a stalled one for
	// visibility, so only the fast path is pinned: an online peer with a
	// decodable archive gets its data back the next round.
	if ttr.Min() > 1 {
		t.Errorf("fastest instant-link restore took %v rounds, want <= 1", ttr.Min())
	}
}
