// Package storage provides the block stores a backup peer runs on: an
// in-memory store for tests and simulations, and an on-disk
// content-addressed store for real nodes. Blocks are identified by
// their SHA-256 hash, so every read is integrity-checked by
// construction; corrupted blocks are detected and reported rather than
// returned.
//
// The package also implements the proof-of-storage scheme the paper
// assumes (its ref [18], simplified to nonce-keyed HMACs): before
// discarding its local copy of a block, an owner precomputes a list of
// challenge nonces and expected responses; later it can audit a holder
// by sending a nonce and comparing HMAC-SHA256(nonce, block).
package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// BlockID is the SHA-256 hash of a block's content.
type BlockID [sha256.Size]byte

// IDOf hashes a block.
func IDOf(data []byte) BlockID { return sha256.Sum256(data) }

// String renders the id in hex.
func (id BlockID) String() string { return hex.EncodeToString(id[:]) }

// ParseBlockID parses a hex block id.
func ParseBlockID(s string) (BlockID, error) {
	var id BlockID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("storage: bad block id: %w", err)
	}
	if len(b) != len(id) {
		return id, fmt.Errorf("storage: bad block id length %d", len(b))
	}
	copy(id[:], b)
	return id, nil
}

// Store errors.
var (
	ErrNotFound  = errors.New("storage: block not found")
	ErrCorrupted = errors.New("storage: block corrupted")
	ErrQuota     = errors.New("storage: quota exceeded")
)

// Store is a content-addressed block store.
type Store interface {
	// Put stores data and returns its id. Storing the same content
	// twice is idempotent.
	Put(data []byte) (BlockID, error)
	// Get returns the block's content, verifying integrity.
	Get(id BlockID) ([]byte, error)
	// Has reports whether the block is present (without reading it).
	Has(id BlockID) bool
	// Delete removes a block; deleting an absent block is not an error.
	Delete(id BlockID) error
	// Len returns the number of stored blocks.
	Len() int
	// UsedBytes returns the total content size stored.
	UsedBytes() int64
	// IDs lists stored block ids (sorted, for determinism).
	IDs() []BlockID
}

// ---------------------------------------------------------------------------
// MemStore

// MemStore is an in-memory Store with an optional byte quota. It is
// safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	data  map[BlockID][]byte
	used  int64
	quota int64 // 0 = unlimited
}

// NewMemStore returns an empty in-memory store with a byte quota
// (0 = unlimited).
func NewMemStore(quotaBytes int64) *MemStore {
	return &MemStore{data: make(map[BlockID][]byte), quota: quotaBytes}
}

// Put implements Store.
func (m *MemStore) Put(data []byte) (BlockID, error) {
	id := IDOf(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.data[id]; ok {
		return id, nil
	}
	if m.quota > 0 && m.used+int64(len(data)) > m.quota {
		return BlockID{}, fmt.Errorf("%w: %d + %d > %d", ErrQuota, m.used, len(data), m.quota)
	}
	m.data[id] = append([]byte(nil), data...)
	m.used += int64(len(data))
	return id, nil
}

// Get implements Store.
func (m *MemStore) Get(id BlockID) ([]byte, error) {
	m.mu.RLock()
	data, ok := m.data[id]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	out := append([]byte(nil), data...)
	if IDOf(out) != id {
		return nil, fmt.Errorf("%w: %s", ErrCorrupted, id)
	}
	return out, nil
}

// Has implements Store.
func (m *MemStore) Has(id BlockID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[id]
	return ok
}

// Delete implements Store.
func (m *MemStore) Delete(id BlockID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if data, ok := m.data[id]; ok {
		m.used -= int64(len(data))
		delete(m.data, id)
	}
	return nil
}

// Len implements Store.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.data)
}

// UsedBytes implements Store.
func (m *MemStore) UsedBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// IDs implements Store.
func (m *MemStore) IDs() []BlockID {
	m.mu.RLock()
	ids := make([]BlockID, 0, len(m.data))
	for id := range m.data {
		ids = append(ids, id)
	}
	m.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool {
		for b := range ids[i] {
			if ids[i][b] != ids[j][b] {
				return ids[i][b] < ids[j][b]
			}
		}
		return false
	})
	return ids
}

// Corrupt flips a byte of a stored block IN PLACE, bypassing the
// content-address invariant. Test hook for failure injection.
func (m *MemStore) Corrupt(id BlockID, offset int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.data[id]
	if !ok {
		return ErrNotFound
	}
	data[offset%len(data)] ^= 0xFF
	return nil
}
