package sim

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered at the engine's RunContext boundary,
// carrying the configuration of the run that panicked and the stack at
// the panic site. Campaign runners use it to attribute a crash to one
// variant and contain it — the sibling variants of a sweep keep
// running — and the worker process uses it to report a structured
// failure to its supervisor instead of dying mid-protocol.
type PanicError struct {
	// Config is the configuration of the run that panicked, so a
	// campaign-level handler can name the variant without keeping its
	// own bookkeeping.
	Config Config
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// newPanicError captures the recovered value and the current stack.
func newPanicError(cfg Config, value any) *PanicError {
	return &PanicError{Config: cfg, Value: value, Stack: debug.Stack()}
}

// Error summarises the panic; the stack is available via the Stack
// field rather than flattened into the message.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: run panicked (seed %d, %d peers): %v", e.Config.Seed, e.Config.NumPeers, e.Value)
}
