package sim

import (
	"strings"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/redundancy"
)

// TestFixedModeGoldenDigests is the adaptive layer's degenerate-mode
// equivalence gate (the PR-6 instant-mode test's sibling): explicitly
// configuring the fixed redundancy policy must reproduce the
// pre-adaptive engine's probe streams bit for bit — same goldens as
// TestGoldenScenarioDigests, rng draw order untouched, the redundancy
// phase never entered.
func TestFixedModeGoldenDigests(t *testing.T) {
	shockCfg := digestConfig()
	shockCfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 120, Fraction: 0.5, Outage: 24},
		{Name: "regional-kill", Rate: 0.01, Fraction: 0.3, Regions: 4, Kill: true},
	}
	diurnalCfg := digestConfig()
	diurnalCfg.Avail = churn.DefaultDiurnalModel(0.6)

	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"iid", digestConfig(), 0xb0298adf8abb6acd},
		{"diurnal", diurnalCfg, 0xc1c1ef64a949edb6},
		{"shock", shockCfg, 0x27e7bdc89614a401},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.RedundancySpec = "fixed"
			got := digestRun(t, tc.cfg)
			if got != tc.want {
				t.Errorf("fixed-mode digest = %#x, want %#x (redundancy gate leaked into the legacy path)", got, tc.want)
			}
		})
	}

	t.Run("replay", func(t *testing.T) {
		rec := digestConfig()
		rec.RecordTrace = true
		rec.Observers = nil
		rec.RedundancySpec = "fixed"
		s, err := New(rec)
		if err != nil {
			t.Fatal(err)
		}
		trace := s.Run().Trace

		rep := digestConfig()
		rep.Observers = nil
		rep.Replay = trace
		rep.StrategySpec = "monitored-availability"
		rep.RedundancySpec = "fixed"
		const want uint64 = 0x069cd8d20f8f8853
		if got := digestRun(t, rep); got != want {
			t.Errorf("fixed-mode replay digest = %#x, want %#x", got, want)
		}
	})
}

// adaptiveConfig is digestConfig under an adaptive policy whose target
// the scaled-down 32-block code shape can actually undercut and whose
// hysteresis band the shape's narrow [k', n] range can cross: with the
// defaults (five nines, 6-block band) the policy would pin every
// archive at Max and the storage-savings assertions below would be
// vacuous.
func adaptiveConfig() Config {
	cfg := digestConfig()
	cfg.RedundancySpec = "adaptive:target=0.99,hysteresis=2"
	return cfg
}

// TestAdaptiveDeterminism: equal seeds give identical adaptive
// trajectories, and the adaptive policy genuinely deviates from fixed
// (otherwise the whole layer is dead code).
func TestAdaptiveDeterminism(t *testing.T) {
	a := digestRun(t, adaptiveConfig())
	b := digestRun(t, adaptiveConfig())
	if a != b {
		t.Fatalf("adaptive digests differ across identical runs: %#x vs %#x", a, b)
	}
	if fixed := digestRun(t, digestConfig()); a == fixed {
		t.Fatalf("adaptive digest equals fixed digest %#x: the policy never acted", fixed)
	}
}

// TestAdaptiveRedundancyActs checks the observable behaviour of the
// adaptive layer end to end: archives start at the full provision and
// shrink once measured, decisions are recorded with their parity-block
// deltas, the mean-n(t) series is populated, and the steady-state
// storage footprint sits below the fixed policy's n-per-archive bill.
func TestAdaptiveRedundancyActs(t *testing.T) {
	cfg := adaptiveConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	col := res.Collector

	fixedRes := func() *Result {
		fs, err := New(digestConfig())
		if err != nil {
			t.Fatal(err)
		}
		return fs.Run()
	}()

	if col.RedundancyGrows() == 0 {
		t.Error("no grow decisions recorded")
	}
	if col.ParityBlocksAdded() == 0 {
		t.Error("no parity blocks added")
	}
	if col.RedundancySeries().Len() == 0 {
		t.Error("redundancy series empty")
	}
	if fixedCol := fixedRes.Collector; fixedCol.RedundancyGrows() != 0 ||
		fixedCol.ParityBlocksAdded() != 0 || fixedCol.RedundancySeries().Len() != 0 {
		t.Error("fixed mode recorded redundancy activity")
	}

	// The mean target can never leave the policy's bound band.
	pol := s.cfg.Redundancy.(redundancy.Adaptive)
	series := col.RedundancySeries()
	for i := 0; i < series.Len(); i++ {
		_, mean := series.At(i)
		if mean < float64(pol.Min) || mean > float64(pol.Max) {
			t.Fatalf("mean redundancy %v outside policy bounds [%d, %d]", mean, pol.Min, pol.Max)
		}
	}

	// Storage dividend: with partners skewing high-availability under
	// age selection, adaptive archives hold fewer blocks than fixed
	// n-per-archive ones.
	if res.FinalPlacements >= fixedRes.FinalPlacements {
		t.Errorf("adaptive final placements %d >= fixed %d: no storage savings",
			res.FinalPlacements, fixedRes.FinalPlacements)
	}
}

// TestRedundancyConfigValidation: spec errors and shape mismatches must
// surface from Config.Validate, wrapped with the sim prefix.
func TestRedundancyConfigValidation(t *testing.T) {
	bad := digestConfig()
	bad.RedundancySpec = "nope:1"
	if _, err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "sim: ") {
		t.Errorf("unknown spec error = %v, want sim-wrapped", err)
	}

	shape := digestConfig()
	shape.Redundancy = redundancy.Adaptive{Min: 8} // below k=16
	if _, err := shape.Validate(); err == nil {
		t.Error("shape-invalid policy accepted")
	}

	good := digestConfig()
	good.RedundancySpec = "adaptive:min=24,target=0.95"
	cfg, err := good.Validate()
	if err != nil {
		t.Fatal(err)
	}
	pol, ok := cfg.Redundancy.(redundancy.Adaptive)
	if !ok || pol.Min != 24 || pol.Max != cfg.TotalBlocks {
		t.Errorf("bound policy = %+v, want min=24 max=%d", cfg.Redundancy, cfg.TotalBlocks)
	}
}
