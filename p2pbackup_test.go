package p2pbackup

import (
	"bytes"
	"testing"
	"time"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
)

func TestFacadeSimulation(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.NumPeers = 120
	cfg.Rounds = 200
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48
	res, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalIncluded == 0 {
		t.Fatal("nobody included")
	}
}

func TestFacadeDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultSimConfig()
	if cfg.NumPeers != 25000 || cfg.TotalBlocks != 256 || cfg.RepairThreshold != 148 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
	obs := PaperObservers()
	if len(obs) != 5 {
		t.Fatal("observer table wrong")
	}
	profiles := PaperProfiles()
	if profiles.Len() != 4 {
		t.Fatal("profile table wrong")
	}
}

func TestFacadeEncoder(t *testing.T) {
	enc, err := NewEncoder(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := enc.Split([]byte("facade data round trip"))
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(shards); err != nil {
		t.Fatal(err)
	}
	shards[0], shards[5] = nil, nil
	if err := enc.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAcceptance(t *testing.T) {
	if AcceptanceFunction(0, 100, 2160) != 1 {
		t.Fatal("older requester must always be accepted")
	}
	s, err := StrategyByName("age", 2160)
	if err != nil || s == nil {
		t.Fatal(err)
	}
	if AgeBasedStrategy(2160).Score(PeerInfo{Age: 50}) != 50 {
		t.Fatal("age strategy score wrong")
	}
}

func TestFacadeLifetime(t *testing.T) {
	samples := []float64{100, 150, 220, 400, 800, 1600, 130, 170, 260, 520}
	m, err := FitParetoLifetimes(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha <= 0 || m.Xm != 100 {
		t.Fatalf("fit = %+v", m)
	}
	est := AgeRank{Horizon: 90 * 24}
	if est.ExpectedRemaining(100) != 100 {
		t.Fatal("AgeRank wrong")
	}
}

func TestFacadeCostModel(t *testing.T) {
	cost, err := RepairCostEstimate(128)
	if err != nil {
		t.Fatal(err)
	}
	if min := cost.Total().Minutes(); min < 76 || min > 78 {
		t.Fatalf("repair = %v minutes, want ~77", min)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	if len(ExperimentNames()) < 5 {
		t.Fatal("experiment registry too small")
	}
	sums, err := RunExperiment("costmodel", ExperimentOptions{OutDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
}

func TestFacadeLiveBackup(t *testing.T) {
	transport := NewInMemTransport(7)
	dir := NewDirectory()
	var nodes []*Node
	for i := 0; i < 10; i++ {
		name := string(rune('a' + i))
		nd, err := NewNode(NodeConfig{
			Name:      name,
			Age:       int64(i) * 24,
			Transport: transport,
			Store:     NewMemStore(0),
			Directory: dir,
			Params:    ArchiveParams{DataBlocks: 3, ParityBlocks: 3},
			Seed:      uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Close()
		dir.Register(name, PeerInfo{Age: int64(i) * 24})
		nodes = append(nodes, nd)
	}
	files := []FileEntry{{Path: "x.txt", Mode: 0o644, ModTime: time.Now(), Data: []byte("facade")}}
	idx, err := nodes[0].Backup(files, "facade test")
	if err != nil {
		t.Fatal(err)
	}
	got, err := nodes[0].Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Data, files[0].Data) {
		t.Fatal("facade restore mismatch")
	}
	// Total-loss recovery through the facade.
	archives, err := RecoverFromNetwork(nodes[0].Name(), nodes[0].Identity(), transport, dir.Names())
	if err != nil {
		t.Fatal(err)
	}
	if len(archives) != 1 {
		t.Fatal("recovery failed")
	}
}

func TestFacadeTimeUnitsAgree(t *testing.T) {
	// The facade speaks rounds; one day is 24 rounds everywhere.
	if churn.Day != 24 || metrics.CategoryOf(3*churn.Month) != metrics.Young {
		t.Fatal("time unit drift")
	}
}
