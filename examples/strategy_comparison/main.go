// strategy_comparison: the ablation the paper motivates but does not
// plot - how much does age-based selection actually buy? Compares the
// paper's rule against random placement, an unimplementable oracle that
// knows true remaining lifetimes, an availability oracle, an
// adversarial youngest-first rule, and the observable-knowledge
// rankings (estimator-backed and monitored-availability specs), all on
// identical populations.
//
// The runs are one experiments.Campaign — one variant per registered
// strategy spec — executed concurrently by the Runner.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 600
	cfg.Rounds = 8000

	campaign := experiments.StrategyCampaign(cfg)
	fmt.Fprintf(os.Stderr, "running %d strategies on identical populations...\n", len(campaign.Variants))
	var rows []experiments.Row
	for ev := range (experiments.Runner{}).Stream(context.Background(), campaign) {
		switch ev.Kind {
		case experiments.EventRow:
			fmt.Fprintf(os.Stderr, "  strategy %q done: %d repairs, %d losses\n",
				ev.Name, ev.Row.Result.Collector.TotalRepairs(), ev.Row.Result.Collector.TotalLosses())
			rows = append(rows, *ev.Row)
		case experiments.EventDone:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
		}
	}
	// Rows stream in completion order; present them in variant order.
	sort.Slice(rows, func(i, j int) bool { return rows[i].Index < rows[j].Index })
	res := experiments.AblationFromRows(campaign.Name, rows)

	fmt.Printf("\n%-22s %9s %8s %10s %12s %12s\n",
		"strategy", "repairs", "losses", "uploads", "newcomer/1k", "old/1k")
	for _, p := range res.Points {
		fmt.Printf("%-22s %9d %8d %10d %12.3f %12.3f\n",
			p.Label, p.Repairs, p.Losses, p.Uploaded,
			p.RepairRate[metrics.Newcomer], p.RepairRate[metrics.Old])
	}

	fmt.Println("\nreading the table:")
	fmt.Println("  - the age rule does not minimise TOTAL cost: it concentrates")
	fmt.Println("    cost on newcomers (high newcomer rate) while veterans ride")
	fmt.Println("    almost free - the paper's tit-for-tat reward for loyalty;")
	fmt.Println("  - random spreads cost evenly: newcomers are cheap but nobody")
	fmt.Println("    earns cheap maintenance by staying;")
	fmt.Println("  - the oracles bound what any lifetime estimate could achieve.")
}
