// Package node assembles a complete backup peer out of the substrate
// packages: it serves blocks for partners (internal/storage), speaks
// the wire protocol (internal/p2pnet), encodes and restores archives
// (internal/backup), picks partners with the paper's age-based rule
// (internal/selection), and runs the monitoring/repair loop
// (section 2.2.3) against live peers.
//
// A Node plays both roles of the exchange economy: owner of its own
// archives and host for other peers' blocks. Backup, Restore,
// MaintainTick and Audit are owner-side operations and must be called
// from one goroutine; the serving side is concurrency-safe and runs on
// the transport's goroutines.
package node

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"p2pbackup/internal/backup"
	"p2pbackup/internal/erasure"
	"p2pbackup/internal/p2pnet"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/storage"
)

// Directory is the membership view a node selects partners from. The
// paper assumes a monitoring service that reports peer ages; here the
// directory plays that role.
type Directory struct {
	mu    sync.RWMutex
	peers map[string]selection.PeerInfo
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{peers: make(map[string]selection.PeerInfo)}
}

// Register announces a peer (or updates its info).
func (d *Directory) Register(name string, info selection.PeerInfo) {
	d.mu.Lock()
	d.peers[name] = info
	d.mu.Unlock()
}

// Remove withdraws a peer.
func (d *Directory) Remove(name string) {
	d.mu.Lock()
	delete(d.peers, name)
	d.mu.Unlock()
}

// Info returns a peer's registered info.
func (d *Directory) Info(name string) (selection.PeerInfo, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	info, ok := d.peers[name]
	return info, ok
}

// Names lists registered peers, sorted for determinism.
func (d *Directory) Names() []string {
	d.mu.RLock()
	out := make([]string, 0, len(d.peers))
	for n := range d.peers {
		out = append(out, n)
	}
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the directory size.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.peers)
}

// Config assembles a node.
type Config struct {
	// Name is the node's stable identity on the transport.
	Name string
	// Age is the node's own age (rounds) as the acceptance function
	// sees it.
	Age int64
	// Transport connects to other peers.
	Transport p2pnet.Transport
	// Store holds blocks for OTHER peers (host role).
	Store storage.Store
	// Directory lists candidate partners.
	Directory *Directory
	// Params is the archive code shape (default: the paper's 128/128).
	Params backup.Params
	// RepairThreshold is k' on visible blocks (default: scaled 148/256).
	RepairThreshold int
	// Strategy ranks and accepts partners (default: AgeBased with the
	// paper's 90-day horizon in hours).
	Strategy selection.Strategy
	// ChallengesPerBlock precomputed audits per placed block (default 16).
	ChallengesPerBlock int
	// Identity is the owner key pair; generated (RSA-2048) when nil.
	// Tests inject smaller keys to stay fast.
	Identity *backup.Identity
	// Seed drives placement randomness.
	Seed uint64
}

// Node is one backup peer.
type Node struct {
	cfg      Config
	identity *backup.Identity
	rmu      sync.Mutex // guards r: the handler runs on transport goroutines
	r        *rng.Rand

	// Owner-side state (single goroutine).
	manifests  []*backup.Manifest
	placements []map[int]string // archive -> block index -> holder
	auditor    *storage.Auditor

	// Host-side state (concurrent).
	mastersMu sync.Mutex
	masters   map[string][]byte

	masterSeq int64
	closer    io.Closer
}

// Node errors.
var (
	ErrNoArchive = errors.New("node: no such archive")
	ErrNotEnough = errors.New("node: not enough partners available")
	ErrRestore   = errors.New("node: restore failed")
	ErrNoMaster  = errors.New("node: master block not found on any partner")
)

// New starts a node: generates its identity and begins serving.
func New(cfg Config) (*Node, error) {
	if cfg.Name == "" || cfg.Transport == nil || cfg.Store == nil || cfg.Directory == nil {
		return nil, errors.New("node: Name, Transport, Store and Directory are required")
	}
	if cfg.Params == (backup.Params{}) {
		cfg.Params = backup.DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.RepairThreshold == 0 {
		// The paper's 148/256 ratio, scaled to the configured shape.
		cfg.RepairThreshold = cfg.Params.DataBlocks + (cfg.Params.Total()-cfg.Params.DataBlocks)*20/128
		if cfg.RepairThreshold <= cfg.Params.DataBlocks {
			cfg.RepairThreshold = cfg.Params.DataBlocks + 1
		}
	}
	if cfg.RepairThreshold < cfg.Params.DataBlocks || cfg.RepairThreshold > cfg.Params.Total() {
		return nil, fmt.Errorf("node: threshold %d outside [k=%d, n=%d]",
			cfg.RepairThreshold, cfg.Params.DataBlocks, cfg.Params.Total())
	}
	if cfg.Strategy == nil {
		cfg.Strategy = selection.AgeBased{L: 90 * 24}
	}
	if cfg.ChallengesPerBlock <= 0 {
		cfg.ChallengesPerBlock = 16
	}
	identity := cfg.Identity
	if identity == nil {
		var err error
		identity, err = backup.NewIdentity()
		if err != nil {
			return nil, err
		}
	}
	n := &Node{
		cfg:      cfg,
		identity: identity,
		r:        rng.New(cfg.Seed ^ 0x9E3779B97F4A7C15),
		auditor:  storage.NewAuditor(),
		masters:  make(map[string][]byte),
	}
	closer, err := cfg.Transport.Serve(cfg.Name, n.handle)
	if err != nil {
		return nil, err
	}
	n.closer = closer
	return n, nil
}

// Name returns the node's transport name.
func (n *Node) Name() string { return n.cfg.Name }

// Identity returns the node's key pair (the user must keep the private
// key to restore after total loss).
func (n *Node) Identity() *backup.Identity { return n.identity }

// Archives returns the number of owned archives.
func (n *Node) Archives() int { return len(n.manifests) }

// Close stops serving.
func (n *Node) Close() error {
	if n.closer == nil {
		return nil
	}
	return n.closer.Close()
}

// handle serves the host role.
func (n *Node) handle(from string, req p2pnet.Message) p2pnet.Message {
	switch v := req.(type) {
	case p2pnet.Ping:
		return p2pnet.Pong{From: n.cfg.Name}
	case p2pnet.StoreBlock:
		// The acceptance function gives every requester a chance
		// proportional to its age standing (never zero).
		if info, ok := n.cfg.Directory.Info(from); ok {
			self := selection.PeerInfo{Age: n.cfg.Age}
			n.rmu.Lock()
			accept := n.r.Bool(n.cfg.Strategy.AcceptProb(self, info))
			n.rmu.Unlock()
			if !accept {
				return p2pnet.StoreResult{OK: false, Reason: "partnership declined"}
			}
		}
		if _, err := n.cfg.Store.Put(v.Data); err != nil {
			return p2pnet.StoreResult{OK: false, Reason: err.Error()}
		}
		return p2pnet.StoreResult{OK: true}
	case p2pnet.GetBlock:
		data, err := n.cfg.Store.Get(v.Key)
		if err != nil {
			return p2pnet.BlockData{Key: v.Key, Found: false}
		}
		return p2pnet.BlockData{Key: v.Key, Found: true, Data: data}
	case p2pnet.Challenge:
		data, err := n.cfg.Store.Get(v.Key)
		if err != nil {
			return p2pnet.ChallengeResponse{Key: v.Key, OK: false}
		}
		return p2pnet.ChallengeResponse{Key: v.Key, OK: true, MAC: storage.Respond(data, v.Nonce)}
	case p2pnet.StoreMaster:
		n.mastersMu.Lock()
		n.masters[v.Owner] = append([]byte(nil), v.Data...)
		n.mastersMu.Unlock()
		return p2pnet.StoreResult{OK: true}
	case p2pnet.GetMaster:
		n.mastersMu.Lock()
		data, ok := n.masters[v.Owner]
		n.mastersMu.Unlock()
		if !ok {
			return p2pnet.MasterData{Owner: v.Owner, Found: false}
		}
		return p2pnet.MasterData{Owner: v.Owner, Found: true, Data: data}
	default:
		return p2pnet.ErrorMsg{Text: fmt.Sprintf("unexpected message %v", req.Type())}
	}
}

// rankedCandidates returns directory peers (excluding self and given
// exclusions) ordered by the strategy score, ties shuffled.
func (n *Node) rankedCandidates(exclude map[string]bool) []string {
	names := n.cfg.Directory.Names()
	type cand struct {
		name  string
		score float64
	}
	var cands []cand
	for _, name := range names {
		if name == n.cfg.Name || exclude[name] {
			continue
		}
		info, _ := n.cfg.Directory.Info(name)
		cands = append(cands, cand{name: name, score: n.cfg.Strategy.Score(info)})
	}
	n.rmu.Lock()
	n.r.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	n.rmu.Unlock()
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// placeBlock stores one block on the best willing partner not yet in
// exclude, retrying down the ranking. It returns the partner name.
func (n *Node) placeBlock(data []byte, exclude map[string]bool) (string, error) {
	for _, name := range n.rankedCandidates(exclude) {
		resp, err := n.cfg.Transport.Call(name, p2pnet.StoreBlock{
			From: n.cfg.Name,
			Key:  storage.IDOf(data),
			Data: data,
		})
		if err != nil {
			continue // unreachable; try next
		}
		if sr, ok := resp.(p2pnet.StoreResult); ok && sr.OK {
			return name, nil
		}
	}
	return "", ErrNotEnough
}

// Backup encodes the entries into a new archive and distributes its
// blocks, one per partner. It returns the archive index.
func (n *Node) Backup(entries []backup.FileEntry, description string) (int, error) {
	plaintext, err := backup.PackFiles(entries)
	if err != nil {
		return 0, err
	}
	blocks, manifest, err := backup.EncodeArchive(n.cfg.Params, n.identity, plaintext, description)
	if err != nil {
		return 0, err
	}
	placement := make(map[int]string, len(blocks))
	exclude := make(map[string]bool)
	for i, block := range blocks {
		holder, err := n.placeBlock(block, exclude)
		if err != nil {
			return 0, fmt.Errorf("node: placing block %d/%d: %w", i, len(blocks), err)
		}
		placement[i] = holder
		exclude[holder] = true // one block per partner per archive
		cs, err := storage.GenerateChallenges(block, n.cfg.ChallengesPerBlock)
		if err != nil {
			return 0, err
		}
		n.auditor.Add(manifest.BlockIDs[i], cs)
	}
	n.manifests = append(n.manifests, manifest)
	n.placements = append(n.placements, placement)
	if err := n.publishMaster(); err != nil {
		return 0, err
	}
	return len(n.manifests) - 1, nil
}

// publishMaster replicates the (plaintext-metadata) master block to
// every current partner, with a sequence number so readers can pick the
// freshest replica. Confidential content stays protected: session keys
// inside manifests are wrapped under the owner's public key.
func (n *Node) publishMaster() error {
	n.masterSeq++
	mb := &backup.MasterBlock{Seq: n.masterSeq, Manifests: n.manifests, Partners: map[int][]string{}}
	holders := map[string]bool{}
	for idx, placement := range n.placements {
		seen := map[string]bool{}
		for _, holder := range placement {
			holders[holder] = true
			if !seen[holder] {
				mb.Partners[idx] = append(mb.Partners[idx], holder)
				seen[holder] = true
			}
		}
		sort.Strings(mb.Partners[idx])
	}
	raw, err := backup.MarshalMasterBlock(mb)
	if err != nil {
		return err
	}
	for holder := range holders {
		// Best effort: unreachable partners get the next publication.
		_, _ = n.cfg.Transport.Call(holder, p2pnet.StoreMaster{
			From: n.cfg.Name, Owner: n.cfg.Name, Data: raw,
		})
	}
	return nil
}

// fetchBlocks retrieves the blocks of an archive from their holders;
// missing or corrupt blocks come back nil.
func (n *Node) fetchBlocks(idx int) ([][]byte, int) {
	m := n.manifests[idx]
	blocks := make([][]byte, m.Params.Total())
	got := 0
	for i, holder := range n.placements[idx] {
		resp, err := n.cfg.Transport.Call(holder, p2pnet.GetBlock{From: n.cfg.Name, Key: m.BlockIDs[i]})
		if err != nil {
			continue
		}
		bd, ok := resp.(p2pnet.BlockData)
		if !ok || !bd.Found {
			continue
		}
		if storage.IDOf(bd.Data) != m.BlockIDs[i] {
			continue // corrupted; hash check failed
		}
		blocks[i] = bd.Data
		got++
	}
	return blocks, got
}

// Restore fetches and decodes an owned archive back into file entries.
func (n *Node) Restore(idx int) ([]backup.FileEntry, error) {
	if idx < 0 || idx >= len(n.manifests) {
		return nil, ErrNoArchive
	}
	blocks, got := n.fetchBlocks(idx)
	if got < n.manifests[idx].Params.DataBlocks {
		return nil, fmt.Errorf("%w: only %d of %d blocks reachable",
			ErrRestore, got, n.manifests[idx].Params.Total())
	}
	plaintext, err := backup.DecodeArchive(n.manifests[idx], n.identity, blocks)
	if err != nil {
		return nil, err
	}
	return backup.UnpackFiles(plaintext)
}

// VisibleBlocks pings each holder of the archive and counts blocks on
// responsive partners (the quantity the repair threshold watches).
func (n *Node) VisibleBlocks(idx int) (int, error) {
	if idx < 0 || idx >= len(n.manifests) {
		return 0, ErrNoArchive
	}
	visible := 0
	reachable := map[string]bool{}
	for _, holder := range n.placements[idx] {
		ok, seen := reachable[holder]
		if !seen {
			_, err := n.cfg.Transport.Call(holder, p2pnet.Ping{From: n.cfg.Name})
			ok = err == nil
			reachable[holder] = ok
		}
		if ok {
			visible++
		}
	}
	return visible, nil
}

// RepairReport summarises one maintenance tick for one archive.
type RepairReport struct {
	Archive   int
	Visible   int
	Triggered bool
	Replaced  int
}

// MaintainTick runs one monitoring round over an archive: if visible
// blocks are below the threshold, unreachable placements are dropped,
// the archive is reconstructed from any k reachable blocks, and the
// missing blocks are re-placed on new partners (the paper's repair).
func (n *Node) MaintainTick(idx int) (RepairReport, error) {
	if idx < 0 || idx >= len(n.manifests) {
		return RepairReport{}, ErrNoArchive
	}
	m := n.manifests[idx]
	rep := RepairReport{Archive: idx}
	visible, err := n.VisibleBlocks(idx)
	if err != nil {
		return rep, err
	}
	rep.Visible = visible
	if visible >= n.cfg.RepairThreshold {
		return rep, nil
	}
	rep.Triggered = true

	blocks, got := n.fetchBlocks(idx)
	if got < m.Params.DataBlocks {
		return rep, fmt.Errorf("%w: repair needs %d blocks, reached %d",
			ErrRestore, m.Params.DataBlocks, got)
	}
	// Re-encode everything (worst-case assumption, as in the paper).
	full := make([][]byte, len(blocks))
	copy(full, blocks)
	enc, err := erasure.New(m.Params.DataBlocks, m.Params.ParityBlocks)
	if err != nil {
		return rep, err
	}
	if err := enc.Reconstruct(full); err != nil {
		return rep, err
	}
	// Drop unreachable placements, keep reachable ones.
	exclude := make(map[string]bool)
	newPlacement := make(map[int]string)
	for i, holder := range n.placements[idx] {
		if blocks[i] != nil {
			newPlacement[i] = holder
			exclude[holder] = true
		} else {
			n.auditor.Forget(m.BlockIDs[i])
		}
	}
	// Re-place missing blocks on fresh partners.
	for i := range full {
		if _, ok := newPlacement[i]; ok {
			continue
		}
		holder, err := n.placeBlock(full[i], exclude)
		if err != nil {
			// Partial repair: keep what we placed; next tick continues.
			break
		}
		newPlacement[i] = holder
		exclude[holder] = true
		cs, err := storage.GenerateChallenges(full[i], n.cfg.ChallengesPerBlock)
		if err != nil {
			return rep, err
		}
		n.auditor.Add(m.BlockIDs[i], cs)
		rep.Replaced++
	}
	n.placements[idx] = newPlacement
	if err := n.publishMaster(); err != nil {
		return rep, err
	}
	return rep, nil
}

// AuditReport summarises a proof-of-storage sweep.
type AuditReport struct {
	Challenged int
	Passed     int
	Failed     int // includes unreachable holders
}

// Audit challenges every holder of an archive once (consuming one
// precomputed challenge per block that still has any).
func (n *Node) Audit(idx int) (AuditReport, error) {
	if idx < 0 || idx >= len(n.manifests) {
		return AuditReport{}, ErrNoArchive
	}
	m := n.manifests[idx]
	var rep AuditReport
	for i, holder := range n.placements[idx] {
		ch, err := n.auditor.Next(m.BlockIDs[i])
		if err != nil {
			continue // challenge supply exhausted for this block
		}
		rep.Challenged++
		resp, err := n.cfg.Transport.Call(holder, p2pnet.Challenge{
			From: n.cfg.Name, Key: m.BlockIDs[i], Nonce: ch.Nonce,
		})
		if err != nil {
			rep.Failed++
			continue
		}
		cr, ok := resp.(p2pnet.ChallengeResponse)
		if !ok || !cr.OK || !ch.Verify(cr.MAC) {
			rep.Failed++
			continue
		}
		rep.Passed++
	}
	return rep, nil
}

// RecoverFromNetwork rebuilds an owner's archives on a fresh machine:
// given only the identity (private key) and a few peers to ask, it
// retrieves the master block, then fetches and decodes every archive.
// This is the paper's restoration task after total local loss.
func RecoverFromNetwork(name string, identity *backup.Identity, transport p2pnet.Transport, askPeers []string) ([][]backup.FileEntry, error) {
	// Collect every reachable replica and keep the freshest (replicas
	// written before the last publication are stale).
	var mb *backup.MasterBlock
	for _, peer := range askPeers {
		resp, err := transport.Call(peer, p2pnet.GetMaster{From: name, Owner: name})
		if err != nil {
			continue
		}
		md, ok := resp.(p2pnet.MasterData)
		if !ok || !md.Found {
			continue
		}
		parsed, err := backup.UnmarshalMasterBlock(md.Data)
		if err != nil {
			continue
		}
		if mb == nil || parsed.Seq > mb.Seq {
			mb = parsed
		}
	}
	if mb == nil {
		return nil, ErrNoMaster
	}
	var out [][]backup.FileEntry
	for idx, m := range mb.Manifests {
		blocks := make([][]byte, m.Params.Total())
		got := 0
		for i, id := range m.BlockIDs {
			for _, holder := range mb.Partners[idx] {
				resp, err := transport.Call(holder, p2pnet.GetBlock{From: name, Key: id})
				if err != nil {
					continue
				}
				bd, ok := resp.(p2pnet.BlockData)
				if !ok || !bd.Found || storage.IDOf(bd.Data) != id {
					continue
				}
				blocks[i] = bd.Data
				got++
				break
			}
		}
		if got < m.Params.DataBlocks {
			return nil, fmt.Errorf("%w: archive %d: %d of %d blocks", ErrRestore, idx, got, m.Params.Total())
		}
		plaintext, err := backup.DecodeArchive(m, identity, blocks)
		if err != nil {
			return nil, err
		}
		files, err := backup.UnpackFiles(plaintext)
		if err != nil {
			return nil, err
		}
		out = append(out, files)
	}
	return out, nil
}
