package experiments

import (
	"context"
	"testing"
)

// TestRunnerShardedStress drives both parallelism layers at once: the
// Runner fans whole variants out to 8 workers while every variant's
// simulation internally fans its shardable phases out to 4 shard
// workers. Under -race this is the cross-layer interleaving check; the
// rows must still be value-identical to a fully sequential run
// (Parallelism 1, Shards 1).
func TestRunnerShardedStress(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 10, 11, 12, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	serialCamp := camp
	rows, err := Runner{Parallelism: 1}.Run(context.Background(), serialCamp)
	if err != nil {
		t.Fatal(err)
	}

	sharded := cfg
	sharded.Shards = 4
	shardedCamp, err := ThresholdCampaign(sharded, []int{9, 10, 11, 12, 13, 14})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Runner{Parallelism: 8}.Run(context.Background(), shardedCamp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("row counts differ: %d vs %d", len(got), len(rows))
	}
	a := ThresholdSweepFromRows(rows)
	b := ThresholdSweepFromRows(got)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs between sequential and sharded runs:\n%+v\n%+v",
				i, a.Points[i], b.Points[i])
		}
	}
}
