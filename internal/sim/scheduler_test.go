package sim

import (
	"context"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/overlay"
)

func TestVisitQueueOrderingAndDedupe(t *testing.T) {
	q := newVisitQueue(64)
	in := []int32{9, 3, 41, 3, 0, 9, 27, 0}
	for _, id := range in {
		q.push(id)
	}
	var got []int32
	for !q.empty() {
		got = append(got, q.pop())
	}
	want := []int32{0, 3, 9, 27, 41}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v (ascending, deduped)", got, want)
		}
	}
	// After popping, slots can be queued again.
	q.push(3)
	if q.empty() || q.pop() != 3 {
		t.Fatal("queue must accept a slot again after popping it")
	}
}

func TestCalendarDrainMatchesSched(t *testing.T) {
	c := newCalendar()
	sched := make([]int64, 8)
	for i := range sched {
		sched[i] = never
	}
	// Slot 1 due now; slot 2 stale (rescheduled later); slot 3 shares
	// the bucket but is a full cycle away; slot 4 due now via a second
	// entry after a reschedule round-trip.
	sched[1] = 100
	c.push(1, 100)
	sched[2] = 200
	c.push(2, 100) // stale: sched moved to 200
	sched[3] = 100 + calBuckets
	c.push(3, 100+calBuckets)
	sched[4] = 100
	c.push(4, 60) // stale early entry
	c.push(4, 100)

	due := c.drain(100, sched, nil)
	want := map[int32]bool{1: true, 4: true}
	if len(due) != 2 || !want[due[0]] || !want[due[1]] || due[0] == due[1] {
		t.Fatalf("drain(100) = %v, want slots 1 and 4", due)
	}
	// The far-future entry must survive the shared-bucket drain.
	due = c.drain(100+calBuckets, sched, nil)
	if len(due) != 1 || due[0] != 3 {
		t.Fatalf("drain(%d) = %v, want [3]", 100+calBuckets, due)
	}
}

// TestQuiescentPopulationIdles: with immortal always-online peers the
// engine must go fully idle once the initial uploads drain — empty
// walk queues and an empty active set. This is the structural property
// behind the O(events) per-round cost: a slot with no due timer, no
// loss check and no pending work is never touched.
func TestQuiescentPopulationIdles(t *testing.T) {
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "immortal", Proportion: 1, Availability: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Profiles = profiles
	cfg.Avail = churn.AlwaysOnline{}
	cfg.Rounds = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		s.StepRound()
	}
	for id := range s.peers {
		if !s.maint.Included(overlay.PeerID(id)) {
			t.Fatalf("peer %d not included after warmup", id)
		}
		if s.maint.Armed(overlay.PeerID(id)) {
			t.Fatalf("peer %d still armed in quiescence", id)
		}
	}
	if !s.nextQ.empty() {
		t.Fatalf("next-round walk queue has %d entries in quiescence", len(s.nextQ.q))
	}
	before := len(s.actors)
	s.StepRound()
	if len(s.actors) != 0 || before != 0 {
		t.Fatalf("quiescent round produced %d actors", len(s.actors))
	}
}

// TestStepRoundMatchesRun: driving the engine with StepRound must
// reproduce Run exactly (same rng stream, same result counters).
func TestStepRoundMatchesRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 120
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	resA := a.Run()

	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for b.StepRound() {
		steps++
	}
	if int64(steps) != cfg.Rounds {
		t.Fatalf("StepRound ran %d rounds, want %d", steps, cfg.Rounds)
	}
	resB, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resA.Deaths != resB.Deaths || resA.Cancels != resB.Cancels ||
		resA.FinalPlacements != resB.FinalPlacements || resA.FinalIncluded != resB.FinalIncluded {
		t.Fatalf("stepped run diverged: %+v vs %+v",
			[4]int64{resA.Deaths, resA.Cancels, int64(resA.FinalPlacements), int64(resA.FinalIncluded)},
			[4]int64{resB.Deaths, resB.Cancels, int64(resB.FinalPlacements), int64(resB.FinalIncluded)})
	}
}
