// threshold_sweep: a miniature of the paper's figures 1 and 2 - how
// the repair threshold k' trades repair traffic against archive loss,
// stratified by peer age category.
//
// The sweep is expressed as a declarative campaign executed by
// experiments.Runner: points stream in as they finish, and Ctrl-C
// cancels the remaining runs cleanly.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"p2pbackup/internal/experiments"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 600
	cfg.Rounds = 8000
	thresholds := []int{132, 140, 148, 156, 164, 172, 180}

	campaign, err := experiments.ThresholdCampaign(cfg, thresholds)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(os.Stderr, "sweeping %d thresholds over %d peers x %d rounds...\n",
		len(thresholds), cfg.NumPeers, cfg.Rounds)
	var rows []experiments.Row
	for ev := range (experiments.Runner{}).Stream(ctx, campaign) {
		switch ev.Kind {
		case experiments.EventRow:
			fmt.Fprintf(os.Stderr, "  %s done: %d repairs, %d losses\n",
				ev.Name, ev.Row.Result.Collector.TotalRepairs(), ev.Row.Result.Collector.TotalLosses())
			rows = append(rows, *ev.Row)
		case experiments.EventDone:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
		}
	}
	sweep := experiments.ThresholdSweepFromRows(rows)

	fmt.Println("\nfigure 1 (repairs per 1000 peer-rounds):")
	fmt.Printf("%9s %10s %10s %10s %10s\n", "threshold", "newcomer", "young", "old", "elder")
	for _, p := range sweep.Points {
		fmt.Printf("%9d %10.3f %10.3f %10.3f %10.3f\n", p.Threshold,
			p.RepairRate[metrics.Newcomer], p.RepairRate[metrics.Young],
			p.RepairRate[metrics.Old], p.RepairRate[metrics.Elder])
	}

	fmt.Println("\nfigure 2 (lost archives per 1000 peer-rounds):")
	fmt.Printf("%9s %10s %10s %10s %10s\n", "threshold", "newcomer", "young", "old", "elder")
	for _, p := range sweep.Points {
		fmt.Printf("%9d %10.4f %10.4f %10.4f %10.4f\n", p.Threshold,
			p.LossRate[metrics.Newcomer], p.LossRate[metrics.Young],
			p.LossRate[metrics.Old], p.LossRate[metrics.Elder])
	}

	fmt.Println("\nexpect: repairs rise with the threshold (newcomers worst);")
	fmt.Println("losses concentrate on newcomers and vanish for older peers.")
}
