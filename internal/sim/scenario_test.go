package sim

import (
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/overlay"
)

// shockConfig returns a small config with no shocks; tests add their
// own specs.
func shockConfig() Config {
	cfg := smallConfig()
	cfg.Rounds = 300
	return cfg
}

func runResult(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

// shockRecorder captures every shock event.
type shockRecorder struct {
	BaseProbe
	events []ShockEvent
}

func (p *shockRecorder) OnShock(e ShockEvent) { p.events = append(p.events, e) }

func TestScheduledOutageShock(t *testing.T) {
	cfg := shockConfig()
	rec := &shockRecorder{}
	cfg.Probes = []Probe{rec}
	cfg.Shocks = []ShockSpec{{Name: "blackout", Round: 150, Fraction: 1, Outage: 48}}
	res := runResult(t, cfg)

	if len(rec.events) != 1 {
		t.Fatalf("%d shock events, want 1", len(rec.events))
	}
	ev := rec.events[0]
	if ev.Round != 150 || ev.Name != "blackout" || ev.Killed {
		t.Fatalf("shock event = %+v", ev)
	}
	// Fraction 1 takes down every currently-online peer; with the
	// paper's profiles well over a third of the population is online.
	if ev.Victims < cfg.NumPeers/4 {
		t.Fatalf("only %d victims of %d peers", ev.Victims, cfg.NumPeers)
	}
	if got := res.Collector.TotalShocks(); got != 1 {
		t.Fatalf("collector shocks = %d, want 1", got)
	}
	if got := res.Collector.ShockVictims(); got != int64(ev.Victims) {
		t.Fatalf("collector victims = %d, want %d", got, ev.Victims)
	}
}

func TestShockTakesPeersOffline(t *testing.T) {
	cfg := shockConfig()
	cfg.Rounds = 151 // stop right after the shock fires
	cfg.Shocks = []ShockSpec{{Name: "blackout", Round: 150, Fraction: 1, Outage: 48}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	online := 0
	for id := 0; id < cfg.NumPeers; id++ {
		if s.Ledger().Online(overlay.PeerID(id)) {
			online++
		}
	}
	// Only same-round replacements of departed peers may be online; the
	// shocked population itself is fully dark.
	if online > 5 {
		t.Fatalf("%d peers online right after a fraction-1 outage shock", online)
	}
}

func TestKillShockCausesDeaths(t *testing.T) {
	base := shockConfig()
	baseline := runResult(t, base)

	cfg := shockConfig()
	cfg.Shocks = []ShockSpec{{Name: "datacenter-fire", Round: 100, Fraction: 1, Regions: 4, Kill: true}}
	shocked := runResult(t, cfg)

	// Killing a whole region mid-run must add roughly a region's worth
	// of departures over the baseline.
	extra := shocked.Deaths - baseline.Deaths
	if extra < int64(cfg.NumPeers/8) {
		t.Fatalf("kill shock added only %d deaths (baseline %d, shocked %d)",
			extra, baseline.Deaths, shocked.Deaths)
	}
}

func TestStochasticShockDeterminism(t *testing.T) {
	make2 := func() *Result {
		cfg := shockConfig()
		cfg.Shocks = []ShockSpec{{Name: "flaky-isp", Rate: 0.02, Fraction: 0.3, Regions: 6, Outage: 12}}
		return runResult(t, cfg)
	}
	a, b := make2(), make2()
	if a.Deaths != b.Deaths ||
		a.Collector.TotalRepairs() != b.Collector.TotalRepairs() ||
		a.Collector.TotalLosses() != b.Collector.TotalLosses() ||
		a.Collector.TotalShocks() != b.Collector.TotalShocks() ||
		a.Collector.ShockVictims() != b.Collector.ShockVictims() ||
		a.FinalPlacements != b.FinalPlacements {
		t.Fatalf("same seed, different runs: %+v vs %+v", a, b)
	}
	if a.Collector.TotalShocks() == 0 {
		t.Fatal("stochastic shock never fired in 300 rounds at rate 0.02")
	}
}

func TestShockSpecValidation(t *testing.T) {
	bad := []ShockSpec{
		{Name: "f0", Fraction: 0},
		{Name: "f2", Fraction: 2},
		{Name: "r1", Fraction: 0.5, Rate: 1},
		{Name: "rneg", Fraction: 0.5, Rate: -0.1},
		{Name: "round", Fraction: 0.5, Round: -1},
		{Name: "regions", Fraction: 0.5, Regions: -1},
		{Name: "outage", Fraction: 0.5, Outage: -1},
	}
	for _, sp := range bad {
		cfg := shockConfig()
		cfg.Shocks = []ShockSpec{sp}
		if _, err := New(cfg); err == nil {
			t.Fatalf("invalid shock %q accepted", sp.Name)
		}
	}
}

func TestShocksIncompatibleWithReplay(t *testing.T) {
	cfg := shockConfig()
	cfg.Replay = &churn.Trace{Events: []churn.Event{{Round: 0, Peer: 0, Kind: churn.EvJoin}}}
	cfg.Shocks = []ShockSpec{{Name: "x", Round: 1, Fraction: 0.5}}
	if _, err := New(cfg); err == nil {
		t.Fatal("Shocks+Replay accepted")
	}
}

func TestDiurnalAvailabilityRuns(t *testing.T) {
	cfg := shockConfig()
	cfg.Avail = churn.DefaultDiurnalModel(0.8)
	a := runResult(t, cfg)
	cfg2 := shockConfig()
	cfg2.Avail = churn.DefaultDiurnalModel(0.8)
	b := runResult(t, cfg2)
	if a.Deaths != b.Deaths || a.Collector.TotalRepairs() != b.Collector.TotalRepairs() ||
		a.Collector.TotalLosses() != b.Collector.TotalLosses() {
		t.Fatal("diurnal run not deterministic under equal seeds")
	}
	// The population must visibly breathe: the best and worst hours of
	// the day must differ clearly in mean online population. (The
	// response lags the forcing by a few hours — session inertia — so
	// compare extremes over the whole day rather than fixed hours.)
	probe := &onlineCounter{}
	cfg3 := shockConfig()
	cfg3.Rounds = 20 * churn.Day
	cfg3.Avail = churn.DefaultDiurnalModel(0.9)
	cfg3.Probes = []Probe{probe}
	s, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	min, max := probe.byHour[0], probe.byHour[0]
	for _, v := range probe.byHour {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if float64(max) < 1.1*float64(min) {
		t.Fatalf("diurnal population does not breathe: hourly online sums %v", probe.byHour)
	}
}

// onlineCounter sums the online population per hour of day via churn
// events (probes must not touch the simulation, so it follows session
// flips itself).
type onlineCounter struct {
	BaseProbe
	online bitset
	byHour [24]int64
}

type bitset map[int]bool

func (p *onlineCounter) OnChurn(e ChurnEvent) {
	if p.online == nil {
		p.online = make(bitset)
	}
	switch e.Kind {
	case churn.EvOnline:
		p.online[e.Peer] = true
	case churn.EvOffline, churn.EvLeave:
		p.online[e.Peer] = false
	}
}

func (p *onlineCounter) OnRoundEnd(e RoundEndEvent) {
	var n int64
	for _, on := range p.online {
		if on {
			n++
		}
	}
	p.byHour[e.Round%churn.Day] += n
}
