package redundancy

import (
	"errors"
	"math"
	"testing"
)

func TestParseFixed(t *testing.T) {
	for _, spec := range []string{"", "fixed"} {
		pol, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if pol.Name() != "fixed" || !pol.Static() {
			t.Fatalf("Parse(%q) = %#v, want static fixed", spec, pol)
		}
		bound, err := pol.Bind(128, 148, 256)
		if err != nil {
			t.Fatalf("Bind: %v", err)
		}
		if got := bound.Initial(128, 256); got != 256 {
			t.Fatalf("fixed Initial = %d, want 256", got)
		}
		if got := bound.Target(Observation{Current: 256, DataBlocks: 128, Availability: 0.1}); got != 256 {
			t.Fatalf("fixed Target = %d, want 256", got)
		}
	}
}

func TestParseAdaptive(t *testing.T) {
	cases := []struct {
		spec string
		want Adaptive
	}{
		{"adaptive", Adaptive{TargetDurability: 0.99999, Hysteresis: 6, Eval: 24, Sample: 16}},
		{"adaptive:0.95", Adaptive{TargetDurability: 0.95, Hysteresis: 6, Eval: 24, Sample: 16}},
		{"adaptive:min=160,max=256,target=0.95", Adaptive{Min: 160, Max: 256, TargetDurability: 0.95, Hysteresis: 6, Eval: 24, Sample: 16}},
		{"adaptive:target=0.9,hysteresis=4,eval=48,sample=8", Adaptive{TargetDurability: 0.9, Hysteresis: 4, Eval: 48, Sample: 8}},
	}
	for _, c := range cases {
		pol, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		a, ok := pol.(Adaptive)
		if !ok {
			t.Fatalf("Parse(%q) = %T, want Adaptive", c.spec, pol)
		}
		if a != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, a, c.want)
		}
		if a.Static() {
			t.Fatalf("Parse(%q).Static() = true", c.spec)
		}
	}
}

func TestParseErrors(t *testing.T) {
	unknown := []string{"nope", "adaptivex", "fixed2:1", ":", "adaptive2:min=1"}
	for _, spec := range unknown {
		if _, err := Parse(spec); !errors.Is(err, ErrUnknownPolicy) {
			t.Errorf("Parse(%q) err = %v, want ErrUnknownPolicy", spec, err)
		}
	}
	bad := []string{
		"fixed:1",                 // fixed takes no params
		"adaptive:min=x",          // non-integer
		"adaptive:target=2",       // outside (0,1)
		"adaptive:target=0",       // outside (0,1)
		"adaptive:min=9,max=4",    // min > max
		"adaptive:hysteresis=-1",  // negative
		"adaptive:eval=0",         // cadence < 1
		"adaptive:sample=0",       // sample < 1
		"adaptive:bogus=1",        // unknown key
		"adaptive:min=1,min=2",    // duplicate
		"adaptive:0.9,target=0.8", // bare + keyed mix
		"adaptive:min=",           // malformed
		"adaptive:,",              // empty parts
		"adaptive:min=-1",         // negative bound
	}
	for _, spec := range bad {
		if _, err := Parse(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Parse(%q) err = %v, want ErrBadSpec", spec, err)
		}
	}
}

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 2 || names[0] != "fixed" || names[1] != "adaptive" {
		t.Fatalf("Names() = %v, want [fixed adaptive ...]", names)
	}
}

func TestAdaptiveBind(t *testing.T) {
	pol, err := Parse("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := pol.Bind(128, 148, 256)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	a := bound.(Adaptive)
	if a.Min != 148 || a.Max != 256 {
		t.Fatalf("bound bounds = [%d, %d], want [148, 256]", a.Min, a.Max)
	}
	// Fresh archives provision at Max and shrink on evidence: born at
	// Min they would expect fewer than k visible blocks at realistic
	// availability, undecodable until the first grow completes.
	if got := a.Initial(128, 256); got != 256 {
		t.Fatalf("Initial = %d, want Max=256", got)
	}

	for _, c := range []struct{ min, max int }{
		{128, 256}, // min == k
		{100, 256}, // min < k
		{150, 300}, // max > n
		{200, 150}, // min > max after resolve
	} {
		p := Adaptive{Min: c.min, Max: c.max}
		if _, err := p.Bind(128, 148, 256); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Bind(min=%d,max=%d) err = %v, want ErrBadSpec", c.min, c.max, err)
		}
	}
}

func TestDurability(t *testing.T) {
	// Degenerate edges.
	if got := Durability(10, 0, 0.5); got != 1 {
		t.Fatalf("k=0: %v", got)
	}
	if got := Durability(3, 5, 0.9); got != 0 {
		t.Fatalf("n<k: %v", got)
	}
	if got := Durability(10, 5, 0); got != 0 {
		t.Fatalf("p=0: %v", got)
	}
	if got := Durability(10, 5, 1); got != 1 {
		t.Fatalf("p=1: %v", got)
	}
	// Exact small case: P[Binom(3, 0.5) >= 2] = 0.5.
	if got := Durability(3, 2, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Durability(3,2,0.5) = %v, want 0.5", got)
	}
	// n=k degenerates to p^k.
	if got, want := Durability(4, 4, 0.9), math.Pow(0.9, 4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Durability(4,4,0.9) = %v, want %v", got, want)
	}
	// Monotone in n and in p.
	prev := 0.0
	for n := 128; n <= 256; n += 16 {
		d := Durability(n, 128, 0.6)
		if d < prev {
			t.Fatalf("Durability not monotone in n at n=%d: %v < %v", n, d, prev)
		}
		prev = d
	}
	if Durability(200, 128, 0.7) <= Durability(200, 128, 0.6) {
		t.Fatal("Durability not monotone in p")
	}
	// Paper shape at high availability is effectively durable.
	if d := Durability(256, 128, 0.86); d < 0.999999 {
		t.Fatalf("Durability(256,128,0.86) = %v, want ~1", d)
	}
}

func TestEffectiveThreshold(t *testing.T) {
	// Full-size archive keeps the configured threshold.
	if got := EffectiveThreshold(128, 148, 256, 256); got != 148 {
		t.Fatalf("full size: %d, want 148", got)
	}
	// Oversized targets clamp to the configured threshold too.
	if got := EffectiveThreshold(128, 148, 256, 300); got != 148 {
		t.Fatalf("oversize: %d, want 148", got)
	}
	// The k'-k cushion is absolute: every target at or above k' keeps
	// exactly the configured threshold, so a shrunk archive's repair
	// trigger still sits the full 20 block failures above the loss line.
	for target := 148; target <= 255; target++ {
		if thr := EffectiveThreshold(128, 148, 256, target); thr != 148 {
			t.Fatalf("target=%d: thr=%d, want the absolute 148", target, thr)
		}
	}
	// Targets below k' (an archive deliberately sized under the repair
	// threshold) repair as soon as any block is missing.
	for target := 129; target < 148; target++ {
		if thr := EffectiveThreshold(128, 148, 256, target); thr != target {
			t.Fatalf("target=%d: thr=%d, want target", target, thr)
		}
	}
	// Monotone in target, and never below k.
	prev := 0
	for target := 129; target <= 256; target++ {
		thr := EffectiveThreshold(128, 148, 256, target)
		if thr < prev || thr < 128 {
			t.Fatalf("EffectiveThreshold not monotone at target=%d", target)
		}
		prev = thr
	}
	// Degenerate shape n == k.
	if got := EffectiveThreshold(16, 16, 16, 16); got != 16 {
		t.Fatalf("n==k: %d, want 16", got)
	}
}

func TestAdaptiveTarget(t *testing.T) {
	a, err := Adaptive{}.Bind(16, 20, 32)
	if err != nil {
		t.Fatal(err)
	}
	pol := a.(Adaptive)

	// Perfect availability: the minimum suffices; a full-size archive
	// descends to it stepwise, at most MaxShrinkPerEval blocks per
	// evaluation, so a mis-measured shrink can be halted by the next
	// measurement before the archive is deep in fragile territory.
	got := pol.Target(Observation{Current: 32, DataBlocks: 16, Availability: 1})
	if got != 32-MaxShrinkPerEval {
		t.Fatalf("perfect availability first step = %d, want %d", got, 32-MaxShrinkPerEval)
	}
	for cur := got; cur != pol.Min; {
		next := pol.Target(Observation{Current: cur, DataBlocks: 16, Availability: 1})
		if next >= cur || cur-next > MaxShrinkPerEval {
			t.Fatalf("descent stalled or overstepped: %d -> %d", cur, next)
		}
		cur = next
	}
	// Terrible availability: the policy pins at Max.
	got = pol.Target(Observation{Current: 20, DataBlocks: 16, Availability: 0.3})
	if got != pol.Max {
		t.Fatalf("low availability target = %d, want Max=%d", got, pol.Max)
	}
	// Hysteresis: a surplus within the band does not shrink.
	need := pol.Min // at p=1 the minimum meets the target
	within := Observation{Current: need + pol.Hysteresis, DataBlocks: 16, Availability: 1}
	if got := pol.Target(within); got != within.Current {
		t.Fatalf("within-band surplus shrank: %d -> %d", within.Current, got)
	}
	beyond := Observation{Current: need + pol.Hysteresis + 1, DataBlocks: 16, Availability: 1}
	if got := pol.Target(beyond); got != need {
		t.Fatalf("beyond-band surplus did not shrink to %d: got %d", need, got)
	}
	// Growing ignores hysteresis: any deficit grows immediately.
	grow := pol.Target(Observation{Current: pol.Min, DataBlocks: 16, Availability: 0.55})
	if grow <= pol.Min {
		t.Fatalf("deficit did not grow: %d", grow)
	}

	// Sizing references the repair threshold, not the decode bound: at
	// the paper shape and its measured ~0.86 availability the chosen
	// n(t) must be the smallest count holding >= k'=148 blocks with
	// five-nines probability — well under the fixed n=256 but far above
	// what sizing against k=128 alone would pick.
	b, err := Adaptive{}.Bind(128, 148, 256)
	if err != nil {
		t.Fatal(err)
	}
	paper := b.(Adaptive)
	n := paper.Target(Observation{Current: 148, DataBlocks: 128, Availability: 0.86})
	if n <= 148 || n >= 256 {
		t.Fatalf("paper-shape target = %d, want strictly inside (148, 256)", n)
	}
	if d := Durability(n, 148, 0.86); d < paper.TargetDurability {
		t.Fatalf("chosen n=%d misses the target: durability %v", n, d)
	}
	if d := Durability(n-1, 148, 0.86); d >= paper.TargetDurability {
		t.Fatalf("n=%d is not minimal: n-1 already meets the target (%v)", n, d)
	}
}

func TestRegisterPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty name":  func() { Register("", func(*SpecParams) (Policy, error) { return Fixed{}, nil }) },
		"nil builder": func() { Register("x-test-nil", nil) },
		"param syntax": func() {
			Register("bad=name", func(*SpecParams) (Policy, error) { return Fixed{}, nil })
		},
		"duplicate": func() {
			Register("fixed", func(*SpecParams) (Policy, error) { return Fixed{}, nil })
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
