package sim

import (
	"bytes"
	"reflect"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/dist"
	"p2pbackup/internal/selection"
)

// churnyProfiles is a two-profile population with lifetimes short
// enough that a 300-round run sees plenty of departures.
func churnyProfiles(t *testing.T) *churn.ProfileSet {
	t.Helper()
	u, err := dist.NewUniform(40, 160)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := churn.NewProfileSet([]churn.Profile{
		{Name: "fleeting", Proportion: 0.7, Lifetime: u, Availability: 0.7},
		{Name: "durable", Proportion: 0.3, Lifetime: nil, Availability: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// recordedRun executes a small generative run with trace capture on and
// returns the trace plus headline numbers.
func recordedRun(t *testing.T) (*churn.Trace, *Result) {
	t.Helper()
	cfg := smallConfig()
	cfg.Rounds = 300
	cfg.Profiles = churnyProfiles(t)
	cfg.RecordTrace = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Trace == nil || len(res.Trace.Events) == 0 {
		t.Fatal("no trace recorded")
	}
	return res.Trace, res
}

// resultKey collapses a Result into comparable headline numbers.
func resultKey(res *Result) [6]int64 {
	return [6]int64{
		res.Deaths,
		res.Collector.TotalRepairs(),
		res.Collector.TotalLosses(),
		res.Collector.TotalHardLosses(),
		int64(res.FinalPlacements),
		int64(res.FinalIncluded),
	}
}

func replayConfig(t *testing.T, trace *churn.Trace) Config {
	cfg := smallConfig()
	cfg.Rounds = 300
	cfg.Profiles = churnyProfiles(t)
	cfg.Replay = trace
	return cfg
}

// TestReplayRoundTrip is the round-trip determinism contract: a
// recorded trace, serialized and parsed back, drives two replay runs to
// bit-identical results, and the churn stream a replay emits is exactly
// the source trace.
func TestReplayRoundTrip(t *testing.T) {
	src, _ := recordedRun(t)

	// Serialize and re-read (CSV carries profiles since PR 2).
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := churn.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func() *Result {
		cfg := replayConfig(t, parsed)
		cfg.RecordTrace = true
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if resultKey(a) != resultKey(b) {
		t.Fatalf("replay not deterministic: %v vs %v", resultKey(a), resultKey(b))
	}

	// The replayed churn stream is the source trace, event for event.
	want := &churn.Trace{Events: append([]churn.Event(nil), src.Events...)}
	want.Sort()
	got := &churn.Trace{Events: append([]churn.Event(nil), a.Trace.Events...)}
	got.Sort()
	if !reflect.DeepEqual(want.Events, got.Events) {
		t.Fatalf("replayed churn differs from source: %d vs %d events", len(want.Events), len(got.Events))
	}
	if a.Deaths == 0 {
		t.Fatal("trace replayed no departures; test too weak")
	}
}

// TestReplayPreservesPopulationShape: deaths and the final category
// populations under replay match the generative run the trace came
// from (same churn in, same churn out).
func TestReplayPreservesPopulationShape(t *testing.T) {
	src, orig := recordedRun(t)
	cfg := replayConfig(t, src)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Deaths != orig.Deaths {
		t.Fatalf("replay deaths %d != recorded run deaths %d", res.Deaths, orig.Deaths)
	}
	if cfg.NumPeers != 0 && res.Config.NumPeers != orig.Config.NumPeers {
		t.Fatalf("replay population %d != original %d", res.Config.NumPeers, orig.Config.NumPeers)
	}
}

// TestReplayPairedStrategies: the point of replay is paired comparison —
// two strategies over the same churn. Both runs must see identical
// death sequences while producing their own maintenance outcomes.
func TestReplayPairedStrategies(t *testing.T) {
	src, _ := recordedRun(t)
	run := func(s selection.Strategy) *Result {
		cfg := replayConfig(t, src)
		cfg.Strategy = s
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	age := run(selection.AgeBased{L: 48})
	random := run(selection.Random{})
	if age.Deaths != random.Deaths {
		t.Fatalf("paired runs diverged in churn: %d vs %d deaths", age.Deaths, random.Deaths)
	}
	if age.Collector.TotalRepairs() == random.Collector.TotalRepairs() &&
		age.Collector.TotalLosses() == random.Collector.TotalLosses() &&
		age.FinalPlacements == random.FinalPlacements {
		t.Log("warning: strategies produced identical outcomes on this trace (possible but unlikely)")
	}
}

// TestReplayValidation: malformed traces are rejected with structural
// errors rather than corrupting a run.
func TestReplayValidation(t *testing.T) {
	mk := func(events ...churn.Event) *churn.Trace { return &churn.Trace{Events: events} }
	cases := []struct {
		name  string
		trace *churn.Trace
	}{
		{"empty", mk()},
		{"late first join", mk(
			churn.Event{Round: 0, Peer: 0, Kind: churn.EvJoin},
			churn.Event{Round: 0, Peer: 1, Kind: churn.EvJoin},
			churn.Event{Round: 3, Peer: 2, Kind: churn.EvJoin},
		)},
		{"double join", mk(
			churn.Event{Round: 0, Peer: 0, Kind: churn.EvJoin},
			churn.Event{Round: 2, Peer: 0, Kind: churn.EvJoin},
		)},
		{"leave without join", mk(
			churn.Event{Round: 0, Peer: 0, Kind: churn.EvJoin},
			churn.Event{Round: 0, Peer: 1, Kind: churn.EvOnline},
		)},
		{"leave without replacement", mk(
			churn.Event{Round: 0, Peer: 0, Kind: churn.EvJoin},
			churn.Event{Round: 4, Peer: 0, Kind: churn.EvLeave},
		)},
	}
	for _, tc := range cases {
		if _, err := compileReplay(tc.trace, int(tc.trace.MaxPeer())+1); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestReplayLifetimeOracle: replay precomputes departures, so the
// lifetime oracle sees ground truth through Env.Info.
func TestReplayLifetimeOracle(t *testing.T) {
	trace := &churn.Trace{}
	trace.AppendProfile(0, 0, churn.EvJoin, 0)
	trace.AppendProfile(0, 0, churn.EvOnline, 0)
	trace.AppendProfile(0, 1, churn.EvJoin, 0)
	trace.AppendProfile(0, 1, churn.EvOnline, 0)
	trace.AppendProfile(7, 1, churn.EvLeave, 0)
	trace.AppendProfile(7, 1, churn.EvJoin, 0)
	trace.AppendProfile(7, 1, churn.EvOnline, 0)

	script, err := compileReplay(trace, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The round-0 join of peer 1 departs at round 7; peer 0 never does.
	var sawDeparting, sawImmortal bool
	for i, e := range script.events {
		if e.Kind != churn.EvJoin {
			continue
		}
		switch {
		case e.Peer == 1 && e.Round == 0:
			if script.death[i] != 7 {
				t.Fatalf("peer 1 death = %d, want 7", script.death[i])
			}
			sawDeparting = true
		case e.Peer == 0:
			if script.death[i] != never {
				t.Fatalf("peer 0 death = %d, want never", script.death[i])
			}
			sawImmortal = true
		}
	}
	if !sawDeparting || !sawImmortal {
		t.Fatal("expected join events not found")
	}
}

// TestReplayUnsortedTraceEquivalent: an externally supplied trace in
// arbitrary event order compiles to the same script as its sorted form
// (compileReplay falls back to a copy + sort; the caller's slice is
// never mutated).
func TestReplayUnsortedTraceEquivalent(t *testing.T) {
	src, _ := recordedRun(t)
	shuffled := &churn.Trace{Events: append([]churn.Event(nil), src.Events...)}
	for i := len(shuffled.Events) - 1; i > 0; i -= 7 { // deterministic scramble
		j := (i * 13) % i
		shuffled.Events[i], shuffled.Events[j] = shuffled.Events[j], shuffled.Events[i]
	}
	backup := append([]churn.Event(nil), shuffled.Events...)

	a, err := compileReplay(src, int(src.MaxPeer())+1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compileReplay(shuffled, int(shuffled.MaxPeer())+1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.events, b.events) || !reflect.DeepEqual(a.death, b.death) {
		t.Fatal("unsorted trace compiled differently from sorted trace")
	}
	if !reflect.DeepEqual(backup, shuffled.Events) {
		t.Fatal("compileReplay mutated the caller's event slice")
	}
}
