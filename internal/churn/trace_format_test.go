package churn

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.AppendProfile(0, 0, EvJoin, 2)
	t.AppendProfile(0, 0, EvOnline, 2)
	t.AppendProfile(0, 1, EvJoin, 3)
	t.AppendProfile(0, 1, EvOffline, 3)
	t.AppendProfile(5, 0, EvLeave, 2)
	t.AppendProfile(5, 0, EvJoin, 1)
	t.AppendProfile(5, 0, EvOffline, 1)
	t.AppendProfile(9, 1, EvOnline, 3)
	return t
}

func TestTraceCSVProfileRoundTrip(t *testing.T) {
	src := sampleTrace()
	var buf bytes.Buffer
	if err := src.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src.Events, got.Events) {
		t.Fatalf("CSV round trip changed events:\n%v\n%v", src.Events, got.Events)
	}
}

func TestTraceCSVLegacyThreeColumns(t *testing.T) {
	legacy := "round,peer,kind\n0,0,join\n0,0,online\n4,0,leave\n"
	got, err := ReadCSV(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 3 {
		t.Fatalf("%d events, want 3", len(got.Events))
	}
	for i, e := range got.Events {
		if e.Profile != NoProfile {
			t.Fatalf("event %d profile = %d, want NoProfile", i, e.Profile)
		}
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	src := sampleTrace()
	var buf bytes.Buffer
	if err := src.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"join"`) {
		t.Fatalf("unexpected JSONL shape: %q", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src.Events, got.Events) {
		t.Fatalf("JSONL round trip changed events:\n%v\n%v", src.Events, got.Events)
	}
}

func TestTraceJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty JSONL accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"round":0,"peer":0,"kind":"explode"}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestTraceFileHelpers(t *testing.T) {
	src := sampleTrace()
	dir := t.TempDir()
	for _, name := range []string{"trace.csv", "trace.jsonl"} {
		path := filepath.Join(dir, name)
		if err := WriteTraceFile(path, src); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadTraceFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(src.Events, got.Events) {
			t.Fatalf("%s round trip changed events", name)
		}
	}
	if _, err := ReadTraceFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTraceMaxPeer(t *testing.T) {
	if got := (&Trace{}).MaxPeer(); got != -1 {
		t.Fatalf("empty MaxPeer = %d, want -1", got)
	}
	if got := sampleTrace().MaxPeer(); got != 1 {
		t.Fatalf("MaxPeer = %d, want 1", got)
	}
}

func TestTraceIsSorted(t *testing.T) {
	tr := sampleTrace()
	if !tr.IsSorted() {
		t.Fatal("sampleTrace not in engine order")
	}
	rev := &Trace{}
	for i := len(tr.Events) - 1; i >= 0; i-- {
		rev.Events = append(rev.Events, tr.Events[i])
	}
	if rev.IsSorted() {
		t.Fatal("reversed trace reported sorted")
	}
	rev.Sort()
	if !rev.IsSorted() {
		t.Fatal("Sort did not produce engine order")
	}
}
