package p2pnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"p2pbackup/internal/rng"
)

// Handler serves one request and returns the response message.
type Handler func(from string, req Message) Message

// Transport is a synchronous request/response fabric between named
// peers. Implementations must be safe for concurrent use.
type Transport interface {
	// Serve registers a handler under addr. Close the returned closer
	// to stop serving.
	Serve(addr string, h Handler) (io.Closer, error)
	// Call sends req to addr and waits for its response.
	Call(addr string, req Message) (Message, error)
}

// Transport errors.
var (
	ErrPeerUnreachable = errors.New("p2pnet: peer unreachable")
	ErrAddrInUse       = errors.New("p2pnet: address already served")
	ErrDropped         = errors.New("p2pnet: message dropped")
)

// ---------------------------------------------------------------------------
// In-memory transport

// InMemTransport routes calls between in-process peers with injectable
// faults: per-call drop probability and hard partitions. The zero drop
// configuration is fully reliable.
type InMemTransport struct {
	mu          sync.RWMutex
	handlers    map[string]Handler
	dropRate    float64
	partition   map[string]bool // unreachable addrs
	r           *rng.Rand
	callsMade   int64
	callsFailed int64
}

// NewInMemTransport returns an empty fabric; seed drives fault
// randomness.
func NewInMemTransport(seed uint64) *InMemTransport {
	return &InMemTransport{
		handlers:  make(map[string]Handler),
		partition: make(map[string]bool),
		r:         rng.New(seed),
	}
}

// SetDropRate makes every call fail with probability p.
func (t *InMemTransport) SetDropRate(p float64) {
	t.mu.Lock()
	t.dropRate = p
	t.mu.Unlock()
}

// SetPartitioned isolates an address (calls to it fail) until cleared.
func (t *InMemTransport) SetPartitioned(addr string, cut bool) {
	t.mu.Lock()
	if cut {
		t.partition[addr] = true
	} else {
		delete(t.partition, addr)
	}
	t.mu.Unlock()
}

// Stats reports calls made and failed (diagnostics).
func (t *InMemTransport) Stats() (made, failed int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.callsMade, t.callsFailed
}

type inmemCloser struct {
	t    *InMemTransport
	addr string
}

func (c *inmemCloser) Close() error {
	c.t.mu.Lock()
	delete(c.t.handlers, c.addr)
	c.t.mu.Unlock()
	return nil
}

// Serve implements Transport.
func (t *InMemTransport) Serve(addr string, h Handler) (io.Closer, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.handlers[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	t.handlers[addr] = h
	return &inmemCloser{t: t, addr: addr}, nil
}

// Call implements Transport. The wire codec is exercised on both
// directions so in-memory tests cover serialisation too.
func (t *InMemTransport) Call(addr string, req Message) (Message, error) {
	t.mu.Lock()
	t.callsMade++
	h, ok := t.handlers[addr]
	cut := t.partition[addr]
	drop := t.dropRate > 0 && t.r.Bool(t.dropRate)
	if !ok || cut || drop {
		t.callsFailed++
	}
	t.mu.Unlock()
	if !ok || cut {
		return nil, fmt.Errorf("%w: %s", ErrPeerUnreachable, addr)
	}
	if drop {
		return nil, fmt.Errorf("%w: call to %s", ErrDropped, addr)
	}
	// Round-trip through the codec to guarantee wire compatibility.
	raw, err := Encode(req)
	if err != nil {
		return nil, err
	}
	decoded, err := Decode(raw)
	if err != nil {
		return nil, err
	}
	resp := h(fromOf(decoded), decoded)
	if resp == nil {
		return nil, fmt.Errorf("p2pnet: handler for %s returned nil", addr)
	}
	rraw, err := Encode(resp)
	if err != nil {
		return nil, err
	}
	return Decode(rraw)
}

// fromOf extracts the sender name if the message carries one.
func fromOf(m Message) string {
	switch v := m.(type) {
	case Ping:
		return v.From
	case StoreBlock:
		return v.From
	case GetBlock:
		return v.From
	case Challenge:
		return v.From
	case StoreMaster:
		return v.From
	case GetMaster:
		return v.From
	default:
		return ""
	}
}

// ---------------------------------------------------------------------------
// TCP transport

// TCPTransport serves and calls over real sockets with length-prefixed
// frames: uint32 big-endian length, then the encoded message. Each
// call opens a fresh connection; the protocol is strictly one request,
// one response.
type TCPTransport struct {
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each read/write (default 10s).
	IOTimeout time.Duration
}

// NewTCPTransport returns a transport with default timeouts.
func NewTCPTransport() *TCPTransport {
	return &TCPTransport{DialTimeout: 5 * time.Second, IOTimeout: 10 * time.Second}
}

type tcpServer struct {
	ln   net.Listener
	wg   sync.WaitGroup
	quit chan struct{}
	once sync.Once
}

// Close is idempotent: owners and cleanup hooks may both call it.
func (s *tcpServer) Close() error {
	var err error
	s.once.Do(func() {
		close(s.quit)
		err = s.ln.Close()
		s.wg.Wait()
	})
	return err
}

// Serve implements Transport; addr is a TCP listen address (a port of
// 0 picks one; use Addr on the returned closer's listener via
// ServeListener if you need it).
func (t *TCPTransport) Serve(addr string, h Handler) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return t.ServeListener(ln, h), nil
}

// ServeListener serves on an existing listener (lets callers learn the
// bound address first).
func (t *TCPTransport) ServeListener(ln net.Listener, h Handler) io.Closer {
	s := &tcpServer{ln: ln, quit: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.quit:
					return
				default:
					continue
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				t.handleConn(conn, h)
			}()
		}
	}()
	return s
}

func (t *TCPTransport) handleConn(conn net.Conn, h Handler) {
	_ = conn.SetDeadline(time.Now().Add(t.IOTimeout))
	req, err := readFrame(conn)
	if err != nil {
		return
	}
	resp := h(fromOf(req), req)
	if resp == nil {
		resp = ErrorMsg{Text: "nil handler response"}
	}
	_ = writeFrame(conn, resp)
}

// Call implements Transport.
func (t *TCPTransport) Call(addr string, req Message) (Message, error) {
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrPeerUnreachable, addr, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(t.IOTimeout)
	_ = conn.SetDeadline(deadline)
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	return readFrame(conn)
}

func writeFrame(w io.Writer, m Message) error {
	raw, err := Encode(m)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(raw)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

func readFrame(r io.Reader) (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, ErrMessageSize
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return Decode(buf)
}
