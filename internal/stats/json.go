package stats

import "encoding/json"

// seriesJSON is the wire form of a Series. encoding/json renders
// float64 values with their shortest exact decimal representation, so a
// marshal/unmarshal round trip reproduces every point bit for bit —
// the property the campaign supervisor's worker protocol and journal
// rely on.
type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// MarshalJSON encodes the series as {"name", "x", "y"}.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{Name: s.name, X: s.xs, Y: s.ys})
}

// UnmarshalJSON decodes the {"name", "x", "y"} wire form produced by
// MarshalJSON, replacing the receiver's contents.
func (s *Series) UnmarshalJSON(data []byte) error {
	var w seriesJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.name = w.Name
	s.xs = w.X
	s.ys = w.Y
	return nil
}
