package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DiskStore is an on-disk content-addressed Store. Blocks live under
// root/xx/<hex id> where xx is the first id byte, written atomically
// (temp file + rename) so crashes never leave half blocks under their
// final name. The index is rebuilt by scanning on open. It is safe for
// concurrent use.
type DiskStore struct {
	root  string
	mu    sync.RWMutex
	sizes map[BlockID]int64
	used  int64
	quota int64
}

// OpenDiskStore opens (creating if needed) a store rooted at dir with a
// byte quota (0 = unlimited), scanning existing blocks into the index.
func OpenDiskStore(dir string, quotaBytes int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	s := &DiskStore{root: dir, sizes: make(map[BlockID]int64), quota: quotaBytes}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) != 2 {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range sub {
			if f.IsDir() || strings.HasSuffix(f.Name(), ".tmp") {
				continue
			}
			id, err := ParseBlockID(f.Name())
			if err != nil {
				continue // foreign file; ignore
			}
			info, err := f.Info()
			if err != nil {
				return nil, err
			}
			s.sizes[id] = info.Size()
			s.used += info.Size()
		}
	}
	return s, nil
}

// Root returns the store's directory.
func (s *DiskStore) Root() string { return s.root }

func (s *DiskStore) path(id BlockID) string {
	hexID := id.String()
	return filepath.Join(s.root, hexID[:2], hexID)
}

// Put implements Store.
func (s *DiskStore) Put(data []byte) (BlockID, error) {
	id := IDOf(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sizes[id]; ok {
		return id, nil
	}
	if s.quota > 0 && s.used+int64(len(data)) > s.quota {
		return BlockID{}, fmt.Errorf("%w: %d + %d > %d", ErrQuota, s.used, len(data), s.quota)
	}
	final := s.path(id)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return BlockID{}, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), id.String()+".*.tmp")
	if err != nil {
		return BlockID{}, err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return BlockID{}, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return BlockID{}, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return BlockID{}, err
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return BlockID{}, err
	}
	s.sizes[id] = int64(len(data))
	s.used += int64(len(data))
	return id, nil
}

// Get implements Store; content is re-hashed on every read.
func (s *DiskStore) Get(id BlockID) ([]byte, error) {
	s.mu.RLock()
	_, ok := s.sizes[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	data, err := os.ReadFile(s.path(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		return nil, err
	}
	if IDOf(data) != id {
		return nil, fmt.Errorf("%w: %s", ErrCorrupted, id)
	}
	return data, nil
}

// Has implements Store.
func (s *DiskStore) Has(id BlockID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sizes[id]
	return ok
}

// Delete implements Store.
func (s *DiskStore) Delete(id BlockID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.sizes[id]
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return err
	}
	delete(s.sizes, id)
	s.used -= size
	return nil
}

// Len implements Store.
func (s *DiskStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// UsedBytes implements Store.
func (s *DiskStore) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// IDs implements Store.
func (s *DiskStore) IDs() []BlockID {
	s.mu.RLock()
	ids := make([]BlockID, 0, len(s.sizes))
	for id := range s.sizes {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool {
		for b := range ids[i] {
			if ids[i][b] != ids[j][b] {
				return ids[i][b] < ids[j][b]
			}
		}
		return false
	})
	return ids
}

var _ Store = (*MemStore)(nil)
var _ Store = (*DiskStore)(nil)
