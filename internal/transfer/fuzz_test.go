package transfer

import "testing"

// FuzzParse throws arbitrary class-spec strings at the bandwidth
// parser (the CLI's -bandwidth flag). Every input must either produce
// validated Params or an error — never panic, and whatever Parse
// accepts must itself re-validate cleanly, since the engine trusts
// parsed Params without re-checking.
func FuzzParse(f *testing.F) {
	for _, s := range Presets() {
		f.Add(s)
	}
	for _, s := range []string{
		"",
		"dsl:1:32/256",
		"slow:0.6:8/64;dsl:0.3:32/256;ftth:0.1:128/1024",
		"restart;dsl:1:32/256:16",
		"resume;a:0.5:0/0;b:0.5:1/1",
		"dsl:1:32/256:0",
		"dsl:1.5:32/256",
		"dsl:-1:32/256",
		"dsl:1:32",
		"dsl:1:x/y",
		"x:nan:1/1",
		";;;",
		"restart",
		"instant;dsl:1:32/256",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both params and error %v", spec, err)
			}
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) returned nil params without error", spec)
		}
		if _, err := p.Validate(); err != nil {
			t.Fatalf("Parse(%q) accepted params that fail Validate: %v", spec, err)
		}
		if _, err := Parse(spec); err != nil {
			t.Fatalf("Parse(%q) succeeded then failed: %v", spec, err)
		}
	})
}
