package monitor

import (
	"math"
	"testing"

	"p2pbackup/internal/rng"
)

// naiveHistory is a reference implementation of the IntervalHistory
// query semantics: it stores every transition since the last reset,
// never prunes, and answers Uptime by walking segments — the shape the
// production code had before the prefix-sum refactor. Queries are
// compared against it on randomized schedules; the production pruning
// must be invisible to any in-window query.
type naiveHistory struct {
	window int64
	trans  []struct {
		round  int64
		online bool
	}
	began bool
	start int64
}

func (h *naiveHistory) record(round int64, online bool) {
	if h.began {
		last := &h.trans[len(h.trans)-1]
		if last.online == online {
			return
		}
		if round == last.round {
			last.online = online
			return
		}
	} else {
		h.began = true
		h.start = round
	}
	h.trans = append(h.trans, struct {
		round  int64
		online bool
	}{round, online})
}

func (h *naiveHistory) reset() {
	h.trans = h.trans[:0]
	h.began = false
	h.start = 0
}

func (h *naiveHistory) uptime(now, n int64) float64 {
	if !h.began || n <= 0 {
		return 0
	}
	if n > h.window {
		n = h.window
	}
	from := now - n
	if from < h.start {
		from = h.start
	}
	if from >= now {
		return 0
	}
	var online int64
	for i, tr := range h.trans {
		if !tr.online {
			continue
		}
		lo := tr.round
		if lo < from {
			lo = from
		}
		hi := now
		if i+1 < len(h.trans) && h.trans[i+1].round < hi {
			hi = h.trans[i+1].round
		}
		if hi > lo {
			online += hi - lo
		}
	}
	return float64(online) / float64(now-from)
}

func (h *naiveHistory) onlineAt(round int64) (bool, bool) {
	if !h.began || round < h.start {
		return false, false
	}
	for i := len(h.trans) - 1; i >= 0; i-- {
		if h.trans[i].round <= round {
			return h.trans[i].online, true
		}
	}
	return false, false
}

// TestIntervalHistoryMatchesNaive drives the prefix-summed
// IntervalHistory and the naive reference through randomized
// record/reset/query schedules and demands bit-identical uptimes —
// including interleaved queries, which no longer prune and so must
// never perturb later answers.
func TestIntervalHistoryMatchesNaive(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 200; trial++ {
		window := int64(8 + r.Intn(200))
		iv := NewIntervalHistory(window)
		ref := &naiveHistory{window: window}

		round := int64(r.Intn(50))
		online := r.Bool(0.5)
		for step := 0; step < 300; step++ {
			switch {
			case r.Bool(0.02): // occupant replaced
				iv.Reset()
				ref.reset()
				round += int64(r.Intn(30))
				online = r.Bool(0.5)
			case r.Bool(0.5): // session transition (sometimes same-round)
				if err := iv.RecordTransition(round, online); err != nil {
					t.Fatal(err)
				}
				ref.record(round, online)
				online = !online
				round += int64(r.Intn(12))
			default: // query at an arbitrary horizon, including the far future
				now := round + int64(r.Intn(40))
				n := int64(1 + r.Intn(int(window)+40))
				got, want := iv.Uptime(now, n), ref.uptime(now, n)
				if got != want {
					t.Fatalf("trial %d step %d: Uptime(%d,%d) = %v, naive %v", trial, step, now, n, got, want)
				}
				probe := now - int64(r.Intn(int(window)))
				gotOn, gotKnown := iv.OnlineAt(probe)
				wantOn, wantKnown := ref.onlineAt(probe)
				// The reference never prunes; the production history may
				// have forgotten rounds before its stored span. A pruned
				// answer must only ever degrade to unknown, never to a
				// wrong state.
				if gotKnown && (gotOn != wantOn || !wantKnown) {
					t.Fatalf("trial %d step %d: OnlineAt(%d) = (%v,%v), naive (%v,%v)",
						trial, step, probe, gotOn, gotKnown, wantOn, wantKnown)
				}
			}
		}
	}
}

// TestHistoriesAgreeWithInterleavedQueries extends the bit/interval
// agreement property with queries fired mid-schedule: read-only queries
// on either representation must not disturb the agreement.
func TestHistoriesAgreeWithInterleavedQueries(t *testing.T) {
	r := rng.New(777)
	const window = 96
	for trial := 0; trial < 30; trial++ {
		bit := NewBitHistory(window)
		iv := NewIntervalHistory(window)
		online := r.Bool(0.5)
		if err := iv.RecordTransition(0, online); err != nil {
			t.Fatal(err)
		}
		total := int64(150 + r.Intn(250))
		for round := int64(0); round < total; round++ {
			if r.Bool(0.12) {
				online = !online
				if err := iv.RecordTransition(round, online); err != nil {
					t.Fatal(err)
				}
			}
			if err := bit.Record(round, online); err != nil {
				t.Fatal(err)
			}
			if r.Bool(0.1) {
				n := int64(1 + r.Intn(window))
				got, want := iv.Uptime(round+1, n), bit.Uptime(int(n))
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("trial %d round %d window %d: interval=%v bit=%v", trial, round, n, got, want)
				}
			}
		}
	}
}

// TestIntervalHistoryQueriesAreReadOnly pins the post-refactor
// contract: Uptime, OnlineAt and Transitions are side-effect-free, and
// the stored transition count is bounded by recording's eager pruning
// alone. (Pre-refactor, Uptime pruned and Transitions reported a
// prune-dependent count; querying far in the future could shrink it.)
func TestIntervalHistoryQueriesAreReadOnly(t *testing.T) {
	const window = 50
	h := NewIntervalHistory(window)
	for round := int64(0); round < 400; round += 5 {
		if err := h.RecordTransition(round, (round/5)%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	before := h.Transitions()
	if before == 0 || before > window/5+2 {
		t.Fatalf("eager pruning left %d transitions, want ~%d", before, window/5+1)
	}

	// A barrage of queries — including ones far past the recorded span
	// that the old lazy pruning would have used to discard history —
	// must not change any observable state.
	up := h.Uptime(400, window)
	for _, now := range []int64{100, 395, 400, 1000, 100000} {
		for _, n := range []int64{1, 7, window, 10 * window} {
			h.Uptime(now, n)
		}
		h.OnlineAt(now)
	}
	if got := h.Transitions(); got != before {
		t.Fatalf("queries changed Transitions: %d -> %d", before, got)
	}
	if got := h.Uptime(400, window); got != up {
		t.Fatalf("repeated Uptime changed: %v -> %v", up, got)
	}
	if on, known := h.OnlineAt(390); !known || !on {
		t.Fatalf("OnlineAt(390) = (%v,%v) after query barrage", on, known)
	}
}

// TestBitHistoryPopcountMatchesBitLoop cross-checks the word-masked
// popcount Uptime against a per-bit reference on random schedules and
// window shapes (word-aligned, straddling, wrapping).
func TestBitHistoryPopcountMatchesBitLoop(t *testing.T) {
	r := rng.New(4242)
	for _, window := range []int{7, 63, 64, 65, 100, 129, 640} {
		h := NewBitHistory(window)
		var ref []bool
		total := int64(window*2 + r.Intn(window))
		for round := int64(0); round < total; round++ {
			on := r.Bool(0.6)
			if err := h.Record(round, on); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, on)
		}
		for _, n := range []int{1, 2, 63, 64, 65, window - 1, window, window + 9} {
			if n < 1 {
				continue
			}
			m := n
			if m > window {
				m = window
			}
			on := 0
			for i := len(ref) - m; i < len(ref); i++ {
				if ref[i] {
					on++
				}
			}
			want := float64(on) / float64(m)
			if got := h.Uptime(n); math.Abs(got-want) > 1e-12 {
				t.Fatalf("window %d Uptime(%d) = %v, want %v", window, n, got, want)
			}
		}
	}
}
