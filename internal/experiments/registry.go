package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/redundancy"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/transfer"
)

// Options configures a registry run.
type Options struct {
	Scale       Scale
	Seed        uint64
	Parallelism int
	OutDir      string // "" = don't write files
	// TracePath names a churn trace (CSV or JSONL, e.g. from
	// cmd/tracegen) for the "replay" experiment; the trace defines the
	// population size. The "ablation-estimator" experiment also uses it
	// for its replay block when given (recording one internally
	// otherwise).
	TracePath string
	// StrategySpec, when non-empty, overrides the base config's
	// partner-selection strategy ("age:L=2160", "estimator:pareto",
	// "monitored-availability:720"; see selection.Parse). Campaigns that
	// sweep the strategy themselves (ablation-strategy, replay,
	// ablation-estimator) override it per variant.
	StrategySpec string
	// Bandwidth, when non-empty, attaches bandwidth classes to the base
	// config ("instant", "dsl", "mixed", "skewed", or an explicit class
	// spec; see transfer.Parse), so any experiment can run over metered
	// links. Campaigns that sweep the bandwidth mix themselves
	// (transfer-baseline, flashcrowd, uplink-sweep) override it per
	// variant.
	Bandwidth string
	// Redundancy, when non-empty, sets the base config's per-archive
	// redundancy policy ("fixed", "adaptive:min=M,target=P"; see
	// redundancy.Parse), so any experiment can run under adaptive
	// provisioning. The fixed-vs-adaptive campaign sweeps the policy
	// itself, using this spec as its adaptive arm when it names one.
	Redundancy string
	// Shards sets sim.Config.Shards on every variant: 0 or 1 keeps the
	// sequential engine, >= 2 runs each simulation's shardable phases on
	// that many workers. Results are bit-identical at every value (the
	// sharded engine's equivalence guarantee), so this is purely a
	// speed/parallelism knob, composing with Parallelism, which runs
	// whole variants concurrently.
	Shards int
	// Walk selects the engine generation on every variant: "" or
	// sim.WalkV1 keeps the canonical sequential churn walk, sim.WalkV3
	// runs the shard-local walk + deterministic merge engine (its own
	// versioned trajectory, bit-identical at every shard count; see
	// internal/sim/walk3.go).
	Walk string
	// PhaseTimes turns on per-phase wall-time accounting in every
	// variant's sim.Result (walk / merge / maintenance / transfer-drain
	// / evaluation), for the CLI's -phasetimes report.
	PhaseTimes bool
	// Procs, when > 0, runs every campaign under the fault-tolerant
	// process supervisor instead of the in-process Runner: each variant
	// executes in an isolated worker process (the `p2psim -worker`
	// protocol) with per-variant timeouts, heartbeat stall detection,
	// classified retries with exponential backoff, and optional
	// checkpoint journaling. Results are bit-identical to the
	// in-process run (see Supervisor).
	Procs int
	// VariantTimeout kills a supervised variant attempt that runs
	// longer (0 = no limit). Supervised mode only.
	VariantTimeout time.Duration
	// HeartbeatGrace kills a supervised attempt whose worker goes
	// silent for this long; 0 picks a 30s default. Supervised mode only.
	HeartbeatGrace time.Duration
	// Retry bounds supervised retries (zero fields mean 3 attempts,
	// 500ms base backoff, 10s cap). Supervised mode only.
	Retry RetryPolicy
	// JournalPath, when non-empty in supervised mode, checkpoints every
	// finished variant to this append-only fsynced JSONL journal. Unless
	// Resume is set the file is truncated once per RunCtx call.
	JournalPath string
	// Resume keeps JournalPath's existing entries and re-runs only
	// variants without a completed row for the same campaign spec.
	Resume bool
	// WorkerCmd overrides the worker argv (default: this executable
	// with -worker appended). WorkerEnv entries are appended to each
	// worker's environment. Supervised mode only; tests use these.
	WorkerCmd []string
	WorkerEnv []string
	// Progress receives plain-text progress messages (heartbeats and
	// per-variant completions).
	Progress func(string)
	// Events, when non-nil, additionally receives the Runner's typed
	// event stream for every campaign the experiment runs.
	Events func(Event)
}

// runner builds the execution policy an Options implies.
func (o Options) runner() Runner {
	return Runner{Parallelism: o.Parallelism}
}

// supervised reports whether campaigns run under the process
// supervisor rather than the in-process Runner.
func (o Options) supervised() bool { return o.Procs > 0 }

// collect executes a campaign with the execution layer the Options
// select: the in-process Runner, or — when Procs is set — the process
// supervisor, rebuilding the campaign in each worker from spec.
func (o Options) collect(ctx context.Context, r Runner, camp Campaign, spec CampaignSpec, sink func(Event)) ([]Row, error) {
	if !o.supervised() {
		return collectRows(ctx, r, camp, sink)
	}
	grace := o.HeartbeatGrace
	if grace <= 0 {
		grace = 30 * time.Second
	}
	sup := &Supervisor{
		Procs:          o.Procs,
		VariantTimeout: o.VariantTimeout,
		HeartbeatGrace: grace,
		Retry:          o.Retry,
		WorkerCmd:      o.WorkerCmd,
		WorkerEnv:      o.WorkerEnv,
		JournalPath:    o.JournalPath,
		Resume:         o.Resume,
	}
	return sup.Run(ctx, spec, camp, sink)
}

// spec seeds a CampaignSpec of the given kind with the Options' shared
// knobs; callers add the kind's sweep parameters.
func (o Options) spec(kind string) CampaignSpec {
	return CampaignSpec{
		Kind:         kind,
		Scale:        o.Scale,
		Seed:         o.Seed,
		StrategySpec: o.StrategySpec,
		Bandwidth:    o.Bandwidth,
		Redundancy:   o.Redundancy,
		Shards:       o.Shards,
		Walk:         o.Walk,
		PhaseTimes:   o.PhaseTimes,
		TracePath:    o.TracePath,
	}
}

// sink merges the typed event sink and the plain-text progress callback.
func (o Options) sink(rowMsg func(Row) string) func(Event) {
	text := progressSink(o.Progress, rowMsg)
	if o.Events == nil {
		return text
	}
	return func(ev Event) {
		o.Events(ev)
		if text != nil {
			text(ev)
		}
	}
}

// Summary is what an experiment reports back to the CLI.
type Summary struct {
	Name  string
	Files []string
	Text  string
}

// Names lists the runnable experiment ids.
func Names() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "costmodel", "ablation-strategy", "ablation-availability", "ablation-horizon", "ablation-delay", "ablation-estimator", "diurnal", "blackout", "replay", "transfer-baseline", "flashcrowd", "uplink-sweep", "fixed-vs-adaptive", "all"}
}

// Run executes an experiment by id and writes its data files.
//
// Deprecated: compatibility wrapper over RunCtx with a background
// context; it cannot be cancelled.
func Run(name string, opts Options) ([]Summary, error) {
	return RunCtx(context.Background(), name, opts)
}

// RunCtx executes an experiment by id over the Runner, streaming
// events to opts.Events/opts.Progress and honouring ctx cancellation,
// and writes the experiment's data files.
func RunCtx(ctx context.Context, name string, opts Options) ([]Summary, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	// A fresh supervised run truncates the journal exactly once, then
	// flips to resume semantics: every campaign of this call (several
	// for "all") appends to the same journal, disambiguated by spec
	// fingerprints.
	if opts.supervised() && opts.JournalPath != "" && !opts.Resume {
		if dir := filepath.Dir(opts.JournalPath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("experiments: creating journal directory: %w", err)
			}
		}
		if err := os.WriteFile(opts.JournalPath, nil, 0o644); err != nil {
			return nil, fmt.Errorf("experiments: truncating journal: %w", err)
		}
		opts.Resume = true
	}
	switch name {
	case "fig1", "fig2":
		return runFigs12(ctx, opts)
	case "fig3", "fig4":
		return runFigs34(ctx, opts)
	case "costmodel":
		return runCostModel(opts)
	case "ablation-strategy":
		return runAblation(ctx, opts, "ablation_strategy.tsv", opts.spec("strategy"), StrategyCampaign)
	case "ablation-availability":
		return runAblation(ctx, opts, "ablation_availability.tsv", opts.spec("availability"), AvailabilityCampaign)
	case "ablation-delay":
		spec := opts.spec("repair-delay")
		spec.Delays = []int{0, 6, 24, 72}
		return runAblation(ctx, opts, "ablation_delay.tsv", spec, func(cfg sim.Config) Campaign {
			return RepairDelayCampaign(cfg, spec.Delays)
		})
	case "ablation-horizon":
		spec := opts.spec("horizon")
		spec.Horizons = []int64{30 * churn.Day, 90 * churn.Day, 180 * churn.Day}
		return runAblation(ctx, opts, "ablation_horizon.tsv", spec, func(cfg sim.Config) Campaign {
			return HorizonCampaign(cfg, spec.Horizons)
		})
	case "ablation-estimator":
		return runEstimator(ctx, opts)
	case "diurnal":
		spec := opts.spec("diurnal")
		spec.Amplitudes = []float64{0, 0.3, 0.6, 0.9}
		return runAblation(ctx, opts, "scenario_diurnal.tsv", spec, func(cfg sim.Config) Campaign {
			return DiurnalCampaign(cfg, spec.Amplitudes)
		})
	case "blackout":
		return runAblation(ctx, opts, "scenario_blackout.tsv", opts.spec("blackout"), BlackoutCampaign)
	case "replay":
		if opts.TracePath == "" {
			return nil, fmt.Errorf("experiments: replay needs a churn trace (-trace FILE; generate one with 'tracegen gen')")
		}
		trace, err := churn.ReadTraceFile(opts.TracePath)
		if err != nil {
			return nil, err
		}
		return runAblation(ctx, opts, "scenario_replay.tsv", opts.spec("replay"), func(cfg sim.Config) Campaign {
			return ReplayCampaign(cfg, trace)
		})
	case "transfer-baseline":
		return runTransfer(ctx, opts, "scenario_transfer_baseline.tsv", opts.spec("transfer-baseline"), TransferBaselineCampaign)
	case "flashcrowd":
		return runTransfer(ctx, opts, "scenario_flashcrowd.tsv", opts.spec("flashcrowd"), FlashCrowdCampaign)
	case "uplink-sweep":
		return runTransfer(ctx, opts, "scenario_uplink_sweep.tsv", opts.spec("uplink-sweep"), UplinkSweepCampaign)
	case "fixed-vs-adaptive":
		return runRedundancy(ctx, opts)
	case "all":
		var all []Summary
		for _, n := range []string{"costmodel", "fig1", "fig3", "ablation-strategy", "ablation-availability", "ablation-horizon", "ablation-delay", "ablation-estimator", "diurnal", "blackout", "transfer-baseline", "flashcrowd", "uplink-sweep", "fixed-vs-adaptive"} {
			s, err := RunCtx(ctx, n, opts)
			if err != nil {
				return all, err
			}
			all = append(all, s...)
		}
		return all, nil
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", name, Names())
	}
}

func baseFor(opts Options) (sim.Config, error) {
	cfg, err := BaseConfig(opts.Scale)
	if err != nil {
		return cfg, err
	}
	cfg.Seed = opts.Seed
	cfg.Shards = opts.Shards
	cfg.Walk = opts.Walk
	cfg.PhaseTimes = opts.PhaseTimes
	if opts.StrategySpec != "" {
		// Parse eagerly so a typo fails before any simulation runs.
		if _, err := selection.ParseWith(opts.StrategySpec, selection.Defaults{Horizon: cfg.AcceptHorizon}); err != nil {
			return cfg, err
		}
		cfg.StrategySpec = opts.StrategySpec
	}
	if opts.Bandwidth != "" {
		bw, err := transfer.Parse(opts.Bandwidth)
		if err != nil {
			return cfg, err
		}
		cfg.Bandwidth = bw
	}
	if opts.Redundancy != "" {
		// Parse eagerly so a typo fails before any simulation runs.
		if _, err := redundancy.Parse(opts.Redundancy); err != nil {
			return cfg, err
		}
		cfg.RedundancySpec = opts.Redundancy
	}
	return cfg, nil
}

// estimatorTraceRounds caps the internally recorded trace behind the
// ablation-estimator replay block: long enough for elders to exist,
// short enough that recording stays cheap at every scale.
const estimatorTraceRounds = 10000

// runEstimator executes the ablation-estimator experiment. Its replay
// block replays opts.TracePath when given; otherwise it records a trace
// internally from a strategy-neutral run (churn does not depend on the
// strategy) with a seed derived from the base seed, so the whole
// experiment stays a deterministic function of (scale, seed).
func runEstimator(ctx context.Context, opts Options) ([]Summary, error) {
	spec := opts.spec("estimator")
	var trace *churn.Trace
	if opts.TracePath != "" {
		t, err := churn.ReadTraceFile(opts.TracePath)
		if err != nil {
			return nil, err
		}
		trace = t
	} else {
		cfg, err := baseFor(opts)
		if err != nil {
			return nil, err
		}
		cfg.Seed = cfg.Seed*7349981 + 17
		if cfg.Rounds > estimatorTraceRounds {
			cfg.Rounds = estimatorTraceRounds
		}
		cfg.RecordTrace = true
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("recording %d-round churn trace for the replay block", cfg.Rounds))
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		trace = res.Trace
		if opts.supervised() {
			path, cleanup, err := materializeTraceFile(trace, "p2psim-estimator")
			if err != nil {
				return nil, err
			}
			defer cleanup()
			spec.TracePath = path
		}
	}
	return runAblation(ctx, opts, "ablation_estimator.tsv", spec, func(cfg sim.Config) Campaign {
		return EstimatorCampaign(cfg, trace)
	})
}

// materializeTraceFile writes an internally recorded churn trace to a
// temp JSONL file so worker processes replay exactly the same churn
// the parent recorded (the JSONL round trip is lossless — see
// internal/churn's fuzz tests). The final name is derived from the
// trace content, not a random suffix: the path lands in the campaign
// spec, and the spec's fingerprint keys the checkpoint journal — a
// re-recorded (deterministic) trace must map to the same fingerprint
// or -resume would re-run every variant of trace-backed campaigns.
// The caller removes it after the campaign.
func materializeTraceFile(trace *churn.Trace, prefix string) (string, func(), error) {
	f, err := os.CreateTemp("", prefix+"-*.jsonl")
	if err != nil {
		return "", nil, err
	}
	tmp := f.Name()
	f.Close()
	if err := churn.WriteTraceFile(tmp, trace); err != nil {
		os.Remove(tmp)
		return "", nil, err
	}
	raw, err := os.ReadFile(tmp)
	if err != nil {
		os.Remove(tmp)
		return "", nil, err
	}
	sum := sha256.Sum256(raw)
	path := filepath.Join(os.TempDir(), fmt.Sprintf("%s-%s.jsonl", prefix, hex.EncodeToString(sum[:8])))
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", nil, err
	}
	return path, func() { os.Remove(path) }, nil
}

func writeFile(opts Options, name string, emit func(io.Writer) error) (string, error) {
	if opts.OutDir == "" {
		return "", nil
	}
	if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(opts.OutDir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := emit(f); err != nil {
		return "", err
	}
	return path, f.Close()
}

func runFigs12(ctx context.Context, opts Options) ([]Summary, error) {
	cfg, err := baseFor(opts)
	if err != nil {
		return nil, err
	}
	camp, err := ThresholdCampaign(cfg, PaperThresholds())
	if err != nil {
		return nil, err
	}
	rows, err := opts.collect(ctx, opts.runner(), camp, opts.spec("threshold"), opts.sink(thresholdDoneMessage))
	if err != nil {
		return nil, err
	}
	sweep := ThresholdSweepFromRows(rows)
	sweep.Scale = opts.Scale
	var files []string
	if p, err := writeFile(opts, "fig1_repairs_by_threshold.tsv", sweep.WriteRepairTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	if p, err := writeFile(opts, "fig2_losses_by_threshold.tsv", sweep.WriteLossTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := "threshold\trepairs/1k(newcomer,young,old,elder)\tlosses/1k(newcomer,young,old,elder)\n"
	for _, p := range sweep.Points {
		text += fmt.Sprintf("%d\t%.3g %.3g %.3g %.3g\t%.3g %.3g %.3g %.3g\n",
			p.Threshold,
			p.RepairRate[0], p.RepairRate[1], p.RepairRate[2], p.RepairRate[3],
			p.LossRate[0], p.LossRate[1], p.LossRate[2], p.LossRate[3])
	}
	return []Summary{{Name: "fig1+fig2", Files: files, Text: text}}, nil
}

func runFigs34(ctx context.Context, opts Options) ([]Summary, error) {
	cfg, err := baseFor(opts)
	if err != nil {
		return nil, err
	}
	r := opts.runner()
	r.Parallelism = 1
	r.RoundEvents = opts.Progress != nil || opts.Events != nil
	rows, err := opts.collect(ctx, r, FocalCampaign(cfg), opts.spec("focal"), opts.sink(nil))
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: focal run failed; no rows to report")
	}
	focal := FocalFromRow(rows[0])
	focal.Scale = opts.Scale
	var files []string
	if p, err := writeFile(opts, "fig3_observer_repairs.tsv", focal.WriteObserverTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	if p, err := writeFile(opts, "fig4_cumulative_losses.tsv", focal.WriteLossSeriesTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := "observer\tcumulative repairs\n"
	for i, n := range focal.ObserverNames {
		text += fmt.Sprintf("%s\t%d\n", n, focal.ObserverCounts[i])
	}
	for c := 0; c < len(focal.LossSeries); c++ {
		_, last := focal.LossSeries[c].Last()
		text += fmt.Sprintf("losses/peer[%s]\t%.3f\n", focal.LossSeries[c].Name(), last)
	}
	return []Summary{{Name: "fig3+fig4", Files: files, Text: text}}, nil
}

func runCostModel(opts Options) ([]Summary, error) {
	rows, err := costmodel.PaperTable()
	if err != nil {
		return nil, err
	}
	emit := func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "#case\tdownload_s\tupload_s\ttotal_min\trepairs_per_day"); err != nil {
			return err
		}
		for _, r := range rows {
			if _, err := fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.1f\t%.1f\n",
				r.Label, r.Cost.Download.Seconds(), r.Cost.Upload.Seconds(),
				r.Cost.Total().Minutes(), r.RepairsPerDay); err != nil {
				return err
			}
		}
		return nil
	}
	var files []string
	if p, err := writeFile(opts, "table_repair_cost.tsv", emit); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := ""
	for _, r := range rows {
		text += fmt.Sprintf("%-26s total %.1f min (%.0fs down + %.0fs up), max %.1f repairs/day\n",
			r.Label, r.Cost.Total().Minutes(), r.Cost.Download.Seconds(), r.Cost.Upload.Seconds(), r.RepairsPerDay)
	}
	return []Summary{{Name: "costmodel", Files: files, Text: text}}, nil
}

func runAblation(ctx context.Context, opts Options, filename string, spec CampaignSpec, build func(sim.Config) Campaign) ([]Summary, error) {
	cfg, err := baseFor(opts)
	if err != nil {
		return nil, err
	}
	camp := build(cfg)
	rows, err := opts.collect(ctx, opts.runner(), camp, spec, opts.sink(doneMessage(camp.Name)))
	if err != nil {
		return nil, err
	}
	res := AblationFromRows(camp.Name, rows)
	var files []string
	if p, err := writeFile(opts, filename, res.WriteTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := fmt.Sprintf("%-24s %10s %8s %8s\n", "variant", "repairs", "losses", "deaths")
	for _, p := range res.Points {
		text += fmt.Sprintf("%-24s %10d %8d %8d\n", p.Label, p.Repairs, p.Losses, p.Deaths)
	}
	return []Summary{{Name: res.Name, Files: files, Text: text}}, nil
}
