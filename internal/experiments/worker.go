package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
)

// The worker protocol. A worker process (`p2psim -worker`, or a test
// binary re-exec'd through its TestMain hook) receives exactly one
// workerRequest as JSON on stdin, runs the requested variant, and
// writes newline-delimited JSON messages on stdout: heartbeats while
// the simulation advances, then a single result message. Classification
// happens on the supervisor side from the exit status, stderr and the
// message stream; the worker's only obligations are the result line on
// success, "panic: ..." on stderr with exit code 2 on a contained
// panic, and a nonzero exit otherwise.

// workerRequest is the supervisor→worker handshake.
type workerRequest struct {
	Spec    CampaignSpec `json:"spec"`
	Variant int          `json:"variant"`
	// Attempt is 1-based; the fault injector uses it so an injected
	// fault can clear after N attempts.
	Attempt int `json:"attempt"`
	// HeartbeatMillis is the requested heartbeat period (0 = 1000).
	HeartbeatMillis int `json:"heartbeat_millis,omitempty"`
}

// workerMessage is one stdout line from the worker.
type workerMessage struct {
	Type   string          `json:"type"` // "heartbeat" or "result"
	Round  int64           `json:"round,omitempty"`
	Result *resultSnapshot `json:"result,omitempty"`
}

// resultSnapshot is sim.Result in wire form: everything a row consumer
// reads except Config (rebuilt by the supervisor from the shared spec)
// and Trace (only the parent-side trace recorder uses it, in-process).
type resultSnapshot struct {
	Collector       *metrics.Collector       `json:"collector"`
	Observers       *metrics.ObserverTracker `json:"observers,omitempty"`
	Deaths          int64                    `json:"deaths"`
	Cancels         int64                    `json:"cancels"`
	FinalPlacements int                      `json:"final_placements"`
	FinalIncluded   int                      `json:"final_included"`
	Phases          *sim.PhaseTimes          `json:"phases,omitempty"`
}

// snapshotResult converts a finished run for the wire.
func snapshotResult(res *sim.Result) *resultSnapshot {
	return &resultSnapshot{
		Collector:       res.Collector,
		Observers:       res.Observers,
		Deaths:          res.Deaths,
		Cancels:         res.Cancels,
		FinalPlacements: res.FinalPlacements,
		FinalIncluded:   res.FinalIncluded,
		Phases:          res.Phases,
	}
}

// restore rebuilds the sim.Result with the locally materialised config.
func (sn *resultSnapshot) restore(cfg sim.Config) *sim.Result {
	return &sim.Result{
		Config:          cfg,
		Collector:       sn.Collector,
		Observers:       sn.Observers,
		Deaths:          sn.Deaths,
		Cancels:         sn.Cancels,
		FinalPlacements: sn.FinalPlacements,
		FinalIncluded:   sn.FinalIncluded,
		Phases:          sn.Phases,
	}
}

// FaultEnv is the environment variable the worker's fault injector
// reads. Its value is a '|'-separated list of clauses of the form
// KIND@variantN[xM]: inject KIND into variant N's first M attempts
// (default 1, so retries succeed). Kinds: "panic" (a Go panic inside
// the worker), "hang" (block forever, never heartbeating — exercises
// stall/timeout kills), "exitC" (exit with code C), "kill9" (the worker
// SIGKILLs itself — indistinguishable from the OOM killer, which is the
// point). Example:
//
//	P2PSIM_FAULT='panic@variant3|hang@variant5x2|exit2@variant1'
//
// The injector exists for the supervisor's tests and chaos CI job; it
// does nothing unless the variable is set.
const FaultEnv = "P2PSIM_FAULT"

// fault is one parsed injection clause.
type fault struct {
	kind     string // "panic", "hang", "exit", "kill9"
	exitCode int
	variant  int
	attempts int // fault fires while attempt <= attempts
}

// parseFaults parses a FaultEnv value; empty input means no faults.
func parseFaults(spec string) ([]fault, error) {
	if spec == "" {
		return nil, nil
	}
	var out []fault
	for _, clause := range strings.Split(spec, "|") {
		kindStr, rest, ok := strings.Cut(clause, "@")
		if !ok {
			return nil, fmt.Errorf("experiments: fault clause %q: missing @variantN", clause)
		}
		var f fault
		switch {
		case kindStr == "panic" || kindStr == "hang" || kindStr == "kill9":
			f.kind = kindStr
		case strings.HasPrefix(kindStr, "exit"):
			code, err := strconv.Atoi(kindStr[len("exit"):])
			if err != nil || code < 1 || code > 255 {
				return nil, fmt.Errorf("experiments: fault clause %q: bad exit code", clause)
			}
			f.kind, f.exitCode = "exit", code
		default:
			return nil, fmt.Errorf("experiments: fault clause %q: unknown kind %q", clause, kindStr)
		}
		numStr, ok := strings.CutPrefix(rest, "variant")
		if !ok {
			return nil, fmt.Errorf("experiments: fault clause %q: want variantN after @", clause)
		}
		f.attempts = 1
		if numStr, rest, ok := strings.Cut(numStr, "x"); ok {
			n, err := strconv.Atoi(rest)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("experiments: fault clause %q: bad attempt count", clause)
			}
			f.attempts = n
			if v, err := strconv.Atoi(numStr); err == nil && v >= 0 {
				f.variant = v
			} else {
				return nil, fmt.Errorf("experiments: fault clause %q: bad variant index", clause)
			}
		} else if v, err := strconv.Atoi(numStr); err == nil && v >= 0 {
			f.variant = v
		} else {
			return nil, fmt.Errorf("experiments: fault clause %q: bad variant index", clause)
		}
		out = append(out, f)
	}
	return out, nil
}

// trigger fires the fault. It does not return for any kind.
func (f fault) trigger() {
	switch f.kind {
	case "panic":
		panic(fmt.Sprintf("injected fault: variant %d", f.variant))
	case "hang":
		// Not `select {}`: with every goroutine blocked the runtime's
		// deadlock detector would crash the process, which is an exit,
		// not a hang. Sleeping forever is invisible to it.
		for {
			time.Sleep(time.Hour)
		}
	case "exit":
		os.Exit(f.exitCode)
	case "kill9":
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		for { // the signal is fatal; never reached
			time.Sleep(time.Hour)
		}
	}
}

// injectFault fires the first configured fault matching this variant
// and attempt, if any.
func injectFault(spec string, variant, attempt int) error {
	faults, err := parseFaults(spec)
	if err != nil {
		return err
	}
	for _, f := range faults {
		if f.variant == variant && attempt <= f.attempts {
			f.trigger()
		}
	}
	return nil
}

// WorkerMain implements the worker side of the supervisor protocol:
// decode one request from in, rebuild the campaign from its spec, run
// the requested variant, stream heartbeats and the final result
// snapshot to out. The returned value is the process exit code: 0 on
// success, 2 for a contained panic (reported as "panic: ..." plus the
// stack on errw), 1 for anything else. `p2psim -worker` and the test
// binaries' TestMain hooks are the two callers.
func WorkerMain(in io.Reader, out, errw io.Writer) int {
	var req workerRequest
	if err := json.NewDecoder(in).Decode(&req); err != nil {
		fmt.Fprintf(errw, "worker: bad request: %v\n", err)
		return 1
	}
	if err := injectFault(os.Getenv(FaultEnv), req.Variant, req.Attempt); err != nil {
		fmt.Fprintf(errw, "worker: %v\n", err)
		return 1
	}
	camp, err := req.Spec.Build()
	if err != nil {
		fmt.Fprintf(errw, "worker: %v\n", err)
		return 1
	}
	if req.Variant < 0 || req.Variant >= len(camp.Variants) {
		fmt.Fprintf(errw, "worker: variant %d out of range (campaign %q has %d)\n",
			req.Variant, camp.Name, len(camp.Variants))
		return 1
	}

	cfg := materializeVariant(camp, req.Variant)
	var round atomic.Int64
	cfg.Progress = func(r int64) { round.Store(r) }

	enc := json.NewEncoder(out)
	var mu sync.Mutex
	write := func(m workerMessage) error {
		mu.Lock()
		defer mu.Unlock()
		return enc.Encode(m)
	}

	period := time.Duration(req.HeartbeatMillis) * time.Millisecond
	if period <= 0 {
		period = time.Second
	}
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if write(workerMessage{Type: "heartbeat", Round: round.Load()}) != nil {
					return // supervisor went away; the run's exit status covers it
				}
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
	}()

	s, err := sim.New(cfg)
	if err != nil {
		fmt.Fprintf(errw, "worker: %v\n", err)
		return 1
	}
	res, err := s.RunContext(context.Background())
	if err != nil {
		var pe *sim.PanicError
		if errors.As(err, &pe) {
			fmt.Fprintf(errw, "panic: %v\n%s", pe.Value, pe.Stack)
			return 2
		}
		fmt.Fprintf(errw, "worker: %v\n", err)
		return 1
	}
	if err := write(workerMessage{Type: "result", Result: snapshotResult(res)}); err != nil {
		fmt.Fprintf(errw, "worker: writing result: %v\n", err)
		return 1
	}
	return 0
}
