package sim

import (
	"fmt"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/transfer"
)

// The sharded engine's correctness claim is equivalence, not
// similarity: for every registered scenario the probe-event digest —
// every churn event, repair, outage, loss, stall, cancel, shock,
// transfer and round-end, field for field, in emission order, plus the
// result counters — must be identical at every shard count, and S<=1
// must additionally reproduce the pre-shard goldens bit for bit (the
// v2 rng-order invariant's backward-compatibility guarantee).

// shardScenarios returns the equivalence suite: the golden scenarios
// of determinism_test.go plus a bandwidth run, each paired with the
// pre-shard golden digest where one is pinned (0 = not pinned; the
// bandwidth digest is pinned by TestGoldenTransferDigests if present,
// equivalence across shard counts is what matters here).
func shardScenarios(t *testing.T) []struct {
	name   string
	cfg    Config
	golden uint64
} {
	t.Helper()
	shockCfg := digestConfig()
	shockCfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 120, Fraction: 0.5, Outage: 24},
		{Name: "regional-kill", Rate: 0.01, Fraction: 0.3, Regions: 4, Kill: true},
	}
	diurnalCfg := digestConfig()
	diurnalCfg.Avail = churn.DefaultDiurnalModel(0.6)
	bwCfg := digestConfig()
	bw, err := transfer.Parse("skewed")
	if err != nil {
		t.Fatal(err)
	}
	bwCfg.Bandwidth = bw
	adaptCfg := digestConfig()
	adaptCfg.RedundancySpec = "adaptive"
	adaptBwCfg := digestConfig()
	adaptBwCfg.Bandwidth = bw
	adaptBwCfg.RedundancySpec = "adaptive:target=0.95,eval=12"
	return []struct {
		name   string
		cfg    Config
		golden uint64
	}{
		{"iid", digestConfig(), 0xb0298adf8abb6acd},
		{"diurnal", diurnalCfg, 0xc1c1ef64a949edb6},
		{"shock", shockCfg, 0x27e7bdc89614a401},
		{"bandwidth", bwCfg, 0},
		{"adaptive", adaptCfg, 0},
		{"adaptive-bandwidth", adaptBwCfg, 0},
	}
}

// TestShardEquivalence: digests must be identical for shards ∈
// {1, 2, 3, 8} on every scenario, and equal to the pre-shard golden
// where one is pinned.
func TestShardEquivalence(t *testing.T) {
	for _, sc := range shardScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref := sc.cfg
			ref.Shards = 1 // explicit S=1 must be the legacy sequential path
			want := digestRun(t, ref)
			if sc.golden != 0 && want != sc.golden {
				t.Fatalf("S=1 digest = %#x, want golden %#x (legacy path drifted)", want, sc.golden)
			}
			for _, shards := range []int{2, 3, 8} {
				cfg := sc.cfg
				cfg.Shards = shards
				if got := digestRun(t, cfg); got != want {
					t.Errorf("S=%d digest = %#x, want %#x (sharded engine diverged from S=1)", shards, got, want)
				}
			}
		})
	}
}

// TestShardEquivalenceReplay covers the replay engine: a trace recorded
// sharded must equal one recorded sequentially, and replaying it under
// a different strategy must digest identically at every shard count
// (pinned to the pre-shard replay golden).
func TestShardEquivalenceReplay(t *testing.T) {
	record := func(shards int) *churn.Trace {
		rec := digestConfig()
		rec.RecordTrace = true
		rec.Observers = nil
		rec.Shards = shards
		s, err := New(rec)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run().Trace
	}
	trace := record(1)
	if got := record(4); len(got.Events) != len(trace.Events) {
		t.Fatalf("sharded recording produced %d events, sequential %d", len(got.Events), len(trace.Events))
	}
	const want uint64 = 0x069cd8d20f8f8853 // pre-shard replay golden
	for _, shards := range []int{1, 2, 3, 8} {
		rep := digestConfig()
		rep.Observers = nil
		rep.Replay = trace
		rep.StrategySpec = "monitored-availability"
		rep.Shards = shards
		if got := digestRun(t, rep); got != want {
			t.Errorf("replay S=%d digest = %#x, want %#x", shards, got, want)
		}
	}
}

// TestShardEquivalenceRandomizedConfigs is the testing/quick-style
// sweep: random seeds, population sizes, horizons and shard counts,
// each compared against its own S=1 reference digest. Parameters are
// drawn from a fixed-seed generator so a failure reproduces exactly.
func TestShardEquivalenceRandomizedConfigs(t *testing.T) {
	r := rng.New(0xC0FFEE)
	iters := 10
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		cfg := DefaultConfig()
		cfg.Seed = r.Uint64()
		cfg.TotalBlocks = 16
		cfg.DataBlocks = 8
		cfg.RepairThreshold = 10 + r.Intn(5)
		cfg.Quota = 48
		cfg.PoolSamplePerRound = 8 + r.Intn(32)
		cfg.AcceptHorizon = int64(24 + r.Intn(96))
		cfg.NumPeers = cfg.TotalBlocks + 1 + r.Intn(150)
		cfg.Rounds = int64(60 + r.Intn(180))
		if r.Bool(0.3) {
			cfg.Observers = PaperObservers()
		}
		if r.Bool(0.3) {
			cfg.Avail = churn.DefaultDiurnalModel(0.3 + 0.5*r.Float64())
		}
		if r.Bool(0.5) {
			cfg.RedundancySpec = "adaptive:eval=" + []string{"6", "24"}[r.Intn(2)]
		}
		shards := 2 + r.Intn(8)
		name := fmt.Sprintf("i=%d/peers=%d/rounds=%d/shards=%d", i, cfg.NumPeers, cfg.Rounds, shards)
		t.Run(name, func(t *testing.T) {
			ref := cfg
			ref.Shards = 1
			want := digestRun(t, ref)
			got := cfg
			got.Shards = shards
			if g := digestRun(t, got); g != want {
				t.Errorf("seed=%#x S=%d digest = %#x, want %#x", cfg.Seed, shards, g, want)
			}
		})
	}
}

// TestShardScratchStreams pins the sharded engine's randomness seam:
// the per-shard scratch streams must be derived from (seed, shard
// index), distinct across shards, and identical across runs — and the
// canonical stream must not depend on them (covered by the equivalence
// digests above; this test checks the streams themselves).
func TestShardScratchStreams(t *testing.T) {
	cfg := digestConfig()
	cfg.Shards = 4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.shards == nil || len(s.shards.scratch) != 4 {
		t.Fatalf("shard state = %+v, want 4 scratch streams", s.shards)
	}
	seen := make(map[uint64]int)
	for i, sc := range s.shards.scratch {
		want := rng.New(rng.Derive(cfg.Seed, uint64(i))).Uint64()
		got := sc.Uint64()
		if got != want {
			t.Errorf("shard %d scratch stream not derived from (seed, %d)", i, i)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("shards %d and %d share a scratch stream", prev, i)
		}
		seen[got] = i
	}
}

// TestShardRangePartition: the shard ranges must partition [0,
// NumPeers) exactly — contiguous, disjoint, covering — including when
// the shard count exceeds the slot count.
func TestShardRangePartition(t *testing.T) {
	for _, tc := range []struct{ peers, shards int }{
		{300, 2}, {300, 3}, {300, 7}, {17, 16}, {17, 64}, {2, 9},
	} {
		s := &Simulation{cfg: Config{NumPeers: tc.peers}, shards: &shardState{n: tc.shards}}
		next := 0
		for i := 0; i < tc.shards; i++ {
			lo, hi := s.shardRange(i)
			if lo != next || hi < lo || hi > tc.peers {
				t.Fatalf("peers=%d shards=%d: shard %d range [%d,%d), want start %d",
					tc.peers, tc.shards, i, lo, hi, next)
			}
			next = hi
		}
		if next != tc.peers {
			t.Fatalf("peers=%d shards=%d: ranges cover [0,%d), want [0,%d)", tc.peers, tc.shards, next, tc.peers)
		}
	}
}
