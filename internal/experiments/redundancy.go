package experiments

import (
	"context"
	"fmt"
	"io"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/redundancy"
	"p2pbackup/internal/sim"
)

// This file declares the fixed-vs-adaptive redundancy campaign: the
// paper's fixed n-per-archive provisioning against the adaptive policy
// layer that retunes per-archive parity from monitored availability.
// Each churn scenario (i.i.d., diurnal, correlated shock, replayed
// trace) runs under both policies with a shared per-scenario seed, and
// the rows convert into storage-overhead and durability columns the
// aggregate repair/loss counters cannot express.

// setRedundancySpec points a variant config at a redundancy policy
// spec, clearing any pre-bound policy: a base config's Redundancy must
// not leak into a campaign that sweeps the policy (a non-nil Redundancy
// would silently win over RedundancySpec in Validate).
func setRedundancySpec(c *sim.Config, spec string) {
	c.Redundancy = nil
	c.RedundancySpec = spec
}

// RedundancyCampaign builds the fixed-vs-adaptive comparison:
// scenario blocks iid, diurnal and shock — plus replay when a trace is
// supplied — each run under the fixed policy and under adaptiveSpec.
// Both arms of a block share one block-derived seed so they start from
// identical populations; the replay block goes further and feeds both
// arms the identical churn sequence (the paired comparison).
func RedundancyCampaign(cfg sim.Config, trace *churn.Trace, adaptiveSpec string) Campaign {
	mid := cfg.Rounds / 2
	type block struct {
		name  string
		apply func(c *sim.Config)
	}
	blocks := []block{
		{"iid", func(c *sim.Config) {}},
		{"diurnal", func(c *sim.Config) {
			c.Avail = churn.DefaultDiurnalModel(0.6)
		}},
		{"shock", func(c *sim.Config) {
			c.Shocks = []sim.ShockSpec{
				{Name: "blackout-half", Round: mid, Fraction: 0.5, Outage: 2 * churn.Day},
			}
		}},
	}
	if trace != nil {
		last := trace.LastRound()
		blocks = append(blocks, block{"replay", func(c *sim.Config) {
			c.Replay = trace
			if last >= 0 && last+1 < c.Rounds {
				c.Rounds = last + 1
			}
		}})
	}
	c := Campaign{Name: "fixed-vs-adaptive", Base: cfg}
	for bi, b := range blocks {
		b := b
		seed := cfg.Seed*7368787 + uint64(bi)
		for _, spec := range []string{"fixed", adaptiveSpec} {
			spec := spec
			c.Variants = append(c.Variants, Variant{
				Name: b.name + "/" + spec,
				Seed: seed,
				Mutate: func(cc *sim.Config) {
					b.apply(cc)
					setRedundancySpec(cc, spec)
				},
			})
		}
	}
	return c
}

// RedundancyPoint is one variant's outcome: durability counters plus
// the storage and traffic bill of the redundancy policy.
type RedundancyPoint struct {
	Label      string
	Repairs    int64
	Outages    int64 // temporary losses (visible blocks dipped below k)
	HardLosses int64 // permanent object losses
	// FinalPlacements is the end-of-run stored-block count; Overhead
	// normalises it to data blocks: stored blocks per data block across
	// the population (the fixed policy's ceiling is n/k).
	FinalPlacements int
	Overhead        float64
	// MeanRedundancy is the last sampled mean per-archive target n(t)
	// (the configured n under the fixed policy, which never samples).
	MeanRedundancy float64
	Grows          int64
	Shrinks        int64
	ParityAdded    int64
	ParityDropped  int64
	// ParityCostHours prices the grow traffic: ParityAdded blocks pushed
	// up the paper's reference DSL uplink at the variant's code shape
	// (costmodel.ParityUploadCost), in hours.
	ParityCostHours float64
}

// RedundancyResult is the labelled fixed-vs-adaptive comparison.
type RedundancyResult struct {
	Name   string
	Points []RedundancyPoint
}

// RedundancyFromRows converts the campaign's rows, in variant order.
func RedundancyFromRows(name string, rows []Row) (*RedundancyResult, error) {
	points := make([]RedundancyPoint, 0, len(rows))
	for _, row := range rows {
		col := row.Result.Collector
		cfg := row.Config
		p := RedundancyPoint{
			Label:           row.Name,
			Repairs:         col.TotalRepairs(),
			Outages:         col.TotalLosses(),
			HardLosses:      col.TotalHardLosses(),
			FinalPlacements: row.Result.FinalPlacements,
			Overhead:        float64(row.Result.FinalPlacements) / float64(cfg.NumPeers*cfg.DataBlocks),
			MeanRedundancy:  float64(cfg.TotalBlocks),
			Grows:           col.RedundancyGrows(),
			Shrinks:         col.RedundancyShrinks(),
			ParityAdded:     col.ParityBlocksAdded(),
			ParityDropped:   col.ParityBlocksReclaimed(),
		}
		if s := col.RedundancySeries(); s.Len() > 0 {
			_, p.MeanRedundancy = s.Last()
		}
		if p.ParityAdded > 0 {
			code := costmodel.Code{
				ArchiveBytes: 128 * costmodel.MB,
				K:            cfg.DataBlocks,
				M:            cfg.TotalBlocks - cfg.DataBlocks,
			}
			perBlock, err := costmodel.ParityUploadCost(code, 1, costmodel.DSL2009())
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", row.Name, err)
			}
			p.ParityCostHours = perBlock.Hours() * float64(p.ParityAdded)
		}
		points = append(points, p)
	}
	return &RedundancyResult{Name: name, Points: points}, nil
}

// WriteTSV emits the fixed-vs-adaptive comparison.
func (r *RedundancyResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# redundancy campaign: %s (overhead = stored blocks per data block; parity cost on the 2009 DSL uplink)\n"+
		"#variant\trepairs\toutages\thard_losses\tfinal_placements\toverhead\tmean_n\t"+
		"grows\tshrinks\tparity_added\tparity_dropped\tparity_cost_h\n", r.Name); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.6g\t%.6g\t%d\t%d\t%d\t%d\t%.6g\n",
			p.Label, p.Repairs, p.Outages, p.HardLosses, p.FinalPlacements, p.Overhead, p.MeanRedundancy,
			p.Grows, p.Shrinks, p.ParityAdded, p.ParityDropped, p.ParityCostHours); err != nil {
			return err
		}
	}
	return nil
}

// redundancyAdaptiveSpec picks the campaign's adaptive arm: the -redundancy
// override when it names an adaptive policy, the default otherwise.
func redundancyAdaptiveSpec(opts Options) string {
	if opts.Redundancy != "" {
		if pol, err := redundancy.Parse(opts.Redundancy); err == nil && !pol.Static() {
			return opts.Redundancy
		}
	}
	return "adaptive"
}

// runRedundancy executes the fixed-vs-adaptive experiment. Its replay
// block replays opts.TracePath when given; otherwise it records a trace
// internally (same scheme as ablation-estimator: churn does not depend
// on the redundancy policy, and the recording seed derives from the
// base seed so the experiment stays a deterministic function of
// (scale, seed)).
func runRedundancy(ctx context.Context, opts Options) ([]Summary, error) {
	spec := opts.spec("fixed-vs-adaptive")
	var trace *churn.Trace
	if opts.TracePath != "" {
		t, err := churn.ReadTraceFile(opts.TracePath)
		if err != nil {
			return nil, err
		}
		trace = t
	} else {
		cfg, err := baseFor(opts)
		if err != nil {
			return nil, err
		}
		cfg.Seed = cfg.Seed*15485863 + 101
		if cfg.Rounds > estimatorTraceRounds {
			cfg.Rounds = estimatorTraceRounds
		}
		cfg.RecordTrace = true
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("recording %d-round churn trace for the replay block", cfg.Rounds))
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := s.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		trace = res.Trace
		if opts.supervised() {
			path, cleanup, err := materializeTraceFile(trace, "p2psim-redundancy")
			if err != nil {
				return nil, err
			}
			defer cleanup()
			spec.TracePath = path
		}
	}

	cfg, err := baseFor(opts)
	if err != nil {
		return nil, err
	}
	camp := RedundancyCampaign(cfg, trace, redundancyAdaptiveSpec(opts))
	rows, err := opts.collect(ctx, opts.runner(), camp, spec, opts.sink(doneMessage(camp.Name)))
	if err != nil {
		return nil, err
	}
	res, err := RedundancyFromRows(camp.Name, rows)
	if err != nil {
		return nil, err
	}
	var files []string
	if p, err := writeFile(opts, "scenario_redundancy.tsv", res.WriteTSV); err != nil {
		return nil, err
	} else if p != "" {
		files = append(files, p)
	}
	text := fmt.Sprintf("%-20s %9s %7s %7s %9s %7s %6s/%-6s %12s\n",
		"variant", "overhead", "mean_n", "hard", "outages", "grows", "shrink", "parity", "cost_h")
	for _, p := range res.Points {
		text += fmt.Sprintf("%-20s %9.4f %7.2f %7d %9d %7d %6d/%-6d %12.1f\n",
			p.Label, p.Overhead, p.MeanRedundancy, p.HardLosses, p.Outages,
			p.Grows, p.Shrinks, p.ParityAdded, p.ParityCostHours)
	}
	return []Summary{{Name: res.Name, Files: files, Text: text}}, nil
}
