package sim

import (
	"fmt"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/redundancy"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/transfer"
)

// ObserverSpec declares a fixed-age observer peer (the paper's section
// 4.2.2): its age never changes, it never dies, it is always online,
// other peers cannot select it as a partner, and its blocks do not
// consume host quota.
type ObserverSpec struct {
	Name string
	Age  int64 // rounds
}

// PaperObservers returns the paper's five observers.
func PaperObservers() []ObserverSpec {
	return []ObserverSpec{
		{Name: "elder", Age: 3 * churn.Month}, // the age limit L
		{Name: "senior", Age: 1 * churn.Month},
		{Name: "adult", Age: 1 * churn.Week},
		{Name: "teenager", Age: 1 * churn.Day},
		{Name: "baby", Age: 1 * churn.Hour},
	}
}

// Config parameterises one simulation run.
type Config struct {
	// NumPeers is the population size (constant; departures are
	// replaced immediately). Paper: 25,000.
	NumPeers int
	// Rounds is the simulation length (1 round = 1 hour). Paper: 50,000.
	Rounds int64
	// Seed drives all randomness; equal seeds give identical runs.
	Seed uint64
	// Shards is the worker count of the sharded engine: the slot space
	// is partitioned into Shards contiguous ranges and the engine's
	// draw-free phases (availability-history application, view/score
	// cache warming, the final inclusion scan) fan out across them,
	// merged back deterministically. Results are bit-identical at every
	// value — see the v2 rng-order invariant in the package comment. 0
	// or 1 runs the historical sequential path; values above the slot
	// count are allowed (the excess shards own empty ranges).
	Shards int
	// Walk selects the engine's walk/maintenance execution mode. WalkV1
	// (the default; "" normalises to it) is the historical sequential
	// walk whose rng-order invariant pins every pre-v3 golden. WalkV3
	// runs the churn walk and the maintenance planning phase
	// shard-locally on per-slot derived rng streams with a deterministic
	// cross-shard effect merge at the round barrier: results are
	// bit-identical at every Shards value *within v3*, but draw order —
	// and therefore the digest — differs from v1 by construction. See
	// the "v3 walk" comment in walk3.go for the invariant.
	Walk string

	// TotalBlocks (n), DataBlocks (k): erasure-code shape. Paper: 256/128.
	TotalBlocks int
	DataBlocks  int
	// RepairThreshold is k'. Paper: 132-180, focal value 148.
	RepairThreshold int
	// Quota is the per-peer hosted-block cap. Paper: 384.
	Quota int32
	// AcceptHorizon is L for the acceptance function, in rounds.
	// Paper: 90 days.
	AcceptHorizon int64
	// PoolSamplePerRound bounds candidate probing per repairing peer.
	PoolSamplePerRound int
	// UploadBudgetPerRound caps blocks uploaded per peer per round (the
	// section 2.2.4 bandwidth bound: a worst-case repair of ~128 blocks
	// fills about one hour on the reference DSL link). 0 = unlimited.
	// Superseded by Bandwidth when a non-instant class mix is set.
	UploadBudgetPerRound int

	// Bandwidth, when non-nil, replaces instantaneous placement with
	// bandwidth-aware transfer scheduling: peers draw a bandwidth class
	// at join, uploads and restores flow over asymmetric links, and
	// completions are calendar events (see internal/transfer). A nil
	// Bandwidth — or the degenerate single instant class — keeps the
	// historical instant path, bit-identical to pre-transfer runs.
	Bandwidth *transfer.Params

	// Redundancy is the per-archive redundancy policy: a static policy
	// (redundancy.Fixed, the default) keeps every archive at the
	// configured n; an adaptive policy retunes each archive's target
	// block count online from monitored partner availability, within
	// [k+1, n] — TotalBlocks stays the ledger's preallocated ceiling.
	// Takes precedence over RedundancySpec.
	Redundancy redundancy.Policy
	// RedundancySpec names the redundancy policy as a spec string
	// ("fixed", "adaptive:target=0.95"; see redundancy.Parse). Ignored
	// when Redundancy is set.
	RedundancySpec string

	// Restores schedules restore-demand events (flash crowds): at each
	// spec's round, included peers independently demand their archive
	// back and download k blocks over their downlink. Restore timing
	// uses Bandwidth's class rates (instant when Bandwidth is nil).
	Restores []RestoreSpec

	// Profiles is the behaviour population (default: the paper's four).
	Profiles *churn.ProfileSet
	// Avail generates online/offline sessions (default: exponential
	// sessions with a one-day mean cycle).
	Avail churn.AvailabilityModel
	// Policy picks partners on the observable/oracle knowledge split.
	// Default: the paper's age-based rule with L = AcceptHorizon.
	// Takes precedence over StrategySpec and Strategy.
	Policy selection.Policy
	// StrategySpec names the partner-selection policy as a spec string
	// ("age:L=2160", "estimator:pareto", "monitored-availability:720";
	// see selection.Parse). Specs omitting a horizon default to
	// AcceptHorizon. Ignored when Policy is set; mutually exclusive
	// with Strategy.
	StrategySpec string
	// Strategy picks partners through the legacy flat-PeerInfo
	// interface.
	//
	// Deprecated: set Policy or StrategySpec; a non-nil Strategy is
	// lifted with selection.Adapt.
	Strategy selection.Strategy

	// DropOffline: repairs abandon currently offline partners (default
	// true; see DESIGN.md section 4).
	DropOffline bool
	// CancelOnRecover: pending repairs abort if visibility recovers
	// (default true).
	CancelOnRecover bool
	// RepairDelay holds a triggered repair for this many owner-online
	// rounds before decoding, letting offline partners return (the
	// paper's future-work knob). 0 = immediate.
	RepairDelay int
	// CountInitialAsRepair includes initial uploads in repair-rate
	// metrics (the paper treats the first upload as a repair).
	CountInitialAsRepair bool
	// ResampleProfileOnReplace draws a fresh profile for replacement
	// peers instead of inheriting the departed peer's profile. The
	// paper's profile proportions are presented as stationary system
	// properties, which requires like-for-like replacement (the
	// default, false). Resampling drifts the population toward immortal
	// profiles and starves the young population of erratic peers; it is
	// kept as an ablation.
	ResampleProfileOnReplace bool

	// Shocks schedules correlated-failure events (power outages, ISP
	// failures) on top of the profile churn; see ShockSpec. Mutually
	// exclusive with Replay.
	Shocks []ShockSpec
	// Replay, when non-nil, drives membership and sessions from the
	// recorded trace instead of the profile sampler: runs become
	// deterministic in the churn dimension, enabling paired comparisons
	// (same churn, different strategy). NumPeers is derived from the
	// trace; Profiles is still used to map the trace's profile indices
	// to availabilities for the oracle strategies.
	Replay *churn.Trace

	// Observers to instantiate (may be empty).
	Observers []ObserverSpec

	// Probes are custom event observers attached after the built-in
	// metrics/trace probes. Probes are stateful: never share one
	// instance between concurrently running simulations.
	Probes []Probe

	// Warmup rounds excluded from rate metrics (series still cover the
	// full run, like the paper's figures).
	Warmup int64
	// SampleEvery is the series sampling cadence in rounds.
	SampleEvery int64

	// RecordTrace enables churn trace capture (memory-heavy at full
	// scale; meant for small runs and tracegen).
	RecordTrace bool

	// PhaseTimes enables per-phase wall-time accounting: Result.Phases
	// reports the cumulative walk / merge / maintenance / transfer-drain
	// / evaluation durations at run end (the p2psim -phasetimes flag).
	// Off by default; it never changes a trajectory, only adds two clock
	// reads per phase per round.
	PhaseTimes bool

	// Progress, if non-nil, is called once per ProgressEvery rounds.
	Progress      func(round int64)
	ProgressEvery int64
}

// Walk mode names for Config.Walk.
const (
	// WalkV1 is the historical sequential walk (the default): one
	// canonical rng stream, the v1 rng-order invariant, every pre-v3
	// golden digest bit-identical.
	WalkV1 = "v1"
	// WalkV3 is the shard-parallel walk: per-slot derived rng streams,
	// shard-local walk and maintenance planning, deterministic effect
	// merge. Digests are pinned separately from v1.
	WalkV3 = "v3"
)

// DefaultConfig returns the paper's parameters at full scale.
func DefaultConfig() Config {
	return Config{
		NumPeers:             25000,
		Rounds:               50000,
		Seed:                 1,
		TotalBlocks:          256,
		DataBlocks:           128,
		RepairThreshold:      148,
		Quota:                384,
		AcceptHorizon:        90 * churn.Day,
		PoolSamplePerRound:   128,
		UploadBudgetPerRound: 128,
		DropOffline:          true,
		CancelOnRecover:      true,
		CountInitialAsRepair: true,
		Warmup:               0,
		SampleEvery:          churn.Day,
	}
}

// Scale returns a copy of the config with the population and duration
// scaled by f (parameters like n, k, quota, thresholds are intensive
// and stay fixed). Used by the scale presets.
func (c Config) Scale(f float64) Config {
	out := c
	out.NumPeers = int(float64(c.NumPeers) * f)
	out.Rounds = int64(float64(c.Rounds) * f)
	if out.NumPeers < c.TotalBlocks+1 {
		out.NumPeers = c.TotalBlocks + 1
	}
	if out.Rounds < 1 {
		out.Rounds = 1
	}
	return out
}

// Validate checks the configuration, filling defaults for nil
// sub-components. It returns the normalised config.
func (c Config) Validate() (Config, error) {
	if c.Profiles == nil {
		c.Profiles = churn.PaperProfiles()
	}
	if c.Avail == nil {
		c.Avail = churn.DefaultSessionModel()
	}
	if c.Policy == nil {
		switch {
		case c.Strategy != nil && c.StrategySpec != "":
			return c, fmt.Errorf("sim: Strategy and StrategySpec are mutually exclusive (set one)")
		case c.Strategy != nil:
			c.Policy = selection.Adapt(c.Strategy)
		default:
			pol, err := selection.ParseWith(c.StrategySpec, selection.Defaults{Horizon: c.AcceptHorizon})
			if err != nil {
				return c, fmt.Errorf("sim: %w", err)
			}
			c.Policy = pol
		}
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = churn.Day
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 1000
	}
	if c.Replay != nil {
		if len(c.Shocks) > 0 {
			return c, fmt.Errorf("sim: Shocks and Replay are mutually exclusive (record a shocked run and replay that trace instead)")
		}
		// The trace defines the population; the full structural check
		// happens in compileReplay at New time.
		c.NumPeers = int(c.Replay.MaxPeer()) + 1
	}
	if len(c.Shocks) > 0 {
		// Normalise a copy: the caller's slice may be shared between
		// concurrently validated variants.
		c.Shocks = append([]ShockSpec(nil), c.Shocks...)
		for i := range c.Shocks {
			sp := &c.Shocks[i]
			if err := sp.Validate(); err != nil {
				return c, err
			}
			if !sp.Kill && sp.Outage == 0 {
				sp.Outage = churn.Day
			}
		}
	}
	if c.Bandwidth != nil {
		bw, err := c.Bandwidth.Validate()
		if err != nil {
			return c, fmt.Errorf("sim: %w", err)
		}
		c.Bandwidth = bw
	}
	if len(c.Restores) > 0 {
		c.Restores = append([]RestoreSpec(nil), c.Restores...)
		for _, sp := range c.Restores {
			if err := sp.Validate(); err != nil {
				return c, err
			}
		}
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("sim: Shards = %d must be >= 0", c.Shards)
	}
	switch c.Walk {
	case "":
		c.Walk = WalkV1
	case WalkV1, WalkV3:
	default:
		return c, fmt.Errorf("sim: unknown walk mode %q (want %q or %q)", c.Walk, WalkV1, WalkV3)
	}
	if c.Walk == WalkV3 {
		// Guard against silent mode drift: every option the v3 path does
		// not support is rejected by name rather than silently falling
		// back to v1 semantics.
		if c.Strategy != nil {
			return c, fmt.Errorf("sim: Walk = %q does not support the deprecated Strategy option (set Policy or StrategySpec)", WalkV3)
		}
		if !selection.HasPureScore(c.Policy) {
			return c, fmt.Errorf("sim: Walk = %q requires a policy with a pure Score (selection.HasPureScore); the shard-local planner evaluates scores concurrently", WalkV3)
		}
	}
	if c.NumPeers < 2 {
		return c, fmt.Errorf("sim: NumPeers = %d too small", c.NumPeers)
	}
	if c.Rounds < 1 {
		return c, fmt.Errorf("sim: Rounds = %d must be positive", c.Rounds)
	}
	if c.DataBlocks < 1 || c.TotalBlocks <= c.DataBlocks {
		return c, fmt.Errorf("sim: invalid code shape n=%d k=%d", c.TotalBlocks, c.DataBlocks)
	}
	if c.NumPeers <= c.TotalBlocks {
		return c, fmt.Errorf("sim: NumPeers = %d must exceed n = %d (blocks go to distinct peers)",
			c.NumPeers, c.TotalBlocks)
	}
	if c.RepairThreshold < c.DataBlocks || c.RepairThreshold > c.TotalBlocks {
		return c, fmt.Errorf("sim: threshold %d outside [k=%d, n=%d]",
			c.RepairThreshold, c.DataBlocks, c.TotalBlocks)
	}
	if c.Redundancy == nil {
		pol, err := redundancy.Parse(c.RedundancySpec)
		if err != nil {
			return c, fmt.Errorf("sim: %w", err)
		}
		c.Redundancy = pol
	}
	bound, err := c.Redundancy.Bind(c.DataBlocks, c.RepairThreshold, c.TotalBlocks)
	if err != nil {
		return c, fmt.Errorf("sim: %w", err)
	}
	c.Redundancy = bound
	if c.Quota < 1 {
		return c, fmt.Errorf("sim: quota %d must be positive", c.Quota)
	}
	if c.AcceptHorizon < 1 {
		return c, fmt.Errorf("sim: accept horizon %d must be positive", c.AcceptHorizon)
	}
	if c.PoolSamplePerRound < 1 {
		return c, fmt.Errorf("sim: pool sample %d must be positive", c.PoolSamplePerRound)
	}
	if c.UploadBudgetPerRound < 0 {
		return c, fmt.Errorf("sim: upload budget %d must be >= 0", c.UploadBudgetPerRound)
	}
	if c.RepairDelay < 0 {
		return c, fmt.Errorf("sim: repair delay %d must be >= 0", c.RepairDelay)
	}
	if c.Warmup < 0 || c.Warmup >= c.Rounds {
		return c, fmt.Errorf("sim: warmup %d outside [0, rounds)", c.Warmup)
	}
	for _, o := range c.Observers {
		if o.Age < 0 {
			return c, fmt.Errorf("sim: observer %q has negative age", o.Name)
		}
	}
	// Capacity sanity: the population must be able to host all blocks.
	demand := int64(c.NumPeers) * int64(c.TotalBlocks)
	capacity := int64(c.NumPeers) * int64(c.Quota)
	if demand > capacity {
		return c, fmt.Errorf("sim: block demand %d exceeds quota capacity %d", demand, capacity)
	}
	return c, nil
}
