package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense matrix over GF(2^8), stored row-major. It is the
// linear-algebra workhorse behind Reed-Solomon encoding matrices and
// decoding (inversion of the surviving-rows submatrix).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len == Rows*Cols, row-major
}

// ErrSingular is returned when attempting to invert a singular matrix.
var ErrSingular = errors.New("gf256: matrix is singular")

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix with
// m[r][c] = r^c, using the byte value r itself as the evaluation point
// (256 distinct points, so rows may go up to 256). Any subset of up to
// cols rows is linearly independent, which is the property erasure
// codes need.
func Vandermonde(rows, cols int) *Matrix {
	if rows > 256 {
		panic("gf256: Vandermonde matrix needs rows <= 256")
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.Set(r, c, Pow(byte(r), c))
		}
	}
	return m
}

// Cauchy returns the rows x cols Cauchy matrix with
// m[r][c] = 1 / (x_r + y_c), x_r = Exp(r + cols), y_c = Exp(c).
// Cauchy matrices have the stronger property that every square submatrix
// is invertible. rows+cols must be <= 256.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > 256 {
		panic("gf256: Cauchy matrix needs rows+cols <= 256")
	}
	m := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		xr := byte(r + cols)
		for c := 0; c < cols; c++ {
			yc := byte(c)
			m.Set(r, c, Inv(Add(xr, yc)))
		}
	}
	return m
}

// Get returns element (r, c).
func (m *Matrix) Get(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r (not a copy).
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Mul returns the matrix product m * other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: cannot multiply %dx%d by %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for r := 0; r < m.Rows; r++ {
		mrow := m.Row(r)
		orow := out.Row(r)
		for k := 0; k < m.Cols; k++ {
			MulAddSlice(mrow[k], other.Row(k), orow)
		}
	}
	return out
}

// MulVec computes dst = m * src where src has length m.Cols and dst has
// length m.Rows.
func (m *Matrix) MulVec(src, dst []byte) {
	if len(src) != m.Cols || len(dst) != m.Rows {
		panic("gf256: MulVec dimension mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var acc byte
		for c, s := range src {
			acc ^= Mul(row[c], s)
		}
		dst[r] = acc
	}
}

// SubMatrix returns a copy of rows [r0,r1) and columns [c0,c1).
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	out := NewMatrix(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// SelectRows returns a copy of the given rows, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}

// Invert returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic("gf256: cannot invert non-square matrix")
	}
	n := m.Rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.Get(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		// Scale pivot row to make the pivot 1.
		if p := work.Get(col, col); p != 1 {
			ip := Inv(p)
			MulSlice(ip, work.Row(col), work.Row(col))
			MulSlice(ip, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := work.Get(r, col); f != 0 {
				MulAddSlice(f, work.Row(col), work.Row(r))
				MulAddSlice(f, inv.Row(col), inv.Row(r))
			}
		}
	}
	return inv, nil
}

// IsIdentity reports whether m is square and equal to the identity.
func (m *Matrix) IsIdentity() bool {
	if m.Rows != m.Cols {
		return false
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			want := byte(0)
			if r == c {
				want = 1
			}
			if m.Get(r, c) != want {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for r := 0; r < m.Rows; r++ {
		s += fmt.Sprintf("%3d\n", m.Row(r))
	}
	return s
}
