package sim_test

import (
	"fmt"

	"p2pbackup/internal/sim"
)

// lossCounter is a minimal custom probe: embed BaseProbe, override the
// hooks of interest, attach via Config.Probes. Probes consume no
// randomness, so attaching one never changes the run's trajectory.
type lossCounter struct {
	sim.BaseProbe
	outages int
	churn   int
}

func (p *lossCounter) OnOutage(sim.PeerEvent) { p.outages++ }

func (p *lossCounter) OnChurn(sim.ChurnEvent) { p.churn++ }

// Example runs a small simulation with a custom probe attached and
// cross-checks it against the built-in collector, which observes the
// same event stream.
func Example() {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 120 // scale the paper's 25,000 down to milliseconds
	cfg.Rounds = 300
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48

	probe := &lossCounter{}
	cfg.Probes = []sim.Probe{probe}

	s, err := sim.New(cfg)
	if err != nil {
		panic(err)
	}
	res := s.Run()

	fmt.Println("probe matches collector:", int64(probe.outages) == res.Collector.TotalLosses())
	fmt.Println("saw churn events:", probe.churn > 0)
	// Output:
	// probe matches collector: true
	// saw churn events: true
}
