// Package metrics implements the measurement layer of the evaluation:
// per-age-category event accounting with peer-round denominators
// (Figures 1 and 2), per-observer cumulative repair series (Figure 3),
// and per-category cumulative loss-per-peer series (Figure 4).
//
// Normalisation: the paper plots "average number ... per 1000 peers"
// against the repair threshold. The only reading consistent with the
// observer counts in its Figure 3 is a per-round rate:
//
//	rate(category) = events(category) / peerRounds(category) * 1000
//
// where peerRounds is the total number of (peer, round) pairs spent in
// the category. Figure 4's "average number of lost archives per peers"
// is the integral over rounds of lossesThisRound/populationThisRound,
// i.e. the expected cumulative losses of a peer that stayed in the
// category the whole time.
//
// Paper mapping (in the style of internal/selection):
//
//	§4.2.1 age categories       Category (newcomer <3mo, young 3-6mo, old 6-18mo, elder >18mo)
//	§4.2.1 "per 1000 peers"     Collector.RepairRatePer1000 / LossRatePer1000
//	§4.2.2 observer counts      ObserverTracker (Figure 3's cumulative step series)
//	Fig. 2 "data lost"          Counts.Outages (visible < k decode outages)
//	Fig. 4 losses per peer      Collector.LossSeries
//
// Beyond the paper: shock attribution. Correlated-failure scenarios
// (sim.ShockSpec) report firings through RecordShock, and losses within
// ShockAttributionWindow of the latest shock are additionally counted
// as shock-attributed, splitting the loss metric by cause.
package metrics

import (
	"fmt"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/stats"
)

// Category is a peer age class (the paper's section 4.2.1 table).
// A peer's category changes as it ages; its profile never does.
type Category int

// The paper's four age categories.
const (
	Newcomer Category = iota // < 3 months
	Young                    // 3 - 6 months
	Old                      // 6 - 18 months
	Elder                    // > 18 months
	NumCategories
)

// Category boundaries in rounds (ages at which a peer moves up).
var categoryBounds = [...]int64{
	3 * churn.Month,  // Newcomer -> Young
	6 * churn.Month,  // Young -> Old
	18 * churn.Month, // Old -> Elder
}

var categoryNames = [...]string{"newcomer", "young", "old", "elder"}

// String returns the category name.
func (c Category) String() string {
	if c >= 0 && int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// CategoryOf classifies an age in rounds.
func CategoryOf(age int64) Category {
	switch {
	case age < categoryBounds[0]:
		return Newcomer
	case age < categoryBounds[1]:
		return Young
	case age < categoryBounds[2]:
		return Old
	default:
		return Elder
	}
}

// CategoryBound returns the age (in rounds) at which category c ends,
// or -1 for Elder (unbounded).
func CategoryBound(c Category) int64 {
	if int(c) < len(categoryBounds) {
		return categoryBounds[c]
	}
	return -1
}

// CategoryNames returns the four names in order.
func CategoryNames() []string { return append([]string(nil), categoryNames[:]...) }

// ---------------------------------------------------------------------------
// Collector

// Counts aggregates event totals for one category.
type Counts struct {
	PeerRounds     int64 // denominator: peer-rounds spent in the category
	Repairs        int64 // maintenance repairs completed
	InitialBackups int64 // initial d=n uploads completed (also "repairs" per the paper)
	Outages        int64 // decode outages: archive became unrecoverable from online peers (the paper's "data lost")
	HardLosses     int64 // archives permanently lost (alive blocks < k)
	StalledRounds  int64 // rounds spent in a decode outage while the owner was online
	BlocksUploaded int64 // total blocks uploaded by repairs
	BlocksDropped  int64 // placements abandoned at repair time (offline partners)
}

// Collector accumulates the run's measurements. It is not safe for
// concurrent use; one per simulation run.
type Collector struct {
	cats [NumCategories]Counts
	// profile-indexed totals (repairs, losses) for the stratification
	// analysis in section 4.2.1.
	profRepairs []int64
	profLosses  []int64

	// Figure 4: per-category cumulative losses-per-peer series, sampled
	// every sampleEvery rounds.
	lossSeries  [NumCategories]*stats.Series
	lossAccum   [NumCategories]float64
	todayLosses [NumCategories]int64

	// Repair-rate time series (diagnostic; same cadence).
	repairSeries [NumCategories]*stats.Series
	todayRepairs [NumCategories]int64

	// Correlated-failure attribution: losses within
	// ShockAttributionWindow rounds of the most recent shock are
	// counted as shock-attributed.
	shocks       int64
	shockVictims int64
	shockLosses  int64
	lastShock    int64

	// Time-to-safety distributions (the transfer engine's headline
	// metrics): rounds from a backup/repair episode triggering to its
	// last block landing, and rounds from restore demand to the archive
	// being fully downloaded.
	ttb            Durations
	ttr            Durations
	restoresFailed int64

	// Adaptive redundancy accounting (Config.Redundancy): grow/shrink
	// decision counts, the parity blocks they moved, and the population
	// mean n(t) sampled as a time series (fixed mode records nothing).
	redunGrows    int64
	redunShrinks  int64
	parityAdded   int64
	parityDropped int64
	redunSeries   *stats.Series

	sampleEvery int64
	warmup      int64 // rounds excluded from rate numerators/denominators
}

// Durations is a duration distribution: streaming moments plus the raw
// samples, so campaigns can report quantiles (median, p95) alongside
// the mean. Samples are in rounds.
type Durations struct {
	stream  stats.Stream
	samples []float64
}

// Record adds one duration sample.
func (d *Durations) Record(v float64) {
	d.stream.Add(v)
	d.samples = append(d.samples, v)
}

// Merge folds other into d (cross-variant aggregation).
func (d *Durations) Merge(other *Durations) {
	d.stream.Merge(&other.stream)
	d.samples = append(d.samples, other.samples...)
}

// N returns the sample count.
func (d *Durations) N() int64 { return d.stream.N() }

// Mean returns the sample mean (0 when empty).
func (d *Durations) Mean() float64 { return d.stream.Mean() }

// Min returns the smallest sample (0 when empty).
func (d *Durations) Min() float64 {
	if d.stream.N() == 0 {
		return 0
	}
	return d.stream.Min()
}

// Max returns the largest sample (0 when empty).
func (d *Durations) Max() float64 {
	if d.stream.N() == 0 {
		return 0
	}
	return d.stream.Max()
}

// Quantile returns the q-quantile of the samples (0 when empty).
func (d *Durations) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	v, err := stats.Quantile(d.samples, q)
	if err != nil {
		panic(err) // non-empty samples and engine-controlled q; a failure is a bug
	}
	return v
}

// ShockAttributionWindow is how long after a shock a lost archive is
// still attributed to it, in rounds. Three days covers the repair
// backlog a large shock creates: repairs are bandwidth-bounded (the
// paper's section 2.2.4), so a mass outage keeps causing decode
// failures well after the lights come back on.
const ShockAttributionWindow = 3 * churn.Day

// NewCollector returns a collector for numProfiles profiles, sampling
// time series every sampleEvery rounds (one day = 24 is the paper's
// plotting cadence). warmup rounds are excluded from the rate counters
// (pass 0 to measure everything).
func NewCollector(numProfiles int, sampleEvery, warmup int64) *Collector {
	if numProfiles <= 0 || sampleEvery <= 0 || warmup < 0 {
		panic(fmt.Sprintf("metrics: invalid collector params profiles=%d sample=%d warmup=%d",
			numProfiles, sampleEvery, warmup))
	}
	c := &Collector{
		profRepairs: make([]int64, numProfiles),
		profLosses:  make([]int64, numProfiles),
		sampleEvery: sampleEvery,
		warmup:      warmup,
		lastShock:   -2 * ShockAttributionWindow, // "no shock yet"
	}
	for i := range c.lossSeries {
		c.lossSeries[i] = stats.NewSeries(Category(i).String() + " cumulative losses/peer")
		c.repairSeries[i] = stats.NewSeries(Category(i).String() + " repairs/peer/day")
	}
	c.redunSeries = stats.NewSeries("mean redundancy blocks/archive")
	return c
}

// Warmup returns the configured warmup length in rounds.
func (c *Collector) Warmup() int64 { return c.warmup }

func (c *Collector) measured(round int64) bool { return round >= c.warmup }

// AddPeerRounds adds the per-round denominator: population peers spent
// this round in category cat.
func (c *Collector) AddPeerRounds(round int64, cat Category, population int64) {
	if c.measured(round) {
		c.cats[cat].PeerRounds += population
	}
}

// RecordRepair notes a completed repair by a peer of the given category
// and profile. initial marks the first upload (d = n); uploaded is the
// number of blocks uploaded; dropped the placements abandoned.
func (c *Collector) RecordRepair(round int64, cat Category, profile int, initial bool, uploaded, dropped int) {
	if !c.measured(round) {
		return
	}
	cc := &c.cats[cat]
	if initial {
		cc.InitialBackups++
	} else {
		cc.Repairs++
	}
	cc.BlocksUploaded += int64(uploaded)
	cc.BlocksDropped += int64(dropped)
	c.profRepairs[profile]++
	c.todayRepairs[cat]++
}

// RecordOutage notes a decode outage: the archive just became
// unrecoverable from currently online peers (visible < k). This is the
// event the paper's figures 2 and 4 count as a lost archive; it also
// covers every permanent loss, which starts as an outage.
func (c *Collector) RecordOutage(round int64, cat Category, profile int) {
	if !c.measured(round) {
		return
	}
	c.cats[cat].Outages++
	c.profLosses[profile]++
	c.todayLosses[cat]++
	if round-c.lastShock <= ShockAttributionWindow {
		c.shockLosses++
	}
}

// RecordShock notes a correlated-failure shock that took down victims
// peers. Shocks are configuration-driven, so they are counted even
// during warmup; loss attribution still honours the warmup window via
// RecordOutage. A firing that hit nobody (all pool members already
// offline or departing) does not open the attribution window —
// attributing background losses to a shock with no victims would
// overstate the damage.
func (c *Collector) RecordShock(round int64, victims int) {
	c.shocks++
	c.shockVictims += int64(victims)
	if victims > 0 {
		c.lastShock = round
	}
}

// RecordHardLoss notes a permanently lost archive (alive < k): fewer
// than k blocks survive on living peers, so no reconnection can bring
// the data back. The preceding outage has already been counted by
// RecordOutage.
func (c *Collector) RecordHardLoss(round int64, cat Category, profile int) {
	if !c.measured(round) {
		return
	}
	c.cats[cat].HardLosses++
}

// RecordBackupTime notes a completed backup/repair episode that took
// the given number of rounds from trigger to last block landed.
func (c *Collector) RecordBackupTime(round int64, rounds float64) {
	if !c.measured(round) {
		return
	}
	c.ttb.Record(rounds)
}

// RecordRestoreTime notes a completed archive restore that took the
// given number of rounds from demand to fully downloaded.
func (c *Collector) RecordRestoreTime(round int64, rounds float64) {
	if !c.measured(round) {
		return
	}
	c.ttr.Record(rounds)
}

// RecordRestoreFailed notes a restore aborted before completion (the
// restoring peer died).
func (c *Collector) RecordRestoreFailed(round int64) {
	if !c.measured(round) {
		return
	}
	c.restoresFailed++
}

// TimeToBackup returns the backup/repair episode duration distribution.
func (c *Collector) TimeToBackup() *Durations { return &c.ttb }

// TimeToRestore returns the restore duration distribution.
func (c *Collector) TimeToRestore() *Durations { return &c.ttr }

// RestoresFailed returns the number of restores aborted by peer death.
func (c *Collector) RestoresFailed() int64 { return c.restoresFailed }

// RecordRedundancyChange notes an adaptive redundancy decision
// retuning one archive's target block count from from to to blocks.
func (c *Collector) RecordRedundancyChange(round int64, from, to int) {
	if !c.measured(round) || from == to {
		return
	}
	if to > from {
		c.redunGrows++
		c.parityAdded += int64(to - from)
	} else {
		c.redunShrinks++
		c.parityDropped += int64(from - to)
	}
}

// RecordRedundancyLevel notes the population's mean target block count
// for the redundancy time series; sampled on the same cadence as the
// Figure 4 series (the engine calls it once per round, pre-warmup
// included, since the series is a trajectory, not a rate).
func (c *Collector) RecordRedundancyLevel(round int64, mean float64) {
	if (round+1)%c.sampleEvery != 0 {
		return
	}
	c.redunSeries.Append(float64(round+1)/float64(churn.Day), mean)
}

// RedundancyGrows returns how many grow decisions the policy made.
func (c *Collector) RedundancyGrows() int64 { return c.redunGrows }

// RedundancyShrinks returns how many shrink decisions the policy made.
func (c *Collector) RedundancyShrinks() int64 { return c.redunShrinks }

// ParityBlocksAdded returns the parity blocks grow decisions scheduled
// for upload (the adaptive policy's bandwidth bill; price it with
// costmodel.ParityUploadCost).
func (c *Collector) ParityBlocksAdded() int64 { return c.parityAdded }

// ParityBlocksReclaimed returns the parity blocks shrink decisions
// retired (the adaptive policy's storage dividend).
func (c *Collector) ParityBlocksReclaimed() int64 { return c.parityDropped }

// RedundancySeries returns the mean-n(t) trajectory (empty in fixed
// mode).
func (c *Collector) RedundancySeries() *stats.Series { return c.redunSeries }

// RecordStall notes a round in which a peer needed repair but could not
// proceed (not enough visible blocks to decode, or owner offline).
func (c *Collector) RecordStall(round int64, cat Category) {
	if !c.measured(round) {
		return
	}
	c.cats[cat].StalledRounds++
}

// EndRound finalises a round; on sampling boundaries it extends the
// Figure 4 series. population is the current per-category population.
func (c *Collector) EndRound(round int64, population [NumCategories]int64) {
	if (round+1)%c.sampleEvery != 0 {
		return
	}
	day := float64(round+1) / float64(churn.Day)
	for cat := 0; cat < int(NumCategories); cat++ {
		if population[cat] > 0 {
			c.lossAccum[cat] += float64(c.todayLosses[cat]) / float64(population[cat])
			c.repairSeries[cat].Append(day, float64(c.todayRepairs[cat])/float64(population[cat]))
		} else {
			c.repairSeries[cat].Append(day, 0)
		}
		c.lossSeries[cat].Append(day, c.lossAccum[cat])
		c.todayLosses[cat] = 0
		c.todayRepairs[cat] = 0
	}
}

// Merge folds other's counters into c: per-category counts,
// per-profile totals, shock accounting, the time-to-backup/restore
// distributions and the failed-restore count. Both collectors must
// have been built for the same number of profiles. The per-run time
// series (LossSeries, RepairSeries) are trajectories of single runs
// and are deliberately not merged — aggregating those across seeds is
// a statistics question (see internal/stats) that the collector does
// not answer; c keeps its own.
//
// Merge is what makes collectors shard- and variant-combinable: a
// campaign can run per-shard or per-seed collectors and fold them into
// one aggregate whose rate accessors (RepairRatePer1000 and friends)
// then report pooled numerators over pooled denominators.
func (c *Collector) Merge(other *Collector) {
	if len(c.profRepairs) != len(other.profRepairs) {
		panic(fmt.Sprintf("metrics: merging collectors with %d and %d profiles",
			len(c.profRepairs), len(other.profRepairs)))
	}
	for i := range c.cats {
		a, b := &c.cats[i], &other.cats[i]
		a.PeerRounds += b.PeerRounds
		a.Repairs += b.Repairs
		a.InitialBackups += b.InitialBackups
		a.Outages += b.Outages
		a.HardLosses += b.HardLosses
		a.StalledRounds += b.StalledRounds
		a.BlocksUploaded += b.BlocksUploaded
		a.BlocksDropped += b.BlocksDropped
	}
	for i := range c.profRepairs {
		c.profRepairs[i] += other.profRepairs[i]
		c.profLosses[i] += other.profLosses[i]
	}
	c.shocks += other.shocks
	c.shockVictims += other.shockVictims
	c.shockLosses += other.shockLosses
	if other.lastShock > c.lastShock {
		c.lastShock = other.lastShock
	}
	c.ttb.Merge(&other.ttb)
	c.ttr.Merge(&other.ttr)
	c.restoresFailed += other.restoresFailed
	c.redunGrows += other.redunGrows
	c.redunShrinks += other.redunShrinks
	c.parityAdded += other.parityAdded
	c.parityDropped += other.parityDropped
}

// Counts returns the aggregate counters for a category.
func (c *Collector) Counts(cat Category) Counts { return c.cats[cat] }

// RatePer1000 returns events per 1000 peer-rounds for the category; the
// numerator selector picks which counter. Includes initial backups in
// repairs when includeInitial is set.
func (c *Collector) RepairRatePer1000(cat Category, includeInitial bool) float64 {
	cc := c.cats[cat]
	if cc.PeerRounds == 0 {
		return 0
	}
	num := cc.Repairs
	if includeInitial {
		num += cc.InitialBackups
	}
	return float64(num) / float64(cc.PeerRounds) * 1000
}

// LossRatePer1000 returns lost archives (decode outages, the paper's
// "data lost") per 1000 peer-rounds.
func (c *Collector) LossRatePer1000(cat Category) float64 {
	cc := c.cats[cat]
	if cc.PeerRounds == 0 {
		return 0
	}
	return float64(cc.Outages) / float64(cc.PeerRounds) * 1000
}

// HardLossRatePer1000 returns permanently lost archives per 1000
// peer-rounds.
func (c *Collector) HardLossRatePer1000(cat Category) float64 {
	cc := c.cats[cat]
	if cc.PeerRounds == 0 {
		return 0
	}
	return float64(cc.HardLosses) / float64(cc.PeerRounds) * 1000
}

// ProfileRepairs returns total repairs per profile index.
func (c *Collector) ProfileRepairs() []int64 {
	return append([]int64(nil), c.profRepairs...)
}

// ProfileLosses returns total losses per profile index.
func (c *Collector) ProfileLosses() []int64 {
	return append([]int64(nil), c.profLosses...)
}

// LossSeries returns the Figure 4 series for a category: cumulative
// expected losses per peer, sampled daily.
func (c *Collector) LossSeries(cat Category) *stats.Series { return c.lossSeries[cat] }

// RepairSeries returns the per-day repairs-per-peer series (diagnostic).
func (c *Collector) RepairSeries(cat Category) *stats.Series { return c.repairSeries[cat] }

// TotalRepairs sums maintenance repairs over all categories.
func (c *Collector) TotalRepairs() int64 {
	var t int64
	for i := range c.cats {
		t += c.cats[i].Repairs
	}
	return t
}

// TotalLosses sums lost archives (decode outages) over all categories.
func (c *Collector) TotalLosses() int64 {
	var t int64
	for i := range c.cats {
		t += c.cats[i].Outages
	}
	return t
}

// TotalShocks returns the number of correlated-failure shocks fired.
func (c *Collector) TotalShocks() int64 { return c.shocks }

// ShockVictims returns the total peers taken down by shocks.
func (c *Collector) ShockVictims() int64 { return c.shockVictims }

// ShockAttributedLosses returns the lost archives that occurred within
// ShockAttributionWindow rounds of a shock — the paper's loss metric
// split by cause, so campaigns can report how much of the damage the
// correlated failures did versus background churn.
func (c *Collector) ShockAttributedLosses() int64 { return c.shockLosses }

// TotalHardLosses sums permanent losses over all categories.
func (c *Collector) TotalHardLosses() int64 {
	var t int64
	for i := range c.cats {
		t += c.cats[i].HardLosses
	}
	return t
}

// ---------------------------------------------------------------------------
// Observer tracking (Figure 3)

// ObserverTracker records cumulative repairs for the paper's fixed-age
// observer peers.
type ObserverTracker struct {
	names  []string
	counts []int64
	series []*stats.Series
}

// NewObserverTracker returns a tracker for the named observers.
func NewObserverTracker(names []string) *ObserverTracker {
	t := &ObserverTracker{
		names:  append([]string(nil), names...),
		counts: make([]int64, len(names)),
		series: make([]*stats.Series, len(names)),
	}
	for i, n := range names {
		t.series[i] = stats.NewSeries(n + " cumulative repairs")
	}
	return t
}

// RecordRepair notes one repair by observer idx at the given round.
func (t *ObserverTracker) RecordRepair(round int64, idx int) {
	t.counts[idx]++
	t.series[idx].Append(float64(round)/float64(churn.Day), float64(t.counts[idx]))
}

// Count returns observer idx's total repairs.
func (t *ObserverTracker) Count(idx int) int64 { return t.counts[idx] }

// Series returns observer idx's cumulative repair series (x in days).
func (t *ObserverTracker) Series(idx int) *stats.Series { return t.series[idx] }

// Names returns the observer names.
func (t *ObserverTracker) Names() []string { return append([]string(nil), t.names...) }

// Len returns the number of observers.
func (t *ObserverTracker) Len() int { return len(t.names) }
