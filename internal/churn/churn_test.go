package churn

import (
	"math"
	"strings"
	"testing"

	"p2pbackup/internal/dist"
	"p2pbackup/internal/rng"
)

func TestPaperProfiles(t *testing.T) {
	// This test pins the paper's profile table (T3 in DESIGN.md).
	ps := PaperProfiles()
	if ps.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ps.Len())
	}
	cases := []struct {
		name     string
		prop     float64
		avail    float64
		immortal bool
		loLife   float64
		hiLife   float64
	}{
		{"durable", 0.10, 0.95, true, 0, 0},
		{"stable", 0.25, 0.87, false, 1.5 * Year, 3.5 * Year},
		{"unstable", 0.30, 0.75, false, 3 * Month, 18 * Month},
		{"erratic", 0.35, 0.33, false, 1 * Month, 3 * Month},
	}
	for i, c := range cases {
		p := ps.Profile(i)
		if p.Name != c.name {
			t.Errorf("profile %d name = %q, want %q", i, p.Name, c.name)
		}
		if p.Proportion != c.prop {
			t.Errorf("%s proportion = %v, want %v", c.name, p.Proportion, c.prop)
		}
		if p.Availability != c.avail {
			t.Errorf("%s availability = %v, want %v", c.name, p.Availability, c.avail)
		}
		if c.immortal != (p.Lifetime == nil) {
			t.Errorf("%s immortality mismatch", c.name)
		}
		if !c.immortal {
			u, ok := p.Lifetime.(dist.Uniform)
			if !ok {
				t.Fatalf("%s lifetime is not Uniform", c.name)
			}
			if u.Lo != c.loLife || u.Hi != c.hiLife {
				t.Errorf("%s lifetime range [%v,%v), want [%v,%v)", c.name, u.Lo, u.Hi, c.loLife, c.hiLife)
			}
		}
	}
	if got := ps.Names(); strings.Join(got, ",") != "durable,stable,unstable,erratic" {
		t.Errorf("Names = %v", got)
	}
	wantMean := 0.10*0.95 + 0.25*0.87 + 0.30*0.75 + 0.35*0.33
	if math.Abs(ps.MeanAvailability()-wantMean) > 1e-12 {
		t.Errorf("MeanAvailability = %v, want %v", ps.MeanAvailability(), wantMean)
	}
}

func TestTimeUnits(t *testing.T) {
	if Day != 24 || Week != 168 || Month != 720 || Year != 8760 {
		t.Fatalf("time units wrong: day=%d week=%d month=%d year=%d", Day, Week, Month, Year)
	}
}

func TestNewProfileSetValidation(t *testing.T) {
	if _, err := NewProfileSet(nil); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewProfileSet([]Profile{{Name: "x", Proportion: 0.5, Availability: 0.5}}); err == nil {
		t.Fatal("proportions not summing to 1 accepted")
	}
	if _, err := NewProfileSet([]Profile{{Name: "x", Proportion: 1, Availability: 0}}); err == nil {
		t.Fatal("zero availability accepted")
	}
	if _, err := NewProfileSet([]Profile{{Name: "x", Proportion: 1, Availability: 1.2}}); err == nil {
		t.Fatal("availability > 1 accepted")
	}
	if _, err := NewProfileSet([]Profile{
		{Name: "a", Proportion: -0.5, Availability: 0.5},
		{Name: "b", Proportion: 1.5, Availability: 0.5},
	}); err == nil {
		t.Fatal("negative proportion accepted")
	}
}

func TestSampleIndexProportions(t *testing.T) {
	ps := PaperProfiles()
	r := rng.New(1)
	const n = 200000
	counts := make([]int, ps.Len())
	for i := 0; i < n; i++ {
		counts[ps.SampleIndex(r)]++
	}
	want := []float64{0.10, 0.25, 0.30, 0.35}
	for i, w := range want {
		got := float64(counts[i]) / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("profile %d frequency = %.4f, want %.2f", i, got, w)
		}
	}
}

func TestSampleLifetime(t *testing.T) {
	ps := PaperProfiles()
	r := rng.New(2)
	if ps.SampleLifetime(r, 0) != Unlimited {
		t.Fatal("durable lifetime must be Unlimited")
	}
	for i := 0; i < 1000; i++ {
		l := ps.SampleLifetime(r, 3) // erratic: 1-3 months
		if l < 1*Month || l > 3*Month {
			t.Fatalf("erratic lifetime %d outside [%d, %d]", l, 1*Month, 3*Month)
		}
	}
	// Tiny lifetimes clamp to 1 round.
	tiny, err := NewProfileSet([]Profile{{Name: "t", Proportion: 1, Availability: 0.5, Lifetime: dist.Constant(0.2)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tiny.SampleLifetime(r, 0); got != 1 {
		t.Fatalf("tiny lifetime = %d, want 1", got)
	}
	huge, _ := NewProfileSet([]Profile{{Name: "h", Proportion: 1, Availability: 0.5, Lifetime: dist.Constant(math.Inf(1))}})
	if got := huge.SampleLifetime(r, 0); got != Unlimited {
		t.Fatalf("infinite lifetime = %d, want Unlimited", got)
	}
}

func TestParetoProfiles(t *testing.T) {
	ps, err := ParetoProfiles(720, 1.5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 1 || ps.Profile(0).Availability != 0.8 {
		t.Fatal("ParetoProfiles misconfigured")
	}
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		if l := ps.SampleLifetime(r, 0); l < 720 {
			t.Fatalf("Pareto lifetime %d below xm", l)
		}
	}
	if _, err := ParetoProfiles(-1, 1, 0.5); err == nil {
		t.Fatal("invalid Pareto params accepted")
	}
}

func TestSessionModelStationaryFraction(t *testing.T) {
	m := DefaultSessionModel()
	r := rng.New(4)
	for _, a := range []float64{0.33, 0.75, 0.87, 0.95} {
		got := StationaryOnlineFraction(m, a, r, 50000)
		// Rounding sessions up to >= 1 round biases short sessions; allow
		// a few percent.
		if math.Abs(got-a) > 0.04 {
			t.Errorf("session model availability %v: stationary fraction %v", a, got)
		}
	}
}

func TestBernoulliModelStationaryFraction(t *testing.T) {
	m := BernoulliModel{}
	r := rng.New(5)
	for _, a := range []float64{0.33, 0.75, 0.95} {
		got := StationaryOnlineFraction(m, a, r, 50000)
		if math.Abs(got-a) > 0.02 {
			t.Errorf("bernoulli availability %v: stationary fraction %v", a, got)
		}
	}
}

func TestSessionLengthsPositive(t *testing.T) {
	r := rng.New(6)
	for _, m := range []AvailabilityModel{DefaultSessionModel(), BernoulliModel{}, AlwaysOnline{}} {
		for _, a := range []float64{0.01, 0.33, 0.99, 1} {
			for _, online := range []bool{true, false} {
				for i := 0; i < 100; i++ {
					if l := m.SessionLength(r, a, online); l < 1 {
						t.Fatalf("%s: session length %d < 1", m.Name(), l)
					}
				}
			}
		}
	}
}

func TestAlwaysOnline(t *testing.T) {
	r := rng.New(7)
	m := AlwaysOnline{}
	if m.SessionLength(r, 0.5, true) != math.MaxInt64 {
		t.Fatal("online session must be effectively infinite")
	}
	if m.SessionLength(r, 0.5, false) != 1 {
		t.Fatal("offline stub must be one round")
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"session", "", "bernoulli", "always-online"} {
		if _, err := ModelByName(name); err != nil {
			t.Errorf("ModelByName(%q): %v", name, err)
		}
	}
	if _, err := ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{}
	tr.Append(0, 1, EvJoin)
	tr.Append(5, 1, EvOffline)
	tr.Append(9, 1, EvOnline)
	tr.Append(20, 1, EvLeave)
	tr.Append(3, 2, EvJoin)
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestTraceSort(t *testing.T) {
	tr := &Trace{}
	tr.Append(5, 2, EvLeave)
	tr.Append(5, 1, EvJoin)
	tr.Append(1, 9, EvJoin)
	tr.Sort()
	if tr.Events[0].Round != 1 || tr.Events[1].Peer != 1 {
		t.Fatalf("sort order wrong: %+v", tr.Events)
	}
}

func TestTraceLifetimes(t *testing.T) {
	tr := &Trace{}
	tr.Append(0, 1, EvJoin)
	tr.Append(100, 1, EvLeave)
	tr.Append(10, 2, EvJoin) // never leaves
	tr.Append(50, 3, EvJoin)
	tr.Append(60, 3, EvLeave)
	lifetimes := tr.Lifetimes()
	if len(lifetimes) != 2 {
		t.Fatalf("lifetimes = %v", lifetimes)
	}
	if lifetimes[0] != 100 || lifetimes[1] != 10 {
		t.Fatalf("lifetimes = %v, want [100 10]", lifetimes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"round,peer,kind\n1,2\n",
		"round,peer,kind\nx,2,join\n",
		"round,peer,kind\n1,y,join\n",
		"round,peer,kind\n1,2,what\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
	// Headerless but valid data is accepted (first line parses as data).
	tr, err := ReadCSV(strings.NewReader("1,2,join\n"))
	if err != nil || len(tr.Events) != 1 {
		t.Fatalf("headerless read = %v, %v", tr, err)
	}
}

func TestEventKindString(t *testing.T) {
	if EvJoin.String() != "join" || EvLeave.String() != "leave" ||
		EvOnline.String() != "online" || EvOffline.String() != "offline" {
		t.Fatal("kind names wrong")
	}
	if EventKind(99).String() == "" {
		t.Fatal("unknown kind must format")
	}
	if _, err := ParseEventKind("join"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseEventKind("bogus"); err == nil {
		t.Fatal("bogus kind parsed")
	}
}
