// Command benchjson runs the engine benchmarks and writes a JSON
// performance snapshot, so the repository's perf trajectory is a
// sequence of comparable machine-readable artifacts instead of ad-hoc
// log excerpts.
//
// Usage:
//
//	go run ./tools/benchjson                       # BENCH_4.json, engine benches
//	go run ./tools/benchjson -out snap.json -benchtime 500x
//	go run ./tools/benchjson -bench 'BenchmarkSimRound|BenchmarkQuiescentRound'
//
// It shells out to `go test -bench` in the module root and parses the
// standard benchmark output lines, so whatever the benchmarks measure
// is exactly what lands in the snapshot.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	MBPerSec   float64 `json:"mb_per_s,omitempty"`
}

// Snapshot is the emitted perf artifact.
type Snapshot struct {
	Bench      string      `json:"bench"`
	BenchTime  string      `json:"benchtime"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	NumCPU     int         `json:"num_cpu"`
	Timestamp  string      `json:"timestamp"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_4.json", "output JSON file")
	bench := flag.String("bench", "BenchmarkQuiescentRound|BenchmarkChurnRound|BenchmarkSimRound|BenchmarkLedgerSessionFlip|BenchmarkMaintainerStep",
		"benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "200x", "go test -benchtime value (fixed counts keep snapshots comparable)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench, "-benchtime", *benchtime, *pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: go test -bench failed:", err)
		os.Exit(1)
	}

	snap := Snapshot{
		Bench:     *bench,
		BenchTime: *benchtime,
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = strings.TrimSpace(cpu)
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n", *bench)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(snap.Benchmarks))
}

// parseBenchLine parses one standard result line:
//
//	BenchmarkQuiescentRound/peers=25000-8   2000   5267 ns/op [12.3 MB/s]
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i++ {
		if fields[i+1] == "MB/s" {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				b.MBPerSec = v
			}
		}
	}
	return b, true
}
