// Package experiments defines the runnable experiments that regenerate
// every table and figure of the paper's evaluation, plus the ablations
// called out in DESIGN.md. Each experiment takes a scale preset (the
// paper's full size is expensive), runs the required simulations -
// sweep points in parallel, each with a deterministic derived seed -
// and returns plot-ready data with TSV emitters.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/stats"
)

// Scale selects a simulation size preset.
type Scale string

// Scale presets. All keep the paper's intensive parameters (n, k,
// quota, thresholds, profile mix) and shrink the population and/or
// duration; EXPERIMENTS.md records which preset produced which numbers.
const (
	// ScaleSmoke: 600 peers, 20,000 rounds (~2.3 years): minutes for a
	// full sweep on a laptop; elders exist.
	ScaleSmoke Scale = "smoke"
	// ScaleDefault: 2,500 peers, full 50,000 rounds: the shape of every
	// figure at a tenth of the population.
	ScaleDefault Scale = "default"
	// ScalePaper: the paper's 25,000 peers x 50,000 rounds.
	ScalePaper Scale = "paper"
)

// BaseConfig returns the paper configuration adjusted to the scale.
func BaseConfig(scale Scale) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	switch scale {
	case ScaleSmoke:
		cfg.NumPeers = 600
		cfg.Rounds = 20000
	case ScaleDefault, "":
		cfg.NumPeers = 2500
		cfg.Rounds = 50000
	case ScalePaper:
		// as-is
	default:
		return cfg, fmt.Errorf("experiments: unknown scale %q", scale)
	}
	return cfg, nil
}

// Scales lists the preset names.
func Scales() []string { return []string{string(ScaleSmoke), string(ScaleDefault), string(ScalePaper)} }

// PaperThresholds returns the sweep of figure 1/2: 132 to 180 in steps
// of 4.
func PaperThresholds() []int {
	var ts []int
	for t := 132; t <= 180; t += 4 {
		ts = append(ts, t)
	}
	return ts
}

// runParallel executes jobs with bounded parallelism, preserving order.
func runParallel[T any](n int, parallelism int, job func(i int) (T, error)) ([]T, error) {
	if parallelism < 1 {
		parallelism = runtime.NumCPU()
	}
	out := make([]T, n)
	errs := make([]error, n)
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Figures 1 and 2: threshold sweep

// ThresholdPoint is one sweep point: per-category repair and loss rates
// at a repair threshold.
type ThresholdPoint struct {
	Threshold  int
	RepairRate [metrics.NumCategories]float64 // per 1000 peer-rounds
	LossRate   [metrics.NumCategories]float64 // per 1000 peer-rounds
	Repairs    int64
	Losses     int64
	Deaths     int64
}

// ThresholdSweep holds figure 1 (repair rates) and figure 2 (loss
// rates); the paper derives both from the same runs.
type ThresholdSweep struct {
	Scale  Scale
	Points []ThresholdPoint
}

// RunThresholdSweep executes one simulation per threshold. Seeds are
// derived from cfg.Seed and the threshold so points are independently
// reproducible. progress (optional) receives one message per finished
// point.
func RunThresholdSweep(cfg sim.Config, thresholds []int, parallelism int, progress func(string)) (*ThresholdSweep, error) {
	if len(thresholds) == 0 {
		return nil, fmt.Errorf("experiments: empty threshold list")
	}
	points, err := runParallel(len(thresholds), parallelism, func(i int) (ThresholdPoint, error) {
		c := cfg
		c.RepairThreshold = thresholds[i]
		c.Seed = cfg.Seed*1000003 + uint64(thresholds[i])
		s, err := sim.New(c)
		if err != nil {
			return ThresholdPoint{}, fmt.Errorf("threshold %d: %w", thresholds[i], err)
		}
		res := s.Run()
		p := ThresholdPoint{
			Threshold: thresholds[i],
			Repairs:   res.Collector.TotalRepairs(),
			Losses:    res.Collector.TotalLosses(),
			Deaths:    res.Deaths,
		}
		for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
			p.RepairRate[cat] = res.Collector.RepairRatePer1000(cat, c.CountInitialAsRepair)
			p.LossRate[cat] = res.Collector.LossRatePer1000(cat)
		}
		if progress != nil {
			progress(fmt.Sprintf("threshold %d done: %d repairs, %d losses", thresholds[i], p.Repairs, p.Losses))
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Threshold < points[j].Threshold })
	return &ThresholdSweep{Points: points}, nil
}

// WriteRepairTSV emits figure 1: threshold vs repair rate per category.
func (s *ThresholdSweep) WriteRepairTSV(w io.Writer) error {
	return s.writeTSV(w, "repairs_per_1000_peer_rounds", func(p ThresholdPoint, c metrics.Category) float64 {
		return p.RepairRate[c]
	})
}

// WriteLossTSV emits figure 2: threshold vs loss rate per category.
func (s *ThresholdSweep) WriteLossTSV(w io.Writer) error {
	return s.writeTSV(w, "losses_per_1000_peer_rounds", func(p ThresholdPoint, c metrics.Category) float64 {
		return p.LossRate[c]
	})
}

func (s *ThresholdSweep) writeTSV(w io.Writer, what string, get func(ThresholdPoint, metrics.Category) float64) error {
	if _, err := fmt.Fprintf(w, "# %s by repair threshold\n#threshold", what); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\t%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%d", p.Threshold); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", get(p, c)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figures 3 and 4: focal run at threshold 148

// FocalResult carries the observer series (figure 3) and the
// per-category cumulative loss series (figure 4) from the paper's focal
// configuration (threshold 148, five observers).
type FocalResult struct {
	Scale          Scale
	ObserverNames  []string
	ObserverCounts []int64
	ObserverSeries []*stats.Series
	LossSeries     [metrics.NumCategories]*stats.Series
	Repairs        int64
	Losses         int64
	Deaths         int64
}

// RunFocal executes the threshold-148 run with the paper's observers.
func RunFocal(cfg sim.Config, progress func(string)) (*FocalResult, error) {
	cfg.RepairThreshold = 148
	cfg.Observers = sim.PaperObservers()
	if progress != nil {
		every := cfg.Rounds / 10
		if every < 1 {
			every = 1
		}
		cfg.ProgressEvery = every
		cfg.Progress = func(round int64) {
			progress(fmt.Sprintf("focal run: round %d/%d", round, cfg.Rounds))
		}
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	res := s.Run()
	out := &FocalResult{
		ObserverNames: res.Observers.Names(),
		Repairs:       res.Collector.TotalRepairs(),
		Losses:        res.Collector.TotalLosses(),
		Deaths:        res.Deaths,
	}
	for i := 0; i < res.Observers.Len(); i++ {
		out.ObserverCounts = append(out.ObserverCounts, res.Observers.Count(i))
		out.ObserverSeries = append(out.ObserverSeries, res.Observers.Series(i))
	}
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		out.LossSeries[c] = res.Collector.LossSeries(c)
	}
	return out, nil
}

// WriteObserverTSV emits figure 3: cumulative repairs per observer over
// days (step series; one row per repair event).
func (f *FocalResult) WriteObserverTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# cumulative repairs per observer\n#observer\tday\tcumulative_repairs"); err != nil {
		return err
	}
	for i, name := range f.ObserverNames {
		s := f.ObserverSeries[i]
		for j := 0; j < s.Len(); j++ {
			x, y := s.At(j)
			if _, err := fmt.Fprintf(w, "%s\t%.4f\t%.0f\n", name, x, y); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteLossSeriesTSV emits figure 4: cumulative lost archives per peer
// by category over days.
func (f *FocalResult) WriteLossSeriesTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# cumulative lost archives per peer\n#day"); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\t%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	n := f.LossSeries[0].Len()
	for i := 0; i < n; i++ {
		day, _ := f.LossSeries[0].At(i)
		if _, err := fmt.Fprintf(w, "%.2f", day); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			_, y := f.LossSeries[c].At(i)
			if _, err := fmt.Fprintf(w, "\t%.6g", y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ablations

// AblationPoint is one variant's aggregate outcome.
type AblationPoint struct {
	Label      string
	RepairRate [metrics.NumCategories]float64
	LossRate   [metrics.NumCategories]float64
	Repairs    int64
	Losses     int64
	Deaths     int64
	Uploaded   int64 // total blocks uploaded (maintenance traffic)
}

// AblationResult is a labelled comparison of variants.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

func runVariants(cfg sim.Config, name string, labels []string, mutate func(c *sim.Config, i int), parallelism int, progress func(string)) (*AblationResult, error) {
	points, err := runParallel(len(labels), parallelism, func(i int) (AblationPoint, error) {
		c := cfg
		c.Seed = cfg.Seed*9176501 + uint64(i)
		mutate(&c, i)
		s, err := sim.New(c)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("%s variant %q: %w", name, labels[i], err)
		}
		res := s.Run()
		p := AblationPoint{
			Label:   labels[i],
			Repairs: res.Collector.TotalRepairs(),
			Losses:  res.Collector.TotalLosses(),
			Deaths:  res.Deaths,
		}
		for cat := metrics.Category(0); cat < metrics.NumCategories; cat++ {
			p.RepairRate[cat] = res.Collector.RepairRatePer1000(cat, c.CountInitialAsRepair)
			p.LossRate[cat] = res.Collector.LossRatePer1000(cat)
			p.Uploaded += res.Collector.Counts(cat).BlocksUploaded
		}
		if progress != nil {
			progress(fmt.Sprintf("%s %q done: %d repairs, %d losses", name, labels[i], p.Repairs, p.Losses))
		}
		return p, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: name, Points: points}, nil
}

// RunStrategyAblation compares partner-selection strategies (A1 in
// DESIGN.md) at the focal threshold.
func RunStrategyAblation(cfg sim.Config, parallelism int, progress func(string)) (*AblationResult, error) {
	names := selection.Names()
	return runVariants(cfg, "strategy", names, func(c *sim.Config, i int) {
		s, err := selection.ByName(names[i], c.AcceptHorizon)
		if err != nil {
			panic(err) // names comes from the registry
		}
		c.Strategy = s
	}, parallelism, progress)
}

// RunAvailabilityAblation compares availability models (A2).
func RunAvailabilityAblation(cfg sim.Config, parallelism int, progress func(string)) (*AblationResult, error) {
	labels := []string{"session", "bernoulli"}
	return runVariants(cfg, "availability-model", labels, func(c *sim.Config, i int) {
		m, err := churn.ModelByName(labels[i])
		if err != nil {
			panic(err)
		}
		c.Avail = m
	}, parallelism, progress)
}

// RunRepairDelayAblation sweeps the repair-delay knob (the paper's
// future-work item: hold a triggered repair so temporarily offline
// partners can return and cancel it).
func RunRepairDelayAblation(cfg sim.Config, delays []int, parallelism int, progress func(string)) (*AblationResult, error) {
	labels := make([]string, len(delays))
	for i, d := range delays {
		labels[i] = fmt.Sprintf("delay=%dh", d)
	}
	return runVariants(cfg, "repair-delay", labels, func(c *sim.Config, i int) {
		c.RepairDelay = delays[i]
	}, parallelism, progress)
}

// RunHorizonAblation sweeps the acceptance horizon L (A3).
func RunHorizonAblation(cfg sim.Config, horizons []int64, parallelism int, progress func(string)) (*AblationResult, error) {
	labels := make([]string, len(horizons))
	for i, h := range horizons {
		labels[i] = fmt.Sprintf("L=%dd", h/churn.Day)
	}
	return runVariants(cfg, "horizon", labels, func(c *sim.Config, i int) {
		c.AcceptHorizon = horizons[i]
		c.Strategy = selection.AgeBased{L: horizons[i]}
	}, parallelism, progress)
}

// WriteTSV emits the ablation comparison.
func (a *AblationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# ablation: %s\n#variant\trepairs\tlosses\tdeaths\tuploaded_blocks", a.Name); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\trepair_rate_%s", n); err != nil {
			return err
		}
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\tloss_rate_%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range a.Points {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d", p.Label, p.Repairs, p.Losses, p.Deaths, p.Uploaded); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", p.RepairRate[c]); err != nil {
				return err
			}
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", p.LossRate[c]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
