package backup

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Archive confidentiality (paper section 2.2.1): each archive is
// encrypted under a fresh symmetric session key before encoding;
// session keys are wrapped under the owner's public key inside the
// master block, so possession of the private key is necessary and
// sufficient to restore.
//
// The construction is AES-256-CTR with an HMAC-SHA256 tag
// (encrypt-then-MAC); the session key is split into independent
// encryption and MAC subkeys.

// SessionKeySize is the session key length in bytes.
const SessionKeySize = 32

const (
	ivSize  = aes.BlockSize
	tagSize = sha256.Size
)

// Sealed-layout: iv || ciphertext || tag.
const sealOverhead = ivSize + tagSize

// ErrDecrypt reports an authentication failure (wrong key or tampered
// ciphertext).
var ErrDecrypt = errors.New("backup: decryption failed (wrong key or corrupted data)")

// NewSessionKey draws a fresh random session key.
func NewSessionKey() ([]byte, error) {
	key := make([]byte, SessionKeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("backup: session key: %w", err)
	}
	return key, nil
}

func subKeys(key []byte) (encKey, macKey []byte) {
	he := hmac.New(sha256.New, key)
	he.Write([]byte("enc"))
	hm := hmac.New(sha256.New, key)
	hm.Write([]byte("mac"))
	return he.Sum(nil), hm.Sum(nil)
}

// Seal encrypts-and-authenticates plaintext under the session key.
func Seal(key, plaintext []byte) ([]byte, error) {
	if len(key) != SessionKeySize {
		return nil, fmt.Errorf("backup: session key must be %d bytes, got %d", SessionKeySize, len(key))
	}
	encKey, macKey := subKeys(key)
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	out := make([]byte, ivSize+len(plaintext)+tagSize)
	iv := out[:ivSize]
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	cipher.NewCTR(block, iv).XORKeyStream(out[ivSize:ivSize+len(plaintext)], plaintext)
	mac := hmac.New(sha256.New, macKey)
	mac.Write(out[:ivSize+len(plaintext)])
	copy(out[ivSize+len(plaintext):], mac.Sum(nil))
	return out, nil
}

// Open verifies and decrypts a Seal output.
func Open(key, sealed []byte) ([]byte, error) {
	if len(key) != SessionKeySize {
		return nil, fmt.Errorf("backup: session key must be %d bytes, got %d", SessionKeySize, len(key))
	}
	if len(sealed) < sealOverhead {
		return nil, ErrDecrypt
	}
	encKey, macKey := subKeys(key)
	body := sealed[:len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	mac := hmac.New(sha256.New, macKey)
	mac.Write(body)
	if !hmac.Equal(tag, mac.Sum(nil)) {
		return nil, ErrDecrypt
	}
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	plaintext := make([]byte, len(body)-ivSize)
	cipher.NewCTR(block, body[:ivSize]).XORKeyStream(plaintext, body[ivSize:])
	return plaintext, nil
}

// Identity is an owner key pair. The public key wraps session keys in
// the master block; the private key is the single secret a user needs
// to restore everything.
type Identity struct {
	Private *rsa.PrivateKey
}

// NewIdentity generates a fresh RSA key pair (2048 bits: comfortably
// beyond the paper's 2009 setting).
func NewIdentity() (*Identity, error) {
	key, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		return nil, fmt.Errorf("backup: identity: %w", err)
	}
	return &Identity{Private: key}, nil
}

// Public returns the wrapping key.
func (id *Identity) Public() *rsa.PublicKey { return &id.Private.PublicKey }

// WrapKey encrypts a session key under the owner's public key
// (RSA-OAEP/SHA-256).
func WrapKey(pub *rsa.PublicKey, sessionKey []byte) ([]byte, error) {
	out, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, sessionKey, []byte("p2pbackup session key"))
	if err != nil {
		return nil, fmt.Errorf("backup: wrap key: %w", err)
	}
	return out, nil
}

// UnwrapKey recovers a session key with the private key.
func UnwrapKey(id *Identity, wrapped []byte) ([]byte, error) {
	key, err := rsa.DecryptOAEP(sha256.New(), rand.Reader, id.Private, wrapped, []byte("p2pbackup session key"))
	if err != nil {
		return nil, fmt.Errorf("backup: unwrap key: %w", err)
	}
	return key, nil
}
