// Command p2psim runs the paper's simulation experiments and writes
// plot-ready TSV data.
//
// Usage:
//
//	p2psim -exp fig1 -scale smoke -out results/
//	p2psim -exp fig3 -scale default -seed 7 -out results/
//	p2psim -exp fig1 -strategy estimator:pareto -out results/
//	p2psim -exp fig3 -strategy monitored-availability -out results/
//	p2psim -exp ablation-estimator -scale smoke -out results/
//	p2psim -exp diurnal -scale smoke -out results/
//	p2psim -exp blackout -scale smoke -out results/
//	p2psim -exp replay -trace trace.csv -out results/
//	p2psim -exp all -scale smoke -out results/
//
// Experiments: fig1 fig2 (threshold sweep), fig3 fig4 (observers and
// cumulative losses at threshold 148), costmodel (section 2.2.4 table),
// ablation-strategy, ablation-availability, ablation-horizon,
// ablation-delay, ablation-estimator (age vs estimator-backed vs
// monitored-availability ranking under i.i.d., diurnal and replayed
// churn), and the scenario campaigns: diurnal (day/night amplitude
// sweep), blackout (correlated-failure shocks vs baseline), replay
// (every selection strategy over one recorded churn trace, -trace
// required; generate traces with cmd/tracegen), transfer-baseline
// (bandwidth presets compared on identical populations), flashcrowd
// (mid-run blackout followed by mass restore demand), uplink-sweep
// (budget-mode baseline vs DSL-class uplinks from 0.25x to 4x),
// fixed-vs-adaptive (the paper's fixed n-per-archive provisioning vs
// the adaptive redundancy policy under i.i.d., diurnal, shock and
// replayed churn, with storage-overhead and parity-cost columns), all.
//
// -strategy overrides the partner-selection strategy of the base
// configuration with a spec string from the selection registry: age,
// age:L=2160, random, availability-oracle, lifetime-oracle,
// youngest-first, estimator:age, estimator:pareto[:alpha=A,xm=X],
// estimator:empirical[:n=N], monitored-availability[:W]. Campaigns that
// sweep the strategy themselves ignore it per variant.
//
// -bandwidth attaches per-peer bandwidth classes so placements become
// in-flight transfers over metered uplinks: a preset (instant, dsl,
// mixed, skewed) or an explicit class spec
// ("[restart;]name:prop:up/down[:inflight];..." in blocks per round,
// see internal/transfer). The transfer campaigns (transfer-baseline,
// flashcrowd, uplink-sweep) sweep the mix themselves and ignore it per
// variant. When any run records backup or restore episodes, the final
// report includes time-to-backup/time-to-restore distribution lines.
//
// -redundancy sets the per-archive redundancy policy of the base
// configuration with a spec string from the redundancy registry:
// fixed (the paper's constant n), or
// adaptive:min=M,max=M2,target=P[,hysteresis=H,eval=E,sample=S] to
// retune each archive's parity count online from monitored partner
// availability. The fixed-vs-adaptive campaign sweeps the policy
// itself and uses this spec as its adaptive arm. When any run grew or
// shrank archives, the final report includes a redundancy line with
// the parity traffic and its upload cost on the paper's DSL link.
//
// -shards runs every simulation's shardable phases (availability
// history application, selection cache warming, final accounting) on
// that many workers. Results are bit-identical at every shard count —
// it is purely a speed knob, composing with -parallel, which runs
// whole variants concurrently; prefer -parallel while the campaign has
// more variants than cores, -shards when a few big runs dominate.
//
// -walk selects the engine generation: v1 (default) is the canonical
// sequential churn walk whose trajectories the original goldens pin;
// v3 shards the walk and the maintenance phase themselves (per-slot
// rng streams, effect-log merge at the round barrier) and carries its
// own versioned trajectory — bit-identical at every -shards value,
// but not draw-compatible with v1. Use v3 with -shards N to bend the
// big-population round times on multi-core machines.
//
// -phasetimes collects per-phase wall time (walk / merge /
// maintenance / transfer-drain / evaluation) in every run and prints
// the campaign-wide breakdown at exit — the first stop when deciding
// whether -shards/-walk=v3 would pay on a given workload.
//
// Scales: smoke (600 peers, 20k rounds), default (2,500 peers, 50k
// rounds), paper (25,000 peers, 50k rounds - slow). The replay
// experiment takes its population and length from the trace instead.
//
// Campaigns run on the experiments.Runner: simulations execute over a
// bounded worker pool and stream typed events; Ctrl-C cancels the
// whole campaign cleanly, including simulations already in flight.
//
// -procs N switches campaigns to the fault-tolerant process
// supervisor: each variant runs in an isolated worker process (this
// binary re-exec'd with -worker), with per-variant timeouts
// (-variant-timeout), heartbeat stall detection, and classified
// retries (panic / OOM-kill / hang / exit) with exponential backoff.
// Completed variants are checkpointed to an append-only journal
// (<out>/campaign.journal when -out is set); -resume FILE reloads a
// journal and re-runs only the variants without a completed row.
// Deterministic seeding makes supervised results bit-identical to
// in-process runs, crashes and retries included. Variants that
// exhaust their retries become typed failure rows: the campaign
// completes, the failures are summarised on stderr, and the exit
// code is 3.
//
// -worker is internal: run one variant as a supervisor's child
// (request on stdin, heartbeats and result on stdout).
//
// -cpuprofile and -memprofile write pprof profiles of the campaign
// (CPU over the whole run, heap at exit), so the engine's hot paths
// can be inspected without a throwaway harness:
//
//	p2psim -exp fig1 -scale default -cpuprofile cpu.pb.gz
//	go tool pprof cpu.pb.gz
//
// Profiles are flushed on every exit path, including campaign errors
// and Ctrl-C.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/experiments"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/transfer"
)

func main() {
	// The body lives in run so deferred profile flushes execute on
	// every exit path, including campaign errors and Ctrl-C.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "fig1", "experiment id: "+strings.Join(experiments.Names(), " "))
	scale := flag.String("scale", "smoke", "scale preset: "+strings.Join(experiments.Scales(), " "))
	seed := flag.Uint64("seed", 1, "base random seed")
	out := flag.String("out", "results", "output directory for TSV files (empty = stdout summary only)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent simulation runs")
	quiet := flag.Bool("quiet", false, "suppress progress messages")
	trace := flag.String("trace", "", "churn trace (CSV/JSONL) for -exp replay / ablation-estimator")
	strategy := flag.String("strategy", "", "partner-selection strategy spec, e.g. age:L=2160, estimator:pareto, monitored-availability:720 (default: the paper's age strategy)")
	bandwidth := flag.String("bandwidth", "", "bandwidth class spec: "+strings.Join(transfer.Presets(), " ")+", or name:prop:up/down[:inflight];... (default: the paper's instant placement)")
	redundancySpec := flag.String("redundancy", "", "redundancy policy spec: fixed, or adaptive:min=M,max=M2,target=P[,hysteresis=H,eval=E,sample=S] (default: the paper's fixed n per archive)")
	shards := flag.Int("shards", 0, "per-simulation shard workers for the engine's parallel phases; 0 or 1 = sequential, results are identical at every value")
	walk := flag.String("walk", "", "engine generation: v1 (canonical sequential walk, the default) or v3 (shard-local walk + deterministic merge; own versioned trajectory, identical at every -shards value)")
	phasetimes := flag.Bool("phasetimes", false, "collect per-phase wall time (walk/merge/maintenance/transfer-drain/evaluation) and print the campaign-wide breakdown at exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole campaign to this file (go tool pprof)")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit (go tool pprof)")
	worker := flag.Bool("worker", false, "internal: run one campaign variant as a supervisor's worker (request on stdin, result on stdout)")
	procs := flag.Int("procs", 0, "run campaigns under the fault-tolerant process supervisor with this many worker processes (0 = in-process)")
	variantTimeout := flag.Duration("variant-timeout", 0, "kill a supervised variant attempt running longer than this (0 = no limit; needs -procs)")
	resume := flag.String("resume", "", "resume from this checkpoint journal, re-running only unfinished variants (needs -procs)")
	flag.Parse()

	if *worker {
		return experiments.WorkerMain(os.Stdin, os.Stdout, os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "p2psim: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "p2psim: -cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "p2psim: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "p2psim: -memprofile:", err)
			}
		}()
	}

	opts := experiments.Options{
		Scale:        experiments.Scale(*scale),
		Seed:         *seed,
		Parallelism:  *parallel,
		OutDir:       *out,
		TracePath:    *trace,
		StrategySpec: *strategy,
		Bandwidth:    *bandwidth,
		Redundancy:   *redundancySpec,
		Shards:       *shards,
		Walk:         *walk,
		PhaseTimes:   *phasetimes,
	}
	if *resume != "" && *procs <= 0 {
		fmt.Fprintln(os.Stderr, "p2psim: -resume needs -procs")
		return 1
	}
	if *procs > 0 {
		opts.Procs = *procs
		opts.VariantTimeout = *variantTimeout
		if *resume != "" {
			opts.JournalPath = *resume
			opts.Resume = true
		} else if *out != "" {
			opts.JournalPath = filepath.Join(*out, "campaign.journal")
		}
	}
	if !*quiet {
		opts.Progress = func(msg string) {
			fmt.Fprintf(os.Stderr, "[%s] %s\n", time.Now().Format("15:04:05"), msg)
		}
	}
	// Tally simulated rounds and merge duration distributions off the
	// typed event stream so the run can close with a throughput figure
	// and, when any run recorded backup/restore episodes, campaign-wide
	// time-to-backup/time-to-restore lines. Rows are delivered from the
	// drain loop's goroutine, but campaigns can run back to back, so the
	// merge stays mutex-guarded.
	var simRounds atomic.Int64
	var (
		durMu          sync.Mutex
		ttb, ttr       metrics.Durations
		restoresFailed int64

		redunGrows, redunShrinks     int64
		parityAdded, parityReclaimed int64
		parityCostHours              float64

		phaseSum sim.PhaseTimes
		phasedN  int64
	)
	var failedVariants atomic.Int64
	opts.Events = func(ev experiments.Event) {
		if ev.Kind == experiments.EventFailed {
			failedVariants.Add(1)
			fmt.Fprintln(os.Stderr, "p2psim: variant failed:", ev.Message)
			return
		}
		if ev.Kind != experiments.EventRow || ev.Row == nil {
			return
		}
		simRounds.Add(ev.Row.Config.Rounds)
		col := ev.Row.Result.Collector
		durMu.Lock()
		if p := ev.Row.Result.Phases; p != nil {
			phaseSum.Walk += p.Walk
			phaseSum.Merge += p.Merge
			phaseSum.Maintenance += p.Maintenance
			phaseSum.TransferDrain += p.TransferDrain
			phaseSum.Evaluation += p.Evaluation
			phasedN++
		}
		ttb.Merge(col.TimeToBackup())
		ttr.Merge(col.TimeToRestore())
		restoresFailed += col.RestoresFailed()
		redunGrows += col.RedundancyGrows()
		redunShrinks += col.RedundancyShrinks()
		parityReclaimed += col.ParityBlocksReclaimed()
		if added := col.ParityBlocksAdded(); added > 0 {
			parityAdded += added
			cfg := ev.Row.Config
			code := costmodel.Code{
				ArchiveBytes: 128 * costmodel.MB,
				K:            cfg.DataBlocks,
				M:            cfg.TotalBlocks - cfg.DataBlocks,
			}
			if per, err := costmodel.ParityUploadCost(code, 1, costmodel.DSL2009()); err == nil {
				parityCostHours += per.Hours() * float64(added)
			}
		}
		durMu.Unlock()
	}
	start := time.Now()
	sums, err := experiments.RunCtx(ctx, *exp, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "p2psim: interrupted, campaign cancelled")
		} else {
			fmt.Fprintln(os.Stderr, "p2psim:", err)
		}
		return 1
	}
	for _, s := range sums {
		fmt.Printf("== %s ==\n%s", s.Name, s.Text)
		for _, f := range s.Files {
			fmt.Printf("wrote %s\n", f)
		}
		fmt.Println()
	}
	elapsed := time.Since(start)
	if rounds := simRounds.Load(); rounds > 0 && elapsed > 0 {
		fmt.Fprintf(os.Stderr, "done in %v: %d simulated rounds, %.0f rounds/sec\n",
			elapsed.Round(time.Millisecond), rounds, float64(rounds)/elapsed.Seconds())
	} else {
		fmt.Fprintf(os.Stderr, "done in %v\n", elapsed.Round(time.Millisecond))
	}
	if ttb.N() > 0 {
		fmt.Fprintf(os.Stderr, "time-to-backup: %s\n", durationLine(&ttb))
	}
	if ttr.N() > 0 || restoresFailed > 0 {
		fmt.Fprintf(os.Stderr, "time-to-restore: %s, %d failed\n", durationLine(&ttr), restoresFailed)
	}
	if redunGrows > 0 || redunShrinks > 0 {
		fmt.Fprintf(os.Stderr, "redundancy: %d grows / %d shrinks, +%d/-%d parity blocks, grow upload ~%.0fh on the 2009 DSL uplink\n",
			redunGrows, redunShrinks, parityAdded, parityReclaimed, parityCostHours)
	}
	if phasedN > 0 {
		total := phaseSum.Walk + phaseSum.Merge + phaseSum.Maintenance +
			phaseSum.TransferDrain + phaseSum.Evaluation
		fmt.Fprintf(os.Stderr, "phase times over %d runs (total %v):\n", phasedN, total.Round(time.Millisecond))
		for _, p := range []struct {
			name string
			d    time.Duration
		}{
			{"walk", phaseSum.Walk},
			{"merge", phaseSum.Merge},
			{"maintenance", phaseSum.Maintenance},
			{"transfer-drain", phaseSum.TransferDrain},
			{"evaluation", phaseSum.Evaluation},
		} {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(p.d) / float64(total)
			}
			fmt.Fprintf(os.Stderr, "  %-14s %12v  %5.1f%%\n", p.name, p.d.Round(time.Millisecond), pct)
		}
	}
	if n := failedVariants.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "p2psim: %d variant(s) failed permanently; partial results written\n", n)
		return 3
	}
	return 0
}

// durationLine formats a merged duration distribution (rounds = hours)
// for the final report.
func durationLine(d *metrics.Durations) string {
	if d.N() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.1fh p50=%.0fh p95=%.0fh max=%.0fh",
		d.N(), d.Mean(), d.Quantile(0.5), d.Quantile(0.95), d.Max())
}
