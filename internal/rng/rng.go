// Package rng provides the deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a
// run is identified by (experiment, seed) and must produce bit-identical
// metrics on every machine. math/rand's global state and Go-version
// sensitivity make it unsuitable, so this package implements
// xoshiro256++ (Blackman & Vigna) seeded through splitmix64, with
// support for deriving independent child streams, one per simulation
// run or subsystem.
//
// The generator is NOT safe for concurrent use; derive one child per
// goroutine instead.
package rng

import "math/bits"

// Rand is a xoshiro256++ generator. The zero value is invalid; use New
// or NewFromState.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded by expanding seed with splitmix64.
// Any seed value, including zero, is valid.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Reseed(seed)
	return r
}

// Reseed re-initialises the generator in place from seed, exactly as
// New(seed) would. It exists for callers holding generators by value in
// large arrays (one stream per simulation slot): seeding a million
// streams must not allocate a million temporaries.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9E3779B97F4A7C15
	}
}

// splitmix64 advances the splitmix state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// Derive maps a (seed, index) pair to the seed of an independent
// stream: New(Derive(seed, i)) for distinct i are statistically
// independent generators, all reproducible from the single base seed.
// This is the indexed counterpart of Child for call sites that need a
// stream per worker or per shard without threading a parent generator
// through — the same seed-derivation discipline the experiment runner
// uses per variant, with the arithmetic collision risk removed by
// passing both values through splitmix64.
func Derive(seed, index uint64) uint64 {
	// Chain through splitmix64 OUTPUTS, not its state: the state
	// transition is just an additive constant, so folding the index into
	// the state would let (seed, index) pairs related by that linearity
	// collide. The finalizer output is nonlinear in its input, which
	// breaks the algebra between the seed fold and the index fold.
	_, a := splitmix64(seed)
	_, b := splitmix64(a ^ bits.RotateLeft64(index, 32) ^ 0xD1B54A32D192ED03)
	_, out := splitmix64(b + index)
	return out
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Child derives an independent generator from this one. Streams derived
// by successive Child calls are statistically independent (each is
// seeded by fresh output of the parent, re-expanded through splitmix64).
func (r *Rand) Child() *Rand {
	return New(r.Uint64())
}

// Int63 returns a non-negative random int64, for compatibility with
// math/rand.Source. Rand implements math/rand.Source64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Seed is present to satisfy math/rand.Source; it reseeds the state.
func (r *Rand) Seed(seed int64) {
	*r = *New(uint64(seed))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Uses Lemire's multiply-shift rejection method (unbiased).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Lemire's method: multiply a random 64-bit value by n and take the
	// high word, rejecting the small biased region.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p. p <= 0 never, p >= 1 always.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher-Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// State returns the current internal state, for checkpointing.
func (r *Rand) State() [4]uint64 { return r.s }

// NewFromState restores a generator from a saved state.
func NewFromState(s [4]uint64) *Rand {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9E3779B97F4A7C15
	}
	return &Rand{s: s}
}
