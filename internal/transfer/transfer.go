// Package transfer models per-peer access links and schedules block
// transfers over them, replacing the engine's instantaneous placement
// with in-flight uploads and restores whose completions are calendar
// events.
//
// The paper's section 2.2.4 reduces bandwidth to a single per-round
// upload budget; "On Scheduling and Redundancy for P2P Backup"
// (PAPERS.md, arXiv 1009.1344) shows the scheduling dimension this
// collapses: asymmetric links, concurrent-transfer limits, and the gap
// between deciding to place a block and the block actually landing.
// This package supplies that dimension:
//
//   - Class describes one bandwidth class: asymmetric up/down rates in
//     blocks per round plus a concurrent-upload cap. A Params holds the
//     population's classes with mixing proportions; peers draw a class
//     at join time from the run's generator, exactly like behaviour
//     profiles.
//   - Scheduler turns each placement or restore decision into a
//     Transfer with a deterministic completion round, computed by
//     serialising each peer's uploads on its uplink in virtual time
//     (an M/D/1-style FIFO: a transfer starts when the uplink frees up
//     and flows at the min of the source's up rate and the sink's down
//     rate). Host quota is reserved at enqueue and released at
//     delivery or abort, so an accepted transfer can always land.
//   - Mid-flight interruptions are explicit: either endpoint going
//     offline suspends a transfer (progress kept or discarded per
//     ResumePolicy), an endpoint dying aborts it.
//
// The degenerate configuration — one class with infinite rates — is
// "instant" mode: completions land the next round, class sampling
// consumes no randomness, and the simulation engine keeps routing
// uploads through the historical UploadBudgetPerRound path, which is
// what keeps the pre-transfer golden digests bit-identical.
//
// Rates convert from the cost model's bytes-per-second links through
// FromLink, connecting internal/costmodel's section 2.2.4 arithmetic
// to the engine: a transfer's in-simulation duration agrees with
// costmodel.EstimateRepair on the same link and code shape (see the
// agreement test).
package transfer

import (
	"fmt"
	"strconv"
	"strings"

	"p2pbackup/internal/costmodel"
	"p2pbackup/internal/rng"
)

// RoundSeconds converts between the cost model's wall-clock rates and
// the engine's rounds: one simulation round is one hour.
const RoundSeconds = 3600

// Class is one bandwidth class: the asymmetric link of a fraction of
// the population, in blocks per round. A zero rate means infinite
// (that direction never constrains a transfer); both rates zero is an
// instant class.
type Class struct {
	// Name labels the class in specs and reports.
	Name string
	// Proportion is the class's population share; Params.Validate
	// normalises proportions to sum to 1.
	Proportion float64
	// Up is the uplink rate in blocks per round (0 = infinite).
	Up float64
	// Down is the downlink rate in blocks per round (0 = infinite).
	Down float64
	// MaxInflight caps a peer's concurrent outgoing uploads
	// (0 = unlimited).
	MaxInflight int
}

// Instant reports whether the class never delays a transfer.
func (c Class) Instant() bool { return c.Up == 0 && c.Down == 0 }

// ResumePolicy selects what happens to a suspended transfer's partial
// progress when it resumes.
type ResumePolicy uint8

const (
	// Resume keeps the blocks already transferred; only the remainder
	// is re-sent (rsync-style delta resumption).
	Resume ResumePolicy = iota
	// Restart discards partial progress; the transfer re-sends from
	// byte zero (plain HTTP PUT semantics).
	Restart
)

var resumePolicyNames = [...]string{"resume", "restart"}

// String returns the policy's spec-string name.
func (p ResumePolicy) String() string {
	if int(p) < len(resumePolicyNames) {
		return resumePolicyNames[p]
	}
	return fmt.Sprintf("ResumePolicy(%d)", uint8(p))
}

// Params configures the transfer subsystem: the population's bandwidth
// classes and the interruption policy.
type Params struct {
	// Classes is the bandwidth-class mix; at least one.
	Classes []Class
	// Policy selects resume-vs-restart semantics for transfers
	// interrupted by an endpoint going offline.
	Policy ResumePolicy
}

// Validate checks the parameters and returns a normalised copy:
// proportions scaled to sum to 1. The receiver is not modified (the
// same Params value may seed concurrently validated variants).
func (p *Params) Validate() (*Params, error) {
	if len(p.Classes) == 0 {
		return nil, fmt.Errorf("transfer: no bandwidth classes")
	}
	if int(p.Policy) >= len(resumePolicyNames) {
		return nil, fmt.Errorf("transfer: unknown resume policy %d", p.Policy)
	}
	out := &Params{
		Classes: append([]Class(nil), p.Classes...),
		Policy:  p.Policy,
	}
	total := 0.0
	for i := range out.Classes {
		c := &out.Classes[i]
		if c.Proportion <= 0 {
			return nil, fmt.Errorf("transfer: class %q proportion %v must be positive", c.Name, c.Proportion)
		}
		if c.Up < 0 || c.Down < 0 {
			return nil, fmt.Errorf("transfer: class %q has negative rate (up=%v down=%v)", c.Name, c.Up, c.Down)
		}
		if c.MaxInflight < 0 {
			return nil, fmt.Errorf("transfer: class %q has negative inflight cap %d", c.Name, c.MaxInflight)
		}
		total += c.Proportion
	}
	for i := range out.Classes {
		out.Classes[i].Proportion /= total
	}
	return out, nil
}

// Instant reports whether every class is instant: the degenerate mode
// equivalent to the engine's historical immediate placement.
func (p *Params) Instant() bool {
	for _, c := range p.Classes {
		if !c.Instant() {
			return false
		}
	}
	return true
}

// SampleIndex draws a class index according to the proportions. With a
// single class no randomness is consumed — load-bearing for the
// instant-mode golden digests: attaching a one-class Params must not
// perturb the run's rng stream.
func (p *Params) SampleIndex(r *rng.Rand) int {
	if len(p.Classes) <= 1 {
		return 0
	}
	u := r.Float64()
	acc := 0.0
	for i := range p.Classes {
		acc += p.Classes[i].Proportion
		if u < acc {
			return i
		}
	}
	return len(p.Classes) - 1
}

// InstantParams returns the degenerate single-class configuration:
// infinite rates, unlimited concurrency — the pre-transfer engine's
// semantics expressed in this package's vocabulary.
func InstantParams() *Params {
	return &Params{Classes: []Class{{Name: "instant", Proportion: 1}}}
}

// FromLink converts a cost-model link into a bandwidth class: bytes
// per second become blocks per round through the code's block size.
func FromLink(name string, proportion float64, l costmodel.Link, c costmodel.Code, maxInflight int) (Class, error) {
	if l.UploadBps <= 0 || l.DownloadBps <= 0 {
		return Class{}, costmodel.ErrBadLink
	}
	if err := c.Validate(); err != nil {
		return Class{}, err
	}
	block := float64(c.BlockBytes())
	return Class{
		Name:        name,
		Proportion:  proportion,
		Up:          l.UploadBps * RoundSeconds / block,
		Down:        l.DownloadBps * RoundSeconds / block,
		MaxInflight: maxInflight,
	}, nil
}

// ---------------------------------------------------------------------------
// Class-spec parsing (the CLI's -bandwidth flag)

// defaultInflight is the concurrent-upload cap the presets use: wide
// enough that the uplink, not the cap, is the binding constraint for a
// DSL-class link, tight enough to model real client connection limits.
const defaultInflight = 32

// DSLClass returns the paper's reference DSL link (32 kB/s up,
// 256 kB/s down, 1 MB blocks) as a bandwidth class.
func DSLClass(name string, proportion float64) Class {
	c, err := FromLink(name, proportion, costmodel.DSL2009(), costmodel.PaperCode(), defaultInflight)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	return c
}

// FTTHClass returns the paper's FTTH link (128 kB/s up, 1 MB/s down)
// as a bandwidth class.
func FTTHClass(name string, proportion float64) Class {
	c, err := FromLink(name, proportion, costmodel.FTTH2009(), costmodel.PaperCode(), defaultInflight)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	return c
}

// Presets returns the named preset specs Parse accepts, for help text.
func Presets() []string { return []string{"instant", "dsl", "mixed", "skewed"} }

// Parse builds Params from a class-spec string. Accepted forms:
//
//	instant                           the degenerate immediate-placement mode
//	dsl                               one class, the paper's DSL link
//	mixed                             50% DSL, 50% FTTH
//	skewed                            60% slow-uplink, 30% DSL, 10% FTTH
//	[restart;]name:prop:up/down[:inflight];...   explicit classes
//
// Explicit rates are blocks per round (0 = infinite); a leading
// "restart" (or "resume") token selects the interruption policy.
// The result is already validated and normalised.
func Parse(spec string) (*Params, error) {
	switch strings.TrimSpace(spec) {
	case "":
		return nil, fmt.Errorf("transfer: empty bandwidth spec")
	case "instant":
		return InstantParams().Validate()
	case "dsl":
		return (&Params{Classes: []Class{DSLClass("dsl", 1)}}).Validate()
	case "mixed":
		return (&Params{Classes: []Class{
			DSLClass("dsl", 0.5),
			FTTHClass("ftth", 0.5),
		}}).Validate()
	case "skewed":
		// The slow-uplink population: a long tail of peers whose uplink
		// is ~4x slower than DSL dominates, with a small fast minority.
		dsl := DSLClass("dsl", 0.3)
		return (&Params{Classes: []Class{
			{Name: "slow", Proportion: 0.6, Up: dsl.Up / 4, Down: dsl.Down / 4, MaxInflight: defaultInflight},
			dsl,
			FTTHClass("ftth", 0.1),
		}}).Validate()
	}
	p := &Params{}
	parts := strings.Split(spec, ";")
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if i == 0 {
			switch part {
			case "restart":
				p.Policy = Restart
				continue
			case "resume":
				p.Policy = Resume
				continue
			}
		}
		c, err := parseClass(part)
		if err != nil {
			return nil, err
		}
		p.Classes = append(p.Classes, c)
	}
	return p.Validate()
}

// parseClass parses one "name:prop:up/down[:inflight]" clause.
func parseClass(s string) (Class, error) {
	fields := strings.Split(s, ":")
	if len(fields) != 3 && len(fields) != 4 {
		return Class{}, fmt.Errorf("transfer: class %q: want name:prop:up/down[:inflight]", s)
	}
	c := Class{Name: fields[0]}
	prop, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return Class{}, fmt.Errorf("transfer: class %q: bad proportion: %v", s, err)
	}
	c.Proportion = prop
	up, down, ok := strings.Cut(fields[2], "/")
	if !ok {
		return Class{}, fmt.Errorf("transfer: class %q: rates want up/down", s)
	}
	if c.Up, err = strconv.ParseFloat(up, 64); err != nil {
		return Class{}, fmt.Errorf("transfer: class %q: bad up rate: %v", s, err)
	}
	if c.Down, err = strconv.ParseFloat(down, 64); err != nil {
		return Class{}, fmt.Errorf("transfer: class %q: bad down rate: %v", s, err)
	}
	if len(fields) == 4 {
		if c.MaxInflight, err = strconv.Atoi(fields[3]); err != nil {
			return Class{}, fmt.Errorf("transfer: class %q: bad inflight cap: %v", s, err)
		}
	}
	return c, nil
}
