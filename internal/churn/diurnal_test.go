package churn

import (
	"math"
	"testing"

	"p2pbackup/internal/rng"
)

func TestDiurnalAvailabilityAt(t *testing.T) {
	m := DiurnalModel{Amplitude: 0.5, Period: Day, Peak: 0}
	// Peak: availability scaled up by (1 + amp).
	if got := m.AvailabilityAt(0.5, 0); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("peak availability = %v, want 0.75", got)
	}
	// Trough (half a period later): scaled down by (1 - amp).
	if got := m.AvailabilityAt(0.5, 12); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("trough availability = %v, want 0.25", got)
	}
	// One full period after the peak is the peak again.
	if got, want := m.AvailabilityAt(0.5, Day), m.AvailabilityAt(0.5, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("availability not periodic: %v vs %v", got, want)
	}
	// Clamping at 1: a durable profile at full amplitude saturates.
	full := DiurnalModel{Amplitude: 1, Period: Day}
	if got := full.AvailabilityAt(0.95, full.Peak); got != 1 {
		t.Fatalf("clamped availability = %v, want 1", got)
	}
	// Never negative.
	for round := int64(0); round < Day; round++ {
		if a := full.AvailabilityAt(0.33, round); a < 0 || a > 1 {
			t.Fatalf("round %d: availability %v outside [0,1]", round, a)
		}
	}
	// Rounds before the peak (negative phase) are still in range.
	if a := m.AvailabilityAt(0.5, -6); a < 0 || a > 1 {
		t.Fatalf("negative-phase availability %v outside [0,1]", a)
	}
}

func TestDiurnalAmplitudeZeroMatchesBase(t *testing.T) {
	base := DefaultSessionModel()
	m := DiurnalModel{Base: base, Amplitude: 0, Period: Day}
	r1, r2 := rng.New(7), rng.New(7)
	for i := 0; i < 200; i++ {
		round := int64(i * 3)
		online := i%2 == 0
		got := m.SessionLengthAt(r1, 0.6, online, round)
		want := base.SessionLength(r2, 0.6, online)
		if got != want {
			t.Fatalf("i=%d: amp=0 diurnal %d != base %d", i, got, want)
		}
	}
}

func TestDiurnalSessionsFollowCycle(t *testing.T) {
	// Mean online session started at the peak must exceed the mean
	// online session started at the trough.
	m := DefaultDiurnalModel(0.8)
	r := rng.New(42)
	mean := func(round int64) float64 {
		var sum int64
		const n = 4000
		for i := 0; i < n; i++ {
			sum += m.SessionLengthAt(r, 0.5, true, round)
		}
		return float64(sum) / n
	}
	peak, trough := mean(m.Peak), mean(m.Peak+Day/2)
	if peak <= trough {
		t.Fatalf("mean online session at peak %v <= trough %v", peak, trough)
	}
}

func TestSessionLengthAtDispatch(t *testing.T) {
	// A plain model goes through the stateless path regardless of round.
	base := DefaultSessionModel()
	r1, r2 := rng.New(9), rng.New(9)
	if got, want := SessionLengthAt(base, r1, 0.5, true, 12345), base.SessionLength(r2, 0.5, true); got != want {
		t.Fatalf("plain dispatch %d != %d", got, want)
	}
	// A diurnal model goes through the time-aware path.
	m := DefaultDiurnalModel(0.9)
	r3, r4 := rng.New(9), rng.New(9)
	if got, want := SessionLengthAt(m, r3, 0.5, true, 6), m.SessionLengthAt(r4, 0.5, true, 6); got != want {
		t.Fatalf("diurnal dispatch %d != %d", got, want)
	}
}

func TestDiurnalModelByName(t *testing.T) {
	m, err := ModelByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(DiurnalModel); !ok {
		t.Fatalf("ModelByName(diurnal) = %T", m)
	}
	m, err = ModelByName("diurnal:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if d := m.(DiurnalModel); d.Amplitude != 0.25 {
		t.Fatalf("amplitude = %v, want 0.25", d.Amplitude)
	}
	if _, err := ModelByName("diurnal:bogus"); err == nil {
		t.Fatal("bad amplitude accepted")
	}
	if _, err := ModelByName("diurnal:1.5"); err == nil {
		t.Fatal("out-of-range amplitude accepted")
	}
}

func TestDiurnalValidate(t *testing.T) {
	if err := (DiurnalModel{Amplitude: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (DiurnalModel{Amplitude: -0.1}).Validate(); err == nil {
		t.Fatal("negative amplitude accepted")
	}
	if err := (DiurnalModel{Amplitude: 2}).Validate(); err == nil {
		t.Fatal("amplitude > 1 accepted")
	}
	if err := (DiurnalModel{Period: -3}).Validate(); err == nil {
		t.Fatal("negative period accepted")
	}
}
