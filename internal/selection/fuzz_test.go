package selection

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary spec strings at the strategy registry.
// Parse is the CLI's entry point (-strategy flag), so every input must
// either resolve to a usable policy or return an error — never panic,
// and never return a nil policy without one.
func FuzzParse(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	for _, s := range []string{
		"",
		"age:L=2160",
		"age:2160",
		"estimator:pareto:alpha=1.5,xm=24",
		"estimator:empirical:n=256",
		"monitored-availability:720",
		"monitored-availability:window=720",
		"age:L=",
		"age:L=abc",
		"age:L=2160,L=2160",
		"estimator",
		"no-such-strategy",
		"age:unknown=1",
		":::",
		"age:,",
		"age:=5",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pol, err := Parse(spec)
		if err != nil {
			if pol != nil {
				t.Fatalf("Parse(%q) returned both a policy and error %v", spec, err)
			}
			return
		}
		if pol == nil {
			t.Fatalf("Parse(%q) returned nil policy without error", spec)
		}
		// Accepted specs must parse identically a second time (the
		// registry is stateless) and under explicit defaults.
		if _, err := Parse(spec); err != nil {
			t.Fatalf("Parse(%q) succeeded then failed: %v", spec, err)
		}
		if _, err := ParseWith(spec, Defaults{Horizon: 48}); err != nil &&
			!strings.Contains(err.Error(), "horizon") {
			t.Fatalf("ParseWith(%q) diverged from Parse: %v", spec, err)
		}
	})
}
