package storage

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// Proofs of storage (the paper's ref [18], realised with HMACs instead
// of bilinear pairings): the owner precomputes, while it still holds
// the block, a set of (nonce, HMAC-SHA256(nonce, block)) pairs. To
// audit a holder it sends a fresh nonce from the set; only a party
// holding the full block content can answer correctly. Each challenge
// is single-use.

// NonceSize is the challenge nonce length in bytes.
const NonceSize = 24

// Challenge is one precomputed audit: the nonce to send and the answer
// to expect. The owner keeps both; the holder only ever sees nonces.
type Challenge struct {
	Nonce    [NonceSize]byte
	Expected [sha256.Size]byte
}

// Respond computes the holder-side answer to an audit nonce.
func Respond(block []byte, nonce [NonceSize]byte) [sha256.Size]byte {
	mac := hmac.New(sha256.New, nonce[:])
	mac.Write(block)
	var out [sha256.Size]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// GenerateChallenges precomputes count single-use audits for a block,
// drawing nonces from crypto/rand.
func GenerateChallenges(block []byte, count int) ([]Challenge, error) {
	if count < 1 {
		return nil, errors.New("storage: challenge count must be >= 1")
	}
	if len(block) == 0 {
		return nil, errors.New("storage: cannot challenge an empty block")
	}
	out := make([]Challenge, count)
	for i := range out {
		if _, err := rand.Read(out[i].Nonce[:]); err != nil {
			return nil, fmt.Errorf("storage: nonce generation: %w", err)
		}
		out[i].Expected = Respond(block, out[i].Nonce)
	}
	return out, nil
}

// Verify checks a holder's response against a precomputed challenge in
// constant time.
func (c Challenge) Verify(response [sha256.Size]byte) bool {
	return hmac.Equal(c.Expected[:], response[:])
}

// Auditor tracks the unused challenges for the blocks an owner has
// placed remotely. It is not safe for concurrent use.
type Auditor struct {
	pending map[BlockID][]Challenge
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{pending: make(map[BlockID][]Challenge)}
}

// Add registers precomputed challenges for a block.
func (a *Auditor) Add(id BlockID, cs []Challenge) {
	a.pending[id] = append(a.pending[id], cs...)
}

// Remaining returns how many unused challenges are left for a block.
func (a *Auditor) Remaining(id BlockID) int { return len(a.pending[id]) }

// ErrNoChallenges reports an exhausted challenge supply.
var ErrNoChallenges = errors.New("storage: no challenges left for block")

// Next pops the next unused challenge for a block.
func (a *Auditor) Next(id BlockID) (Challenge, error) {
	cs := a.pending[id]
	if len(cs) == 0 {
		return Challenge{}, fmt.Errorf("%w: %s", ErrNoChallenges, id)
	}
	c := cs[0]
	a.pending[id] = cs[1:]
	if len(a.pending[id]) == 0 {
		delete(a.pending, id)
	}
	return c, nil
}

// Forget drops all challenges for a block (e.g. after the placement is
// abandoned).
func (a *Auditor) Forget(id BlockID) { delete(a.pending, id) }
