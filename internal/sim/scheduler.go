package sim

// Event scheduling for the engine's event-driven core.
//
// Two structures drive a round:
//
//   - calendar: a bucket queue over future rounds holding each slot's
//     next timed event (death, category change, session toggle, all
//     folded into one wake time per slot). Pushing is O(1); draining a
//     round costs O(entries in the round's bucket). Entries are lazily
//     invalidated: the per-slot sched[] array is the source of truth
//     for when a slot really wakes, and entries that no longer match
//     it are dropped on drain. A slot woken early (its timer moved
//     later after the entry was pushed) simply finds nothing due and
//     reschedules — spurious wakes consume no randomness and emit no
//     events, so they can never perturb a trajectory.
//
//   - visitQueue: a binary min-heap of slot ids with O(1) membership
//     dedupe, ordering the round's walk. The engine keeps two (current
//     round and next round) and swaps them each round. Popping in
//     ascending slot order is what preserves the historical scan
//     engine's rng draw order: due events drain in ascending slot id
//     within a round, exactly as the full-population loop visited
//     them.

// calBuckets is the calendar width in rounds: events within this
// horizon land directly in their round's bucket; events further out
// stay in the bucket (their round modulo the width) and are skipped on
// intermediate drains, costing one touch per cycle. 8192 rounds (~11
// months) covers typical session and category timers; only long
// lifetimes ever wrap.
const calBuckets = 1 << 13

// calNode is one scheduled wake — a slot and the round it is due —
// linked into its bucket's list. Nodes live in the calendar's shared
// arena and are recycled through a freelist when drained, so pushes
// allocate only when the arena's all-time high-water mark grows
// (amortised to ~zero once the wheel is warm), where per-bucket slices
// kept reallocating through the wheel's entire first cycle.
type calNode struct {
	round int64
	slot  int32
	next  int32 // arena index of the next node in the bucket, -1 = end
}

// calendar is the bucket queue. The zero value is unusable; use
// newCalendar.
type calendar struct {
	head  []int32 // per bucket: arena index of the list head, -1 = empty
	arena []calNode
	free  int32 // freelist head, -1 = empty
}

func newCalendar() *calendar {
	c := &calendar{head: make([]int32, calBuckets), free: -1}
	for i := range c.head {
		c.head[i] = -1
	}
	return c
}

// push schedules a wake for slot at round. Stale entries for the same
// slot are tolerated (drain drops them via the sched check).
func (c *calendar) push(slot int32, round int64) {
	b := round & (calBuckets - 1)
	idx := c.free
	if idx >= 0 {
		c.free = c.arena[idx].next
	} else {
		idx = int32(len(c.arena))
		c.arena = append(c.arena, calNode{})
	}
	c.arena[idx] = calNode{round: round, slot: slot, next: c.head[b]}
	c.head[b] = idx
}

// drain appends to out the slots genuinely due at round (entry round
// matches and the slot's authoritative wake time sched[slot] agrees),
// keeps future entries that share the bucket, and recycles due and
// stale ones. List order within a bucket carries no meaning: the
// caller's visit queue orders the walk by slot id, so relinking during
// the filter is free to reverse it.
func (c *calendar) drain(round int64, sched []int64, out []int32) []int32 {
	b := round & (calBuckets - 1)
	idx := c.head[b]
	keep := int32(-1)
	for idx >= 0 {
		n := &c.arena[idx]
		next := n.next
		if n.round > round {
			n.next = keep // future entry sharing the bucket: keep
			keep = idx
		} else {
			if n.round == round && sched[n.slot] == round {
				out = append(out, n.slot)
			}
			n.next = c.free // due or stale: recycle
			c.free = idx
		}
		idx = next
	}
	c.head[b] = keep
	return out
}

// visitQueue is a binary min-heap of slot ids with a membership bitmap
// so each slot is queued at most once per round.
type visitQueue struct {
	q  []int32
	in []bool
}

func newVisitQueue(n int) *visitQueue {
	return &visitQueue{in: make([]bool, n)}
}

// push enqueues a slot; re-pushing a queued slot is a no-op.
func (v *visitQueue) push(id int32) {
	if v.in[id] {
		return
	}
	v.in[id] = true
	v.q = append(v.q, id)
	i := len(v.q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if v.q[p] <= v.q[i] {
			break
		}
		v.q[p], v.q[i] = v.q[i], v.q[p]
		i = p
	}
}

// pop removes and returns the smallest queued slot id. The caller must
// check empty first.
func (v *visitQueue) pop() int32 {
	id := v.q[0]
	last := len(v.q) - 1
	v.q[0] = v.q[last]
	v.q = v.q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && v.q[l] < v.q[small] {
			small = l
		}
		if r < last && v.q[r] < v.q[small] {
			small = r
		}
		if small == i {
			break
		}
		v.q[i], v.q[small] = v.q[small], v.q[i]
		i = small
	}
	v.in[id] = false
	return id
}

// empty reports whether the queue has no pending visits.
func (v *visitQueue) empty() bool { return len(v.q) == 0 }
