package node

import (
	"net"
	"testing"

	"p2pbackup/internal/backup"
	"p2pbackup/internal/p2pnet"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/storage"
)

// TestBackupOnFlakyNetwork: a lossy fabric (20% call drops) must not
// prevent a backup; placeBlock walks down the ranking past failures.
func TestBackupOnFlakyNetwork(t *testing.T) {
	c := newCluster(t, 16, smallParams)
	c.transport.SetDropRate(0.2)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("flaky"), "")
	if err != nil {
		t.Fatalf("backup on flaky network: %v", err)
	}
	c.transport.SetDropRate(0)
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, testFiles("flaky")) {
		t.Fatal("flaky-network backup corrupted data")
	}
}

// TestRestoreToleratesDrops: with mild drops, restore still gathers k
// of n blocks (the erasure margin doubles as a retry margin).
func TestRestoreToleratesDrops(t *testing.T) {
	c := newCluster(t, 16, smallParams)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("drops"), "")
	if err != nil {
		t.Fatal(err)
	}
	c.transport.SetDropRate(0.25)
	// 8 blocks, k=4: expected reachable 6 > 4. A single attempt can
	// still fail; allow a few retries as a client would.
	var restoreErr error
	for attempt := 0; attempt < 5; attempt++ {
		var got []backup.FileEntry
		got, restoreErr = owner.Restore(idx)
		if restoreErr == nil {
			if !entriesEqual(got, testFiles("drops")) {
				t.Fatal("drop-restore corrupted data")
			}
			return
		}
	}
	t.Fatalf("restore failed across retries: %v", restoreErr)
}

// TestHostQuotaRefusesStores: a host at quota declines and the owner
// routes around it.
func TestHostQuotaRefusesStores(t *testing.T) {
	transport := p2pnet.NewInMemTransport(5)
	dir := NewDirectory()
	// 9 peers with roomy stores plus one with a 1-byte quota.
	mk := func(name string, quota int64) *Node {
		nd, err := New(Config{
			Name:      name,
			Transport: transport,
			Store:     storage.NewMemStore(quota),
			Directory: dir,
			Params:    smallParams,
			Strategy:  selection.Random{},
			Identity:  fastIdentity(t),
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		dir.Register(name, selection.PeerInfo{})
		return nd
	}
	owner := mk("owner", 0)
	mk("cramped", 1)
	for i := 0; i < 8; i++ {
		mk(string(rune('a'+i)), 0)
	}
	idx, err := owner.Backup(testFiles("quota"), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, holder := range owner.placements[idx] {
		if holder == "cramped" {
			t.Fatal("block placed on a full host")
		}
	}
}

// TestAuditCatchesCorruption: a holder whose disk corrupts a block
// fails its proof-of-storage audit even though it still "has" the
// block.
func TestAuditCatchesCorruption(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("corrupt"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored block behind a holder's back.
	var victim *Node
	var key storage.BlockID
	for i, holder := range owner.placements[idx] {
		for _, nd := range c.nodes {
			if nd.Name() == holder {
				victim = nd
				key = owner.manifests[idx].BlockIDs[i]
			}
		}
		if victim != nil {
			break
		}
	}
	ms := victim.cfg.Store.(*storage.MemStore)
	if err := ms.Corrupt(key, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := owner.Audit(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed < 1 {
		t.Fatalf("corrupted block passed audits: %+v", rep)
	}
	// And the corrupted block is not served (integrity check on Get),
	// so restore falls back to the parity margin.
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, testFiles("corrupt")) {
		t.Fatal("restore used corrupted data")
	}
}

// TestMaintainTickStallsBelowK: with fewer than k blocks reachable the
// tick reports an error instead of fabricating data.
func TestMaintainTickStallsBelowK(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("stall"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Partition every holder: nothing reachable.
	for _, holder := range owner.placements[idx] {
		c.transport.SetPartitioned(holder, true)
	}
	if _, err := owner.MaintainTick(idx); err == nil {
		t.Fatal("tick succeeded with zero reachable blocks")
	}
	// Partners return: the next tick heals (visible dropped counters
	// reset naturally).
	for _, holder := range owner.placements[idx] {
		c.transport.SetPartitioned(holder, false)
	}
	rep, err := owner.MaintainTick(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Fatal("healthy archive triggered after heal")
	}
}

// TestTCPClusterEndToEnd runs a small real-socket cluster: a node's
// transport name is its TCP address, so peers exchange blocks over
// real loopback connections.
func TestTCPClusterEndToEnd(t *testing.T) {
	tr := p2pnet.NewTCPTransport()
	dir := NewDirectory()
	params := backup.Params{DataBlocks: 2, ParityBlocks: 2}
	var nodes []*Node
	for i := 0; i < 6; i++ {
		// Reserve an ephemeral port, release it, and have the node's
		// Serve re-bind it immediately (the reuse window is negligible
		// on loopback in a test).
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		name := ln.Addr().String()
		if err := ln.Close(); err != nil {
			t.Fatal(err)
		}
		nd, err := New(Config{
			Name:      name,
			Transport: tr,
			Store:     storage.NewMemStore(0),
			Directory: dir,
			Params:    params,
			Strategy:  selection.Random{},
			Identity:  fastIdentity(t),
			Seed:      uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		dir.Register(name, selection.PeerInfo{})
		nodes = append(nodes, nd)
	}
	owner := nodes[0]
	idx, err := owner.Backup(testFiles("tcp"), "")
	if err != nil {
		t.Fatal(err)
	}
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, testFiles("tcp")) {
		t.Fatal("TCP restore mismatch")
	}
	// Kill one holder's socket: restore still works (2 parity margin).
	for _, holder := range owner.placements[idx] {
		for _, nd := range nodes {
			if nd.Name() == holder {
				nd.Close()
			}
		}
		break
	}
	if _, err := owner.Restore(idx); err != nil {
		t.Fatalf("restore after socket loss: %v", err)
	}
}
