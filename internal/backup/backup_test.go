package backup

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"p2pbackup/internal/rng"
)

func testIdentity(t *testing.T) *Identity {
	t.Helper()
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func sampleEntries() []FileEntry {
	now := time.Date(2026, 6, 10, 12, 0, 0, 0, time.UTC)
	return []FileEntry{
		{Path: "docs/notes.txt", Mode: 0o644, ModTime: now, Data: []byte("some notes")},
		{Path: "photos/cat.raw", Mode: 0o600, ModTime: now, Data: bytes.Repeat([]byte{1, 2, 3}, 1000)},
		{Path: "empty.txt", Mode: 0o644, ModTime: now, Data: nil},
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	entries := sampleEntries()
	packed, err := PackFiles(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnpackFiles(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	// PackFiles sorts by path.
	wantOrder := []string{"docs/notes.txt", "empty.txt", "photos/cat.raw"}
	for i, w := range wantOrder {
		if got[i].Path != w {
			t.Fatalf("order[%d] = %q, want %q", i, got[i].Path, w)
		}
	}
	for _, e := range got {
		for _, orig := range entries {
			if orig.Path == e.Path && !bytes.Equal(orig.Data, e.Data) {
				t.Fatalf("%s content mismatch", e.Path)
			}
		}
	}
}

func TestPackDeterministic(t *testing.T) {
	a, err := PackFiles(sampleEntries())
	if err != nil {
		t.Fatal(err)
	}
	// Same entries in a different order pack identically.
	rev := sampleEntries()
	rev[0], rev[2] = rev[2], rev[0]
	b, err := PackFiles(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("packing is order-sensitive")
	}
}

func TestPackValidation(t *testing.T) {
	if _, err := PackFiles(nil); !errors.Is(err, ErrEmptyArchive) {
		t.Fatal("empty archive accepted")
	}
	if _, err := PackFiles([]FileEntry{{Path: ""}}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := UnpackFiles([]byte("not a tar")); err == nil {
		t.Fatal("garbage tar accepted")
	}
}

func TestCollectWriteDir(t *testing.T) {
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "a.txt"), []byte("alpha"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "sub", "b.txt"), []byte("beta"), 0o600); err != nil {
		t.Fatal(err)
	}
	entries, err := CollectDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("collected %d entries", len(entries))
	}
	dst := t.TempDir()
	if err := WriteDir(dst, entries); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		got, err := os.ReadFile(filepath.Join(dst, filepath.FromSlash(e.Path)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, e.Data) {
			t.Fatalf("%s content mismatch after restore", e.Path)
		}
	}
	// Empty dir fails.
	if _, err := CollectDir(t.TempDir()); !errors.Is(err, ErrEmptyArchive) {
		t.Fatal("empty dir accepted")
	}
}

func TestWriteDirRejectsEscapes(t *testing.T) {
	dst := t.TempDir()
	for _, p := range []string{"../evil", "/abs/path", "a/../../evil"} {
		err := WriteDir(dst, []FileEntry{{Path: p, Data: []byte("x")}})
		if !errors.Is(err, ErrUnsafePath) {
			t.Fatalf("path %q: err = %v, want ErrUnsafePath", p, err)
		}
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key, err := NewSessionKey()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{0, 1, 15, 16, 17, 1000} {
		plaintext := bytes.Repeat([]byte{0xAB}, size)
		sealed, err := Seal(key, plaintext)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(sealed, []byte{0xAB, 0xAB, 0xAB, 0xAB, 0xAB, 0xAB, 0xAB, 0xAB}) && size >= 8 {
			t.Fatal("sealed output leaks plaintext runs")
		}
		got, err := Open(key, sealed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, plaintext) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key, _ := NewSessionKey()
	sealed, err := Seal(key, []byte("attack at dawn"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, ivSize + 2, len(sealed) - 1} {
		tampered := append([]byte(nil), sealed...)
		tampered[idx] ^= 1
		if _, err := Open(key, tampered); !errors.Is(err, ErrDecrypt) {
			t.Fatalf("tamper at %d: err = %v, want ErrDecrypt", idx, err)
		}
	}
	// Wrong key.
	other, _ := NewSessionKey()
	if _, err := Open(other, sealed); !errors.Is(err, ErrDecrypt) {
		t.Fatal("wrong key accepted")
	}
	// Truncated.
	if _, err := Open(key, sealed[:10]); !errors.Is(err, ErrDecrypt) {
		t.Fatal("truncated input accepted")
	}
	// Bad key length.
	if _, err := Seal([]byte("short"), []byte("x")); err == nil {
		t.Fatal("short key accepted by Seal")
	}
	if _, err := Open([]byte("short"), sealed); err == nil {
		t.Fatal("short key accepted by Open")
	}
}

func TestKeyWrapRoundTrip(t *testing.T) {
	id := testIdentity(t)
	key, _ := NewSessionKey()
	wrapped, err := WrapKey(id.Public(), key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnwrapKey(id, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("unwrapped key differs")
	}
	// A different identity cannot unwrap.
	other := testIdentity(t)
	if _, err := UnwrapKey(other, wrapped); err == nil {
		t.Fatal("foreign identity unwrapped the key")
	}
}

func TestEncodeDecodeArchive(t *testing.T) {
	id := testIdentity(t)
	params := Params{DataBlocks: 8, ParityBlocks: 4}
	plaintext, _ := PackFiles(sampleEntries())
	blocks, m, err := EncodeArchive(params, id, plaintext, "test archive")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 12 || len(m.BlockIDs) != 12 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if m.Description != "test archive" {
		t.Fatal("description lost")
	}
	// Lose m random blocks: restore still works.
	r := rng.New(1)
	lost := r.Perm(12)[:4]
	available := make([][]byte, 12)
	copy(available, blocks)
	for _, i := range lost {
		available[i] = nil
	}
	got, err := DecodeArchive(m, id, available)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("restored archive differs")
	}
	files, err := UnpackFiles(got)
	if err != nil || len(files) != 3 {
		t.Fatalf("unpack after restore: %v", err)
	}
}

func TestDecodeArchiveErrors(t *testing.T) {
	id := testIdentity(t)
	params := Params{DataBlocks: 4, ParityBlocks: 2}
	plaintext := []byte("small archive content")
	blocks, m, err := EncodeArchive(params, id, plaintext, "")
	if err != nil {
		t.Fatal(err)
	}
	// Too few blocks.
	tooFew := make([][]byte, 6)
	copy(tooFew, blocks[:3])
	if _, err := DecodeArchive(m, id, tooFew); !errors.Is(err, ErrTooFewBlocks) {
		t.Fatalf("err = %v, want ErrTooFewBlocks", err)
	}
	// Corrupted block detected by hash.
	bad := make([][]byte, 6)
	copy(bad, blocks)
	bad[2] = append([]byte(nil), bad[2]...)
	bad[2][0] ^= 1
	if _, err := DecodeArchive(m, id, bad); !errors.Is(err, ErrBlockHash) {
		t.Fatalf("err = %v, want ErrBlockHash", err)
	}
	// Wrong slot count.
	if _, err := DecodeArchive(m, id, blocks[:5]); !errors.Is(err, ErrManifest) {
		t.Fatalf("err = %v, want ErrManifest", err)
	}
	// Wrong identity fails at unwrap.
	other := testIdentity(t)
	full := make([][]byte, 6)
	copy(full, blocks)
	if _, err := DecodeArchive(m, other, full); err == nil {
		t.Fatal("foreign identity restored the archive")
	}
	// Empty plaintext rejected at encode.
	if _, _, err := EncodeArchive(params, id, nil, ""); !errors.Is(err, ErrEmptyArchive) {
		t.Fatal("empty archive accepted")
	}
	// Invalid params rejected.
	if _, _, err := EncodeArchive(Params{DataBlocks: 0, ParityBlocks: 1}, id, plaintext, ""); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestManifestMarshalRoundTrip(t *testing.T) {
	id := testIdentity(t)
	_, m, err := EncodeArchive(Params{DataBlocks: 3, ParityBlocks: 2}, id, []byte("data"), "d")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.SealedSize != m.SealedSize || len(got.BlockIDs) != len(m.BlockIDs) {
		t.Fatal("manifest round trip mismatch")
	}
	if _, err := UnmarshalManifest([]byte("{")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := UnmarshalManifest([]byte("{}")); err == nil {
		t.Fatal("empty manifest accepted")
	}
}

func TestMasterBlockRoundTrip(t *testing.T) {
	id := testIdentity(t)
	_, m1, err := EncodeArchive(Params{DataBlocks: 3, ParityBlocks: 2}, id, []byte("archive one"), "one")
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := EncodeArchive(Params{DataBlocks: 3, ParityBlocks: 2}, id, []byte("archive two"), "two")
	if err != nil {
		t.Fatal(err)
	}
	mb := &MasterBlock{
		Manifests: []*Manifest{m1, m2},
		Partners:  map[int][]string{0: {"peer-a", "peer-b"}},
	}
	raw, err := MarshalMasterBlock(mb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMasterBlock(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Manifests) != 2 || got.Version != 1 {
		t.Fatalf("master block round trip: %+v", got)
	}
	if got.Partners[0][1] != "peer-b" {
		t.Fatal("partners lost")
	}
	if _, err := UnmarshalMasterBlock([]byte(`{"version":9}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := UnmarshalMasterBlock([]byte("[")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestPaperShapeArchive(t *testing.T) {
	// Full-size shape (k=m=128) on a small archive: the pipeline holds
	// with 128 lost blocks, the paper's worst tolerated case.
	id := testIdentity(t)
	plaintext := bytes.Repeat([]byte("paper-scale "), 4096)
	blocks, m, err := EncodeArchive(DefaultParams(), id, plaintext, "")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for _, i := range r.Perm(256)[:128] {
		blocks[i] = nil
	}
	got, err := DecodeArchive(m, id, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatal("paper-shape restore failed")
	}
}
