// Package lifetime implements peer-lifetime estimation, the paper's
// selection criterion.
//
// Studies of deployed peer-to-peer systems (Bustamante & Qiao 2003;
// Maymounkov & Mazieres 2002; Tian & Dai 2007 - the paper's refs
// [5, 16, 23]) observe that peer lifetimes are heavy-tailed: the longer
// a peer has already been in the system, the longer it is expected to
// stay. For a Pareto(xm, alpha) lifetime the conditional expected
// remaining lifetime at age t >= xm is t/(alpha-1) - it GROWS linearly
// with age. The paper exploits this by ranking peers on age alone,
// which is monotone in every lifetime estimate derived from a
// heavy-tailed model, so no fitted parameters are needed at selection
// time.
//
// This package provides:
//   - ParetoModel: a fitted Pareto lifetime model (MLE), with survival,
//     hazard, and conditional remaining-lifetime queries;
//   - Estimator: the interface the selection strategies consume;
//   - AgeRank: the paper's non-parametric estimator (expected remaining
//     lifetime is any increasing function of age);
//   - EmpiricalModel: a distribution-free estimator backed by observed
//     lifetimes, for validating the Pareto assumption.
package lifetime

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"p2pbackup/internal/stats"
)

// Estimator predicts how much longer a peer of a given age will remain,
// in the same time unit ages are measured in. Implementations must be
// monotone non-decreasing in age for ages past their scale floor; that
// monotonicity is what makes "sort by age" a valid selection rule.
type Estimator interface {
	// ExpectedRemaining returns E[lifetime - age | lifetime > age].
	ExpectedRemaining(age float64) float64
}

// ErrNoSamples reports a fit attempted on insufficient data.
var ErrNoSamples = errors.New("lifetime: not enough samples to fit")

// ---------------------------------------------------------------------------
// Pareto model

// ParetoModel is a Pareto(xm, alpha) lifetime distribution.
type ParetoModel struct {
	Xm    float64 // scale (minimum lifetime)
	Alpha float64 // tail exponent
}

// FitPareto computes the maximum-likelihood Pareto fit to observed
// complete lifetimes: xm = min(x), alpha = n / sum(ln(x/xm)).
func FitPareto(samples []float64) (ParetoModel, error) {
	if len(samples) < 2 {
		return ParetoModel{}, fmt.Errorf("%w: got %d", ErrNoSamples, len(samples))
	}
	xm := math.Inf(1)
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) {
			return ParetoModel{}, fmt.Errorf("lifetime: non-positive sample %v", x)
		}
		if x < xm {
			xm = x
		}
	}
	var logSum float64
	for _, x := range samples {
		logSum += math.Log(x / xm)
	}
	if logSum == 0 {
		return ParetoModel{}, errors.New("lifetime: degenerate samples (all equal)")
	}
	return ParetoModel{Xm: xm, Alpha: float64(len(samples)) / logSum}, nil
}

// Survival returns P(T > t).
func (m ParetoModel) Survival(t float64) float64 {
	if t <= m.Xm {
		return 1
	}
	return math.Pow(m.Xm/t, m.Alpha)
}

// Hazard returns the hazard rate f(t)/S(t) = alpha/t for t >= xm.
// A decreasing hazard is the signature of "older peers die less":
// new-user infant mortality dominates.
func (m ParetoModel) Hazard(t float64) float64 {
	if t < m.Xm {
		return 0
	}
	return m.Alpha / t
}

// ExpectedRemaining returns E[T - t | T > t]; +Inf when alpha <= 1.
func (m ParetoModel) ExpectedRemaining(age float64) float64 {
	if m.Alpha <= 1 {
		return math.Inf(1)
	}
	s := math.Max(age, m.Xm)
	return s*m.Alpha/(m.Alpha-1) - age
}

// QuantileRemaining returns the q-quantile of the remaining lifetime at
// the given age (q in [0,1)). Unlike the mean it is finite for any
// alpha > 0, so it is usable for very heavy tails.
func (m ParetoModel) QuantileRemaining(age float64, q float64) float64 {
	if q < 0 || q >= 1 {
		panic("lifetime: quantile out of [0,1)")
	}
	s := math.Max(age, m.Xm)
	// T | T > s is Pareto(s, alpha); quantile is s*(1-q)^(-1/alpha).
	return s*math.Pow(1-q, -1/m.Alpha) - age
}

// ---------------------------------------------------------------------------
// Age rank (the paper's estimator)

// AgeRank is the paper's non-parametric rule: a peer's expected
// remaining lifetime is taken to be proportional to its age, capped at
// Horizon (the paper's L = 90 days - "peers which have been in the
// system for longer times are not much different"). The absolute scale
// is irrelevant; only the ordering matters for selection.
type AgeRank struct {
	// Horizon caps the age considered; <= 0 means no cap.
	Horizon float64
}

// ExpectedRemaining returns min(age, Horizon) (age itself if no cap):
// the identity-in-age estimate whose ordering matches any heavy-tail
// model.
func (a AgeRank) ExpectedRemaining(age float64) float64 {
	if age < 0 {
		age = 0
	}
	if a.Horizon > 0 && age > a.Horizon {
		return a.Horizon
	}
	return age
}

// Compare orders two ages under the capped rule: -1 if a1 ranks below
// a2, 0 if they tie (both beyond the horizon or equal), +1 otherwise.
func (a AgeRank) Compare(age1, age2 float64) int {
	e1, e2 := a.ExpectedRemaining(age1), a.ExpectedRemaining(age2)
	switch {
	case e1 < e2:
		return -1
	case e1 > e2:
		return 1
	default:
		return 0
	}
}

// ---------------------------------------------------------------------------
// Empirical model

// EmpiricalModel estimates remaining lifetime from a set of observed
// complete lifetimes with no distributional assumption: the Kaplan-Meier
// style plug-in E[T - t | T > t] over the empirical distribution.
type EmpiricalModel struct {
	sorted []float64 // ascending observed lifetimes
	suffix []float64 // suffix[i] = sum of sorted[i:]
}

// NewEmpiricalModel builds the estimator from complete lifetimes.
func NewEmpiricalModel(lifetimes []float64) (*EmpiricalModel, error) {
	if len(lifetimes) == 0 {
		return nil, ErrNoSamples
	}
	s := append([]float64(nil), lifetimes...)
	sort.Float64s(s)
	if s[0] <= 0 {
		return nil, errors.New("lifetime: non-positive lifetime sample")
	}
	suffix := make([]float64, len(s)+1)
	for i := len(s) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + s[i]
	}
	return &EmpiricalModel{sorted: s, suffix: suffix}, nil
}

// Survival returns the empirical P(T > t).
func (e *EmpiricalModel) Survival(t float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, t)
	// Move past ties: Survival counts strictly greater samples.
	for idx < len(e.sorted) && e.sorted[idx] == t {
		idx++
	}
	return float64(len(e.sorted)-idx) / float64(len(e.sorted))
}

// ExpectedRemaining returns the plug-in estimate of E[T - t | T > t].
// If no observed lifetime exceeds t, the largest observation's residual
// (zero) is returned.
func (e *EmpiricalModel) ExpectedRemaining(age float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, age)
	for idx < len(e.sorted) && e.sorted[idx] == age {
		idx++
	}
	n := len(e.sorted) - idx
	if n == 0 {
		return 0
	}
	return e.suffix[idx]/float64(n) - age
}

// Len returns the number of samples backing the model.
func (e *EmpiricalModel) Len() int { return len(e.sorted) }

// ---------------------------------------------------------------------------
// Validation helpers

// ParetoGoodnessOfFit fits a Pareto to the samples and reports the
// Kolmogorov-Smirnov distance between the samples and the fitted model
// (parametric bootstrap against the analytic CDF). Small distances
// support the paper's heavy-tail assumption for a given churn trace.
func ParetoGoodnessOfFit(samples []float64) (model ParetoModel, ks float64, err error) {
	model, err = FitPareto(samples)
	if err != nil {
		return ParetoModel{}, 0, err
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := 1 - model.Survival(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return model, d, nil
}

// TailExponent estimates alpha via the log-log complementary CDF fit
// (see stats.FitParetoLogLog), a robustness cross-check on the MLE.
func TailExponent(samples []float64) (float64, error) {
	alpha, _, err := stats.FitParetoLogLog(samples)
	return alpha, err
}
