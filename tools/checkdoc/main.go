// Command checkdoc fails when a package directory contains exported
// identifiers without doc comments — the documentation gate CI runs on
// the packages whose godoc is part of the public contract.
//
// Usage:
//
//	go run ./tools/checkdoc internal/churn internal/sim
//
// Rules (a deliberately small subset of revive's exported rule, with no
// dependency): every exported top-level type, function, method, and
// every exported const/var (or its enclosing declaration group) must
// carry a doc comment. _test.go files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: checkdoc DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		missing, err := check(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdoc:", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// check parses one directory (non-recursive) and returns one message
// per undocumented exported identifier.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s has no doc comment",
			filepath.ToSlash(p.Filename), p.Line, what, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						report(d.Pos(), funcKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// receiverExported reports whether a method's receiver type is itself
// exported (methods on unexported types are internal detail).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true // plain function
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcKind labels a FuncDecl for the report.
func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

// checkGenDecl handles const/var/type declarations. A doc comment on
// the declaration group covers every spec inside it; otherwise each
// exported spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}
