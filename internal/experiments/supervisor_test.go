package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"p2pbackup/internal/sim"
)

// testWorkerEnv flips the test binary into worker mode: the supervisor
// tests re-exec os.Args[0] with this set, and TestMain routes the child
// straight into WorkerMain instead of the test runner. This is the same
// arrangement `p2psim -worker` provides in production.
const testWorkerEnv = "P2PSIM_TEST_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(testWorkerEnv) == "1" {
		os.Exit(WorkerMain(os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// microSpec is a four-variant campaign small enough to run a worker
// process in tens of milliseconds. Its overrides mirror microConfig.
func microSpec() CampaignSpec {
	return CampaignSpec{
		Kind:   "repair-delay",
		Scale:  ScaleSmoke,
		Seed:   3,
		Delays: []int{0, 6, 12, 24},
		Overrides: &ConfigOverrides{
			NumPeers: 100, Rounds: 300, TotalBlocks: 16, DataBlocks: 8,
			RepairThreshold: 10, Quota: 48, PoolSamplePerRound: 32, AcceptHorizon: 48,
		},
	}
}

// testSupervisor builds a supervisor that re-execs the test binary as
// its worker, with millisecond backoffs so retry tests stay fast.
func testSupervisor(env ...string) *Supervisor {
	return &Supervisor{
		Procs:     2,
		WorkerCmd: []string{os.Args[0]},
		WorkerEnv: append([]string{testWorkerEnv + "=1"}, env...),
		Retry:     RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
	}
}

// rowsDigest serialises everything a row consumer can observe — index,
// name, seed and the full result snapshot — so two runs can be compared
// byte for byte.
func rowsDigest(t *testing.T, rows []Row) string {
	t.Helper()
	var b strings.Builder
	for _, r := range rows {
		raw, err := json.Marshal(snapshotResult(r.Result))
		if err != nil {
			t.Fatalf("marshal row %d: %v", r.Index, err)
		}
		fmt.Fprintf(&b, "%d %s seed=%d %s\n", r.Index, r.Name, r.Config.Seed, raw)
	}
	return b.String()
}

// ablationTSV renders rows exactly as the registry's ablation
// experiments do, for the bit-identical-output assertions.
func ablationTSV(t *testing.T, name string, rows []Row) string {
	t.Helper()
	var buf bytes.Buffer
	if err := AblationFromRows(name, rows).WriteTSV(&buf); err != nil {
		t.Fatalf("WriteTSV: %v", err)
	}
	return buf.String()
}

// inProcessBaseline runs the spec's campaign on the in-process Runner.
func inProcessBaseline(t *testing.T, spec CampaignSpec) []Row {
	t.Helper()
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rows, err := collectRows(context.Background(), Runner{Parallelism: 2}, camp, nil)
	if err != nil {
		t.Fatalf("collectRows: %v", err)
	}
	return rows
}

func TestSupervisedMatchesInProcess(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	want := inProcessBaseline(t, spec)

	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, err := testSupervisor().Run(context.Background(), spec, camp, nil)
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("supervised run returned %d rows, want %d", len(got), len(want))
	}
	if d1, d2 := rowsDigest(t, want), rowsDigest(t, got); d1 != d2 {
		t.Errorf("supervised rows differ from in-process rows:\nin-process:\n%s\nsupervised:\n%s", d1, d2)
	}
	if t1, t2 := ablationTSV(t, camp.Name, want), ablationTSV(t, camp.Name, got); t1 != t2 {
		t.Errorf("supervised TSV differs from in-process TSV:\n%s\nvs\n%s", t1, t2)
	}
}

// TestSupervisedChaosDeterministic injects one fault of every class —
// panic, clean nonzero exit, self-SIGKILL (the OOM-killer signature)
// and a hang that never heartbeats — into the first attempt of each
// variant, and requires the retried campaign to produce output
// byte-identical to the fault-free in-process run.
func TestSupervisedChaosDeterministic(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	want := inProcessBaseline(t, spec)
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	journal := filepath.Join(t.TempDir(), "chaos.jsonl")
	sup := testSupervisor(FaultEnv + "=panic@variant0|exit5@variant1|kill9@variant2|hang@variant3")
	sup.JournalPath = journal
	// Generous grace: race-instrumented test binaries on a loaded CI
	// machine can take most of a second just to start. The hang fault
	// never writes a byte, so it is detected at the grace deadline
	// regardless of how large the margin is.
	sup.HeartbeatGrace = 3 * time.Second
	sup.VariantTimeout = 60 * time.Second

	var mu sync.Mutex
	var retries []string
	got, err := sup.Run(context.Background(), spec, camp, func(ev Event) {
		if ev.Kind == EventProgress && strings.Contains(ev.Message, "retrying") {
			mu.Lock()
			retries = append(retries, ev.Message)
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("chaos run returned %d rows, want %d", len(got), len(want))
	}
	if d1, d2 := rowsDigest(t, want), rowsDigest(t, got); d1 != d2 {
		t.Errorf("chaos rows differ from fault-free in-process rows")
	}
	if t1, t2 := ablationTSV(t, camp.Name, want), ablationTSV(t, camp.Name, got); t1 != t2 {
		t.Errorf("chaos TSV differs from fault-free TSV:\n%s\nvs\n%s", t1, t2)
	}

	// Every fault class must have been seen and classified.
	all := strings.Join(retries, "\n")
	for _, class := range []string{"(panic)", "(exit)", "(oom-kill)", "(hang)"} {
		if !strings.Contains(all, class) {
			t.Errorf("no retry classified as %s in:\n%s", class, all)
		}
	}

	// The journal must record the second attempt succeeding for every
	// variant.
	entries, skipped, err := readJournal(journal)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if skipped != 0 {
		t.Errorf("journal skipped %d lines, want 0", skipped)
	}
	if len(entries) != len(camp.Variants) {
		t.Fatalf("journal has %d entries, want %d", len(entries), len(camp.Variants))
	}
	for _, e := range entries {
		if e.Status != "ok" {
			t.Errorf("variant %d journaled as %q, want ok", e.Variant, e.Status)
		}
		if e.Attempts != 2 {
			t.Errorf("variant %d succeeded on attempt %d, want 2 (one injected fault)", e.Variant, e.Attempts)
		}
	}
}

// TestSupervisedExhaustedRetries checks graceful degradation: a variant
// that fails every attempt becomes a typed EventFailed plus a summary
// line, and the rest of the campaign still completes.
func TestSupervisedExhaustedRetries(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	journal := filepath.Join(t.TempDir(), "fail.jsonl")
	sup := testSupervisor(FaultEnv + "=exit7@variant1x9")
	sup.Retry.MaxAttempts = 2
	sup.JournalPath = journal

	var mu sync.Mutex
	var failed []Event
	var summary string
	rows, err := sup.Run(context.Background(), spec, camp, func(ev Event) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case ev.Kind == EventFailed:
			failed = append(failed, ev)
		case ev.Kind == EventProgress && strings.Contains(ev.Message, "failed permanently:"):
			summary = ev.Message
		}
	})
	if err != nil {
		t.Fatalf("run with permanent failure: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 survivors", len(rows))
	}
	for _, r := range rows {
		if r.Index == 1 {
			t.Errorf("failed variant 1 produced a row")
		}
	}
	if len(failed) != 1 {
		t.Fatalf("got %d EventFailed, want 1", len(failed))
	}
	ev := failed[0]
	if ev.Variant != 1 || ev.Err == nil || !strings.Contains(ev.Message, "(exit)") {
		t.Errorf("EventFailed = variant %d, message %q, err %v; want variant 1 classified (exit)", ev.Variant, ev.Message, ev.Err)
	}
	if !strings.Contains(summary, "1/4 variant(s) failed permanently") {
		t.Errorf("missing or wrong failure summary: %q", summary)
	}

	ok, failedN, err := ReadJournalStatus(journal)
	if err != nil {
		t.Fatalf("ReadJournalStatus: %v", err)
	}
	if ok != 3 || failedN != 1 {
		t.Errorf("journal status ok=%d failed=%d, want 3/1", ok, failedN)
	}
}

// TestSupervisedResumeSkipsCompleted interrupts a campaign (one variant
// poisoned so it fails, three succeed and are journaled), then resumes
// with every previously-completed variant poisoned: if resume re-ran
// any of them the run would fail, so a byte-identical final result
// proves only the missing variant executed.
func TestSupervisedResumeSkipsCompleted(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	want := inProcessBaseline(t, spec)
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	journal := filepath.Join(t.TempDir(), "resume.jsonl")

	first := testSupervisor(FaultEnv + "=exit3@variant2x9")
	first.Retry.MaxAttempts = 1
	first.JournalPath = journal
	rows, err := first.Run(context.Background(), spec, camp, nil)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("first run returned %d rows, want 3", len(rows))
	}

	// Poison all three completed variants; only variant 2 may run.
	second := testSupervisor(FaultEnv + "=panic@variant0x9|panic@variant1x9|panic@variant3x9")
	second.Retry.MaxAttempts = 1
	second.JournalPath = journal
	second.Resume = true
	var mu sync.Mutex
	resumed := map[int]bool{}
	got, err := second.Run(context.Background(), spec, camp, func(ev Event) {
		if ev.Kind == EventProgress && strings.Contains(ev.Message, "resumed from journal") {
			mu.Lock()
			resumed[ev.Variant] = true
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("resume returned %d rows, want %d", len(got), len(want))
	}
	if d1, d2 := rowsDigest(t, want), rowsDigest(t, got); d1 != d2 {
		t.Errorf("resumed rows differ from fault-free in-process rows")
	}
	wantResumed := map[int]bool{0: true, 1: true, 3: true}
	if len(resumed) != len(wantResumed) {
		t.Errorf("resumed variants %v, want %v", resumed, wantResumed)
	}
	for v := range wantResumed {
		if !resumed[v] {
			t.Errorf("variant %d was not resumed from the journal", v)
		}
	}
}

// TestSupervisedCancelThenResume kills a campaign mid-flight via
// context cancellation after the first completed variant, then resumes:
// completed variants must not re-run and the merged output must match
// the fault-free baseline bit for bit.
func TestSupervisedCancelThenResume(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	want := inProcessBaseline(t, spec)
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	journal := filepath.Join(t.TempDir(), "interrupt.jsonl")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	first := testSupervisor()
	first.Procs = 1
	first.JournalPath = journal
	_, err = first.Run(ctx, spec, camp, func(ev Event) {
		if ev.Kind == EventRow {
			cancel() // interrupt as soon as anything completes
		}
	})
	if err == nil {
		t.Fatalf("cancelled run returned nil error")
	}

	entries, _, err := readJournal(journal)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if len(entries) == 0 || len(entries) == len(camp.Variants) {
		t.Fatalf("interrupted journal has %d entries, want partial coverage of %d variants", len(entries), len(camp.Variants))
	}
	var poison []string
	done := map[int]bool{}
	for _, e := range entries {
		if e.Status == "ok" {
			done[e.Variant] = true
			poison = append(poison, fmt.Sprintf("panic@variant%dx9", e.Variant))
		}
	}
	sort.Strings(poison)

	second := testSupervisor(FaultEnv + "=" + strings.Join(poison, "|"))
	second.Retry.MaxAttempts = 1
	second.JournalPath = journal
	second.Resume = true
	var mu sync.Mutex
	resumed := map[int]bool{}
	got, err := second.Run(context.Background(), spec, camp, func(ev Event) {
		if ev.Kind == EventProgress && strings.Contains(ev.Message, "resumed from journal") {
			mu.Lock()
			resumed[ev.Variant] = true
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("resume returned %d rows, want %d", len(got), len(want))
	}
	if d1, d2 := rowsDigest(t, want), rowsDigest(t, got); d1 != d2 {
		t.Errorf("post-interrupt rows differ from fault-free in-process rows")
	}
	if len(resumed) != len(done) {
		t.Errorf("resumed %v, want exactly the journaled set %v", resumed, done)
	}
	for v := range done {
		if !resumed[v] {
			t.Errorf("journaled variant %d re-ran instead of resuming", v)
		}
	}
}

// TestJournalToleratesTornTail simulates a SIGKILL mid-append (a torn
// final line) and checks that resume skips the fragment and re-runs
// only that variant.
func TestJournalToleratesTornTail(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	want := inProcessBaseline(t, spec)
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	journal := filepath.Join(t.TempDir(), "torn.jsonl")

	first := testSupervisor()
	first.JournalPath = journal
	if _, err := first.Run(context.Background(), spec, camp, nil); err != nil {
		t.Fatalf("first run: %v", err)
	}

	// Tear off the last journal line mid-JSON, as a crash during the
	// fsynced append would.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(bytes.TrimSuffix(raw, []byte("\n")), []byte("\n"))
	last := lines[len(lines)-1]
	torn := append(bytes.Join(lines[:len(lines)-1], nil), last[:len(last)/3]...)
	if err := os.WriteFile(journal, torn, 0o644); err != nil {
		t.Fatalf("write torn journal: %v", err)
	}
	entries, skipped, err := readJournal(journal)
	if err != nil {
		t.Fatalf("readJournal: %v", err)
	}
	if skipped != 1 {
		t.Errorf("readJournal skipped %d lines, want 1", skipped)
	}
	if len(entries) != len(camp.Variants)-1 {
		t.Errorf("torn journal has %d whole entries, want %d", len(entries), len(camp.Variants)-1)
	}

	second := testSupervisor()
	second.JournalPath = journal
	second.Resume = true
	got, err := second.Run(context.Background(), spec, camp, nil)
	if err != nil {
		t.Fatalf("resume over torn journal: %v", err)
	}
	if d1, d2 := rowsDigest(t, want), rowsDigest(t, got); d1 != d2 {
		t.Errorf("rows after torn-journal resume differ from baseline")
	}
}

func TestSupervisorRejectsProbes(t *testing.T) {
	t.Parallel()
	spec := microSpec()
	camp, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	camp.Variants[0].Probes = func() []sim.Probe { return nil }
	if _, err := testSupervisor().Run(context.Background(), spec, camp, nil); err == nil {
		t.Fatalf("probed campaign accepted; want error")
	}
}

func TestParseFaults(t *testing.T) {
	t.Parallel()
	faults, err := parseFaults("panic@variant3|hang@variant5x2|exit2@variant1|kill9@variant0")
	if err != nil {
		t.Fatalf("parseFaults: %v", err)
	}
	want := []fault{
		{kind: "panic", variant: 3, attempts: 1},
		{kind: "hang", variant: 5, attempts: 2},
		{kind: "exit", exitCode: 2, variant: 1, attempts: 1},
		{kind: "kill9", variant: 0, attempts: 1},
	}
	if len(faults) != len(want) {
		t.Fatalf("got %d faults, want %d", len(faults), len(want))
	}
	for i, f := range faults {
		if f != want[i] {
			t.Errorf("fault %d = %+v, want %+v", i, f, want[i])
		}
	}
	if fs, err := parseFaults(""); err != nil || fs != nil {
		t.Errorf("empty spec: got %v, %v; want nil, nil", fs, err)
	}
	for _, bad := range []string{"panic", "panic@3", "boom@variant1", "exit0@variant1", "exit9999@variant2", "panic@variantx", "hang@variant1x0"} {
		if _, err := parseFaults(bad); err == nil {
			t.Errorf("parseFaults(%q) accepted; want error", bad)
		}
	}
}

func TestWorkerMainRejectsBadInput(t *testing.T) {
	t.Parallel()
	var out, errw bytes.Buffer
	if code := WorkerMain(strings.NewReader("{"), &out, &errw); code != 1 {
		t.Errorf("truncated request: exit %d, want 1", code)
	}
	req, _ := json.Marshal(workerRequest{Spec: microSpec(), Variant: 99, Attempt: 1})
	out.Reset()
	errw.Reset()
	if code := WorkerMain(bytes.NewReader(req), &out, &errw); code != 1 {
		t.Errorf("out-of-range variant: exit %d, want 1", code)
	}
	if !strings.Contains(errw.String(), "out of range") {
		t.Errorf("stderr %q, want out-of-range complaint", errw.String())
	}
}

func TestRetryBackoffDeterministic(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{}.withDefaults()
	for variant := 0; variant < 3; variant++ {
		prev := time.Duration(0)
		for attempt := 1; attempt <= 4; attempt++ {
			d1 := p.backoff(3, variant, attempt)
			d2 := p.backoff(3, variant, attempt)
			if d1 != d2 {
				t.Errorf("backoff(3, %d, %d) not deterministic: %v vs %v", variant, attempt, d1, d2)
			}
			base := p.BaseBackoff << (attempt - 1)
			if base > p.MaxBackoff {
				base = p.MaxBackoff
			}
			if d1 < base || d1 >= base+base/2+time.Nanosecond {
				t.Errorf("backoff(3, %d, %d) = %v outside [%v, 1.5·%v)", variant, attempt, d1, base, base)
			}
			if d1 < prev {
				// jitter can reorder only within a factor of 1.5
				if prev > d1*3/2 {
					t.Errorf("backoff shrank too much: attempt %d %v after %v", attempt, d1, prev)
				}
			}
			prev = d1
		}
	}
}
