package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/sim"
)

// microConfig shrinks everything so experiment plumbing tests run in
// milliseconds; the dynamics tests live in calibration_test.go.
func microConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.NumPeers = 100
	cfg.Rounds = 300
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48
	cfg.Seed = 3
	return cfg
}

func TestBaseConfigScales(t *testing.T) {
	for _, s := range []Scale{ScaleSmoke, ScaleDefault, ScalePaper, ""} {
		cfg, err := BaseConfig(s)
		if err != nil {
			t.Fatalf("scale %q: %v", s, err)
		}
		if _, err := cfg.Validate(); err != nil {
			t.Fatalf("scale %q invalid: %v", s, err)
		}
		// Intensive parameters unchanged at every scale.
		if cfg.TotalBlocks != 256 || cfg.DataBlocks != 128 || cfg.Quota != 384 {
			t.Fatalf("scale %q changed intensive parameters", s)
		}
	}
	if _, err := BaseConfig("galactic"); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if len(Scales()) != 3 {
		t.Fatal("Scales() wrong")
	}
}

func TestPaperThresholds(t *testing.T) {
	ts := PaperThresholds()
	if ts[0] != 132 || ts[len(ts)-1] != 180 {
		t.Fatalf("thresholds = %v", ts)
	}
	if len(ts) != 13 {
		t.Fatalf("%d thresholds, want 13 (132..180 step 4)", len(ts))
	}
}

func TestRunThresholdSweep(t *testing.T) {
	cfg := microConfig()
	sweep, err := RunThresholdSweep(cfg, []int{9, 11, 13}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("%d points", len(sweep.Points))
	}
	// Points sorted by threshold.
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].Threshold <= sweep.Points[i-1].Threshold {
			t.Fatal("points not sorted")
		}
	}
	// TSV emitters produce headers and one row per point.
	var repair, loss strings.Builder
	if err := sweep.WriteRepairTSV(&repair); err != nil {
		t.Fatal(err)
	}
	if err := sweep.WriteLossTSV(&loss); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{repair.String(), loss.String()} {
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 2+3 { // comment + header + 3 points
			t.Fatalf("TSV has %d lines:\n%s", len(lines), out)
		}
		if !strings.Contains(lines[1], "newcomer\tyoung\told\telder") {
			t.Fatalf("header wrong: %s", lines[1])
		}
	}
	if _, err := RunThresholdSweep(cfg, nil, 1, nil); err == nil {
		t.Fatal("empty thresholds accepted")
	}
	// Invalid threshold propagates the sim error.
	if _, err := RunThresholdSweep(cfg, []int{999}, 1, nil); err == nil {
		t.Fatal("invalid threshold accepted")
	}
}

func TestSweepDeterminism(t *testing.T) {
	cfg := microConfig()
	a, err := RunThresholdSweep(cfg, []int{10, 12}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunThresholdSweep(cfg, []int{10, 12}, 1, nil) // different parallelism
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across parallelism: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRunFocal(t *testing.T) {
	cfg := microConfig()
	// Focal pins threshold 148; adjust the code shape to make it valid.
	// The population must supply n=256 simultaneously online partners:
	// with ~65% mean availability that needs several hundred peers.
	cfg.TotalBlocks = 256
	cfg.DataBlocks = 128
	cfg.Quota = 384
	cfg.NumPeers = 600
	cfg.Rounds = 240
	var msgs []string
	focal, err := RunFocal(cfg, func(m string) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	if len(focal.ObserverNames) != 5 {
		t.Fatalf("observers = %v", focal.ObserverNames)
	}
	if len(msgs) == 0 {
		t.Fatal("no progress messages")
	}
	var obs, loss strings.Builder
	if err := focal.WriteObserverTSV(&obs); err != nil {
		t.Fatal(err)
	}
	if err := focal.WriteLossSeriesTSV(&loss); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(obs.String(), "baby") {
		t.Fatal("observer TSV missing baby")
	}
	lines := strings.Split(strings.TrimSpace(loss.String()), "\n")
	// comment + header + one row per sampled day (240 rounds / 24 = 10).
	if len(lines) != 2+10 {
		t.Fatalf("loss TSV has %d lines", len(lines))
	}
}

func TestAblations(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	strat, err := RunStrategyAblation(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(strat.Points) != len(selection.Names()) {
		t.Fatalf("strategy variants = %d, want one per registered spec (%d)",
			len(strat.Points), len(selection.Names()))
	}
	avail, err := RunAvailabilityAblation(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(avail.Points) != 2 {
		t.Fatalf("availability variants = %d", len(avail.Points))
	}
	horizon, err := RunHorizonAblation(cfg, []int64{24, 48, 96}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(horizon.Points) != 3 {
		t.Fatalf("horizon variants = %d", len(horizon.Points))
	}
	if horizon.Points[0].Label != "L=1d" {
		t.Fatalf("label = %q", horizon.Points[0].Label)
	}
	var sb strings.Builder
	if err := strat.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lifetime-oracle") {
		t.Fatal("ablation TSV missing variant")
	}
}

func TestRegistryCostModel(t *testing.T) {
	dir := t.TempDir()
	sums, err := Run("costmodel", Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || len(sums[0].Files) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	if filepath.Base(sums[0].Files[0]) != "table_repair_cost.tsv" {
		t.Fatalf("file = %s", sums[0].Files[0])
	}
	if !strings.Contains(sums[0].Text, "repairs/day") {
		t.Fatalf("text = %q", sums[0].Text)
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) == 0 {
		t.Fatal("Names empty")
	}
}

func TestCategoriesCoverMicroRun(t *testing.T) {
	// Sanity: the micro run is too short for elders; rates must come
	// back zero, not NaN.
	cfg := microConfig()
	sweep, err := RunThresholdSweep(cfg, []int{10}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := sweep.Points[0]
	if p.RepairRate[metrics.Elder] != 0 || p.LossRate[metrics.Elder] != 0 {
		t.Fatalf("elder rates in a %d-round run: %+v", cfg.Rounds, p)
	}
	if p.RepairRate[metrics.Newcomer] <= 0 {
		t.Fatal("newcomers never repaired in a churny micro run")
	}
	_ = churn.Day
}
