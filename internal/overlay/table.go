package overlay

import "fmt"

// Ref is a generation-stamped peer reference. Holding a Ref across
// rounds is safe: if the slot's occupant dies and is replaced, the
// generation no longer matches and the Ref is detectably stale.
type Ref struct {
	ID  PeerID
	Gen uint32
}

// NoRef is the invalid reference.
var NoRef = Ref{ID: NoPeer}

// Valid reports whether the reference points at a slot at all.
func (r Ref) Valid() bool { return r.ID != NoPeer }

// String renders the reference.
func (r Ref) String() string { return fmt.Sprintf("peer(%d@%d)", r.ID, r.Gen) }

// Table tracks slot generations for a fixed-size population.
type Table struct {
	gens []uint32
}

// NewTable returns a table with n slots, all at generation 0.
func NewTable(n int) *Table {
	if n <= 0 {
		panic(fmt.Sprintf("overlay: invalid table size %d", n))
	}
	return &Table{gens: make([]uint32, n)}
}

// Len returns the slot count.
func (t *Table) Len() int { return len(t.gens) }

// Ref returns the current reference for a slot.
func (t *Table) Ref(id PeerID) Ref {
	if id < 0 || int(id) >= len(t.gens) {
		return NoRef
	}
	return Ref{ID: id, Gen: t.gens[id]}
}

// Current reports whether ref still points at the same occupant.
func (t *Table) Current(ref Ref) bool {
	if ref.ID < 0 || int(ref.ID) >= len(t.gens) {
		return false
	}
	return t.gens[ref.ID] == ref.Gen
}

// Bump invalidates all outstanding references to the slot (occupant
// replaced) and returns the new generation.
func (t *Table) Bump(id PeerID) uint32 {
	if id < 0 || int(id) >= len(t.gens) {
		panic(fmt.Sprintf("overlay: Bump(%d) out of range", id))
	}
	t.gens[id]++
	return t.gens[id]
}

// Gen returns the slot's current generation.
func (t *Table) Gen(id PeerID) uint32 {
	if id < 0 || int(id) >= len(t.gens) {
		return 0
	}
	return t.gens[id]
}
