package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"p2pbackup/internal/sim"
)

// TestRunnerRowsDeterministicAcrossParallelism: the same campaign and
// seed must yield identical rows whether run serially or concurrently.
func TestRunnerRowsDeterministicAcrossParallelism(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 10, 11, 12, 13})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Runner{Parallelism: 1}.Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := Runner{Parallelism: 4}.Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(concurrent) || len(serial) != 5 {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(concurrent))
	}
	// Compare the full converted points (comparable structs): the rows
	// must be value-identical, not merely similar.
	a := ThresholdSweepFromRows(serial)
	b := ThresholdSweepFromRows(concurrent)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs across parallelism:\n%+v\n%+v", i, a.Points[i], b.Points[i])
		}
	}
	for i, row := range serial {
		if row.Index != i {
			t.Fatalf("rows not ordered by index: %d at %d", row.Index, i)
		}
		if row.Config.Seed != cfg.Seed*1000003+uint64(row.Config.RepairThreshold) {
			t.Fatalf("row %d seed %d not derived from threshold", i, row.Config.Seed)
		}
	}
}

// TestRunnerCancellation: cancelling mid-campaign stops cleanly with
// ctx.Err() and no rows.
func TestRunnerCancellation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 1 << 40 // any single variant would run for months
	camp, err := ThresholdCampaign(cfg, []int{9, 10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	rows, err := Runner{Parallelism: 2}.Run(ctx, camp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != nil {
		t.Fatalf("cancelled campaign returned %d rows", len(rows))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; workers did not abort in-flight runs", elapsed)
	}
}

// TestRunnerStreamShape: the event stream is progress/rows followed by
// exactly one done event, then close.
func TestRunnerStreamShape(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	var rows, dones int
	sawDoneLast := false
	for ev := range (Runner{Parallelism: 2}).Stream(context.Background(), camp) {
		sawDoneLast = false
		switch ev.Kind {
		case EventRow:
			rows++
			if ev.Row == nil || ev.Row.Result == nil {
				t.Fatal("row event without result")
			}
			if ev.Campaign != "threshold" || !strings.HasPrefix(ev.Name, "threshold ") {
				t.Fatalf("row event labels: %+v", ev)
			}
		case EventDone:
			dones++
			sawDoneLast = true
			if ev.Err != nil {
				t.Fatal(ev.Err)
			}
		}
	}
	if rows != 2 || dones != 1 || !sawDoneLast {
		t.Fatalf("stream shape: %d rows, %d dones, done last = %v", rows, dones, sawDoneLast)
	}
}

// TestRunnerVariantError: a failing variant cancels the campaign and
// surfaces the real error, not the collateral cancellations.
func TestRunnerVariantError(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 999, 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Runner{Parallelism: 3}).Run(context.Background(), camp); err == nil {
		t.Fatal("invalid threshold accepted")
	} else if !strings.Contains(err.Error(), "999") {
		t.Fatalf("error does not name the failing variant: %v", err)
	}
}

// TestRunnerEmptyCampaign: an empty variant list is an error, not a
// hang.
func TestRunnerEmptyCampaign(t *testing.T) {
	if _, err := (Runner{}).Run(context.Background(), Campaign{Name: "empty"}); err == nil {
		t.Fatal("empty campaign accepted")
	}
}

// roundCounter counts round-end events for TestRunnerVariantProbes.
type roundCounter struct {
	sim.BaseProbe
	rounds int64
}

func (c *roundCounter) OnRoundEnd(sim.RoundEndEvent) { c.rounds++ }

// TestRunnerVariantProbes: per-variant probe factories attach fresh
// probes to every run.
func TestRunnerVariantProbes(t *testing.T) {
	cfg := microConfig()
	counters := make([]*roundCounter, 0, 2)
	camp := Campaign{Name: "probed", Base: cfg}
	for i := 0; i < 2; i++ {
		camp.Variants = append(camp.Variants, Variant{
			Name: "v",
			Seed: uint64(i + 1),
			Probes: func() []sim.Probe {
				c := &roundCounter{}
				counters = append(counters, c)
				return []sim.Probe{c}
			},
		})
	}
	// Parallelism 1 so the factory appends without a data race.
	if _, err := (Runner{Parallelism: 1}).Run(context.Background(), camp); err != nil {
		t.Fatal(err)
	}
	if len(counters) != 2 {
		t.Fatalf("probe factory ran %d times, want 2", len(counters))
	}
	for i, c := range counters {
		if got := c.rounds; got != cfg.Rounds {
			t.Fatalf("probe %d saw %d rounds, want %d", i, got, cfg.Rounds)
		}
	}
}

// TestRunnerRejectsSharedBaseProbes: a stateful probe in the base
// config would be shared across concurrent runs; the Runner must
// refuse rather than race.
func TestRunnerRejectsSharedBaseProbes(t *testing.T) {
	cfg := microConfig()
	cfg.Probes = []sim.Probe{&roundCounter{}}
	camp, err := ThresholdCampaign(cfg, []int{9, 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Runner{Parallelism: 2}).Run(context.Background(), camp); err == nil {
		t.Fatal("shared Base.Probes accepted for a multi-variant campaign")
	} else if !strings.Contains(err.Error(), "Variant.Probes") {
		t.Fatalf("error does not point at Variant.Probes: %v", err)
	}
	// A single-variant campaign has nothing to share; it must run.
	single, err := ThresholdCampaign(cfg, []int{9})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := (Runner{Parallelism: 2}).Run(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Probes[0].(*roundCounter).rounds; got != rows[0].Config.Rounds {
		t.Fatalf("base probe saw %d rounds, want %d", got, rows[0].Config.Rounds)
	}
}

// TestRegistryRunCtxCancelled: the registry path honours cancellation.
func TestRegistryRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, "fig1", Options{Scale: ScaleSmoke}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// panicOnRound is a probe that panics when it sees the given round end.
type panicOnRound struct {
	sim.BaseProbe
	at int64
}

func (p *panicOnRound) OnRoundEnd(ev sim.RoundEndEvent) {
	if ev.Round == p.at {
		panic("injected variant panic")
	}
}

// TestRunnerPanicContainment: a panicking variant becomes a typed
// EventFailed with the variant config and stack attached, and its
// siblings complete — the campaign does not crash or abort.
func TestRunnerPanicContainment(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	bad := 1 // variant index that will panic mid-run
	orig := camp.Variants[bad].Probes
	camp.Variants[bad].Probes = func() []sim.Probe {
		probes := []sim.Probe{&panicOnRound{at: 50}}
		if orig != nil {
			probes = append(probes, orig()...)
		}
		return probes
	}

	var rows, failed int
	var failure Event
	for ev := range (Runner{Parallelism: 3}).Stream(context.Background(), camp) {
		switch ev.Kind {
		case EventRow:
			rows++
		case EventFailed:
			failed++
			failure = ev
		case EventDone:
			if ev.Err != nil {
				t.Fatalf("campaign aborted instead of containing the panic: %v", ev.Err)
			}
		}
	}
	if rows != 2 || failed != 1 {
		t.Fatalf("got %d rows, %d failures; want 2 rows, 1 failure", rows, failed)
	}
	if failure.Variant != bad || failure.Name != camp.Variants[bad].Name {
		t.Fatalf("failure not attributed to variant %d: %+v", bad, failure)
	}
	var pe *sim.PanicError
	if !errors.As(failure.Err, &pe) {
		t.Fatalf("failure.Err is %T, want *sim.PanicError", failure.Err)
	}
	if pe.Value != "injected variant panic" {
		t.Fatalf("panic value: %v", pe.Value)
	}
	wantSeed := cfg.Seed*1000003 + 10
	if pe.Config.Seed != wantSeed {
		t.Fatalf("panic config seed %d, want %d (variant attribution)", pe.Config.Seed, wantSeed)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic stack missing")
	}

	// Run (the blocking path) returns the survivors.
	got, err := (Runner{Parallelism: 1}).Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("Run returned %d rows, want the 2 survivors", len(got))
	}
}

// TestRunnerPanicInMutate: a panic during config materialisation (not
// just mid-run) is also contained and attributed.
func TestRunnerPanicInMutate(t *testing.T) {
	cfg := microConfig()
	camp := Campaign{Name: "mutpanic", Base: cfg, Variants: []Variant{
		{Name: "ok", Seed: 5},
		{Name: "boom", Seed: 6, Mutate: func(*sim.Config) { panic("bad mutate") }},
	}}
	var rows, failed int
	for ev := range (Runner{Parallelism: 2}).Stream(context.Background(), camp) {
		switch ev.Kind {
		case EventRow:
			rows++
		case EventFailed:
			failed++
			var pe *sim.PanicError
			if !errors.As(ev.Err, &pe) || pe.Value != "bad mutate" {
				t.Fatalf("unexpected failure error: %v", ev.Err)
			}
		case EventDone:
			if ev.Err != nil {
				t.Fatal(ev.Err)
			}
		}
	}
	if rows != 1 || failed != 1 {
		t.Fatalf("got %d rows, %d failures", rows, failed)
	}
}
