package experiments

import (
	"context"
	"testing"
)

// The constants below were captured by running the pre-refactor
// experiment drivers (bespoke runParallel/runVariants loops, metrics
// hard-wired into the engine) on the smoke-scale configs in this file.
// The Probe/Runner redesign must reproduce them bit-for-bit: probes
// consume no randomness and the campaign seeds use the historical
// derivations, so any drift here means the refactor changed the
// simulated trajectories, not just the plumbing.

type goldenCounts struct {
	label    string
	repairs  int64
	losses   int64
	uploaded int64
}

func checkAblationGolden(t *testing.T, res *AblationResult, want []goldenCounts) {
	t.Helper()
	if len(res.Points) != len(want) {
		t.Fatalf("%s: %d points, want %d", res.Name, len(res.Points), len(want))
	}
	for i, w := range want {
		p := res.Points[i]
		if p.Label != w.label || p.Repairs != w.repairs || p.Losses != w.losses || p.Uploaded != w.uploaded {
			t.Errorf("%s[%d] = {%s %d %d %d}, want {%s %d %d %d}",
				res.Name, i, p.Label, p.Repairs, p.Losses, p.Uploaded, w.label, w.repairs, w.losses, w.uploaded)
		}
	}
}

func TestGoldenThresholdSweep(t *testing.T) {
	cfg := microConfig()
	camp, err := ThresholdCampaign(cfg, []int{9, 11, 13})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}
	sweep := ThresholdSweepFromRows(rows)
	want := []struct {
		threshold       int
		repairs, losses int64
		newcomerRepair  float64
		newcomerLoss    float64
	}{
		{9, 60, 21, 5.333333333333333, 0.7},
		{11, 444, 6, 18.133333333333333, 0.2},
		{13, 1621, 0, 57.36666666666667, 0},
	}
	for i, w := range want {
		p := sweep.Points[i]
		if p.Threshold != w.threshold || p.Repairs != w.repairs || p.Losses != w.losses ||
			p.RepairRate[0] != w.newcomerRepair || p.LossRate[0] != w.newcomerLoss {
			t.Errorf("threshold %d = %+v, want %+v", w.threshold, p, w)
		}
	}
}

func TestGoldenFocal(t *testing.T) {
	cfg := microConfig()
	cfg.TotalBlocks = 256
	cfg.DataBlocks = 128
	cfg.Quota = 384
	cfg.NumPeers = 600
	cfg.Rounds = 240
	rows, err := Runner{Parallelism: 1}.Run(context.Background(), FocalCampaign(cfg))
	if err != nil {
		t.Fatal(err)
	}
	focal := FocalFromRow(rows[0])
	wantCounts := []int64{1, 1, 1, 1, 1}
	for i, w := range wantCounts {
		if focal.ObserverCounts[i] != w {
			t.Errorf("observer %d count = %d, want %d", i, focal.ObserverCounts[i], w)
		}
	}
	if focal.Repairs != 0 || focal.Losses != 0 || focal.Deaths != 0 {
		t.Errorf("focal totals = %d/%d/%d, want 0/0/0", focal.Repairs, focal.Losses, focal.Deaths)
	}
}

func TestGoldenStrategyAblation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), StrategyCampaign(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// The first five rows predate the Policy/View redesign and the
	// spec-string campaign plumbing: the old-surface goldens must keep
	// reproducing bit-identically through the new path (the age row is
	// the paper's default strategy). The estimator/monitored rows were
	// appended when the registry widened; appending keeps the original
	// index-derived variant seeds stable.
	checkAblationGolden(t, AblationFromRows("strategy", rows), []goldenCounts{
		{"age", 120, 7, 2474},
		{"random", 185, 14, 2948},
		{"availability-oracle", 77, 2, 2153},
		{"lifetime-oracle", 107, 10, 2376},
		{"youngest-first", 140, 6, 2613},
		{"estimator:age", 86, 2, 2223},
		{"estimator:pareto", 208, 8, 3106},
		{"estimator:empirical", 186, 9, 2950},
		{"monitored-availability", 84, 3, 2206},
	})
}

func TestGoldenAvailabilityAblation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), AvailabilityCampaign(cfg))
	if err != nil {
		t.Fatal(err)
	}
	checkAblationGolden(t, AblationFromRows("availability-model", rows), []goldenCounts{
		{"session", 120, 7, 2474},
		{"bernoulli", 124, 13, 2502},
	})
}

func TestGoldenHorizonAblation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), HorizonCampaign(cfg, []int64{24, 48, 96}))
	if err != nil {
		t.Fatal(err)
	}
	checkAblationGolden(t, AblationFromRows("horizon", rows), []goldenCounts{
		{"L=1d", 120, 7, 2474},
		{"L=2d", 185, 14, 2948},
		{"L=4d", 124, 2, 2498},
	})
}

func TestGoldenRepairDelayAblation(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), RepairDelayCampaign(cfg, []int{0, 2}))
	if err != nil {
		t.Fatal(err)
	}
	checkAblationGolden(t, AblationFromRows("repair-delay", rows), []goldenCounts{
		{"delay=0h", 120, 7, 2474},
		{"delay=2h", 45, 30, 1936},
	})
}

// TestGoldenWrappersAgree: the deprecated compatibility wrappers are
// thin shims over the Runner, so they must return exactly what the
// campaign path returns.
func TestGoldenWrappersAgree(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	old, err := RunStrategyAblation(cfg, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Runner{Parallelism: 2}.Run(context.Background(), StrategyCampaign(cfg))
	if err != nil {
		t.Fatal(err)
	}
	neu := AblationFromRows("strategy", rows)
	for i := range old.Points {
		if old.Points[i] != neu.Points[i] {
			t.Fatalf("wrapper point %d differs: %+v vs %+v", i, old.Points[i], neu.Points[i])
		}
	}
}
