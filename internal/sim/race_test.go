package sim

import (
	"sync"
	"testing"
)

// TestShardedConcurrentRuns hammers the sharded engine from many
// goroutines at once: several independent simulations, each internally
// fanning out per-shard workers, all running concurrently in one
// process. Under -race this is the detector's food — the per-shard
// phases (hist-op application, cache warming, the Included scan) must
// neither race each other inside one run nor share anything across
// runs. Every run must still produce the canonical digest.
func TestShardedConcurrentRuns(t *testing.T) {
	cfg := digestConfig()
	cfg.NumPeers = 1200 // large enough to cross the hist-op fan-out threshold
	cfg.Rounds = 200
	cfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 60, Fraction: 1.0, Outage: 24},
	}
	ref := cfg
	ref.Shards = 1
	want := digestRun(t, ref)

	const runs = 8
	digests := make([]uint64, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			run := cfg
			run.Shards = 2 + i%7 // S in [2, 8]
			d := newDigestProbe()
			run.Probes = append(run.Probes, d)
			s, err := New(run)
			if err != nil {
				errs[i] = err
				return
			}
			res := s.Run()
			d.mix(res.Deaths, res.Cancels, int64(res.FinalPlacements), int64(res.FinalIncluded))
			digests[i] = d.h.Sum64()
		}(i)
	}
	wg.Wait()
	for i, got := range digests {
		if errs[i] != nil {
			t.Errorf("concurrent run %d: %v", i, errs[i])
			continue
		}
		if got != want {
			t.Errorf("concurrent run %d (S=%d) digest = %#x, want %#x", i, 2+i%7, got, want)
		}
	}
}
