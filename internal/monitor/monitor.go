// Package monitor tracks peer availability history, standing in for the
// secure monitoring protocols the paper assumes (its refs [17] AVMON and
// [14] Pacemaker): "any peer can query the availability of any other
// peer for a given period of time, for example the last 90 days".
//
// Two representations are provided:
//
//   - BitHistory: one bit per round in a ring buffer - exact, O(1)
//     per-round recording, fixed memory. Used by the live node, which
//     probes partners every round.
//   - IntervalHistory: stores only state transitions - O(1) per session
//     change, ideal for the simulator where transitions are the rare
//     events. Window queries cost O(transitions in window).
//
// Both answer the same queries; tests verify they agree on random
// schedules.
package monitor

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// ErrOutOfOrder reports a record at a round earlier than already seen.
var ErrOutOfOrder = errors.New("monitor: record out of order")

// ---------------------------------------------------------------------------
// BitHistory

// BitHistory stores one online/offline bit per round over a sliding
// window.
type BitHistory struct {
	window int
	words  []uint64
	// next is the round the next Record call must carry.
	next int64
	// recorded is min(total records, window).
	recorded int
	// start is the first round ever recorded.
	start int64
	began bool
}

// NewBitHistory returns a history covering the last window rounds.
func NewBitHistory(window int) *BitHistory {
	if window <= 0 {
		panic(fmt.Sprintf("monitor: invalid window %d", window))
	}
	return &BitHistory{window: window, words: make([]uint64, (window+63)/64)}
}

// Window returns the configured window length.
func (h *BitHistory) Window() int { return h.window }

// Record appends the peer's state for the given round. Rounds must be
// recorded consecutively starting from the first call.
func (h *BitHistory) Record(round int64, online bool) error {
	if !h.began {
		h.began = true
		h.start = round
		h.next = round
	}
	if round != h.next {
		return fmt.Errorf("%w: got round %d, want %d", ErrOutOfOrder, round, h.next)
	}
	idx := int(round % int64(h.window))
	word, bit := idx/64, uint(idx%64)
	if online {
		h.words[word] |= 1 << bit
	} else {
		h.words[word] &^= 1 << bit
	}
	h.next++
	if h.recorded < h.window {
		h.recorded++
	}
	return nil
}

// Recorded returns how many rounds currently back the window (at most
// Window).
func (h *BitHistory) Recorded() int { return h.recorded }

// ObservedSince returns the first recorded round; ok is false if
// nothing was recorded yet.
func (h *BitHistory) ObservedSince() (round int64, ok bool) {
	return h.start, h.began
}

// OnlineAt reports the recorded state for a round inside the window.
func (h *BitHistory) OnlineAt(round int64) (online, known bool) {
	if !h.began || round >= h.next || round < h.next-int64(h.recorded) {
		return false, false
	}
	idx := int(round % int64(h.window))
	return h.words[idx/64]>>(uint(idx%64))&1 == 1, true
}

// Uptime returns the fraction of recorded rounds spent online over the
// last n rounds (n clamped to the recorded span). Zero when nothing is
// recorded.
func (h *BitHistory) Uptime(n int) float64 {
	if n <= 0 || h.recorded == 0 {
		return 0
	}
	if n > h.recorded {
		n = h.recorded
	}
	on := 0
	for round := h.next - int64(n); round < h.next; round++ {
		idx := int(round % int64(h.window))
		if h.words[idx/64]>>(uint(idx%64))&1 == 1 {
			on++
		}
	}
	return float64(on) / float64(n)
}

// FullWindowUptime returns the online fraction over the whole recorded
// window using word-level popcounts (fast path for full-window queries).
func (h *BitHistory) FullWindowUptime() float64 {
	if h.recorded == 0 {
		return 0
	}
	if h.recorded < h.window {
		return h.Uptime(h.recorded)
	}
	on := 0
	for _, w := range h.words {
		on += bits.OnesCount64(w)
	}
	// Bits beyond window size in the final word are never set.
	return float64(on) / float64(h.window)
}

// ---------------------------------------------------------------------------
// IntervalHistory

// transition is a state change at a round.
type transition struct {
	round  int64
	online bool
}

// IntervalHistory stores availability as state transitions, pruned to a
// window. Recording is O(1) amortised; queries walk the (short) list.
type IntervalHistory struct {
	window int64
	trans  []transition
	began  bool
	start  int64
}

// NewIntervalHistory returns a history answering queries over the last
// window rounds.
func NewIntervalHistory(window int64) *IntervalHistory {
	if window <= 0 {
		panic(fmt.Sprintf("monitor: invalid window %d", window))
	}
	return &IntervalHistory{window: window}
}

// RecordTransition notes that the peer's state changed to online at the
// given round (i.e. it is online from this round onward until the next
// transition). The first call establishes the initial state.
//
// Recording prunes eagerly: transitions that ended before the window
// preceding the recorded round are discarded as they expire, so memory
// stays bounded by the window even for histories that are written every
// session but rarely (or never) queried — the regime of a 50k-round
// simulation where most peers are never candidates.
func (h *IntervalHistory) RecordTransition(round int64, online bool) error {
	if h.began {
		last := h.trans[len(h.trans)-1]
		if round < last.round {
			return fmt.Errorf("%w: transition at %d after %d", ErrOutOfOrder, round, last.round)
		}
		if last.online == online {
			return nil // redundant transition; ignore
		}
		if round == last.round {
			// Replace same-round flip.
			h.trans[len(h.trans)-1].online = online
			return nil
		}
	} else {
		h.began = true
		h.start = round
	}
	h.trans = append(h.trans, transition{round: round, online: online})
	h.prune(round)
	return nil
}

// prune discards transitions that end before now-window, keeping the
// one that defines the state at the window start. Pruning only ever
// drops information that no in-window query can see, so eager and lazy
// pruning answer Uptime identically.
func (h *IntervalHistory) prune(now int64) {
	cutoff := now - h.window
	keep := 0
	for keep+1 < len(h.trans) && h.trans[keep+1].round <= cutoff {
		keep++
	}
	if keep > 0 {
		// Reslice forward: O(1) per pruned transition. append reallocates
		// with live elements only once the tail capacity runs out, so the
		// abandoned prefix is reclaimed and memory stays O(live).
		h.trans = h.trans[keep:]
	}
}

// ObservedSince returns the first transition round.
func (h *IntervalHistory) ObservedSince() (round int64, ok bool) {
	return h.start, h.began
}

// Reset clears the history, keeping the configured window. Used when a
// monitored identity is replaced (the observations belong to the
// departed peer, not to the slot).
func (h *IntervalHistory) Reset() {
	h.trans = h.trans[:0]
	h.began = false
	h.start = 0
}

// Uptime returns the online fraction over [now-n, now), clamped to the
// observed span. now is exclusive.
func (h *IntervalHistory) Uptime(now int64, n int64) float64 {
	if !h.began || n <= 0 {
		return 0
	}
	if n > h.window {
		n = h.window
	}
	from := now - n
	if from < h.start {
		from = h.start
	}
	if from >= now {
		return 0
	}
	h.prune(now)
	var online int64
	for i, tr := range h.trans {
		if !tr.online {
			continue
		}
		lo := tr.round
		if lo < from {
			lo = from
		}
		hi := now
		if i+1 < len(h.trans) && h.trans[i+1].round < hi {
			hi = h.trans[i+1].round
		}
		if hi > lo {
			online += hi - lo
		}
	}
	return float64(online) / float64(now-from)
}

// OnlineAt reports the state at a given round, if observed. Rounds
// older than the pruning window of the latest recorded transition are
// unknown. Cost: O(log transitions).
func (h *IntervalHistory) OnlineAt(round int64) (online, known bool) {
	if !h.began || round < h.start {
		return false, false
	}
	// Binary search for the last transition at or before round.
	idx := sort.Search(len(h.trans), func(i int) bool {
		return h.trans[i].round > round
	})
	if idx == 0 {
		return false, false // all stored transitions are later (or pruned)
	}
	return h.trans[idx-1].online, true
}

// Transitions returns the number of stored transitions (after pruning
// at the last query); exposed for tests and memory accounting.
func (h *IntervalHistory) Transitions() int { return len(h.trans) }
