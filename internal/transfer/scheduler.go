package transfer

import (
	"fmt"
	"math"
	"sort"

	"p2pbackup/internal/overlay"
)

// Kind distinguishes the two transfer directions the engine schedules.
type Kind uint8

const (
	// Upload pushes one block from an archive owner to a host (repair
	// and initial-backup traffic).
	Upload Kind = iota
	// Restore pulls the k blocks an owner needs to rebuild its archive
	// after local data loss (flash-crowd demand).
	Restore
)

var kindNames = [...]string{"upload", "restore"}

// String returns the kind's name for events and reports.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// farFuture is a completion round beyond any simulation horizon,
// guarding the int64 conversion of unbounded virtual times.
const farFuture = math.MaxInt64 / 4

// Transfer is one in-flight block movement. Endpoints are generation-
// stamped refs: a slot reused by a new occupant makes the old ref
// stale, which is what keeps an interrupted transfer from delivering
// blocks to (or from) the wrong identity.
type Transfer struct {
	// ID orders transfers deterministically (ascending = enqueue order).
	ID int64
	// Kind is the direction: Upload (owner pushes to Host) or Restore
	// (owner pulls its archive; Host is unset).
	Kind Kind
	// Owner is the archive owner: the uploader of an Upload, the
	// downloader of a Restore.
	Owner overlay.Ref
	// Host is the receiving partner of an Upload.
	Host overlay.Ref
	// Blocks is the transfer size; Remaining what still has to flow
	// (equal until a Restart-policy suspension resets progress).
	Blocks    float64
	Remaining float64
	// Rate is the effective flow in blocks per round: the min of the
	// source's up rate and the sink's down rate. 0 = instant.
	Rate float64
	// Enqueued is the demand round; CompleteAt the scheduled completion
	// round; startAt the virtual time flow begins (the uplink may be
	// backlogged).
	Enqueued   int64
	CompleteAt int64
	startAt    float64
	// Suspended marks a transfer interrupted by an endpoint going
	// offline; its CompleteAt is void until it resumes.
	Suspended bool
}

// Scheduler tracks every in-flight transfer and each peer's link
// occupancy. It is driven by the simulation engine and is not safe for
// concurrent use.
//
// Timing model: each peer's uploads serialise on its uplink in virtual
// time. A transfer enqueued at round r starts at max(r, uplink-free)
// and flows at min(up[src], down[dst]) blocks per round; the uplink is
// then busy until the flow ends. Completions are therefore a
// deterministic function of the enqueue sequence — the scheduler
// consumes no randomness. Downlinks are booked the same way for
// restores; upload fan-in to a host is deliberately not serialised
// (home downlinks are an order of magnitude faster than uplinks, and
// quota already bounds fan-in).
type Scheduler struct {
	params *Params

	class    []int32   // per slot: class index
	upFree   []float64 // per slot: virtual round the uplink frees up
	downFree []float64 // per slot: virtual round the downlink frees up
	inflight []int32   // per slot: outstanding outgoing uploads
	reserved []int32   // per slot: host quota reserved by in-flight uploads

	// byPeer lists the transfer ids touching each slot (as owner or
	// host), so interruption hooks never scan the global table.
	byPeer [][]int64
	xfers  map[int64]*Transfer
	nextID int64

	tidBuf []int64 // scratch: sorted ids for suspend/resume/abort sweeps
}

// NewScheduler returns a scheduler for a population of n slots. The
// params must be validated (Params.Validate).
func NewScheduler(params *Params, n int) *Scheduler {
	return &Scheduler{
		params:   params,
		class:    make([]int32, n),
		upFree:   make([]float64, n),
		downFree: make([]float64, n),
		inflight: make([]int32, n),
		reserved: make([]int32, n),
		byPeer:   make([][]int64, n),
		xfers:    make(map[int64]*Transfer),
	}
}

// Params returns the scheduler's configuration.
func (s *Scheduler) Params() *Params { return s.params }

// AssignClass (re)binds a slot to a bandwidth class and clears the
// occupant-specific link state: a fresh identity starts with idle
// links. The slot must have no in-flight transfers (abort first).
func (s *Scheduler) AssignClass(id overlay.PeerID, class int) {
	s.class[id] = int32(class)
	s.upFree[id] = 0
	s.downFree[id] = 0
}

// Class returns a slot's bandwidth class index.
func (s *Scheduler) Class(id overlay.PeerID) int { return int(s.class[id]) }

// Inflight returns a slot's outstanding outgoing upload count.
func (s *Scheduler) Inflight(id overlay.PeerID) int { return int(s.inflight[id]) }

// Reserved returns the host quota reserved by uploads in flight toward
// the slot.
func (s *Scheduler) Reserved(id overlay.PeerID) int { return int(s.reserved[id]) }

// UploadSlots returns how many more uploads the slot may start now
// under its class's concurrency cap.
func (s *Scheduler) UploadSlots(id overlay.PeerID) int {
	cap := s.params.Classes[s.class[id]].MaxInflight
	if cap <= 0 {
		return math.MaxInt32
	}
	free := cap - int(s.inflight[id])
	if free < 0 {
		return 0
	}
	return free
}

// PendingHosts appends the hosts of the owner's in-flight uploads to
// buf: the partners a new placement round must not double-book.
func (s *Scheduler) PendingHosts(owner overlay.PeerID, buf []overlay.PeerID) []overlay.PeerID {
	for _, tid := range s.byPeer[owner] {
		t := s.xfers[tid]
		if t.Kind == Upload && t.Owner.ID == owner {
			buf = append(buf, t.Host.ID)
		}
	}
	return buf
}

// Active returns the number of in-flight transfers (diagnostics).
func (s *Scheduler) Active() int { return len(s.xfers) }

// Get returns the in-flight transfer with the given id, if any.
func (s *Scheduler) Get(tid int64) (*Transfer, bool) {
	t, ok := s.xfers[tid]
	return t, ok
}

// effRate returns the flow rate of a src-to-dst transfer: the min of
// the non-zero (finite) directions, 0 when both are infinite.
func effRate(up, down float64) float64 {
	switch {
	case up == 0:
		return down
	case down == 0:
		return up
	case down < up:
		return down
	default:
		return up
	}
}

// book schedules a flow of blocks on a link whose free time is *free,
// starting no earlier than round, and returns the start and completion
// round. The link is busy until the flow ends.
func book(free *float64, round int64, blocks, rate float64) (startAt float64, completeAt int64) {
	if rate <= 0 {
		return float64(round), round + 1 // instant: lands next round
	}
	start := float64(round)
	if *free > start {
		start = *free
	}
	end := start + blocks/rate
	*free = end
	done := int64(farFuture)
	if end < farFuture {
		done = int64(math.Ceil(end))
	}
	if done <= round {
		done = round + 1
	}
	return start, done
}

// EnqueueUpload schedules one block from owner to host starting this
// round: books the owner's uplink, reserves one unit of host quota,
// and counts against the owner's concurrency cap. The caller is
// responsible for honouring UploadSlots and quota-minus-Reserved
// before enqueueing.
func (s *Scheduler) EnqueueUpload(round int64, owner, host overlay.Ref) *Transfer {
	rate := effRate(s.params.Classes[s.class[owner.ID]].Up, s.params.Classes[s.class[host.ID]].Down)
	t := &Transfer{
		ID:        s.nextID,
		Kind:      Upload,
		Owner:     owner,
		Host:      host,
		Blocks:    1,
		Remaining: 1,
		Rate:      rate,
		Enqueued:  round,
	}
	s.nextID++
	t.startAt, t.CompleteAt = book(&s.upFree[owner.ID], round, t.Remaining, rate)
	s.inflight[owner.ID]++
	s.reserved[host.ID]++
	s.byPeer[owner.ID] = append(s.byPeer[owner.ID], t.ID)
	s.byPeer[host.ID] = append(s.byPeer[host.ID], t.ID)
	s.xfers[t.ID] = t
	return t
}

// EnqueueRestore schedules an archive restore: blocks (the code's k)
// flowing down the owner's downlink.
func (s *Scheduler) EnqueueRestore(round int64, owner overlay.Ref, blocks int) *Transfer {
	rate := s.params.Classes[s.class[owner.ID]].Down
	t := &Transfer{
		ID:        s.nextID,
		Kind:      Restore,
		Owner:     owner,
		Host:      overlay.Ref{ID: overlay.NoPeer},
		Blocks:    float64(blocks),
		Remaining: float64(blocks),
		Rate:      rate,
		Enqueued:  round,
	}
	s.nextID++
	t.startAt, t.CompleteAt = book(&s.downFree[owner.ID], round, t.Remaining, rate)
	s.byPeer[owner.ID] = append(s.byPeer[owner.ID], t.ID)
	s.xfers[t.ID] = t
	return t
}

// Retry defers a transfer whose completion found its precondition
// unmet (a restore with too few visible blocks) to the next round.
func (s *Scheduler) Retry(t *Transfer, round int64) { t.CompleteAt = round + 1 }

// Complete finalises a delivered transfer: reservations and caps are
// released and the transfer forgotten.
func (s *Scheduler) Complete(t *Transfer) { s.finalize(t) }

// finalize releases a transfer's accounting and removes it.
func (s *Scheduler) finalize(t *Transfer) {
	if t.Kind == Upload {
		s.inflight[t.Owner.ID]--
		s.reserved[t.Host.ID]--
		s.dropRef(t.Host.ID, t.ID)
	}
	s.dropRef(t.Owner.ID, t.ID)
	delete(s.xfers, t.ID)
}

// dropRef removes a transfer id from a slot's touch list.
func (s *Scheduler) dropRef(id overlay.PeerID, tid int64) {
	list := s.byPeer[id]
	for i, v := range list {
		if v == tid {
			list[i] = list[len(list)-1]
			s.byPeer[id] = list[:len(list)-1]
			return
		}
	}
}

// touching collects the slot's transfer ids in ascending id order
// (enqueue order), the canonical iteration order for interruption
// sweeps — byPeer's swap-removes leave the raw lists unordered.
func (s *Scheduler) touching(id overlay.PeerID) []int64 {
	s.tidBuf = append(s.tidBuf[:0], s.byPeer[id]...)
	sort.Slice(s.tidBuf, func(i, j int) bool { return s.tidBuf[i] < s.tidBuf[j] })
	return s.tidBuf
}

// SuspendPeer interrupts every active transfer touching an endpoint
// that just went offline. Progress follows the resume policy: Resume
// banks the blocks that flowed before round, Restart discards them.
// The uplink's (and downlink's) unflowed bookings are rewound so
// resumption re-books only what remains.
func (s *Scheduler) SuspendPeer(id overlay.PeerID, round int64) {
	// Rewind this peer's own link bookings: everything unflowed will be
	// re-booked at resume, and new transfers must not queue behind
	// phantom occupancy.
	if s.upFree[id] > float64(round) {
		s.upFree[id] = float64(round)
	}
	if s.downFree[id] > float64(round) {
		s.downFree[id] = float64(round)
	}
	for _, tid := range s.touching(id) {
		t := s.xfers[tid]
		if t.Suspended {
			continue
		}
		if t.Rate > 0 {
			switch s.params.Policy {
			case Resume:
				flowed := (float64(round) - t.startAt) * t.Rate
				if flowed < 0 {
					flowed = 0
				}
				if flowed > t.Remaining {
					flowed = t.Remaining
				}
				t.Remaining -= flowed
			case Restart:
				t.Remaining = t.Blocks
			}
		}
		t.Suspended = true
	}
}

// ResumePeer re-books the suspended transfers touching a peer that
// just came back online, skipping those whose other endpoint is still
// offline. online reports an arbitrary slot's session state. Resumed
// transfers are returned in ascending id order so the caller can
// schedule their new completions deterministically.
func (s *Scheduler) ResumePeer(id overlay.PeerID, round int64, online func(overlay.PeerID) bool) []*Transfer {
	var resumed []*Transfer
	for _, tid := range s.touching(id) {
		t := s.xfers[tid]
		if !t.Suspended {
			continue
		}
		other := t.Owner.ID
		if other == id {
			if t.Kind == Upload {
				other = t.Host.ID
			} else {
				other = overlay.NoPeer // restores have one endpoint
			}
		}
		if other != overlay.NoPeer && !online(other) {
			continue
		}
		t.Suspended = false
		if t.Kind == Upload {
			t.startAt, t.CompleteAt = book(&s.upFree[t.Owner.ID], round, t.Remaining, t.Rate)
		} else {
			t.startAt, t.CompleteAt = book(&s.downFree[t.Owner.ID], round, t.Remaining, t.Rate)
		}
		resumed = append(resumed, t)
	}
	return resumed
}

// AbortPeer kills every transfer touching a departing endpoint,
// releasing reservations and caps, and returns the aborted transfers
// in ascending id order (for event emission).
func (s *Scheduler) AbortPeer(id overlay.PeerID) []*Transfer {
	var aborted []*Transfer
	for _, tid := range s.touching(id) {
		t := s.xfers[tid]
		s.finalize(t)
		aborted = append(aborted, t)
	}
	return aborted
}

// AbortOwner kills the transfers owned by a slot — its outgoing
// uploads and its restore — leaving transfers it merely hosts intact.
// Used when an owner's archive is reset (hard loss): the in-flight
// blocks belong to the abandoned archive.
func (s *Scheduler) AbortOwner(id overlay.PeerID) []*Transfer {
	var aborted []*Transfer
	for _, tid := range s.touching(id) {
		t := s.xfers[tid]
		if t.Owner.ID != id {
			continue
		}
		s.finalize(t)
		aborted = append(aborted, t)
	}
	return aborted
}
