package node

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"fmt"
	"testing"
	"time"

	"p2pbackup/internal/backup"
	"p2pbackup/internal/p2pnet"
	"p2pbackup/internal/selection"
	"p2pbackup/internal/storage"
)

// cluster spins up n nodes on one in-memory fabric.
type cluster struct {
	transport *p2pnet.InMemTransport
	dir       *Directory
	nodes     []*Node
}

// fastIdentity generates a small RSA key: fine for tests, far cheaper
// than the production 2048-bit default.
func fastIdentity(t *testing.T) *backup.Identity {
	t.Helper()
	key, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return &backup.Identity{Private: key}
}

func newCluster(t *testing.T, n int, params backup.Params) *cluster {
	t.Helper()
	c := &cluster{
		transport: p2pnet.NewInMemTransport(42),
		dir:       NewDirectory(),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("peer-%02d", i)
		// Spread ages so the age-based strategy has signal: peer i is
		// i weeks old.
		age := int64(i) * 7 * 24
		nd, err := New(Config{
			Name:            name,
			Age:             age,
			Transport:       c.transport,
			Store:           storage.NewMemStore(0),
			Directory:       c.dir,
			Params:          params,
			RepairThreshold: 6,
			Strategy:        selection.Random{}, // deterministic acceptance for tests
			Identity:        fastIdentity(t),
			Seed:            uint64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		c.dir.Register(name, selection.PeerInfo{Age: age})
		c.nodes = append(c.nodes, nd)
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			nd.Close()
		}
	})
	return c
}

func testFiles(tag string) []backup.FileEntry {
	now := time.Date(2026, 6, 10, 9, 0, 0, 0, time.UTC)
	return []backup.FileEntry{
		{Path: "a/" + tag + ".txt", Mode: 0o644, ModTime: now, Data: []byte("file A for " + tag)},
		{Path: "b.bin", Mode: 0o600, ModTime: now, Data: bytes.Repeat([]byte{7}, 3000)},
	}
}

func entriesEqual(a, b []backup.FileEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Path != b[i].Path || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

var smallParams = backup.Params{DataBlocks: 4, ParityBlocks: 4}

func TestBackupRestoreHappyPath(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	files := testFiles("happy")
	idx, err := owner.Backup(files, "happy archive")
	if err != nil {
		t.Fatal(err)
	}
	if owner.Archives() != 1 {
		t.Fatal("archive not registered")
	}
	vis, err := owner.VisibleBlocks(idx)
	if err != nil {
		t.Fatal(err)
	}
	if vis != 8 {
		t.Fatalf("visible = %d, want 8", vis)
	}
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, files) {
		t.Fatal("restored files differ")
	}
}

func TestRestoreSurvivesPartnerLoss(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	files := testFiles("loss")
	idx, err := owner.Backup(files, "")
	if err != nil {
		t.Fatal(err)
	}
	// Kill m = 4 partners (the tolerance boundary).
	killed := 0
	for _, nd := range c.nodes[1:] {
		if killed == 4 {
			break
		}
		c.transport.SetPartitioned(nd.Name(), true)
		killed++
	}
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, files) {
		t.Fatal("restored files differ after partner loss")
	}
}

func TestMaintainTickRepairs(t *testing.T) {
	c := newCluster(t, 14, smallParams)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("repair"), "")
	if err != nil {
		t.Fatal(err)
	}
	// Healthy: no trigger.
	rep, err := owner.MaintainTick(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Triggered {
		t.Fatal("healthy archive triggered a repair")
	}
	// Partition three partners: visible 5 < threshold 6 triggers.
	cut := []string{}
	for i, holder := range owner.placements[idx] {
		_ = i
		if len(cut) == 3 {
			break
		}
		alreadyCut := false
		for _, c := range cut {
			if c == holder {
				alreadyCut = true
			}
		}
		if !alreadyCut {
			cut = append(cut, holder)
		}
	}
	for _, name := range cut {
		c.transport.SetPartitioned(name, true)
	}
	rep, err = owner.MaintainTick(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Triggered {
		t.Fatalf("repair not triggered at visible=%d", rep.Visible)
	}
	if rep.Replaced != 3 {
		t.Fatalf("replaced = %d, want 3", rep.Replaced)
	}
	// All blocks visible again without the cut peers.
	vis, err := owner.VisibleBlocks(idx)
	if err != nil {
		t.Fatal(err)
	}
	if vis != 8 {
		t.Fatalf("visible after repair = %d, want 8", vis)
	}
	// And restore still works with the dead partners still dead.
	got, err := owner.Restore(idx)
	if err != nil {
		t.Fatal(err)
	}
	if !entriesEqual(got, testFiles("repair")) {
		t.Fatal("restore after repair differs")
	}
}

func TestAudit(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	idx, err := owner.Backup(testFiles("audit"), "")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := owner.Audit(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Challenged != 8 || rep.Passed != 8 || rep.Failed != 0 {
		t.Fatalf("audit = %+v", rep)
	}
	// A partner silently losing the block fails its audit.
	var victim string
	var victimKey storage.BlockID
	for i, holder := range owner.placements[idx] {
		victim = holder
		victimKey = owner.manifests[idx].BlockIDs[i]
		break
	}
	for _, nd := range c.nodes {
		if nd.Name() == victim {
			if err := nd.cfg.Store.Delete(victimKey); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err = owner.Audit(idx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed < 1 {
		t.Fatalf("lost block not caught: %+v", rep)
	}
}

func TestRecoverFromNetwork(t *testing.T) {
	c := newCluster(t, 12, smallParams)
	owner := c.nodes[0]
	files := testFiles("recover")
	if _, err := owner.Backup(files, "first"); err != nil {
		t.Fatal(err)
	}
	more := testFiles("recover2")
	if _, err := owner.Backup(more, "second"); err != nil {
		t.Fatal(err)
	}
	// Total local loss: the user has only the identity and peer names.
	askPeers := c.dir.Names()
	archives, err := RecoverFromNetwork(owner.Name(), owner.Identity(), c.transport, askPeers)
	if err != nil {
		t.Fatal(err)
	}
	if len(archives) != 2 {
		t.Fatalf("recovered %d archives, want 2", len(archives))
	}
	if !entriesEqual(archives[0], files) || !entriesEqual(archives[1], more) {
		t.Fatal("recovered content differs")
	}
	// Wrong identity cannot decrypt.
	wrong := fastIdentity(t)
	if _, err := RecoverFromNetwork(owner.Name(), wrong, c.transport, askPeers); err == nil {
		t.Fatal("foreign identity recovered the archives")
	}
	// Unknown owner finds no master block.
	if _, err := RecoverFromNetwork("stranger", owner.Identity(), c.transport, askPeers); !errors.Is(err, ErrNoMaster) {
		t.Fatalf("err = %v, want ErrNoMaster", err)
	}
}

func TestBackupFailsWithoutPartners(t *testing.T) {
	c := newCluster(t, 3, smallParams) // 2 candidates < 8 blocks
	if _, err := c.nodes[0].Backup(testFiles("few"), ""); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("err = %v, want ErrNotEnough", err)
	}
}

func TestAgeBasedPlacementPrefersElders(t *testing.T) {
	// With the age strategy and plentiful peers, blocks go to the
	// oldest (capped) candidates first.
	c := newCluster(t, 20, smallParams)
	dir := c.dir
	owner, err := New(Config{
		Name:      "owner",
		Age:       0,
		Transport: c.transport,
		Store:     storage.NewMemStore(0),
		Directory: dir,
		Params:    smallParams,
		Strategy:  selection.AgeBased{L: 10 * 7 * 24}, // cap at 10 weeks
		Identity:  fastIdentity(t),
		Seed:      99,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	dir.Register("owner", selection.PeerInfo{Age: 0})
	idx, err := owner.Backup(testFiles("elders"), "")
	if err != nil {
		t.Fatal(err)
	}
	// The 8 holders should be drawn from the oldest peers (>= 10 weeks
	// of age is capped; peers 10..19 all tie at the cap).
	youngest := int64(1 << 62)
	for _, holder := range owner.placements[idx] {
		info, _ := dir.Info(holder)
		if info.Age < youngest {
			youngest = info.Age
		}
	}
	// Acceptance is probabilistic (elders decline newborns often), so
	// we only require that placement skews old: the youngest holder is
	// at least peer-04's age.
	if youngest < 4*7*24 {
		t.Fatalf("youngest holder age = %d rounds; placement did not skew old", youngest)
	}
}

func TestValidationErrors(t *testing.T) {
	tr := p2pnet.NewInMemTransport(1)
	dir := NewDirectory()
	st := storage.NewMemStore(0)
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Name: "x", Transport: tr, Store: st, Directory: dir,
		Params: backup.Params{DataBlocks: -1, ParityBlocks: 1}}); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := New(Config{Name: "x", Transport: tr, Store: st, Directory: dir,
		RepairThreshold: 9999}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	// Restore of unknown archive.
	nd, err := New(Config{Name: "y", Transport: tr, Store: st, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := nd.Restore(0); !errors.Is(err, ErrNoArchive) {
		t.Fatal("restore of missing archive accepted")
	}
	if _, err := nd.MaintainTick(3); !errors.Is(err, ErrNoArchive) {
		t.Fatal("tick on missing archive accepted")
	}
	if _, err := nd.Audit(1); !errors.Is(err, ErrNoArchive) {
		t.Fatal("audit on missing archive accepted")
	}
	if _, err := nd.VisibleBlocks(-1); !errors.Is(err, ErrNoArchive) {
		t.Fatal("visible on missing archive accepted")
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	d.Register("a", selection.PeerInfo{Age: 1})
	d.Register("b", selection.PeerInfo{Age: 2})
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if info, ok := d.Info("a"); !ok || info.Age != 1 {
		t.Fatal("Info wrong")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
	d.Remove("a")
	if _, ok := d.Info("a"); ok {
		t.Fatal("removed peer still present")
	}
}
