package experiments

import (
	"bytes"
	"context"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"
)

// runTransferTwice executes a transfer campaign at two parallelism
// levels and fails unless both produce identical typed results — the
// determinism contract: a variant's trajectory (and therefore its
// TTB/TTR distributions) is a pure function of its seed, never of
// worker scheduling.
func runTransferTwice(t *testing.T, name string, build func() Campaign) *TransferResult {
	t.Helper()
	run := func(parallelism int) *TransferResult {
		rows, err := Runner{Parallelism: parallelism}.Run(context.Background(), build())
		if err != nil {
			t.Fatal(err)
		}
		return TransferFromRows(name, rows)
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s campaign not deterministic across parallelism:\n%+v\n%+v", name, a, b)
	}
	return a
}

// transferDigest folds a campaign's full TSV output — every counter,
// every distribution moment — into one FNV-1a hash.
func transferDigest(t *testing.T, res *TransferResult) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64()
}

// TestFlashCrowdCampaignDeterminism is the acceptance-criterion test:
// with bandwidth classes enabled the flashcrowd campaign reports
// time-to-restore distributions, and the digest of its full result is
// identical across parallelism 1 and 4.
func TestFlashCrowdCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	res := runTransferTwice(t, "flashcrowd", func() Campaign { return FlashCrowdCampaign(cfg) })
	if len(res.Points) != 3 {
		t.Fatalf("%d points, want 3", len(res.Points))
	}
	wantLabels := []string{"instant", "dsl", "skewed"}
	for i, w := range wantLabels {
		if res.Points[i].Label != w {
			t.Fatalf("label[%d] = %q, want %q", i, res.Points[i].Label, w)
		}
	}
	for _, p := range res.Points {
		if p.TTR.Count == 0 && p.RestoresFailed == 0 {
			t.Errorf("%s: flash crowd produced no restore outcomes at all", p.Label)
		}
	}
	// The bandwidth-class variants must report a time-to-restore
	// distribution (the crowd's demand completes, late or on time).
	for _, i := range []int{1, 2} {
		if res.Points[i].TTR.Count == 0 {
			t.Errorf("%s: no completed restores", res.Points[i].Label)
		}
	}
	// Same build, same digest: the distributions themselves are pinned,
	// not just the headline counters.
	a := transferDigest(t, res)
	b := transferDigest(t, runTransferTwice(t, "flashcrowd", func() Campaign { return FlashCrowdCampaign(cfg) }))
	if a != b {
		t.Fatalf("flashcrowd digests differ across executions: %#x vs %#x", a, b)
	}
}

func TestTransferBaselineCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	res := runTransferTwice(t, "transfer-baseline", func() Campaign { return TransferBaselineCampaign(cfg) })
	if len(res.Points) != 4 {
		t.Fatalf("%d points, want 4", len(res.Points))
	}
	if res.Points[0].Label != "instant" || res.Points[3].Label != "skewed" {
		t.Fatalf("labels = %v %v", res.Points[0].Label, res.Points[3].Label)
	}
	for _, p := range res.Points {
		if p.TTB.Count == 0 {
			t.Errorf("%s: no time-to-backup samples", p.Label)
		}
	}
}

func TestUplinkSweepCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	cfg.Rounds = 200
	res := runTransferTwice(t, "uplink-sweep", func() Campaign { return UplinkSweepCampaign(cfg) })
	if len(res.Points) != 1+len(uplinkFactors) {
		t.Fatalf("%d points, want %d", len(res.Points), 1+len(uplinkFactors))
	}
	if res.Points[0].Label != "budget" || res.Points[1].Label != "up=0.25x" {
		t.Fatalf("labels = %v %v", res.Points[0].Label, res.Points[1].Label)
	}
	// Budget mode places instantly within the maintenance step; class
	// mode delivers through the scheduler a round later at the earliest.
	// The trajectories must differ.
	if res.Points[0] == res.Points[1] {
		t.Fatal("budget mode and up=0.25x produced identical outcomes")
	}
}

func TestRegistryHasTransferExperiments(t *testing.T) {
	names := strings.Join(Names(), " ")
	for _, want := range []string{"transfer-baseline", "flashcrowd", "uplink-sweep"} {
		if !strings.Contains(names, want) {
			t.Fatalf("Names() = %v missing %q", Names(), want)
		}
	}
}

// TestOptionsBandwidthValidatesEagerly: a bad -bandwidth spec fails
// before any simulation runs.
func TestOptionsBandwidthValidatesEagerly(t *testing.T) {
	if _, err := RunCtx(context.Background(), "fig1", Options{Bandwidth: "bogus:spec"}); err == nil {
		t.Fatal("bad bandwidth spec accepted")
	}
}
