package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testStores(t *testing.T, f func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("mem", func(t *testing.T) { f(t, NewMemStore(0)) })
	t.Run("disk", func(t *testing.T) {
		s, err := OpenDiskStore(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		f(t, s)
	})
}

func TestPutGetRoundTrip(t *testing.T) {
	testStores(t, func(t *testing.T, s Store) {
		data := []byte("hello, backup world")
		id, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		if id != IDOf(data) {
			t.Fatal("id is not the content hash")
		}
		got, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("content mismatch")
		}
		if !s.Has(id) || s.Len() != 1 || s.UsedBytes() != int64(len(data)) {
			t.Fatal("bookkeeping wrong")
		}
		// Idempotent put.
		if _, err := s.Put(data); err != nil {
			t.Fatal(err)
		}
		if s.Len() != 1 {
			t.Fatal("duplicate put created a second block")
		}
	})
}

func TestGetMissing(t *testing.T) {
	testStores(t, func(t *testing.T, s Store) {
		if _, err := s.Get(IDOf([]byte("nope"))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("err = %v, want ErrNotFound", err)
		}
		if s.Has(IDOf([]byte("nope"))) {
			t.Fatal("Has on missing block")
		}
	})
}

func TestDelete(t *testing.T) {
	testStores(t, func(t *testing.T, s Store) {
		id, _ := s.Put([]byte("data"))
		if err := s.Delete(id); err != nil {
			t.Fatal(err)
		}
		if s.Has(id) || s.Len() != 0 || s.UsedBytes() != 0 {
			t.Fatal("delete left state")
		}
		if err := s.Delete(id); err != nil {
			t.Fatal("deleting absent block must be a no-op")
		}
	})
}

func TestQuota(t *testing.T) {
	for _, mk := range []func() Store{
		func() Store { return NewMemStore(10) },
		func() Store {
			s, err := OpenDiskStore(t.TempDir(), 10)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		s := mk()
		if _, err := s.Put([]byte("12345")); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put([]byte("678901")); !errors.Is(err, ErrQuota) {
			t.Fatalf("quota breach: err = %v", err)
		}
		// Freeing space lets the put through.
		if err := s.Delete(IDOf([]byte("12345"))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Put([]byte("678901")); err != nil {
			t.Fatalf("put after free: %v", err)
		}
	}
}

func TestIDsSorted(t *testing.T) {
	testStores(t, func(t *testing.T, s Store) {
		for _, d := range [][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d")} {
			if _, err := s.Put(d); err != nil {
				t.Fatal(err)
			}
		}
		ids := s.IDs()
		if len(ids) != 4 {
			t.Fatalf("IDs len = %d", len(ids))
		}
		for i := 1; i < len(ids); i++ {
			if bytes.Compare(ids[i-1][:], ids[i][:]) >= 0 {
				t.Fatal("IDs not sorted")
			}
		}
	})
}

func TestMemCorruptionDetected(t *testing.T) {
	s := NewMemStore(0)
	id, _ := s.Put([]byte("precious data"))
	if err := s.Corrupt(id, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
	if err := s.Corrupt(IDOf([]byte("zzz")), 0); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupting missing block must fail")
	}
}

func TestDiskCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("precious data on disk")
	id, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte behind the store's back.
	path := filepath.Join(dir, id.String()[:2], id.String())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}

func TestDiskReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Put([]byte("block one"))
	id2, _ := s.Put([]byte("block two"))
	want := s.UsedBytes()

	s2, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 || s2.UsedBytes() != want {
		t.Fatalf("reopened: len=%d used=%d", s2.Len(), s2.UsedBytes())
	}
	for _, id := range []BlockID{id1, id2} {
		if !s2.Has(id) {
			t.Fatalf("reopened store missing %s", id)
		}
		if _, err := s2.Get(id); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDiskIgnoresForeignAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "ab"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ab", "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ab", "deadbeef.123.tmp"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenDiskStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("foreign files indexed: %d", s.Len())
	}
}

func TestBlockIDParse(t *testing.T) {
	id := IDOf([]byte("x"))
	parsed, err := ParseBlockID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("round trip failed: %v", err)
	}
	if _, err := ParseBlockID("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := ParseBlockID("abcd"); err == nil {
		t.Fatal("short id accepted")
	}
}

func TestMemStoreConcurrency(t *testing.T) {
	s := NewMemStore(0)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				data := []byte{byte(g), byte(i), byte(i >> 4)}
				id, err := s.Put(data)
				if err != nil {
					done <- err
					return
				}
				if _, err := s.Get(id); err != nil {
					done <- err
					return
				}
				if i%3 == 0 {
					if err := s.Delete(id); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
