// Package costmodel reproduces the paper's section 2.2.4: the
// back-of-envelope bandwidth analysis that sets the viability bar the
// simulation results are judged against.
//
// A repair downloads k blocks (to decode the archive) and uploads d
// replacement blocks. Encoding/decoding time and metadata updates are
// negligible next to transfer time on asymmetric home links, so
//
//	repair time = k*blockSize/downloadRate + d*blockSize/uploadRate
//
// With the paper's parameters (128 MB archives, k = m = 128, 32 kB/s
// up, 256 kB/s down) a worst-case repair (d = 128) takes about 77
// minutes, bounding a peer to roughly 20 repairs/day; a usable system
// therefore needs per-archive repair rates around one per month (one
// repair/day budget across 32 archives).
package costmodel

import (
	"errors"
	"fmt"
	"time"
)

// KB is 1024 bytes (the paper's kB/s figures are binary kilobytes).
const KB = 1024

// MB is 1024 KB.
const MB = 1024 * KB

// Link models an asymmetric access link in bytes per second.
type Link struct {
	UploadBps   float64
	DownloadBps float64
}

// DSL2009 returns the paper's reference DSL link: 32 kB/s up,
// 256 kB/s down.
func DSL2009() Link {
	return Link{UploadBps: 32 * KB, DownloadBps: 256 * KB}
}

// FTTH2009 returns the paper's "at least four times faster" modern
// connection for the sensitivity row.
func FTTH2009() Link {
	return Link{UploadBps: 128 * KB, DownloadBps: 1024 * KB}
}

// Code describes the archive erasure-coding shape.
type Code struct {
	ArchiveBytes int64
	K            int // data blocks (needed to decode)
	M            int // parity blocks
}

// PaperCode returns the paper's parameter table: 128 MB archives,
// k = 128, m = 128.
func PaperCode() Code {
	return Code{ArchiveBytes: 128 * MB, K: 128, M: 128}
}

// Validate checks the code shape.
func (c Code) Validate() error {
	if c.ArchiveBytes <= 0 {
		return fmt.Errorf("costmodel: archive size %d must be positive", c.ArchiveBytes)
	}
	if c.K < 1 || c.M < 0 {
		return fmt.Errorf("costmodel: invalid code k=%d m=%d", c.K, c.M)
	}
	return nil
}

// N returns the total block count.
func (c Code) N() int { return c.K + c.M }

// BlockBytes returns the size of one block (archive split into k).
func (c Code) BlockBytes() int64 {
	return (c.ArchiveBytes + int64(c.K) - 1) / int64(c.K)
}

// ErrBadLink reports non-positive link rates.
var ErrBadLink = errors.New("costmodel: link rates must be positive")

// RepairCost breaks a repair into its transfer phases.
type RepairCost struct {
	Download time.Duration // fetch k blocks to decode
	Upload   time.Duration // push d regenerated blocks
}

// Total returns the end-to-end repair time.
func (r RepairCost) Total() time.Duration { return r.Download + r.Upload }

// EstimateRepair computes the repair cost for replacing d blocks.
func EstimateRepair(l Link, c Code, d int) (RepairCost, error) {
	if l.UploadBps <= 0 || l.DownloadBps <= 0 {
		return RepairCost{}, ErrBadLink
	}
	if err := c.Validate(); err != nil {
		return RepairCost{}, err
	}
	if d < 0 || d > c.N() {
		return RepairCost{}, fmt.Errorf("costmodel: d = %d outside [0, n=%d]", d, c.N())
	}
	block := float64(c.BlockBytes())
	down := float64(c.K) * block / l.DownloadBps
	up := float64(d) * block / l.UploadBps
	return RepairCost{
		Download: time.Duration(down * float64(time.Second)),
		Upload:   time.Duration(up * float64(time.Second)),
	}, nil
}

// ParityUploadCost prices adding delta parity blocks to an existing
// archive: the owner already holds the data, so there is no decode
// download — only the section-2.2.4 upload term, delta blocks pushed up
// the link. This is the formula the adaptive redundancy policy charges
// a grow decision with; it agrees exactly with EstimateRepair's Upload
// component (pinned by a test).
func ParityUploadCost(c Code, delta int, l Link) (time.Duration, error) {
	if l.UploadBps <= 0 {
		return 0, ErrBadLink
	}
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if delta < 0 || delta > c.N() {
		return 0, fmt.Errorf("costmodel: delta = %d outside [0, n=%d]", delta, c.N())
	}
	up := float64(delta) * float64(c.BlockBytes()) / l.UploadBps
	return time.Duration(up * float64(time.Second)), nil
}

// MaxRepairsPerDay returns how many worst-case repairs (d blocks each)
// the link can sustain per day, transfers back to back.
func MaxRepairsPerDay(l Link, c Code, d int) (float64, error) {
	rc, err := EstimateRepair(l, c, d)
	if err != nil {
		return 0, err
	}
	if rc.Total() <= 0 {
		return 0, errors.New("costmodel: zero repair time")
	}
	return float64(24*time.Hour) / float64(rc.Total()), nil
}

// MaxRepairIntervalPerArchive returns the minimum mean time between
// repairs of a single archive for a user with the given number of
// archives spending at most budgetPerDay repairs per day in total.
// The paper's example: 32 archives (4 GB), budget 1/day, worst-case d,
// gives about one repair per month per archive.
func MaxRepairIntervalPerArchive(archives int, budgetPerDay float64) (time.Duration, error) {
	if archives < 1 || budgetPerDay <= 0 {
		return 0, fmt.Errorf("costmodel: invalid archives=%d budget=%v", archives, budgetPerDay)
	}
	days := float64(archives) / budgetPerDay
	return time.Duration(days * 24 * float64(time.Hour)), nil
}

// TableRow is one line of the section 2.2.4 summary table.
type TableRow struct {
	Label         string
	Link          Link
	D             int
	Cost          RepairCost
	RepairsPerDay float64
}

// PaperTable reproduces the section's numbers: the DSL worst case the
// paper walks through, the best case (d = 1), and the faster-link
// sensitivity row.
func PaperTable() ([]TableRow, error) {
	code := PaperCode()
	rows := []struct {
		label string
		link  Link
		d     int
	}{
		{"DSL worst case (d=128)", DSL2009(), 128},
		{"DSL single block (d=1)", DSL2009(), 1},
		{"FTTH worst case (d=128)", FTTH2009(), 128},
	}
	var out []TableRow
	for _, r := range rows {
		cost, err := EstimateRepair(r.link, code, r.d)
		if err != nil {
			return nil, err
		}
		perDay, err := MaxRepairsPerDay(r.link, code, r.d)
		if err != nil {
			return nil, err
		}
		out = append(out, TableRow{Label: r.label, Link: r.link, D: r.d, Cost: cost, RepairsPerDay: perDay})
	}
	return out, nil
}
