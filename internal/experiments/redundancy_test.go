package experiments

import (
	"bytes"
	"context"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/sim"
)

// runRedundancyTwice executes the fixed-vs-adaptive campaign at two
// parallelism levels and fails unless both produce identical typed
// results — the determinism contract extended to the adaptive policy
// layer: grow/shrink trajectories are a pure function of the variant
// seed, never of worker scheduling.
func runRedundancyTwice(t *testing.T, cfg sim.Config, trace *churn.Trace, spec string) *RedundancyResult {
	t.Helper()
	run := func(parallelism int) *RedundancyResult {
		rows, err := Runner{Parallelism: parallelism}.Run(context.Background(), RedundancyCampaign(cfg, trace, spec))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RedundancyFromRows("fixed-vs-adaptive", rows)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(4)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("redundancy campaign not deterministic across parallelism:\n%+v\n%+v", a, b)
	}
	return a
}

// microAdaptiveSpec is the adaptive arm the micro-scale tests sweep:
// the package's five-nines default is unreachable at microConfig's
// 16-block code shape, and the default hysteresis band (6 blocks) is
// as wide as the shape's whole [k', n] range — either default would
// pin every archive at Max and make the assertions vacuous — so the
// tests pick a target the shape can undercut and a band it can cross,
// which exercises the full grow/shrink dynamics.
const microAdaptiveSpec = "adaptive:target=0.9,hysteresis=2"

func redundancyDigest(t *testing.T, res *RedundancyResult) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	h.Write(buf.Bytes())
	return h.Sum64()
}

// TestRedundancyCampaignDeterminism: the campaign's full TSV — every
// counter, overhead and cost column — is identical across parallelism
// levels and across repeated executions, adaptive arms genuinely act,
// and fixed arms never touch the redundancy machinery.
func TestRedundancyCampaignDeterminism(t *testing.T) {
	cfg := microConfig()
	res := runRedundancyTwice(t, cfg, nil, microAdaptiveSpec)
	wantLabels := []string{
		"iid/fixed", "iid/" + microAdaptiveSpec,
		"diurnal/fixed", "diurnal/" + microAdaptiveSpec,
		"shock/fixed", "shock/" + microAdaptiveSpec,
	}
	if len(res.Points) != len(wantLabels) {
		t.Fatalf("%d points, want %d", len(res.Points), len(wantLabels))
	}
	for i, w := range wantLabels {
		if res.Points[i].Label != w {
			t.Fatalf("label[%d] = %q, want %q", i, res.Points[i].Label, w)
		}
	}
	for i, p := range res.Points {
		if i%2 == 0 { // fixed arm
			if p.Grows != 0 || p.Shrinks != 0 || p.ParityAdded != 0 || p.ParityCostHours != 0 {
				t.Errorf("%s: fixed arm recorded redundancy activity: %+v", p.Label, p)
			}
			if p.MeanRedundancy != float64(cfg.TotalBlocks) {
				t.Errorf("%s: fixed mean_n = %v, want %d", p.Label, p.MeanRedundancy, cfg.TotalBlocks)
			}
		} else { // adaptive arm
			if p.Grows == 0 || p.ParityAdded == 0 {
				t.Errorf("%s: adaptive arm never grew: %+v", p.Label, p)
			}
			if p.ParityCostHours <= 0 {
				t.Errorf("%s: parity cost = %v, want > 0", p.Label, p.ParityCostHours)
			}
		}
	}
	a := redundancyDigest(t, res)
	b := redundancyDigest(t, runRedundancyTwice(t, cfg, nil, microAdaptiveSpec))
	if a != b {
		t.Fatalf("redundancy digests differ across executions: %#x vs %#x", a, b)
	}
}

// TestRedundancyCampaignDominance is the acceptance criterion on the
// i.i.d. scenario: the adaptive policy must hold storage overhead at or
// below the fixed policy's n-per-archive bill without giving up object
// durability (no more permanent losses than fixed).
func TestRedundancyCampaignDominance(t *testing.T) {
	res := runRedundancyTwice(t, microConfig(), nil, microAdaptiveSpec)
	fixed, adaptive := res.Points[0], res.Points[1]
	if fixed.Label != "iid/fixed" || adaptive.Label != "iid/"+microAdaptiveSpec {
		t.Fatalf("unexpected iid labels: %q, %q", fixed.Label, adaptive.Label)
	}
	if adaptive.Overhead > fixed.Overhead {
		t.Errorf("adaptive overhead %.4f > fixed %.4f: no storage savings", adaptive.Overhead, fixed.Overhead)
	}
	if adaptive.HardLosses > fixed.HardLosses {
		t.Errorf("adaptive hard losses %d > fixed %d: durability regressed", adaptive.HardLosses, fixed.HardLosses)
	}
}

// TestRedundancyCampaignReplay: with a trace the campaign gains the
// replay block, and both of its arms see the identical churn sequence
// (the paired comparison synthetic churn cannot offer).
func TestRedundancyCampaignReplay(t *testing.T) {
	rec := microConfig()
	rec.RecordTrace = true
	s, err := sim.New(rec)
	if err != nil {
		t.Fatal(err)
	}
	trace := s.Run().Trace

	res := runRedundancyTwice(t, microConfig(), trace, microAdaptiveSpec)
	if len(res.Points) != 8 {
		t.Fatalf("%d points, want 8", len(res.Points))
	}
	fixed, adaptive := res.Points[6], res.Points[7]
	if fixed.Label != "replay/fixed" || adaptive.Label != "replay/"+microAdaptiveSpec {
		t.Fatalf("unexpected replay labels: %q, %q", fixed.Label, adaptive.Label)
	}
	if adaptive.Grows == 0 {
		t.Errorf("replay adaptive arm never grew: %+v", adaptive)
	}
	if adaptive.FinalPlacements >= fixed.FinalPlacements {
		t.Errorf("replay adaptive placements %d >= fixed %d: no storage savings on identical churn",
			adaptive.FinalPlacements, fixed.FinalPlacements)
	}
}

func TestRegistryHasRedundancyExperiment(t *testing.T) {
	if !strings.Contains(strings.Join(Names(), " "), "fixed-vs-adaptive") {
		t.Fatalf("Names() = %v missing fixed-vs-adaptive", Names())
	}
}

// TestOptionsRedundancyValidatesEagerly: a bad -redundancy spec fails
// before any simulation runs, and a valid adaptive override becomes the
// campaign's adaptive arm.
func TestOptionsRedundancyValidatesEagerly(t *testing.T) {
	if _, err := RunCtx(context.Background(), "fig1", Options{Redundancy: "bogus:x"}); err == nil {
		t.Fatal("bad redundancy spec accepted")
	}
	if got := redundancyAdaptiveSpec(Options{Redundancy: "adaptive:target=0.95"}); got != "adaptive:target=0.95" {
		t.Fatalf("adaptive arm = %q, want the override", got)
	}
	// A fixed (static) override cannot serve as the adaptive arm.
	if got := redundancyAdaptiveSpec(Options{Redundancy: "fixed"}); got != "adaptive" {
		t.Fatalf("adaptive arm = %q, want default", got)
	}
}
