package rng

import (
	"math"
	"math/rand"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(54321)
	same := 0
	a = New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values of 100", len(seen))
	}
}

func TestXoshiroReferenceVectors(t *testing.T) {
	// Reference: xoshiro256++ from a known state. With state
	// {1, 2, 3, 4} the first output is rotl(1+4, 23) + 1 = 5<<23 + 1.
	r := NewFromState([4]uint64{1, 2, 3, 4})
	want := uint64(5<<23) + 1
	if got := r.Uint64(); got != want {
		t.Fatalf("first output from state {1,2,3,4} = %d, want %d", got, want)
	}
}

func TestSplitmix64KnownValues(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (widely published):
	// first three outputs of the stream.
	want := []uint64{
		0xE220A8397B1DCDAF,
		0x6E789E6AA1B965F4,
		0x06C45D188009454F,
	}
	state := uint64(0)
	for i, w := range want {
		var out uint64
		state, out = splitmix64(state)
		if out != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, out, w)
		}
	}
}

func TestChildIndependence(t *testing.T) {
	parent := New(99)
	c1 := parent.Child()
	c2 := parent.Child()
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling children produced %d identical outputs of 1000", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) must panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9% quantile
	// of chi2 with 9 degrees of freedom (27.88).
	r := New(42)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(n) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi2 = %.2f > 27.88; Intn looks non-uniform: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(13)
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
	if r.Bool(-0.5) || !r.Bool(1.5) {
		t.Fatal("Bool must clamp out-of-range probabilities")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f", frac)
	}
}

func TestIntRange(t *testing.T) {
	r := New(17)
	lo, hi := 5, 9
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange(%d,%d) = %d", lo, hi, v)
		}
		seen[v] = true
	}
	if len(seen) != hi-lo+1 {
		t.Fatalf("IntRange missed values: %v", seen)
	}
	if got := r.IntRange(3, 3); got != 3 {
		t.Fatalf("IntRange(3,3) = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("IntRange(5, 4) must panic")
			}
		}()
		r.IntRange(5, 4)
	}()
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleViaSwap(t *testing.T) {
	r := New(23)
	s := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), s...)
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	counts := map[string]int{}
	for _, v := range s {
		counts[v]++
	}
	for _, v := range orig {
		if counts[v] != 1 {
			t.Fatalf("Shuffle lost element %q", v)
		}
	}
}

func TestMathRandSourceCompatibility(t *testing.T) {
	// Rand satisfies math/rand.Source64, so stdlib distributions work.
	var src rand.Source64 = New(29)
	mr := rand.New(src)
	v := mr.NormFloat64()
	if math.IsNaN(v) {
		t.Fatal("NormFloat64 returned NaN")
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(31)
	r.Uint64()
	saved := r.State()
	a, b := NewFromState(saved), NewFromState(saved)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("restored generators diverged")
		}
	}
}

func TestSeedResets(t *testing.T) {
	r := New(1)
	r.Uint64()
	r.Seed(77)
	want := New(77).Uint64()
	if got := r.Uint64(); got != want {
		t.Fatalf("after Seed(77): got %d, want %d", got, want)
	}
}

func TestUint64nEdge(t *testing.T) {
	r := New(37)
	if v := r.Uint64n(1); v != 0 {
		t.Fatalf("Uint64n(1) = %d", v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Uint64n(0) must panic")
			}
		}()
		r.Uint64n(0)
	}()
}

func TestDeriveDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		for idx := uint64(0); idx < 16; idx++ {
			if Derive(seed, idx) != Derive(seed, idx) {
				t.Fatalf("Derive(%d, %d) is not deterministic", seed, idx)
			}
		}
	}
}

func TestDeriveDistinctStreams(t *testing.T) {
	// Derived seeds must be pairwise distinct across neighbouring
	// indices and seeds, and the streams they seed must diverge: a
	// collision would give two shards (or two variants) the same
	// randomness.
	seen := make(map[uint64][2]uint64)
	for _, seed := range []uint64{0, 1, 2, 42, 1 << 32} {
		for idx := uint64(0); idx < 64; idx++ {
			d := Derive(seed, idx)
			if prev, dup := seen[d]; dup {
				t.Fatalf("Derive collision: (%d,%d) and (%d,%d) -> %#x", seed, idx, prev[0], prev[1], d)
			}
			seen[d] = [2]uint64{seed, idx}
		}
	}
	a, b := New(Derive(7, 0)), New(Derive(7, 1))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("neighbouring derived streams matched on %d of 64 draws", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	// Reseed must leave the generator in exactly the state New would
	// build — the v3 engine reuses one Rand value per population slot
	// across rounds and re-initialises it in place.
	r := New(5)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		r.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 32; i++ {
			if got, want := r.Uint64(), fresh.Uint64(); got != want {
				t.Fatalf("Reseed(%d) draw %d = %d, want %d", seed, i, got, want)
			}
		}
	}
}

func TestDeriveIndependentOfChild(t *testing.T) {
	// Derive must not alias the Child chain of New(seed): shard streams
	// and the engine's canonical stream come from the same base seed.
	r := New(9)
	child := r.Child()
	derived := New(Derive(9, 0))
	for i := 0; i < 16; i++ {
		if child.Uint64() == derived.Uint64() {
			t.Fatal("Derive(seed, 0) stream aliases New(seed).Child()")
		}
	}
}
