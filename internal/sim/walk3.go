// The v3 engine (Config.Walk = WalkV3): a shard-parallel churn walk and
// maintenance phase behind a deterministic cross-shard merge.
//
// The v1 walk is pinned to the historical scan's single rng stream, so
// it cannot parallelise (see the package comment's rng-order invariant
// and shard.go's v2 note on why). v3 breaks that dependency by
// construction instead of by violation:
//
//   - Randomness is per slot, not global: slot i draws every walk and
//     maintenance-plan decision from its own stream, seeded
//     rng.Derive(Config.Seed, v3SlotStreamBase+i). A slot's draw
//     sequence depends only on its own event history, never on which
//     goroutine ran it or what other slots did this round, so draw
//     order is reproducible at any shard count.
//   - Walk-time mutation is slot-local only: a visiting worker touches
//     its slot's peer record, availability history, timers, scheduler
//     link class and maintenance peerState — all owned exclusively by
//     the slot's shard. Every shared-state effect (ledger membership
//     and session flips, transfer aborts/suspends, redundancy resets,
//     probe events) is recorded in the shard's effect log instead.
//   - The merge applies the effect logs at the round barrier in
//     canonical (shard index, log order) order — which, because visits
//     are partitioned in ascending slot order, is ascending slot order
//     globally. Watcher crossings, quota releases and probe events
//     therefore fire in one deterministic sequence, independent of
//     goroutine scheduling.
//   - Maintenance splits into a parallel plan phase (each shard plans
//     its own online actors against the frozen post-merge round state,
//     drawing from the owners' slot streams — see
//     maintenance.PlanStep) and a sequential apply phase in the same
//     canonical order, which re-validates only the genuinely contended
//     resource: host quota.
//
// The v3 invariant: a v3 trajectory is a pure function of the config —
// bit-identical at every shard count S >= 1, on every machine, under
// any scheduler. S=1 runs the same code path as S=k, so walk3_test.go
// pins v3 digests once and holds every S to them, the way
// shard_test.go holds v2 to v1.
//
// v3 is deliberately NOT draw-compatible with v1 — that is why the
// goldens are versioned. Beyond the stream split, four semantic
// differences are accepted and deterministic:
//
//   - a watcher crossing caused mid-walk arms its slot for the NEXT
//     round's walk (v1 could catch it the same round if the armed slot
//     lay ahead of the walk position);
//   - walk-time reads of shared state (loss checks, WantsStep) see the
//     frozen pre-walk ledger rather than v1's mid-walk view;
//   - the maintenance phase runs actors in ascending slot order rather
//     than v1's global shuffle (the shuffle's draw would otherwise
//     serialise the round), and plans against frozen quota — an owner
//     that loses a quota race at apply time retries next round;
//   - the decode-point pool refresh sees the pre-drop host set.

package sim

import (
	"math"
	"sync"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/maintenance"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
)

// v3SlotStreamBase is the rng.Derive index base of the per-slot
// streams: slot i draws from Derive(seed, v3SlotStreamBase+i). The
// offset keeps the slot index space disjoint from the shard scratch
// streams (small indexes) and the adaptive-redundancy stream
// (redunStreamIndex) under the same seed.
const v3SlotStreamBase uint64 = 1 << 33

// v3EntryKind discriminates a logged cross-shard effect.
type v3EntryKind uint8

const (
	// v3EntDeath is a departure: the death/leave events, the ledger
	// removal and the transfer aborts of the departed identity.
	v3EntDeath v3EntryKind = iota
	// v3EntJoin is the replacement (or initial) identity going live:
	// ledger session state and the join/online churn events.
	v3EntJoin
	// v3EntFlip is a session toggle: ledger session state, the churn
	// event and the transfer suspend/resume.
	v3EntFlip
	// v3EntHardLoss is a detected permanent archive loss: the owner's
	// transfer aborts, the ledger release of the surviving placements,
	// the redundancy reset and the hard-loss event.
	v3EntHardLoss
)

// v3Entry is one deferred shared-state effect, captured at visit time
// with the identity attributes the v1 engine would have emitted with.
type v3Entry struct {
	kind   v3EntryKind
	id     int32
	prof   int32
	cat    metrics.Category
	online bool
}

// v3CalPush is a deferred calendar insertion: the bucket-queue arena is
// shared, so workers log their post-visit reschedules and the merge
// pushes them.
type v3CalPush struct {
	slot  int32
	round int64
}

// v3Worker is one shard's accumulator for a round: the effect log, the
// slots to re-visit next round, the deferred calendar pushes, the
// shard's online actors, and the population deltas folded into the
// canonical counters at the merge.
type v3Worker struct {
	entries  []v3Entry
	visits   []int32
	cal      []v3CalPush
	actors   []overlay.PeerID
	catDelta [metrics.NumCategories]int64
	deaths   int64
	ws       *maintenance.Workspace
}

// reset clears the worker for a new round, keeping capacity.
func (w *v3Worker) reset() {
	w.entries = w.entries[:0]
	w.visits = w.visits[:0]
	w.cal = w.cal[:0]
	w.actors = w.actors[:0]
	for c := range w.catDelta {
		w.catDelta[c] = 0
	}
	w.deaths = 0
}

// v3State is the v3 engine's per-run state.
type v3State struct {
	n       int        // shard count (>= 1)
	streams []rng.Rand // one derived stream per population slot
	visits  []int32    // scratch: the round's frozen walk set, ascending
	workers []v3Worker
}

// newV3State builds the v3 engine state. The per-slot streams are held
// by value in one contiguous array: a million-peer run seeds a million
// streams with zero allocations beyond the array itself.
func newV3State(s *Simulation) *v3State {
	cfg := s.cfg
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	v3 := &v3State{
		n:       n,
		streams: make([]rng.Rand, cfg.NumPeers),
		workers: make([]v3Worker, n),
	}
	for i := range v3.streams {
		v3.streams[i].Reseed(rng.Derive(cfg.Seed, v3SlotStreamBase+uint64(i)))
	}
	slots := cfg.NumPeers + len(cfg.Observers)
	for i := range v3.workers {
		v3.workers[i].ws = maintenance.NewWorkspace(slots, s.viewRO)
	}
	return v3
}

// viewRO is the plan phase's read-only view accessor: a warmed memo
// entry is returned as-is, a miss builds the view without storing it —
// concurrent planners must not race on the memo arrays. The values are
// exactly what simEnv.View would produce.
func (s *Simulation) viewRO(id overlay.PeerID) selection.View {
	if int(id) >= s.cfg.NumPeers {
		spec := s.obsSpecs[int(id)-s.cfg.NumPeers]
		return selection.View{
			Observed: selection.Observed{Age: spec.Age, History: steadyHistory{}},
			Oracle:   selection.Oracle{Availability: 1, Remaining: never},
		}
	}
	if s.viewKey[id] == s.round+1 {
		return s.viewVal[id]
	}
	p := &s.peers[id]
	remaining := int64(never)
	if p.death != never {
		remaining = p.death - s.round
	}
	return selection.View{
		Observed: selection.Observed{Age: s.round - p.join, History: s.hist[id]},
		Oracle:   selection.Oracle{Availability: p.avail, Remaining: remaining},
	}
}

// stepRoundV3 advances one round under the v3 engine. Phase order
// matches v1 (shocks, restores, replay, walk, barrier, transfer drain,
// redundancy evaluation, warm, maintenance, observers, accounting);
// the walk and the maintenance plan run one goroutine per shard, with
// the effect merge and the plan apply forming the deterministic
// barriers between them.
func (s *Simulation) stepRoundV3() {
	round := s.round
	v3 := s.v3
	s.curQ, s.nextQ = s.nextQ, s.curQ
	s.walkPos = -1
	pt := s.phaseStart()

	// Sequential pre-phases on the canonical stream, identical to v1.
	// Wakes they cause land in curQ (walkPos = -1) and join this
	// round's walk set.
	if len(s.cfg.Shocks) > 0 {
		s.stepShocks(round)
	}
	if s.xfer != nil && len(s.cfg.Restores) > 0 {
		s.stepRestores(round)
	}
	if s.replay != nil {
		s.applyReplay(round)
	}

	// Freeze the walk set: due timers plus every queued visit, in
	// ascending slot order (the queue dedups). From here to the end of
	// the round any visit request targets the next round.
	s.due = s.cal.drain(round, s.sched, s.due[:0])
	for _, slot := range s.due {
		s.curQ.push(slot)
	}
	v3.visits = v3.visits[:0]
	for !s.curQ.empty() {
		v3.visits = append(v3.visits, s.curQ.pop())
	}
	s.walkPos = math.MaxInt32

	// Parallel walk: one worker per shard over its contiguous segment
	// of the walk set. Workers mutate only slot-local state and defer
	// every shared-state effect to their logs; the Maintainer's wake
	// hook is detached because a worker collects its own armed slots
	// and merge-time crossings re-install the hook first.
	s.maint.SetWake(nil)
	var wg sync.WaitGroup
	cut := 0
	for i := 0; i < v3.n; i++ {
		w := &v3.workers[i]
		w.reset()
		_, hi := s.shardRange(i)
		lo := cut
		for cut < len(v3.visits) && int(v3.visits[cut]) < hi {
			cut++
		}
		seg := v3.visits[lo:cut]
		if len(seg) == 0 {
			continue
		}
		wg.Add(1)
		go func(w *v3Worker, seg []int32) {
			defer wg.Done()
			for _, slot := range seg {
				s.visitSlotV3(w, round, overlay.PeerID(slot))
			}
		}(w, seg)
	}
	wg.Wait()
	s.maint.SetWake(s.requestVisit)
	s.phaseLap(&s.phases.Walk, &pt)

	// The deterministic merge: canonical counters, effect logs,
	// deferred reschedules and next-round visits, in (shard, log)
	// order — globally, ascending slot order.
	s.v3Merge(round)
	s.phaseLap(&s.phases.Merge, &pt)

	// Transfer drain and redundancy evaluation: sequential, as in v1.
	if s.xfer != nil {
		s.stepTransfers(round)
	}
	s.phaseLap(&s.phases.TransferDrain, &pt)
	if s.redun != nil {
		s.stepRedundancy(round)
	}
	s.phaseLap(&s.phases.Evaluation, &pt)

	// Maintenance: parallel plan per shard against the frozen round
	// state, then sequential apply in canonical order (see
	// maintenance/plan.go for the soundness argument).
	totalActors := 0
	for i := range v3.workers {
		v3.workers[i].ws.Reset()
		totalActors += len(v3.workers[i].actors)
	}
	if totalActors > 0 {
		if s.warmWorthwhileN(totalActors) {
			s.warmCaches()
		}
		for i := 0; i < v3.n; i++ {
			w := &v3.workers[i]
			if len(w.actors) == 0 {
				continue
			}
			wg.Add(1)
			go func(w *v3Worker) {
				defer wg.Done()
				for _, id := range w.actors {
					s.maint.PlanStep(&s.v3.streams[id], id, w.ws)
				}
			}(w)
		}
		wg.Wait()
		for i := 0; i < v3.n; i++ {
			w := &v3.workers[i]
			for j := range w.ws.Results {
				pr := &w.ws.Results[j]
				res := s.maint.ApplyPlan(w.ws, pr)
				s.emitMaintOutcome(round, pr.Owner, res)
			}
		}
	}

	// Observers act after the population, sequentially on the
	// canonical stream, exactly as in v1.
	for i := range s.obsSpecs {
		id := s.observerSlot(i)
		if s.maint.LostArchive(id) {
			s.maint.ResetArchive(id)
		}
		if s.maint.WantsStep(id) {
			res := s.maint.Step(s.r, id)
			switch res.Outcome {
			case maintenance.OutcomeRepaired, maintenance.OutcomeInitialDone:
				ev := ObserverRepairEvent{Round: round, Observer: i, Name: s.obsSpecs[i].Name}
				for _, pr := range s.dispatch[evObserverRepair] {
					pr.OnObserverRepair(ev)
				}
			}
		}
	}

	// Accounting.
	end := RoundEndEvent{Round: round, Population: s.catPop}
	if s.redun != nil {
		end.MeanRedundancy = float64(s.redun.sum) / float64(s.cfg.NumPeers)
	}
	for _, pr := range s.dispatch[evRoundEnd] {
		pr.OnRoundEnd(end)
	}
	s.phaseLap(&s.phases.Maintenance, &pt)
}

// visitSlotV3 runs one walked slot's round body on its shard's worker:
// the same event structure as visitSlot, with all draws on the slot's
// own stream and all shared-state effects deferred to the worker log.
func (s *Simulation) visitSlotV3(w *v3Worker, round int64, id overlay.PeerID) {
	p := &s.peers[id]
	r := &s.v3.streams[id]
	if s.sched[id] == round {
		if s.replay != nil {
			if round >= p.catChange {
				s.promoteV3(w, p)
			}
		} else {
			if round >= p.death {
				s.replacePeerV3(w, id, p, round, r)
			} else if round >= p.catChange {
				s.promoteV3(w, p)
			}
			if round >= p.toggle {
				next := addClamped(round, churn.SessionLengthAt(s.cfg.Avail, r, p.avail, !p.online, round))
				s.setOnlineV3(w, round, id, p, !p.online)
				p.toggle = next
			}
		}
		s.rescheduleAfterVisitV3(w, id, round)
	}

	// Loss detection reads the frozen pre-walk ledger (a same-round
	// delivery or host death is observed next round — deterministic at
	// any shard count). The slot-local half of the reset runs here; the
	// ledger release, transfer aborts, redundancy reset and the event
	// go through the merge.
	if s.maint.TakeLossCheck(id) && s.maint.LostArchive(id) {
		w.entries = append(w.entries, v3Entry{kind: v3EntHardLoss, id: int32(id), prof: p.profile, cat: p.cat})
		s.maint.ResetArchiveLocal(id)
	}

	if s.maint.Armed(id) {
		if !s.maint.WantsStep(id) {
			s.maint.Disarm(id)
		} else {
			if p.online {
				w.actors = append(w.actors, id)
			}
			w.visits = append(w.visits, int32(id))
		}
	}
}

// promoteV3 is promote with the category delta on the worker.
func (s *Simulation) promoteV3(w *v3Worker, p *peer) {
	w.catDelta[p.cat]--
	p.cat++
	w.catDelta[p.cat]++
	p.catChange = addClamped(p.join, metrics.CategoryBound(p.cat))
}

// replacePeerV3 handles a departure on the worker: the slot-local
// mutations (table generation bump, maintenance reset, fresh identity)
// run inline; the ledger removal, transfer aborts, redundancy reset and
// the death/leave events become an entDeath followed by the new
// identity's entJoin.
func (s *Simulation) replacePeerV3(w *v3Worker, id overlay.PeerID, p *peer, round int64, r *rng.Rand) {
	w.entries = append(w.entries, v3Entry{kind: v3EntDeath, id: int32(id), prof: p.profile, cat: p.cat})
	w.deaths++
	w.catDelta[p.cat]--
	w.catDelta[metrics.Newcomer]++
	s.tab.Bump(id)
	// The wake hook is detached, so Reset's re-arm is slot-local; the
	// worker's own Armed check below queues the slot.
	s.maint.Reset(id)
	profile := int(p.profile)
	if s.cfg.ResampleProfileOnReplace {
		profile = -1
	}
	s.initPeerV3(w, id, round, profile, r)
}

// initPeerV3 is initPeer on the slot's own stream, with the ledger
// session write and the join/online events deferred as an entJoin. The
// draw order within the slot's stream matches initPeer draw for draw.
func (s *Simulation) initPeerV3(w *v3Worker, id overlay.PeerID, round int64, profile int, r *rng.Rand) {
	p := &s.peers[id]
	prof := profile
	if prof < 0 {
		prof = s.cfg.Profiles.SampleIndex(r)
	}
	p.profile = int32(prof)
	p.avail = s.cfg.Profiles.Profile(prof).Availability
	if s.xfer != nil {
		// The class assignment writes only the slot's own link state; the
		// old identity's aborts are already in the log and land first at
		// the merge, so reassigning before they apply is state-equivalent.
		s.xfer.sched.AssignClass(id, s.xfer.sched.Params().SampleIndex(r))
	}
	p.join = round
	p.cat = metrics.Newcomer
	p.catChange = addClamped(round, metrics.CategoryBound(metrics.Newcomer))
	life := s.cfg.Profiles.SampleLifetime(r, prof)
	p.death = addClamped(round, life)
	p.online = r.Bool(p.avail)
	// Histories are slot-owned during the walk: mutate directly, no op
	// log (the v1 sharded path's logging flag stays off under v3).
	s.hist[id].Reset()
	s.invalidateSlot(id)
	if err := s.hist[id].RecordTransition(round, p.online); err != nil {
		panic(err)
	}
	p.toggle = addClamped(round, churn.SessionLengthAt(s.cfg.Avail, r, p.avail, p.online, round))
	w.entries = append(w.entries, v3Entry{kind: v3EntJoin, id: int32(id), prof: int32(prof), online: p.online})
}

// setOnlineV3 flips the slot's session state locally and defers the
// ledger write, the churn event and the transfer suspend/resume as an
// entFlip.
func (s *Simulation) setOnlineV3(w *v3Worker, round int64, id overlay.PeerID, p *peer, online bool) {
	p.online = online
	if err := s.hist[id].RecordTransition(round, online); err != nil {
		panic(err)
	}
	s.maint.InvalidateScore(id) // the flip mutated the monitored history
	w.entries = append(w.entries, v3Entry{kind: v3EntFlip, id: int32(id), prof: p.profile, online: online})
}

// rescheduleAfterVisitV3 is rescheduleAfterVisit with the calendar push
// deferred to the merge (the bucket arena is shared across shards).
func (s *Simulation) rescheduleAfterVisitV3(w *v3Worker, id overlay.PeerID, round int64) {
	next := s.nextWake(&s.peers[id])
	if next <= round {
		next = round + 1
	}
	s.sched[id] = next
	if next < s.cfg.Rounds {
		w.cal = append(w.cal, v3CalPush{slot: int32(id), round: next})
	}
}

// v3Merge applies the round's deferred effects in canonical (shard,
// log) order — ascending slot order globally, since visits are
// partitioned ascending. Watcher crossings fired here arm slots through
// the re-installed wake hook into next round's walk (walkPos is past
// the end).
func (s *Simulation) v3Merge(round int64) {
	for i := range s.v3.workers {
		w := &s.v3.workers[i]
		s.deaths += w.deaths
		for c, d := range w.catDelta {
			s.catPop[c] += d
		}
		for _, e := range w.entries {
			s.applyV3Entry(round, e)
		}
		for _, cp := range w.cal {
			s.cal.push(cp.slot, cp.round)
		}
		for _, v := range w.visits {
			s.nextQ.push(v)
		}
	}
}

// applyV3Entry performs one logged effect's shared-state mutations and
// probe emissions, in exactly the relative order the v1 engine applies
// them in.
func (s *Simulation) applyV3Entry(round int64, e v3Entry) {
	id := overlay.PeerID(e.id)
	switch e.kind {
	case v3EntDeath:
		dead := PeerEvent{Round: round, Peer: int(e.id), Category: e.cat, Profile: int(e.prof)}
		for _, pr := range s.dispatch[evDeath] {
			pr.OnDeath(dead)
		}
		s.emitChurn(round, id, churn.EvLeave, int(e.prof))
		s.led.RemovePeer(id)
		if s.xfer != nil {
			s.xferAbortAll(round, id)
		}
		s.redunReset(id)
	case v3EntJoin:
		s.led.SetOnline(id, e.online)
		s.emitChurn(round, id, churn.EvJoin, int(e.prof))
		if e.online {
			s.emitChurn(round, id, churn.EvOnline, int(e.prof))
		} else {
			s.emitChurn(round, id, churn.EvOffline, int(e.prof))
		}
	case v3EntFlip:
		s.led.SetOnline(id, e.online)
		kind := churn.EvOffline
		if e.online {
			kind = churn.EvOnline
		}
		s.emitChurn(round, id, kind, int(e.prof))
		if s.xfer != nil {
			if e.online {
				s.xferResume(round, id)
			} else {
				s.xferSuspend(round, id)
			}
		}
	case v3EntHardLoss:
		if s.xfer != nil {
			s.xferAbortOwner(round, id)
		}
		s.led.DropOwner(id)
		s.redunReset(id)
		ev := PeerEvent{Round: round, Peer: int(e.id), Category: e.cat, Profile: int(e.prof)}
		for _, pr := range s.dispatch[evHardLoss] {
			pr.OnHardLoss(ev)
		}
	}
}

// emitMaintOutcome dispatches one maintenance step outcome to the
// probes — the shared tail of the v1 maintenance loop and the v3 apply
// loop.
func (s *Simulation) emitMaintOutcome(round int64, id overlay.PeerID, res maintenance.StepResult) {
	switch res.Outcome {
	case maintenance.OutcomeRepaired, maintenance.OutcomeInitialDone:
		re := RepairEvent{
			PeerEvent: s.peerEvent(round, id),
			Initial:   res.Outcome == maintenance.OutcomeInitialDone,
			Uploaded:  res.Uploaded,
			Dropped:   res.Dropped,
			Elapsed:   round - s.maint.EpisodeStart(id),
		}
		for _, pr := range s.dispatch[evRepair] {
			pr.OnRepair(re)
		}
	case maintenance.OutcomeStalled:
		ev := s.peerEvent(round, id)
		for _, pr := range s.dispatch[evStall] {
			pr.OnStall(ev)
		}
		if res.OutageStarted {
			for _, pr := range s.dispatch[evOutage] {
				pr.OnOutage(ev)
			}
		}
	case maintenance.OutcomeCanceled:
		s.cancels++
		ev := s.peerEvent(round, id)
		for _, pr := range s.dispatch[evCancel] {
			pr.OnCancel(ev)
		}
	}
}
