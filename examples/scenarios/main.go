// Scenarios: the workload library beyond the paper's i.i.d. churn.
//
// Three mini-campaigns, each a declarative variant list executed by the
// experiments Runner:
//
//  1. diurnal — a day/night availability cycle of increasing amplitude:
//     the population's online time concentrates into a shared day, and
//     nights become a correlated availability trough;
//  2. blackout — correlated-failure shocks (temporary blackouts,
//     a regional permanent loss, recurring ISP flaps) against the
//     shock-free baseline, with losses attributed to the shocks;
//  3. replay — one recorded churn trace driving every partner-selection
//     strategy: identical joins, departures and sessions per variant,
//     so outcome differences are the strategy's doing alone.
package main

import (
	"context"
	"fmt"
	"log"

	p2pbackup "p2pbackup"
)

// smallConfig keeps every run in the seconds range while preserving the
// paper's protocol structure.
func smallConfig() p2pbackup.SimConfig {
	cfg := p2pbackup.DefaultSimConfig()
	cfg.NumPeers = 300
	cfg.Rounds = 3000 // 125 days of hourly rounds
	cfg.TotalBlocks = 32
	cfg.DataBlocks = 16
	cfg.RepairThreshold = 20
	cfg.Quota = 96
	cfg.PoolSamplePerRound = 64
	return cfg
}

func runCampaign(c p2pbackup.Campaign) []p2pbackup.CampaignRow {
	rows, err := p2pbackup.Runner{}.Run(context.Background(), c)
	if err != nil {
		log.Fatal(err)
	}
	return rows
}

func main() {
	// 1. Diurnal amplitude sweep.
	fmt.Println("diurnal availability (day/night cycle amplitude):")
	fmt.Printf("  %-10s %8s %8s %8s\n", "variant", "repairs", "losses", "deaths")
	for _, row := range runCampaign(p2pbackup.DiurnalCampaign(smallConfig(), []float64{0, 0.4, 0.8})) {
		fmt.Printf("  %-10s %8d %8d %8d\n", row.Name,
			row.Result.Collector.TotalRepairs(), row.Result.Collector.TotalLosses(), row.Result.Deaths)
	}

	// 2. Correlated-failure scenarios.
	fmt.Println("\ncorrelated failures (shocks vs baseline):")
	fmt.Printf("  %-18s %8s %8s %7s %12s\n", "variant", "repairs", "losses", "shocks", "shock-losses")
	for _, row := range runCampaign(p2pbackup.BlackoutCampaign(smallConfig())) {
		col := row.Result.Collector
		fmt.Printf("  %-18s %8d %8d %7d %12d\n", row.Name,
			col.TotalRepairs(), col.TotalLosses(), col.TotalShocks(), col.ShockAttributedLosses())
	}

	// 3. Trace replay: record one run's churn, then drive every
	// selection strategy through the identical churn sequence.
	rec := smallConfig()
	rec.RecordTrace = true
	res, err := p2pbackup.RunSimulation(rec)
	if err != nil {
		log.Fatal(err)
	}
	trace := res.Trace
	fmt.Printf("\ntrace replay (%d churn events, %d departures, every strategy on the same churn):\n",
		len(trace.Events), res.Deaths)
	fmt.Printf("  %-22s %8s %8s %8s\n", "strategy", "repairs", "losses", "deaths")
	for _, row := range runCampaign(p2pbackup.ReplayCampaign(smallConfig(), trace)) {
		fmt.Printf("  %-22s %8d %8d %8d\n", row.Name,
			row.Result.Collector.TotalRepairs(), row.Result.Collector.TotalLosses(), row.Result.Deaths)
	}
	fmt.Println("\nidentical deaths per strategy = identical churn; the repair and")
	fmt.Println("loss columns isolate what partner selection alone contributes.")
}
