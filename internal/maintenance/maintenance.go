// Package maintenance implements the paper's simulated protocol
// (section 3.2): per-peer archive maintenance as a small state machine.
//
// Each peer owns one archive of n = k+m erasure-coded blocks, one block
// per partner. Every round the peer monitors its partners; when the
// number of visible blocks falls below the repair threshold k', it
// starts a repair:
//
//  1. Triggered: gather candidate partners (mutual acceptance through
//     the selection strategy, bounded sampling per round) and wait until
//     at least k blocks are visible so the archive can be decoded. If
//     visibility recovers above the threshold first, the repair is
//     cancelled (configurable).
//  2. Decode point: the peer downloads k blocks, re-encodes, and writes
//     off the partners it considers gone - dead ones always, currently
//     offline ones optionally (the paper's departure time-threshold,
//     collapsed to the decode instant).
//  3. Uploading: replacement blocks are pushed incrementally, each round
//     to the best-ranked currently-online pool members, until the
//     archive is back to n placed blocks. The paper is explicit that
//     this phase need not fit in one round: "the upload of generated
//     blocks can be done later as new partners become available".
//
// The initial upload is the Uploading phase with d = n ("seen as a
// repair where d = 256"); a peer is not included in the network until
// it completes. An archive is lost when fewer than k blocks survive on
// living peers.
//
// The Maintainer operates on the overlay.Ledger and is driven by the
// simulation engine, which decides which peers act each round and in
// what order. It is not safe for concurrent use.
//
// Paper mapping (in the style of internal/selection):
//
//	§2.2.2 "maintenance"        Step, the monitor→repair transition
//	§2.2.3 repair threshold k'  Params.RepairThreshold (trigger: visible < k')
//	§2.2.4 bandwidth bound      Params.UploadBudgetPerRound (d≈128 blocks ≈ 1 round on DSL)
//	§3.2   simulated protocol   the state machine (stateIdle → stateTriggered → stateUploading)
//	§3.2   "d = 256" initial    the Uploading phase entered with d = n at join
//	§5     future work: delay   Params.RepairDelay (+ CancelOnRecover)
//
// An archive is "lost" (the figures' metric) when visible blocks drop
// below k — a decode outage; it is *permanently* lost when fewer than
// k blocks survive on living peers.
package maintenance

import (
	"fmt"

	"p2pbackup/internal/overlay"
	"p2pbackup/internal/rng"
	"p2pbackup/internal/selection"
)

// Params configures the maintenance protocol.
type Params struct {
	// TotalBlocks is n, the blocks per archive (paper: 256).
	TotalBlocks int
	// DataBlocks is k, the blocks needed to decode (paper: 128).
	DataBlocks int
	// RepairThreshold is k': repair when visible blocks drop below it
	// (paper: varied 132-180, focus 148).
	RepairThreshold int
	// PoolSamplePerRound bounds candidate probing per repairing peer
	// per round.
	PoolSamplePerRound int
	// DropOffline controls whether the decode point writes off
	// currently offline partners (default in the paper reproduction:
	// true). When false, only dead partners are replaced.
	DropOffline bool
	// UploadBudgetPerRound caps how many blocks a peer can push per
	// round, modelling the asymmetric-link bound of the paper's section
	// 2.2.4 (a worst-case repair of ~128 blocks fills roughly one
	// round). 0 means unlimited.
	UploadBudgetPerRound int
	// CancelOnRecover aborts a repair that has not yet decoded if the
	// visible count climbs back to the threshold.
	CancelOnRecover bool
	// RepairDelay makes a triggered repair wait this many owner-online
	// rounds before its decode point, giving temporarily offline
	// partners time to return (the paper's future-work item: "delaying
	// the repair to allow peers to come back in the system"). Most
	// effective together with CancelOnRecover. 0 = repair immediately.
	RepairDelay int
}

// Validate checks parameter consistency.
func (p Params) Validate() error {
	if p.DataBlocks < 1 {
		return fmt.Errorf("maintenance: k = %d must be >= 1", p.DataBlocks)
	}
	if p.TotalBlocks <= p.DataBlocks {
		return fmt.Errorf("maintenance: n = %d must exceed k = %d", p.TotalBlocks, p.DataBlocks)
	}
	if p.RepairThreshold < p.DataBlocks || p.RepairThreshold > p.TotalBlocks {
		return fmt.Errorf("maintenance: threshold %d outside [k=%d, n=%d]",
			p.RepairThreshold, p.DataBlocks, p.TotalBlocks)
	}
	if p.PoolSamplePerRound < 1 {
		return fmt.Errorf("maintenance: pool sample %d must be >= 1", p.PoolSamplePerRound)
	}
	if p.UploadBudgetPerRound < 0 {
		return fmt.Errorf("maintenance: upload budget %d must be >= 0", p.UploadBudgetPerRound)
	}
	if p.RepairDelay < 0 {
		return fmt.Errorf("maintenance: repair delay %d must be >= 0", p.RepairDelay)
	}
	return nil
}

// Outcome reports what a Step accomplished.
type Outcome uint8

// Step outcomes.
const (
	// OutcomeNone: nothing notable (pool building or uploading
	// continues).
	OutcomeNone Outcome = iota
	// OutcomeRepaired: a maintenance repair episode completed (the
	// archive is back to n placed blocks).
	OutcomeRepaired
	// OutcomeInitialDone: the initial (or post-loss) full upload
	// completed; the peer is now included.
	OutcomeInitialDone
	// OutcomeStalled: repair needed but fewer than k blocks visible, so
	// the archive cannot be decoded this round.
	OutcomeStalled
	// OutcomeCanceled: visibility recovered above the threshold before
	// the decode point; the repair was abandoned.
	OutcomeCanceled
)

var outcomeNames = [...]string{"none", "repaired", "initial-done", "stalled", "canceled"}

func (o Outcome) String() string {
	if int(o) < len(outcomeNames) {
		return outcomeNames[o]
	}
	return fmt.Sprintf("Outcome(%d)", uint8(o))
}

// StepResult carries a step's outcome and its traffic accounting.
// Uploaded and Dropped are reported on the step that finishes an
// episode and cover the whole episode.
type StepResult struct {
	Outcome  Outcome
	Uploaded int // blocks uploaded during the episode
	Dropped  int // placements written off at the decode point
	// OutageStarted marks the first stalled round of a decode outage:
	// the archive just became unrecoverable from currently online peers
	// (visible < k). This is the event the paper counts as a lost
	// archive ("even if the disconnections were temporary"); whether it
	// becomes a PERMANENT loss (alive < k) is tracked separately by
	// LostArchive.
	OutageStarted bool
}

// Env supplies the Maintainer with information owned by the simulation
// engine: peer views for the selection policy, candidate sampling, and
// the current round.
type Env interface {
	// View describes a peer for the selection policy, split into
	// observable and oracle knowledge.
	View(id overlay.PeerID) selection.View
	// SampleCandidate draws a random potential partner, or NoPeer if
	// none can be drawn.
	SampleCandidate(r *rng.Rand) overlay.PeerID
	// Round returns the current round, the "now" of windowed
	// availability queries.
	Round() int64
}

// Transfers is the bandwidth-scheduling hook (PR 6): when installed
// via SetTransfers, stepUpload enqueues block transfers instead of
// placing instantly, and the engine lands them later through
// DeliverUpload. The implementation (the simulation engine's transfer
// scheduler) owns all timing; the Maintainer only respects the
// concurrency cap and the quota reservations of in-flight uploads.
type Transfers interface {
	// BeginUpload schedules one block from owner to the host behind
	// ref. The caller has already validated quota (net of Reserved)
	// and the owner's UploadSlots headroom.
	BeginUpload(owner overlay.PeerID, host overlay.Ref)
	// Inflight returns the owner's outstanding outgoing upload count.
	Inflight(owner overlay.PeerID) int
	// UploadSlots returns how many more uploads the owner may start
	// now under its bandwidth class's concurrency cap.
	UploadSlots(owner overlay.PeerID) int
	// Reserved returns the host quota units reserved by in-flight
	// uploads toward the peer.
	Reserved(host overlay.PeerID) int
	// PendingHosts appends the hosts of the owner's in-flight uploads
	// to buf (partners that must not be double-booked).
	PendingHosts(owner overlay.PeerID, buf []overlay.PeerID) []overlay.PeerID
}

// Redundancy supplies per-archive redundancy targets: when the engine
// runs an adaptive redundancy policy, an archive's desired block count
// n(t) and repair trigger deviate from the global Params. The hook is
// consulted only on the owner-specific paths (deficits, triggers,
// completion checks); the ledger watcher and WantsStep keep the global
// — and always ≥ per-archive — thresholds, so a below-trigger adaptive
// archive is found by the same arm-and-poll machinery as a fixed one.
// A nil hook (the default) is the historical fixed behaviour.
type Redundancy interface {
	// TargetBlocks returns the archive's current target block count
	// n(t), in [DataBlocks, TotalBlocks].
	TargetBlocks(owner overlay.PeerID) int
	// RepairThreshold returns the archive's effective repair trigger,
	// in [DataBlocks, TargetBlocks].
	RepairThreshold(owner overlay.PeerID) int
}

// state is the per-archive protocol state.
type state uint8

const (
	stateIdle      state = iota // healthy included archive
	stateTriggered              // below threshold, not yet decoded
	stateUploading              // decoded (or initial), pushing blocks
)

// poolEntry is an accepted candidate waiting to receive a block.
// placeable is a per-step scratch flag: stepUpload computes each
// entry's eligibility once per step, so the per-placement max-score
// scans are pure slice walks.
type poolEntry struct {
	ref       overlay.Ref
	score     float64
	placeable bool
}

// peerState is the per-slot maintenance state.
type peerState struct {
	included  bool
	unmetered bool
	outage    bool // inside a decode outage (visible < k observed)
	armed     bool // member of the active (dirty) set
	lossCheck bool // pending archive-loss check (alive crossed below k)
	st        state
	waited    int   // owner-online rounds spent in Triggered (RepairDelay)
	uploaded  int   // blocks placed in the current episode
	dropped   int   // placements written off at the decode point
	epStart   int64 // round the current repair episode triggered
	pool      []poolEntry
	inPool    map[overlay.PeerID]uint32 // id -> gen, for dedup
}

// Maintainer runs the maintenance protocol for every slot.
//
// The Maintainer keeps an incrementally maintained "active set": the
// slots that may have maintenance work (initial upload pending, a
// repair episode in flight, or visible blocks below the repair
// threshold). It registers itself as the ledger's Watcher, so a peer
// whose visible count crosses below the threshold — or whose archive
// enters loss territory — is armed (or flagged for a loss check) at
// the moment the crossing happens, with no per-round polling. The
// engine drives the set through Armed/Disarm/TakeLossCheck and learns
// about new members through the SetWake hook; WantsStep remains as the
// authoritative per-peer predicate the engine re-checks on every visit
// (and tests poll directly).
type Maintainer struct {
	params Params
	led    *overlay.Ledger
	tab    *overlay.Table
	pol    selection.Policy
	env    Env
	peers  []peerState
	wake   func(overlay.PeerID)
	xfer   Transfers  // nil: the historical instant-placement path
	rd     Redundancy // nil: fixed per-run redundancy (the paper)

	// Partner-mark epochs: refreshPool stamps the acting owner's
	// current partners into a per-slot epoch array, turning the former
	// O(owner degree) Ledger.HasPlacement scan — the dominant cost of a
	// churn round — into one array compare per check. A fresh epoch per
	// refreshPool call invalidates all previous marks at once; place
	// refreshes the mark when a block lands so the same step's later
	// eligibility checks see the new partner. The marks track partners
	// only — pool membership is deduplicated by each slot's inPool map.
	markEpoch   uint64
	partnerMark []uint64
	hostBuf     []overlay.PeerID // scratch for Ledger.Hosts

	// Score memo, enabled by the engine (EnableScoreCache): pure policy
	// scores are cached per (slot, round) so a candidate probed by many
	// repairing peers in one round is scored once. The engine
	// invalidates a slot on session flips and occupant replacement.
	scoreVal []float64
	scoreKey []int64 // round+1 of the cached value; 0 = invalid
}

// New returns a Maintainer over the ledger's slots. It panics on
// invalid params (programmer error; validate user input with
// Params.Validate first). Legacy selection.Strategy values are lifted
// with selection.Adapt before being passed here.
//
// New registers the Maintainer as the ledger's Watcher (thresholds:
// RepairThreshold for visibility, DataBlocks for archive loss) and
// arms every slot: all peers start with an initial upload pending.
func New(params Params, led *overlay.Ledger, tab *overlay.Table, pol selection.Policy, env Env) *Maintainer {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if led.NumPeers() != tab.Len() {
		panic("maintenance: ledger and table sizes differ")
	}
	m := &Maintainer{
		params:      params,
		led:         led,
		tab:         tab,
		pol:         pol,
		env:         env,
		peers:       make([]peerState, led.NumPeers()),
		partnerMark: make([]uint64, led.NumPeers()),
	}
	for i := range m.peers {
		m.peers[i].armed = true
	}
	led.Watch(m, int32(params.RepairThreshold), int32(params.DataBlocks))
	return m
}

// SetWake installs the hook called whenever a slot is armed or flagged
// for a loss check. The engine uses it to schedule a visit to the slot;
// a nil hook (the default) leaves the flags purely pull-based, which is
// what unit tests use.
func (m *Maintainer) SetWake(f func(overlay.PeerID)) { m.wake = f }

// SetTransfers installs the bandwidth scheduler: metered peers stop
// placing blocks instantly and enqueue transfers instead, completed
// later by the engine through DeliverUpload. Unmetered (observer)
// slots keep the instant path — they are instrumentation, not modelled
// links. A nil scheduler (the default) is the historical instant mode,
// byte-identical to the pre-transfer engine.
func (m *Maintainer) SetTransfers(t Transfers) { m.xfer = t }

// SetRedundancy installs the per-archive redundancy hook. With the hook
// set, every owner-specific target and trigger resolves through it; the
// global Params remain the ceiling the ledger reservation and watcher
// thresholds were sized for.
func (m *Maintainer) SetRedundancy(rd Redundancy) { m.rd = rd }

// targetBlocks returns the archive's desired block count: the global n
// without a redundancy hook, the policy's n(t) with one.
func (m *Maintainer) targetBlocks(id overlay.PeerID) int {
	if m.rd == nil {
		return m.params.TotalBlocks
	}
	return m.rd.TargetBlocks(id)
}

// threshold returns the archive's repair trigger: the global k' without
// a redundancy hook, the policy's effective threshold with one.
func (m *Maintainer) threshold(id overlay.PeerID) int {
	if m.rd == nil {
		return m.params.RepairThreshold
	}
	return m.rd.RepairThreshold(id)
}

// GrowArchive starts an upload episode that raises an idle, included
// archive to its (just raised) target block count: the ordinary upload
// machinery — candidate pools, quota, the transfer scheduler when one
// is installed — places the extra parity blocks, and the episode
// completes through the usual OutcomeRepaired path. It reports whether
// an episode was started; archives mid-repair or awaiting their initial
// upload already converge to the new target on their own.
func (m *Maintainer) GrowArchive(id overlay.PeerID) bool {
	p := &m.peers[id]
	if !p.included || p.st != stateIdle {
		return false
	}
	p.st = stateUploading
	p.epStart = m.env.Round()
	m.Arm(id)
	return true
}

// EnableScoreCache turns on the per-(slot, round) score memo. It is a
// no-op unless the policy declares a pure Score (selection.HasPureScore)
// — a stateful custom policy must be re-evaluated on every call. The
// caller owning the environment must invalidate a slot (InvalidateScore)
// whenever something a pure Score may read changes mid-round: a session
// flip mutating the slot's monitored history, or an occupant
// replacement. The simulation engine enables the cache at construction
// and drives both invalidations from its churn paths.
func (m *Maintainer) EnableScoreCache() {
	if !selection.HasPureScore(m.pol) {
		return
	}
	m.scoreVal = make([]float64, m.led.NumPeers())
	m.scoreKey = make([]int64, m.led.NumPeers())
}

// InvalidateScore drops the cached score for one slot. Cheap enough to
// call unconditionally on every session flip.
func (m *Maintainer) InvalidateScore(id overlay.PeerID) {
	if m.scoreKey != nil {
		m.scoreKey[id] = 0
	}
}

// WarmScoreRange precomputes the per-round score memo for the slots in
// [from, to), reading each slot's view through the supplied accessor.
// A no-op when the score cache is disabled (stateful policies must be
// re-evaluated per call and cannot be warmed).
//
// Concurrency contract: the simulation engine's sharded warm phase
// calls WarmScoreRange from one goroutine per disjoint slot range, so
// the method writes only the memo entries of its own range and the
// policy's Score must be safe for concurrent calls — guaranteed for
// policies declaring selection.HasPureScore (purity is what enabled
// the cache in the first place), which is the only case the memo
// exists for. Warming computes exactly the values the lazy scoreOf
// misses would, so it never changes a trajectory.
func (m *Maintainer) WarmScoreRange(ctx selection.Context, from, to overlay.PeerID, view func(overlay.PeerID) selection.View) {
	if m.scoreKey == nil {
		return
	}
	key := ctx.Round + 1
	for c := from; c < to; c++ {
		if m.scoreKey[c] == key {
			continue
		}
		m.scoreVal[c] = m.pol.Score(ctx, view(c))
		m.scoreKey[c] = key
	}
}

// scoreOf returns the policy score of candidate c with view v, through
// the (slot, round) memo when enabled.
func (m *Maintainer) scoreOf(ctx selection.Context, c overlay.PeerID, v selection.View) float64 {
	if m.scoreKey == nil {
		return m.pol.Score(ctx, v)
	}
	key := ctx.Round + 1
	if m.scoreKey[c] == key {
		return m.scoreVal[c]
	}
	s := m.pol.Score(ctx, v)
	m.scoreKey[c] = key
	m.scoreVal[c] = s
	return s
}

// VisibleBelow implements overlay.Watcher: a peer whose visible blocks
// crossed below the repair threshold has maintenance work.
func (m *Maintainer) VisibleBelow(owner overlay.PeerID) { m.Arm(owner) }

// AliveBelow implements overlay.Watcher: a peer whose alive blocks
// crossed below k needs an archive-loss check. Only included peers can
// lose an archive; crossings on slots mid-upload are ignored.
func (m *Maintainer) AliveBelow(owner overlay.PeerID) {
	p := &m.peers[owner]
	if !p.included || p.lossCheck {
		return
	}
	p.lossCheck = true
	if m.wake != nil {
		m.wake(owner)
	}
}

// Arm adds a slot to the active set and wakes the engine. Arming an
// already-armed slot is a no-op.
func (m *Maintainer) Arm(id overlay.PeerID) {
	p := &m.peers[id]
	if p.armed {
		return
	}
	p.armed = true
	if m.wake != nil {
		m.wake(id)
	}
}

// Armed reports whether the slot is in the active set.
func (m *Maintainer) Armed(id overlay.PeerID) bool { return m.peers[id].armed }

// Disarm removes a slot from the active set. The engine calls it when a
// visit finds WantsStep false; the slot re-arms on the next threshold
// crossing (or Reset/ResetArchive).
func (m *Maintainer) Disarm(id overlay.PeerID) { m.peers[id].armed = false }

// TakeLossCheck consumes the slot's pending loss-check flag, reporting
// whether one was set. The flag is a candidate marker, not a verdict:
// the caller must still confirm with LostArchive.
func (m *Maintainer) TakeLossCheck(id overlay.PeerID) bool {
	p := &m.peers[id]
	was := p.lossCheck
	p.lossCheck = false
	return was
}

// Params returns the protocol parameters.
func (m *Maintainer) Params() Params { return m.params }

// Included reports whether the peer completed its initial upload.
func (m *Maintainer) Included(id overlay.PeerID) bool { return m.peers[id].included }

// Repairing reports whether the peer has a repair episode in flight.
func (m *Maintainer) Repairing(id overlay.PeerID) bool { return m.peers[id].st != stateIdle }

// EpisodeStart returns the round the peer's current (or, until the next
// episode begins, most recent) episode started: the trigger round for a
// repair, the first acting round for an initial upload. The engine
// reads it when an episode completes to report its elapsed time.
func (m *Maintainer) EpisodeStart(id overlay.PeerID) int64 { return m.peers[id].epStart }

// PoolSize returns the current candidate pool size (tests/diagnostics).
func (m *Maintainer) PoolSize(id overlay.PeerID) int { return len(m.peers[id].pool) }

// SetUnmetered marks a slot as quota-exempt (observer peers).
func (m *Maintainer) SetUnmetered(id overlay.PeerID, v bool) { m.peers[id].unmetered = v }

// Reset returns a slot to the fresh state (used when a peer dies and
// the slot is reused). The caller is responsible for the ledger-side
// cleanup (RemovePeer). The unmetered flag persists: it is a property
// of the slot. Pool capacity is kept — the replacement occupant's first
// episode reuses it allocation-free.
func (m *Maintainer) Reset(id overlay.PeerID) {
	p := &m.peers[id]
	p.included = false
	p.outage = false
	p.lossCheck = false // any pending check belonged to the old occupant
	p.st = stateIdle
	p.waited = 0
	p.uploaded = 0
	p.dropped = 0
	p.pool = p.pool[:0]
	clear(p.inPool)
	m.Arm(id) // the fresh occupant has an initial upload pending
}

// LostArchive reports whether an included peer's archive has become
// unrecoverable: fewer than k blocks on living hosts.
func (m *Maintainer) LostArchive(id overlay.PeerID) bool {
	return m.peers[id].included && m.led.Alive(id) < m.params.DataBlocks
}

// ResetArchive abandons a lost archive: surviving (useless) placements
// are released and the peer re-enters the initial-upload flow with a
// freshly encoded archive.
func (m *Maintainer) ResetArchive(id overlay.PeerID) {
	m.led.DropOwner(id)
	p := &m.peers[id]
	p.included = false
	p.outage = false
	p.lossCheck = false
	p.st = stateIdle
	p.waited = 0
	p.uploaded = 0
	p.dropped = 0
	p.pool = p.pool[:0]
	clear(p.inPool)
	m.Arm(id) // the re-encoded archive needs a full upload
}

// WantsStep reports whether the peer has maintenance work this round
// (assuming its owner is online; the engine checks that). It is the
// authoritative per-peer predicate: the engine re-checks it on every
// visit to an armed slot (the active set is a superset of the peers
// that truly want work), and tests poll it directly.
func (m *Maintainer) WantsStep(id overlay.PeerID) bool {
	p := &m.peers[id]
	if !p.included || p.st != stateIdle {
		return true
	}
	return m.led.Visible(id) < m.params.RepairThreshold
}

// Step runs one round of maintenance for an online peer.
func (m *Maintainer) Step(r *rng.Rand, id overlay.PeerID) StepResult {
	p := &m.peers[id]
	if !p.included {
		// Initial (or post-loss) upload: straight to Uploading.
		if p.st == stateIdle {
			p.epStart = m.env.Round()
		}
		p.st = stateUploading
		return m.stepUpload(r, id, p)
	}
	switch p.st {
	case stateIdle:
		if m.led.Visible(id) >= m.threshold(id) {
			return StepResult{Outcome: OutcomeNone}
		}
		p.st = stateTriggered
		p.epStart = m.env.Round()
		fallthrough
	case stateTriggered:
		return m.stepTriggered(r, id, p)
	case stateUploading:
		return m.stepUpload(r, id, p)
	default:
		panic(fmt.Sprintf("maintenance: bad state %d", p.st))
	}
}

// stepTriggered gathers candidates while waiting for the decode point.
func (m *Maintainer) stepTriggered(r *rng.Rand, id overlay.PeerID, p *peerState) StepResult {
	visible := m.led.Visible(id)
	if m.params.CancelOnRecover && visible >= m.threshold(id) {
		m.finishEpisode(p)
		return StepResult{Outcome: OutcomeCanceled}
	}
	// Candidate gathering continues even while stalled; partners found
	// now shorten the upload phase.
	m.refreshPool(r, id, p)
	if visible < m.params.DataBlocks {
		res := StepResult{Outcome: OutcomeStalled}
		if !p.outage {
			p.outage = true
			res.OutageStarted = true
		}
		return res
	}
	p.outage = false // decodable again; any new outage is a fresh event
	if p.waited < m.params.RepairDelay {
		// Deliberately hold the repair: partners may come back, letting
		// CancelOnRecover avoid the whole episode.
		p.waited++
		return StepResult{Outcome: OutcomeNone}
	}
	// Decode point: download k blocks, re-encode, write off partners
	// considered gone.
	if m.params.DropOffline {
		for i := m.led.Alive(id) - 1; i >= 0; i-- {
			host, err := m.led.HostAt(id, i)
			if err != nil {
				panic(err) // ledger indexes are engine-controlled
			}
			if !m.led.Online(host) {
				if err := m.led.DropPlacementAt(id, i); err != nil {
					panic(err)
				}
				p.dropped++
			}
		}
	}
	if m.led.Alive(id) >= m.targetBlocks(id) {
		// Nothing to upload (possible with DropOffline=false when only
		// offline partners pushed us under the threshold).
		m.finishEpisode(p)
		return StepResult{Outcome: OutcomeCanceled}
	}
	p.st = stateUploading
	return m.stepUpload(r, id, p)
}

// freeQuota returns the host quota available for a new placement or
// transfer reservation toward c: the ledger's free quota net of units
// already promised to in-flight uploads. Without a transfer scheduler
// it is exactly Ledger.FreeQuota.
func (m *Maintainer) freeQuota(c overlay.PeerID) int {
	free := m.led.FreeQuota(c)
	if m.xfer != nil {
		free -= m.xfer.Reserved(c)
	}
	return free
}

// stepUpload pushes blocks to the best-ranked online pool members until
// the archive holds n placed blocks.
func (m *Maintainer) stepUpload(r *rng.Rand, id overlay.PeerID, p *peerState) StepResult {
	m.refreshPool(r, id, p)
	if m.xfer != nil && !p.unmetered {
		return m.stepUploadTransfers(id, p)
	}
	// Compute each pool entry's eligibility once: within this step the
	// owner is the only actor, so liveness, session state and quota of
	// non-partner pool members cannot change — only hosts the owner
	// places on do, and those leave the pool (and gain a partner mark)
	// at that moment. takeBestPlaceable's per-placement scans then read
	// one precomputed flag per entry instead of four ledger lookups.
	for i := range p.pool {
		e := &p.pool[i]
		e.placeable = m.tab.Current(e.ref) &&
			m.led.Online(e.ref.ID) &&
			(p.unmetered || m.freeQuota(e.ref.ID) >= 1) &&
			m.partnerMark[e.ref.ID] != m.markEpoch
	}
	deficit := m.targetBlocks(id) - m.led.Alive(id)
	budget := m.params.UploadBudgetPerRound
	if budget <= 0 {
		budget = deficit // unlimited
	}
	for deficit > 0 && budget > 0 {
		best := m.takeBestPlaceable(id, p)
		if best == overlay.NoPeer {
			break
		}
		m.place(id, p, best)
		p.uploaded++
		deficit--
		budget--
	}
	if deficit > 0 {
		return StepResult{Outcome: OutcomeNone} // keep going next round
	}
	res := StepResult{Uploaded: p.uploaded, Dropped: p.dropped}
	if p.included {
		res.Outcome = OutcomeRepaired
	} else {
		res.Outcome = OutcomeInitialDone
		p.included = true
	}
	m.finishEpisode(p)
	return res
}

// stepUploadTransfers is stepUpload's bandwidth-scheduled body: instead
// of placing blocks it enqueues transfers to the best-ranked placeable
// pool members, bounded by the remaining deficit (net of blocks already
// on the wire) and the class's concurrency headroom. The episode
// completes when the engine lands the last block through DeliverUpload,
// never here, so the step outcome is always OutcomeNone.
func (m *Maintainer) stepUploadTransfers(id overlay.PeerID, p *peerState) StepResult {
	for i := range p.pool {
		e := &p.pool[i]
		e.placeable = m.tab.Current(e.ref) &&
			m.led.Online(e.ref.ID) &&
			m.freeQuota(e.ref.ID) >= 1 &&
			m.partnerMark[e.ref.ID] != m.markEpoch
	}
	deficit := m.targetBlocks(id) - m.led.Alive(id) - m.xfer.Inflight(id)
	slots := m.xfer.UploadSlots(id)
	for deficit > 0 && slots > 0 {
		best := m.takeBestPlaceable(id, p)
		if best == overlay.NoPeer {
			break
		}
		m.xfer.BeginUpload(id, m.tab.Ref(best))
		// The host holds a reservation now; later picks in this step
		// must see it as booked.
		m.partnerMark[best] = m.markEpoch
		deficit--
		slots--
	}
	return StepResult{Outcome: OutcomeNone}
}

// DeliverUpload lands one in-flight block from owner on host: the
// engine calls it when a transfer completes (after the scheduler
// released its quota reservation, so the placement must succeed). It
// returns the episode's StepResult and true when this delivery finished
// the episode — the engine reports the repair there; mid-episode
// deliveries return false.
func (m *Maintainer) DeliverUpload(owner, host overlay.PeerID) (StepResult, bool) {
	p := &m.peers[owner]
	if p.st != stateUploading {
		// Transfers exist only for uploading owners, and the engine
		// aborts them when the owner dies or resets; a delivery in any
		// other state is a stale transfer that escaped its abort hook.
		panic(fmt.Sprintf("maintenance: delivery for peer %d in state %d", owner, p.st))
	}
	if err := m.led.Place(owner, host); err != nil {
		panic(fmt.Sprintf("maintenance: delivery %d->%d failed: %v", owner, host, err))
	}
	p.uploaded++
	if m.led.Alive(owner) < m.targetBlocks(owner) {
		return StepResult{}, false
	}
	res := StepResult{Uploaded: p.uploaded, Dropped: p.dropped}
	if p.included {
		res.Outcome = OutcomeRepaired
	} else {
		res.Outcome = OutcomeInitialDone
		p.included = true
	}
	m.finishEpisode(p)
	return res, true
}

// finishEpisode clears episode state and releases the pool.
func (m *Maintainer) finishEpisode(p *peerState) {
	p.st = stateIdle
	p.waited = 0
	p.uploaded = 0
	p.dropped = 0
	p.pool = p.pool[:0]
	clear(p.inPool)
}

func (m *Maintainer) place(owner overlay.PeerID, p *peerState, host overlay.PeerID) {
	var err error
	if p.unmetered {
		err = m.led.PlaceUnmetered(owner, host)
	} else {
		err = m.led.Place(owner, host)
	}
	if err != nil {
		// takeBestPlaceable validated quota and liveness within this
		// same single-threaded step; failure is a bug.
		panic(fmt.Sprintf("maintenance: placement %d->%d failed: %v", owner, host, err))
	}
	// The host is a partner now; later placements in the same step must
	// see it through the current mark epoch.
	m.partnerMark[host] = m.markEpoch
}

// refreshPool prunes dead/ineligible entries and samples new candidates
// up to the per-round budget. Offline candidates are NOT pruned: they
// agreed to the partnership and become placeable when they return.
//
// It opens a fresh partner-mark epoch for the acting owner: the owner's
// current partners are stamped once (O(degree)), and every subsequent
// "is this peer already a partner" check here and in takeBestPlaceable
// is one array compare — replacing the O(degree) HasPlacement scan per
// candidate that used to dominate churn-round profiles, with identical
// outcomes (and therefore identical rng draw order).
func (m *Maintainer) refreshPool(r *rng.Rand, id overlay.PeerID, p *peerState) {
	m.markEpoch++
	epoch := m.markEpoch
	m.hostBuf = m.led.Hosts(id, m.hostBuf[:0])
	for _, h := range m.hostBuf {
		m.partnerMark[h] = epoch
	}
	if m.xfer != nil && !p.unmetered {
		// Hosts of in-flight uploads are partners-to-be: they hold a
		// quota reservation and must not be booked a second time while
		// the first block is still on the wire.
		m.hostBuf = m.xfer.PendingHosts(id, m.hostBuf[:0])
		for _, h := range m.hostBuf {
			m.partnerMark[h] = epoch
		}
	}

	// Prune entries that can never be used again.
	valid := p.pool[:0]
	for _, e := range p.pool {
		if !m.tab.Current(e.ref) || m.partnerMark[e.ref.ID] == epoch {
			delete(p.inPool, e.ref.ID)
			continue
		}
		valid = append(valid, e)
	}
	p.pool = valid

	if len(p.pool) >= m.params.TotalBlocks {
		return // pool is as large as any conceivable deficit
	}
	if cap(p.pool) < m.params.TotalBlocks {
		// One-shot full-capacity allocation: a pool never holds more
		// than TotalBlocks entries, the capacity survives episode resets
		// and occupant replacement, so every slot pays this once —
		// incremental append growth would instead realloc a handful of
		// times per slot, spread over the whole run.
		np := make([]poolEntry, len(p.pool), m.params.TotalBlocks)
		copy(np, p.pool)
		p.pool = np
	}
	if p.inPool == nil {
		// Sized to the pool's hard cap so steady-state assigns never
		// grow the table (the dedup map lives as long as the slot).
		p.inPool = make(map[overlay.PeerID]uint32, m.params.TotalBlocks)
	}
	ctx := selection.Context{Round: m.env.Round()}
	ownerView := m.env.View(id)
	for tries := 0; tries < m.params.PoolSamplePerRound && len(p.pool) < m.params.TotalBlocks; tries++ {
		c := m.env.SampleCandidate(r)
		if c == overlay.NoPeer || c == id {
			continue
		}
		if !m.led.Online(c) {
			continue // cannot negotiate with an offline peer
		}
		if gen, ok := p.inPool[c]; ok && gen == m.tab.Gen(c) {
			continue // already pooled
		}
		if !p.unmetered && m.freeQuota(c) < 1 {
			continue
		}
		if m.partnerMark[c] == epoch {
			continue // one block per partner per archive
		}
		candView := m.env.View(c)
		if !selection.AgreeCtx(r, m.pol, ctx, ownerView, candView) {
			continue
		}
		p.inPool[c] = m.tab.Gen(c)
		p.pool = append(p.pool, poolEntry{ref: m.tab.Ref(c), score: m.scoreOf(ctx, c, candView)})
	}
}

// takeBestPlaceable removes and returns the highest-scored pool entry
// that can receive a block right now (alive, online, quota available,
// not yet a partner), or NoPeer if none qualifies. Eligibility comes
// from the placeable flags stepUpload — its sole caller — precomputed
// for this step; the tie-breaking scan order (first entry in current
// pool order wins among equal scores, swap-remove on take) is
// load-bearing for reproducibility and must not change.
func (m *Maintainer) takeBestPlaceable(id overlay.PeerID, p *peerState) overlay.PeerID {
	bestIdx := -1
	best := 0.0
	for i := range p.pool {
		e := &p.pool[i]
		if !e.placeable {
			continue
		}
		if bestIdx == -1 || e.score > best {
			bestIdx = i
			best = e.score
		}
	}
	if bestIdx == -1 {
		return overlay.NoPeer
	}
	chosen := p.pool[bestIdx].ref.ID
	last := len(p.pool) - 1
	p.pool[bestIdx] = p.pool[last]
	p.pool = p.pool[:last]
	delete(p.inPool, chosen)
	return chosen
}
