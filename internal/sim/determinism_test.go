package sim

import (
	"hash/fnv"
	"testing"

	"p2pbackup/internal/churn"
)

// The digests below were captured by running the pre-refactor engine
// (the per-round full-population scan, commit a5c3969) on the scenario
// configs in this file. The event-driven core — calendar-queue
// scheduler plus incrementally maintained active sets — must reproduce
// the exact probe event stream of the scan engine: every churn event,
// repair, outage, loss, stall, cancel, shock and round-end, field for
// field, in emission order. A digest mismatch means the refactor
// changed a simulated trajectory, not just the engine's cost profile.

// digestProbe folds every probe event (kind tag plus all fields, in
// emission order) into an FNV-1a hash.
type digestProbe struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func newDigestProbe() *digestProbe { return &digestProbe{h: fnv.New64a()} }

func (d *digestProbe) mix(vals ...int64) {
	var buf [8]byte
	for _, v := range vals {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(u >> (8 * i))
		}
		d.h.Write(buf[:])
	}
}

func (d *digestProbe) OnChurn(e ChurnEvent) {
	d.mix(1, e.Round, int64(e.Peer), int64(e.Kind), int64(e.Profile))
}
func (d *digestProbe) OnDeath(e PeerEvent) {
	d.mix(2, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile))
}
func (d *digestProbe) OnRepair(e RepairEvent) {
	init := int64(0)
	if e.Initial {
		init = 1
	}
	d.mix(3, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile), init, int64(e.Uploaded), int64(e.Dropped))
}
func (d *digestProbe) OnOutage(e PeerEvent) {
	d.mix(4, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile))
}
func (d *digestProbe) OnHardLoss(e PeerEvent) {
	d.mix(5, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile))
}
func (d *digestProbe) OnStall(e PeerEvent) {
	d.mix(6, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile))
}
func (d *digestProbe) OnCancel(e PeerEvent) {
	d.mix(7, e.Round, int64(e.Peer), int64(e.Category), int64(e.Profile))
}
func (d *digestProbe) OnShock(e ShockEvent) {
	killed := int64(0)
	if e.Killed {
		killed = 1
	}
	d.mix(8, e.Round, int64(e.Index), int64(e.Victims), killed)
}
func (d *digestProbe) OnObserverRepair(e ObserverRepairEvent) {
	d.mix(9, e.Round, int64(e.Observer))
}
func (d *digestProbe) OnRoundEnd(e RoundEndEvent) {
	vals := make([]int64, 0, len(e.Population)+2)
	vals = append(vals, 10, e.Round)
	for _, p := range e.Population {
		vals = append(vals, p)
	}
	d.mix(vals...)
}

// Transfer events never fire in instant mode, so mixing them keeps the
// historical digests intact while pinning bandwidth-mode streams.
// OnRepair deliberately does not mix Elapsed: the field was added after
// the goldens were captured.
func (d *digestProbe) OnTransferStart(e TransferEvent) {
	d.mix(11, e.Round, e.ID, int64(e.Kind), int64(e.Owner), int64(e.Host), int64(e.Blocks), e.Elapsed)
}
func (d *digestProbe) OnTransferComplete(e TransferEvent) {
	d.mix(12, e.Round, e.ID, int64(e.Kind), int64(e.Owner), int64(e.Host), int64(e.Blocks), e.Elapsed)
}
func (d *digestProbe) OnTransferAbort(e TransferEvent) {
	d.mix(13, e.Round, e.ID, int64(e.Kind), int64(e.Owner), int64(e.Host), int64(e.Blocks), e.Elapsed)
}

// Redundancy events never fire in fixed mode (same preservation rule as
// the transfer events above); mixing them pins adaptive-mode streams.
// OnRoundEnd likewise does not mix MeanRedundancy: it is 0 in fixed
// mode and fully determined by the OnRedundancyChange stream otherwise.
func (d *digestProbe) OnRedundancyChange(e RedundancyEvent) {
	d.mix(14, e.Round, int64(e.Peer), int64(e.From), int64(e.To))
}

// digestRun executes cfg with a digest probe attached and folds the
// result counters into the final hash.
func digestRun(t *testing.T, cfg Config) uint64 {
	t.Helper()
	d := newDigestProbe()
	cfg.Probes = append(cfg.Probes, d)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	d.mix(res.Deaths, res.Cancels, int64(res.FinalPlacements), int64(res.FinalIncluded))
	return d.h.Sum64()
}

// digestConfig is the paper's configuration scaled down (population,
// horizon and code shape shrunk together) so a full scenario run takes
// well under a second while still exercising deaths, repairs, stalls,
// losses and observer maintenance.
func digestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 300
	cfg.Rounds = 500
	cfg.TotalBlocks = 32
	cfg.DataBlocks = 16
	cfg.RepairThreshold = 20
	cfg.Quota = 96
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 72
	cfg.Observers = PaperObservers()
	cfg.Seed = 42
	return cfg
}

// TestGoldenScenarioDigests: the event-driven engine must reproduce the
// scan engine's trajectories bit-identically under every churn regime.
func TestGoldenScenarioDigests(t *testing.T) {
	shockCfg := digestConfig()
	shockCfg.Shocks = []ShockSpec{
		{Name: "blackout", Round: 120, Fraction: 0.5, Outage: 24},
		{Name: "regional-kill", Rate: 0.01, Fraction: 0.3, Regions: 4, Kill: true},
	}
	diurnalCfg := digestConfig()
	diurnalCfg.Avail = churn.DefaultDiurnalModel(0.6)

	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"iid", digestConfig(), 0xb0298adf8abb6acd},
		{"diurnal", diurnalCfg, 0xc1c1ef64a949edb6},
		{"shock", shockCfg, 0x27e7bdc89614a401},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := digestRun(t, tc.cfg)
			if got != tc.want {
				t.Errorf("digest = %#x, want %#x (trajectory drifted from the scan engine)", got, tc.want)
			}
		})
	}
}

// TestGoldenWalkV1Explicit guards against walk-mode drift: an explicit
// Walk=v1 must be byte-for-byte the zero-value default — both reproduce
// the pre-versioning goldens, so introducing the v3 engine changed
// nothing about existing configs.
func TestGoldenWalkV1Explicit(t *testing.T) {
	cfg := digestConfig()
	cfg.Walk = WalkV1
	const want uint64 = 0xb0298adf8abb6acd // the "iid" golden above
	if got := digestRun(t, cfg); got != want {
		t.Errorf("Walk=v1 digest = %#x, want golden %#x (v1 path drifted)", got, want)
	}
}

// TestGoldenReplayDigest records a trace from a generative run and
// replays it under a different selection strategy: the replay engine's
// event stream must also stay bit-identical to the scan engine's.
func TestGoldenReplayDigest(t *testing.T) {
	rec := digestConfig()
	rec.RecordTrace = true
	rec.Observers = nil
	s, err := New(rec)
	if err != nil {
		t.Fatal(err)
	}
	trace := s.Run().Trace

	rep := digestConfig()
	rep.Observers = nil
	rep.Replay = trace
	rep.StrategySpec = "monitored-availability"
	const want uint64 = 0x069cd8d20f8f8853
	if got := digestRun(t, rep); got != want {
		t.Errorf("replay digest = %#x, want %#x (trajectory drifted from the scan engine)", got, want)
	}
}
