// Package overlay maintains the simulator's bookkeeping of who stores
// blocks for whom: a doubly-indexed adjacency between block owners and
// block hosts with O(1) placement and removal, incremental visible/alive
// counters, quota accounting, and generation-stamped peer references.
//
// This is the PeerSim-equivalent substrate: with 25,000 peers each
// placing 256 blocks, the naive "every peer scans its partner list every
// round" costs billions of operations; instead the Ledger updates each
// owner's visible-block counter only when one of its hosts changes
// session state or dies, making the per-round cost proportional to the
// number of churn events.
//
// Paper mapping (in the style of internal/selection):
//
//	§2.2.1 "one block per partner"  Ledger.Place rejects duplicate (owner, host) pairs
//	§2.2.1 storage quota            Ledger quota accounting (the paper's 384-block cap)
//	§3.1   immediate replacement    PeerID slots + Table generation stamps: a departed
//	                                peer's slot is reused and stale references invalidated
//	§3.1   "blocks disappear"       RemovePeer drops both hosted and owned placements
//	§4.2.2 observers                unmetered placements (observer blocks consume no quota)
//
// The visible counter (blocks on currently-online hosts) is the
// quantity the maintenance trigger of §2.2.3 compares against k'.
package overlay

import (
	"errors"
	"fmt"
)

// PeerID indexes a peer slot. The population is fixed; a departing peer
// is immediately replaced in the same slot (the paper's model), with the
// slot's generation bumped to invalidate stale references.
type PeerID int32

// NoPeer is the invalid peer id.
const NoPeer PeerID = -1

// Placement errors.
var (
	ErrQuotaFull    = errors.New("overlay: host quota exhausted")
	ErrSelfStore    = errors.New("overlay: a peer cannot host its own block")
	ErrDuplicate    = errors.New("overlay: host already stores a block for this owner")
	ErrBadPeer      = errors.New("overlay: peer id out of range")
	ErrBadPlacement = errors.New("overlay: placement index out of range")
)

// placement is one block stored by owner on host, with the index of the
// mirror entry in the host's reverse list. unmetered marks observer
// placements that do not consume the host's quota.
type placement struct {
	host      PeerID
	hostIdx   int32
	unmetered bool
}

// hostEntry mirrors a placement from the host's perspective.
type hostEntry struct {
	owner    PeerID
	ownerIdx int32
}

// Watcher receives threshold-crossing notifications from the ledger's
// incremental counters. The ledger calls it synchronously from inside
// SetOnline, RemoveHost, RemovePeer, DropOwner and DropPlacementAt, at
// the exact moment a counter crosses below its configured threshold —
// this is what lets the maintenance layer keep an incrementally
// maintained set of peers with pending work instead of polling every
// peer every round. Callbacks must not mutate the ledger (the
// notifying operation is still in flight) and must be cheap: one fires
// per crossing, on the simulation hot path.
type Watcher interface {
	// VisibleBelow fires when owner's visible-block count crosses from
	// >= the visible threshold to below it (the repair trigger of the
	// paper's section 2.2.3).
	VisibleBelow(owner PeerID)
	// AliveBelow fires when owner's alive-block count crosses from >=
	// the alive threshold to below it (archive-loss territory: fewer
	// than k blocks survive on living hosts).
	AliveBelow(owner PeerID)
}

// Ledger tracks all block placements. It is not safe for concurrent
// use; each simulation run owns one Ledger.
type Ledger struct {
	fwd     [][]placement // per owner: where its blocks are
	rev     [][]hostEntry // per host: whose blocks it stores
	metered []int32       // per host: quota-consuming blocks stored
	visible []int32       // per owner: blocks on online hosts
	online  []bool        // per host: current session state
	quota   int32
	strict  bool

	watcher  Watcher
	visThr   int32 // VisibleBelow fires on crossings below this
	aliveThr int32 // AliveBelow fires on crossings below this
}

// NewLedger returns a ledger for n peer slots with the given per-host
// block quota (the paper's quota is 384). All peers start online with
// no placements.
func NewLedger(n int, quota int32) *Ledger {
	if n <= 0 || quota <= 0 {
		panic(fmt.Sprintf("overlay: invalid ledger size n=%d quota=%d", n, quota))
	}
	l := &Ledger{
		fwd:     make([][]placement, n),
		rev:     make([][]hostEntry, n),
		metered: make([]int32, n),
		visible: make([]int32, n),
		online:  make([]bool, n),
		quota:   quota,
	}
	for i := range l.online {
		l.online[i] = true
	}
	return l
}

// SetStrict enables O(degree) duplicate checking on Place. Tests use
// it; production runs rely on the maintenance layer's candidate
// filtering instead.
func (l *Ledger) SetStrict(strict bool) { l.strict = strict }

// Reserve preallocates every slot's adjacency capacity from two shared
// slabs: ownerCap placements per owner (the archive size n) and hostCap
// entries per host (the quota, plus one per unmetered observer). The
// simulation engine calls it once at construction so steady-state
// place/remove traffic never grows a slice — the placement hot path
// becomes allocation-free, and the slabs cost no more than the
// doubling-growth high-water mark they replace. A slot whose list
// outgrows its reservation falls back to the allocator transparently.
// Must be called before any placements are recorded; zero caps skip the
// corresponding side.
func (l *Ledger) Reserve(ownerCap, hostCap int) {
	if ownerCap > 0 {
		slab := make([]placement, len(l.fwd)*ownerCap)
		for i := range l.fwd {
			l.fwd[i] = slab[i*ownerCap : i*ownerCap : (i+1)*ownerCap]
		}
	}
	if hostCap > 0 {
		slab := make([]hostEntry, len(l.rev)*hostCap)
		for i := range l.rev {
			l.rev[i] = slab[i*hostCap : i*hostCap : (i+1)*hostCap]
		}
	}
}

// Watch registers the threshold-crossing watcher: VisibleBelow fires
// when an owner's visible count crosses below visibleThr, AliveBelow
// when its alive count crosses below aliveThr. Crossings are edge-
// triggered per decrement (each >=thr -> <thr transition fires exactly
// once); increments never fire. A nil watcher disables notifications.
func (l *Ledger) Watch(w Watcher, visibleThr, aliveThr int32) {
	l.watcher = w
	l.visThr = visibleThr
	l.aliveThr = aliveThr
}

// noteVisibleDec fires the watcher after owner's visible counter was
// decremented, if the decrement crossed the threshold.
func (l *Ledger) noteVisibleDec(owner PeerID) {
	if l.watcher != nil && l.visible[owner] == l.visThr-1 {
		l.watcher.VisibleBelow(owner)
	}
}

// noteAliveDec fires the watcher after owner's alive count (its forward
// degree) was decremented, if the decrement crossed the threshold.
func (l *Ledger) noteAliveDec(owner PeerID) {
	if l.watcher != nil && int32(len(l.fwd[owner])) == l.aliveThr-1 {
		l.watcher.AliveBelow(owner)
	}
}

// NumPeers returns the number of peer slots.
func (l *Ledger) NumPeers() int { return len(l.fwd) }

// Quota returns the per-host block quota.
func (l *Ledger) Quota() int32 { return l.quota }

func (l *Ledger) check(id PeerID) error {
	if id < 0 || int(id) >= len(l.fwd) {
		return fmt.Errorf("%w: %d", ErrBadPeer, id)
	}
	return nil
}

// Place records that host stores one block for owner. It fails if the
// host's quota is exhausted or owner == host. With SetStrict(true) it
// also rejects duplicate (owner, host) pairs.
func (l *Ledger) Place(owner, host PeerID) error {
	return l.place(owner, host, false)
}

// PlaceUnmetered is Place without quota accounting on the host, used by
// observer peers (the paper's observers "do not consume the quota").
func (l *Ledger) PlaceUnmetered(owner, host PeerID) error {
	return l.place(owner, host, true)
}

func (l *Ledger) place(owner, host PeerID, unmetered bool) error {
	if err := l.check(owner); err != nil {
		return err
	}
	if err := l.check(host); err != nil {
		return err
	}
	if owner == host {
		return ErrSelfStore
	}
	if l.strict && l.HasPlacement(owner, host) {
		return ErrDuplicate
	}
	if !unmetered && l.metered[host] >= l.quota {
		return ErrQuotaFull
	}
	fwdIdx := int32(len(l.fwd[owner]))
	revIdx := int32(len(l.rev[host]))
	l.fwd[owner] = append(l.fwd[owner], placement{host: host, hostIdx: revIdx, unmetered: unmetered})
	l.rev[host] = append(l.rev[host], hostEntry{owner: owner, ownerIdx: fwdIdx})
	if !unmetered {
		l.metered[host]++
	}
	if l.online[host] {
		l.visible[owner]++
	}
	return nil
}

// HasPlacement reports whether host already stores a block for owner
// (O(owner degree)).
func (l *Ledger) HasPlacement(owner, host PeerID) bool {
	if l.check(owner) != nil || l.check(host) != nil {
		return false
	}
	for _, p := range l.fwd[owner] {
		if p.host == host {
			return true
		}
	}
	return false
}

// removeFwdAt removes owner's placement at index idx by swap-remove,
// backpatching the reverse entry of the moved placement.
func (l *Ledger) removeFwdAt(owner PeerID, idx int32) {
	list := l.fwd[owner]
	last := int32(len(list) - 1)
	if idx != last {
		moved := list[last]
		list[idx] = moved
		l.rev[moved.host][moved.hostIdx].ownerIdx = idx
	}
	l.fwd[owner] = list[:last]
}

// removeRevAt removes host's entry at index idx by swap-remove,
// backpatching the forward entry of the moved placement.
func (l *Ledger) removeRevAt(host PeerID, idx int32) {
	list := l.rev[host]
	last := int32(len(list) - 1)
	if idx != last {
		moved := list[last]
		list[idx] = moved
		l.fwd[moved.owner][moved.ownerIdx].hostIdx = idx
	}
	l.rev[host] = list[:last]
}

// DropPlacementAt removes owner's placement at index idx (as exposed by
// Placements), freeing the host's quota. Used when a repair abandons an
// offline partner.
func (l *Ledger) DropPlacementAt(owner PeerID, idx int) error {
	if err := l.check(owner); err != nil {
		return err
	}
	if idx < 0 || idx >= len(l.fwd[owner]) {
		return fmt.Errorf("%w: owner %d idx %d", ErrBadPlacement, owner, idx)
	}
	p := l.fwd[owner][idx]
	l.removeRevAt(p.host, p.hostIdx)
	l.removeFwdAt(owner, int32(idx))
	if !p.unmetered {
		l.metered[p.host]--
	}
	l.noteAliveDec(owner)
	if l.online[p.host] {
		l.visible[owner]--
		l.noteVisibleDec(owner)
	}
	return nil
}

// SetOnline flips a host's session state, updating every affected
// owner's visible counter. Cost: O(blocks hosted). This is the
// session-churn hot loop — the threshold compare is inlined rather
// than calling noteVisibleDec so the no-watcher and no-crossing cases
// stay branch-only.
func (l *Ledger) SetOnline(host PeerID, online bool) {
	if l.check(host) != nil {
		return
	}
	if l.online[host] == online {
		return
	}
	l.online[host] = online
	rev := l.rev[host]
	vis := l.visible
	if online {
		for i := range rev {
			vis[rev[i].owner]++
		}
		return
	}
	if l.watcher == nil {
		for i := range rev {
			vis[rev[i].owner]--
		}
		return
	}
	thr := l.visThr - 1
	for i := range rev {
		o := rev[i].owner
		vis[o]--
		if vis[o] == thr {
			l.watcher.VisibleBelow(o)
		}
	}
}

// Online reports a host's session state.
func (l *Ledger) Online(host PeerID) bool {
	if l.check(host) != nil {
		return false
	}
	return l.online[host]
}

// RemoveHost deletes every block the host stores (its disk vanished):
// each affected owner loses one alive (and possibly visible) block.
// The host keeps its own placements as an owner. Cost: O(blocks hosted).
func (l *Ledger) RemoveHost(host PeerID) {
	if l.check(host) != nil {
		return
	}
	wasOnline := l.online[host]
	for _, e := range l.rev[host] {
		l.removeFwdAt(e.owner, e.ownerIdx)
		l.noteAliveDec(e.owner)
		if wasOnline {
			l.visible[e.owner]--
			l.noteVisibleDec(e.owner)
		}
	}
	l.rev[host] = l.rev[host][:0]
	l.metered[host] = 0
}

// DropOwner deletes every placement the owner made (its archive is
// gone), freeing quota on all its hosts. Cost: O(owner degree).
func (l *Ledger) DropOwner(owner PeerID) {
	if l.check(owner) != nil {
		return
	}
	crossAlive := l.watcher != nil && l.aliveThr > 0 && int32(len(l.fwd[owner])) >= l.aliveThr
	crossVis := l.watcher != nil && l.visThr > 0 && l.visible[owner] >= l.visThr
	for _, p := range l.fwd[owner] {
		l.removeRevAt(p.host, p.hostIdx)
		if !p.unmetered {
			l.metered[p.host]--
		}
	}
	l.fwd[owner] = l.fwd[owner][:0]
	l.visible[owner] = 0
	if crossAlive {
		l.watcher.AliveBelow(owner)
	}
	if crossVis {
		l.watcher.VisibleBelow(owner)
	}
}

// RemovePeer handles a peer's death: its hosted blocks disappear and
// its own archive placements are released. The slot can then be reused
// by a fresh peer.
func (l *Ledger) RemovePeer(id PeerID) {
	l.RemoveHost(id)
	l.DropOwner(id)
}

// Alive returns the number of blocks owner has placed on living hosts.
// (Dead hosts' placements are removed eagerly, so this is the owner's
// current degree.)
func (l *Ledger) Alive(owner PeerID) int {
	if l.check(owner) != nil {
		return 0
	}
	return len(l.fwd[owner])
}

// Visible returns the number of owner's blocks on hosts that are both
// alive and online - the quantity the repair threshold is compared
// against.
func (l *Ledger) Visible(owner PeerID) int {
	if l.check(owner) != nil {
		return 0
	}
	return int(l.visible[owner])
}

// Hosted returns the number of blocks the host currently stores,
// including unmetered observer blocks.
func (l *Ledger) Hosted(host PeerID) int {
	if l.check(host) != nil {
		return 0
	}
	return len(l.rev[host])
}

// MeteredHosted returns the quota-consuming blocks the host stores.
func (l *Ledger) MeteredHosted(host PeerID) int {
	if l.check(host) != nil {
		return 0
	}
	return int(l.metered[host])
}

// FreeQuota returns how many more metered blocks the host can accept.
func (l *Ledger) FreeQuota(host PeerID) int {
	if l.check(host) != nil {
		return 0
	}
	f := int(l.quota - l.metered[host])
	if f < 0 {
		return 0
	}
	return f
}

// Hosts returns the hosts of owner's placements, appended to buf (reuse
// buf across calls to avoid allocation).
func (l *Ledger) Hosts(owner PeerID, buf []PeerID) []PeerID {
	if l.check(owner) != nil {
		return buf
	}
	for _, p := range l.fwd[owner] {
		buf = append(buf, p.host)
	}
	return buf
}

// HostAt returns the host of owner's idx-th placement.
func (l *Ledger) HostAt(owner PeerID, idx int) (PeerID, error) {
	if err := l.check(owner); err != nil {
		return NoPeer, err
	}
	if idx < 0 || idx >= len(l.fwd[owner]) {
		return NoPeer, fmt.Errorf("%w: owner %d idx %d", ErrBadPlacement, owner, idx)
	}
	return l.fwd[owner][idx].host, nil
}

// Owners returns the owners of blocks the host stores, appended to buf.
func (l *Ledger) Owners(host PeerID, buf []PeerID) []PeerID {
	if l.check(host) != nil {
		return buf
	}
	for _, e := range l.rev[host] {
		buf = append(buf, e.owner)
	}
	return buf
}

// TotalPlacements returns the number of (owner, host) placements in the
// system.
func (l *Ledger) TotalPlacements() int {
	total := 0
	for _, f := range l.fwd {
		total += len(f)
	}
	return total
}

// CheckConsistency exhaustively verifies the cross-indexes and counters
// against a brute-force recount. Tests call it after random operation
// sequences; it is O(total placements).
func (l *Ledger) CheckConsistency() error {
	meterRecount := make([]int32, len(l.rev))
	for owner := range l.fwd {
		vis := int32(0)
		for i, p := range l.fwd[owner] {
			if err := l.check(p.host); err != nil {
				return fmt.Errorf("owner %d placement %d: %w", owner, i, err)
			}
			if int(p.hostIdx) >= len(l.rev[p.host]) {
				return fmt.Errorf("owner %d placement %d: hostIdx %d out of range", owner, i, p.hostIdx)
			}
			mirror := l.rev[p.host][p.hostIdx]
			if mirror.owner != PeerID(owner) || int(mirror.ownerIdx) != i {
				return fmt.Errorf("owner %d placement %d: mirror mismatch (%d,%d)", owner, i, mirror.owner, mirror.ownerIdx)
			}
			if l.online[p.host] {
				vis++
			}
			if !p.unmetered {
				meterRecount[p.host]++
			}
		}
		if vis != l.visible[owner] {
			return fmt.Errorf("owner %d: visible counter %d, recount %d", owner, l.visible[owner], vis)
		}
	}
	for host := range l.rev {
		if meterRecount[host] != l.metered[host] {
			return fmt.Errorf("host %d: metered counter %d, recount %d", host, l.metered[host], meterRecount[host])
		}
		for i, e := range l.rev[host] {
			if err := l.check(e.owner); err != nil {
				return fmt.Errorf("host %d entry %d: %w", host, i, err)
			}
			if int(e.ownerIdx) >= len(l.fwd[e.owner]) {
				return fmt.Errorf("host %d entry %d: ownerIdx %d out of range", host, i, e.ownerIdx)
			}
			mirror := l.fwd[e.owner][e.ownerIdx]
			if mirror.host != PeerID(host) || int(mirror.hostIdx) != i {
				return fmt.Errorf("host %d entry %d: mirror mismatch (%d,%d)", host, i, mirror.host, mirror.hostIdx)
			}
		}
	}
	return nil
}
