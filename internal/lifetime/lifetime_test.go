package lifetime

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"p2pbackup/internal/dist"
	"p2pbackup/internal/rng"
)

func paretoSamples(t *testing.T, xm, alpha float64, n int, seed uint64) []float64 {
	t.Helper()
	p, err := dist.NewPareto(xm, alpha)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	s := make([]float64, n)
	for i := range s {
		s[i] = p.Sample(r)
	}
	return s
}

func TestFitParetoRecoversParameters(t *testing.T) {
	samples := paretoSamples(t, 5, 1.8, 50000, 1)
	m, err := FitPareto(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-1.8) > 0.05 {
		t.Fatalf("alpha = %v, want ~1.8", m.Alpha)
	}
	if math.Abs(m.Xm-5) > 0.01 {
		t.Fatalf("xm = %v, want ~5", m.Xm)
	}
}

func TestFitParetoErrors(t *testing.T) {
	if _, err := FitPareto([]float64{1}); !errors.Is(err, ErrNoSamples) {
		t.Fatal("single sample must be rejected")
	}
	if _, err := FitPareto([]float64{1, -2, 3}); err == nil {
		t.Fatal("negative sample must be rejected")
	}
	if _, err := FitPareto([]float64{2, 2, 2}); err == nil {
		t.Fatal("degenerate samples must be rejected")
	}
}

func TestParetoModelSurvivalHazard(t *testing.T) {
	m := ParetoModel{Xm: 2, Alpha: 2}
	if m.Survival(1) != 1 || m.Survival(2) != 1 {
		t.Fatal("survival below xm must be 1")
	}
	if got := m.Survival(4); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Survival(4) = %v, want 0.25", got)
	}
	if m.Hazard(1) != 0 {
		t.Fatal("hazard below xm must be 0")
	}
	// Decreasing hazard: the "older peers die less" signature.
	prev := m.Hazard(2)
	for _, age := range []float64{3, 5, 10, 100} {
		h := m.Hazard(age)
		if h >= prev {
			t.Fatalf("hazard not decreasing at %v: %v >= %v", age, h, prev)
		}
		prev = h
	}
}

func TestParetoExpectedRemainingGrowsWithAge(t *testing.T) {
	m := ParetoModel{Xm: 1, Alpha: 2}
	// Closed form t/(alpha-1) = t for t >= xm.
	for _, age := range []float64{1, 5, 42} {
		if got := m.ExpectedRemaining(age); math.Abs(got-age) > 1e-9 {
			t.Fatalf("ExpectedRemaining(%v) = %v, want %v", age, got, age)
		}
	}
	heavy := ParetoModel{Xm: 1, Alpha: 0.9}
	if !math.IsInf(heavy.ExpectedRemaining(3), 1) {
		t.Fatal("alpha <= 1 must give +Inf")
	}
}

func TestQuantileRemaining(t *testing.T) {
	m := ParetoModel{Xm: 1, Alpha: 1} // infinite mean, finite quantiles
	// Median remaining at age t: t*2^(1/1) - t = t.
	for _, age := range []float64{1, 10, 50} {
		if got := m.QuantileRemaining(age, 0.5); math.Abs(got-age) > 1e-9 {
			t.Fatalf("median remaining at %v = %v, want %v", age, got, age)
		}
	}
	// Monotone in q.
	if m.QuantileRemaining(5, 0.9) <= m.QuantileRemaining(5, 0.1) {
		t.Fatal("quantiles must increase in q")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("q = 1 must panic")
			}
		}()
		m.QuantileRemaining(1, 1)
	}()
}

func TestAgeRank(t *testing.T) {
	a := AgeRank{Horizon: 90}
	if a.ExpectedRemaining(-5) != 0 {
		t.Fatal("negative age must clamp to 0")
	}
	if a.ExpectedRemaining(45) != 45 {
		t.Fatal("below horizon, estimate is the age")
	}
	if a.ExpectedRemaining(1000) != 90 {
		t.Fatal("above horizon, estimate is capped")
	}
	if a.Compare(10, 20) != -1 || a.Compare(20, 10) != 1 || a.Compare(7, 7) != 0 {
		t.Fatal("Compare ordering wrong")
	}
	// Beyond the horizon all ages tie - the paper's "not much different".
	if a.Compare(91, 5000) != 0 {
		t.Fatal("ages beyond horizon must tie")
	}
	uncapped := AgeRank{}
	if uncapped.ExpectedRemaining(1e6) != 1e6 {
		t.Fatal("no horizon must not cap")
	}
}

func TestAgeRankMonotoneProperty(t *testing.T) {
	a := AgeRank{Horizon: 2160}
	if err := quick.Check(func(x, y float64) bool {
		x, y = math.Abs(x), math.Abs(y)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		if x <= y {
			return a.ExpectedRemaining(x) <= a.ExpectedRemaining(y)
		}
		return a.ExpectedRemaining(x) >= a.ExpectedRemaining(y)
	}, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestEmpiricalModel(t *testing.T) {
	m, err := NewEmpiricalModel([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if got := m.Survival(0); got != 1 {
		t.Fatalf("Survival(0) = %v", got)
	}
	if got := m.Survival(20); got != 0.5 {
		t.Fatalf("Survival(20) = %v, want 0.5 (strictly greater)", got)
	}
	if got := m.Survival(100); got != 0 {
		t.Fatalf("Survival(100) = %v", got)
	}
	// At age 20, survivors are {30, 40}: mean 35, remaining 15.
	if got := m.ExpectedRemaining(20); math.Abs(got-15) > 1e-12 {
		t.Fatalf("ExpectedRemaining(20) = %v, want 15", got)
	}
	// Beyond all observations: zero remaining.
	if got := m.ExpectedRemaining(40); got != 0 {
		t.Fatalf("ExpectedRemaining(40) = %v, want 0", got)
	}
	if _, err := NewEmpiricalModel(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatal("empty model must be rejected")
	}
	if _, err := NewEmpiricalModel([]float64{0, 1}); err == nil {
		t.Fatal("zero lifetime must be rejected")
	}
}

func TestEmpiricalAgreesWithParetoOnParetoData(t *testing.T) {
	samples := paretoSamples(t, 1, 2.5, 50000, 3)
	fit, err := FitPareto(samples)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := NewEmpiricalModel(samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, age := range []float64{1.5, 2, 3} {
		pe := fit.ExpectedRemaining(age)
		ee := emp.ExpectedRemaining(age)
		if math.Abs(pe-ee)/pe > 0.1 {
			t.Errorf("age %v: Pareto says %v, empirical says %v", age, pe, ee)
		}
	}
}

func TestParetoGoodnessOfFit(t *testing.T) {
	good := paretoSamples(t, 1, 1.5, 20000, 4)
	_, ks, err := ParetoGoodnessOfFit(good)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.02 {
		t.Fatalf("KS for true Pareto = %v, want small", ks)
	}
	// Uniform data is a bad Pareto; KS should be clearly larger.
	r := rng.New(5)
	uni := make([]float64, 20000)
	for i := range uni {
		uni[i] = 1 + r.Float64()
	}
	_, ksBad, err := ParetoGoodnessOfFit(uni)
	if err != nil {
		t.Fatal(err)
	}
	if ksBad < 5*ks {
		t.Fatalf("uniform KS %v not clearly worse than Pareto KS %v", ksBad, ks)
	}
}

func TestTailExponent(t *testing.T) {
	samples := paretoSamples(t, 2, 1.2, 30000, 6)
	alpha, err := TailExponent(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-1.2) > 0.15 {
		t.Fatalf("tail exponent = %v, want ~1.2", alpha)
	}
}

func TestEstimatorInterfaceCompliance(t *testing.T) {
	var _ Estimator = ParetoModel{}
	var _ Estimator = AgeRank{}
	var _ Estimator = (*EmpiricalModel)(nil)
}

// TestEstimatorMonotonicityProperty validates the paper's "ranking by
// age is equivalent to ranking by any heavy-tailed lifetime estimate"
// claim at the estimator level: each Estimator implementation must be
// monotone non-decreasing in age past its scale floor, which is what
// makes "sort by age" a valid selection rule.
//
// AgeRank and ParetoModel are checked exactly over randomised model
// parameters. EmpiricalModel is a plug-in over finite heavy-tailed
// samples: between consecutive order statistics the estimate decays
// with slope -1 before jumping at the next sample, so pointwise
// monotonicity only holds up to sampling noise — the property checked
// is strict monotonicity over a coarse quantile grid plus a small
// relative bound (5%) on any backslide at the sample points themselves.
// All randomness is seeded, so the property run is reproducible.
func TestEstimatorMonotonicityProperty(t *testing.T) {
	r := rng.New(20260731)
	ages := func(lo, hi float64, n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out
	}
	checkMonotone := func(name string, est Estimator, grid []float64, relTol float64) {
		t.Helper()
		prev := est.ExpectedRemaining(grid[0])
		for _, age := range grid[1:] {
			e := est.ExpectedRemaining(age)
			if e < prev && (relTol == 0 || prev-e > relTol*math.Abs(prev)) {
				t.Errorf("%s: ExpectedRemaining(%v) = %v < %v — not monotone", name, age, e, prev)
			}
			if e > prev {
				prev = e
			}
		}
	}
	for trial := 0; trial < 50; trial++ {
		// AgeRank: exact, any horizon (including uncapped).
		horizon := float64(r.Intn(5000)) // 0 = no cap
		checkMonotone(fmt.Sprintf("AgeRank{%v}", horizon),
			AgeRank{Horizon: horizon}, ages(0, 10000, 200), 0)

		// ParetoModel: exact for ages past the scale floor xm.
		alpha := 1.05 + 3*r.Float64()
		xm := 1 + 99*r.Float64()
		checkMonotone(fmt.Sprintf("Pareto{xm=%.3g,alpha=%.3g}", xm, alpha),
			ParetoModel{Xm: xm, Alpha: alpha}, ages(xm, xm*1000, 200), 0)
	}
	// EmpiricalModel over genuinely heavy-tailed (Pareto) samples.
	for _, alpha := range []float64{1.2, 1.5, 2, 3} {
		for seed := uint64(1); seed <= 3; seed++ {
			samples := paretoSamples(t, 1, alpha, 5000, seed)
			emp, err := NewEmpiricalModel(samples)
			if err != nil {
				t.Fatal(err)
			}
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			// Strictly monotone over the decile grid (tail excluded:
			// past the largest observations the plug-in runs out of
			// survivors by construction).
			var grid []float64
			for q := 5; q <= 90; q += 5 {
				grid = append(grid, sorted[len(sorted)*q/100])
			}
			checkMonotone(fmt.Sprintf("Empirical(alpha=%.1f,seed=%d)/deciles", alpha, seed), emp, grid, 0)
			// Bounded backslide at every sample point below the tail.
			checkMonotone(fmt.Sprintf("Empirical(alpha=%.1f,seed=%d)/samples", alpha, seed),
				emp, sorted[:len(sorted)*95/100], 0.05)
		}
	}
}
