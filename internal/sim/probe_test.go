package sim

import (
	"context"
	"testing"
	"time"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
)

// recordingProbe tallies every event category it sees.
type recordingProbe struct {
	BaseProbe
	deaths    int64
	joins     int64
	leaves    int64
	sessions  int64
	repairs   int64
	initials  int64
	outages   int64
	hardLoss  int64
	cancels   int64
	obsByName map[string]int64
	rounds    int64
	lastPop   [metrics.NumCategories]int64
}

func (p *recordingProbe) OnDeath(PeerEvent) { p.deaths++ }

func (p *recordingProbe) OnChurn(e ChurnEvent) {
	switch e.Kind {
	case churn.EvJoin:
		p.joins++
	case churn.EvLeave:
		p.leaves++
	default:
		p.sessions++
	}
}

func (p *recordingProbe) OnRepair(e RepairEvent) {
	if e.Initial {
		p.initials++
	} else {
		p.repairs++
	}
}

func (p *recordingProbe) OnOutage(PeerEvent)   { p.outages++ }
func (p *recordingProbe) OnHardLoss(PeerEvent) { p.hardLoss++ }
func (p *recordingProbe) OnCancel(PeerEvent)   { p.cancels++ }

func (p *recordingProbe) OnObserverRepair(e ObserverRepairEvent) {
	if p.obsByName == nil {
		p.obsByName = make(map[string]int64)
	}
	p.obsByName[e.Name]++
}

func (p *recordingProbe) OnRoundEnd(e RoundEndEvent) {
	p.rounds++
	p.lastPop = e.Population
}

func probeTestConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPeers = 150
	cfg.Rounds = 1500
	cfg.TotalBlocks = 16
	cfg.DataBlocks = 8
	cfg.RepairThreshold = 10
	cfg.Quota = 48
	cfg.PoolSamplePerRound = 32
	cfg.AcceptHorizon = 48
	cfg.Seed = 11
	cfg.Observers = []ObserverSpec{{Name: "watch", Age: 3 * churn.Month}}
	return cfg
}

// TestProbeMatchesResult checks that a custom probe observes exactly the
// event stream the built-in collector aggregates into Result.
func TestProbeMatchesResult(t *testing.T) {
	cfg := probeTestConfig()
	rec := &recordingProbe{}
	cfg.Probes = []Probe{rec}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()

	if rec.deaths != res.Deaths {
		t.Errorf("probe deaths = %d, result reports %d", rec.deaths, res.Deaths)
	}
	if rec.deaths == 0 {
		t.Error("run produced no deaths; test config too tame")
	}
	if rec.leaves != res.Deaths {
		t.Errorf("leave events = %d, deaths = %d", rec.leaves, res.Deaths)
	}
	// Every slot joins at round 0 and every death rejoins as a
	// replacement.
	wantJoins := int64(cfg.NumPeers) + res.Deaths
	if rec.joins != wantJoins {
		t.Errorf("join events = %d, want %d", rec.joins, wantJoins)
	}
	if rec.repairs != res.Collector.TotalRepairs() {
		t.Errorf("probe repairs = %d, collector reports %d", rec.repairs, res.Collector.TotalRepairs())
	}
	if rec.repairs == 0 {
		t.Error("run produced no repairs; test config too tame")
	}
	if rec.outages != res.Collector.TotalLosses() {
		t.Errorf("probe outages = %d, collector reports %d", rec.outages, res.Collector.TotalLosses())
	}
	if rec.hardLoss != res.Collector.TotalHardLosses() {
		t.Errorf("probe hard losses = %d, collector reports %d", rec.hardLoss, res.Collector.TotalHardLosses())
	}
	if rec.cancels != res.Cancels {
		t.Errorf("probe cancels = %d, result reports %d", rec.cancels, res.Cancels)
	}
	var initials int64
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		initials += res.Collector.Counts(c).InitialBackups
	}
	if rec.initials != initials {
		t.Errorf("probe initial backups = %d, collector reports %d", rec.initials, initials)
	}
	if rec.obsByName["watch"] != res.Observers.Count(0) {
		t.Errorf("probe observer repairs = %d, tracker reports %d", rec.obsByName["watch"], res.Observers.Count(0))
	}
	if rec.rounds != cfg.Rounds {
		t.Errorf("round-end events = %d, want %d", rec.rounds, cfg.Rounds)
	}
	var pop int64
	for _, n := range rec.lastPop {
		pop += n
	}
	if pop != int64(cfg.NumPeers) {
		t.Errorf("final population = %d, want %d", pop, cfg.NumPeers)
	}
}

// TestProbeDoesNotPerturbRun checks that attaching probes leaves the
// trajectory byte-identical: probes observe, they never participate.
func TestProbeDoesNotPerturbRun(t *testing.T) {
	cfg := probeTestConfig()
	bare, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := bare.Run()

	cfg.Probes = []Probe{&recordingProbe{}, &recordingProbe{}}
	probed, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := probed.Run()

	if a.Deaths != b.Deaths || a.Cancels != b.Cancels ||
		a.Collector.TotalRepairs() != b.Collector.TotalRepairs() ||
		a.Collector.TotalLosses() != b.Collector.TotalLosses() ||
		a.FinalPlacements != b.FinalPlacements {
		t.Fatalf("attaching probes changed the run: %+v vs %+v", a, b)
	}
}

// TestRunContextCancel checks that a cancelled context stops a run
// promptly with no result.
func TestRunContextCancel(t *testing.T) {
	cfg := probeTestConfig()
	cfg.Rounds = 1 << 40 // would run for months
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := s.RunContext(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run returned a result")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunContextComplete checks that an uncancelled RunContext matches
// Run exactly.
func TestRunContextComplete(t *testing.T) {
	cfg := probeTestConfig()
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := s1.Run()
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Deaths != b.Deaths || a.Collector.TotalRepairs() != b.Collector.TotalRepairs() {
		t.Fatalf("RunContext diverged from Run: %+v vs %+v", a, b)
	}
}

// maskedProbe is a recordingProbe that declares a restricted event set.
type maskedProbe struct {
	recordingProbe
	events EventSet
}

func (p *maskedProbe) ProbeEvents() EventSet { return p.events }

// TestEventDeclarerDispatch: a probe declaring a subset of events
// receives exactly that subset — and exactly the events an undeclared
// (observe-everything) probe sees for those kinds — while undeclared
// kinds never reach it. Declared-but-empty dispatch must not disturb
// the run (the probes consume no randomness either way).
func TestEventDeclarerDispatch(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 400

	full := &recordingProbe{}
	masked := &maskedProbe{events: EventChurn | EventDeath}
	cfg.Probes = []Probe{full, masked}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()

	if masked.deaths != full.deaths {
		t.Fatalf("masked probe saw %d deaths, full probe %d", masked.deaths, full.deaths)
	}
	if masked.sessions == 0 || masked.sessions != full.sessions ||
		masked.joins != full.joins || masked.leaves != full.leaves {
		t.Fatalf("masked churn stream diverged: %+v vs %+v",
			[3]int64{masked.joins, masked.leaves, masked.sessions},
			[3]int64{full.joins, full.leaves, full.sessions})
	}
	if masked.repairs != 0 || masked.initials != 0 || masked.rounds != 0 ||
		masked.outages != 0 || masked.hardLoss != 0 || masked.cancels != 0 {
		t.Fatalf("masked probe received undeclared events: %+v", masked.recordingProbe)
	}
	if full.rounds != cfg.Rounds {
		t.Fatalf("full probe saw %d rounds, want %d", full.rounds, cfg.Rounds)
	}

	// Attaching masked probes must not perturb the trajectory.
	bare, err := New(func() Config { c := cfg; c.Probes = nil; return c }())
	if err != nil {
		t.Fatal(err)
	}
	resBare := bare.Run()
	if res.Deaths != resBare.Deaths || res.FinalPlacements != resBare.FinalPlacements {
		t.Fatalf("masked probes perturbed the run: %d/%d deaths, %d/%d placements",
			res.Deaths, resBare.Deaths, res.FinalPlacements, resBare.FinalPlacements)
	}
}

// TestBuiltinProbeDeclarations pins the built-in probes' declared
// event sets to the hooks they actually implement, so a future hook
// added to a collector cannot be silently masked off.
func TestBuiltinProbeDeclarations(t *testing.T) {
	cases := []struct {
		name string
		p    Probe
		want EventSet
	}{
		{"collector", collectorProbe{}, EventRepair | EventOutage | EventHardLoss | EventStall | EventShock |
			EventRoundEnd | EventTransferComplete | EventTransferAbort | EventRedundancyChange},
		{"observer", observerProbe{}, EventObserverRepair},
		{"trace", traceProbe{}, EventChurn},
		{"undeclared", &recordingProbe{}, AllEvents},
	}
	for _, c := range cases {
		if got := probeEvents(c.p); got != c.want {
			t.Errorf("%s probe events = %b, want %b", c.name, got, c.want)
		}
	}
}
