// Package experiments defines the runnable experiments that regenerate
// every table and figure of the paper's evaluation, plus the ablations
// called out in DESIGN.md.
//
// The execution surface is the Campaign/Runner pair: a Campaign is a
// declarative batch — one base sim.Config and a list of Variants, each
// a named config mutation with its own deterministic seed — and a
// Runner executes campaigns over a bounded worker pool with
// context.Context cancellation, delivering a typed Event stream
// (progress heartbeats, completed rows, a terminal done event). The
// paper's evaluation is expressed as campaign constructors
// (ThresholdCampaign, FocalCampaign, StrategyCampaign, ...) plus row
// converters (ThresholdSweepFromRows, ...) that produce plot-ready
// results with TSV emitters; new scenario sweeps should follow that
// pattern rather than hand-rolling drivers.
//
// The RunThresholdSweep/RunFocal/Run*Ablation functions and the
// string-id registry's Run are retained as thin compatibility wrappers
// over the Runner; prefer RunCtx or Runner.Run directly in new code so
// campaigns inherit cancellation and streaming for free.
package experiments

import (
	"context"
	"fmt"
	"io"

	"p2pbackup/internal/metrics"
	"p2pbackup/internal/sim"
	"p2pbackup/internal/stats"
)

// Scale selects a simulation size preset.
type Scale string

// Scale presets. All keep the paper's intensive parameters (n, k,
// quota, thresholds, profile mix) and shrink the population and/or
// duration; EXPERIMENTS.md records which preset produced which numbers.
const (
	// ScaleSmoke: 600 peers, 20,000 rounds (~2.3 years): minutes for a
	// full sweep on a laptop; elders exist.
	ScaleSmoke Scale = "smoke"
	// ScaleDefault: 2,500 peers, full 50,000 rounds: the shape of every
	// figure at a tenth of the population.
	ScaleDefault Scale = "default"
	// ScalePaper: the paper's 25,000 peers x 50,000 rounds.
	ScalePaper Scale = "paper"
)

// BaseConfig returns the paper configuration adjusted to the scale.
func BaseConfig(scale Scale) (sim.Config, error) {
	cfg := sim.DefaultConfig()
	switch scale {
	case ScaleSmoke:
		cfg.NumPeers = 600
		cfg.Rounds = 20000
	case ScaleDefault, "":
		cfg.NumPeers = 2500
		cfg.Rounds = 50000
	case ScalePaper:
		// as-is
	default:
		return cfg, fmt.Errorf("experiments: unknown scale %q", scale)
	}
	return cfg, nil
}

// Scales lists the preset names.
func Scales() []string { return []string{string(ScaleSmoke), string(ScaleDefault), string(ScalePaper)} }

// PaperThresholds returns the sweep of figure 1/2: 132 to 180 in steps
// of 4.
func PaperThresholds() []int {
	var ts []int
	for t := 132; t <= 180; t += 4 {
		ts = append(ts, t)
	}
	return ts
}

// ---------------------------------------------------------------------------
// Figures 1 and 2: threshold sweep

// ThresholdPoint is one sweep point: per-category repair and loss rates
// at a repair threshold.
type ThresholdPoint struct {
	Threshold  int
	RepairRate [metrics.NumCategories]float64 // per 1000 peer-rounds
	LossRate   [metrics.NumCategories]float64 // per 1000 peer-rounds
	Repairs    int64
	Losses     int64
	Deaths     int64
}

// ThresholdSweep holds figure 1 (repair rates) and figure 2 (loss
// rates); the paper derives both from the same runs.
type ThresholdSweep struct {
	Scale  Scale
	Points []ThresholdPoint
}

// RunThresholdSweep executes one simulation per threshold. Seeds are
// derived from cfg.Seed and the threshold so points are independently
// reproducible. progress (optional) receives one message per finished
// point.
//
// Deprecated: compatibility wrapper. Use ThresholdCampaign with a
// Runner (and ThresholdSweepFromRows) for cancellation and typed
// events.
func RunThresholdSweep(cfg sim.Config, thresholds []int, parallelism int, progress func(string)) (*ThresholdSweep, error) {
	camp, err := ThresholdCampaign(cfg, thresholds)
	if err != nil {
		return nil, err
	}
	rows, err := collectRows(context.Background(), Runner{Parallelism: parallelism}, camp, progressSink(progress, thresholdDoneMessage))
	if err != nil {
		return nil, err
	}
	return ThresholdSweepFromRows(rows), nil
}

// WriteRepairTSV emits figure 1: threshold vs repair rate per category.
func (s *ThresholdSweep) WriteRepairTSV(w io.Writer) error {
	return s.writeTSV(w, "repairs_per_1000_peer_rounds", func(p ThresholdPoint, c metrics.Category) float64 {
		return p.RepairRate[c]
	})
}

// WriteLossTSV emits figure 2: threshold vs loss rate per category.
func (s *ThresholdSweep) WriteLossTSV(w io.Writer) error {
	return s.writeTSV(w, "losses_per_1000_peer_rounds", func(p ThresholdPoint, c metrics.Category) float64 {
		return p.LossRate[c]
	})
}

func (s *ThresholdSweep) writeTSV(w io.Writer, what string, get func(ThresholdPoint, metrics.Category) float64) error {
	if _, err := fmt.Fprintf(w, "# %s by repair threshold\n#threshold", what); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\t%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%d", p.Threshold); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", get(p, c)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figures 3 and 4: focal run at threshold 148

// FocalResult carries the observer series (figure 3) and the
// per-category cumulative loss series (figure 4) from the paper's focal
// configuration (threshold 148, five observers).
type FocalResult struct {
	Scale          Scale
	ObserverNames  []string
	ObserverCounts []int64
	ObserverSeries []*stats.Series
	LossSeries     [metrics.NumCategories]*stats.Series
	Repairs        int64
	Losses         int64
	Deaths         int64
}

// RunFocal executes the threshold-148 run with the paper's observers.
//
// Deprecated: compatibility wrapper. Use FocalCampaign with a Runner
// (and FocalFromRow) for cancellation and typed events.
func RunFocal(cfg sim.Config, progress func(string)) (*FocalResult, error) {
	r := Runner{Parallelism: 1, RoundEvents: progress != nil}
	rows, err := collectRows(context.Background(), r, FocalCampaign(cfg), progressSink(progress, nil))
	if err != nil {
		return nil, err
	}
	return FocalFromRow(rows[0]), nil
}

// WriteObserverTSV emits figure 3: cumulative repairs per observer over
// days (step series; one row per repair event).
func (f *FocalResult) WriteObserverTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# cumulative repairs per observer\n#observer\tday\tcumulative_repairs"); err != nil {
		return err
	}
	for i, name := range f.ObserverNames {
		s := f.ObserverSeries[i]
		for j := 0; j < s.Len(); j++ {
			x, y := s.At(j)
			if _, err := fmt.Fprintf(w, "%s\t%.4f\t%.0f\n", name, x, y); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteLossSeriesTSV emits figure 4: cumulative lost archives per peer
// by category over days.
func (f *FocalResult) WriteLossSeriesTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# cumulative lost archives per peer\n#day"); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\t%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	n := f.LossSeries[0].Len()
	for i := 0; i < n; i++ {
		day, _ := f.LossSeries[0].At(i)
		if _, err := fmt.Fprintf(w, "%.2f", day); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			_, y := f.LossSeries[c].At(i)
			if _, err := fmt.Fprintf(w, "\t%.6g", y); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Ablations

// AblationPoint is one variant's aggregate outcome.
type AblationPoint struct {
	Label      string
	RepairRate [metrics.NumCategories]float64
	LossRate   [metrics.NumCategories]float64
	Repairs    int64
	Losses     int64
	Deaths     int64
	Uploaded   int64 // total blocks uploaded (maintenance traffic)
	// Correlated-failure attribution (zero for shock-free variants).
	Shocks      int64 // shocks fired during the run
	ShockLosses int64 // losses within metrics.ShockAttributionWindow of a shock
}

// AblationResult is a labelled comparison of variants.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// runAblationCampaign executes an ablation campaign with the legacy
// progress-callback interface.
func runAblationCampaign(c Campaign, parallelism int, progress func(string)) (*AblationResult, error) {
	rows, err := collectRows(context.Background(), Runner{Parallelism: parallelism}, c, progressSink(progress, doneMessage(c.Name)))
	if err != nil {
		return nil, err
	}
	return AblationFromRows(c.Name, rows), nil
}

// RunStrategyAblation compares partner-selection strategies (A1 in
// DESIGN.md) at the focal threshold.
//
// Deprecated: compatibility wrapper over StrategyCampaign + Runner.
func RunStrategyAblation(cfg sim.Config, parallelism int, progress func(string)) (*AblationResult, error) {
	return runAblationCampaign(StrategyCampaign(cfg), parallelism, progress)
}

// RunAvailabilityAblation compares availability models (A2).
//
// Deprecated: compatibility wrapper over AvailabilityCampaign + Runner.
func RunAvailabilityAblation(cfg sim.Config, parallelism int, progress func(string)) (*AblationResult, error) {
	return runAblationCampaign(AvailabilityCampaign(cfg), parallelism, progress)
}

// RunRepairDelayAblation sweeps the repair-delay knob (the paper's
// future-work item: hold a triggered repair so temporarily offline
// partners can return and cancel it).
//
// Deprecated: compatibility wrapper over RepairDelayCampaign + Runner.
func RunRepairDelayAblation(cfg sim.Config, delays []int, parallelism int, progress func(string)) (*AblationResult, error) {
	return runAblationCampaign(RepairDelayCampaign(cfg, delays), parallelism, progress)
}

// RunHorizonAblation sweeps the acceptance horizon L (A3).
//
// Deprecated: compatibility wrapper over HorizonCampaign + Runner.
func RunHorizonAblation(cfg sim.Config, horizons []int64, parallelism int, progress func(string)) (*AblationResult, error) {
	return runAblationCampaign(HorizonCampaign(cfg, horizons), parallelism, progress)
}

// WriteTSV emits the ablation comparison.
func (a *AblationResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# ablation: %s\n#variant\trepairs\tlosses\tdeaths\tuploaded_blocks\tshocks\tshock_losses", a.Name); err != nil {
		return err
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\trepair_rate_%s", n); err != nil {
			return err
		}
	}
	for _, n := range metrics.CategoryNames() {
		if _, err := fmt.Fprintf(w, "\tloss_rate_%s", n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, p := range a.Points {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d",
			p.Label, p.Repairs, p.Losses, p.Deaths, p.Uploaded, p.Shocks, p.ShockLosses); err != nil {
			return err
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", p.RepairRate[c]); err != nil {
				return err
			}
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if _, err := fmt.Fprintf(w, "\t%.6g", p.LossRate[c]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
