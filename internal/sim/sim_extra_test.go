package sim

import (
	"testing"

	"p2pbackup/internal/churn"
	"p2pbackup/internal/metrics"
	"p2pbackup/internal/overlay"
)

// TestLedgerConsistencyMidRun verifies the full ledger invariants while
// the simulation is churning, not only at the end.
func TestLedgerConsistencyMidRun(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 600
	var s *Simulation
	checks := 0
	cfg.ProgressEvery = 100
	cfg.Progress = func(round int64) {
		if err := s.Ledger().CheckConsistency(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checks++
	}
	var err error
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if checks != 6 {
		t.Fatalf("checks = %d, want 6", checks)
	}
}

// TestUploadBudgetStretchesEpisodes: with a tiny upload budget the same
// repairs take more rounds but the archive still converges to full.
func TestUploadBudgetStretchesEpisodes(t *testing.T) {
	base := smallConfig()
	base.Rounds = 400
	base.Profiles = mustProfiles(t)
	fast, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	resFast := fast.Run()

	slow := base
	slow.UploadBudgetPerRound = 1
	s, err := New(slow)
	if err != nil {
		t.Fatal(err)
	}
	resSlow := s.Run()
	// Both must eventually include everyone (16-block archives, 1/round
	// budget, 400 rounds is plenty).
	if resFast.FinalIncluded != base.NumPeers || resSlow.FinalIncluded != base.NumPeers {
		t.Fatalf("included fast=%d slow=%d, want %d",
			resFast.FinalIncluded, resSlow.FinalIncluded, base.NumPeers)
	}
}

func mustProfiles(t *testing.T) *churn.ProfileSet {
	t.Helper()
	ps, err := churn.NewProfileSet([]churn.Profile{
		{Name: "steady", Proportion: 1, Availability: 0.9, Lifetime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestProfileReplacementPolicy: with like-for-like replacement the
// profile mix stays exactly stationary; with resampling the population
// drifts toward immortal profiles (they never die, so their share can
// only grow).
func TestProfileReplacementPolicy(t *testing.T) {
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "immortal", Proportion: 0.5, Availability: 0.9, Lifetime: nil},
		{Name: "brief", Proportion: 0.5, Availability: 0.7,
			Lifetime: mustUniform(t, 30, 90)},
	})
	if err != nil {
		t.Fatal(err)
	}
	count := func(resample bool) (immortals int) {
		cfg := smallConfig()
		cfg.NumPeers = 400
		cfg.Rounds = 2000
		cfg.TotalBlocks = 8
		cfg.DataBlocks = 4
		cfg.RepairThreshold = 5
		cfg.Quota = 24
		cfg.Profiles = profiles
		cfg.ResampleProfileOnReplace = resample
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		for i := range s.peers {
			if s.peers[i].death == never {
				immortals++
			}
		}
		return immortals
	}
	stationary := count(false)
	drifted := count(true)
	// Like-for-like: exactly half the slots stay immortal (as sampled at
	// t=0, within binomial noise).
	if stationary < 160 || stationary > 240 {
		t.Fatalf("stationary immortals = %d of 400, want ~200", stationary)
	}
	// Resampling: every death of a brief peer has a 50% chance of
	// becoming immortal; after ~22 generations of 30-90-round lifetimes
	// over 2000 rounds the brief population decays markedly.
	if drifted <= stationary+40 {
		t.Fatalf("resampling did not drift: %d vs %d immortals", drifted, stationary)
	}
}

// TestOutageVsHardLossAccounting: outages never undercount hard losses,
// and hard losses imply a preceding outage in the same data.
func TestOutageVsHardLossAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 6 * churn.Week
	profiles, err := churn.NewProfileSet([]churn.Profile{
		{Name: "flaky", Proportion: 0.8, Availability: 0.35,
			Lifetime: mustUniform(t, churn.Week, 3*churn.Week)},
		{Name: "solid", Proportion: 0.2, Availability: 0.95, Lifetime: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profiles = profiles
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	outages := res.Collector.TotalLosses()
	hard := res.Collector.TotalHardLosses()
	if outages == 0 {
		t.Fatal("a mostly-flaky population produced no decode outages")
	}
	if hard > outages {
		t.Fatalf("hard losses (%d) exceed outages (%d)", hard, outages)
	}
}

// TestObserverSlotsAreNotCandidates: no regular peer may ever place a
// block on an observer slot.
func TestObserverSlotsAreNotCandidates(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 300
	cfg.Observers = PaperObservers()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	led := s.Ledger()
	for i := range cfg.Observers {
		slot := overlay.PeerID(cfg.NumPeers + i)
		owners := led.Owners(slot, nil)
		for _, o := range owners {
			if int(o) < cfg.NumPeers {
				t.Fatalf("regular peer %d stored a block on observer slot %d", o, slot)
			}
		}
	}
}

// TestQuotaNeverExceeded: the metered count respects the quota for all
// peers throughout a churny run.
func TestQuotaNeverExceeded(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 500
	cfg.Quota = 20 // tight: 120 peers x 20 = 2400 slots vs 120 x 16 = 1920 demand
	var s *Simulation
	cfg.ProgressEvery = 100
	cfg.Progress = func(round int64) {
		led := s.Ledger()
		for id := 0; id < cfg.NumPeers; id++ {
			if led.MeteredHosted(overlay.PeerID(id)) > int(cfg.Quota) {
				t.Fatalf("round %d: peer %d over quota", round, id)
			}
		}
	}
	var err error
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
}

// TestLossSeriesMonotone: figure 4's cumulative series never decreases.
func TestLossSeriesMonotone(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 2000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	for c := metrics.Category(0); c < metrics.NumCategories; c++ {
		series := res.Collector.LossSeries(c)
		prev := 0.0
		for i := 0; i < series.Len(); i++ {
			_, y := series.At(i)
			if y < prev {
				t.Fatalf("category %v: cumulative series decreased at %d", c, i)
			}
			prev = y
		}
	}
}

// TestBlockConservation: every placement in the ledger belongs to a
// living owner and sits on a living host (generation-consistent).
func TestBlockConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.Rounds = 800
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	led := s.Ledger()
	total := 0
	for id := 0; id < cfg.NumPeers; id++ {
		total += led.Alive(overlay.PeerID(id))
	}
	if total != res.FinalPlacements {
		t.Fatalf("sum of alive (%d) != total placements (%d)", total, res.FinalPlacements)
	}
	// No owner can exceed n placed blocks.
	for id := 0; id < cfg.NumPeers; id++ {
		if a := led.Alive(overlay.PeerID(id)); a > cfg.TotalBlocks {
			t.Fatalf("peer %d holds %d > n placements", id, a)
		}
	}
}
