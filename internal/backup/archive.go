// Package backup implements the data path of the backup system the
// paper describes in section 2.2: files are collected into archives,
// encrypted under a per-archive session key, split into k data blocks,
// expanded to n = k+m erasure-coded blocks (one per partner), and
// described by a manifest; a master block ties the archives together
// and wraps the session keys under the owner's public key so that only
// the owner's private key can restore.
//
// Restore is the exact reverse: fetch any k blocks of each archive,
// reconstruct, verify, decrypt, unpack.
package backup

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Archive packaging errors.
var (
	ErrEmptyArchive = errors.New("backup: archive contains no files")
	ErrUnsafePath   = errors.New("backup: entry path escapes the restore root")
)

// FileEntry is one file captured into an archive.
type FileEntry struct {
	// Path is the slash-separated path relative to the backup root.
	Path string
	// Mode is the file mode.
	Mode fs.FileMode
	// ModTime is the file's modification time.
	ModTime time.Time
	// Data is the file content.
	Data []byte
}

// PackFiles serialises entries into a deterministic tar stream (sorted
// by path). The result is the plaintext archive the paper's pipeline
// encrypts and encodes.
func PackFiles(entries []FileEntry) ([]byte, error) {
	if len(entries) == 0 {
		return nil, ErrEmptyArchive
	}
	sorted := append([]FileEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, e := range sorted {
		if e.Path == "" {
			return nil, errors.New("backup: entry with empty path")
		}
		hdr := &tar.Header{
			Name:    filepath.ToSlash(e.Path),
			Mode:    int64(e.Mode.Perm()),
			Size:    int64(len(e.Data)),
			ModTime: e.ModTime,
			Format:  tar.FormatPAX,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("backup: tar header %q: %w", e.Path, err)
		}
		if _, err := tw.Write(e.Data); err != nil {
			return nil, fmt.Errorf("backup: tar data %q: %w", e.Path, err)
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnpackFiles parses a tar stream produced by PackFiles.
func UnpackFiles(archive []byte) ([]FileEntry, error) {
	tr := tar.NewReader(bytes.NewReader(archive))
	var out []FileEntry
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("backup: tar read: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("backup: tar content %q: %w", hdr.Name, err)
		}
		out = append(out, FileEntry{
			Path:    hdr.Name,
			Mode:    fs.FileMode(hdr.Mode).Perm(),
			ModTime: hdr.ModTime,
			Data:    data,
		})
	}
	if len(out) == 0 {
		return nil, ErrEmptyArchive
	}
	return out, nil
}

// CollectDir walks a directory and captures every regular file as an
// entry, paths relative to root.
func CollectDir(root string) ([]FileEntry, error) {
	var out []FileEntry
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.Type().IsRegular() {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		out = append(out, FileEntry{
			Path:    filepath.ToSlash(rel),
			Mode:    info.Mode().Perm(),
			ModTime: info.ModTime(),
			Data:    data,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, ErrEmptyArchive
	}
	return out, nil
}

// WriteDir materialises entries under root, refusing paths that escape
// it.
func WriteDir(root string, entries []FileEntry) error {
	for _, e := range entries {
		clean := filepath.Clean(filepath.FromSlash(e.Path))
		if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
			return fmt.Errorf("%w: %q", ErrUnsafePath, e.Path)
		}
		dst := filepath.Join(root, clean)
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		mode := e.Mode.Perm()
		if mode == 0 {
			mode = 0o644
		}
		if err := os.WriteFile(dst, e.Data, mode); err != nil {
			return err
		}
	}
	return nil
}
